/// Unit tests for the ghost-padded field containers.

#include <gtest/gtest.h>

#include "common/field3.hpp"
#include "common/half.hpp"

namespace {

using igr::common::Field3;
using igr::common::StateField3;

TEST(Field3, InteriorAndGhostIndexingDisjoint) {
  Field3<double> f(4, 5, 6, 3);
  // Write a unique value everywhere (ghosts included) and read it back.
  double v = 0.0;
  for (int k = -3; k < 9; ++k)
    for (int j = -3; j < 8; ++j)
      for (int i = -3; i < 7; ++i) f(i, j, k) = v += 1.0;
  v = 0.0;
  for (int k = -3; k < 9; ++k)
    for (int j = -3; j < 8; ++j)
      for (int i = -3; i < 7; ++i) EXPECT_EQ(f(i, j, k), v += 1.0);
}

TEST(Field3, SizesAndBytes) {
  Field3<float> f(8, 4, 2, 3);
  EXPECT_EQ(f.interior_size(), 8u * 4u * 2u);
  EXPECT_EQ(f.size_with_ghosts(), 14u * 10u * 8u);
  EXPECT_EQ(f.bytes(), f.size_with_ghosts() * sizeof(float));
}

TEST(Field3, UnitStrideAlongX) {
  Field3<double> f(8, 8, 8, 2);
  EXPECT_EQ(f.idx(1, 0, 0), f.idx(0, 0, 0) + 1);
  EXPECT_EQ(f.idx(0, 1, 0) - f.idx(0, 0, 0), 12u);  // sx = 8 + 2*2
}

TEST(Field3, FillSetsEverything) {
  Field3<double> f(4, 4, 4, 1);
  f.fill(2.5);
  for (int k = -1; k < 5; ++k)
    for (int j = -1; j < 5; ++j)
      for (int i = -1; i < 5; ++i) EXPECT_EQ(f(i, j, k), 2.5);
}

TEST(Field3, DefaultConstructedIsEmpty) {
  Field3<double> f;
  EXPECT_EQ(f.bytes(), 0u);
  EXPECT_EQ(f.interior_size(), 0u);
}

TEST(Field3, HalfStorageWorks) {
  Field3<igr::common::half> f(4, 4, 4, 1);
  f(1, 2, 3) = igr::common::half(1.5f);
  EXPECT_EQ(float(f(1, 2, 3)), 1.5f);
  EXPECT_EQ(f.bytes(), f.size_with_ghosts() * 2u);
}

TEST(StateField3, FiveIndependentComponents) {
  StateField3<double> q(4, 4, 4, 2);
  for (int c = 0; c < igr::common::kNumVars; ++c) q[c].fill(c + 1.0);
  for (int c = 0; c < igr::common::kNumVars; ++c)
    EXPECT_EQ(q[c](0, 0, 0), c + 1.0);
}

TEST(StateField3, BytesSumComponents) {
  StateField3<double> q(4, 4, 4, 2);
  EXPECT_EQ(q.bytes(), 5u * q[0].bytes());
}

TEST(StateField3, ShapeAccessors) {
  StateField3<float> q(3, 5, 7, 3);
  EXPECT_EQ(q.nx(), 3);
  EXPECT_EQ(q.ny(), 5);
  EXPECT_EQ(q.nz(), 7);
  EXPECT_EQ(q.ng(), 3);
}

TEST(StateField3, VarEnumMatchesLayout) {
  using namespace igr::common;
  EXPECT_EQ(kRho, 0);
  EXPECT_EQ(kMomX, 1);
  EXPECT_EQ(kMomY, 2);
  EXPECT_EQ(kMomZ, 3);
  EXPECT_EQ(kEnergy, 4);
  EXPECT_EQ(kNumVars, 5);  // the paper's 5 DoF per grid point
}

}  // namespace
