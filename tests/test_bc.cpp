/// Tests for the ghost-cell boundary conditions, including the jet inflow
/// patches the paper uses to model rocket engines.

#include <gtest/gtest.h>

#include "common/half.hpp"
#include "eos/ideal_gas.hpp"
#include "fv/bc.hpp"

namespace {

using igr::common::kEnergy;
using igr::common::kMomX;
using igr::common::kMomY;
using igr::common::kMomZ;
using igr::common::kNumVars;
using igr::common::kRho;
using igr::common::StateField3;
using igr::eos::IdealGas;
using igr::fv::apply_bc;
using igr::fv::BcKind;
using igr::fv::BcSpec;
using igr::fv::InflowPatch;
using igr::mesh::Face;
using igr::mesh::Grid;

constexpr int kN = 8;

StateField3<double> make_state() {
  StateField3<double> q(kN, kN, kN, 3);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          q[c](i, j, k) = 1000.0 * c + 100.0 * i + 10.0 * j + k + 1.0;
  return q;
}

TEST(Bc, PeriodicWrapsAllComponents) {
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  apply_bc(q, BcSpec::all_periodic(), g, eos);
  for (int c = 0; c < kNumVars; ++c) {
    EXPECT_EQ(q[c](-1, 3, 3), q[c](kN - 1, 3, 3));
    EXPECT_EQ(q[c](-3, 3, 3), q[c](kN - 3, 3, 3));
    EXPECT_EQ(q[c](kN, 3, 3), q[c](0, 3, 3));
    EXPECT_EQ(q[c](3, -2, 3), q[c](3, kN - 2, 3));
    EXPECT_EQ(q[c](3, 3, kN + 1), q[c](3, 3, 1));
  }
}

TEST(Bc, PeriodicFillsCornerGhosts) {
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  apply_bc(q, BcSpec::all_periodic(), g, eos);
  EXPECT_EQ(q[kRho](-1, -1, -1), q[kRho](kN - 1, kN - 1, kN - 1));
  EXPECT_EQ(q[kRho](kN + 2, -3, kN), q[kRho](2, kN - 3, 0));
}

TEST(Bc, OutflowExtrapolatesZeroGradient) {
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  apply_bc(q, BcSpec::all_outflow(), g, eos);
  for (int gl = 1; gl <= 3; ++gl) {
    EXPECT_EQ(q[kRho](-gl, 4, 4), q[kRho](0, 4, 4));
    EXPECT_EQ(q[kEnergy](kN - 1 + gl, 4, 4), q[kEnergy](kN - 1, 4, 4));
  }
}

TEST(Bc, ReflectiveMirrorsAndNegatesNormalMomentum) {
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  BcSpec spec;
  spec.kind.fill(BcKind::kReflective);
  apply_bc(q, spec, g, eos);
  // x-low: ghost -1 mirrors cell 0, ghost -2 mirrors cell 1.
  EXPECT_EQ(q[kRho](-1, 4, 4), q[kRho](0, 4, 4));
  EXPECT_EQ(q[kRho](-2, 4, 4), q[kRho](1, 4, 4));
  EXPECT_EQ(q[kMomX](-1, 4, 4), -q[kMomX](0, 4, 4));
  EXPECT_EQ(q[kMomY](-1, 4, 4), q[kMomY](0, 4, 4));  // tangential unchanged
  // z-high face: normal is z.
  EXPECT_EQ(q[kMomZ](4, 4, kN), -q[kMomZ](4, 4, kN - 1));
  EXPECT_EQ(q[kMomX](4, 4, kN), q[kMomX](4, 4, kN - 1));
}

TEST(Bc, ReflectiveWallHasZeroNormalMassFluxSymmetry) {
  // The mirrored state at the wall implies u_n(face) = 0 by symmetry.
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  BcSpec spec;
  spec.kind.fill(BcKind::kReflective);
  apply_bc(q, spec, g, eos);
  const double sum = q[kMomX](-1, 4, 4) + q[kMomX](0, 4, 4);
  EXPECT_NEAR(sum, 0.0, 1e-14);
}

TEST(Bc, InflowPatchInjectsJetState) {
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  BcSpec spec = BcSpec::all_outflow();
  spec.kind[static_cast<std::size_t>(Face::kZLo)] = BcKind::kInflowPatches;
  InflowPatch p;
  p.cx = 0.5;
  p.cy = 0.5;
  p.radius = 0.2;
  p.state = {1.0, 0.0, 0.0, 10.0, 1.0};  // fast jet along +z
  spec.patches[static_cast<std::size_t>(Face::kZLo)].push_back(p);
  apply_bc(q, spec, g, eos);

  // Center of the face (x=y=0.5 is between cells 3 and 4): inside patch.
  const auto qc = eos.to_cons(p.state);
  EXPECT_NEAR(q[kMomZ](4, 4, -1), qc.mz, 1e-12);
  EXPECT_NEAR(q[kRho](4, 4, -2), qc.rho, 1e-12);
  EXPECT_NEAR(q[kEnergy](4, 4, -3), qc.e, 1e-12);
}

TEST(Bc, OutsidePatchFallsBackToReflectiveBasePlate) {
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  BcSpec spec = BcSpec::all_outflow();
  spec.kind[static_cast<std::size_t>(Face::kZLo)] = BcKind::kInflowPatches;
  InflowPatch p;
  p.cx = 0.5;
  p.cy = 0.5;
  p.radius = 0.1;  // small: corner cells are outside
  p.state = {1.0, 0.0, 0.0, 10.0, 1.0};
  spec.patches[static_cast<std::size_t>(Face::kZLo)].push_back(p);
  apply_bc(q, spec, g, eos);
  // Corner cell (0,0): wall behavior (mirror, negate z-momentum).
  EXPECT_EQ(q[kRho](0, 0, -1), q[kRho](0, 0, 0));
  EXPECT_EQ(q[kMomZ](0, 0, -1), -q[kMomZ](0, 0, 0));
}

TEST(Bc, MixedFacesIndependent) {
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  BcSpec spec;
  spec.kind = {BcKind::kPeriodic, BcKind::kPeriodic, BcKind::kOutflow,
               BcKind::kOutflow, BcKind::kReflective, BcKind::kReflective};
  apply_bc(q, spec, g, eos);
  EXPECT_EQ(q[kRho](-1, 4, 4), q[kRho](kN - 1, 4, 4));      // periodic x
  EXPECT_EQ(q[kRho](4, -1, 4), q[kRho](4, 0, 4));           // outflow y
  EXPECT_EQ(q[kMomZ](4, 4, -1), -q[kMomZ](4, 4, 0));        // wall z
}

TEST(Bc, DirichletHoldsPrescribedStateOnEveryAxisForm) {
  // One Dirichlet face per axis exercises all three span-fill forms
  // (column elements, x-rows, whole planes).
  auto q = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  BcSpec spec = BcSpec::all_outflow();
  const igr::common::Prim<double> wx{1.0, 0.5, 0.0, 0.0, 2.0};
  const igr::common::Prim<double> wy{0.5, 0.0, -1.0, 0.0, 1.0};
  const igr::common::Prim<double> wz{2.0, 0.0, 0.0, 3.0, 4.0};
  spec.set_dirichlet(Face::kXLo, wx);
  spec.set_dirichlet(Face::kYHi, wy);
  spec.set_dirichlet(Face::kZLo, wz);
  apply_bc(q, spec, g, eos);

  const auto cx = eos.to_cons(wx);
  const auto cy = eos.to_cons(wy);
  const auto cz = eos.to_cons(wz);
  for (int gl = 1; gl <= 3; ++gl) {
    for (int c = 0; c < kNumVars; ++c) {
      EXPECT_EQ(q[c](-gl, 2, 5), cx[c]) << "x-lo c=" << c;
      EXPECT_EQ(q[c](3, kN - 1 + gl, 5), cy[c]) << "y-hi c=" << c;
      EXPECT_EQ(q[c](6, 1, -gl), cz[c]) << "z-lo c=" << c;
    }
  }
  // Corner ghosts of later-filled axes take the later fill (z overwrites
  // the x/y ghost columns it widens over), matching the x->y->z ordering.
  EXPECT_EQ(q[kRho](-1, -1, -1), cz[kRho]);
  // Non-Dirichlet faces keep their own kind (outflow here).
  EXPECT_EQ(q[kRho](kN, 4, 4), q[kRho](kN - 1, 4, 4));
}

TEST(Bc, DirichletWithoutStateFallsBackToZeroGradient) {
  auto q = make_state();
  auto ref = make_state();
  const auto g = Grid::cube(kN);
  IdealGas eos(1.4);
  BcSpec spec = BcSpec::all_outflow();
  spec.kind[static_cast<std::size_t>(Face::kXLo)] = BcKind::kDirichlet;
  spec.kind[static_cast<std::size_t>(Face::kZHi)] = BcKind::kDirichlet;
  apply_bc(q, spec, g, eos);
  apply_bc(ref, BcSpec::all_outflow(), g, eos);
  for (int c = 0; c < kNumVars; ++c)
    for (int gl = 1; gl <= 3; ++gl) {
      EXPECT_EQ(q[c](-gl, 4, 4), ref[c](-gl, 4, 4));
      EXPECT_EQ(q[c](4, 4, kN - 1 + gl), ref[c](4, 4, kN - 1 + gl));
    }
}

TEST(Bc, FloatAndHalfInstantiations) {
  StateField3<float> qf(4, 4, 4, 3);
  StateField3<igr::common::half> qh(4, 4, 4, 3);
  for (int c = 0; c < kNumVars; ++c) {
    qf[c].fill(1.5f);
    qh[c].fill(igr::common::half(1.5f));
  }
  const auto g = Grid::cube(4);
  IdealGas eos(1.4);
  apply_bc(qf, BcSpec::all_periodic(), g, eos);
  apply_bc(qh, BcSpec::all_periodic(), g, eos);
  EXPECT_EQ(qf[kRho](-1, 0, 0), 1.5f);
  EXPECT_EQ(float(qh[kRho](-1, 0, 0)), 1.5f);
}

}  // namespace
