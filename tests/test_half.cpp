/// Unit tests for the software binary16 storage type: value semantics,
/// rounding conformance (every branch of from_float: overflow saturation,
/// normal-range and subnormal ties-to-even, the flush-to-signed-zero band),
/// and the hardware-consistent NaN contract.  The batched conversion lanes
/// are covered by tests/test_half_batch.cpp.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/half.hpp"

namespace {

using igr::common::half;

float f32_from_bits(std::uint32_t u) { return std::bit_cast<float>(u); }
std::uint32_t f32_bits(float f) { return std::bit_cast<std::uint32_t>(f); }

TEST(Half, RoundTripsSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(float(half(f)), f) << "i=" << i;
  }
}

TEST(Half, RoundTripsPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float f = std::ldexp(1.0f, e);
    EXPECT_EQ(float(half(f)), f) << "e=" << e;
  }
}

TEST(Half, ExactHalvesSurvive) {
  EXPECT_EQ(float(half(0.5f)), 0.5f);
  EXPECT_EQ(float(half(-0.25f)), -0.25f);
  EXPECT_EQ(float(half(1.5f)), 1.5f);
}

TEST(Half, ZeroAndSignedZero) {
  EXPECT_EQ(half(0.0f).bits(), 0u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float(half(-0.0f)), 0.0f);
}

TEST(Half, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(float(half(1.0e6f))));
  EXPECT_TRUE(std::isinf(float(half(-1.0e6f))));
  EXPECT_GT(float(half(1.0e6f)), 0.0f);
  EXPECT_LT(float(half(-1.0e6f)), 0.0f);
}

TEST(Half, MaxFiniteValue) {
  EXPECT_EQ(float(half(65504.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(float(half(65520.0f))));  // rounds up to 2^16
  EXPECT_EQ(float(half(65519.0f)), 65504.0f);      // rounds down to max
}

TEST(Half, SubnormalsRepresented) {
  const float min_sub = std::ldexp(1.0f, -24);  // smallest subnormal
  EXPECT_EQ(float(half(min_sub)), min_sub);
  EXPECT_EQ(float(half(3.0f * min_sub)), 3.0f * min_sub);
}

TEST(Half, TinyValuesFlushToZero) {
  const float below = std::ldexp(1.0f, -26);  // under half the min subnormal
  EXPECT_EQ(float(half(below)), 0.0f);
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(std::isnan(float(half(std::nanf("")))));
}

TEST(Half, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(float(half(inf))));
  EXPECT_TRUE(std::isinf(float(half(-inf))));
}

TEST(Half, RoundToNearestEven) {
  // 2048 + 1 = 2049 is not representable (ulp = 2 there): ties to even.
  EXPECT_EQ(float(half(2049.0f)), 2048.0f);
  EXPECT_EQ(float(half(2051.0f)), 2052.0f);
}

TEST(Half, RelativeErrorBoundedByEps) {
  // Storage rounding respects the binary16 unit roundoff.
  for (float f : {0.1f, 0.3f, 0.7f, 1.1f, 3.3f, 9.9f, 123.456f, 4567.8f}) {
    const float r = float(half(f));
    EXPECT_NEAR(r, f, std::abs(f) * igr::common::kHalfEps) << f;
  }
}

TEST(Half, ComparisonsPromoteToFloat) {
  EXPECT_TRUE(half(1.0f) < half(2.0f));
  EXPECT_TRUE(half(2.0f) > half(1.0f));
  EXPECT_TRUE(half(1.0f) == half(1.0f));
  EXPECT_TRUE(half(1.0f) != half(1.5f));
}

TEST(Half, CompoundAssignmentRoundsEachStep) {
  half h(1.0f);
  h += 1.0f;
  EXPECT_EQ(float(h), 2.0f);
  h *= 3.0f;
  EXPECT_EQ(float(h), 6.0f);
  h /= 2.0f;
  EXPECT_EQ(float(h), 3.0f);
  h -= 0.5f;
  EXPECT_EQ(float(h), 2.5f);
}

TEST(Half, ExhaustiveBitPatternRoundTrip) {
  // Every finite binary16 value must survive half -> float -> half exactly
  // (the widening conversion is exact and rounding a representable value is
  // the identity).  Covers all 63488 finite patterns including subnormals.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto h = half::from_bits(static_cast<std::uint16_t>(b));
    const float f = float(h);
    if (std::isnan(f)) continue;  // NaN payloads need not be preserved
    const auto h2 = half(f);
    ASSERT_EQ(h2.bits(), h.bits()) << "bits=0x" << std::hex << b;
  }
}

TEST(Half, ExhaustiveMonotonicity) {
  // Conversion to float is strictly increasing over positive finite halves
  // — ordering of stored values is faithful.
  float prev = float(half::from_bits(0));
  for (std::uint32_t b = 1; b <= 0x7c00u; ++b) {  // up to +inf
    const float f = float(half::from_bits(static_cast<std::uint16_t>(b)));
    ASSERT_GT(f, prev) << "bits=0x" << std::hex << b;
    prev = f;
  }
}

TEST(Half, RoundingNeverOffByMoreThanHalfUlp) {
  // Sampled verification of round-to-nearest: the stored value is at least
  // as close to the input as either neighboring representable half.
  for (int i = 0; i < 20000; ++i) {
    // Deterministic quasi-random floats across the half range.
    const float x = std::ldexp(1.0f + 7.7e-5f * static_cast<float>(i),
                               (i % 30) - 14);
    const half h(x);
    const float fh = float(h);
    if (std::isinf(fh)) continue;
    const float up = float(half::from_bits(
        static_cast<std::uint16_t>(h.bits() + 1)));
    const float dn = h.bits() > 0 ? float(half::from_bits(
                                        static_cast<std::uint16_t>(
                                            h.bits() - 1)))
                                  : fh;
    ASSERT_LE(std::abs(fh - x), std::abs(up - x) + 1e-30f) << x;
    ASSERT_LE(std::abs(fh - x), std::abs(dn - x) + 1e-30f) << x;
  }
}

TEST(Half, ExhaustiveRoundTripAllPatterns) {
  // The full conformance form of the round-trip: every one of the 65536 bit
  // patterns goes through to_float -> from_float.  Non-NaN patterns (both
  // signed zeros, all subnormals, all normals, both infinities) must come
  // back identically; NaN patterns must come back as a NaN with the sign
  // preserved (the payload is quietened per the hardware contract, so exact
  // bits are only pinned for already-quiet NaNs).
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float f = half::to_float(bits);
    const std::uint16_t back = half::from_float(f);
    const bool is_nan = ((b & 0x7c00u) == 0x7c00u) && ((b & 0x03ffu) != 0u);
    if (is_nan) {
      EXPECT_TRUE(std::isnan(f)) << "bits=0x" << std::hex << b;
      ASSERT_TRUE((back & 0x7c00u) == 0x7c00u && (back & 0x03ffu) != 0u)
          << "NaN did not stay NaN: bits=0x" << std::hex << b;
      ASSERT_EQ(back & 0x8000u, b & 0x8000u)
          << "NaN sign lost: bits=0x" << std::hex << b;
      // Quiet NaNs round-trip exactly; signaling ones gain the quiet bit.
      ASSERT_EQ(back, bits | 0x0200u) << "bits=0x" << std::hex << b;
    } else {
      ASSERT_EQ(back, bits) << "bits=0x" << std::hex << b;
    }
  }
}

TEST(Half, OverflowThreshold) {
  // The largest finite half is 65504; the rounding boundary to infinity is
  // 65520 (the midpoint to 2^16, which ties *up* to the even 2^16 and thus
  // saturates).  Everything strictly below 65520 still rounds down.
  EXPECT_EQ(half(65504.0f).bits(), 0x7bffu);
  EXPECT_EQ(half(65519.0f).bits(), 0x7bffu);
  EXPECT_EQ(half(std::nextafter(65520.0f, 0.0f)).bits(), 0x7bffu);
  EXPECT_EQ(half(65520.0f).bits(), 0x7c00u);
  EXPECT_EQ(half(-65520.0f).bits(), 0xfc00u);
  EXPECT_EQ(half(65536.0f).bits(), 0x7c00u);
  EXPECT_EQ(half(std::numeric_limits<float>::max()).bits(), 0x7c00u);
  EXPECT_EQ(half(-std::numeric_limits<float>::max()).bits(), 0xfc00u);
}

TEST(Half, SubnormalHalfwayTiesToEven) {
  // Subnormal halves are multiples of 2^-24.  Inputs exactly halfway
  // between two multiples must round to the even one.
  const float ulp = std::ldexp(1.0f, -24);
  EXPECT_EQ(half(0.5f * ulp).bits(), 0x0000u);  // tie 0|1 -> 0
  EXPECT_EQ(half(1.5f * ulp).bits(), 0x0002u);  // tie 1|2 -> 2
  EXPECT_EQ(half(2.5f * ulp).bits(), 0x0002u);  // tie 2|3 -> 2
  EXPECT_EQ(half(3.5f * ulp).bits(), 0x0004u);  // tie 3|4 -> 4
  EXPECT_EQ(half(-1.5f * ulp).bits(), 0x8002u);
  EXPECT_EQ(half(-2.5f * ulp).bits(), 0x8002u);
  // A hair off the tie snaps to the strict nearest instead.
  EXPECT_EQ(half(std::nextafter(2.5f * ulp, 1.0f)).bits(), 0x0003u);
  EXPECT_EQ(half(std::nextafter(1.5f * ulp, 0.0f)).bits(), 0x0001u);
  // The tie at the subnormal/normal boundary: 1023.5 * 2^-24 -> 2^-14.
  EXPECT_EQ(half(1023.5f * ulp).bits(), 0x0400u);
  EXPECT_EQ(half(std::nextafter(1023.5f * ulp, 0.0f)).bits(), 0x03ffu);
}

TEST(Half, BelowHalfSmallestSubnormalIsSignedZero) {
  // |f| < 2^-25 rounds to zero of the same sign; exactly 2^-25 is the tie
  // between 0 and the smallest subnormal and goes to the even side (zero).
  const float half_min_sub = std::ldexp(1.0f, -25);
  EXPECT_EQ(half(half_min_sub).bits(), 0x0000u);
  EXPECT_EQ(half(-half_min_sub).bits(), 0x8000u);
  EXPECT_EQ(half(std::nextafter(half_min_sub, 0.0f)).bits(), 0x0000u);
  EXPECT_EQ(half(std::nextafter(half_min_sub, 1.0f)).bits(), 0x0001u);
  EXPECT_EQ(half(std::ldexp(1.0f, -26)).bits(), 0x0000u);
  EXPECT_EQ(half(-std::ldexp(1.0f, -26)).bits(), 0x8000u);
  EXPECT_EQ(half(std::numeric_limits<float>::denorm_min()).bits(), 0x0000u);
  EXPECT_EQ(half(-std::numeric_limits<float>::denorm_min()).bits(), 0x8000u);
}

TEST(Half, NanConversionFollowsHardwareContract) {
  // Narrowing truncates the payload to 10 bits and sets the quiet bit;
  // widening shifts the payload up and quietens — matching x86 F16C, so the
  // hardware conversion backend is bitwise-exchangeable with the software
  // ones (tests/test_half_batch.cpp relies on this).
  EXPECT_EQ(half(f32_from_bits(0x7fc00000u)).bits(), 0x7e00u);
  EXPECT_EQ(half(f32_from_bits(0xffc00000u)).bits(), 0xfe00u);
  EXPECT_EQ(half(f32_from_bits(0x7fc12345u)).bits(), 0x7e09u);
  EXPECT_EQ(half(f32_from_bits(0x7f812345u)).bits(), 0x7e09u);  // SNaN
  EXPECT_EQ(half(f32_from_bits(0x7f800001u)).bits(), 0x7e00u);  // SNaN
  EXPECT_EQ(f32_bits(half::to_float(0x7e00u)), 0x7fc00000u);
  EXPECT_EQ(f32_bits(half::to_float(0x7c01u)), 0x7fc02000u);  // SNaN
  EXPECT_EQ(f32_bits(half::to_float(0xfe01u)), 0xffc02000u);
}

TEST(Half, OrderingOperatorsIncludingNaN) {
  const half a(1.0f), b(2.0f);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(b >= b);
  EXPECT_FALSE(b <= a);
  EXPECT_FALSE(a >= b);
  EXPECT_TRUE(half(-0.0f) <= half(0.0f));
  EXPECT_TRUE(half(-0.0f) >= half(0.0f));  // signed zeros compare equal
  // NaN behaves exactly like float: every ordered comparison is false.
  const half n(std::nanf(""));
  EXPECT_FALSE(n <= n);
  EXPECT_FALSE(n >= n);
  EXPECT_FALSE(n <= a);
  EXPECT_FALSE(n >= a);
  EXPECT_FALSE(a <= n);
  EXPECT_FALSE(a >= n);
  EXPECT_FALSE(n < a);
  EXPECT_FALSE(n > a);
  EXPECT_FALSE(n == n);
  EXPECT_TRUE(n != n);
}

TEST(Half, BitsRoundTrip) {
  for (std::uint16_t b : {std::uint16_t{0x3c00}, std::uint16_t{0x4000},
                          std::uint16_t{0xbc00}, std::uint16_t{0x0001}}) {
    EXPECT_EQ(half::from_bits(b).bits(), b);
  }
}

}  // namespace
