/// Unit tests for the software binary16 storage type.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/half.hpp"

namespace {

using igr::common::half;

TEST(Half, RoundTripsSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(float(half(f)), f) << "i=" << i;
  }
}

TEST(Half, RoundTripsPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float f = std::ldexp(1.0f, e);
    EXPECT_EQ(float(half(f)), f) << "e=" << e;
  }
}

TEST(Half, ExactHalvesSurvive) {
  EXPECT_EQ(float(half(0.5f)), 0.5f);
  EXPECT_EQ(float(half(-0.25f)), -0.25f);
  EXPECT_EQ(float(half(1.5f)), 1.5f);
}

TEST(Half, ZeroAndSignedZero) {
  EXPECT_EQ(half(0.0f).bits(), 0u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float(half(-0.0f)), 0.0f);
}

TEST(Half, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(float(half(1.0e6f))));
  EXPECT_TRUE(std::isinf(float(half(-1.0e6f))));
  EXPECT_GT(float(half(1.0e6f)), 0.0f);
  EXPECT_LT(float(half(-1.0e6f)), 0.0f);
}

TEST(Half, MaxFiniteValue) {
  EXPECT_EQ(float(half(65504.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(float(half(65520.0f))));  // rounds up to 2^16
  EXPECT_EQ(float(half(65519.0f)), 65504.0f);      // rounds down to max
}

TEST(Half, SubnormalsRepresented) {
  const float min_sub = std::ldexp(1.0f, -24);  // smallest subnormal
  EXPECT_EQ(float(half(min_sub)), min_sub);
  EXPECT_EQ(float(half(3.0f * min_sub)), 3.0f * min_sub);
}

TEST(Half, TinyValuesFlushToZero) {
  const float below = std::ldexp(1.0f, -26);  // under half the min subnormal
  EXPECT_EQ(float(half(below)), 0.0f);
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(std::isnan(float(half(std::nanf("")))));
}

TEST(Half, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(float(half(inf))));
  EXPECT_TRUE(std::isinf(float(half(-inf))));
}

TEST(Half, RoundToNearestEven) {
  // 2048 + 1 = 2049 is not representable (ulp = 2 there): ties to even.
  EXPECT_EQ(float(half(2049.0f)), 2048.0f);
  EXPECT_EQ(float(half(2051.0f)), 2052.0f);
}

TEST(Half, RelativeErrorBoundedByEps) {
  // Storage rounding respects the binary16 unit roundoff.
  for (float f : {0.1f, 0.3f, 0.7f, 1.1f, 3.3f, 9.9f, 123.456f, 4567.8f}) {
    const float r = float(half(f));
    EXPECT_NEAR(r, f, std::abs(f) * igr::common::kHalfEps) << f;
  }
}

TEST(Half, ComparisonsPromoteToFloat) {
  EXPECT_TRUE(half(1.0f) < half(2.0f));
  EXPECT_TRUE(half(2.0f) > half(1.0f));
  EXPECT_TRUE(half(1.0f) == half(1.0f));
  EXPECT_TRUE(half(1.0f) != half(1.5f));
}

TEST(Half, CompoundAssignmentRoundsEachStep) {
  half h(1.0f);
  h += 1.0f;
  EXPECT_EQ(float(h), 2.0f);
  h *= 3.0f;
  EXPECT_EQ(float(h), 6.0f);
  h /= 2.0f;
  EXPECT_EQ(float(h), 3.0f);
  h -= 0.5f;
  EXPECT_EQ(float(h), 2.5f);
}

TEST(Half, ExhaustiveBitPatternRoundTrip) {
  // Every finite binary16 value must survive half -> float -> half exactly
  // (the widening conversion is exact and rounding a representable value is
  // the identity).  Covers all 63488 finite patterns including subnormals.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto h = half::from_bits(static_cast<std::uint16_t>(b));
    const float f = float(h);
    if (std::isnan(f)) continue;  // NaN payloads need not be preserved
    const auto h2 = half(f);
    ASSERT_EQ(h2.bits(), h.bits()) << "bits=0x" << std::hex << b;
  }
}

TEST(Half, ExhaustiveMonotonicity) {
  // Conversion to float is strictly increasing over positive finite halves
  // — ordering of stored values is faithful.
  float prev = float(half::from_bits(0));
  for (std::uint32_t b = 1; b <= 0x7c00u; ++b) {  // up to +inf
    const float f = float(half::from_bits(static_cast<std::uint16_t>(b)));
    ASSERT_GT(f, prev) << "bits=0x" << std::hex << b;
    prev = f;
  }
}

TEST(Half, RoundingNeverOffByMoreThanHalfUlp) {
  // Sampled verification of round-to-nearest: the stored value is at least
  // as close to the input as either neighboring representable half.
  for (int i = 0; i < 20000; ++i) {
    // Deterministic quasi-random floats across the half range.
    const float x = std::ldexp(1.0f + 7.7e-5f * static_cast<float>(i),
                               (i % 30) - 14);
    const half h(x);
    const float fh = float(h);
    if (std::isinf(fh)) continue;
    const float up = float(half::from_bits(
        static_cast<std::uint16_t>(h.bits() + 1)));
    const float dn = h.bits() > 0 ? float(half::from_bits(
                                        static_cast<std::uint16_t>(
                                            h.bits() - 1)))
                                  : fh;
    ASSERT_LE(std::abs(fh - x), std::abs(up - x) + 1e-30f) << x;
    ASSERT_LE(std::abs(fh - x), std::abs(dn - x) + 1e-30f) << x;
  }
}

TEST(Half, BitsRoundTrip) {
  for (std::uint16_t b : {std::uint16_t{0x3c00}, std::uint16_t{0x4000},
                          std::uint16_t{0xbc00}, std::uint16_t{0x0001}}) {
    EXPECT_EQ(half::from_bits(b).bits(), b);
  }
}

}  // namespace
