/// Tests for the SSP-RK3 time stepper (Gottlieb–Shu) and CFL control.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/config.hpp"
#include "common/field3.hpp"
#include "eos/ideal_gas.hpp"
#include "fv/cfl.hpp"
#include "fv/rk3.hpp"
#include "mesh/grid.hpp"

namespace {

using igr::fv::compute_dt;
using igr::fv::compute_dt_1d;
using igr::fv::kRk3Stages;
using igr::fv::ssp_rk3_step;

TEST(Rk3, StageCoefficientsAreGottliebShu) {
  EXPECT_DOUBLE_EQ(kRk3Stages[0].a, 0.0);
  EXPECT_DOUBLE_EQ(kRk3Stages[0].b, 1.0);
  EXPECT_DOUBLE_EQ(kRk3Stages[1].a, 0.75);
  EXPECT_DOUBLE_EQ(kRk3Stages[1].b, 0.25);
  EXPECT_NEAR(kRk3Stages[2].a, 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(kRk3Stages[2].b, 2.0 / 3.0, 1e-15);
  // Each stage is a convex combination (the SSP property).
  for (const auto& s : kRk3Stages) EXPECT_NEAR(s.a + s.b, 1.0, 1e-15);
}

TEST(Rk3, ThirdOrderConvergenceOnLinearOde) {
  // dy/dt = -y, y(0) = 1: error(dt) ~ dt^3 for a fixed horizon.
  auto solve = [](double dt) {
    std::vector<double> y{1.0}, stage{0.0}, rhs{0.0};
    const int n = static_cast<int>(std::round(1.0 / dt));
    for (int i = 0; i < n; ++i) {
      ssp_rk3_step(y, stage, rhs, dt,
                   [](const std::vector<double>& q, std::vector<double>& d) {
                     d[0] = -q[0];
                   });
    }
    return std::abs(y[0] - std::exp(-1.0));
  };
  const double e1 = solve(0.1);
  const double e2 = solve(0.05);
  const double rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 2.8);
  EXPECT_LT(rate, 3.3);
}

TEST(Rk3, ExactForQuadraticInTime) {
  // dy/dt = t^2 has an exact RK3 solution (polynomial of degree 3).
  std::vector<double> y{0.0}, stage{0.0}, rhs{0.0};
  double t = 0.0;
  const double dt = 0.25;
  for (int i = 0; i < 4; ++i) {
    // RHS depends on stage time; emulate with an autonomous system
    // (y1' = 1, y2' = y1^2).
    static_cast<void>(t);
    t += dt;
  }
  // Autonomous augmentation:
  std::vector<double> z{0.0, 0.0}, zs{0.0, 0.0}, zr{0.0, 0.0};
  for (int i = 0; i < 4; ++i) {
    ssp_rk3_step(z, zs, zr, dt,
                 [](const std::vector<double>& q, std::vector<double>& d) {
                   d[0] = 1.0;
                   d[1] = q[0] * q[0];
                 });
  }
  EXPECT_NEAR(z[1], 1.0 / 3.0, 1e-12);  // integral of t^2 over [0,1]
}

TEST(Rk3, SspPreservesMonotoneBoundsForForwardEulerStableDt) {
  // For the scalar ODE y' = -y with dt <= 1 (FE monotone), the SSP
  // combination keeps y in [0, 1].
  std::vector<double> y{1.0}, stage{0.0}, rhs{0.0};
  for (int i = 0; i < 30; ++i) {
    ssp_rk3_step(y, stage, rhs, 0.9,
                 [](const std::vector<double>& q, std::vector<double>& d) {
                   d[0] = -q[0];
                 });
    EXPECT_GE(y[0], 0.0);
    EXPECT_LE(y[0], 1.0);
  }
}

TEST(Cfl, DtScalesInverselyWithWaveSpeed) {
  using igr::common::StateField3;
  igr::eos::IdealGas eos(1.4);
  igr::common::SolverConfig cfg;
  const auto g = igr::mesh::Grid::cube(8);

  auto make = [&](double u) {
    StateField3<double> q(8, 8, 8, 3);
    for (int k = 0; k < 8; ++k)
      for (int j = 0; j < 8; ++j)
        for (int i = 0; i < 8; ++i) {
          q[0](i, j, k) = 1.0;
          q[1](i, j, k) = u;
          q[4](i, j, k) = 1.0 / 0.4 + 0.5 * u * u;
        }
    return q;
  };
  const auto slow = make(0.0);
  const auto fast = make(10.0);
  EXPECT_GT(compute_dt(slow, g, eos, cfg), compute_dt(fast, g, eos, cfg));
}

TEST(Cfl, ViscousLimitActivates) {
  using igr::common::StateField3;
  igr::eos::IdealGas eos(1.4);
  const auto g = igr::mesh::Grid::cube(32);
  StateField3<double> q(32, 32, 32, 3);
  for (int k = 0; k < 32; ++k)
    for (int j = 0; j < 32; ++j)
      for (int i = 0; i < 32; ++i) {
        q[0](i, j, k) = 1.0;
        q[4](i, j, k) = 2.5;
      }
  igr::common::SolverConfig inviscid, viscous;
  viscous.mu = 1.0;  // huge viscosity: diffusion-limited dt
  EXPECT_LT(compute_dt(q, g, eos, viscous), compute_dt(q, g, eos, inviscid));
}

TEST(Cfl, OneDimensionalHelper) {
  const int n = 16;
  std::vector<double> rho(n, 1.0), mom(n, 0.0), e(n, 2.5);
  const double dt = compute_dt_1d(rho.data(), mom.data(), e.data(), n, 0.01,
                                  1.4, 0.5);
  // c = sqrt(1.4 * 1.0 / 1.0) ~ 1.1832; dt = 0.5 * 0.01 / c.
  EXPECT_NEAR(dt, 0.5 * 0.01 / std::sqrt(1.4), 1e-12);
}

TEST(Cfl, DtIsPositiveForQuiescentGas) {
  using igr::common::StateField3;
  igr::eos::IdealGas eos(1.4);
  igr::common::SolverConfig cfg;
  const auto g = igr::mesh::Grid::cube(4);
  StateField3<double> q(4, 4, 4, 3);
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) {
        q[0](i, j, k) = 1.0;
        q[4](i, j, k) = 2.5;
      }
  EXPECT_GT(compute_dt(q, g, eos, cfg), 0.0);
}

}  // namespace
