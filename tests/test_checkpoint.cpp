/// Tests for binary checkpoint/restart: bit-exact round trips at every
/// storage precision, header validation, and restart-equivalence of a
/// simulation (continue == straight-through run).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/igr_solver3d.hpp"
#include "io/checkpoint.hpp"

namespace {

namespace fs = std::filesystem;
using igr::common::kNumVars;
using igr::common::StateField3;

template <class T>
StateField3<T> make_state(int n) {
  StateField3<T> q(n, n, n, 3);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
          q[c](i, j, k) = static_cast<T>(
              0.1 * c + std::sin(0.3 * i) * std::cos(0.2 * j) + 0.01 * k);
  return q;
}

template <class T>
class CheckpointRoundTrip : public ::testing::Test {};

using StorageTypes = ::testing::Types<double, float, igr::common::half>;
TYPED_TEST_SUITE(CheckpointRoundTrip, StorageTypes);

TYPED_TEST(CheckpointRoundTrip, BitExactAtEveryPrecision) {
  const auto path =
      fs::temp_directory_path() / ("igr_ckpt_" +
                                   std::to_string(sizeof(TypeParam)) + ".bin");
  const auto q = make_state<TypeParam>(6);
  igr::io::write_checkpoint(path.string(), q, 1.25);

  StateField3<TypeParam> r(6, 6, 6, 3);
  const double t = igr::io::read_checkpoint(path.string(), r);
  EXPECT_DOUBLE_EQ(t, 1.25);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < 6; ++k)
      for (int j = 0; j < 6; ++j)
        for (int i = 0; i < 6; ++i)
          ASSERT_EQ(static_cast<double>(q[c](i, j, k)),
                    static_cast<double>(r[c](i, j, k)));
  fs::remove(path);
}

TEST(Checkpoint, HeaderRecordsMetadata) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_hdr.bin";
  const auto q = make_state<float>(5);
  igr::io::write_checkpoint(path.string(), q, 3.5);
  const auto h = igr::io::read_checkpoint_header(path.string());
  EXPECT_EQ(h.nx, 5);
  EXPECT_EQ(h.storage_bytes, 4u);
  EXPECT_EQ(h.num_vars, 5);
  EXPECT_DOUBLE_EQ(h.time, 3.5);
  fs::remove(path);
}

TEST(Checkpoint, RejectsShapeMismatch) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_shape.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);
  StateField3<double> wrong(8, 8, 8, 3);
  EXPECT_THROW(igr::io::read_checkpoint(path.string(), wrong),
               std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, RejectsPrecisionMismatch) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_prec.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);
  StateField3<float> wrong(6, 6, 6, 3);
  EXPECT_THROW(igr::io::read_checkpoint(path.string(), wrong),
               std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, RejectsGarbageFile) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_garbage.bin";
  {
    std::ofstream out(path);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(igr::io::read_checkpoint_header(path.string()),
               std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, RestartedRunMatchesStraightThrough) {
  // 6 steps straight vs 3 steps + checkpoint + restart + 3 steps: the
  // restarted solver must match bitwise (fixed dt; Sigma is re-derived from
  // the state by the warm-started solve, which is part of the state's
  // definition only through the initial guess — use Jacobi + enough sweeps
  // to make the restart difference vanish below round-off).
  using igr::common::Fp64;
  using igr::core::IgrSolver3D;
  const auto g = igr::mesh::Grid::cube(10);
  igr::common::SolverConfig cfg;
  cfg.alpha_factor = 5.0;
  const auto bc = igr::fv::BcSpec::all_periodic();
  auto ic = [](double x, double y, double) {
    igr::common::Prim<double> w;
    w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x);
    w.u = 0.3 * std::cos(2 * M_PI * y);
    w.p = 1.0;
    return w;
  };

  IgrSolver3D<Fp64> full(g, cfg, bc);
  full.init(ic);
  for (int s = 0; s < 6; ++s) full.step_fixed(1e-3);

  IgrSolver3D<Fp64> first(g, cfg, bc);
  first.init(ic);
  for (int s = 0; s < 3; ++s) first.step_fixed(1e-3);
  const auto path = fs::temp_directory_path() / "igr_ckpt_restart.bin";
  igr::io::write_checkpoint(path.string(), first.state(), first.time());

  IgrSolver3D<Fp64> resumed(g, cfg, bc);
  const double t = igr::io::read_checkpoint(path.string(), resumed.state());
  EXPECT_NEAR(t, 3e-3, 1e-15);
  for (int s = 0; s < 3; ++s) resumed.step_fixed(1e-3);
  fs::remove(path);

  // Sigma's warm start differs across the restart (zero vs converged), so
  // the runs agree to the iteration error of the well-conditioned solve.
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 10; ++j)
      for (int i = 0; i < 10; ++i)
        ASSERT_NEAR(full.state()[0](i, j, k), resumed.state()[0](i, j, k),
                    1e-6);
}

// --- v2 format: compatibility, corruption detection, crash safety --------

/// Substring assertion on the error a callable throws.
template <class Fn>
void expect_throw_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected a throw mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

/// Hand-roll a v1 file (no CRC section) for the old-format compatibility
/// test: header with version = 1, then the raw row-major interior.
template <class T>
void write_v1_checkpoint(const std::string& path, const StateField3<T>& q,
                         double time) {
  igr::io::CheckpointHeader h;
  h.version = 1;
  h.storage_bytes = sizeof(T);
  h.nx = q.nx();
  h.ny = q.ny();
  h.nz = q.nz();
  h.ng = q.ng();
  h.num_vars = kNumVars;
  h.time = time;
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < q.nz(); ++k)
      for (int j = 0; j < q.ny(); ++j)
        for (int i = 0; i < q.nx(); ++i) {
          const T v = q[c](i, j, k);
          out.write(reinterpret_cast<const char*>(&v), sizeof(T));
        }
}

TEST(CheckpointV2, V1FilesStillLoad) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_v1.bin";
  const auto q = make_state<double>(6);
  write_v1_checkpoint(path.string(), q, 2.5);
  EXPECT_EQ(igr::io::read_checkpoint_header(path.string()).version, 1u);

  StateField3<double> r(6, 6, 6, 3);
  EXPECT_DOUBLE_EQ(igr::io::read_checkpoint(path.string(), r), 2.5);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < 6; ++k)
      for (int j = 0; j < 6; ++j)
        for (int i = 0; i < 6; ++i)
          ASSERT_EQ(q[c](i, j, k), r[c](i, j, k));

  // v1 carries no checksums: validation is structural only, and passes.
  EXPECT_TRUE(igr::io::validate_checkpoint(path.string()).ok);
  fs::remove(path);
}

TEST(CheckpointV2, CrcCatchesSingleFlippedPayloadByte) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_flip.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);

  // Flip one byte deep in the payload (well past header + CRC table).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x10);
    f.write(&b, 1);
  }

  StateField3<double> r(6, 6, 6, 3);
  expect_throw_containing(
      [&] { igr::io::read_checkpoint(path.string(), r); }, "CRC mismatch");
  const auto v = igr::io::validate_checkpoint(path.string());
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("CRC mismatch"), std::string::npos) << v.error;
  fs::remove(path);
}

TEST(CheckpointV2, CrcCatchesCorruptHeader) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_hdrflip.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);
  {
    // Corrupt the stored time (bytes 40..47 of the header): dims stay
    // plausible, so only the header CRC can catch it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    const char junk = 0x5A;
    f.write(&junk, 1);
  }
  expect_throw_containing(
      [&] { igr::io::read_checkpoint_header(path.string()); },
      "header CRC mismatch");
  EXPECT_FALSE(igr::io::validate_checkpoint(path.string()).ok);
  fs::remove(path);
}

TEST(CheckpointV2, TruncatedFileRejectedWithLocation) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_trunc.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);
  fs::resize_file(path, fs::file_size(path) * 2 / 3);

  StateField3<double> r(6, 6, 6, 3);
  expect_throw_containing(
      [&] { igr::io::read_checkpoint(path.string(), r); }, "truncated");
  const auto v = igr::io::validate_checkpoint(path.string());
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("truncated"), std::string::npos) << v.error;
  fs::remove(path);
}

TEST(CheckpointV2, MismatchErrorsReportExpectedVsFound) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_msgs.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);

  StateField3<double> wrong_shape(8, 8, 8, 3);
  expect_throw_containing(
      [&] { igr::io::read_checkpoint(path.string(), wrong_shape); },
      "file interior is 6x6x6 (ghost depth 3), target expects 8x8x8");

  StateField3<float> wrong_prec(6, 6, 6, 3);
  expect_throw_containing(
      [&] { igr::io::read_checkpoint(path.string(), wrong_prec); },
      "file stores 8-byte values (fp64), target expects 4-byte (fp32)");

  // A 1-component field target against the 5-component state file.
  igr::common::Field3<double> scalar(6, 6, 6, 3);
  expect_throw_containing(
      [&] { igr::io::read_checkpoint_field(path.string(), scalar); },
      "file has 5 component(s), target expects 1");
  fs::remove(path);
}

TEST(CheckpointV2, UnsupportedVersionRejected) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_badver.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);  // version field follows the 8-byte magic
    const std::uint32_t v = 99;
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  expect_throw_containing(
      [&] { igr::io::read_checkpoint_header(path.string()); },
      "unsupported version 99");
  fs::remove(path);
}

TEST(CheckpointV2, TornWriteNeverTouchesTheFinalPath) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_torn.bin";
  const auto q = make_state<double>(6);
  igr::io::write_checkpoint(path.string(), q, 1.0);  // the "previous" save

  // Kill the writer partway through the payload of the next save.
  igr::io::set_checkpoint_write_fault(
      [](const std::string&, std::size_t bytes) {
        if (bytes > 500) throw std::runtime_error("simulated writer death");
      });
  EXPECT_THROW(igr::io::write_checkpoint(path.string(), q, 2.0),
               std::runtime_error);
  igr::io::set_checkpoint_write_fault({});

  // The final path still holds the previous, fully valid save; the debris
  // is confined to the temp file.
  const auto v = igr::io::validate_checkpoint(path.string());
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_DOUBLE_EQ(v.header.time, 1.0);
  EXPECT_TRUE(fs::exists(path.string() + ".tmp"));
  fs::remove(path);
  fs::remove(path.string() + ".tmp");
}

TEST(CheckpointV2, CommittedWritesFsyncTheParentDirectory) {
  // fsync of the checkpoint file alone does not persist the *rename*: after
  // a power cut the directory entry may still point at the old file.  Every
  // committed atomic write must therefore also fsync the parent directory —
  // asserted via the process-wide counter, one bump per commit.
  const auto path = fs::temp_directory_path() / "igr_ckpt_dirsync.bin";
  const auto q = make_state<double>(6);

  const long before = igr::io::dir_fsyncs();
  igr::io::write_checkpoint(path.string(), q, 1.0);
  EXPECT_EQ(igr::io::dir_fsyncs(), before + 1);

  // Manifests commit through the same atomic-write path.
  igr::io::write_manifest(path.string() + ".manifest",
                          {{5, 0.5, path.string()}});
  EXPECT_EQ(igr::io::dir_fsyncs(), before + 2);

  // A torn write never reaches the rename, so the directory is untouched
  // and the counter must not move.
  igr::io::set_checkpoint_write_fault(
      [](const std::string&, std::size_t bytes) {
        if (bytes > 500) throw std::runtime_error("simulated writer death");
      });
  EXPECT_THROW(igr::io::write_checkpoint(path.string(), q, 2.0),
               std::runtime_error);
  igr::io::set_checkpoint_write_fault({});
  EXPECT_EQ(igr::io::dir_fsyncs(), before + 2);

  fs::remove(path);
  fs::remove(path.string() + ".manifest");
  fs::remove(path.string() + ".tmp");
}

TEST(CheckpointV2, ManifestRoundTripAndMissingFile) {
  const auto path = fs::temp_directory_path() / "igr_ckpt.manifest";
  EXPECT_TRUE(igr::io::read_manifest(path.string()).empty());

  std::vector<igr::io::ManifestEntry> entries{
      {5, 0.1234567890123456789, "/tmp/a.ckpt5"},
      {10, 0.25, "/tmp/a.ckpt10"},
  };
  igr::io::write_manifest(path.string(), entries);
  const auto back = igr::io::read_manifest(path.string());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].step, 5);
  EXPECT_DOUBLE_EQ(back[0].time, entries[0].time);  // %.17g round-trips
  EXPECT_EQ(back[1].path, "/tmp/a.ckpt10");
  fs::remove(path);
}

}  // namespace
