/// Tests for binary checkpoint/restart: bit-exact round trips at every
/// storage precision, header validation, and restart-equivalence of a
/// simulation (continue == straight-through run).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/igr_solver3d.hpp"
#include "io/checkpoint.hpp"

namespace {

namespace fs = std::filesystem;
using igr::common::kNumVars;
using igr::common::StateField3;

template <class T>
StateField3<T> make_state(int n) {
  StateField3<T> q(n, n, n, 3);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
          q[c](i, j, k) = static_cast<T>(
              0.1 * c + std::sin(0.3 * i) * std::cos(0.2 * j) + 0.01 * k);
  return q;
}

template <class T>
class CheckpointRoundTrip : public ::testing::Test {};

using StorageTypes = ::testing::Types<double, float, igr::common::half>;
TYPED_TEST_SUITE(CheckpointRoundTrip, StorageTypes);

TYPED_TEST(CheckpointRoundTrip, BitExactAtEveryPrecision) {
  const auto path =
      fs::temp_directory_path() / ("igr_ckpt_" +
                                   std::to_string(sizeof(TypeParam)) + ".bin");
  const auto q = make_state<TypeParam>(6);
  igr::io::write_checkpoint(path.string(), q, 1.25);

  StateField3<TypeParam> r(6, 6, 6, 3);
  const double t = igr::io::read_checkpoint(path.string(), r);
  EXPECT_DOUBLE_EQ(t, 1.25);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < 6; ++k)
      for (int j = 0; j < 6; ++j)
        for (int i = 0; i < 6; ++i)
          ASSERT_EQ(static_cast<double>(q[c](i, j, k)),
                    static_cast<double>(r[c](i, j, k)));
  fs::remove(path);
}

TEST(Checkpoint, HeaderRecordsMetadata) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_hdr.bin";
  const auto q = make_state<float>(5);
  igr::io::write_checkpoint(path.string(), q, 3.5);
  const auto h = igr::io::read_checkpoint_header(path.string());
  EXPECT_EQ(h.nx, 5);
  EXPECT_EQ(h.storage_bytes, 4u);
  EXPECT_EQ(h.num_vars, 5);
  EXPECT_DOUBLE_EQ(h.time, 3.5);
  fs::remove(path);
}

TEST(Checkpoint, RejectsShapeMismatch) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_shape.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);
  StateField3<double> wrong(8, 8, 8, 3);
  EXPECT_THROW(igr::io::read_checkpoint(path.string(), wrong),
               std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, RejectsPrecisionMismatch) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_prec.bin";
  igr::io::write_checkpoint(path.string(), make_state<double>(6), 0.0);
  StateField3<float> wrong(6, 6, 6, 3);
  EXPECT_THROW(igr::io::read_checkpoint(path.string(), wrong),
               std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, RejectsGarbageFile) {
  const auto path = fs::temp_directory_path() / "igr_ckpt_garbage.bin";
  {
    std::ofstream out(path);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(igr::io::read_checkpoint_header(path.string()),
               std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, RestartedRunMatchesStraightThrough) {
  // 6 steps straight vs 3 steps + checkpoint + restart + 3 steps: the
  // restarted solver must match bitwise (fixed dt; Sigma is re-derived from
  // the state by the warm-started solve, which is part of the state's
  // definition only through the initial guess — use Jacobi + enough sweeps
  // to make the restart difference vanish below round-off).
  using igr::common::Fp64;
  using igr::core::IgrSolver3D;
  const auto g = igr::mesh::Grid::cube(10);
  igr::common::SolverConfig cfg;
  cfg.alpha_factor = 5.0;
  const auto bc = igr::fv::BcSpec::all_periodic();
  auto ic = [](double x, double y, double) {
    igr::common::Prim<double> w;
    w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x);
    w.u = 0.3 * std::cos(2 * M_PI * y);
    w.p = 1.0;
    return w;
  };

  IgrSolver3D<Fp64> full(g, cfg, bc);
  full.init(ic);
  for (int s = 0; s < 6; ++s) full.step_fixed(1e-3);

  IgrSolver3D<Fp64> first(g, cfg, bc);
  first.init(ic);
  for (int s = 0; s < 3; ++s) first.step_fixed(1e-3);
  const auto path = fs::temp_directory_path() / "igr_ckpt_restart.bin";
  igr::io::write_checkpoint(path.string(), first.state(), first.time());

  IgrSolver3D<Fp64> resumed(g, cfg, bc);
  const double t = igr::io::read_checkpoint(path.string(), resumed.state());
  EXPECT_NEAR(t, 3e-3, 1e-15);
  for (int s = 0; s < 3; ++s) resumed.step_fixed(1e-3);
  fs::remove(path);

  // Sigma's warm start differs across the restart (zero vs converged), so
  // the runs agree to the iteration error of the well-conditioned solve.
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 10; ++j)
      for (int i = 0; i < 10; ++i)
        ASSERT_NEAR(full.state()[0](i, j, k), resumed.state()[0](i, j, k),
                    1e-6);
}

}  // namespace
