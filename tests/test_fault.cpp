/// Fault-tolerance tests: deterministic fault injection (comm post/complete,
/// rank-worker death, torn IO writes), the communicator's no-deadlock abort
/// and wait-timeout paths, the run-health scan, and the guarded runner's
/// rollback/retry + latest-valid-manifest resume.  These carry the
/// `fault-smoke` ctest label so the sanitize and TSan CI jobs race-check the
/// injected-abort unwind.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "app/health.hpp"
#include "cases/runner.hpp"
#include "io/checkpoint.hpp"
#include "sim/comm.hpp"
#include "sim/fault.hpp"

namespace {

namespace fs = std::filesystem;
using namespace igr;

/// Fresh scratch directory per test (guarded runs leave checkpoint files).
fs::path scratch_dir(const std::string& name) {
  const fs::path d = fs::temp_directory_path() / ("igr_fault_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

// --- FaultPlan / FaultInjector -------------------------------------------

TEST(FaultPlan, ParseRoundTrip) {
  const auto p = sim::FaultPlan::parse("post=3");
  EXPECT_EQ(p.comm_post_at, 3);
  EXPECT_TRUE(p.armed());

  const auto q = sim::FaultPlan::parse("phase=2@1,io=7");
  EXPECT_EQ(q.phase_at, 2);
  EXPECT_EQ(q.phase_rank, 1);
  EXPECT_EQ(q.io_write_at, 7);
  EXPECT_NE(q.describe().find("phase@2 rank 1"), std::string::npos);

  EXPECT_FALSE(sim::FaultPlan{}.armed());
  EXPECT_EQ(sim::FaultPlan{}.describe(), "disarmed");
  EXPECT_THROW(sim::FaultPlan::parse("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("post=banana"), std::invalid_argument);
}

TEST(FaultPlan, SeededPlansAreDeterministicAndArmed) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto a = sim::FaultPlan::from_seed(seed);
    const auto b = sim::FaultPlan::from_seed(seed);
    EXPECT_TRUE(a.armed()) << "seed " << seed;
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
  }
  // The seed also reaches the plan via the parse() front door.
  const auto c = sim::FaultPlan::parse("seed=7");
  EXPECT_EQ(c.describe(), sim::FaultPlan::from_seed(7).describe());
}

TEST(FaultInjector, FiresExactlyOnceAtItsOrdinal) {
  sim::FaultPlan plan;
  plan.comm_post_at = 3;
  sim::FaultInjector inj(plan);
  EXPECT_NO_THROW(inj.on_comm_post());
  EXPECT_NO_THROW(inj.on_comm_post());
  EXPECT_FALSE(inj.fired());
  EXPECT_THROW(inj.on_comm_post(), sim::InjectedFault);
  EXPECT_TRUE(inj.fired());
  // The counter keeps growing past the trigger: a retry after rollback must
  // not re-hit the same fault (that is the injector-outlives-rebuild
  // contract the guarded runner relies on).
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(inj.on_comm_post());
  EXPECT_EQ(inj.comm_posts(), 13);
}

// --- Comm: abort + timeout never deadlock --------------------------------

TEST(CommFault, WaitTimeoutAbortsInsteadOfDeadlocking) {
  const auto g = mesh::Grid::cube(8);
  sim::Comm comm(g, 2, 1, 1, /*periodic=*/true);
  comm.set_wait_timeout(0.2);

  const auto lg = comm.local_grid(0);
  common::Field3<double> f(lg.nx(), lg.ny(), lg.nz(), 2);
  const common::Field3<double>* cf = &f;
  comm.post_axis(sim::Comm::kChanGeneral, 0, &cf, 1, 0);

  // Rank 1 never posts (a dead peer): rank 0's complete must time out and
  // self-abort with a reason rather than spin forever.
  common::Field3<double>* mf = &f;
  EXPECT_FALSE(comm.complete_axis(sim::Comm::kChanGeneral, 0, &mf, 1, 0));
  EXPECT_TRUE(comm.aborted());
  EXPECT_NE(comm.abort_reason().find("halo wait exceeded"), std::string::npos)
      << comm.abort_reason();
}

TEST(CommFault, InjectedPostFaultPoisonsTheDriverWithItsReason) {
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 4;
  opts.ranks = {2, 1, 1};
  opts.jacobi_sweeps = true;
  opts.faults = sim::FaultPlan::parse("post=10");
  opts.comm_timeout_s = 30.0;
  cases::CaseRun<common::Fp64> run(*spec, opts);

  // The fault surfaces from step() as the InjectedFault it is (RankTeam
  // rethrows the worker's first exception; Comm's abort wakes every peer —
  // under TSan this is the no-deadlock unwind being race-checked).
  EXPECT_THROW(
      {
        for (int s = 0; s < 4; ++s) run.step();
      },
      sim::InjectedFault);
  ASSERT_NE(run.injector(), nullptr);
  EXPECT_TRUE(run.injector()->fired());

  // The communicator is latched poisoned: further stepping refuses loudly
  // and names the original fault instead of computing on stale halos.
  try {
    run.step();
    FAIL() << "expected the poisoned communicator to refuse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("injected fault"), std::string::npos)
        << e.what();
  }
}

TEST(CommFault, HalfWireWaitTimeoutAbortsInsteadOfDeadlocking) {
  // Same dead-peer shape as above, but with the channel narrowed to
  // binary16 on the wire: the encode/decode path must sit inside the same
  // bounded-wait/abort envelope as the full-width path.
  const auto g = mesh::Grid::cube(8);
  sim::Comm comm(g, 2, 1, 1, /*periodic=*/true);
  comm.set_wait_timeout(0.2);
  comm.set_wire(sim::Comm::kChanGeneral, sim::Comm::WirePrecision::kHalf);

  const auto lg = comm.local_grid(0);
  common::Field3<double> f(lg.nx(), lg.ny(), lg.nz(), 2);
  const common::Field3<double>* cf = &f;
  comm.post_axis(sim::Comm::kChanGeneral, 0, &cf, 1, 0);

  common::Field3<double>* mf = &f;
  EXPECT_FALSE(comm.complete_axis(sim::Comm::kChanGeneral, 0, &mf, 1, 0));
  EXPECT_TRUE(comm.aborted());
  EXPECT_NE(comm.abort_reason().find("halo wait exceeded"), std::string::npos)
      << comm.abort_reason();
}

// --- Fault injection x wire precision -------------------------------------

/// Guarded recovery with binary16 halo narrowing active: inject `fault_spec`
/// mid-run and require the rollback/retry to land on exactly the bits of an
/// unfaulted run at the same wire width.
template <class Policy>
void expect_half_wire_recovery(const char* fault_spec, const char* tag) {
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir(tag);

  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 8;
  opts.ranks = {2, 1, 1};
  opts.jacobi_sweeps = true;
  opts.halo_wire = sim::Comm::WirePrecision::kHalf;
  opts.comm_timeout_s = 30.0;

  const auto clean = cases::run_case<Policy>(*spec, opts);

  opts.faults = sim::FaultPlan::parse(fault_spec);
  cases::GuardOptions guard;
  guard.checkpoint_every = 2;
  guard.dir = dir.string();
  guard.max_retries = 2;
  // A comm fault is transient, not an instability: retry at the SAME CFL so
  // the checkpoint-resumed continuation can be compared bitwise.  (The
  // default 0.5 backoff targets unhealthy states, where replaying the same
  // trajectory would just blow up again.)
  guard.cfl_backoff = 1.0;

  const auto rep = cases::run_case_guarded<Policy>(*spec, opts, guard);
  EXPECT_TRUE(rep.completed) << rep.failure;
  EXPECT_GE(rep.retries, 1);  // the injected fault really fired
  EXPECT_EQ(rep.result.state_fnv, clean.state_fnv)
      << "half-wire recovery diverged from the unfaulted run";
  // The guard report names the plan it ran under (forensics contract).
  EXPECT_EQ(rep.fault_plan, opts.faults.describe());
  fs::remove_all(dir);
}

TEST(GuardedRunHalfWire, Fp64PostFaultRecoversBitwise) {
  expect_half_wire_recovery<common::Fp64>("post=300", "hw_post64");
}

TEST(GuardedRunHalfWire, Fp64CompleteFaultRecoversBitwise) {
  expect_half_wire_recovery<common::Fp64>("complete=200", "hw_complete64");
}

TEST(GuardedRunHalfWire, Bf16x32CompleteFaultRecoversBitwise) {
  // 16-bit storage: kHalf is the identity on the wire, and the recovery
  // contract must hold there too.
  expect_half_wire_recovery<common::Bf16x32>("complete=200", "hw_bf16");
}

// --- Health scan ----------------------------------------------------------

common::StateField3<double> uniform_state(int n, double rho, double e) {
  common::StateField3<double> q(n, n, n, 2);
  for (int c = 0; c < common::kNumVars; ++c)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
          q[c](i, j, k) = (c == common::kRho) ? rho
                          : (c == common::kEnergy) ? e
                                              : 0.0;
  return q;
}

TEST(Health, CleanStateIsHealthy) {
  const eos::IdealGas eos(1.4);
  const auto h = app::scan_health(uniform_state(4, 1.0, 2.5), eos);
  EXPECT_TRUE(h.healthy());
  EXPECT_TRUE(h.healthy(/*strict_pressure=*/true));
  EXPECT_EQ(h.cells, 64u);
  EXPECT_DOUBLE_EQ(h.min_density, 1.0);
  EXPECT_DOUBLE_EQ(h.min_pressure, 1.0);  // (gamma-1) * 2.5
}

TEST(Health, NanAndNegativeDensityAreAlwaysFatal) {
  const eos::IdealGas eos(1.4);
  auto q = uniform_state(4, 1.0, 2.5);
  q[common::kEnergy](1, 2, 3) = std::nan("");
  q[common::kRho](0, 0, 0) = -0.5;
  const auto h = app::scan_health(q, eos);
  EXPECT_EQ(h.nonfinite_cells, 1u);
  EXPECT_EQ(h.negative_density_cells, 1u);
  EXPECT_FALSE(h.healthy());
  EXPECT_NE(h.describe().find("1 nonfinite"), std::string::npos);
}

TEST(Health, NonpositivePressureFailsOnlyStrictScans) {
  // E below the kinetic floor: finite, positive rho, negative pressure —
  // the jet start-up-transient shape, fatal only under strict_pressure.
  const eos::IdealGas eos(1.4);
  auto q = uniform_state(4, 1.0, 2.5);
  q[common::kMomX](2, 2, 2) = 3.0;  // ke = 4.5 > E = 2.5
  const auto h = app::scan_health(q, eos);
  EXPECT_EQ(h.nonpositive_pressure_cells, 1u);
  EXPECT_TRUE(h.healthy());
  EXPECT_FALSE(h.healthy(/*strict_pressure=*/true));
}

// --- Guarded runner: rollback/retry, resume, torn IO ---------------------

TEST(GuardedRun, RecoversFromInjectedCommFault) {
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir("comm");

  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 8;
  opts.ranks = {2, 1, 1};
  opts.jacobi_sweeps = true;
  opts.faults = sim::FaultPlan::parse("post=300");
  opts.comm_timeout_s = 30.0;
  cases::GuardOptions guard;
  guard.checkpoint_every = 2;
  guard.dir = dir.string();
  guard.max_retries = 2;

  const auto rep = cases::run_case_guarded<common::Fp64>(*spec, opts, guard);
  EXPECT_TRUE(rep.completed) << rep.failure;
  EXPECT_GE(rep.retries, 1);
  EXPECT_EQ(rep.result.steps, 8);
  EXPECT_GE(rep.checkpoints_written, 2);
  fs::remove_all(dir);
}

TEST(GuardedRun, RecoversFromRankWorkerDeath) {
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir("phase");

  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 6;
  opts.ranks = {2, 1, 1};
  opts.jacobi_sweeps = true;
  opts.faults = sim::FaultPlan::parse("phase=40@1");
  opts.comm_timeout_s = 30.0;
  cases::GuardOptions guard;
  guard.checkpoint_every = 2;
  guard.dir = dir.string();
  guard.max_retries = 2;

  const auto rep = cases::run_case_guarded<common::Fp64>(*spec, opts, guard);
  EXPECT_TRUE(rep.completed) << rep.failure;
  EXPECT_GE(rep.retries, 1);
  fs::remove_all(dir);
}

TEST(GuardedRun, ResumeSkipsCorruptNewestCheckpoint) {
  const auto* spec = cases::find("sod-x");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir("resume");

  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 12;
  cases::GuardOptions guard;
  guard.checkpoint_every = 4;
  guard.dir = dir.string();

  const auto first = cases::run_case_guarded<common::Fp64>(*spec, opts, guard);
  ASSERT_TRUE(first.completed) << first.failure;
  const std::uint64_t straight_fnv = first.result.state_fnv;

  // Bit-rot the newest checkpoint's payload: resume must CRC-detect it and
  // fall back to the previous valid entry, then still land on the same
  // bits as the uninterrupted run (single-domain restarts are bitwise).
  const auto manifest =
      io::read_manifest((dir / "sod-x.manifest").string());
  ASSERT_GE(manifest.size(), 2u);
  const auto& newest = manifest.back();
  {
    std::fstream f(newest.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(newest.path) - 64));
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }

  guard.resume = true;
  const auto second =
      cases::run_case_guarded<common::Fp64>(*spec, opts, guard);
  EXPECT_TRUE(second.completed) << second.failure;
  EXPECT_EQ(second.resumed_step, manifest[manifest.size() - 2].step);
  EXPECT_GE(second.checkpoints_rejected, 1);
  EXPECT_EQ(second.result.state_fnv, straight_fnv);
  fs::remove_all(dir);
}

TEST(GuardedRun, HealthGuardBacksOffCflUntilStable) {
  // WENO at CFL 1.0 (2.5 x the registered 0.4) blows up on the Sedov blast
  // within a few dozen steps; the health guard must catch the nonfinite
  // state, roll back, and complete at a reduced CFL.
  const auto* spec = cases::find("sedov");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir("cfl");

  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 40;
  opts.scheme = app::SchemeKind::kBaselineWeno;
  opts.cfl_scale = 2.5;
  cases::GuardOptions guard;
  guard.checkpoint_every = 8;
  guard.health_every = 2;
  guard.dir = dir.string();
  guard.max_retries = 3;
  guard.cfl_backoff = 0.3;

  const auto rep = cases::run_case_guarded<common::Fp64>(*spec, opts, guard);
  EXPECT_TRUE(rep.completed) << rep.failure;
  EXPECT_GE(rep.retries, 1);
  EXPECT_LT(rep.final_cfl_scale, 2.5);
  EXPECT_TRUE(std::isfinite(rep.result.diag.min_pressure));
  fs::remove_all(dir);
}

TEST(GuardedRun, RetryBudgetExhaustionFailsCleanly) {
  const auto* spec = cases::find("sedov");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir("exhaust");

  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 40;
  opts.scheme = app::SchemeKind::kBaselineWeno;
  opts.cfl_scale = 2.5;
  cases::GuardOptions guard;
  guard.health_every = 2;
  guard.dir = dir.string();
  guard.max_retries = 0;  // no second chances

  const auto rep = cases::run_case_guarded<common::Fp64>(*spec, opts, guard);
  EXPECT_FALSE(rep.completed);
  EXPECT_NE(rep.failure.find("unhealthy"), std::string::npos) << rep.failure;
  EXPECT_NE(rep.failure.find("exhausted"), std::string::npos) << rep.failure;
  fs::remove_all(dir);
}

TEST(GuardedRun, TornCheckpointWriteIsSurvived) {
  const auto* spec = cases::find("sod-x");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir("torn");

  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 9;
  opts.faults = sim::FaultPlan::parse("io=40");  // dies in the first save
  cases::GuardOptions guard;
  guard.checkpoint_every = 3;
  guard.dir = dir.string();

  const auto rep = cases::run_case_guarded<common::Fp64>(*spec, opts, guard);
  EXPECT_TRUE(rep.completed) << rep.failure;
  EXPECT_EQ(rep.checkpoint_failures, 1);
  EXPECT_GE(rep.checkpoints_written, 2);  // the later cadences succeed
  EXPECT_EQ(rep.retries, 0);  // a torn save never harms the run itself

  // Every manifest entry must point at a file that passes a full CRC scan
  // (the torn temp never reached a final path or the manifest).
  const auto manifest =
      io::read_manifest((dir / "sod-x.manifest").string());
  EXPECT_GE(manifest.size(), 2u);
  for (const auto& e : manifest) {
    const auto v = io::validate_checkpoint(e.path);
    EXPECT_TRUE(v.ok) << e.path << ": " << v.error;
  }
  fs::remove_all(dir);
}

}  // namespace
