/// Tests for the simulated communicator: halo exchange correctness against
/// the single-domain ghost fill, traffic metering, and local grids.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "eos/ideal_gas.hpp"
#include "fv/bc.hpp"
#include "sim/comm.hpp"

namespace {

using igr::common::Field3;
using igr::common::kNumVars;
using igr::common::StateField3;
using igr::mesh::Grid;
using igr::sim::Comm;

constexpr int kN = 12;
constexpr int kNg = 3;

double cell_value(int gi, int gj, int gk) {
  return 1.0 * gi + 100.0 * gj + 10000.0 * gk;
}

TEST(Comm, LocalGridsTileTheGlobalDomain) {
  const auto g = Grid(kN, kN, kN, {0.0, 3.0}, {0.0, 3.0}, {0.0, 3.0});
  Comm comm(g, 2, 2, 1, true);
  double vol = 0.0;
  for (int r = 0; r < comm.ranks(); ++r) {
    const auto lg = comm.local_grid(r);
    vol += lg.lx() * lg.ly() * lg.lz();
    EXPECT_DOUBLE_EQ(lg.dx(), g.dx());
  }
  EXPECT_NEAR(vol, 27.0, 1e-12);
}

TEST(Comm, LocalGridCoordinatesAreGlobal) {
  const auto g = Grid::cube(kN);
  Comm comm(g, 2, 1, 1, true);
  const auto lg1 = comm.local_grid(1);
  // Rank 1 starts at global cell kN/2 along x.
  EXPECT_NEAR(lg1.x(0), g.x(kN / 2), 1e-14);
}

/// Scatter a globally indexed field into per-rank blocks.
std::vector<Field3<double>> scatter(const Comm& comm) {
  std::vector<Field3<double>> blocks;
  for (int r = 0; r < comm.ranks(); ++r) {
    const auto b = comm.decomp().block(r);
    Field3<double> f(b.n[0], b.n[1], b.n[2], kNg);
    for (int k = 0; k < b.n[2]; ++k)
      for (int j = 0; j < b.n[1]; ++j)
        for (int i = 0; i < b.n[0]; ++i)
          f(i, j, k) = cell_value(b.lo[0] + i, b.lo[1] + j, b.lo[2] + k);
    blocks.push_back(std::move(f));
  }
  return blocks;
}

TEST(Comm, ExchangeFillsInteriorFaceGhosts) {
  const auto g = Grid::cube(kN);
  Comm comm(g, 2, 2, 1, true);
  auto blocks = scatter(comm);
  std::vector<Field3<double>*> ptrs;
  for (auto& b : blocks) ptrs.push_back(&b);
  comm.exchange(ptrs);

  // Rank 0's x-high ghosts must hold rank 1's first interior cells.
  const auto b0 = comm.decomp().block(0);
  for (int gl = 0; gl < kNg; ++gl)
    for (int k = 0; k < b0.n[2]; ++k)
      for (int j = 0; j < b0.n[1]; ++j)
        EXPECT_EQ(blocks[0](b0.n[0] + gl, j, k),
                  cell_value(b0.n[0] + gl, j, k));
}

TEST(Comm, PeriodicWrapAcrossDomainBoundary) {
  const auto g = Grid::cube(kN);
  Comm comm(g, 2, 1, 1, true);
  auto blocks = scatter(comm);
  std::vector<Field3<double>*> ptrs;
  for (auto& b : blocks) ptrs.push_back(&b);
  comm.exchange(ptrs);
  // Rank 0's x-low ghosts wrap to rank 1's last interior cells.
  EXPECT_EQ(blocks[0](-1, 2, 2), cell_value(kN - 1, 2, 2));
  EXPECT_EQ(blocks[0](-3, 2, 2), cell_value(kN - 3, 2, 2));
}

TEST(Comm, SingleRankSelfExchangeEqualsPeriodicFill) {
  // With one rank the exchange must reproduce exactly what the single-domain
  // periodic ghost fill produces — the bitwise-equivalence cornerstone.
  const auto g = Grid::cube(kN);
  Comm comm(g, 1, 1, 1, true);

  StateField3<double> qa(kN, kN, kN, kNg), qb(kN, kN, kN, kNg);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i) {
          const double v = cell_value(i, j, k) + 7.0 * c;
          qa[c](i, j, k) = v;
          qb[c](i, j, k) = v;
        }

  igr::eos::IdealGas eos(1.4);
  igr::fv::apply_bc(qa, igr::fv::BcSpec::all_periodic(), g, eos);
  comm.exchange_state(std::vector<StateField3<double>*>{&qb});

  for (int c = 0; c < kNumVars; ++c)
    for (int k = -kNg; k < kN + kNg; ++k)
      for (int j = -kNg; j < kN + kNg; ++j)
        for (int i = -kNg; i < kN + kNg; ++i)
          ASSERT_EQ(qa[c](i, j, k), qb[c](i, j, k))
              << c << " " << i << " " << j << " " << k;
}

TEST(Comm, DecomposedExchangeMatchesGlobalPeriodicFill) {
  // Scatter, exchange, and compare every ghost against the global wrap.
  // Layouts cover even splits, uneven splits (12 over 5 ranks: 3,3,2,2,2),
  // blocks thinner than the ghost depth (12 over 5 and 6), and fully
  // 1-cell-thick pencils (12 over 12) whose halos must hop across several
  // owner ranks per face.
  const auto g = Grid::cube(kN);
  for (auto [rx, ry, rz] : {std::array<int, 3>{2, 1, 1},
                            std::array<int, 3>{2, 2, 1},
                            std::array<int, 3>{2, 2, 3},
                            std::array<int, 3>{5, 1, 1},
                            std::array<int, 3>{1, 5, 2},
                            std::array<int, 3>{6, 1, 2},
                            std::array<int, 3>{12, 1, 1},
                            std::array<int, 3>{1, 1, 12},
                            std::array<int, 3>{4, 3, 2}}) {
    Comm comm(g, rx, ry, rz, true);
    auto blocks = scatter(comm);
    std::vector<Field3<double>*> ptrs;
    for (auto& b : blocks) ptrs.push_back(&b);
    comm.exchange(ptrs);
    for (int r = 0; r < comm.ranks(); ++r) {
      const auto b = comm.decomp().block(r);
      for (int k = -kNg; k < b.n[2] + kNg; ++k)
        for (int j = -kNg; j < b.n[1] + kNg; ++j)
          for (int i = -kNg; i < b.n[0] + kNg; ++i) {
            const int gi = ((b.lo[0] + i) % kN + kN) % kN;
            const int gj = ((b.lo[1] + j) % kN + kN) % kN;
            const int gk = ((b.lo[2] + k) % kN + kN) % kN;
            ASSERT_EQ(blocks[static_cast<std::size_t>(r)](i, j, k),
                      cell_value(gi, gj, gk))
                << rx << ry << rz << " rank " << r;
          }
    }
  }
}

TEST(Comm, NonPeriodicLeavesPhysicalGhostsUntouched) {
  const auto g = Grid::cube(kN);
  Comm comm(g, 2, 1, 1, false);
  auto blocks = scatter(comm);
  blocks[0](-1, 0, 0) = -777.0;  // sentinel in a physical ghost
  std::vector<Field3<double>*> ptrs;
  for (auto& b : blocks) ptrs.push_back(&b);
  comm.exchange(ptrs);
  EXPECT_EQ(blocks[0](-1, 0, 0), -777.0);
  // But the interior face was exchanged.
  const auto b0 = comm.decomp().block(0);
  EXPECT_EQ(blocks[0](b0.n[0], 0, 0), cell_value(b0.n[0], 0, 0));
}

TEST(Comm, TrafficMeteringCountsBytes) {
  const auto g = Grid::cube(kN);
  Comm comm(g, 2, 1, 1, true);
  auto blocks = scatter(comm);
  std::vector<Field3<double>*> ptrs;
  for (auto& b : blocks) ptrs.push_back(&b);
  comm.reset_traffic();
  comm.exchange(ptrs);
  // Two ranks, x-axis only has interior+wrap faces: each rank receives
  // ng * (ny+2ng) * ... — just sanity-check nonzero and units of 8 bytes.
  EXPECT_GT(comm.bytes_exchanged(), 0u);
  EXPECT_EQ(comm.bytes_exchanged() % sizeof(double), 0u);
}

TEST(Comm, ByteMeteringCrossChecksDecompHaloCells) {
  // The metering the scaling model's traffic terms are validated against:
  // an x-axis exchange moves exactly ng * (tangential area) cells per face,
  // which is what Decomp::halo_cells predicts (x goes first, so no
  // tangential widening yet).
  const auto g = Grid::cube(kN);
  Comm comm(g, 3, 2, 1, true);
  auto blocks = scatter(comm);
  std::vector<Field3<double>*> ptrs;
  for (auto& b : blocks) ptrs.push_back(&b);
  comm.reset_traffic();
  comm.exchange_axis(ptrs, 0);
  std::size_t expect = 0;
  for (int r = 0; r < comm.ranks(); ++r) {
    expect += comm.decomp().halo_cells(r, igr::mesh::Face::kXLo, kNg);
    expect += comm.decomp().halo_cells(r, igr::mesh::Face::kXHi, kNg);
  }
  EXPECT_EQ(comm.bytes_exchanged(), expect * sizeof(double));
}

TEST(Comm, HalfWireMetersWireBytesAndRoundTripsExactValues) {
  // kHalf wire on FP64 payloads: the meter must count the 2-byte wire
  // elements actually moved (not the 8-byte storage elements), and values
  // exactly representable in binary16 must survive the
  // double -> float -> half -> float -> double round trip unchanged.
  const auto g = Grid::cube(kN);
  Comm comm(g, 3, 2, 1, true);
  comm.set_wire(Comm::kChanGeneral, Comm::WirePrecision::kHalf);

  // Integers below 2^11 are exact in binary16.
  auto exact = [](int gi, int gj, int gk) {
    return 1.0 * gi + 13.0 * gj + 169.0 * gk;  // max 2013 < 2048
  };
  std::vector<Field3<double>> blocks;
  for (int r = 0; r < comm.ranks(); ++r) {
    const auto b = comm.decomp().block(r);
    Field3<double> f(b.n[0], b.n[1], b.n[2], kNg);
    for (int k = 0; k < b.n[2]; ++k)
      for (int j = 0; j < b.n[1]; ++j)
        for (int i = 0; i < b.n[0]; ++i)
          f(i, j, k) = exact(b.lo[0] + i, b.lo[1] + j, b.lo[2] + k);
    blocks.push_back(std::move(f));
  }
  std::vector<Field3<double>*> ptrs;
  for (auto& b : blocks) ptrs.push_back(&b);
  comm.reset_traffic();
  comm.exchange_axis(ptrs, 0);

  std::size_t expect = 0;
  for (int r = 0; r < comm.ranks(); ++r) {
    expect += comm.decomp().halo_cells(r, igr::mesh::Face::kXLo, kNg);
    expect += comm.decomp().halo_cells(r, igr::mesh::Face::kXHi, kNg);
  }
  // Same cell count as the full-width exchange, 2 bytes each on the wire.
  EXPECT_EQ(comm.bytes_exchanged(), expect * sizeof(igr::common::half));

  for (int r = 0; r < comm.ranks(); ++r) {
    const auto b = comm.decomp().block(r);
    for (int k = 0; k < b.n[2]; ++k)
      for (int j = 0; j < b.n[1]; ++j)
        for (int gl = 0; gl < kNg; ++gl) {
          const int gi = ((b.lo[0] - 1 - gl) % kN + kN) % kN;
          ASSERT_EQ(blocks[static_cast<std::size_t>(r)](-1 - gl, j, k),
                    exact(gi, b.lo[1] + j, b.lo[2] + k))
              << "rank " << r;
        }
  }
}

TEST(Comm, HalfWireQuartersFp64AndHalvesFp32Traffic) {
  // The byte-reduction claim, measured: identical exchanges at full vs half
  // wire must meter exactly 4x fewer bytes for FP64 payloads and exactly 2x
  // fewer for FP32 (same cell counts, 8->2 and 4->2 bytes per value).
  const auto g = Grid::cube(kN);

  auto run_double = [&](Comm::WirePrecision w) {
    Comm comm(g, 2, 2, 1, true);
    comm.set_wire(Comm::kChanGeneral, w);
    auto blocks = scatter(comm);
    std::vector<Field3<double>*> ptrs;
    for (auto& b : blocks) ptrs.push_back(&b);
    comm.reset_traffic();
    comm.exchange(ptrs);
    return comm.bytes_exchanged();
  };
  auto run_float = [&](Comm::WirePrecision w) {
    Comm comm(g, 2, 2, 1, true);
    comm.set_wire(Comm::kChanGeneral, w);
    std::vector<Field3<float>> blocks;
    for (int r = 0; r < comm.ranks(); ++r) {
      const auto b = comm.decomp().block(r);
      Field3<float> f(b.n[0], b.n[1], b.n[2], kNg);
      for (int k = 0; k < b.n[2]; ++k)
        for (int j = 0; j < b.n[1]; ++j)
          for (int i = 0; i < b.n[0]; ++i)
            f(i, j, k) = static_cast<float>(
                cell_value(b.lo[0] + i, b.lo[1] + j, b.lo[2] + k));
      blocks.push_back(std::move(f));
    }
    std::vector<Field3<float>*> ptrs;
    for (auto& b : blocks) ptrs.push_back(&b);
    comm.reset_traffic();
    comm.exchange(ptrs);
    return comm.bytes_exchanged();
  };

  const auto d_full = run_double(Comm::WirePrecision::kFull);
  const auto d_half = run_double(Comm::WirePrecision::kHalf);
  ASSERT_GT(d_half, 0u);
  EXPECT_EQ(d_full, 4 * d_half);

  const auto f_full = run_float(Comm::WirePrecision::kFull);
  const auto f_half = run_float(Comm::WirePrecision::kHalf);
  ASSERT_GT(f_half, 0u);
  EXPECT_EQ(f_full, 2 * f_half);
  // Cell counts agree across payload types: full-width FP32 already moves
  // exactly half of full-width FP64.
  EXPECT_EQ(d_full, 2 * f_full);
}

TEST(Comm, HalfWirePassesTwoByteStorageThroughBitwise) {
  // binary16 payloads are already at wire width: kHalf must be a bitwise
  // no-op (no double conversion), same meter as kFull.
  using igr::common::half;
  const auto g = Grid::cube(kN);
  auto run = [&](Comm::WirePrecision w, std::size_t& bytes) {
    Comm comm(g, 2, 1, 1, true);
    comm.set_wire(Comm::kChanGeneral, w);
    std::vector<Field3<half>> blocks;
    for (int r = 0; r < comm.ranks(); ++r) {
      const auto b = comm.decomp().block(r);
      Field3<half> f(b.n[0], b.n[1], b.n[2], kNg);
      for (int k = 0; k < b.n[2]; ++k)
        for (int j = 0; j < b.n[1]; ++j)
          for (int i = 0; i < b.n[0]; ++i)
            f(i, j, k) = half(0.37f * static_cast<float>(b.lo[0] + i) +
                              0.11f * static_cast<float>(j) -
                              0.53f * static_cast<float>(k));
      blocks.push_back(std::move(f));
    }
    std::vector<Field3<half>*> ptrs;
    for (auto& b : blocks) ptrs.push_back(&b);
    comm.reset_traffic();
    comm.exchange(ptrs);
    bytes = comm.bytes_exchanged();
    return blocks;
  };
  std::size_t bytes_full = 0, bytes_half = 0;
  const auto full = run(Comm::WirePrecision::kFull, bytes_full);
  const auto halfw = run(Comm::WirePrecision::kHalf, bytes_half);
  EXPECT_EQ(bytes_full, bytes_half);
  for (std::size_t r = 0; r < full.size(); ++r) {
    const auto b = Comm(g, 2, 1, 1, true).decomp().block(static_cast<int>(r));
    for (int k = -kNg; k < b.n[2] + kNg; ++k)
      for (int j = -kNg; j < b.n[1] + kNg; ++j)
        for (int i = -kNg; i < b.n[0] + kNg; ++i)
          ASSERT_EQ(full[r](i, j, k).bits(), halfw[r](i, j, k).bits());
  }
}

TEST(Comm, PostCompleteSplitMatchesCollectiveExchange) {
  // The nonblocking-style pipeline: post every rank first, then complete in
  // reverse order — same ghosts as the lockstep collective call.
  const auto g = Grid::cube(kN);
  Comm comm(g, 3, 1, 1, true);
  auto split = scatter(comm);
  auto coll = scatter(comm);
  std::vector<Field3<double>*> cptrs;
  for (auto& b : coll) cptrs.push_back(&b);
  for (int axis = 0; axis < 3; ++axis) {
    for (int r = 0; r < comm.ranks(); ++r) {
      const Field3<double>* f = &split[static_cast<std::size_t>(r)];
      comm.post_axis(Comm::kChanState, r, &f, 1, axis);
    }
    for (int r = comm.ranks() - 1; r >= 0; --r) {
      Field3<double>* f = &split[static_cast<std::size_t>(r)];
      ASSERT_TRUE(comm.complete_axis(Comm::kChanState, r, &f, 1, axis));
    }
    comm.exchange_axis(cptrs, axis);
  }
  for (int r = 0; r < comm.ranks(); ++r) {
    const auto b = comm.decomp().block(r);
    for (int k = -kNg; k < b.n[2] + kNg; ++k)
      for (int j = -kNg; j < b.n[1] + kNg; ++j)
        for (int i = -kNg; i < b.n[0] + kNg; ++i)
          ASSERT_EQ(split[static_cast<std::size_t>(r)](i, j, k),
                    coll[static_cast<std::size_t>(r)](i, j, k));
  }
}

TEST(Comm, ValidatesDriverDecompositions) {
  const auto g = Grid::cube(kN);
  // Periodic: any thickness is exchangeable (multi-hop halos).
  EXPECT_NO_THROW(Comm(g, 12, 1, 1, true).validate_driver_decomp(kNg));
  // Non-periodic, even 6+6 split: blocks touch a boundary or sit >= ng away.
  EXPECT_NO_THROW(Comm(g, 2, 1, 1, false).validate_driver_decomp(kNg));
  // Non-periodic, 12 over 5 (3,3,2,2,2): the second-to-last block ends 2
  // cells from the x-high boundary — its outer ghost planes would be
  // neither exchanged nor BC-filled.
  EXPECT_THROW(Comm(g, 5, 1, 1, false).validate_driver_decomp(kNg),
               std::invalid_argument);
}

TEST(Comm, AllreduceMin) {
  EXPECT_DOUBLE_EQ(Comm::allreduce_min({3.0, 1.5, 2.0}), 1.5);
  EXPECT_THROW(static_cast<void>(Comm::allreduce_min({})),
               std::invalid_argument);
}

}  // namespace
