/// Isentropic-vortex validation of the 3-D IGR solver: a classic smooth
/// exact solution of the Euler equations (a vortex advecting with the free
/// stream, unchanged in shape).  Exercises all three momentum components'
/// coupling, periodic BCs, and the claim that IGR leaves smooth flow
/// untouched (§4.1) in a genuinely 2-D/3-D setting.

#include <gtest/gtest.h>

#include <cmath>

#include "core/igr_solver3d.hpp"

namespace {

using igr::common::Fp64;
using igr::common::Prim;
using igr::common::SolverConfig;
using igr::core::IgrSolver3D;
using igr::fv::BcSpec;
using igr::mesh::Grid;

constexpr double kGamma = 1.4;
constexpr double kBeta = 1.0;  // vortex strength (mild: stays periodic-clean)
constexpr double kU0 = 1.0;    // advection velocity (x)

/// Vortex centered at (cx, cy) in the z-uniform plane, domain [0,10]^2.
Prim<double> vortex_state(double x, double y, double cx, double cy) {
  // Wrap displacements periodically.
  auto wrap = [](double d) {
    while (d > 5.0) d -= 10.0;
    while (d < -5.0) d += 10.0;
    return d;
  };
  const double dx = wrap(x - cx), dy = wrap(y - cy);
  const double r2 = dx * dx + dy * dy;
  const double e = std::exp(0.5 * (1.0 - r2));
  const double du = -kBeta / (2.0 * M_PI) * e * dy;
  const double dv = kBeta / (2.0 * M_PI) * e * dx;
  const double dT = -(kGamma - 1.0) * kBeta * kBeta /
                    (8.0 * kGamma * M_PI * M_PI) * std::exp(1.0 - r2);
  const double T = 1.0 + dT;
  Prim<double> w;
  w.rho = std::pow(T, 1.0 / (kGamma - 1.0));
  w.u = kU0 + du;
  w.v = dv;
  w.w = 0.0;
  w.p = std::pow(T, kGamma / (kGamma - 1.0));
  return w;
}

double vortex_l1_error(int n, double t_end) {
  SolverConfig cfg;
  cfg.gamma = kGamma;
  cfg.alpha_factor = 5.0;
  cfg.cfl = 0.4;
  Grid g(n, n, 4, {0.0, 10.0}, {0.0, 10.0}, {0.0, 10.0 * 4 / n});
  IgrSolver3D<Fp64> s(g, cfg, BcSpec::all_periodic());
  s.init([](double x, double y, double) {
    return vortex_state(x, y, 5.0, 5.0);
  });
  while (s.time() < t_end) s.step();
  // Exact: same vortex advected by u0 * t.
  double l1 = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double exact =
          vortex_state(g.x(i), g.y(j), 5.0 + kU0 * s.time(), 5.0).rho;
      l1 += std::abs(s.state()[0](i, j, 1) - exact);
    }
  }
  return l1 / (n * n);
}

TEST(IsentropicVortex, TravelsWithoutDistortion) {
  // After one unit of travel the density error stays small and the vortex
  // core is preserved (no IGR over-smoothing of the smooth feature).
  const double e = vortex_l1_error(40, 1.0);
  EXPECT_LT(e, 5e-3);
}

TEST(IsentropicVortex, ErrorConvergesUnderRefinement) {
  // Measured: 3.0e-4 / 1.9e-4 / 0.84e-4 at n = 24/48/96 — monotone decline
  // (pre-asymptotic at these coarse resolutions; the alpha ∝ h^2
  // perturbation and FV-vs-point sampling both contribute).
  const double e1 = vortex_l1_error(24, 0.5);
  const double e2 = vortex_l1_error(48, 0.5);
  const double e3 = vortex_l1_error(96, 0.5);
  EXPECT_LT(e2, e1);
  EXPECT_LT(e3, e2);
  EXPECT_LT(e3, e1 / 3.0);
}

TEST(IsentropicVortex, ConservesEverything) {
  SolverConfig cfg;
  cfg.gamma = kGamma;
  cfg.alpha_factor = 5.0;
  Grid g(24, 24, 4, {0.0, 10.0}, {0.0, 10.0}, {0.0, 10.0 * 4 / 24});
  IgrSolver3D<Fp64> s(g, cfg, BcSpec::all_periodic());
  s.init([](double x, double y, double) {
    return vortex_state(x, y, 5.0, 5.0);
  });
  const auto before = s.conserved_totals();
  for (int i = 0; i < 20; ++i) s.step();
  const auto after = s.conserved_totals();
  for (int c = 0; c < igr::common::kNumVars; ++c)
    EXPECT_NEAR(after[c], before[c], 1e-10 * (std::abs(before[c]) + 1.0));
}

TEST(IsentropicVortex, SigmaStaysSmallOnSmoothFlow) {
  // The entropic pressure activates at compressions; a smooth vortex should
  // generate only O(alpha) Sigma, orders below the thermodynamic pressure.
  SolverConfig cfg;
  cfg.gamma = kGamma;
  cfg.alpha_factor = 5.0;
  Grid g(32, 32, 4, {0.0, 10.0}, {0.0, 10.0}, {0.0, 10.0 * 4 / 32});
  IgrSolver3D<Fp64> s(g, cfg, BcSpec::all_periodic());
  s.init([](double x, double y, double) {
    return vortex_state(x, y, 5.0, 5.0);
  });
  for (int i = 0; i < 10; ++i) s.step();
  double smax = 0.0;
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 32; ++i)
      smax = std::max(smax, std::abs(static_cast<double>(s.sigma()(i, j, 1))));
  // p ~ 1: Sigma is a percent-level, O(alpha) correction on smooth flow
  // (measured ~1.6e-2 at this resolution), far below shock-scale values.
  EXPECT_LT(smax, 5e-2);
}

}  // namespace
