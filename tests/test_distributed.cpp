/// Distributed-vs-single-domain equivalence: the centerpiece correctness
/// claim of the simulated MPI substrate.  With Jacobi Sigma sweeps the
/// decomposed run must be *bitwise identical* to the single-domain run.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/igr_solver3d.hpp"
#include "sim/distributed_igr.hpp"

namespace {

using igr::common::Fp32;
using igr::common::Fp64;
using igr::common::kNumVars;
using igr::common::Prim;
using igr::common::SolverConfig;
using igr::core::IgrSolver3D;
using igr::fv::BcSpec;
using igr::mesh::Grid;
using igr::sim::DistributedIgr;

constexpr int kN = 16;

SolverConfig jacobi_cfg() {
  SolverConfig cfg;
  cfg.alpha_factor = 5.0;
  cfg.sigma_sweeps = 5;
  cfg.sigma_gauss_seidel = false;  // Jacobi: sweeps are decomposition-exact
  return cfg;
}

igr::core::PrimFn smooth_ic() {
  return [](double x, double y, double z) {
    Prim<double> w;
    w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.u = 0.4 * std::sin(2 * M_PI * y);
    w.v = -0.2 * std::cos(2 * M_PI * z);
    w.w = 0.1 * std::sin(2 * M_PI * (x + z));
    w.p = 1.0 + 0.2 * std::cos(2 * M_PI * x);
    return w;
  };
}

class DistributedLayouts
    : public ::testing::TestWithParam<std::array<int, 3>> {};

TEST_P(DistributedLayouts, BitwiseMatchesSingleDomainWithJacobi) {
  const auto [rx, ry, rz] = GetParam();
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();

  IgrSolver3D<Fp64> single(g, cfg, bc);
  single.init(smooth_ic());

  DistributedIgr<Fp64> dist(g, rx, ry, rz, cfg, bc);
  dist.init(smooth_ic());

  for (int step = 0; step < 3; ++step) {
    single.step_fixed(2e-3);
    dist.step_fixed(2e-3);
  }

  const auto gathered = dist.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          ASSERT_EQ(single.state()[c](i, j, k), gathered[c](i, j, k))
              << "layout " << rx << "x" << ry << "x" << rz << " comp " << c
              << " cell " << i << "," << j << "," << k;
}

INSTANTIATE_TEST_SUITE_P(Layouts, DistributedLayouts,
                         ::testing::Values(std::array<int, 3>{2, 1, 1},
                                           std::array<int, 3>{1, 2, 1},
                                           std::array<int, 3>{1, 1, 2},
                                           std::array<int, 3>{2, 2, 1},
                                           std::array<int, 3>{2, 2, 2},
                                           // Uneven: 16 over 3 -> 6,5,5.
                                           std::array<int, 3>{3, 2, 1},
                                           std::array<int, 3>{1, 3, 3},
                                           // Remainders on every axis.
                                           std::array<int, 3>{3, 5, 3}));

TEST(Distributed, GaussSeidelAgreesToIterationTolerance) {
  // Block Gauss-Seidel is not bitwise-identical but must agree to the
  // tolerance of the (well-conditioned) Sigma iteration.
  auto cfg = jacobi_cfg();
  cfg.sigma_gauss_seidel = true;
  const auto g = Grid::cube(kN);
  const auto bc = BcSpec::all_periodic();

  IgrSolver3D<Fp64> single(g, cfg, bc);
  single.init(smooth_ic());
  DistributedIgr<Fp64> dist(g, 2, 2, 1, cfg, bc);
  dist.init(smooth_ic());

  for (int step = 0; step < 3; ++step) {
    single.step_fixed(2e-3);
    dist.step_fixed(2e-3);
  }
  const auto gathered = dist.gather();
  // Block vs sequential Gauss-Seidel differ at the iteration-error level
  // of the (well-conditioned) Sigma solve, far below discretization error.
  for (int k = 0; k < kN; ++k)
    for (int j = 0; j < kN; ++j)
      for (int i = 0; i < kN; ++i)
        ASSERT_NEAR(single.state()[0](i, j, k), gathered[0](i, j, k), 1e-5);
}

TEST(Distributed, NonPeriodicOutflowMatchesSingleDomain) {
  auto cfg = jacobi_cfg();
  const auto g = Grid::cube(kN);
  const auto bc = BcSpec::all_outflow();

  IgrSolver3D<Fp64> single(g, cfg, bc);
  single.init(smooth_ic());
  DistributedIgr<Fp64> dist(g, 2, 1, 2, cfg, bc);
  dist.init(smooth_ic());

  for (int step = 0; step < 2; ++step) {
    single.step_fixed(1e-3);
    dist.step_fixed(1e-3);
  }
  const auto gathered = dist.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          ASSERT_EQ(single.state()[c](i, j, k), gathered[c](i, j, k))
              << c << " " << i << " " << j << " " << k;
}

TEST(Distributed, EightRankFusedMatchesSingleDomainBitwise) {
  // Rank solvers built with the fused pipeline (the default): streamed
  // flux blocks and the interleaved source build run inside every phase
  // the driver orchestrates, while the single-domain side additionally
  // runs the full fused step (plane-pipelined sweeps under the Neumann
  // sigma boundary, RK fold, dt fold).  Jacobi sweeps keep the
  // decomposition exact, so the 2x2x2 run must stay bitwise-identical to
  // the single-domain fused solver — state and adaptive dt — and both must
  // match the phased reference.
  auto cfg = jacobi_cfg();
  ASSERT_TRUE(cfg.fused_rhs);
  const auto g = Grid::cube(kN);
  const auto bc = BcSpec::all_outflow();

  IgrSolver3D<Fp64> fused_single(g, cfg, bc);
  fused_single.init(smooth_ic());
  auto phased_cfg = cfg;
  phased_cfg.fused_rhs = false;
  IgrSolver3D<Fp64> phased_single(g, phased_cfg, bc);
  phased_single.init(smooth_ic());
  DistributedIgr<Fp64> dist(g, 2, 2, 2, cfg, bc);
  dist.init(smooth_ic());

  for (int step = 0; step < 2; ++step) {
    const double dt_fused = fused_single.step();
    const double dt_phased = phased_single.step();
    const double dt_dist = dist.step();
    ASSERT_EQ(dt_fused, dt_phased) << "step " << step;
    ASSERT_EQ(dt_fused, dt_dist) << "step " << step;
  }
  const auto gathered = dist.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i) {
          ASSERT_EQ(fused_single.state()[c](i, j, k), gathered[c](i, j, k))
              << "comp " << c << " cell " << i << "," << j << "," << k;
          ASSERT_EQ(fused_single.state()[c](i, j, k),
                    phased_single.state()[c](i, j, k))
              << "comp " << c << " cell " << i << "," << j << "," << k;
        }
}

TEST(Distributed, CflStepMatchesSingleDomainDt) {
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();
  IgrSolver3D<Fp64> single(g, cfg, bc);
  single.init(smooth_ic());
  DistributedIgr<Fp64> dist(g, 2, 2, 1, cfg, bc);
  dist.init(smooth_ic());
  const double dt_single = single.step();
  const double dt_dist = dist.step();
  EXPECT_EQ(dt_single, dt_dist);
}

TEST(Distributed, Fp32PolicyAlsoMatches) {
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();
  IgrSolver3D<Fp32> single(g, cfg, bc);
  single.init(smooth_ic());
  DistributedIgr<Fp32> dist(g, 2, 1, 1, cfg, bc);
  dist.init(smooth_ic());
  single.step_fixed(1e-3);
  dist.step_fixed(1e-3);
  const auto gathered = dist.gather();
  for (int k = 0; k < kN; ++k)
    for (int j = 0; j < kN; ++j)
      for (int i = 0; i < kN; ++i)
        ASSERT_EQ(single.state()[0](i, j, k), gathered[0](i, j, k));
}

TEST(Distributed, JetInflowPatchesSpanRankBoundaries) {
  // The production configuration: engine inflow patches on the z-low face,
  // reflective base plate, outflow elsewhere — decomposed so patches cross
  // rank boundaries.  Jacobi sweeps keep it bitwise-equal to single-domain.
  auto cfg = jacobi_cfg();
  cfg.density_floor = 1e-6;
  cfg.pressure_floor = 1e-6;

  igr::fv::BcSpec bc = igr::fv::BcSpec::all_outflow();
  bc.kind[static_cast<std::size_t>(igr::mesh::Face::kZLo)] =
      igr::fv::BcKind::kInflowPatches;
  igr::fv::InflowPatch patch;
  patch.cx = 0.5;  // centered: the 2x2 decomposition splits it 4 ways
  patch.cy = 0.5;
  patch.radius = 0.22;
  patch.state = {1.0, 0.0, 0.0, 4.0, 1.0};  // supersonic jet along +z
  bc.patches[static_cast<std::size_t>(igr::mesh::Face::kZLo)].push_back(
      patch);

  const auto g = Grid::cube(kN);
  IgrSolver3D<Fp64> single(g, cfg, bc);
  DistributedIgr<Fp64> dist(g, 2, 2, 1, cfg, bc);
  auto ambient = [](double, double, double) {
    return Prim<double>{1.0, 0.0, 0.0, 0.0, 1.0};
  };
  single.init(ambient);
  dist.init(ambient);

  for (int s = 0; s < 5; ++s) {
    single.step_fixed(5e-4);
    dist.step_fixed(5e-4);
  }
  const auto gathered = dist.gather();
  // The jet must actually have started entering the domain...
  double max_mz = 0;
  for (int j = 0; j < kN; ++j)
    for (int i = 0; i < kN; ++i)
      max_mz = std::max(max_mz, single.state()[3](i, j, 0));
  EXPECT_GT(max_mz, 0.05);
  // ...identically in both runs.
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          ASSERT_EQ(single.state()[c](i, j, k), gathered[c](i, j, k))
              << c << " " << i << " " << j << " " << k;
}

TEST(Distributed, OneCellThickBlocksMatchSingleDomain) {
  // Blocks thinner than the ghost depth: every halo face needs planes from
  // ranks several hops away.  Periodic Jacobi stays bitwise-exact.
  const auto g = Grid::cube(8);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();

  IgrSolver3D<Fp64> single(g, cfg, bc);
  single.init(smooth_ic());
  for (auto [rx, ry, rz] :
       {std::array<int, 3>{8, 1, 1}, std::array<int, 3>{1, 8, 2},
        std::array<int, 3>{4, 2, 2}}) {
    DistributedIgr<Fp64> dist(g, rx, ry, rz, cfg, bc);
    dist.init(smooth_ic());
    IgrSolver3D<Fp64> ref(g, cfg, bc);
    ref.init(smooth_ic());
    for (int step = 0; step < 2; ++step) {
      ref.step_fixed(1e-3);
      dist.step_fixed(1e-3);
    }
    const auto gathered = dist.gather();
    for (int c = 0; c < kNumVars; ++c)
      for (int k = 0; k < 8; ++k)
        for (int j = 0; j < 8; ++j)
          for (int i = 0; i < 8; ++i)
            ASSERT_EQ(ref.state()[c](i, j, k), gathered[c](i, j, k))
                << rx << "x" << ry << "x" << rz << " comp " << c << " cell "
                << i << "," << j << "," << k;
  }
}

TEST(Distributed, RejectsNonPeriodicThinBlockNearBoundary) {
  // 16 over 5 along x -> 4,3,3,3,3: the fourth block ends 3 cells from the
  // boundary (fine), but 16 over 6 -> 3,3,3,3,2,2 puts a block 2 cells from
  // the x-high face without touching it; its ghost planes would be neither
  // exchanged nor BC-filled, so the driver must refuse.
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_outflow();
  EXPECT_NO_THROW(
      DistributedIgr<Fp64>(Grid::cube(kN), 5, 1, 1, cfg, bc));
  EXPECT_THROW(DistributedIgr<Fp64>(Grid::cube(kN), 6, 1, 1, cfg, bc),
               std::invalid_argument);
}

TEST(Distributed, SerialScheduleMatchesParallelSchedule) {
  // The inline lockstep schedule is the reference the concurrent
  // phase-barrier schedule must reproduce bitwise.
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();

  igr::sim::DistOptions serial;
  serial.parallel = false;
  DistributedIgr<Fp64> ds(g, 2, 2, 1, cfg, bc, igr::fv::ReconScheme::kFifth,
                          serial);
  DistributedIgr<Fp64> dp(g, 2, 2, 1, cfg, bc);
  ds.init(smooth_ic());
  dp.init(smooth_ic());
  for (int step = 0; step < 3; ++step) {
    ds.step_fixed(2e-3);
    dp.step_fixed(2e-3);
  }
  const auto a = ds.gather();
  const auto b = dp.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          ASSERT_EQ(a[c](i, j, k), b[c](i, j, k));
}

TEST(Distributed, OverlapSplitDoesNotChangeBits) {
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();

  igr::sim::DistOptions no_overlap;
  no_overlap.overlap_halo = false;
  DistributedIgr<Fp64> da(g, 2, 1, 2, cfg, bc, igr::fv::ReconScheme::kFifth,
                          no_overlap);
  DistributedIgr<Fp64> db(g, 2, 1, 2, cfg, bc);  // overlap on (default)
  da.init(smooth_ic());
  db.init(smooth_ic());
  for (int step = 0; step < 2; ++step) {
    da.step_fixed(2e-3);
    db.step_fixed(2e-3);
  }
  const auto a = da.gather();
  const auto b = db.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          ASSERT_EQ(a[c](i, j, k), b[c](i, j, k));
}

TEST(Distributed, OverlapStateSourceSplitDoesNotChangeBits) {
  // The state-exchange overlap: z halos are posted, the z-interior Sigma
  // source is built while they are in flight, then the boundary planes
  // complete after the z ghosts land.  Must be bitwise-identical to the
  // non-overlapped exchange-then-build schedule.  Layouts include nz = 2
  // and nz = 1 local blocks, where the interior/boundary split degenerates.
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();
  struct Case {
    int n;
    std::array<int, 3> layout;
  };
  for (const auto& c : {Case{kN, {2, 1, 2}}, Case{kN, {1, 1, 8}},
                        Case{8, {1, 2, 8}}}) {
    const auto g = Grid::cube(c.n);
    igr::sim::DistOptions no_overlap;
    no_overlap.overlap_state = false;
    DistributedIgr<Fp64> da(g, c.layout[0], c.layout[1], c.layout[2], cfg, bc,
                            igr::fv::ReconScheme::kFifth, no_overlap);
    DistributedIgr<Fp64> db(g, c.layout[0], c.layout[1], c.layout[2], cfg,
                            bc);  // overlap_state on (default)
    da.init(smooth_ic());
    db.init(smooth_ic());
    for (int step = 0; step < 2; ++step) {
      da.step_fixed(2e-3);
      db.step_fixed(2e-3);
    }
    const auto a = da.gather();
    const auto b = db.gather();
    for (int comp = 0; comp < kNumVars; ++comp)
      for (int k = 0; k < c.n; ++k)
        for (int j = 0; j < c.n; ++j)
          for (int i = 0; i < c.n; ++i)
            ASSERT_EQ(a[comp](i, j, k), b[comp](i, j, k))
                << c.layout[0] << "x" << c.layout[1] << "x" << c.layout[2]
                << " comp " << comp << " cell " << i << "," << j << "," << k;
  }
}

TEST(Distributed, Fp16x32HalfWireStaysBitwiseEqualToSingleDomain) {
  // Half-storage runs already move 2-byte halos: requesting the half-width
  // wire must be a pass-through, keeping the decomposed run bitwise equal
  // to the single-domain solver.
  using igr::common::Fp16x32;
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();

  IgrSolver3D<Fp16x32> single(g, cfg, bc);
  single.init(smooth_ic());
  igr::sim::DistOptions opts;
  opts.halo_wire = igr::sim::Comm::WirePrecision::kHalf;
  DistributedIgr<Fp16x32> dist(g, 2, 2, 1, cfg, bc,
                               igr::fv::ReconScheme::kFifth, opts);
  dist.init(smooth_ic());

  for (int step = 0; step < 3; ++step) {
    single.step_fixed(2e-3);
    dist.step_fixed(2e-3);
  }
  const auto gathered = dist.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          ASSERT_EQ(static_cast<float>(single.state()[c](i, j, k)),
                    static_cast<float>(gathered[c](i, j, k)))
              << c << " " << i << " " << j << " " << k;
}

TEST(Distributed, HalfWireHalvesFp32HaloTrafficPerStep) {
  // The driver-level byte-reduction acceptance: the same decomposed FP32
  // step sequence moves exactly half the halo bytes at kHalf wire (state
  // and Sigma channels both narrow 4 -> 2 bytes per value).
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();

  auto traffic = [&](igr::sim::Comm::WirePrecision w) {
    igr::sim::DistOptions opts;
    opts.halo_wire = w;
    DistributedIgr<Fp32> d(g, 2, 2, 1, cfg, bc,
                           igr::fv::ReconScheme::kFifth, opts);
    d.init(smooth_ic());
    d.comm().reset_traffic();
    for (int step = 0; step < 2; ++step) d.step_fixed(1e-3);
    return d.comm().bytes_exchanged();
  };
  const auto full = traffic(igr::sim::Comm::WirePrecision::kFull);
  const auto half = traffic(igr::sim::Comm::WirePrecision::kHalf);
  ASSERT_GT(half, 0u);
  EXPECT_EQ(full, 2 * half);
}

/// Rank-parallel vs single-domain bitwise equivalence under sustained
/// concurrency, for one storage policy.  Run under ThreadSanitizer
/// (`bench/run_sanitize.sh build-tsan tsan`, also a CI job) this doubles
/// as the halo pipeline's race detector: every phase, epoch publish, and
/// overlap split is exercised across 12 concurrently stepping ranks for
/// several adaptive steps.
template <class Policy>
void stress_policy() {
  const auto g = Grid::cube(12);
  auto cfg = jacobi_cfg();
  cfg.density_floor = 1e-6;
  cfg.pressure_floor = 1e-6;
  const auto bc = BcSpec::all_periodic();

  IgrSolver3D<Policy> single(g, cfg, bc);
  single.init(smooth_ic());
  igr::sim::DistOptions opts;
  opts.threads_per_rank = 1;
  DistributedIgr<Policy> dist(g, 3, 2, 2, cfg, bc,
                              igr::fv::ReconScheme::kFifth, opts);
  dist.init(smooth_ic());

  for (int step = 0; step < 4; ++step) {
    const double dt_s = single.step();
    const double dt_d = dist.step();
    ASSERT_EQ(dt_s, dt_d) << "step " << step;
  }
  const auto gathered = dist.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < 12; ++k)
      for (int j = 0; j < 12; ++j)
        for (int i = 0; i < 12; ++i)
          ASSERT_EQ(static_cast<double>(single.state()[c](i, j, k)),
                    static_cast<double>(gathered[c](i, j, k)))
              << c << " " << i << " " << j << " " << k;
}

TEST(DistributedStress, Fp64TwelveRanksBitwise) { stress_policy<Fp64>(); }
TEST(DistributedStress, Fp32TwelveRanksBitwise) { stress_policy<Fp32>(); }
TEST(DistributedStress, Fp16x32TwelveRanksBitwise) {
  stress_policy<igr::common::Fp16x32>();
}

TEST(Distributed, MultipleOmpThreadsPerRankKeepBits) {
  // Kernel results must not depend on the OpenMP team size a rank uses.
  const auto g = Grid::cube(kN);
  const auto cfg = jacobi_cfg();
  const auto bc = BcSpec::all_periodic();
  igr::sim::DistOptions two;
  two.threads_per_rank = 2;
  DistributedIgr<Fp64> da(g, 2, 2, 1, cfg, bc, igr::fv::ReconScheme::kFifth,
                          two);
  IgrSolver3D<Fp64> single(g, cfg, bc);
  da.init(smooth_ic());
  single.init(smooth_ic());
  for (int step = 0; step < 2; ++step) {
    single.step_fixed(2e-3);
    da.step_fixed(2e-3);
  }
  const auto a = da.gather();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < kN; ++k)
      for (int j = 0; j < kN; ++j)
        for (int i = 0; i < kN; ++i)
          ASSERT_EQ(single.state()[c](i, j, k), a[c](i, j, k));
}

TEST(Distributed, TraffiqueMeteredDuringStep) {
  const auto g = Grid::cube(kN);
  DistributedIgr<Fp64> dist(g, 2, 1, 1, jacobi_cfg(), BcSpec::all_periodic());
  dist.init(smooth_ic());
  dist.step_fixed(1e-3);
  EXPECT_GT(dist.comm().bytes_exchanged(), 0u);
}

}  // namespace
