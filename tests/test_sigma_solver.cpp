/// Tests for the entropic-pressure elliptic solver (paper eq. 9): discrete
/// manufactured solutions, warm-start behavior, and the ≤5-sweep claim.

#include <gtest/gtest.h>

#include <cmath>

#include "common/precision.hpp"
#include "core/sigma_solver.hpp"

namespace {

using igr::common::Field3;
using igr::common::Fp32;
using igr::common::Fp64;
using igr::core::fill_sigma_ghosts;
using igr::core::SigmaBc;
using igr::core::sigma_residual;
using igr::core::sigma_solve;

constexpr int kN = 16;
constexpr double kPi = 3.14159265358979323846;

/// Build src = L[sigma_exact] through the discrete operator so the discrete
/// solution is exactly sigma_exact (manufactured discrete solution).
struct Manufactured {
  Field3<double> sigma_exact{kN, kN, kN, 3};
  Field3<double> inv_rho{kN, kN, kN, 3};
  Field3<double> src{kN, kN, kN, 3};
  double alpha = 2.5e-3;
  double h = 1.0 / kN;

  explicit Manufactured(bool variable_rho) {
    for (int k = -3; k < kN + 3; ++k) {
      for (int j = -3; j < kN + 3; ++j) {
        for (int i = -3; i < kN + 3; ++i) {
          const double x = (i + 0.5) * h, y = (j + 0.5) * h, z = (k + 0.5) * h;
          sigma_exact(i, j, k) =
              std::sin(2 * kPi * x) * std::cos(2 * kPi * y) *
                  std::sin(4 * kPi * z) +
              1.5;
          const double rho =
              variable_rho ? 1.0 + 0.4 * std::sin(2 * kPi * (x + y + z)) : 1.0;
          inv_rho(i, j, k) = 1.0 / rho;
        }
      }
    }
    // Apply the discrete operator (harmonic-mean face densities: face
    // coefficients are arithmetic means of 1/rho) for a discrete-exact
    // manufactured source.
    const double ih2 = 1.0 / (h * h);
    for (int k = 0; k < kN; ++k) {
      for (int j = 0; j < kN; ++j) {
        for (int i = 0; i < kN; ++i) {
          auto coef = [&](int di, int dj, int dk) {
            return 0.5 * (inv_rho(i, j, k) + inv_rho(i + di, j + dj, k + dk));
          };
          const double s0 = sigma_exact(i, j, k);
          const double lap =
              ih2 * ((sigma_exact(i + 1, j, k) - s0) * coef(1, 0, 0) -
                     (s0 - sigma_exact(i - 1, j, k)) * coef(-1, 0, 0)) +
              ih2 * ((sigma_exact(i, j + 1, k) - s0) * coef(0, 1, 0) -
                     (s0 - sigma_exact(i, j - 1, k)) * coef(0, -1, 0)) +
              ih2 * ((sigma_exact(i, j, k + 1) - s0) * coef(0, 0, 1) -
                     (s0 - sigma_exact(i, j, k - 1)) * coef(0, 0, -1));
          src(i, j, k) = s0 * inv_rho(i, j, k) - alpha * lap;
        }
      }
    }
  }
};

double max_err(const Field3<double>& a, const Field3<double>& b) {
  double m = 0;
  for (int k = 0; k < kN; ++k)
    for (int j = 0; j < kN; ++j)
      for (int i = 0; i < kN; ++i)
        m = std::max(m, std::abs(a(i, j, k) - b(i, j, k)));
  return m;
}

TEST(SigmaSolver, GaussSeidelConvergesToManufacturedSolution) {
  Manufactured m(false);
  Field3<double> sigma(kN, kN, kN, 3), scratch;
  sigma_solve<Fp64>(sigma, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h,
                    400, /*gs=*/true, SigmaBc::kPeriodic);
  EXPECT_LT(max_err(sigma, m.sigma_exact), 1e-10);
}

TEST(SigmaSolver, JacobiConvergesToManufacturedSolution) {
  Manufactured m(false);
  Field3<double> sigma(kN, kN, kN, 3), scratch(kN, kN, kN, 3);
  sigma_solve<Fp64>(sigma, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h,
                    800, /*gs=*/false, SigmaBc::kPeriodic);
  EXPECT_LT(max_err(sigma, m.sigma_exact), 1e-9);
}

TEST(SigmaSolver, VariableDensityConverges) {
  Manufactured m(true);
  Field3<double> sigma(kN, kN, kN, 3), scratch;
  sigma_solve<Fp64>(sigma, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h,
                    600, true, SigmaBc::kPeriodic);
  EXPECT_LT(max_err(sigma, m.sigma_exact), 1e-9);
}

TEST(SigmaSolver, ResidualDecreasesMonotonically) {
  Manufactured m(false);
  Field3<double> sigma(kN, kN, kN, 3), scratch;
  double prev = 1e300;
  for (int rounds = 0; rounds < 6; ++rounds) {
    sigma_solve<Fp64>(sigma, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h, 2,
                      true, SigmaBc::kPeriodic);
    const double r = sigma_residual<Fp64>(sigma, m.src, m.inv_rho, m.alpha, m.h,
                                          m.h, m.h);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(SigmaSolver, WarmStartBeatsColdStartAtFiveSweeps) {
  // The paper's usage (§5.2): with the previous Sigma as warm start, ≤5
  // sweeps per flux computation suffice.  Emulate the between-stages drift
  // (a 1% source change) and compare against a cold start.
  Manufactured m(false);
  Field3<double> warm(kN, kN, kN, 3), scratch;
  // Converge once (the "previous step" solution).
  sigma_solve<Fp64>(warm, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h, 200,
                    true, SigmaBc::kPeriodic);
  // Drift the source by 1% and take only 5 sweeps from each start.
  for (int k = 0; k < kN; ++k)
    for (int j = 0; j < kN; ++j)
      for (int i = 0; i < kN; ++i) m.src(i, j, k) *= 1.01;

  Field3<double> cold(kN, kN, kN, 3);
  sigma_solve<Fp64>(warm, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h, 5,
                    true, SigmaBc::kPeriodic);
  sigma_solve<Fp64>(cold, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h, 5,
                    true, SigmaBc::kPeriodic);
  const double r_warm =
      sigma_residual<Fp64>(warm, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h);
  const double r_cold =
      sigma_residual<Fp64>(cold, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h);
  EXPECT_LT(r_warm, 0.2 * r_cold);   // warm start does real work
  EXPECT_LT(r_warm, 1e-2);           // and lands at a small residual
}

TEST(SigmaSolver, WellConditionedBecauseAlphaScalesWithH2) {
  // alpha ∝ dx^2 makes the relaxation contraction rate saturate at a value
  // bounded away from 1 as h -> 0, unlike an unregularized Poisson solve
  // whose Gauss–Seidel rate degrades as 1 - O(h^2).  Measure the asymptotic
  // per-sweep rate between sweeps 10 and 30.
  auto rate = [](int n) {
    const double h = 1.0 / n;
    const double alpha = 5.0 * h * h;
    Field3<double> sigma(n, n, n, 3), scratch, src(n, n, n, 3),
        rho(n, n, n, 3);
    rho.fill(1.0);
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
          src(i, j, k) = std::sin(2 * kPi * (i + 0.5) / n) *
                         std::cos(2 * kPi * (j + 0.5) / n);
    sigma_solve<Fp64>(sigma, scratch, src, rho, alpha, h, h, h, 10, true,
                      SigmaBc::kPeriodic);
    const double r10 =
        sigma_residual<Fp64>(sigma, src, rho, alpha, h, h, h);
    sigma_solve<Fp64>(sigma, scratch, src, rho, alpha, h, h, h, 20, true,
                      SigmaBc::kPeriodic);
    const double r30 =
        sigma_residual<Fp64>(sigma, src, rho, alpha, h, h, h);
    return std::pow(r30 / r10, 1.0 / 20.0);
  };
  const double r16 = rate(16);
  const double r32 = rate(32);
  const double r64 = rate(64);
  // Bounded away from 1 at every resolution...
  EXPECT_LT(r16, 0.96);
  EXPECT_LT(r32, 0.96);
  EXPECT_LT(r64, 0.96);
  // ...and saturating rather than degrading: the 32->64 change is smaller
  // than the 16->32 change (a Poisson rate would keep marching toward 1).
  EXPECT_LT(r64 - r32, r32 - r16 + 0.02);
}

TEST(SigmaSolver, Fp32PolicyConverges) {
  Manufactured m(false);
  Field3<float> sigma(kN, kN, kN, 3), scratch, src(kN, kN, kN, 3),
      rho(kN, kN, kN, 3);
  for (int k = -3; k < kN + 3; ++k)
    for (int j = -3; j < kN + 3; ++j)
      for (int i = -3; i < kN + 3; ++i) {
        src(i, j, k) = (i >= 0 && i < kN && j >= 0 && j < kN && k >= 0 &&
                        k < kN)
                           ? static_cast<float>(m.src(i, j, k))
                           : 0.0f;
        rho(i, j, k) = 1.0f;
      }
  sigma_solve<Fp32>(sigma, scratch, src, rho, float(m.alpha), float(m.h),
                    float(m.h), float(m.h), 200, true, SigmaBc::kPeriodic);
  const double r = sigma_residual<Fp32>(sigma, src, rho, float(m.alpha),
                                        float(m.h), float(m.h), float(m.h));
  EXPECT_LT(r, 1e-4);
}

TEST(SigmaGhosts, PeriodicWrap) {
  Field3<double> f(4, 4, 4, 2);
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) f(i, j, k) = 100.0 * i + 10.0 * j + k;
  fill_sigma_ghosts(f, SigmaBc::kPeriodic);
  EXPECT_EQ(f(-1, 2, 2), f(3, 2, 2));
  EXPECT_EQ(f(4, 1, 1), f(0, 1, 1));
  EXPECT_EQ(f(2, -2, 3), f(2, 2, 3));
}

TEST(SigmaGhosts, NeumannClamp) {
  Field3<double> f(4, 4, 4, 2);
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) f(i, j, k) = 100.0 * i + 10.0 * j + k;
  fill_sigma_ghosts(f, SigmaBc::kNeumann);
  EXPECT_EQ(f(-1, 2, 2), f(0, 2, 2));
  EXPECT_EQ(f(5, 1, 1), f(3, 1, 1));
}

TEST(SigmaSolver, RedBlackConvergesToSerialGaussSeidelFixedPoint) {
  // The parallel two-color ordering must relax to the same fixed point as
  // the serial lexicographic sweep (the reference ordering) — they differ
  // only in iteration error, which vanishes at convergence.
  using igr::core::SweepKind;
  Manufactured m(true);
  Field3<double> rb(kN, kN, kN, 3), lex(kN, kN, kN, 3), scratch;
  sigma_solve<Fp64>(rb, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h,
                    400, SweepKind::kRedBlack, SigmaBc::kPeriodic);
  sigma_solve<Fp64>(lex, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h,
                    400, SweepKind::kGaussSeidelLex, SigmaBc::kPeriodic);
  EXPECT_LT(max_err(rb, lex), 1e-10);
  // And both land on the manufactured discrete solution.
  EXPECT_LT(max_err(rb, m.sigma_exact), 1e-10);
}

TEST(SigmaSolver, RedBlackResidualContractsAtFiveSweeps) {
  // The production usage: five warm-started sweeps per flux computation.
  // Red-black must make comparable per-sweep progress to the serial
  // ordering (its contraction rate on this well-conditioned system is the
  // same to leading order).
  using igr::core::SweepKind;
  Manufactured m(false);
  auto residual_after = [&](SweepKind kind) {
    Field3<double> sigma(kN, kN, kN, 3), scratch;
    sigma_solve<Fp64>(sigma, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h,
                      m.h, 5, kind, SigmaBc::kPeriodic);
    return sigma_residual<Fp64>(sigma, m.src, m.inv_rho, m.alpha, m.h, m.h,
                                m.h);
  };
  const double r_rb = residual_after(SweepKind::kRedBlack);
  const double r_lex = residual_after(SweepKind::kGaussSeidelLex);
  EXPECT_LT(r_rb, 3.0 * r_lex);  // same ballpark per-sweep progress
  EXPECT_GT(r_rb, 0.0);
}

TEST(SigmaSolver, BoolOverloadSelectsRedBlack) {
  // The config-level bool (sigma_gauss_seidel) maps to the red-black
  // ordering; Jacobi remains the false branch.  Bitwise checks.
  using igr::core::SweepKind;
  Manufactured m(false);
  Field3<double> a(kN, kN, kN, 3), b(kN, kN, kN, 3), scratch;
  sigma_solve<Fp64>(a, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h, 7,
                    /*gauss_seidel=*/true, SigmaBc::kPeriodic);
  sigma_solve<Fp64>(b, scratch, m.src, m.inv_rho, m.alpha, m.h, m.h, m.h, 7,
                    SweepKind::kRedBlack, SigmaBc::kPeriodic);
  EXPECT_EQ(max_err(a, b), 0.0);
}

TEST(SigmaSolver, ZeroSourceGivesZeroSolution) {
  Field3<double> sigma(8, 8, 8, 3), scratch, src(8, 8, 8, 3), rho(8, 8, 8, 3);
  rho.fill(1.0);
  sigma_solve<Fp64>(sigma, scratch, src, rho, 1e-3, 0.1, 0.1, 0.1, 50, true,
                    SigmaBc::kPeriodic);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) EXPECT_EQ(sigma(i, j, k), 0.0);
}

}  // namespace
