/// Equivalence tests for the flux-path dispatch overhaul: the sweeps are
/// templated on the reconstruction scheme (and sweep axis), with a thin
/// runtime dispatcher at the compute_fluxes level.  The pre-overhaul
/// structure — re-dispatching the scheme through the runtime switch per face
/// — is retained as compute_fluxes_runtime_dispatch, sharing the same sweep
/// body.  Since fv::reconstruct forwards to fv::reconstruct_fixed, the two
/// paths must agree *bitwise*: any divergence is a dispatch bug, not
/// roundoff.

#include <gtest/gtest.h>

#include <cmath>

#include "common/precision.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/reconstruct.hpp"

namespace {

using igr::common::Fp32;
using igr::common::Fp64;
using igr::common::kNumVars;
using igr::common::Prim;
using igr::common::SolverConfig;
using igr::common::StateField3;
using igr::core::IgrSolver3D;
using igr::fv::BcSpec;
using igr::fv::ReconScheme;
using igr::mesh::Grid;

/// A smooth 3-D vortex: swirl about the z axis with axial shear and a
/// density/pressure well — every flux term (all three sweeps, all five
/// variables) is exercised with nontrivial values.
Prim<double> vortex_ic(double x, double y, double z) {
  const double rx = x - 0.5, ry = y - 0.5;
  const double r2 = rx * rx + ry * ry;
  const double swirl = 0.8 * std::exp(-10.0 * r2);
  Prim<double> w;
  w.rho = 1.0 + 0.3 * std::exp(-8.0 * r2) * std::cos(2 * M_PI * z);
  w.u = -swirl * ry + 0.05 * std::sin(2 * M_PI * z);
  w.v = swirl * rx;
  w.w = 0.2 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
  w.p = 1.0 - 0.2 * std::exp(-10.0 * r2);
  return w;
}

template <class Policy>
void expect_dispatch_equivalence(ReconScheme recon, SolverConfig cfg,
                                 bool bitwise) {
  using S = typename Policy::storage_t;
  const int n = 12;
  IgrSolver3D<Policy> s(Grid::cube(n), cfg, BcSpec::all_periodic(), recon);
  s.init(vortex_ic);
  // March a few fixed steps so Sigma is developed and the state is not a
  // trivial function of the initial condition.
  for (int i = 0; i < 3; ++i) s.step_fixed(1e-3);

  // Prepare ghosts and Sigma exactly as a real RHS evaluation would, then
  // evaluate the fluxes through both dispatch styles on identical inputs.
  s.begin_step();
  auto& stage = s.stage_field();
  s.compute_rhs(stage, s.rhs_field());

  StateField3<S> rhs_ct(n, n, n, 3), rhs_rt(n, n, n, 3);
  s.compute_fluxes(stage, rhs_ct);
  s.compute_fluxes_runtime_dispatch(stage, rhs_rt);

  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i) {
          const double a = static_cast<double>(rhs_ct[c](i, j, k));
          const double b = static_cast<double>(rhs_rt[c](i, j, k));
          if (bitwise) {
            ASSERT_EQ(a, b) << "var " << c << " at (" << i << "," << j << ","
                            << k << ")";
          } else {
            ASSERT_NEAR(a, b, 1e-6) << "var " << c;
          }
        }
}

SolverConfig igr_cfg() {
  SolverConfig cfg;
  cfg.alpha_factor = 5.0;
  cfg.sigma_sweeps = 5;
  return cfg;
}

TEST(FluxDispatch, BitwiseEquivalentRecon1Fp64) {
  expect_dispatch_equivalence<Fp64>(ReconScheme::kFirst, igr_cfg(), true);
}

TEST(FluxDispatch, BitwiseEquivalentRecon3Fp64) {
  expect_dispatch_equivalence<Fp64>(ReconScheme::kThird, igr_cfg(), true);
}

TEST(FluxDispatch, BitwiseEquivalentRecon5Fp64) {
  expect_dispatch_equivalence<Fp64>(ReconScheme::kFifth, igr_cfg(), true);
}

TEST(FluxDispatch, BitwiseEquivalentWeno5Fp64) {
  expect_dispatch_equivalence<Fp64>(ReconScheme::kWeno5, igr_cfg(), true);
}

TEST(FluxDispatch, BitwiseEquivalentRecon5Fp32) {
  expect_dispatch_equivalence<Fp32>(ReconScheme::kFifth, igr_cfg(), true);
}

TEST(FluxDispatch, BitwiseEquivalentViscousPath) {
  auto cfg = igr_cfg();
  cfg.mu = 0.02;
  cfg.zeta = 0.01;
  expect_dispatch_equivalence<Fp64>(ReconScheme::kFifth, cfg, true);
}

TEST(FluxDispatch, BitwiseEquivalentViscousWithoutSigma) {
  // Sigma disabled + viscosity on: compute_fluxes must refresh the
  // reciprocal-density field itself (nobody built the Sigma source).
  auto cfg = igr_cfg();
  cfg.alpha_factor = 0.0;
  cfg.sigma_sweeps = 0;
  cfg.mu = 0.02;
  expect_dispatch_equivalence<Fp64>(ReconScheme::kFifth, cfg, true);
}

TEST(FluxDispatch, BitwiseEquivalentWithFloorsOnShockTube) {
  // A hard start-up discontinuity exercises the nonphysical-reconstruction
  // fallback and the configured floors through both dispatch paths.
  auto cfg = igr_cfg();
  cfg.density_floor = 1e-8;
  cfg.pressure_floor = 1e-8;
  const int n = 12;
  IgrSolver3D<Fp64> s(Grid::cube(n), cfg, BcSpec::all_outflow());
  s.init([](double x, double, double) {
    Prim<double> w;
    w.rho = x < 0.5 ? 1.0 : 0.01;
    w.p = x < 0.5 ? 10.0 : 0.01;
    return w;
  });
  s.begin_step();
  auto& stage = s.stage_field();
  s.compute_rhs(stage, s.rhs_field());

  StateField3<double> rhs_ct(n, n, n, 3), rhs_rt(n, n, n, 3);
  s.compute_fluxes(stage, rhs_ct);
  s.compute_fluxes_runtime_dispatch(stage, rhs_rt);
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
          ASSERT_EQ(rhs_ct[c](i, j, k), rhs_rt[c](i, j, k)) << "var " << c;
}

TEST(FluxDispatch, SchemesActuallyDiffer) {
  // Guard against a dispatcher that quietly routes every scheme to the same
  // instantiation: first- and fifth-order fluxes must differ on a smooth
  // nonuniform state.
  const int n = 12;
  auto run = [&](ReconScheme r) {
    IgrSolver3D<Fp64> s(Grid::cube(n), igr_cfg(), BcSpec::all_periodic(), r);
    s.init(vortex_ic);
    s.begin_step();
    auto& stage = s.stage_field();
    s.compute_rhs(stage, s.rhs_field());
    StateField3<double> rhs(n, n, n, 3);
    s.compute_fluxes(stage, rhs);
    return rhs;
  };
  const auto a = run(ReconScheme::kFirst);
  const auto b = run(ReconScheme::kFifth);
  double max_diff = 0.0;
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        max_diff = std::max(max_diff,
                            std::abs(a[0](i, j, k) - b[0](i, j, k)));
  EXPECT_GT(max_diff, 1e-8);
}

}  // namespace
