/// Unit tests for the ideal-gas equation of state.

#include <gtest/gtest.h>

#include <cmath>

#include "eos/ideal_gas.hpp"

namespace {

using igr::common::Cons;
using igr::common::Prim;
using igr::eos::IdealGas;

TEST(IdealGas, RejectsNonPhysicalGamma) {
  EXPECT_THROW(IdealGas(1.0), std::invalid_argument);
  EXPECT_THROW(IdealGas(0.5), std::invalid_argument);
  EXPECT_NO_THROW(IdealGas(1.4));
}

TEST(IdealGas, PressureOfStaticGas) {
  IdealGas eos(1.4);
  Cons<double> q{1.0, 0.0, 0.0, 0.0, 2.5};
  EXPECT_DOUBLE_EQ(eos.pressure(q), 1.0);  // p = 0.4 * 2.5
}

TEST(IdealGas, PressureSubtractsKineticEnergy) {
  IdealGas eos(1.4);
  Cons<double> q{2.0, 2.0, 4.0, 6.0, 30.0};
  const double ke = (4.0 + 16.0 + 36.0) / (2.0 * 2.0);
  EXPECT_NEAR(eos.pressure(q), 0.4 * (30.0 - ke), 1e-14);
}

TEST(IdealGas, PrimConsRoundTrip) {
  IdealGas eos(1.4);
  Prim<double> w{1.2, 0.3, -0.7, 2.1, 0.9};
  const auto q = eos.to_cons(w);
  const auto w2 = eos.to_prim(q);
  EXPECT_NEAR(w2.rho, w.rho, 1e-14);
  EXPECT_NEAR(w2.u, w.u, 1e-14);
  EXPECT_NEAR(w2.v, w.v, 1e-14);
  EXPECT_NEAR(w2.w, w.w, 1e-14);
  EXPECT_NEAR(w2.p, w.p, 1e-14);
}

TEST(IdealGas, SoundSpeedAir) {
  IdealGas eos(1.4);
  EXPECT_NEAR(eos.sound_speed(1.0, 1.0), std::sqrt(1.4), 1e-14);
}

TEST(IdealGas, InternalEnergyConsistency) {
  IdealGas eos(1.4);
  const double e = eos.internal_energy(2.0, 3.0);
  EXPECT_NEAR(e, 3.0 / (0.4 * 2.0), 1e-14);
}

TEST(IdealGas, FloatInstantiation) {
  IdealGas eos(1.4);
  Prim<float> w{1.0f, 0.5f, 0.0f, 0.0f, 1.0f};
  const auto q = eos.to_cons(w);
  EXPECT_NEAR(eos.pressure(q), 1.0f, 1e-6f);
}

class EosGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EosGammaSweep, RoundTripAcrossGammas) {
  IdealGas eos(GetParam());
  Prim<double> w{0.7, 1.0, -2.0, 0.5, 2.5};
  const auto w2 = eos.to_prim(eos.to_cons(w));
  EXPECT_NEAR(w2.p, w.p, 1e-13);
  EXPECT_NEAR(w2.u, w.u, 1e-13);
}

TEST_P(EosGammaSweep, SoundSpeedScalesWithGamma) {
  IdealGas eos(GetParam());
  EXPECT_NEAR(eos.sound_speed(1.0, 1.0), std::sqrt(GetParam()), 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Gammas, EosGammaSweep,
                         ::testing::Values(1.1, 1.3, 1.4, 5.0 / 3.0, 2.0));

TEST(IdealGas, TotalEnergyMatchesDefinition) {
  // E = p/(gamma-1) + rho |u|^2 / 2, paper eq. (4) rearranged.
  IdealGas eos(1.4);
  Prim<double> w{2.0, 3.0, 0.0, 0.0, 5.0};
  EXPECT_NEAR(eos.total_energy(w), 5.0 / 0.4 + 0.5 * 2.0 * 9.0, 1e-13);
}

}  // namespace
