/// Equivalence tests for the batched binary16 conversion lanes: every
/// backend compiled into this build (branch-free bitwise kernel, and the
/// hardware F16C lanes where the configure probe enabled them) must be
/// *bitwise identical* to the per-element reference converters — over all
/// 65536 half patterns in the widening direction, and over a
/// deterministic-seed float corpus that hits every rounding branch
/// (normals, subnormal ties, the flush-to-zero band, the overflow
/// threshold, infinities, and NaN payloads) in the narrowing direction.
/// Odd lengths and unaligned spans are exercised so no backend can hide a
/// vector-width or alignment assumption.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/half.hpp"
#include "common/precision.hpp"

namespace {

using igr::common::half;
namespace hb = igr::common::half_batch;

using ToFloatFn = void (*)(const std::uint16_t*, float*, std::size_t);
using FromFloatFn = void (*)(const float*, std::uint16_t*, std::size_t);

struct NamedBackend {
  const char* name;
  ToFloatFn to_f32;
  FromFloatFn from_f32;
};

/// Every non-reference backend compiled into this build.
std::vector<NamedBackend> enabled_backends() {
  std::vector<NamedBackend> v;
  v.push_back({"bitwise", &hb::to_float_bitwise, &hb::from_float_bitwise});
#if defined(IGR_HALF_HAS_F16C)
  v.push_back({"f16c", &hb::to_float_f16c, &hb::from_float_f16c});
#endif
  return v;
}

std::uint32_t f32_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float f32_from_bits(std::uint32_t u) { return std::bit_cast<float>(u); }

std::vector<std::uint16_t> all_half_patterns() {
  std::vector<std::uint16_t> v(65536);
  for (std::uint32_t b = 0; b <= 0xffffu; ++b)
    v[b] = static_cast<std::uint16_t>(b);
  return v;
}

/// Deterministic float corpus spanning every from_float branch: exact half
/// values, the branch thresholds and their neighborhoods, subnormal and
/// normal halfway ties, NaN payloads of both parities, and three flavors of
/// seeded randomness (uniform bit patterns, half-range-concentrated values,
/// and near-threshold jitter).
std::vector<float> from_float_corpus() {
  std::vector<float> v;
  v.reserve(300000);

  // Every value exactly representable in binary16 (including inf/NaN
  // payload images) — from_float must reproduce each one exactly.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b)
    v.push_back(half::to_float(static_cast<std::uint16_t>(b)));

  // Branch thresholds, their float neighbors, and halfway ties.
  const std::uint32_t thresholds[] = {
      0x33000000u,  // half of the smallest subnormal (flush boundary)
      0x33800000u,  // smallest subnormal
      0x38800000u,  // smallest normal
      0x477ff000u,  // 65520: rounds-to-inf boundary
      0x47800000u,  // 2^16
      0x7f800000u,  // inf
      0x38000000u, 0x3f800000u, 0x477fe000u, 0x477fefffu,
  };
  for (std::uint32_t t : thresholds) {
    for (int d = -3; d <= 3; ++d) {
      const std::uint32_t u = t + static_cast<std::uint32_t>(d);
      v.push_back(f32_from_bits(u));
      v.push_back(f32_from_bits(u | 0x80000000u));
    }
  }
  const float sub_ulp = std::ldexp(1.0f, -24);
  for (int k = 0; k <= 40; ++k) {
    v.push_back((static_cast<float>(k) + 0.5f) * sub_ulp);  // subnormal ties
    v.push_back(-(static_cast<float>(k) + 0.5f) * sub_ulp);
  }
  for (int e = -14; e <= 15; ++e) {
    // Normal-range ties: odd multiples of half a half-ulp.
    const float base = std::ldexp(1.0f, e);
    const float hulp = std::ldexp(1.0f, e - 11);
    for (int m : {1, 2, 3, 1022, 1023}) {
      v.push_back(base + (static_cast<float>(m) + 0.5f) * hulp * 2.0f);
      v.push_back(base + (static_cast<float>(m) * 2.0f + 1.0f) * hulp);
    }
  }
  // NaN payloads: quiet and signaling, both signs, payload bits above and
  // below the 10-bit truncation line.
  for (std::uint32_t payload :
       {0x1u, 0x1fffu, 0x2000u, 0x12345u, 0x3fffffu, 0x200000u, 0x3fe000u}) {
    v.push_back(f32_from_bits(0x7f800000u | payload));
    v.push_back(f32_from_bits(0xff800000u | payload));
    v.push_back(f32_from_bits(0x7fc00000u | payload));
    v.push_back(f32_from_bits(0xffc00000u | payload));
  }

  std::mt19937 rng(12345u);
  // Uniform over the whole bit space (hits NaN/inf/denormal classes).
  for (int i = 0; i < 100000; ++i)
    v.push_back(f32_from_bits(static_cast<std::uint32_t>(rng())));
  // Concentrated in and just beyond the half range.
  std::uniform_int_distribution<std::uint32_t> exp_dist(95, 145);
  std::uniform_int_distribution<std::uint32_t> mant_dist(0, 0x007fffffu);
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t sign = (rng() & 1u) << 31;
    v.push_back(f32_from_bits(sign | (exp_dist(rng) << 23) | mant_dist(rng)));
  }
  return v;
}

TEST(HalfBatch, ToFloatAllPatternsBitwiseEqualsReference) {
  const auto src = all_half_patterns();
  std::vector<float> ref(src.size()), out(src.size());
  hb::to_float_reference(src.data(), ref.data(), src.size());
  for (const auto& b : enabled_backends()) {
    std::fill(out.begin(), out.end(), 0.0f);
    b.to_f32(src.data(), out.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_EQ(f32_bits(out[i]), f32_bits(ref[i]))
          << b.name << ": half bits 0x" << std::hex << src[i];
    }
  }
}

TEST(HalfBatch, FromFloatCorpusBitwiseEqualsReference) {
  const auto src = from_float_corpus();
  std::vector<std::uint16_t> ref(src.size()), out(src.size());
  hb::from_float_reference(src.data(), ref.data(), src.size());
  for (const auto& b : enabled_backends()) {
    std::fill(out.begin(), out.end(), std::uint16_t{0xdeadu & 0xffffu});
    b.from_f32(src.data(), out.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_EQ(out[i], ref[i])
          << b.name << ": float bits 0x" << std::hex << f32_bits(src[i]);
    }
  }
}

TEST(HalfBatch, OddLengthsAndUnalignedSpans) {
  // No backend may assume a vector-multiple length or aligned spans: every
  // (length, source offset, destination offset) combination must match the
  // reference exactly and leave bytes beyond the span untouched.
  std::mt19937 rng(987654u);
  const std::size_t cap = 4 * 1024;
  std::vector<std::uint16_t> hsrc(cap);
  std::vector<float> fsrc(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    hsrc[i] = static_cast<std::uint16_t>(rng());
    fsrc[i] = f32_from_bits(static_cast<std::uint32_t>(rng()));
  }
  const std::size_t lengths[] = {0, 1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 31, 64, 65, 255, 257};
  for (const auto& b : enabled_backends()) {
    for (std::size_t n : lengths) {
      for (std::size_t so = 0; so < 3; ++so) {
        for (std::size_t doff = 0; doff < 3; ++doff) {
          {
            std::vector<float> ref(n + doff + 1, -7.0f), out(n + doff + 1, -7.0f);
            hb::to_float_reference(hsrc.data() + so, ref.data() + doff, n);
            b.to_f32(hsrc.data() + so, out.data() + doff, n);
            for (std::size_t i = 0; i < out.size(); ++i)
              ASSERT_EQ(f32_bits(out[i]), f32_bits(ref[i]))
                  << b.name << " n=" << n << " so=" << so << " do=" << doff;
          }
          {
            std::vector<std::uint16_t> ref(n + doff + 1, 0xbeefu);
            std::vector<std::uint16_t> out(n + doff + 1, 0xbeefu);
            hb::from_float_reference(fsrc.data() + so, ref.data() + doff, n);
            b.from_f32(fsrc.data() + so, out.data() + doff, n);
            for (std::size_t i = 0; i < out.size(); ++i)
              ASSERT_EQ(out[i], ref[i])
                  << b.name << " n=" << n << " so=" << so << " do=" << doff;
          }
        }
      }
    }
  }
}

TEST(HalfBatch, PublicApiMatchesReferenceAndRoundTrips) {
  // The dispatching entry points (whatever backend the build selected) obey
  // the same contract; round-tripping every pattern through them is the
  // batch analogue of the scalar exhaustive test.
  const auto patterns = all_half_patterns();
  const auto n = patterns.size();
  std::vector<half> hs(n);
  for (std::size_t i = 0; i < n; ++i) hs[i] = half::from_bits(patterns[i]);
  std::vector<float> widened(n), ref(n);
  igr::common::convert_to_float(hs.data(), widened.data(), n);
  hb::to_float_reference(patterns.data(), ref.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(f32_bits(widened[i]), f32_bits(ref[i])) << i;

  std::vector<half> back(n);
  igr::common::convert_from_float(widened.data(), back.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t b = patterns[i];
    const bool is_nan = ((b & 0x7c00u) == 0x7c00u) && ((b & 0x03ffu) != 0u);
    if (is_nan) {
      ASSERT_EQ(back[i].bits(), b | 0x0200u) << std::hex << b;  // quietened
    } else {
      ASSERT_EQ(back[i].bits(), b) << std::hex << b;
    }
  }
}

TEST(HalfBatch, StridedLineHooksMatchPerElementAcrossChunkBoundaries) {
  // The policy-level strided hooks gather/scatter through fixed-size stack
  // chunks; spans longer than one chunk (256 elements) must split without
  // dropping, duplicating, or mis-indexing elements for any stride —
  // including stride 2, the red–black scatter pattern.
  using igr::common::Fp16x32;
  std::mt19937 rng(24680u);
  const std::size_t lengths[] = {1, 7, 255, 256, 257, 511, 513, 1000};
  const std::ptrdiff_t strides[] = {1, 2, 3, 7};
  for (const std::size_t n : lengths) {
    for (const std::ptrdiff_t stride : strides) {
      const std::size_t span = (n - 1) * static_cast<std::size_t>(stride) + 1;
      std::vector<half> hsrc(span);
      for (auto& h : hsrc)
        h = half::from_bits(static_cast<std::uint16_t>(rng()));
      std::vector<float> got(n), want(n);
      igr::common::load_line_strided<Fp16x32>(hsrc.data(), stride, got.data(),
                                              n);
      for (std::size_t i = 0; i < n; ++i)
        want[i] = float(hsrc[i * static_cast<std::size_t>(stride)]);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(f32_bits(got[i]), f32_bits(want[i]))
            << "load n=" << n << " stride=" << stride << " i=" << i;

      std::vector<float> fsrc(n);
      for (auto& f : fsrc) f = f32_from_bits(static_cast<std::uint32_t>(rng()));
      std::vector<half> hgot(span, half::from_bits(0x1234u));
      std::vector<half> hwant(span, half::from_bits(0x1234u));
      igr::common::store_line_strided<Fp16x32>(fsrc.data(), hgot.data(),
                                               stride, n);
      for (std::size_t i = 0; i < n; ++i)
        hwant[i * static_cast<std::size_t>(stride)] = half(fsrc[i]);
      for (std::size_t i = 0; i < span; ++i)
        ASSERT_EQ(hgot[i].bits(), hwant[i].bits())
            << "store n=" << n << " stride=" << stride << " i=" << i;
    }
  }
}

TEST(HalfBatch, BackendReportingIsConsistent) {
  const auto name = hb::backend_name();
  EXPECT_TRUE(name == "f16c" || name == "bitwise" || name == "scalar")
      << name;
  if (hb::active_backend() == hb::Backend::kF16c) {
    EXPECT_TRUE(hb::f16c_compiled());
  }
}

}  // namespace
