/// Tests for the application layer (jet configurations, Simulation driver)
/// and the I/O substrate (VTK + CSV writers), plus timers and config.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "app/jet_config.hpp"
#include "app/simulation.hpp"
#include "common/timer.hpp"
#include "io/csv_writer.hpp"
#include "io/vtk_writer.hpp"

namespace {

using igr::app::JetConfig;
using igr::app::SchemeKind;
using igr::app::Simulation;
using igr::common::Fp16x32;
using igr::common::Fp64;
using igr::common::SolverConfig;
using igr::mesh::Grid;

TEST(JetConfig, SuperHeavyHasThirtyThreeEngines) {
  const auto j = igr::app::super_heavy_33();
  EXPECT_EQ(j.centers.size(), 33u);  // 3 + 10 + 20, Fig. 1 layout
}

TEST(JetConfig, EnginesDoNotOverlap) {
  const auto j = igr::app::super_heavy_33();
  for (std::size_t a = 0; a < j.centers.size(); ++a) {
    for (std::size_t b = a + 1; b < j.centers.size(); ++b) {
      const double dx = j.centers[a][0] - j.centers[b][0];
      const double dy = j.centers[a][1] - j.centers[b][1];
      EXPECT_GT(std::sqrt(dx * dx + dy * dy), 2.0 * j.nozzle_radius)
          << a << " vs " << b;
    }
  }
}

TEST(JetConfig, EnginesInsideUnitCrossSection) {
  for (const auto& cfg : {igr::app::single_engine(),
                          igr::app::three_engine_row(),
                          igr::app::super_heavy_33()}) {
    for (const auto& c : cfg.centers) {
      EXPECT_GT(c[0] - cfg.nozzle_radius, 0.0);
      EXPECT_LT(c[0] + cfg.nozzle_radius, 1.0);
      EXPECT_GT(c[1] - cfg.nozzle_radius, 0.0);
      EXPECT_LT(c[1] + cfg.nozzle_radius, 1.0);
    }
  }
}

TEST(JetConfig, JetStateIsMachTen) {
  const auto j = igr::app::single_engine();
  const auto w = j.jet_state();
  const double c = std::sqrt(j.gamma * w.p / w.rho);
  EXPECT_NEAR(w.w / c, 10.0, 1e-12);
  EXPECT_EQ(w.u, 0.0);
}

TEST(JetConfig, BcHasPatchesOnZLowOnly) {
  const auto j = igr::app::three_engine_row();
  const auto bc = j.make_bc();
  using igr::mesh::Face;
  EXPECT_EQ(bc.face_kind(Face::kZLo), igr::fv::BcKind::kInflowPatches);
  EXPECT_EQ(bc.patches[static_cast<std::size_t>(Face::kZLo)].size(), 3u);
  EXPECT_EQ(bc.face_kind(Face::kZHi), igr::fv::BcKind::kOutflow);
}

TEST(JetConfig, NoiseSeedingPerturbsDensity) {
  const auto j = igr::app::single_engine();
  const auto ic0 = j.initial_condition(0.0);
  const auto ic1 = j.initial_condition(0.01);
  const auto w0 = ic0(0.3, 0.4, 0.2);
  const auto w1 = ic1(0.3, 0.4, 0.2);
  EXPECT_EQ(w0.rho, 1.0);
  EXPECT_NE(w1.rho, w0.rho);
  EXPECT_NEAR(w1.rho, 1.0, 0.02);
}

TEST(Simulation, IgrJetRunsStably) {
  const auto j = igr::app::single_engine();
  typename Simulation<Fp64>::Params params;
  params.grid = Grid(16, 16, 24, {0, 1}, {0, 1}, {0, 1.5});
  params.cfg = j.solver_config();
  params.bc = j.make_bc();
  params.scheme = SchemeKind::kIgr;
  Simulation<Fp64> sim(params);
  sim.init(j.initial_condition());
  sim.run_steps(10);
  const auto d = sim.diagnostics();
  EXPECT_GT(d.max_mach, 1.0);       // the jet has entered the domain
  EXPECT_GT(d.min_density, 0.0);    // positivity held
  EXPECT_TRUE(std::isfinite(d.kinetic_energy));
  EXPECT_GT(sim.grind_ns(), 0.0);
}

TEST(Simulation, BaselineJetRunsStablyFp64) {
  const auto j = igr::app::single_engine();
  typename Simulation<Fp64>::Params params;
  params.grid = Grid(12, 12, 16, {0, 1}, {0, 1}, {0, 1.5});
  params.cfg = j.solver_config();
  params.bc = j.make_bc();
  params.scheme = SchemeKind::kBaselineWeno;
  Simulation<Fp64> sim(params);
  sim.init(j.initial_condition());
  sim.run_steps(5);
  EXPECT_GT(sim.diagnostics().max_mach, 0.5);
}

TEST(Simulation, BaselineRejectsFp16) {
  // §4.3: WENO/HLLC is numerically unstable below FP64; the API forbids it.
  typename Simulation<Fp16x32>::Params params;
  params.scheme = SchemeKind::kBaselineWeno;
  EXPECT_THROW(Simulation<Fp16x32>{params}, std::invalid_argument);
}

TEST(Simulation, Fp16IgrJetStaysFinite) {
  const auto j = igr::app::single_engine();
  typename Simulation<Fp16x32>::Params params;
  params.grid = Grid(12, 12, 16, {0, 1}, {0, 1}, {0, 1.5});
  params.cfg = j.solver_config();
  params.bc = j.make_bc();
  Simulation<Fp16x32> sim(params);
  sim.init(j.initial_condition(0.005));
  sim.run_steps(8);
  const auto d = sim.diagnostics();
  EXPECT_GT(d.min_density, 0.0);
  EXPECT_TRUE(std::isfinite(d.max_mach));
}

TEST(VtkWriter, WritesWellFormedFile) {
  const auto path = std::filesystem::temp_directory_path() / "igr_test.vtk";
  const auto g = Grid::cube(4);
  igr::common::StateField3<double> q(4, 4, 4, 3);
  for (int c = 0; c < 5; ++c) q[c].fill(c == 0 || c == 4 ? 1.0 : 0.0);
  igr::eos::IdealGas eos(1.4);
  igr::io::VtkWriter w(g);
  w.open(path.string());
  w.add_state(q, eos);
  w.close();

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  int scalars = 0;
  while (std::getline(in, line))
    if (line.rfind("SCALARS", 0) == 0) ++scalars;
  EXPECT_EQ(scalars, 3);
  std::filesystem::remove(path);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const auto path = std::filesystem::temp_directory_path() / "igr_test.csv";
  {
    igr::io::CsvWriter csv(path.string(), {"x", "rho"});
    csv.row({0.5, 1.25});
    csv.row({1.5, 0.75});
    EXPECT_EQ(csv.rows_written(), 2u);
    EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,rho");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,1.25");
  std::filesystem::remove(path);
}

TEST(Timer, GrindTimeMatchesDefinition) {
  igr::common::GrindTimer t(1000);
  t.begin_step();
  t.end_step();
  t.begin_step();
  t.end_step();
  EXPECT_EQ(t.steps(), 2u);
  // grind_ns = total_s * 1e9 / (cells * steps)
  EXPECT_NEAR(t.grind_ns(), t.total_seconds() * 1e9 / 2000.0, 1e-9);
}

TEST(Timer, ZeroStepsGivesZeroGrind) {
  igr::common::GrindTimer t(100);
  EXPECT_EQ(t.grind_ns(), 0.0);
}

TEST(Config, ValidationCatchesBadInputs) {
  SolverConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.gamma = 0.9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.cfl = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.mu = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.sigma_sweeps = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.pressure_floor = -1e-3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Simulation, VtkOutputFromDriver) {
  const auto path = std::filesystem::temp_directory_path() / "igr_sim.vtk";
  const auto j = igr::app::single_engine();
  typename Simulation<Fp64>::Params params;
  params.grid = Grid(8, 8, 8, {0, 1}, {0, 1}, {0, 1});
  params.cfg = j.solver_config();
  params.bc = j.make_bc();
  Simulation<Fp64> sim(params);
  sim.init(j.initial_condition());
  sim.run_steps(2);
  sim.write_vtk(path.string());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 1000u);
  std::filesystem::remove(path);
}

TEST(Simulation, DecomposedRunMatchesSingleDomainThroughFacade) {
  // The app-level `ranks` path: same jet, 1 rank vs 2x2x1 ranks, Jacobi
  // sweeps -> the gathered state must be bitwise identical, and the facade
  // must report diagnostics off the gathered field.
  const auto jet = igr::app::single_engine();
  Simulation<Fp64>::Params p;
  p.grid = Grid(12, 12, 18, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.5});
  p.cfg = jet.solver_config();
  p.cfg.sigma_gauss_seidel = false;
  p.bc = jet.make_bc();

  Simulation<Fp64> single(p);
  p.ranks = {2, 2, 1};
  Simulation<Fp64> dist(p);
  ASSERT_TRUE(dist.distributed());
  single.init(jet.initial_condition(0.005));
  dist.init(jet.initial_condition(0.005));

  for (int s = 0; s < 3; ++s) {
    const double dt_s = single.step();
    const double dt_d = dist.step();
    ASSERT_EQ(dt_s, dt_d) << "step " << s;
  }
  const auto& qs = single.state();
  const auto& qd = dist.state();
  for (int c = 0; c < igr::common::kNumVars; ++c)
    for (int k = 0; k < p.grid.nz(); ++k)
      for (int j = 0; j < p.grid.ny(); ++j)
        for (int i = 0; i < p.grid.nx(); ++i)
          ASSERT_EQ(qs[c](i, j, k), qd[c](i, j, k))
              << c << " " << i << " " << j << " " << k;
  EXPECT_GT(dist.dist().comm().bytes_exchanged(), 0u);

  // Decomposed VTK output goes through the gathered state + Sigma.
  const std::string path = "decomposed_jet_test.vtk";
  dist.write_vtk(path);
  EXPECT_GT(std::filesystem::file_size(path), 1000u);
  std::filesystem::remove(path);
}

TEST(Simulation, DecomposedBaselineIsRejected) {
  Simulation<Fp64>::Params p;
  p.grid = Grid::cube(12);
  p.scheme = SchemeKind::kBaselineWeno;
  p.ranks = {2, 1, 1};
  EXPECT_THROW(Simulation<Fp64> s(std::move(p)), std::invalid_argument);
}

}  // namespace
