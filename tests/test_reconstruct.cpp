/// Unit tests for interface reconstruction: formal accuracy of the linear
/// operators (the IGR scheme's workhorses) and the non-oscillatory behavior
/// of WENO5 (the baseline's).

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "fv/reconstruct.hpp"

namespace {

using namespace igr::fv;

/// Cell averages of f over cells of width h centered so the face of
/// interest (i+1/2) sits at x = 0; cell i spans [-h, 0].
template <class F>
std::array<double, 6> cell_averages(F f, double h) {
  std::array<double, 6> s{};
  for (int m = 0; m < 6; ++m) {
    const double a = (m - 3) * h;  // cell m spans [a, a+h]
    // 5-point Gauss-Legendre per cell: exact through degree 9.
    const double c = a + 0.5 * h, hw = 0.5 * h;
    const double x1 = 0.0, w1 = 128.0 / 225.0;
    const double x2 = std::sqrt(5.0 - 2.0 * std::sqrt(10.0 / 7.0)) / 3.0;
    const double w2 = (322.0 + 13.0 * std::sqrt(70.0)) / 900.0;
    const double x3 = std::sqrt(5.0 + 2.0 * std::sqrt(10.0 / 7.0)) / 3.0;
    const double w3 = (322.0 - 13.0 * std::sqrt(70.0)) / 900.0;
    s[static_cast<std::size_t>(m)] =
        0.5 * (w1 * f(c + hw * x1) + w2 * (f(c + hw * x2) + f(c - hw * x2)) +
               w3 * (f(c + hw * x3) + f(c - hw * x3)));
  }
  return s;
}

TEST(Recon, FirstOrderIsPiecewiseConstant) {
  std::array<double, 6> s{1, 2, 3, 4, 5, 6};
  const auto f = recon1(s);
  EXPECT_EQ(f.left, 3.0);
  EXPECT_EQ(f.right, 4.0);
}

TEST(Recon, AllSchemesExactOnConstants) {
  std::array<double, 6> s;
  s.fill(7.5);
  for (auto scheme : {ReconScheme::kFirst, ReconScheme::kThird,
                      ReconScheme::kFifth, ReconScheme::kWeno5}) {
    const auto f = reconstruct(scheme, s);
    EXPECT_NEAR(f.left, 7.5, 1e-13);
    EXPECT_NEAR(f.right, 7.5, 1e-13);
  }
}

TEST(Recon, LinearSchemesExactOnLinears) {
  // Cell averages of f(x) = 2x + 1 with h = 0.1; face value f(0) = 1.
  const auto s = cell_averages([](double x) { return 2.0 * x + 1.0; }, 0.1);
  for (auto scheme : {ReconScheme::kThird, ReconScheme::kFifth}) {
    const auto f = reconstruct(scheme, s);
    EXPECT_NEAR(f.left, 1.0, 1e-13);
    EXPECT_NEAR(f.right, 1.0, 1e-13);
  }
}

TEST(Recon, FifthOrderExactOnQuartics) {
  const auto f4 = [](double x) {
    return 1.0 + x + x * x - 2.0 * x * x * x + 0.5 * x * x * x * x;
  };
  const auto s = cell_averages(f4, 0.2);
  const auto f = recon5(s);
  EXPECT_NEAR(f.left, f4(0.0), 1e-12);
  EXPECT_NEAR(f.right, f4(0.0), 1e-12);
}

TEST(Recon, ThirdOrderExactOnQuadratics) {
  const auto f2 = [](double x) { return 3.0 - x + 2.0 * x * x; };
  const auto s = cell_averages(f2, 0.2);
  const auto f = recon3(s);
  EXPECT_NEAR(f.left, f2(0.0), 1e-12);
  EXPECT_NEAR(f.right, f2(0.0), 1e-12);
}

/// Convergence-order sweep: error(h) ~ h^p.
double recon_error(ReconScheme scheme, double h) {
  const auto f = [](double x) { return std::sin(3.0 * x + 0.4); };
  const auto s = cell_averages(f, h);
  const auto r = reconstruct(scheme, s);
  return std::abs(r.left - f(0.0));
}

TEST(Recon, FifthOrderConvergenceRate) {
  const double e1 = recon_error(ReconScheme::kFifth, 0.1);
  const double e2 = recon_error(ReconScheme::kFifth, 0.05);
  const double rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 4.6);  // nominal 5
}

TEST(Recon, ThirdOrderConvergenceRate) {
  const double e1 = recon_error(ReconScheme::kThird, 0.1);
  const double e2 = recon_error(ReconScheme::kThird, 0.05);
  EXPECT_GT(std::log2(e1 / e2), 2.6);  // nominal 3
}

TEST(Recon, Weno5MatchesLinearOnSmoothData) {
  const auto f = [](double x) { return std::cos(x); };
  const auto s = cell_averages(f, 0.05);
  const auto w = weno5(s);
  const auto l = recon5(s);
  EXPECT_NEAR(w.left, l.left, 1e-6);
  EXPECT_NEAR(w.right, l.right, 1e-6);
}

TEST(Recon, Weno5NonOscillatoryAtJump) {
  // Step data placed so the upwind-biased linear stencil overshoots:
  // recon5 left state = -3/60 < 0, outside the data range [0, 1].
  std::array<double, 6> s{0.0, 0.0, 0.0, 0.0, 1.0, 1.0};
  const auto l = recon5(s);
  EXPECT_LT(l.left, -1e-3);  // the Gibbs overshoot WENO exists to cure

  // WENO stays essentially within the data range.
  const auto w = weno5(s);
  EXPECT_GE(w.left, -1e-3);
  EXPECT_LE(w.left, 1.0 + 1e-3);
  EXPECT_GE(w.right, -1e-3);
  EXPECT_LE(w.right, 1.0 + 1e-3);
}

TEST(Recon, Weno5UpwindBias) {
  // A jump far downwind should not contaminate the left state.
  std::array<double, 6> s{1.0, 1.0, 1.0, 1.0, 1.0, 100.0};
  const auto w = weno5(s);
  EXPECT_NEAR(w.left, 1.0, 1e-10);
}

class ReconSchemeSweep : public ::testing::TestWithParam<ReconScheme> {};

TEST_P(ReconSchemeSweep, TranslationEquivariance) {
  // recon(s + c) == recon(s) + c for all schemes (affine invariance of the
  // reconstructions; for WENO the weights are shift-invariant).
  std::array<double, 6> s{0.3, 1.7, 0.9, 1.1, 0.2, 0.8};
  auto sc = s;
  for (auto& v : sc) v += 5.0;
  const auto f = reconstruct(GetParam(), s);
  const auto g = reconstruct(GetParam(), sc);
  EXPECT_NEAR(g.left, f.left + 5.0, 1e-10);
  EXPECT_NEAR(g.right, f.right + 5.0, 1e-10);
}

TEST_P(ReconSchemeSweep, MirrorSymmetry) {
  // Reversing the stencil swaps left and right states.
  std::array<double, 6> s{0.3, 1.7, 0.9, 1.1, 0.2, 0.8};
  std::array<double, 6> r;
  for (int m = 0; m < 6; ++m) r[static_cast<std::size_t>(m)] = s[static_cast<std::size_t>(5 - m)];
  const auto f = reconstruct(GetParam(), s);
  const auto g = reconstruct(GetParam(), r);
  EXPECT_NEAR(g.left, f.right, 1e-12);
  EXPECT_NEAR(g.right, f.left, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ReconSchemeSweep,
                         ::testing::Values(ReconScheme::kFirst,
                                           ReconScheme::kThird,
                                           ReconScheme::kFifth,
                                           ReconScheme::kWeno5));

}  // namespace
