/// Tests for the WENO5+HLLC baseline solver (the paper's state-of-the-art
/// comparator) and its relationship to the IGR solver.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/weno_hllc_solver3d.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/exact_riemann.hpp"

namespace {

using igr::baseline::WenoHllcSolver3D;
using igr::common::Fp64;
using igr::common::kNumVars;
using igr::common::Prim;
using igr::common::SolverConfig;
using igr::core::IgrSolver3D;
using igr::fv::BcSpec;
using igr::mesh::Grid;

TEST(Weno3D, ConstantStateIsSteady) {
  WenoHllcSolver3D<Fp64> s(Grid::cube(12), SolverConfig{},
                           BcSpec::all_periodic());
  s.init([](double, double, double) {
    return Prim<double>{1.1, 0.2, 0.3, -0.1, 0.8};
  });
  for (int i = 0; i < 5; ++i) s.step();
  for (int k = 0; k < 12; ++k)
    for (int j = 0; j < 12; ++j)
      for (int i = 0; i < 12; ++i)
        EXPECT_NEAR(s.state()[0](i, j, k), 1.1, 1e-12);
}

TEST(Weno3D, PeriodicConservation) {
  WenoHllcSolver3D<Fp64> s(Grid::cube(16), SolverConfig{},
                           BcSpec::all_periodic());
  s.init([](double x, double y, double z) {
    Prim<double> w;
    w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * x);
    w.u = 0.2 * std::cos(2 * M_PI * y);
    w.w = -0.1 * std::sin(2 * M_PI * z);
    w.p = 1.0;
    return w;
  });
  const auto before = s.conserved_totals();
  for (int i = 0; i < 10; ++i) s.step();
  const auto after = s.conserved_totals();
  for (int c = 0; c < kNumVars; ++c)
    EXPECT_NEAR(after[c], before[c], 1e-11 * (std::abs(before[c]) + 1.0));
}

TEST(Weno3D, SodMatchesExactSolution) {
  SolverConfig cfg;
  cfg.cfl = 0.35;
  BcSpec bc = BcSpec::all_outflow();
  Grid g(128, 4, 4, {0.0, 1.0}, {0.0, 0.05}, {0.0, 0.05});
  WenoHllcSolver3D<Fp64> s(g, cfg, bc);
  s.init([](double x, double, double) {
    Prim<double> w;
    w.rho = x < 0.5 ? 1.0 : 0.125;
    w.p = x < 0.5 ? 1.0 : 0.1;
    return w;
  });
  while (s.time() < 0.2) s.step();
  igr::fv::ExactRiemann ex(igr::fv::sod_left(), igr::fv::sod_right(), 1.4);
  const auto ref = ex.sample_profile(128, 0.0, 1.0, 0.5, s.time());
  double l1 = 0;
  for (int i = 0; i < 128; ++i)
    l1 += std::abs(s.state()[0](i, 2, 2) -
                   ref[static_cast<std::size_t>(i)].rho) *
          g.dx();
  EXPECT_LT(l1, 0.02);
}

TEST(Weno3D, CapturesShockSharperThanIgr) {
  // WENO+HLLC resolves the captured shock in fewer cells; IGR deliberately
  // smooths it over ~sqrt(alpha_factor) cells.  Verify the expected
  // relationship holds (and thus that both are behaving as designed).
  SolverConfig cfg;
  cfg.cfl = 0.3;
  cfg.alpha_factor = 10.0;
  BcSpec bc = BcSpec::all_outflow();
  Grid g(128, 4, 4, {0.0, 1.0}, {0.0, 0.05}, {0.0, 0.05});
  auto ic = [](double x, double, double) {
    Prim<double> w;
    w.rho = x < 0.5 ? 1.0 : 0.125;
    w.p = x < 0.5 ? 1.0 : 0.1;
    return w;
  };
  WenoHllcSolver3D<Fp64> w(g, cfg, bc);
  IgrSolver3D<Fp64> s(g, cfg, bc);
  w.init(ic);
  s.init(ic);
  while (w.time() < 0.15) w.step();
  while (s.time() < 0.15) s.step();

  auto shock_width = [&](auto& solver) {
    // Count cells with density between the post- and pre-shock plateaus.
    int cells = 0;
    for (int i = 64; i < 128; ++i) {
      const double r = static_cast<double>(solver.state()[0](i, 2, 2));
      if (r > 0.14 && r < 0.25) ++cells;
    }
    return cells;
  };
  EXPECT_LE(shock_width(w), shock_width(s));
}

TEST(Weno3D, BaselineStoresMoreThanIgr) {
  // §5.4: the fused IGR kernel eliminates the array-based intermediates the
  // baseline must keep.  Measured on a grid large enough that ghost-layer
  // overhead does not mask the per-cell storage difference.
  SolverConfig cfg;
  Grid g = Grid::cube(48);
  WenoHllcSolver3D<Fp64> w(g, cfg, BcSpec::all_periodic());
  IgrSolver3D<Fp64> s(g, cfg, BcSpec::all_periodic());
  EXPECT_GT(w.storage_per_cell(), s.storage_per_cell());
  EXPECT_GT(static_cast<double>(w.memory_bytes()),
            1.3 * static_cast<double>(s.memory_bytes()));
}

TEST(Weno3D, GrindTimerWorks) {
  WenoHllcSolver3D<Fp64> s(Grid::cube(8), SolverConfig{},
                           BcSpec::all_periodic());
  s.init([](double, double, double) { return Prim<double>{1, 0, 0, 0, 1}; });
  s.step();
  EXPECT_EQ(s.grind_timer().steps(), 1u);
}

TEST(Weno3D, ViscousRunConserves) {
  SolverConfig cfg;
  cfg.mu = 0.01;
  WenoHllcSolver3D<Fp64> s(Grid::cube(12), cfg, BcSpec::all_periodic());
  s.init([](double, double y, double) {
    Prim<double> w;
    w.rho = 1.0;
    w.u = 0.2 * std::sin(2 * M_PI * y);
    w.p = 1.0;
    return w;
  });
  const auto before = s.conserved_totals();
  for (int i = 0; i < 5; ++i) s.step();
  const auto after = s.conserved_totals();
  EXPECT_NEAR(after.rho, before.rho, 1e-12);
  EXPECT_NEAR(after.e, before.e, 1e-11);
}

}  // namespace
