/// Golden regressions over the case library: registry integrity, per-case
/// diagnostic bands and conserved-quantity checksums at FP64, precision
/// sweeps (FP32 / FP16x32), the isentropic-vortex convergence-order anchor,
/// a distributed-vs-serial bitwise check through the registry, and bitwise
/// checkpoint/restart continuation through the case runner.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "cases/runner.hpp"

namespace {

namespace fs = std::filesystem;
using igr::common::Fp16x32;
using igr::common::Fp32;
using igr::common::Fp64;
using igr::common::kNumVars;
namespace cases = igr::cases;

void expect_in(const cases::Band& b, double v, const char* what) {
  EXPECT_TRUE(b.contains(v))
      << what << " = " << v << " outside [" << b.lo << ", " << b.hi << "]";
}

/// The full FP64 golden contract of one case.
void check_golden(const cases::CaseSpec& spec, const cases::RunResult& r) {
  EXPECT_TRUE(std::isfinite(r.diag.max_mach));
  EXPECT_TRUE(std::isfinite(r.diag.kinetic_energy));
  EXPECT_TRUE(std::isfinite(r.diag.enstrophy));
  EXPECT_GT(r.diag.min_density, 0.0);
  expect_in(spec.golden.max_mach, r.diag.max_mach, "max_mach");
  expect_in(spec.golden.min_density, r.diag.min_density, "min_density");
  expect_in(spec.golden.max_density, r.diag.max_density, "max_density");
  expect_in(spec.golden.min_pressure, r.diag.min_pressure, "min_pressure");
  expect_in(spec.golden.enstrophy, r.diag.enstrophy, "enstrophy");
  if (spec.golden.conservation_rtol > 0.0) {
    const double rtol = spec.golden.conservation_rtol;
    EXPECT_NEAR(r.totals_final.rho, r.totals_initial.rho,
                rtol * std::abs(r.totals_initial.rho))
        << "mass checksum";
    EXPECT_NEAR(r.totals_final.e, r.totals_initial.e,
                rtol * std::abs(r.totals_initial.e))
        << "energy checksum";
  }
  if (spec.golden.l1_error_max > 0.0) {
    ASSERT_GE(r.l1_error, 0.0) << "case promises an analytic solution";
    EXPECT_LT(r.l1_error, spec.golden.l1_error_max);
  }
}

TEST(CaseRegistry, ExposesAtLeastEightWellFormedCases) {
  const auto names = cases::list();
  EXPECT_GE(names.size(), 8u);
  for (const auto name : names) {
    SCOPED_TRACE(std::string(name));
    const auto* c = cases::find(name);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name, name);
    ASSERT_TRUE(c->grid && c->bc && c->config && c->initial);
    EXPECT_GE(c->golden_n, 8);
    EXPECT_GE(c->golden_steps, 1);
    EXPECT_GT(c->grid(c->golden_n).cells(), 0u);
    EXPECT_NO_THROW(c->config().validate());
    // The initial condition is evaluable at the domain's corner and center.
    const auto g = c->grid(c->golden_n);
    const auto ic = c->initial();
    EXPECT_GT(ic(g.x(0), g.y(0), g.z(0)).rho, 0.0);
    EXPECT_GT(
        ic(g.x(g.nx() / 2), g.y(g.ny() / 2), g.z(g.nz() / 2)).rho, 0.0);
  }
  EXPECT_EQ(cases::find("no-such-case"), nullptr);
}

TEST(CaseRegistry, CanonicalFamiliesArePresent) {
  for (const char* name :
       {"sod-x", "sod-y", "sod-z", "lax-x", "sedov", "taylor-green",
        "isentropic-vortex", "kelvin-helmholtz", "shock-bubble",
        "jet-single", "jet-three", "jet-33"}) {
    EXPECT_NE(cases::find(name), nullptr) << name;
  }
}

TEST(CaseGolden, Fp64BandsAndChecksumsHoldForEveryCase) {
  for (const auto& spec : cases::all_cases()) {
    SCOPED_TRACE(spec.name);
    const auto r = cases::run_case<Fp64>(spec, cases::golden_options(spec));
    EXPECT_EQ(r.steps, spec.golden_steps);
    check_golden(spec, r);
  }
}

/// Reduced-storage policies run the same scenarios with positivity intact
/// and diagnostics inside a widened band (storage rounding moves the
/// extrema but must not change the physics).  FP32 and FP16/32 use 2x;
/// BF16/32 keeps float's exponent range but carries only 8 significand
/// bits (vs binary16's 11), so its extrema wander further — 4x.
template <class Policy>
void check_precision_sweep(const char* name, double widen_f = 2.0) {
  const auto* spec = cases::find(name);
  ASSERT_NE(spec, nullptr);
  const auto r = cases::run_case<Policy>(*spec, cases::golden_options(*spec));
  EXPECT_GT(r.diag.min_density, 0.0);
  EXPECT_TRUE(std::isfinite(r.diag.max_mach));
  EXPECT_TRUE(std::isfinite(r.totals_final.e));
  const auto widen = [widen_f](const cases::Band& b) {
    return cases::Band{b.lo / widen_f, b.hi * widen_f};
  };
  expect_in(widen(spec->golden.max_mach), r.diag.max_mach, "max_mach");
  expect_in(widen(spec->golden.min_density), r.diag.min_density,
            "min_density");
  expect_in(widen(spec->golden.max_density), r.diag.max_density,
            "max_density");
}

TEST(CaseGolden, Fp32SweepShockTubeAndTaylorGreen) {
  check_precision_sweep<Fp32>("sod-x");
  check_precision_sweep<Fp32>("taylor-green");
  check_precision_sweep<Fp32>("sedov");
}

TEST(CaseGolden, Fp16x32SweepShockTubeAndTaylorGreen) {
  check_precision_sweep<Fp16x32>("sod-x");
  check_precision_sweep<Fp16x32>("taylor-green");
  check_precision_sweep<Fp16x32>("sedov");
}

TEST(CaseGolden, Bf16x32SweepShockTubeSedovAndJet) {
  using igr::common::Bf16x32;
  check_precision_sweep<Bf16x32>("sod-x", 4.0);
  check_precision_sweep<Bf16x32>("sedov", 4.0);
  check_precision_sweep<Bf16x32>("jet-single", 4.0);
}

TEST(CaseRegistry, RunnerRejectsWenoForIgrOnlyCases) {
  auto spec = *cases::find("sod-x");  // copy; flip the gate
  spec.supports_weno = false;
  auto opts = cases::golden_options(spec);
  opts.scheme = igr::app::SchemeKind::kBaselineWeno;
  EXPECT_THROW((cases::CaseRun<Fp64>(spec, opts)), std::invalid_argument);
  opts.scheme = igr::app::SchemeKind::kIgr;
  EXPECT_NO_THROW((cases::CaseRun<Fp64>(spec, opts)));
}

TEST(CaseGolden, WenoBaselineRunsShockTube) {
  const auto* spec = cases::find("sod-x");
  ASSERT_NE(spec, nullptr);
  auto opts = cases::golden_options(*spec);
  opts.scheme = igr::app::SchemeKind::kBaselineWeno;
  const auto r = cases::run_case<Fp64>(*spec, opts);
  EXPECT_GT(r.diag.min_density, 0.0);
  expect_in(spec->golden.max_mach, r.diag.max_mach, "max_mach");
  expect_in(spec->golden.min_pressure, r.diag.min_pressure, "min_pressure");
}

TEST(CaseConvergence, IsentropicVortexErrorDropsUnderRefinement) {
  const auto* spec = cases::find("isentropic-vortex");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions coarse;
  coarse.n = 24;
  coarse.t_end = 0.5;
  cases::RunOptions fine = coarse;
  fine.n = 48;
  const auto rc = cases::run_case<Fp64>(*spec, coarse);
  const auto rf = cases::run_case<Fp64>(*spec, fine);
  ASSERT_GE(rc.l1_error, 0.0);
  ASSERT_GE(rf.l1_error, 0.0);
  EXPECT_LT(rf.l1_error, rc.l1_error);
  // Pre-asymptotic at these resolutions (alpha ~ h^2 perturbation); a
  // solid monotone drop is the regression contract, full 5th order is not.
  EXPECT_LT(rf.l1_error, 0.75 * rc.l1_error);
}

TEST(CaseDiagnostics, EnergyTotalsAgreeAndTaylorGreenEnstrophyIsAnalytic) {
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  const auto r = cases::run_case<Fp64>(*spec, cases::golden_options(*spec));
  // diagnostics() integrates E dv in its own loop; the runner's conserved
  // totals must agree (summation order differs by rounding only).
  EXPECT_NEAR(r.diag.total_energy, r.totals_final.e,
              1e-12 * std::abs(r.totals_final.e));
  EXPECT_NEAR(r.diag.total_mass, r.totals_final.rho,
              1e-12 * std::abs(r.totals_final.rho));
  // Initial enstrophy of the Taylor-Green field is 6*pi^3 ~ 186.04; the
  // second-order curl stencil at n = 24 resolves it to a few percent and 8
  // steps of this near-incompressible flow barely move it.
  const double analytic = 6.0 * std::pow(3.14159265358979323846, 3);
  EXPECT_NEAR(r.diag.enstrophy, analytic, 0.15 * analytic);
}

TEST(CaseDistributed, TaylorGreenDecomposedBitwiseEqualSerial) {
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 4;
  opts.jacobi_sweeps = true;  // decomposition-exact sweep flavor
  auto dist_opts = opts;
  dist_opts.ranks = {1, 2, 2};
  cases::CaseRun<Fp64> serial(*spec, opts);
  cases::CaseRun<Fp64> dist(*spec, dist_opts);
  for (int s = 0; s < 4; ++s) {
    const double dt_s = serial.step();
    const double dt_d = dist.step();
    ASSERT_EQ(dt_s, dt_d) << "step " << s;
  }
  const auto& qs = serial.sim().state();
  const auto& qd = dist.sim().state();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < 12; ++k)
      for (int j = 0; j < 12; ++j)
        for (int i = 0; i < 12; ++i)
          ASSERT_EQ(qs[c](i, j, k), qd[c](i, j, k))
              << "c=" << c << " @ " << i << "," << j << "," << k;
}

/// Interrupted-and-restarted == uninterrupted, bit for bit: the checkpoint
/// round-trips the state *and* Sigma (the warm start), and the restarted
/// step()'s dt rescan reproduces the fused pipeline's cached dt.
template <class Policy>
void check_restart_bitwise(const char* name) {
  const auto* spec = cases::find(name);
  ASSERT_NE(spec, nullptr);
  cases::RunOptions opts;
  opts.n = spec->golden_n;
  opts.steps = 1;  // stepping is driven manually below

  cases::CaseRun<Policy> straight(*spec, opts);
  for (int s = 0; s < 8; ++s) straight.step();

  cases::CaseRun<Policy> first(*spec, opts);
  for (int s = 0; s < 4; ++s) first.step();
  const auto path = (fs::temp_directory_path() /
                     (std::string("igr_case_restart_") + name + "_" +
                      std::to_string(sizeof(typename Policy::storage_t)) +
                      ".bin"))
                        .string();
  first.save_checkpoint(path);

  cases::CaseRun<Policy> resumed(*spec, opts);
  resumed.load_checkpoint(path);
  for (int s = 0; s < 4; ++s) {
    const double dt_a = first.step();
    const double dt_b = resumed.step();
    ASSERT_EQ(dt_a, dt_b) << "restarted dt diverged at step " << s;
  }
  fs::remove(path);
  fs::remove(path + ".sigma");

  const auto& qa = straight.sim().state();
  const auto& qb = resumed.sim().state();
  const auto& g = straight.sim().grid();
  ASSERT_EQ(straight.sim().time(), resumed.sim().time());
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < g.nz(); ++k)
      for (int j = 0; j < g.ny(); ++j)
        for (int i = 0; i < g.nx(); ++i)
          ASSERT_EQ(static_cast<double>(qa[c](i, j, k)),
                    static_cast<double>(qb[c](i, j, k)))
              << "c=" << c << " @ " << i << "," << j << "," << k;
}

TEST(CaseCheckpoint, RestartContinuesBitwiseFp64) {
  check_restart_bitwise<Fp64>("sod-x");
  check_restart_bitwise<Fp64>("taylor-green");
}

TEST(CaseCheckpoint, RestartContinuesBitwiseFp16x32) {
  check_restart_bitwise<Fp16x32>("sod-x");
}

// --- Layout-agnostic restart + golden field fingerprints -----------------

/// A checkpoint saved from a decomposed run restarts on *any* rank layout
/// (serial included) and continues bitwise — state, Sigma warm start, and
/// every subsequent dt.  Jacobi sweeps make the sweep flavor itself
/// decomposition-exact, so the uninterrupted serial run is the single
/// reference for all layouts.
TEST(CaseCheckpoint, RestartIsLayoutAgnosticAndBitwise) {
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 1;  // stepping is driven manually below
  opts.jacobi_sweeps = true;

  cases::CaseRun<Fp64> straight(*spec, opts);
  std::vector<double> dts;
  for (int s = 0; s < 12; ++s) dts.push_back(straight.step());
  const std::uint64_t want_fnv = straight.result().state_fnv;

  // Save at step 6 from a 2x2x2-decomposed run (the writer gathers to one
  // layout-independent global file).
  auto save_opts = opts;
  save_opts.ranks = {2, 2, 2};
  cases::CaseRun<Fp64> saver(*spec, save_opts);
  for (int s = 0; s < 6; ++s)
    ASSERT_EQ(saver.step(), dts[static_cast<std::size_t>(s)]) << "step " << s;
  const auto path =
      (fs::temp_directory_path() / "igr_case_layout_restart.bin").string();
  saver.save_checkpoint(path);

  for (const std::array<int, 3> ranks :
       {std::array<int, 3>{1, 1, 1}, std::array<int, 3>{1, 2, 1}}) {
    SCOPED_TRACE("restart ranks " + std::to_string(ranks[0]) + "x" +
                 std::to_string(ranks[1]) + "x" + std::to_string(ranks[2]));
    auto restart_opts = opts;
    restart_opts.ranks = ranks;
    cases::CaseRun<Fp64> resumed(*spec, restart_opts);
    resumed.load_checkpoint(path);
    ASSERT_EQ(resumed.sim().time(), saver.sim().time());
    for (int s = 6; s < 12; ++s)
      ASSERT_EQ(resumed.step(), dts[static_cast<std::size_t>(s)])
          << "restarted dt diverged at step " << s;
    EXPECT_EQ(resumed.result().state_fnv, want_fnv);
    EXPECT_EQ(resumed.sim().time(), straight.sim().time());
  }
  fs::remove(path);
  fs::remove(path + ".sigma");
}

/// Golden FNV-1a fingerprints of the conserved state after each case's
/// golden run (golden_n, golden_steps, FP64, defaults otherwise).  Any bit
/// of any interior value changing changes these — the tightest regression
/// net the suite has.  The FP-reproducibility flags the build pins
/// (-ffp-contract=off, SLP vectorization off) are what make them stable
/// across rebuilds and rank layouts.
///
/// Re-record after an *intentional* numerics change with
///   ./run_case --case all --smoke --json /tmp/cases.json
/// and copy each case's "state_fnv".
TEST(CaseGolden, StateFingerprintsAreBitStable) {
  const struct {
    const char* name;
    std::uint64_t fnv;
  } kGolden[] = {
      {"sod-x", 0x1d91a79a50229f98ull},
      {"sod-y", 0xcaa225115c9c6e81ull},
      {"sod-z", 0x64d99e1c63b9f210ull},
      {"lax-x", 0xbb1ad561d9e67602ull},
      {"lax-y", 0x9cef1fda93283a40ull},
      {"lax-z", 0x088ad276371eb754ull},
      {"sedov", 0x1f1bc47afe75ddf1ull},
      {"shock-bubble", 0x886f2e5041819c48ull},
      {"taylor-green", 0x406b98d0b3c81562ull},
      {"isentropic-vortex", 0x26285f28467a6fddull},
      {"kelvin-helmholtz", 0xa5544ae0c4cad4c7ull},
      {"jet-single", 0x709213cc98a6a1e8ull},
      {"jet-three", 0x69bd0b0b7f8f3232ull},
      {"jet-33", 0x885c6e9797502e1aull},
  };
  // Every registered case must carry a fingerprint — adding a case without
  // recording one fails here, on purpose.
  EXPECT_EQ(std::size(kGolden), cases::all_cases().size());
  for (const auto& gold : kGolden) {
    SCOPED_TRACE(gold.name);
    const auto* spec = cases::find(gold.name);
    ASSERT_NE(spec, nullptr);
    const auto r = cases::run_case<Fp64>(*spec, cases::golden_options(*spec));
    EXPECT_EQ(r.state_fnv, gold.fnv)
        << "state drifted: run produced 0x" << std::hex << r.state_fnv
        << ", golden table has 0x" << gold.fnv;
  }
}

}  // namespace
