/// Conformance tests for the software bfloat16 storage type, mirroring
/// tests/test_half.cpp: value semantics, every branch of the round-to-
/// nearest-even narrowing (normal ties, subnormal quantization, overflow to
/// infinity), the exact-shift widening, the NaN truncate-and-quieten
/// contract, and the batched conversion lanes (reference vs. bitwise,
/// asserted bitwise-identical on all 2^16 patterns and a float sweep).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bfloat16.hpp"

namespace {

using igr::common::bfloat16;
using igr::common::kBf16Eps;
using igr::common::kBf16Max;
using igr::common::kBf16MinNormal;
namespace bf16_batch = igr::common::bf16_batch;

float f32_from_bits(std::uint32_t u) { return std::bit_cast<float>(u); }
std::uint32_t f32_bits(float f) { return std::bit_cast<std::uint32_t>(f); }

bool is_nan_pattern(std::uint16_t b) {
  return (b & 0x7f80u) == 0x7f80u && (b & 0x007fu) != 0;
}

TEST(Bfloat16, RoundTripsSmallIntegers) {
  // 8 mantissa bits of significand: integers through 256 are exact.
  for (int i = -256; i <= 256; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(float(bfloat16(f)), f) << "i=" << i;
  }
}

TEST(Bfloat16, RoundTripsPowersOfTwo) {
  // Full binary32 exponent range — the point of the format.
  for (int e = -126; e <= 127; ++e) {
    const float f = std::ldexp(1.0f, e);
    EXPECT_EQ(float(bfloat16(f)), f) << "e=" << e;
  }
}

TEST(Bfloat16, ZeroAndSignedZero) {
  EXPECT_EQ(bfloat16(0.0f).bits(), 0u);
  EXPECT_EQ(bfloat16(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float(bfloat16(-0.0f)), 0.0f);
}

TEST(Bfloat16, MaxFiniteValue) {
  EXPECT_EQ(bfloat16(kBf16Max).bits(), 0x7f7fu);
  EXPECT_EQ(float(bfloat16(kBf16Max)), kBf16Max);
  EXPECT_TRUE(std::isinf(float(bfloat16(std::numeric_limits<float>::max()))));
}

TEST(Bfloat16, OverflowThreshold) {
  // Values strictly below the midpoint between 0x7f7f and +inf round down;
  // the midpoint itself ties to even (the +inf pattern has mantissa 0, which
  // is "even"), so it and everything above saturate.
  const float max_bf = f32_from_bits(0x7f7f0000u);
  const float midpoint = f32_from_bits(0x7f7f8000u);
  const float below_mid = f32_from_bits(0x7f7f7fffu);
  EXPECT_EQ(bfloat16(max_bf).bits(), 0x7f7fu);
  EXPECT_EQ(bfloat16(below_mid).bits(), 0x7f7fu);
  EXPECT_EQ(bfloat16(midpoint).bits(), 0x7f80u);  // +inf
  EXPECT_TRUE(std::isinf(float(bfloat16(midpoint))));
}

TEST(Bfloat16, SubnormalsRepresented) {
  // bfloat16 subnormals are binary32 subnormals with a 7-bit mantissa;
  // the smallest positive bfloat16 is 2^-133.
  const float tiny = std::ldexp(1.0f, -133);
  EXPECT_EQ(bfloat16(tiny).bits(), 0x0001u);
  EXPECT_EQ(float(bfloat16(tiny)), tiny);
  EXPECT_EQ(float(bfloat16(kBf16MinNormal)), kBf16MinNormal);
}

TEST(Bfloat16, TinyValuesFlushToSignedZero) {
  const float below_half_min = std::ldexp(1.0f, -135);  // < 2^-134
  EXPECT_EQ(bfloat16(below_half_min).bits(), 0x0000u);
  EXPECT_EQ(bfloat16(-below_half_min).bits(), 0x8000u);
}

TEST(Bfloat16, SubnormalHalfwayTiesToEven) {
  // 2^-134 is exactly halfway between 0 (even) and the smallest subnormal
  // 2^-133 (odd): ties to zero.  1.5 * 2^-133 is halfway between the first
  // and second subnormal: ties to the even (second) pattern.
  EXPECT_EQ(bfloat16(std::ldexp(1.0f, -134)).bits(), 0x0000u);
  EXPECT_EQ(bfloat16(std::ldexp(1.5f, -133)).bits(), 0x0002u);
}

TEST(Bfloat16, NormalRoundToNearestEven) {
  // With 7 mantissa bits the ulp at 1.0 is 2^-7.  1 + 2^-8 is exactly
  // halfway between 1.0 (mantissa 0x00, even) and 1 + 2^-7 (mantissa 0x01,
  // odd): ties to 1.0.  1 + 3*2^-8 is halfway between 0x01 and 0x02: ties
  // to 0x02.
  EXPECT_EQ(bfloat16(1.0f + std::ldexp(1.0f, -8)).bits(), 0x3f80u);
  EXPECT_EQ(bfloat16(1.0f + 3.0f * std::ldexp(1.0f, -8)).bits(), 0x3f82u);
  // Just above a midpoint rounds up, just below rounds down.
  EXPECT_EQ(bfloat16(std::nextafter(1.0f + std::ldexp(1.0f, -8), 2.0f)).bits(),
            0x3f81u);
  EXPECT_EQ(bfloat16(std::nextafter(1.0f + std::ldexp(1.0f, -8), 0.0f)).bits(),
            0x3f80u);
}

TEST(Bfloat16, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bfloat16(inf).bits(), 0x7f80u);
  EXPECT_EQ(bfloat16(-inf).bits(), 0xff80u);
  EXPECT_TRUE(std::isinf(float(bfloat16(inf))));
}

TEST(Bfloat16, NanTruncatesPayloadAndQuietens) {
  // Narrowing truncates the payload to 7 bits and sets the quiet bit, so a
  // signaling NaN with a small payload can never fall into the +/-inf
  // encoding (the half contract, adapted to the bf16 layout).
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(is_nan_pattern(bfloat16(qnan).bits()));
  // A signaling-style payload that truncation alone would erase:
  const float snan = f32_from_bits(0x7f800001u);
  const std::uint16_t b = bfloat16(snan).bits();
  EXPECT_TRUE(is_nan_pattern(b));
  EXPECT_EQ(b & 0x0040u, 0x0040u);  // quiet bit set
  EXPECT_TRUE(std::isnan(float(bfloat16(snan))));
  // Sign survives.
  EXPECT_EQ(bfloat16(f32_from_bits(0xffc00000u)).bits() & 0x8000u, 0x8000u);
}

TEST(Bfloat16, WideningIsExactShiftForEveryPattern) {
  // bfloat16 -> float is the raw 16-bit shift: NaN payloads and the
  // signaling bit pass through untouched.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float f = float(bfloat16::from_bits(bits));
    EXPECT_EQ(f32_bits(f), static_cast<std::uint32_t>(bits) << 16) << b;
  }
}

TEST(Bfloat16, ExhaustiveRoundTripAllPatterns) {
  // Every non-NaN pattern survives bfloat16 -> float -> bfloat16 exactly;
  // NaN patterns come back with the quiet bit ORed in (the payload already
  // fits, so truncation changes nothing).
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const std::uint16_t back = bfloat16(float(bfloat16::from_bits(bits))).bits();
    if (is_nan_pattern(bits)) {
      EXPECT_EQ(back, bits | 0x0040u) << "bits=" << b;
    } else {
      EXPECT_EQ(back, bits) << "bits=" << b;
    }
  }
}

TEST(Bfloat16, ExhaustiveMonotonicity) {
  // Widened values are strictly increasing over each sign's finite range.
  float prev = float(bfloat16::from_bits(0x0000u));
  for (std::uint16_t b = 1; b <= 0x7f80u; ++b) {
    const float cur = float(bfloat16::from_bits(b));
    EXPECT_LT(prev, cur) << "bits=" << b;
    prev = cur;
  }
  prev = float(bfloat16::from_bits(0x8000u));
  for (std::uint32_t b = 0x8001u; b <= 0xff80u; ++b) {
    const float cur = float(bfloat16::from_bits(static_cast<std::uint16_t>(b)));
    EXPECT_GT(prev, cur) << "bits=" << b;
    prev = cur;
  }
}

TEST(Bfloat16, RoundingNeverOffByMoreThanHalfUlp) {
  // Sweep floats across several binades; the narrowed value must be one of
  // the two bracketing bfloat16 values, never further.
  for (std::uint32_t step = 0; step < 5000; ++step) {
    const float f =
        std::ldexp(1.0f + static_cast<float>(step) / 5000.0f,
                   static_cast<int>(step % 40) - 20);
    const float r = float(bfloat16(f));
    // kBf16Eps (2^-8) is the half-ulp of f's binade relative to 2^ilogb(f).
    const float half_ulp = std::ldexp(kBf16Eps, std::ilogb(f));
    EXPECT_LE(std::abs(r - f), half_ulp) << "f=" << f;
  }
}

TEST(Bfloat16, RelativeErrorBoundedByEps) {
  for (float f : {1.0f, 3.14159f, 1.0e-30f, 1.0e30f, 7.77e-4f, 123456.0f}) {
    const float r = float(bfloat16(f));
    EXPECT_LE(std::abs(r - f) / f, kBf16Eps) << "f=" << f;
  }
}

TEST(Bfloat16, ComparisonsPromoteToFloat) {
  EXPECT_TRUE(bfloat16(1.0f) < bfloat16(2.0f));
  EXPECT_TRUE(bfloat16(2.0f) > bfloat16(1.0f));
  EXPECT_TRUE(bfloat16(1.0f) == bfloat16(1.0f));
  EXPECT_TRUE(bfloat16(1.0f) != bfloat16(2.0f));
  EXPECT_TRUE(bfloat16(1.0f) <= bfloat16(1.0f));
  EXPECT_TRUE(bfloat16(1.0f) >= bfloat16(1.0f));
  // NaN compares false with everything, including itself.
  const bfloat16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_FALSE(nan == nan);
  EXPECT_TRUE(nan != nan);
  EXPECT_FALSE(nan < nan);
}

TEST(Bfloat16, CompoundAssignmentRoundsEachStep) {
  bfloat16 v(1.0f);
  v += 1.0f;
  EXPECT_EQ(float(v), 2.0f);
  v *= 3.0f;
  EXPECT_EQ(float(v), 6.0f);
  v -= 2.0f;
  EXPECT_EQ(float(v), 4.0f);
  v /= 8.0f;
  EXPECT_EQ(float(v), 0.5f);
  // Each step re-rounds into storage: adding half an ulp of 256 leaves it.
  bfloat16 w(256.0f);
  w += 0.5f;
  EXPECT_EQ(float(w), 256.0f);
}

TEST(Bfloat16, BitsRoundTrip) {
  for (std::uint32_t b : {0x0000u, 0x8000u, 0x3f80u, 0x7f7fu, 0x7f80u,
                          0x0001u, 0xffc0u}) {
    EXPECT_EQ(bfloat16::from_bits(static_cast<std::uint16_t>(b)).bits(), b);
  }
}

// --- Batched conversion lanes -------------------------------------------

TEST(Bfloat16Batch, BackendsAgreeOnAllWideningPatterns) {
  std::vector<std::uint16_t> src(1u << 16);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint16_t>(i);
  std::vector<float> ref(src.size()), fast(src.size());
  bf16_batch::to_float_reference(src.data(), ref.data(), src.size());
  bf16_batch::to_float_bitwise(src.data(), fast.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    ASSERT_EQ(f32_bits(ref[i]), f32_bits(fast[i])) << "bits=" << i;
}

TEST(Bfloat16Batch, BackendsAgreeOnNarrowingSweep) {
  // Every widened bf16 pattern plus the floats halfway between neighbors
  // and the nextafter values on each side — all the rounding branch points.
  std::vector<float> src;
  src.reserve(4u << 16);
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const float f = f32_from_bits(b << 16);
    src.push_back(f);
    src.push_back(f32_from_bits((b << 16) | 0x8000u));  // midpoint
    src.push_back(f32_from_bits((b << 16) | 0x7fffu));  // just below
    src.push_back(f32_from_bits((b << 16) | 0x8001u));  // just above
  }
  std::vector<std::uint16_t> ref(src.size()), fast(src.size());
  bf16_batch::from_float_reference(src.data(), ref.data(), src.size());
  bf16_batch::from_float_bitwise(src.data(), fast.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    ASSERT_EQ(ref[i], fast[i]) << "i=" << i;
}

TEST(Bfloat16Batch, SpanConvertersMatchScalarOps) {
  std::vector<float> src;
  for (int i = -1000; i <= 1000; ++i)
    src.push_back(static_cast<float>(i) * 0.37f);
  std::vector<bfloat16> stored(src.size());
  igr::common::convert_from_float(src.data(), stored.data(), src.size());
  std::vector<float> widened(src.size());
  igr::common::convert_to_float(stored.data(), widened.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(stored[i].bits(), bfloat16(src[i]).bits()) << i;
    EXPECT_EQ(f32_bits(widened[i]), f32_bits(float(bfloat16(src[i])))) << i;
  }
}

TEST(Bfloat16Batch, BackendNameMatchesActiveBackend) {
  switch (bf16_batch::active_backend()) {
    case bf16_batch::Backend::kScalar:
      EXPECT_EQ(bf16_batch::backend_name(), "scalar");
      break;
    case bf16_batch::Backend::kBitwise:
      EXPECT_EQ(bf16_batch::backend_name(), "bitwise");
      break;
  }
}

}  // namespace
