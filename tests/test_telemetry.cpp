/// Telemetry-subsystem tests: registry semantics (counters / gauges /
/// histograms, disabled = strict no-op), recorder + Chrome trace export
/// validity, the provably-inert contract (state and dt fingerprints bitwise
/// identical with telemetry on or off, across precisions), and — on POSIX —
/// real 2-rank igr_launch runs whose JSONL stream and merged trace are
/// parsed back.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cases/runner.hpp"
#include "common/telemetry.hpp"

namespace {

namespace fs = std::filesystem;
namespace tel = igr::common::telemetry;
using namespace igr;

/// Telemetry is process-global state; every test (and every sub-run inside
/// one) starts from the disabled, zeroed baseline so ordering cannot leak.
void reset_telemetry() {
  tel::set_enabled(false);
  tel::reset_metrics();
  tel::clear_events();
  tel::set_rank(0);
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_telemetry(); }
  void TearDown() override { reset_telemetry(); }
};

fs::path scratch_dir(const std::string& name) {
  const fs::path d = fs::temp_directory_path() / ("igr_telemetry_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// --- A minimal recursive-descent JSON validator --------------------------
// Enough grammar to assert the sinks emit *valid* JSON (objects, arrays,
// strings with escapes, numbers, booleans, null) without a JSON dependency.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek('}')) return true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!expect(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek(']')) return true;
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;  // escaped char (\uXXXX hex digits are plain chars here)
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Registry semantics --------------------------------------------------

TEST_F(TelemetryTest, DisabledMetricsAreStrictNoOps) {
  ASSERT_FALSE(tel::enabled());
  tel::counter("t.c").add(7);
  tel::gauge("t.g").set(3.5);
  tel::histogram("t.h").record(100);
  EXPECT_EQ(tel::counter("t.c").value(), 0u);
  EXPECT_EQ(tel::gauge("t.g").value(), 0.0);
  EXPECT_EQ(tel::histogram("t.h").count(), 0u);
  tel::record_span("span", 0, 10);
  tel::record_instant("instant");
  EXPECT_EQ(tel::event_count(), 0u);
}

TEST_F(TelemetryTest, CounterGaugeHistogramAccumulate) {
  tel::set_enabled(true);
  auto& c = tel::counter("t.c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&c, &tel::counter("t.c")) << "stable addresses";

  tel::gauge("t.g").set(2.25);
  tel::gauge("t.g").set(-1.5);
  EXPECT_EQ(tel::gauge("t.g").value(), -1.5);

  auto& h = tel::histogram("t.h");
  EXPECT_EQ(h.min(), 0u) << "empty histogram min reads 0";
  h.record(30);
  h.record(10);
  h.record(20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);

  const auto snap = tel::snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "t.c");
  EXPECT_EQ(snap.counters[0].second, 42u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].sum_ns, 60u);

  tel::reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(tel::snapshot().counters.size(), 1u)
      << "reset zeroes values but keeps registrations";
}

TEST_F(TelemetryTest, JsonEscapeHandlesQuotesBackslashesControls) {
  EXPECT_EQ(tel::json_escape("plain"), "plain");
  EXPECT_EQ(tel::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(tel::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(tel::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(tel::json_escape(std::string(1, '\x01')), "\\u0001");
}

// --- Recorder + trace sink -----------------------------------------------

TEST_F(TelemetryTest, SpanScopeRecordsOnlyWhenEnabled) {
  { tel::SpanScope off("off"); }
  EXPECT_EQ(tel::event_count(), 0u);
  tel::set_enabled(true);
  { tel::SpanScope on("on"); }
  EXPECT_EQ(tel::event_count(), 1u);
}

TEST_F(TelemetryTest, WriteTraceEmitsValidJsonWithOnePidPerFragment) {
  tel::set_enabled(true);
  tel::record_span("alpha", 100, 50, "\"step\": 1");
  tel::record_instant("beta", "\"why\": \"quote \\\" inside\"");
  const std::string frag0 = tel::chrome_events(0);
  const std::string frag1 = tel::chrome_events(1);

  const auto dir = scratch_dir("trace_unit");
  const auto path = (dir / "trace.json").string();
  ASSERT_TRUE(tel::write_trace(path, {frag0, frag1, std::string()}));

  const std::string text = slurp(path);
  JsonValidator v(text);
  EXPECT_TRUE(v.valid()) << text;
  EXPECT_NE(text.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(text.find("\"alpha\""), std::string::npos);
  fs::remove_all(dir);
}

// --- Provably inert: bitwise state + dt on/off ---------------------------

struct OnOffResult {
  cases::RunResult off;
  cases::RunResult on;
};

template <class Policy>
OnOffResult run_on_off(const std::string& tag) {
  const auto* spec = cases::find("sod-x");
  EXPECT_NE(spec, nullptr);
  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 8;
  opts.phase_timing = true;

  reset_telemetry();
  OnOffResult r;
  r.off = cases::run_case<Policy>(*spec, opts);
  EXPECT_FALSE(tel::enabled());

  const auto dir = scratch_dir("onoff_" + tag);
  opts.telemetry = (dir / "out.jsonl").string();
  opts.trace = (dir / "trace.json").string();
  r.on = cases::run_case<Policy>(*spec, opts);
  EXPECT_TRUE(tel::enabled()) << "a requested sink arms the gate";
  EXPECT_TRUE(fs::exists(opts.telemetry));
  EXPECT_TRUE(fs::exists(opts.trace));
  fs::remove_all(dir);
  reset_telemetry();
  return r;
}

TEST_F(TelemetryTest, Fp64RunIsBitwiseIdenticalWithTelemetryOnOrOff) {
  const auto r = run_on_off<common::Fp64>("fp64");
  EXPECT_EQ(r.on.state_fnv, r.off.state_fnv);
  EXPECT_EQ(r.on.dt_fnv, r.off.dt_fnv);
  EXPECT_EQ(r.on.steps, r.off.steps);
}

TEST_F(TelemetryTest, Fp16x32RunIsBitwiseIdenticalWithTelemetryOnOrOff) {
  const auto r = run_on_off<common::Fp16x32>("fp16x32");
  EXPECT_EQ(r.on.state_fnv, r.off.state_fnv);
  EXPECT_EQ(r.on.dt_fnv, r.off.dt_fnv);
}

TEST_F(TelemetryTest, JsonlStreamCarriesStepSchemaAndPhases) {
  const auto* spec = cases::find("sod-x");
  ASSERT_NE(spec, nullptr);
  const auto dir = scratch_dir("jsonl");
  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 6;
  opts.phase_timing = true;
  opts.telemetry = (dir / "out.jsonl").string();
  const auto r = cases::run_case<common::Fp64>(*spec, opts);
  EXPECT_TRUE(r.has_phases);
  double total_phase = 0.0;
  for (const double v : r.phase_ns) total_phase += v;
  EXPECT_GT(total_phase, 0.0);

  std::ifstream f(opts.telemetry);
  std::string line;
  int steps = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    JsonValidator v(line);
    EXPECT_TRUE(v.valid()) << line;
    if (line.find("\"step\"") == std::string::npos) continue;
    ++steps;
    EXPECT_NE(line.find("\"dt\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"wall_ns\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"phase_ns\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"sigma_sweeps\""), std::string::npos) << line;
  }
  EXPECT_EQ(steps, 6);
  fs::remove_all(dir);
}

TEST_F(TelemetryTest, SigmaSweepMeterCountsConfiguredSweepsPerRhs) {
  const auto* spec = cases::find("sod-x");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 4;
  cases::CaseRun<common::Fp64> run(*spec, opts);
  run.run();
  // SSP-RK3: 3 RHS evaluations per step, each performing the configured
  // sweep count (sod-x keeps the Sigma solve active).
  const int cfg_sweeps = spec->config().sigma_sweeps;
  EXPECT_EQ(run.sim().sigma_sweeps_done(),
            static_cast<std::uint64_t>(4 * 3 * cfg_sweeps));
}

// --- Real 2-rank process runs (POSIX; needs the built binaries) ----------

#if defined(__unix__) || defined(__APPLE__)
#ifdef IGR_BUILD_DIR

std::string bin(const char* name) {
  return std::string(IGR_BUILD_DIR) + "/" + name;
}

int run_cmd(const std::string& cmd, const fs::path& log) {
  const std::string full = cmd + " >> '" + log.string() + "' 2>&1";
  const int status = std::system(full.c_str());
  return status < 0 ? -1 : WEXITSTATUS(status);
}

TEST_F(TelemetryTest, TwoRankTcpRunMergesOneTracePerRankAndStreamsJsonl) {
  const auto dir = scratch_dir("tcp");
  const auto log = dir / "log.txt";
  const auto jsonl = dir / "out.jsonl";
  const auto trace = dir / "trace.json";

  const std::string launch =
      bin("igr_launch") + " --world 2 --dir " + (dir / "rdv").string() +
      " -- " + bin("run_case") +
      " --case sod-x --ranks 2,1,1 --n 16 --steps 8 --phase-timing" +
      " --telemetry " + jsonl.string() + " --trace " + trace.string();
  ASSERT_EQ(run_cmd(launch, log), 0) << slurp(log);

  // The merged trace is one valid JSON array with one pid row per rank plus
  // the launcher's supervisor row.
  const std::string ttext = slurp(trace);
  JsonValidator v(ttext);
  EXPECT_TRUE(v.valid()) << ttext;
  EXPECT_NE(ttext.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(ttext.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(ttext.find("\"igr_launch\""), std::string::npos);
  EXPECT_NE(ttext.find("\"name\": \"step\""), std::string::npos);

  // The JSONL stream (written by the IO root) carries the halo-wait meter.
  const std::string jtext = slurp(jsonl);
  EXPECT_NE(jtext.find("\"halo_wait_ns\""), std::string::npos) << jtext;
  EXPECT_NE(jtext.find("\"wire_bytes\""), std::string::npos) << jtext;
  std::istringstream lines(jtext);
  std::string line;
  int steps = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValidator lv(line);
    EXPECT_TRUE(lv.valid()) << line;
    if (line.find("\"step\"") != std::string::npos) ++steps;
  }
  EXPECT_EQ(steps, 8);
  fs::remove_all(dir);
}

#endif  // IGR_BUILD_DIR
#endif  // unix

}  // namespace
