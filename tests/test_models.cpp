/// Tests for the performance-model substrates: memory footprint (§5.4),
/// unified-memory traffic (§5.5, Table 3), power/energy (Table 4), platform
/// data (Table 2), and the scaling model (Figs. 6-8).

#include <gtest/gtest.h>

#include <cmath>

#include "core/memory_footprint.hpp"
#include "mem/memory_model.hpp"
#include "perf/platform.hpp"
#include "perf/scaling_model.hpp"
#include "power/power_model.hpp"
#include "sim/network_model.hpp"

namespace {

using namespace igr::perf;
using igr::core::device_resident_fraction;
using igr::core::igr_footprint;
using igr::core::weno_footprint;
using igr::mem::MemoryModel;
using igr::mem::Placement;
using igr::power::PowerModel;
using igr::sim::NetworkModel;

TEST(Footprint, IgrStoresSeventeenValuesPerCell) {
  EXPECT_DOUBLE_EQ(igr_footprint(8).reals_per_cell(), 17.0);
  EXPECT_DOUBLE_EQ(igr_footprint(8, /*jacobi=*/true).reals_per_cell(), 18.0);
}

TEST(Footprint, TwentyFiveFoldReduction) {
  // §5.4: FP64 array-based WENO vs FP16-storage fused IGR ≈ 25x.
  const auto base = weno_footprint(8);
  const auto igr16 = igr_footprint(2);
  const double ratio = igr::core::footprint_ratio(base, igr16);
  EXPECT_GT(ratio, 20.0);
  EXPECT_LT(ratio, 30.0);
}

TEST(Footprint, SamePrecisionReductionComesFromFusion) {
  const auto base = weno_footprint(8);
  const auto igr64 = igr_footprint(8);
  const double ratio = igr::core::footprint_ratio(base, igr64);
  EXPECT_NEAR(ratio, base.reals_per_cell() / 17.0, 1e-12);
  EXPECT_GT(ratio, 5.0);
}

TEST(Footprint, DeviceResidentFractions) {
  // §5.5.3: host RK register -> 12/17 on device; + IGR temps -> 10/17.
  EXPECT_DOUBLE_EQ(device_resident_fraction(false, false), 1.0);
  EXPECT_NEAR(device_resident_fraction(true, false), 12.0 / 17.0, 1e-12);
  EXPECT_NEAR(device_resident_fraction(true, true), 10.0 / 17.0, 1e-12);
}

TEST(Platforms, Table2Data) {
  const auto ec = el_capitan();
  const auto fr = frontier();
  const auto al = alps();
  EXPECT_EQ(ec.full_system_nodes, 11136);
  EXPECT_EQ(al.full_system_nodes, 2688);
  EXPECT_TRUE(ec.unified_pool);
  EXPECT_FALSE(fr.unified_pool);
  EXPECT_GT(al.c2c_bandwidth_Bps, fr.c2c_bandwidth_Bps);  // 900 vs 72 GB/s
}

TEST(Platforms, Table3GrindTimes) {
  const auto al = alps();
  EXPECT_DOUBLE_EQ(al.grind(Scheme::kBaselineWeno, Precision::kFp64,
                            MemMode::kInCore),
                   16.89);
  EXPECT_DOUBLE_EQ(al.grind(Scheme::kIgr, Precision::kFp64, MemMode::kInCore),
                   3.83);
  EXPECT_DOUBLE_EQ(
      al.grind(Scheme::kIgr, Precision::kFp16x32, MemMode::kUnified), 3.07);
  const auto fr = frontier();
  EXPECT_DOUBLE_EQ(
      fr.grind(Scheme::kIgr, Precision::kFp64, MemMode::kUnified), 19.81);
}

TEST(Platforms, IgrSpeedupFactorIsAboutFour) {
  // §7.1: "time to solution is reduced by a factor of approximately 4 when
  // comparing WENO to IGR in FP64" — holds on every platform's in-core (or
  // unified for MI300A) numbers.
  for (const auto& p : all_platforms()) {
    const double base = p.grind(Scheme::kBaselineWeno, Precision::kFp64,
                                MemMode::kInCore);
    double igr = p.grind(Scheme::kIgr, Precision::kFp64, MemMode::kInCore);
    if (igr == kNotApplicable)
      igr = p.grind(Scheme::kIgr, Precision::kFp64, MemMode::kUnified);
    const double speedup = base / igr;
    EXPECT_GT(speedup, 3.5) << p.name;
    EXPECT_LT(speedup, 6.0) << p.name;
  }
}

TEST(MemoryModel, UnifiedOverheadSmallOnAlpsLargeOnFrontier) {
  // Table 3 mechanics: <5% overhead on GH200, ~40-50% on MI250X.
  const auto al = alps();
  const auto fr = frontier();
  Placement pl;  // host RK register only
  const double oh_alps = MemoryModel::unified_overhead_ns(al, 8, pl);
  const double oh_frontier = MemoryModel::unified_overhead_ns(fr, 8, pl);
  const double igr_alps =
      al.grind(Scheme::kIgr, Precision::kFp64, MemMode::kInCore);
  const double igr_frontier =
      fr.grind(Scheme::kIgr, Precision::kFp64, MemMode::kInCore);
  EXPECT_LT(oh_alps / igr_alps, 0.12);       // small relative hit
  EXPECT_GT(oh_frontier / igr_frontier, 0.3);  // large relative hit
  // Predicted unified grind within 20% of the paper's measured values.
  EXPECT_NEAR(igr_alps + oh_alps,
              al.grind(Scheme::kIgr, Precision::kFp64, MemMode::kUnified),
              0.2 * 4.18);
  EXPECT_NEAR(igr_frontier + oh_frontier,
              fr.grind(Scheme::kIgr, Precision::kFp64, MemMode::kUnified),
              0.2 * 19.81);
}

TEST(MemoryModel, UnifiedPoolHasNoOverhead) {
  Placement pl;
  EXPECT_DOUBLE_EQ(MemoryModel::unified_overhead_ns(el_capitan(), 8, pl), 0.0);
}

TEST(MemoryModel, CapacityMatchesPaperPerDeviceGridSizes) {
  // §7.2: 1386^3 per GCD (Frontier), 1611^3 per GH200 (Alps), 1380^3 per
  // MI300A — all with FP16 storage and unified memory.  Our capacity model
  // must admit those sizes.
  Placement pl;
  pl.host_igr_temporaries = true;  // 10/17 split used for the largest runs
  const auto igr16 = igr_footprint(2);
  const double cap_frontier =
      MemoryModel::capacity_cells(frontier(), igr16, MemMode::kUnified, pl);
  const double cap_alps =
      MemoryModel::capacity_cells(alps(), igr16, MemMode::kUnified, pl);
  EXPECT_GT(cap_frontier, std::pow(1386.0, 3));
  EXPECT_GT(cap_alps, std::pow(1611.0, 3));
  // And not absurdly larger (within ~50%).
  EXPECT_LT(cap_frontier, 1.6 * std::pow(1386.0, 3));
  EXPECT_LT(cap_alps, 1.6 * std::pow(1611.0, 3));
}

TEST(MemoryModel, UnifiedModeRaisesCapacityOffPool) {
  Placement pl;
  const auto igr16 = igr_footprint(2);
  const double in_core =
      MemoryModel::capacity_cells(frontier(), igr16, MemMode::kInCore, pl);
  const double unified =
      MemoryModel::capacity_cells(frontier(), igr16, MemMode::kUnified, pl);
  EXPECT_GT(unified, in_core);
}

TEST(MemoryModel, TwoHundredTrillionCellCapacity) {
  // §7.2 headline: >200T cells / 1 quadrillion DoF on the full Frontier.
  const auto fr = frontier();
  const double total = fr.weak_cells_per_device *
                       static_cast<double>(fr.full_system_devices());
  EXPECT_GT(total, 200.0e12);
  EXPECT_GT(total * 5.0, 1.0e15);  // 5 DoF per cell
}

TEST(PowerModel, RoundTripsPaperEnergyTable) {
  for (const auto& p : all_platforms()) {
    for (auto s : {Scheme::kBaselineWeno, Scheme::kIgr}) {
      double grind = p.grind(s, Precision::kFp64, MemMode::kInCore);
      if (grind == kNotApplicable)
        grind = p.grind(s, Precision::kFp64, MemMode::kUnified);
      EXPECT_NEAR(PowerModel::energy_uJ_per_cell(p, s, grind),
                  PowerModel::paper_energy_uJ(p, s), 1e-9)
          << p.name;
    }
  }
}

TEST(PowerModel, FrontierImprovementIsFivePointFour) {
  // "The largest improvement is realized on Frontier with a 5.38x
  // improvement in energy consumed."
  EXPECT_NEAR(PowerModel::improvement_factor(frontier()), 5.38, 0.01);
  EXPECT_GT(PowerModel::improvement_factor(el_capitan()), 4.0);
  EXPECT_GT(PowerModel::improvement_factor(alps()), 3.5);
}

TEST(PowerModel, ImpliedPowersArePhysicallyPlausible) {
  for (const auto& p : all_platforms()) {
    for (auto s : {Scheme::kBaselineWeno, Scheme::kIgr}) {
      const double w = PowerModel::device_power_W(p, s);
      EXPECT_GT(w, 50.0) << p.name;
      EXPECT_LT(w, 1000.0) << p.name;
    }
  }
}

TEST(Network, MessageTimeHasLatencyAndBandwidthTerms) {
  NetworkModel n{25.0e9, 2.0e-6, 1.0};
  EXPECT_NEAR(n.message_time(0), 2.0e-6, 1e-12);
  EXPECT_NEAR(n.message_time(25'000'000), 2.0e-6 + 1e-3, 1e-9);
}

TEST(Network, AllreduceGrowsLogarithmically) {
  NetworkModel n{25.0e9, 2.0e-6, 1.0};
  EXPECT_DOUBLE_EQ(n.allreduce_time(1), 0.0);
  EXPECT_GT(n.allreduce_time(1024), n.allreduce_time(16));
  EXPECT_NEAR(n.allreduce_time(1024) / n.allreduce_time(16), 10.0 / 4.0,
              1e-9);
}

TEST(ScalingModel, WeakScalingIsNearIdealAtPaperSizes) {
  // Fig. 6: with the paper's per-device problem sizes, weak-scaling
  // efficiency stays ≥95% out to the full system on all three machines.
  for (const auto& p : all_platforms()) {
    ScalingModel m(p, Scheme::kIgr, Precision::kFp16x32, MemMode::kUnified);
    const auto pts = m.weak_scaling(
        p.weak_cells_per_device,
        {64, 512, 4096, p.full_system_devices()});
    for (const auto& pt : pts)
      EXPECT_GT(pt.efficiency, 0.95) << p.name << " D=" << pt.devices;
  }
}

TEST(ScalingModel, StrongScalingEfficiencyDropsWithDeviceCount) {
  const auto p = frontier();
  ScalingModel m(p, Scheme::kIgr, Precision::kFp16x32, MemMode::kUnified);
  const double total = 8 * 8 * 10.5e9 / 8;  // 8 nodes x 10.5B cells/node
  const auto pts = m.strong_scaling(
      total, {64, 256, 2048, p.full_system_devices()});
  EXPECT_NEAR(pts[0].efficiency, 1.0, 1e-12);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(pts[i].efficiency, pts[i - 1].efficiency + 1e-12);
}

TEST(ScalingModel, FullSystemStrongEfficienciesMatchPaper) {
  // Fig. 7: 44% (El Capitan), 44% (Frontier), 80% (Alps) at full system
  // from an 8-node base.  The model is calibrated to land near these.
  struct Case {
    Platform p;
    double cells_per_node;
    double expect_eff;
  };
  const Case cases[] = {
      {el_capitan(), 4.0 * 1380.0 * 1380.0 * 1380.0, 0.44},
      {frontier(), 10.5e9, 0.44},
      {alps(), 4.0 * 1611.0 * 1611.0 * 1611.0, 0.80},
  };
  for (const auto& c : cases) {
    ScalingModel m(c.p, Scheme::kIgr, Precision::kFp16x32, MemMode::kUnified);
    const int base_devices = 8 * c.p.devices_per_node;
    const double total = 8.0 * c.cells_per_node;
    const auto pts =
        m.strong_scaling(total, {base_devices, c.p.full_system_devices()});
    EXPECT_NEAR(pts[1].efficiency, c.expect_eff, 0.12) << c.p.name;
  }
}

TEST(ScalingModel, BaselineStrongScalesMuchWorse) {
  // Fig. 8: baseline reaches ~6% efficiency at full Frontier (FP32) vs ~38%
  // for IGR, because its 8-node problem is 25x smaller (421M vs 10.5B
  // cells/node capacity).
  const auto p = frontier();
  ScalingModel igr(p, Scheme::kIgr, Precision::kFp32, MemMode::kUnified);
  ScalingModel base(p, Scheme::kBaselineWeno, Precision::kFp32,
                    MemMode::kInCore);
  base.set_grind_ns(35.0);  // FP64/2: the paper's baseline FP32 runs
  const int d0 = 64, dfull = p.full_system_devices();
  const auto igr_pts = igr.strong_scaling(8 * 10.5e9, {d0, dfull});
  const auto base_pts = base.strong_scaling(8 * 0.421e9, {d0, dfull});
  EXPECT_LT(base_pts[1].efficiency, 0.10);
  EXPECT_GT(igr_pts[1].efficiency, 0.25);
  EXPECT_GT(igr_pts[1].efficiency / base_pts[1].efficiency, 4.0);
}

TEST(ScalingModel, ThrowsOnUseForUnstableConfigurations) {
  // The paper marks baseline FP16/32 numerically unstable -> no grind time.
  ScalingModel m(frontier(), Scheme::kBaselineWeno, Precision::kFp16x32,
                 MemMode::kInCore);
  EXPECT_THROW(static_cast<void>(m.time_per_step(1e6, 8)),
               std::invalid_argument);
  m.set_grind_ns(50.0);  // caller-supplied estimate unblocks it
  EXPECT_GT(m.time_per_step(1e6, 8), 0.0);
}

TEST(ScalingModel, FullSystemSpeedupAboutFiveHundred) {
  // §7.2: "one can execute an 8 node computation on the full system,
  // decreasing time to solution by a factor of about 500" (Alps, 336x
  // devices at 80% -> ~270; El Capitan 1344x at 44% -> ~590).
  const auto p = el_capitan();
  ScalingModel m(p, Scheme::kIgr, Precision::kFp16x32, MemMode::kUnified);
  const double total = 8.0 * 4.0 * std::pow(1380.0, 3);
  const auto pts = m.strong_scaling(total, {32, p.full_system_devices()});
  EXPECT_GT(pts[1].speedup, 300.0);
  EXPECT_LT(pts[1].speedup, 900.0);
}

}  // namespace
