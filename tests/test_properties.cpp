/// Property-based and convergence tests spanning modules: precision
/// policies, flux-function invariants under parameter sweeps, and formal
/// order of accuracy of the full 1-D IGR solver on smooth flow.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/precision.hpp"
#include "core/igr_solver1d.hpp"
#include "eos/ideal_gas.hpp"
#include "fv/riemann.hpp"

namespace {

using igr::common::Prim;
using igr::eos::IdealGas;

// ---- precision policies ----

TEST(Precision, PolicyTraits) {
  EXPECT_EQ(igr::common::Fp64::name, "FP64");
  EXPECT_EQ(igr::common::Fp32::name, "FP32");
  EXPECT_EQ(igr::common::Fp16x32::name, "FP16/32");
  static_assert(sizeof(igr::common::Fp64::storage_t) == 8);
  static_assert(sizeof(igr::common::Fp32::storage_t) == 4);
  static_assert(sizeof(igr::common::Fp16x32::storage_t) == 2);
  static_assert(
      std::is_same_v<igr::common::Fp16x32::compute_t, float>);
}

TEST(Precision, LoadStoreRoundTripWithinEps) {
  using igr::common::Fp16x32;
  const float v = 0.333f;
  const auto stored = igr::common::store<Fp16x32>(v);
  const float loaded = igr::common::load<Fp16x32>(stored);
  EXPECT_NEAR(loaded, v, std::abs(v) * igr::common::kHalfEps);
}

TEST(Precision, StorageRoundingIsIdempotent) {
  // store(load(store(x))) == store(x): rounding is a projection.
  using igr::common::half;
  for (float v : {0.1f, 1.7f, 123.456f, 1e-5f, 6e4f}) {
    const half once{v};
    const half twice{static_cast<float>(once)};
    EXPECT_EQ(once.bits(), twice.bits()) << v;
  }
}

// ---- flux-function properties over parameter sweeps ----

class FluxSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(FluxSweep, RusanovConsistency) {
  const auto [gamma, dir] = GetParam();
  IdealGas eos(gamma);
  const Prim<double> w{1.1, 0.4, -0.3, 0.2, 0.9};
  const double E = eos.total_energy(w);
  const auto f = igr::fv::rusanov_flux(w, E, 0.0, w, E, 0.0, gamma, dir);
  const auto ref = igr::fv::euler_flux(w, E, 0.0, dir);
  for (int c = 0; c < 5; ++c) EXPECT_NEAR(f[c], ref[c], 1e-12);
}

TEST_P(FluxSweep, HllcConsistency) {
  const auto [gamma, dir] = GetParam();
  IdealGas eos(gamma);
  const Prim<double> w{0.7, -0.2, 0.5, 0.1, 1.3};
  const double E = eos.total_energy(w);
  const auto f = igr::fv::hllc_flux(w, E, w, E, gamma, dir);
  const auto ref = igr::fv::euler_flux(w, E, 0.0, dir);
  for (int c = 0; c < 5; ++c) EXPECT_NEAR(f[c], ref[c], 1e-11);
}

TEST_P(FluxSweep, RusanovDissipationActsAgainstTheJump) {
  // F(ql,qr) - (F(ql)+F(qr))/2 = -smax/2 (qr-ql): each component of the
  // dissipation has sign opposite to the state jump.
  const auto [gamma, dir] = GetParam();
  IdealGas eos(gamma);
  const Prim<double> wl{1.0, 0.2, 0.0, 0.0, 1.0};
  const Prim<double> wr{0.5, -0.1, 0.3, 0.0, 0.6};
  const double El = eos.total_energy(wl), Er = eos.total_energy(wr);
  const auto f = igr::fv::rusanov_flux(wl, El, 0.0, wr, Er, 0.0, gamma, dir);
  const auto fl = igr::fv::euler_flux(wl, El, 0.0, dir);
  const auto fr = igr::fv::euler_flux(wr, Er, 0.0, dir);
  const auto ql = eos.to_cons(wl);
  const auto qr = eos.to_cons(wr);
  for (int c = 0; c < 5; ++c) {
    const double diss = f[c] - 0.5 * (fl[c] + fr[c]);
    const double jump = qr[c] - ql[c];
    if (std::abs(jump) > 1e-12) {
      EXPECT_LE(diss * jump, 1e-12) << c;
    }
  }
}

TEST_P(FluxSweep, SigmaOnlyEntersMomentumAndEnergy) {
  const auto [gamma, dir] = GetParam();
  IdealGas eos(gamma);
  const Prim<double> w{1.0, 0.3, -0.2, 0.5, 1.0};
  const double E = eos.total_energy(w);
  const auto f0 = igr::fv::rusanov_flux(w, E, 0.0, w, E, 0.0, gamma, dir);
  const auto f1 = igr::fv::rusanov_flux(w, E, 0.25, w, E, 0.25, gamma, dir);
  EXPECT_NEAR(f1.rho, f0.rho, 1e-12);  // mass flux unchanged by Sigma
  EXPECT_GT(std::abs(f1[1 + dir] - f0[1 + dir]), 0.2);  // normal momentum
}

INSTANTIATE_TEST_SUITE_P(
    GammaDir, FluxSweep,
    ::testing::Combine(::testing::Values(1.2, 1.4, 5.0 / 3.0),
                       ::testing::Values(0, 1, 2)));

// ---- formal order of accuracy of the assembled solver ----

double smooth_advection_error(int n, igr::fv::ReconScheme recon) {
  igr::core::IgrSolver1D::Options opt;
  opt.alpha_factor = 5.0;
  opt.bc = igr::core::Bc1D::kPeriodic;
  opt.recon = recon;
  igr::core::IgrSolver1D s(n, 0.0, 1.0, opt);
  s.init([](double x) {
    igr::core::Prim1 w;
    w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x);
    w.u = 1.0;
    w.p = 100.0;  // stiff background: density behaves as an advected scalar
    return w;
  });
  s.advance_to(0.25);
  const auto rho = s.rho();
  double l1 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = s.x(i) - 0.25;
    l1 += std::abs(rho[static_cast<std::size_t>(i)] -
                   (1.0 + 0.2 * std::sin(2 * M_PI * x))) /
          n;
  }
  return l1;
}

TEST(Convergence, FifthOrderSchemeConvergesFastOnSmoothFlow) {
  const double e64 = smooth_advection_error(64, igr::fv::ReconScheme::kFifth);
  const double e128 =
      smooth_advection_error(128, igr::fv::ReconScheme::kFifth);
  // CFL-coupled refinement mixes space (5th) and time (3rd) orders; demand
  // at least 3rd-order reduction.
  EXPECT_GT(e64 / e128, 8.0);
  EXPECT_LT(e128, 1e-6);
}

TEST(Convergence, ThirdOrderSchemeConvergesAtItsOrder) {
  const double e64 = smooth_advection_error(64, igr::fv::ReconScheme::kThird);
  const double e128 =
      smooth_advection_error(128, igr::fv::ReconScheme::kThird);
  const double rate = std::log2(e64 / e128);
  EXPECT_GT(rate, 2.5);
  EXPECT_LT(rate, 4.0);
}

TEST(Convergence, FirstOrderSchemeIsFirstOrder) {
  const double e64 = smooth_advection_error(64, igr::fv::ReconScheme::kFirst);
  const double e128 =
      smooth_advection_error(128, igr::fv::ReconScheme::kFirst);
  // Pre-asymptotic upwinding on a marginally resolved wave sits slightly
  // under the formal rate at these resolutions (measured ~0.69).
  const double rate = std::log2(e64 / e128);
  EXPECT_GT(rate, 0.6);
  EXPECT_LT(rate, 1.6);
}

TEST(Convergence, RegularizationDoesNotDegradeSmoothAccuracy) {
  // On smooth flow, IGR (alpha > 0) matches the unregularized scheme to
  // high accuracy — "preserves smooth grid-scale oscillations" (§4.1).
  igr::core::IgrSolver1D::Options with, without;
  with.alpha_factor = 5.0;
  without.alpha = 0.0;
  with.bc = without.bc = igr::core::Bc1D::kPeriodic;
  auto run = [&](const igr::core::IgrSolver1D::Options& opt) {
    igr::core::IgrSolver1D s(128, 0.0, 1.0, opt);
    s.init([](double x) {
      igr::core::Prim1 w;
      w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x);
      w.u = 1.0;
      w.p = 100.0;
      return w;
    });
    s.advance_to(0.25);
    return s.rho();
  };
  const auto a = run(with);
  const auto b = run(without);
  for (int i = 0; i < 128; ++i)
    EXPECT_NEAR(a[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], 2e-5);
}

}  // namespace
