/// Unit tests for the approximate Riemann solvers (Rusanov for IGR, HLLC for
/// the baseline) and the exact solver used as ground truth.

#include <gtest/gtest.h>

#include <cmath>

#include "eos/ideal_gas.hpp"
#include "fv/exact_riemann.hpp"
#include "fv/riemann.hpp"

namespace {

using igr::common::Cons;
using igr::common::Prim;
using igr::eos::IdealGas;
using namespace igr::fv;

constexpr double kGamma = 1.4;

Prim<double> make_prim(double rho, double u, double v, double w, double p) {
  return {rho, u, v, w, p};
}

TEST(EulerFlux, MassFluxIsNormalMomentum) {
  IdealGas eos(kGamma);
  const auto w = make_prim(2.0, 3.0, -1.0, 0.5, 1.5);
  const double E = eos.total_energy(w);
  const auto f = euler_flux(w, E, 0.0, 0);
  EXPECT_DOUBLE_EQ(f.rho, 2.0 * 3.0);
}

TEST(EulerFlux, PressureEntersNormalMomentumOnly) {
  IdealGas eos(kGamma);
  const auto w = make_prim(1.0, 0.0, 0.0, 0.0, 2.0);
  const double E = eos.total_energy(w);
  for (int dir = 0; dir < 3; ++dir) {
    const auto f = euler_flux(w, E, 0.0, dir);
    EXPECT_DOUBLE_EQ(f[1 + dir], 2.0);
    EXPECT_DOUBLE_EQ(f[1 + ((dir + 1) % 3)], 0.0);
    EXPECT_DOUBLE_EQ(f.rho, 0.0);
    EXPECT_DOUBLE_EQ(f.e, 0.0);
  }
}

TEST(EulerFlux, SigmaAugmentsPressure) {
  // The modified conservation law (eqs. 6-8): p -> p + Sigma in momentum
  // and energy fluxes.
  IdealGas eos(kGamma);
  const auto w = make_prim(1.0, 2.0, 0.0, 0.0, 1.0);
  const double E = eos.total_energy(w);
  const auto f0 = euler_flux(w, E, 0.0, 0);
  const auto f1 = euler_flux(w, E, 0.5, 0);
  EXPECT_NEAR(f1.mx - f0.mx, 0.5, 1e-14);
  EXPECT_NEAR(f1.e - f0.e, 0.5 * 2.0, 1e-14);  // Sigma * u_n
  EXPECT_DOUBLE_EQ(f1.rho, f0.rho);
}

TEST(Rusanov, ConsistencyWithEqualStates) {
  // F(q, q) = F(q): the numerical flux reduces to the physical flux.
  IdealGas eos(kGamma);
  const auto w = make_prim(1.3, 0.7, -0.2, 0.1, 2.0);
  const double E = eos.total_energy(w);
  for (int dir = 0; dir < 3; ++dir) {
    const auto f = rusanov_flux(w, E, 0.0, w, E, 0.0, kGamma, dir);
    const auto ref = euler_flux(w, E, 0.0, dir);
    for (int c = 0; c < 5; ++c) EXPECT_NEAR(f[c], ref[c], 1e-13);
  }
}

TEST(Hllc, ConsistencyWithEqualStates) {
  IdealGas eos(kGamma);
  const auto w = make_prim(1.3, 0.7, -0.2, 0.1, 2.0);
  const double E = eos.total_energy(w);
  for (int dir = 0; dir < 3; ++dir) {
    const auto f = hllc_flux(w, E, w, E, kGamma, dir);
    const auto ref = euler_flux(w, E, 0.0, dir);
    for (int c = 0; c < 5; ++c) EXPECT_NEAR(f[c], ref[c], 1e-12);
  }
}

TEST(Hllc, ResolvesStationaryContactExactly) {
  // A contact discontinuity at rest: HLLC must produce zero mass flux
  // (the property Riemann solvers buy over Rusanov).
  IdealGas eos(kGamma);
  const auto wl = make_prim(1.0, 0.0, 0.3, -0.5, 1.0);
  const auto wr = make_prim(0.25, 0.0, 0.7, 0.2, 1.0);
  const auto f = hllc_flux(wl, eos.total_energy(wl), wr, eos.total_energy(wr),
                           kGamma, 0);
  EXPECT_NEAR(f.rho, 0.0, 1e-13);
  EXPECT_NEAR(f.mx, 1.0, 1e-13);  // pressure only
}

TEST(Rusanov, SmearsStationaryContact) {
  // Rusanov adds dissipation proportional to the jump — the cost IGR accepts
  // because the regularized solution is smooth at the grid scale.
  IdealGas eos(kGamma);
  const auto wl = make_prim(1.0, 0.0, 0.0, 0.0, 1.0);
  const auto wr = make_prim(0.25, 0.0, 0.0, 0.0, 1.0);
  const auto f = rusanov_flux(wl, eos.total_energy(wl), 0.0, wr,
                              eos.total_energy(wr), 0.0, kGamma, 0);
  EXPECT_GT(std::abs(f.rho), 0.1);
}

TEST(Rusanov, UpwindsSupersonicFlow) {
  // Fully supersonic left-to-right flow: flux equals the left physical flux.
  IdealGas eos(kGamma);
  const auto wl = make_prim(1.0, 5.0, 0.0, 0.0, 1.0);  // M ~ 4.2
  const auto wr = make_prim(0.9, 5.0, 0.0, 0.0, 0.9);
  const auto fl = euler_flux(wl, eos.total_energy(wl), 0.0, 0);
  const auto f = rusanov_flux(wl, eos.total_energy(wl), 0.0, wr,
                              eos.total_energy(wr), 0.0, kGamma, 0);
  // Rusanov still carries |u|-c dissipation; HLLC is exact here.
  const auto fh = hllc_flux(wl, eos.total_energy(wl), wr,
                            eos.total_energy(wr), kGamma, 0);
  for (int c = 0; c < 5; ++c) EXPECT_NEAR(fh[c], fl[c], 1e-12);
  EXPECT_NEAR(f.rho, fl.rho, 1.0);  // bounded dissipation
}

TEST(Hllc, SodFluxMatchesExactStarPressureSign) {
  // For Sod data the interface flux transports mass rightward.
  IdealGas eos(kGamma);
  const auto wl = make_prim(1.0, 0.0, 0.0, 0.0, 1.0);
  const auto wr = make_prim(0.125, 0.0, 0.0, 0.0, 0.1);
  const auto f = hllc_flux(wl, eos.total_energy(wl), wr, eos.total_energy(wr),
                           kGamma, 0);
  EXPECT_GT(f.rho, 0.0);
}

TEST(Rusanov, FluxIsConservativeAntisymmetric) {
  // Swapping states and flipping the axis direction must negate the flux of
  // the mirrored solution: F_dir(ql,qr) with x -> -x equals mirrored
  // -F(qr',ql').  Verify via the 1-D mirror u -> -u.
  IdealGas eos(kGamma);
  const auto wl = make_prim(1.0, 0.4, 0.0, 0.0, 1.0);
  const auto wr = make_prim(0.5, -0.2, 0.0, 0.0, 0.7);
  auto mirror = [](Prim<double> w) {
    w.u = -w.u;
    return w;
  };
  const auto f = rusanov_flux(wl, eos.total_energy(wl), 0.1, wr,
                              eos.total_energy(wr), 0.2, kGamma, 0);
  const auto g = rusanov_flux(mirror(wr), eos.total_energy(wr), 0.2,
                              mirror(wl), eos.total_energy(wl), 0.1, kGamma, 0);
  EXPECT_NEAR(g.rho, -f.rho, 1e-13);
  EXPECT_NEAR(g.mx, f.mx, 1e-13);    // momentum flux is even under mirror
  EXPECT_NEAR(g.e, -f.e, 1e-13);
}

TEST(ExactRiemann, SodStarState) {
  // Canonical Sod values (Toro, Table 4.2): p* = 0.30313, u* = 0.92745.
  ExactRiemann ex(sod_left(), sod_right(), kGamma);
  EXPECT_NEAR(ex.p_star(), 0.30313, 1e-4);
  EXPECT_NEAR(ex.u_star(), 0.92745, 1e-4);
}

TEST(ExactRiemann, Toro123Problem) {
  // Two rarefactions (Toro test 2): p* = 0.00189, u* = 0.
  ExactRiemann ex({1.0, -2.0, 0.4}, {1.0, 2.0, 0.4}, kGamma);
  EXPECT_NEAR(ex.p_star(), 0.00189, 2e-4);
  EXPECT_NEAR(ex.u_star(), 0.0, 1e-10);
}

TEST(ExactRiemann, StrongShockProblem) {
  // Toro test 3: left pressure 1000, p* = 460.894, u* = 19.5975.
  ExactRiemann ex({1.0, 0.0, 1000.0}, {1.0, 0.0, 0.01}, kGamma);
  EXPECT_NEAR(ex.p_star(), 460.894, 0.1);
  EXPECT_NEAR(ex.u_star(), 19.5975, 1e-3);
}

TEST(ExactRiemann, SamplesInitialStatesFarField) {
  ExactRiemann ex(sod_left(), sod_right(), kGamma);
  const auto l = ex.sample(-100.0);
  const auto r = ex.sample(100.0);
  EXPECT_DOUBLE_EQ(l.rho, 1.0);
  EXPECT_DOUBLE_EQ(r.rho, 0.125);
}

TEST(ExactRiemann, ProfileIsMonotoneAcrossContact) {
  ExactRiemann ex(sod_left(), sod_right(), kGamma);
  const auto prof = ex.sample_profile(400, 0.0, 1.0, 0.5, 0.2);
  // Pressure is continuous across the contact; density jumps.
  for (std::size_t i = 1; i < prof.size(); ++i) {
    EXPECT_LE(prof[i].rho, prof[i - 1].rho + 1e-12);  // monotone decreasing
  }
}

TEST(ExactRiemann, ThrowsOnVacuum) {
  EXPECT_THROW(ExactRiemann({1.0, -10.0, 0.1}, {1.0, 10.0, 0.1}, kGamma),
               std::invalid_argument);
  EXPECT_THROW(ExactRiemann({-1.0, 0.0, 1.0}, {1.0, 0.0, 1.0}, kGamma),
               std::invalid_argument);
}

}  // namespace
