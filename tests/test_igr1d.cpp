/// Tests for the 1-D IGR solver: shock-tube accuracy against the exact
/// Riemann solution, conservation, the pressureless flow-map behavior of
/// paper Fig. 3 (trajectories converge instead of crossing), and the alpha
/// sweep controlling shock width.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "core/igr_solver1d.hpp"
#include "fv/exact_riemann.hpp"

namespace {

using igr::core::Bc1D;
using igr::core::IgrSolver1D;
using igr::core::Prim1;

IgrSolver1D::Options sod_options() {
  IgrSolver1D::Options opt;
  opt.alpha_factor = 5.0;
  opt.bc = Bc1D::kOutflow;
  return opt;
}

auto sod_ic() {
  return [](double x) {
    Prim1 w;
    if (x < 0.5) {
      w.rho = 1.0;
      w.p = 1.0;
    } else {
      w.rho = 0.125;
      w.p = 0.1;
    }
    return w;
  };
}

TEST(Igr1D, SodDensityCloseToExact) {
  IgrSolver1D s(400, 0.0, 1.0, sod_options());
  s.init(sod_ic());
  s.advance_to(0.2);
  igr::fv::ExactRiemann ex(igr::fv::sod_left(), igr::fv::sod_right(), 1.4);
  const auto ref = ex.sample_profile(400, 0.0, 1.0, 0.5, 0.2);
  const auto rho = s.rho();
  double l1 = 0;
  for (int i = 0; i < 400; ++i)
    l1 += std::abs(rho[static_cast<std::size_t>(i)] -
                   ref[static_cast<std::size_t>(i)].rho) *
          s.dx();
  EXPECT_LT(l1, 0.02);
}

TEST(Igr1D, SodErrorDecreasesWithResolution) {
  auto l1_at = [&](int n) {
    IgrSolver1D s(n, 0.0, 1.0, sod_options());
    s.init(sod_ic());
    s.advance_to(0.2);
    igr::fv::ExactRiemann ex(igr::fv::sod_left(), igr::fv::sod_right(), 1.4);
    const auto ref = ex.sample_profile(n, 0.0, 1.0, 0.5, 0.2);
    const auto rho = s.rho();
    double l1 = 0;
    for (int i = 0; i < n; ++i)
      l1 += std::abs(rho[static_cast<std::size_t>(i)] -
                     ref[static_cast<std::size_t>(i)].rho) *
            s.dx();
    return l1;
  };
  EXPECT_LT(l1_at(400), 0.6 * l1_at(100));
}

TEST(Igr1D, PeriodicConservation) {
  IgrSolver1D::Options opt;
  opt.alpha_factor = 5.0;
  opt.bc = Bc1D::kPeriodic;
  IgrSolver1D s(128, 0.0, 1.0, opt);
  s.init([](double x) {
    Prim1 w;
    w.rho = 1.0 + 0.5 * std::sin(2 * M_PI * x);
    w.u = 0.7;
    w.p = 1.0 + 0.2 * std::cos(2 * M_PI * x);
    return w;
  });
  const auto before = s.conserved_totals();
  for (int i = 0; i < 50; ++i) s.step();
  const auto after = s.conserved_totals();
  EXPECT_NEAR(after[0], before[0], 1e-12 * std::abs(before[0]));
  EXPECT_NEAR(after[1], before[1], 1e-12 * std::abs(before[1]) + 1e-13);
  EXPECT_NEAR(after[2], before[2], 1e-12 * std::abs(before[2]));
}

TEST(Igr1D, ConstantStateIsSteady) {
  IgrSolver1D::Options opt;
  opt.bc = Bc1D::kPeriodic;
  IgrSolver1D s(64, 0.0, 1.0, opt);
  s.init([](double) { return Prim1{1.3, 0.4, 0.9}; });
  for (int i = 0; i < 20; ++i) s.step();
  for (double r : s.rho()) EXPECT_NEAR(r, 1.3, 1e-12);
  for (double u : s.velocity()) EXPECT_NEAR(u, 0.4, 1e-12);
}

TEST(Igr1D, SigmaIsPositiveAtCompression) {
  // At a forming shock (compression), the entropic pressure is positive.
  IgrSolver1D s(256, 0.0, 1.0, sod_options());
  s.init(sod_ic());
  s.advance_to(0.1);
  const auto sig = s.sigma_profile();
  double smax = 0;
  for (double v : sig) smax = std::max(smax, v);
  EXPECT_GT(smax, 1e-6);
}

TEST(Igr1D, AlphaZeroRecoversUnregularizedScheme) {
  IgrSolver1D::Options opt = sod_options();
  opt.alpha = 0.0;
  IgrSolver1D s(128, 0.0, 1.0, opt);
  s.init(sod_ic());
  s.advance_to(0.05);
  const auto sig = s.sigma_profile();
  for (double v : sig) EXPECT_EQ(v, 0.0);
}

TEST(Igr1D, ShockWidthGrowsWithAlpha) {
  // Paper Fig. 3: "The regularization strength alpha determines the rate of
  // convergence" / shock width ~ sqrt(alpha).  Measure the 10-90% width of
  // the captured shock for two alphas.
  auto width_cells = [&](double alpha_factor) {
    IgrSolver1D::Options opt = sod_options();
    opt.alpha_factor = alpha_factor;
    IgrSolver1D s(800, 0.0, 1.0, opt);
    s.init(sod_ic());
    s.advance_to(0.2);
    const auto rho = s.rho();
    // Count transition cells between the post-shock plateau (0.2656) and
    // the pre-shock state (0.125), scanning right of the contact.
    int cells = 0;
    for (int i = 580; i < 800; ++i) {
      const double r = rho[static_cast<std::size_t>(i)];
      if (r > 0.139 && r < 0.252) ++cells;
    }
    return cells;
  };
  // Measured: ~2 cells at alpha_factor 2, ~6 at 5, ~10 at 10.
  EXPECT_GT(width_cells(10.0), width_cells(2.0));
  EXPECT_GT(width_cells(10.0), width_cells(5.0));
  EXPECT_GT(width_cells(5.0), width_cells(2.0));
}

// ---- Pressureless flow-map experiments (paper Fig. 3) ----

IgrSolver1D::Options pressureless_options(double alpha) {
  IgrSolver1D::Options opt;
  opt.pressureless = true;
  opt.alpha = alpha;
  opt.bc = Bc1D::kOutflow;
  opt.cfl = 0.3;
  return opt;
}

/// Converging velocity field: u = -tanh((x - 1)/0.1): particles collide at
/// x = 1 in finite time without regularization.
auto collision_ic() {
  return [](double x) {
    Prim1 w;
    w.rho = 1.0;
    w.u = -std::tanh((x - 1.0) / 0.1);
    w.p = 0.0;
    return w;
  };
}

TEST(Igr1DPressureless, TracerTrajectoriesDoNotCross) {
  auto s = IgrSolver1D(512, 0.0, 2.0, pressureless_options(1e-3));
  s.init(collision_ic());
  const int t1 = s.add_tracer(0.8);
  const int t2 = s.add_tracer(1.2);
  double min_gap = 1e300;
  while (s.time() < 0.8) {
    s.step();
    const double gap = s.tracer_position(t2) - s.tracer_position(t1);
    min_gap = std::min(min_gap, gap);
    ASSERT_GT(gap, 0.0) << "trajectories crossed at t=" << s.time();
  }
  EXPECT_GT(min_gap, 0.0);
}

TEST(Igr1DPressureless, GapShrinksMonotonically) {
  // Trajectories converge asymptotically (Fig. 3): the gap decreases but
  // stays positive.
  auto s = IgrSolver1D(512, 0.0, 2.0, pressureless_options(1e-3));
  s.init(collision_ic());
  const int t1 = s.add_tracer(0.8);
  const int t2 = s.add_tracer(1.2);
  double prev = s.tracer_position(t2) - s.tracer_position(t1);
  while (s.time() < 0.6) {
    s.step();
    const double gap = s.tracer_position(t2) - s.tracer_position(t1);
    EXPECT_LE(gap, prev + 1e-12);
    prev = gap;
  }
  EXPECT_LT(prev, 0.4);  // substantially converged
}

TEST(Igr1DPressureless, SmallerAlphaConvergesFaster) {
  // Fig. 3: alpha sets the rate of convergence; smaller alpha -> trajectories
  // approach each other faster (closer to the colliding exact solution).
  // The regularized density spike is ~sqrt(alpha) wide, so the resolution
  // must track alpha (2048 cells resolve alpha = 1e-4 on [0,2]).
  auto final_gap = [&](double alpha) {
    auto s = IgrSolver1D(2048, 0.0, 2.0, pressureless_options(alpha));
    s.init(collision_ic());
    const int t1 = s.add_tracer(0.8);
    const int t2 = s.add_tracer(1.2);
    while (s.time() < 0.4) s.step();
    return s.tracer_position(t2) - s.tracer_position(t1);
  };
  const double g3 = final_gap(1e-3);
  const double g4 = final_gap(1e-4);
  EXPECT_LT(g4, g3);
  EXPECT_GT(g4, 0.0);
}

TEST(Igr1DPressureless, DensityStaysBoundedThroughCollision) {
  // Without regularization the density blows up at the collision point;
  // IGR must keep it finite.
  auto s = IgrSolver1D(512, 0.0, 2.0, pressureless_options(1e-3));
  s.init(collision_ic());
  while (s.time() < 0.8) s.step();
  for (double r : s.rho()) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_LT(r, 500.0);  // bounded (the exact solution is a delta)
    EXPECT_GT(r, 0.0);
  }
}

TEST(Igr1D, VelocityInterpolationMatchesField) {
  IgrSolver1D::Options opt;
  opt.bc = Bc1D::kPeriodic;
  IgrSolver1D s(64, 0.0, 1.0, opt);
  s.init([](double) { return Prim1{1.0, 0.5, 1.0}; });
  EXPECT_NEAR(s.velocity_at(0.37), 0.5, 1e-12);
  EXPECT_NEAR(s.velocity_at(0.0), 0.5, 1e-12);   // clamped end
  EXPECT_NEAR(s.velocity_at(1.0), 0.5, 1e-12);
}

TEST(Igr1D, RejectsBadConstruction) {
  EXPECT_THROW(IgrSolver1D(4, 0.0, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(IgrSolver1D(64, 1.0, 0.0, {}), std::invalid_argument);
}

}  // namespace
