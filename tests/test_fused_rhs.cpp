/// Fused-pipeline equivalence: the plane-streaming RHS schedule
/// (SolverConfig::fused_rhs, the production default) must be *bitwise
/// identical* — state, Sigma, RHS, and dt — to the phased reference
/// schedule it replaces.  Every slot of the fused wavefront reads exactly
/// the values the phased full-grid passes would show it (see the pipeline
/// notes in igr_solver3d.cpp); any divergence is a scheduling bug, not
/// roundoff.  Same discipline as the dispatch-equivalence and
/// batch-conversion regression tests, and it relies on the same
/// reproducibility flags pinned in CMakeLists.txt.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "app/jet_config.hpp"
#include "common/precision.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/cfl.hpp"
#include "mesh/grid.hpp"

namespace {

using igr::common::Fp16x32;
using igr::common::Fp32;
using igr::common::Fp64;
using igr::common::kNumVars;
using igr::core::IgrSolver3D;
using igr::fv::BcSpec;
using igr::fv::ReconScheme;
using igr::mesh::Grid;

template <class S>
bool bits_equal(const S& a, const S& b) {
  return std::memcmp(&a, &b, sizeof(S)) == 0;
}

/// The bench harness's Mach-10 jet at smoke size (outflow/inflow faces, so
/// the Sigma boundary handling is Neumann and the sweep wavefront engages).
template <class Policy>
IgrSolver3D<Policy> make_jet(bool fused, ReconScheme recon,
                             bool gauss_seidel = true, int block = 8,
                             int n = 12) {
  const auto jet = igr::app::single_engine();
  auto cfg = jet.solver_config();
  cfg.fused_rhs = fused;
  cfg.fused_flux_block = block;
  cfg.sigma_gauss_seidel = gauss_seidel;
  const Grid grid(n, n, n + n / 2, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.5});
  IgrSolver3D<Policy> s(grid, cfg, jet.make_bc(), recon);
  s.init(jet.initial_condition(0.005));
  return s;
}

/// All-periodic variant: exercises the periodic-Sigma fallback (phased
/// sweeps inside the fused schedule) plus the streamed flux/RK/dt folds.
template <class Policy>
IgrSolver3D<Policy> make_periodic(bool fused, ReconScheme recon, int n = 12) {
  igr::common::SolverConfig cfg;
  cfg.fused_rhs = fused;
  const Grid grid = Grid::cube(n);
  IgrSolver3D<Policy> s(grid, cfg, BcSpec::all_periodic(), recon);
  s.init([](double x, double y, double z) {
    igr::common::Prim<double> w;
    w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.u = 0.4 * std::sin(2 * M_PI * y);
    w.v = -0.2 * std::cos(2 * M_PI * z);
    w.w = 0.1 * std::sin(2 * M_PI * (x + z));
    w.p = 1.0 + 0.2 * std::cos(2 * M_PI * x);
    return w;
  });
  return s;
}

template <class Policy>
void expect_state_sigma_equal(const IgrSolver3D<Policy>& a,
                              const IgrSolver3D<Policy>& b) {
  const auto& g = a.grid();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < g.nz(); ++k)
      for (int j = 0; j < g.ny(); ++j)
        for (int i = 0; i < g.nx(); ++i)
          ASSERT_TRUE(bits_equal(a.state()[c](i, j, k), b.state()[c](i, j, k)))
              << "var " << c << " at (" << i << "," << j << "," << k << ")";
  for (int k = 0; k < g.nz(); ++k)
    for (int j = 0; j < g.ny(); ++j)
      for (int i = 0; i < g.nx(); ++i)
        ASSERT_TRUE(bits_equal(a.sigma()(i, j, k), b.sigma()(i, j, k)))
            << "sigma at (" << i << "," << j << "," << k << ")";
}

template <class Policy>
void expect_rhs_equal(IgrSolver3D<Policy>& a, IgrSolver3D<Policy>& b) {
  const auto& g = a.grid();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < g.nz(); ++k)
      for (int j = 0; j < g.ny(); ++j)
        for (int i = 0; i < g.nx(); ++i)
          ASSERT_TRUE(bits_equal(a.rhs_field()[c](i, j, k),
                                 b.rhs_field()[c](i, j, k)))
              << "rhs var " << c << " at (" << i << "," << j << "," << k
              << ")";
}

const ReconScheme kRecons[] = {ReconScheme::kFirst, ReconScheme::kThird,
                               ReconScheme::kFifth};

template <class Policy>
void run_compute_rhs_case() {
  for (auto recon : kRecons) {
    auto phased = make_jet<Policy>(/*fused=*/false, recon);
    auto fused = make_jet<Policy>(/*fused=*/true, recon);
    // Stir the state so Sigma and the fallback/floor paths are exercised.
    phased.step_fixed(1e-4);
    fused.step_fixed(1e-4);
    phased.begin_step();
    fused.begin_step();
    phased.compute_rhs(phased.stage_field(), phased.rhs_field());
    fused.compute_rhs_fused(fused.stage_field(), fused.rhs_field());
    expect_rhs_equal(phased, fused);
    expect_state_sigma_equal(phased, fused);
  }
}

template <class Policy>
void run_adaptive_steps_case(bool gauss_seidel) {
  for (auto recon : kRecons) {
    auto phased = make_jet<Policy>(/*fused=*/false, recon, gauss_seidel);
    auto fused = make_jet<Policy>(/*fused=*/true, recon, gauss_seidel);
    // Three adaptive steps: the first dt comes from the dedicated CFL scan
    // on both sides; the later fused dts come from the reduction folded
    // into the previous step's final RK stage.
    for (int s = 0; s < 3; ++s) {
      const double dt_p = phased.step();
      const double dt_f = fused.step();
      ASSERT_EQ(dt_p, dt_f) << "step " << s;
    }
    expect_state_sigma_equal(phased, fused);
  }
}

TEST(FusedRhs, ComputeRhsBitwiseFp64) { run_compute_rhs_case<Fp64>(); }
TEST(FusedRhs, ComputeRhsBitwiseFp32) { run_compute_rhs_case<Fp32>(); }
TEST(FusedRhs, ComputeRhsBitwiseFp16x32) { run_compute_rhs_case<Fp16x32>(); }

TEST(FusedRhs, AdaptiveJetStepsBitwiseFp64) {
  run_adaptive_steps_case<Fp64>(/*gauss_seidel=*/true);
}
TEST(FusedRhs, AdaptiveJetStepsBitwiseFp32) {
  run_adaptive_steps_case<Fp32>(/*gauss_seidel=*/true);
}
TEST(FusedRhs, AdaptiveJetStepsBitwiseFp16x32) {
  run_adaptive_steps_case<Fp16x32>(/*gauss_seidel=*/true);
}

TEST(FusedRhs, AdaptiveJetStepsBitwiseJacobiFp64) {
  // The Jacobi wavefront alternates buffers per plane slot instead of
  // swapping whole fields per sweep; the final swap must land the same
  // bits in the same field object.
  run_adaptive_steps_case<Fp64>(/*gauss_seidel=*/false);
}
TEST(FusedRhs, AdaptiveJetStepsBitwiseJacobiFp16x32) {
  run_adaptive_steps_case<Fp16x32>(/*gauss_seidel=*/false);
}

TEST(FusedRhs, PeriodicFallbackStepsBitwiseFp64) {
  // All-periodic BCs: the sweep wavefront cannot cross the z wrap, so the
  // fused schedule keeps phased sweeps — but still streams source, fluxes,
  // RK, and the dt fold, which must stay bitwise.
  auto phased = make_periodic<Fp64>(false, ReconScheme::kFifth);
  auto fused = make_periodic<Fp64>(true, ReconScheme::kFifth);
  for (int s = 0; s < 3; ++s) ASSERT_EQ(phased.step(), fused.step());
  expect_state_sigma_equal(phased, fused);
}

TEST(FusedRhs, PeriodicFallbackStepsBitwiseFp16x32) {
  auto phased = make_periodic<Fp16x32>(false, ReconScheme::kFifth);
  auto fused = make_periodic<Fp16x32>(true, ReconScheme::kFifth);
  for (int s = 0; s < 3; ++s) ASSERT_EQ(phased.step(), fused.step());
  expect_state_sigma_equal(phased, fused);
}

TEST(FusedRhs, FluxBlockThicknessIsBitwiseFree) {
  // The k-block seams of the streamed flux stage re-evaluate shared faces;
  // every block thickness (clamped up to the stencil radius) must produce
  // identical bits, including the degenerate one-block case.
  for (int block : {1, 3, 4, 5, 18, 64}) {
    auto ref = make_jet<Fp64>(/*fused=*/false, ReconScheme::kFifth);
    auto fused =
        make_jet<Fp64>(/*fused=*/true, ReconScheme::kFifth, true, block);
    for (int s = 0; s < 2; ++s) ASSERT_EQ(fused.step(), ref.step());
    expect_state_sigma_equal(ref, fused);
  }
}

TEST(FusedRhs, RegionRestrictedFluxesMatchPhased) {
  // The interior/boundary split DistributedIgr overlaps with halo traffic,
  // run through the fused (k-block-streamed) flux path, must still union to
  // the phased full-region sweep bitwise.
  for (auto recon : kRecons) {
    auto phased = make_jet<Fp64>(/*fused=*/false, recon);
    auto fused = make_jet<Fp64>(/*fused=*/true, recon);
    phased.step_fixed(1e-4);
    fused.step_fixed(1e-4);
    phased.begin_step();
    fused.begin_step();
    // Identical Sigma solve on both sides, then split vs whole fluxes.
    phased.compute_rhs(phased.stage_field(), phased.rhs_field());
    fused.apply_domain_bc(fused.stage_field());
    fused.build_sigma_source(fused.stage_field());
    for (int s = 0; s < fused.config().sigma_sweeps; ++s) {
      igr::core::fill_sigma_ghosts(fused.sigma_field(),
                                   igr::core::SigmaBc::kNeumann, 1);
      fused.sigma_sweep(fused.stage_field());
    }
    fused.fill_sigma_boundary();
    fused.compute_fluxes_interior(fused.stage_field(), fused.rhs_field(), 2);
    fused.compute_fluxes_boundary(fused.stage_field(), fused.rhs_field(), 2);
    expect_rhs_equal(phased, fused);
  }
}

TEST(FusedRhs, StepFixedThenAdaptiveUsesFreshDtCache) {
  // step_fixed refreshes the folded CFL cache too, so a mixed
  // step_fixed/step sequence sees the dt a phased solver would compute.
  auto phased = make_jet<Fp64>(/*fused=*/false, ReconScheme::kFifth);
  auto fused = make_jet<Fp64>(/*fused=*/true, ReconScheme::kFifth);
  phased.step_fixed(1e-4);
  fused.step_fixed(1e-4);
  ASSERT_EQ(phased.step(), fused.step());
  expect_state_sigma_equal(phased, fused);
}

}  // namespace
