/// Unit tests for the viscous stress tensor (paper eq. 5).

#include <gtest/gtest.h>

#include "fv/viscous.hpp"

namespace {

using igr::common::Cons;
using igr::fv::stress_tensor;
using igr::fv::VelGrad;
using igr::fv::viscous_flux;

TEST(Viscous, StressIsSymmetric) {
  VelGrad<double> g;
  g.g[0][0] = 1.0; g.g[0][1] = 2.0; g.g[0][2] = -1.0;
  g.g[1][0] = 0.5; g.g[1][1] = -0.3; g.g[1][2] = 0.7;
  g.g[2][0] = -0.2; g.g[2][1] = 0.9; g.g[2][2] = 0.1;
  double tau[3][3];
  stress_tensor(g, 0.7, 0.2, tau);
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) EXPECT_NEAR(tau[a][b], tau[b][a], 1e-14);
}

TEST(Viscous, RigidRotationIsStressFree) {
  // grad u antisymmetric (solid-body rotation): tau must vanish.
  VelGrad<double> g;
  g.g[0][1] = 1.0;
  g.g[1][0] = -1.0;
  g.g[0][2] = 0.4;
  g.g[2][0] = -0.4;
  double tau[3][3];
  stress_tensor(g, 1.0, 0.0, tau);
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) EXPECT_NEAR(tau[a][b], 0.0, 1e-14);
}

TEST(Viscous, PureShearStress) {
  // u = (y, 0, 0): tau_xy = mu.
  VelGrad<double> g;
  g.g[0][1] = 1.0;
  double tau[3][3];
  stress_tensor(g, 0.8, 0.0, tau);
  EXPECT_NEAR(tau[0][1], 0.8, 1e-14);
  EXPECT_NEAR(tau[1][0], 0.8, 1e-14);
  EXPECT_NEAR(tau[0][0], 0.0, 1e-14);
}

TEST(Viscous, UniformExpansionBulkTerm) {
  // u = (x, y, z): div u = 3; tau_ii = 2mu + (zeta - 2mu/3)*3 = 3 zeta.
  VelGrad<double> g;
  g.g[0][0] = g.g[1][1] = g.g[2][2] = 1.0;
  double tau[3][3];
  stress_tensor(g, 0.6, 0.9, tau);
  for (int a = 0; a < 3; ++a) EXPECT_NEAR(tau[a][a], 3.0 * 0.9, 1e-14);
  EXPECT_NEAR(tau[0][1], 0.0, 1e-14);
}

TEST(Viscous, TracelessForZeroBulkViscosity) {
  // With zeta = 0 the deviatoric property holds: tr(tau) = 0 for any flow.
  VelGrad<double> g;
  g.g[0][0] = 2.0; g.g[1][1] = -0.5; g.g[2][2] = 1.0;
  g.g[0][1] = 0.3; g.g[1][0] = 0.8;
  double tau[3][3];
  stress_tensor(g, 1.3, 0.0, tau);
  EXPECT_NEAR(tau[0][0] + tau[1][1] + tau[2][2], 0.0, 1e-13);
}

TEST(Viscous, FluxCarriesNoMass) {
  VelGrad<double> g;
  g.g[0][0] = 1.0;
  const double uf[3] = {1.0, 2.0, 3.0};
  const auto f = viscous_flux(g, uf, 0.5, 0.1, 0);
  EXPECT_DOUBLE_EQ(f.rho, 0.0);
}

TEST(Viscous, EnergyFluxIsWorkOfStress) {
  VelGrad<double> g;
  g.g[0][1] = 1.0;  // tau_xy = mu
  const double uf[3] = {0.0, 2.0, 0.0};
  const auto f = viscous_flux(g, uf, 0.7, 0.0, 0);
  // Energy flux = -(u . tau(:,x)) = -(u_y tau_yx) = -2 * 0.7.
  EXPECT_NEAR(f.e, -1.4, 1e-14);
  EXPECT_NEAR(f.my, -0.7, 1e-14);
}

TEST(Viscous, TrSqMatchesHandComputation) {
  // tr((grad u)^2) drives the IGR source; check against a hand value.
  VelGrad<double> g;
  g.g[0][0] = 1.0; g.g[0][1] = 2.0;
  g.g[1][0] = 3.0; g.g[1][1] = 4.0;
  // tr(G^2) = G00^2 + 2 G01 G10 + G11^2 = 1 + 12 + 16 = 29.
  EXPECT_NEAR(g.tr_sq(), 29.0, 1e-14);
  EXPECT_NEAR(g.div(), 5.0, 1e-14);
}

}  // namespace
