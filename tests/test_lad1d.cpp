/// Tests for the LAD (localized artificial diffusivity) baseline — the
/// viscous shock-capturing comparator of paper Fig. 2.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/lad_solver1d.hpp"
#include "common/math.hpp"
#include "fv/exact_riemann.hpp"

namespace {

using igr::baseline::LadSolver1D;
using igr::core::Bc1D;
using igr::core::Prim1;

auto sod_ic() {
  return [](double x) {
    Prim1 w;
    if (x < 0.5) {
      w.rho = 1.0;
      w.p = 1.0;
    } else {
      w.rho = 0.125;
      w.p = 0.1;
    }
    return w;
  };
}

TEST(Lad1D, SolvesSodReasonably) {
  LadSolver1D::Options opt;
  opt.c_lad = 2.0;
  LadSolver1D s(400, 0.0, 1.0, opt);
  s.init(sod_ic());
  s.advance_to(0.2);
  igr::fv::ExactRiemann ex(igr::fv::sod_left(), igr::fv::sod_right(), 1.4);
  const auto ref = ex.sample_profile(400, 0.0, 1.0, 0.5, 0.2);
  const auto rho = s.rho();
  double l1 = 0;
  for (int i = 0; i < 400; ++i)
    l1 += std::abs(rho[static_cast<std::size_t>(i)] -
                   ref[static_cast<std::size_t>(i)].rho) *
          s.dx();
  EXPECT_LT(l1, 0.05);
}

TEST(Lad1D, ConstantStateIsSteady) {
  LadSolver1D::Options opt;
  opt.bc = Bc1D::kPeriodic;
  LadSolver1D s(64, 0.0, 1.0, opt);
  s.init([](double) { return Prim1{1.0, 0.3, 1.0}; });
  for (int i = 0; i < 10; ++i) s.step();
  for (double r : s.rho()) EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(Lad1D, ArtificialViscosityActivatesOnlyInCompression) {
  // A pure expansion (u increasing with x) must not trigger the sensor; the
  // profile evolves like the inviscid scheme.
  LadSolver1D::Options lad_on, lad_off;
  lad_on.c_lad = 5.0;
  lad_off.c_lad = 0.0;
  auto ic = [](double x) {
    Prim1 w;
    w.rho = 1.0;
    w.u = 0.2 * std::tanh((x - 0.5) / 0.2);  // expanding
    w.p = 1.0;
    return w;
  };
  LadSolver1D a(128, 0.0, 1.0, lad_on), b(128, 0.0, 1.0, lad_off);
  a.init(ic);
  b.init(ic);
  a.advance_to(0.05);
  b.advance_to(0.05);
  const auto ra = a.rho(), rb = b.rho();
  for (int i = 0; i < 128; ++i)
    EXPECT_NEAR(ra[static_cast<std::size_t>(i)],
                rb[static_cast<std::size_t>(i)], 1e-10);
}

TEST(Lad1D, DissipatesOscillationsMoreWithLargerCoefficient) {
  // The Fig. 2(b,i) failure mode: raising the LAD coefficient (to widen
  // shocks) dissipates genuine oscillatory features.  Kinetic energy of an
  // oscillatory velocity field must decay faster with a larger coefficient.
  auto ke_after = [&](double c_lad) {
    LadSolver1D::Options opt;
    opt.c_lad = c_lad;
    opt.bc = Bc1D::kPeriodic;
    LadSolver1D s(256, 0.0, 1.0, opt);
    // Compressive oscillatory velocity field: sensor active in half the
    // wavelengths.
    s.init([](double x) {
      Prim1 w;
      w.rho = 1.0 + 0.2 * std::sin(8 * 2 * M_PI * x);
      w.u = 0.3 * std::sin(8 * 2 * M_PI * x);
      w.p = 1.0;
      return w;
    });
    s.advance_to(0.1);
    const auto rho = s.rho();
    const auto u = s.velocity();
    double ke = 0.0;
    for (std::size_t i = 0; i < rho.size(); ++i)
      ke += 0.5 * rho[i] * u[i] * u[i] * s.dx();
    return ke;
  };
  EXPECT_LT(ke_after(50.0), 0.9 * ke_after(0.5));
}

TEST(Lad1D, ShockWidthGrowsWithCoefficient) {
  auto width = [&](double c_lad) {
    LadSolver1D::Options opt;
    opt.c_lad = c_lad;
    LadSolver1D s(800, 0.0, 1.0, opt);
    s.init(sod_ic());
    s.advance_to(0.2);
    const auto rho = s.rho();
    const double hi = 0.26557, lo = 0.125;
    int first = -1, last = -1;
    for (int i = 560; i < 780; ++i) {
      const double r = rho[static_cast<std::size_t>(i)];
      if (first < 0 && r < hi - 0.1 * (hi - lo)) first = i;
      if (r > lo + 0.1 * (hi - lo)) last = i;
    }
    return (last - first) * s.dx();
  };
  EXPECT_GT(width(20.0), width(1.0));
}

TEST(Lad1D, CflPenaltyFromStrongArtificialViscosity) {
  // §4.1: sufficiently strong artificial viscosity restricts the explicit
  // time step.  The LAD step size must shrink as c_lad grows.
  auto first_dt = [&](double c_lad) {
    LadSolver1D::Options opt;
    opt.c_lad = c_lad;
    LadSolver1D s(400, 0.0, 1.0, opt);
    s.init(sod_ic());
    s.step();       // build mu_art
    return s.step();  // dt now reflects the diffusion limit
  };
  EXPECT_LT(first_dt(200.0), first_dt(1.0));
}

}  // namespace
