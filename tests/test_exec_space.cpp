/// The exec-space contract: every backend and every team width produces the
/// same bits.  Covers the ExecSpace primitive itself (partition coverage,
/// team launch, barrier phase ordering), then the solver-level guarantees —
/// Serial vs OpenMP bitwise on state fingerprints AND per-step dt for both
/// RHS schedules and every storage precision, thread-count invariance at
/// widths 1/2/4, and the distributed driver with a multi-threaded exec
/// space inside each rank worker (the configuration the TSan tree races).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cases/runner.hpp"
#include "common/exec.hpp"

namespace {

using igr::common::ExecBackend;
using igr::common::ExecSpace;
using igr::common::Fp16x32;
using igr::common::Fp32;
using igr::common::Fp64;
using igr::common::kNumVars;
namespace cases = igr::cases;

// --- The primitive ------------------------------------------------------

TEST(ExecSpaceUnit, ChunkPartitionsExactlyOnce) {
  for (long n : {0L, 1L, 7L, 64L, 1000L, 1001L}) {
    for (int nth : {1, 2, 3, 4, 7, 16}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      long prev_end = 0;
      for (int tid = 0; tid < nth; ++tid) {
        long b, e;
        ExecSpace::chunk(n, tid, nth, b, e);
        EXPECT_EQ(b, prev_end) << "gap/overlap at tid " << tid;
        EXPECT_LE(b, e);
        prev_end = e;
        for (long i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
      }
      EXPECT_EQ(prev_end, n) << "n=" << n << " nth=" << nth;
      for (long i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1)
            << "index " << i << " n=" << n << " nth=" << nth;
    }
  }
}

TEST(ExecSpaceUnit, SerialIsAOneMemberTeam) {
  const ExecSpace exec = ExecSpace::serial();
  EXPECT_EQ(exec.backend(), ExecBackend::kSerial);
  int launches = 0;
  exec.run_team([&](const ExecSpace::Team& t) {
    EXPECT_EQ(t.tid(), 0);
    EXPECT_EQ(t.size(), 1);
    t.barrier();  // must be a no-op, not a deadlock
    ++launches;
  });
  EXPECT_EQ(launches, 1);
}

TEST(ExecSpaceUnit, ForEachVisitsEveryIndexOnceAtEveryWidth) {
  const long n = 257;  // prime: exercises the remainder path
  for (int width : {0, 1, 2, 4}) {
    const ExecSpace exec(ExecBackend::kOpenMP, width);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    exec.for_each(n, [&](long i) {
      hits[static_cast<std::size_t>(i)].fetch_add(
          1, std::memory_order_relaxed);
    });
    for (long i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " width " << width;
  }
}

TEST(ExecSpaceUnit, BarrierOrdersPhasesAcrossTheTeam) {
  // Each member publishes its tid, barriers, then checks it can see every
  // other member's publication — exactly the ordering the parity-phased
  // relaxation kernels rely on.
  for (int width : {2, 4}) {
    const ExecSpace exec(ExecBackend::kOpenMP, width);
    std::vector<std::atomic<int>> slot(static_cast<std::size_t>(width));
    for (auto& s : slot) s.store(-1, std::memory_order_relaxed);
    std::atomic<int> violations{0};
    exec.run_team([&](const ExecSpace::Team& t) {
      // An OpenMP runtime may hand out fewer members than requested; the
      // contract is "a team", not "exactly width members".
      ASSERT_GE(t.size(), 1);
      ASSERT_LE(t.size(), width);
      if (t.size() < 2) return;  // degenerate team: nothing to order
      slot[static_cast<std::size_t>(t.tid())].store(
          t.tid(), std::memory_order_relaxed);
      t.barrier();
      for (int m = 0; m < t.size(); ++m)
        if (slot[static_cast<std::size_t>(m)].load(
                std::memory_order_relaxed) != m)
          violations.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(violations.load(), 0) << "width " << width;
  }
}

// --- Solver-level bitwise invariance ------------------------------------

/// State fingerprint plus the full dt sequence of a golden-size run under
/// the given exec configuration — the two observables the exec-space
/// refactor promises not to move.
template <class Policy>
std::pair<std::uint64_t, std::vector<double>> fingerprint(
    const cases::CaseSpec& spec, const cases::RunOptions& opts) {
  cases::CaseRun<Policy> run(spec, opts);
  std::vector<double> dts;
  dts.reserve(static_cast<std::size_t>(run.target_steps()));
  for (int s = 0; s < run.target_steps(); ++s) dts.push_back(run.step());
  return {run.result().state_fnv, dts};
}

template <class Policy>
void expect_bitwise_equal(const cases::CaseSpec& spec,
                          const cases::RunOptions& a,
                          const cases::RunOptions& b, const char* label) {
  SCOPED_TRACE(label);
  const auto [fnv_a, dts_a] = fingerprint<Policy>(spec, a);
  const auto [fnv_b, dts_b] = fingerprint<Policy>(spec, b);
  ASSERT_EQ(dts_a.size(), dts_b.size());
  for (std::size_t s = 0; s < dts_a.size(); ++s)
    EXPECT_EQ(dts_a[s], dts_b[s]) << "dt diverged at step " << s;
  EXPECT_EQ(fnv_a, fnv_b) << "state fingerprint diverged";
}

/// Serial vs the default OpenMP exec space, both RHS schedules, one
/// precision policy.  The jet case covers the full kernel surface: inflow +
/// outflow BCs, the fused wavefront, the Sigma relaxation, the CFL fold.
template <class Policy>
void serial_vs_default(bool fused) {
  const auto* spec = cases::find("jet-single");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions serial = cases::golden_options(*spec);
  serial.fused_rhs = fused;
  serial.exec = ExecBackend::kSerial;
  cases::RunOptions ambient = serial;
  ambient.exec = ExecBackend::kOpenMP;
  ambient.threads = 0;  // the historical bare-pragma schedule
  expect_bitwise_equal<Policy>(*spec, serial, ambient,
                               fused ? "fused" : "phased");
}

TEST(ExecSpaceBitwise, SerialMatchesDefaultFusedFp64) {
  serial_vs_default<Fp64>(true);
}
TEST(ExecSpaceBitwise, SerialMatchesDefaultFusedFp32) {
  serial_vs_default<Fp32>(true);
}
TEST(ExecSpaceBitwise, SerialMatchesDefaultFusedFp16) {
  serial_vs_default<Fp16x32>(true);
}
TEST(ExecSpaceBitwise, SerialMatchesDefaultPhasedFp64) {
  serial_vs_default<Fp64>(false);
}
TEST(ExecSpaceBitwise, SerialMatchesDefaultPhasedFp32) {
  serial_vs_default<Fp32>(false);
}
TEST(ExecSpaceBitwise, SerialMatchesDefaultPhasedFp16) {
  serial_vs_default<Fp16x32>(false);
}

TEST(ExecSpaceBitwise, ThreadCountCannotMoveABit) {
  const auto* spec = cases::find("jet-single");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions base = cases::golden_options(*spec);
  base.exec = ExecBackend::kSerial;
  const auto [ref_fnv, ref_dts] = fingerprint<Fp64>(*spec, base);
  for (int width : {1, 2, 4}) {
    SCOPED_TRACE("width " + std::to_string(width));
    cases::RunOptions o = base;
    o.exec = ExecBackend::kOpenMP;
    o.threads = width;
    const auto [fnv, dts] = fingerprint<Fp64>(*spec, o);
    ASSERT_EQ(dts.size(), ref_dts.size());
    for (std::size_t s = 0; s < dts.size(); ++s)
      EXPECT_EQ(dts[s], ref_dts[s]) << "dt diverged at step " << s;
    EXPECT_EQ(fnv, ref_fnv);
  }
}

TEST(ExecSpaceBitwise, SedovPhasedSerialMatchesThreads) {
  // A second workload shape (point blast, all-outflow BCs) through the
  // phased schedule, Serial vs a 2-wide team.
  const auto* spec = cases::find("sedov");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions serial = cases::golden_options(*spec);
  serial.fused_rhs = false;
  serial.exec = ExecBackend::kSerial;
  cases::RunOptions wide = serial;
  wide.exec = ExecBackend::kOpenMP;
  wide.threads = 2;
  expect_bitwise_equal<Fp64>(*spec, serial, wide, "sedov phased");
}

TEST(ExecSpaceDistributed, PerRankTeamsBitwiseEqualSerialSingleDomain) {
  // Rank workers × a 2-wide exec space per rank: the nested-concurrency
  // configuration.  Jacobi sweeps make the decomposition exact, so the
  // whole stack must reproduce the single-domain serial-exec bits.  Under
  // the TSan tree (OpenMP off) the per-rank teams are std::thread teams —
  // this is the race check of the kernel bodies.
  const auto* spec = cases::find("taylor-green");
  ASSERT_NE(spec, nullptr);
  cases::RunOptions ref;
  ref.n = 12;
  ref.steps = 4;
  ref.jacobi_sweeps = true;
  ref.exec = ExecBackend::kSerial;
  cases::RunOptions dist = ref;
  dist.exec = ExecBackend::kOpenMP;
  dist.ranks = {1, 2, 2};
  dist.threads = 2;  // lowered into each rank's SolverConfig::exec_threads
  cases::CaseRun<Fp64> a(*spec, ref);
  cases::CaseRun<Fp64> b(*spec, dist);
  for (int s = 0; s < 4; ++s) {
    const double dt_a = a.step();
    const double dt_b = b.step();
    ASSERT_EQ(dt_a, dt_b) << "step " << s;
  }
  const auto& qa = a.sim().state();
  const auto& qb = b.sim().state();
  for (int c = 0; c < kNumVars; ++c)
    for (int k = 0; k < 12; ++k)
      for (int j = 0; j < 12; ++j)
        for (int i = 0; i < 12; ++i)
          ASSERT_EQ(qa[c](i, j, k), qb[c](i, j, k))
              << "c=" << c << " @ " << i << "," << j << "," << k;
}

}  // namespace
