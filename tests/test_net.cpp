/// True multi-process transport tests: fork/exec the real `igr_launch` and
/// `run_case` binaries (located via the IGR_BUILD_DIR compile definition) so
/// every rank is a genuinely separate OS process over loopback sockets —
/// including a SIGKILLed rank mid-run and the launcher's respawn-with-resume
/// recovery.  tests/test_transport.cpp covers the same fabric with
/// sanitizer-visible in-process endpoints; this suite is the
/// process-isolation truth test.

#if defined(__unix__) || defined(__APPLE__)

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

#ifndef IGR_BUILD_DIR
#error "test_net needs -DIGR_BUILD_DIR=\"<build dir>\" (see CMakeLists.txt)"
#endif

std::string bin(const char* name) {
  return std::string(IGR_BUILD_DIR) + "/" + name;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path d = fs::temp_directory_path() / ("igr_net_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

/// Run a shell command, return its exit code (-1: abnormal termination).
/// Output goes to a log file so a failure's transcript is inspectable.
int run_cmd(const std::string& cmd, const fs::path& log) {
  const std::string full = cmd + " >> '" + log.string() + "' 2>&1";
  const int status = std::system(full.c_str());
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Pull a `"key": "0x..."` hex fingerprint out of a run_case --json file.
std::uint64_t json_fnv(const fs::path& json, const std::string& key) {
  const std::string text = slurp(json);
  const std::string needle = "\"" + key + "\": \"0x";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) {
    ADD_FAILURE() << key << " not found in " << json << ":\n" << text;
    return 0;
  }
  return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 16);
}

/// The common workload: decomposed Sod over 2 ranks, small but long enough
/// to cross several checkpoint cadences.
std::string sod_cmd(const std::string& run_case, int steps) {
  return run_case +
         " --case sod-x --ranks 2,1,1 --n 16 --steps " + std::to_string(steps);
}

TEST(NetLaunch, LauncherTeamMatchesInProcessBitwise) {
  const auto dir = scratch_dir("bitwise");
  const auto log = dir / "log.txt";

  const auto ref_json = dir / "ref.json";
  ASSERT_EQ(run_cmd(sod_cmd(bin("run_case"), 12) + " --json " +
                        ref_json.string(),
                    log),
            0)
      << slurp(log);

  const auto tcp_json = dir / "tcp.json";
  const std::string launch = bin("igr_launch") + " --world 2 --dir " +
                             (dir / "rdv").string() + " -- " +
                             sod_cmd(bin("run_case"), 12) + " --json " +
                             tcp_json.string();
  ASSERT_EQ(run_cmd(launch, log), 0) << slurp(log);

  // Bitwise across the process boundary: final state AND the whole dt
  // trajectory (each step's dt is an allreduce over the socket fabric).
  EXPECT_EQ(json_fnv(tcp_json, "state_fnv"), json_fnv(ref_json, "state_fnv"));
  EXPECT_EQ(json_fnv(tcp_json, "dt_fnv"), json_fnv(ref_json, "dt_fnv"));
  fs::remove_all(dir);
}

TEST(NetLaunch, SigkilledRankRecoversToTheGoldenFingerprint) {
  const auto dir = scratch_dir("kill");
  const auto log = dir / "log.txt";

  const auto ref_json = dir / "ref.json";
  ASSERT_EQ(run_cmd(sod_cmd(bin("run_case"), 20) + " --json " +
                        ref_json.string(),
                    log),
            0)
      << slurp(log);

  // Rank 1 SIGKILLs itself before step 10; rank 0 must detect the loss,
  // exit 75, and the launcher must respawn the team with --resume so the
  // run restores the newest checkpoint and completes — landing on exactly
  // the bits of the uninterrupted run.  (dt_fnv is not compared: the
  // respawned process hashes only its post-resume steps by design.)
  const auto kill_json = dir / "kill.json";
  const auto report = dir / "report.json";
  const std::string launch =
      bin("igr_launch") + " --world 2 --report " + report.string() +
      " --dir " + (dir / "rdv").string() +
      " -- " + sod_cmd(bin("run_case"), 20) + " --checkpoint-every 4" +
      " --ckpt-dir " + (dir / "ckpt").string() +
      " --inject kill=10@1 --json " + kill_json.string();
  ASSERT_EQ(run_cmd(launch, log), 0) << slurp(log);

  EXPECT_EQ(json_fnv(kill_json, "state_fnv"), json_fnv(ref_json, "state_fnv"));

  // The supervisor's transcript shows one real loss and one respawn.
  const std::string text = slurp(log);
  EXPECT_NE(text.find("respawning with --resume"), std::string::npos) << text;

  // The machine-readable exit report round-trips the recovery: one respawn,
  // a first attempt lost to SIGKILL (signal 9), and a clean final exit.
  const std::string rep = slurp(report);
  EXPECT_NE(rep.find("\"respawns\": 1"), std::string::npos) << rep;
  EXPECT_NE(rep.find("\"final_exit\": 0"), std::string::npos) << rep;
  EXPECT_NE(rep.find("killed by signal 9"), std::string::npos) << rep;
  EXPECT_NE(rep.find("\"retryable\": true"), std::string::npos) << rep;
  EXPECT_NE(rep.find("\"ok\": true"), std::string::npos) << rep;
  fs::remove_all(dir);
}

TEST(NetLaunch, ExhaustedRespawnBudgetFailsCleanly) {
  const auto dir = scratch_dir("budget");
  const auto log = dir / "log.txt";

  // No respawns allowed: the planned kill must surface as a clean nonzero
  // launcher exit (not a hang waiting on the dead rank).
  const std::string launch =
      bin("igr_launch") + " --world 2 --max-respawns 0 --dir " +
      (dir / "rdv").string() + " -- " + sod_cmd(bin("run_case"), 20) +
      " --checkpoint-every 4 --ckpt-dir " + (dir / "ckpt").string() +
      " --inject kill=6@1";
  EXPECT_EQ(run_cmd(launch, log), 1) << slurp(log);
  const std::string text = slurp(log);
  EXPECT_NE(text.find("respawn budget (0) exhausted"), std::string::npos)
      << text;
  fs::remove_all(dir);
}

TEST(NetLaunch, FatalRankExitCodePropagatesUnchanged) {
  const auto dir = scratch_dir("fatal");
  const auto log = dir / "log.txt";

  // An unknown case is a configuration error (exit 2), not a transient
  // loss: the launcher must not burn respawns on it and must exit 2 itself.
  const std::string launch = bin("igr_launch") + " --world 2 --dir " +
                             (dir / "rdv").string() + " -- " +
                             bin("run_case") +
                             " --case no-such-case --ranks 2,1,1 --steps 4";
  EXPECT_EQ(run_cmd(launch, log), 2) << slurp(log);
  const std::string text = slurp(log);
  EXPECT_NE(text.find("fatal"), std::string::npos) << text;
  fs::remove_all(dir);
}

}  // namespace

#endif  // unix
