/// Solver-level mixed-precision regression: the FP16/32 hot paths read and
/// write binary16 storage either per element (the reference path,
/// batch_half_conversion = false) or through the batched conversion lanes
/// (the production path).  Since every backend is bitwise-identical to the
/// reference converters and the batched code performs the same arithmetic
/// on the same values in the same order, a full RK3 step of the Mach-10 jet
/// must produce *bitwise-identical* state either way — any divergence is a
/// wiring bug in the batch plumbing, not roundoff.  (Same discipline as the
/// dispatch-equivalence tests in tests/test_flux_dispatch.cpp, which rely
/// on the reproducibility flags pinned in CMakeLists.txt.)

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "app/jet_config.hpp"
#include "common/precision.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/cfl.hpp"
#include "mesh/grid.hpp"

namespace {

using igr::common::Fp16x32;
using igr::common::kNumVars;
using igr::core::IgrSolver3D;
using igr::mesh::Grid;

/// The bench harness's Mach-10 single-jet workload at smoke size.
IgrSolver3D<Fp16x32> make_jet_solver(bool batch, int n = 12) {
  const auto jet = igr::app::single_engine();
  auto cfg = jet.solver_config();
  cfg.batch_half_conversion = batch;
  const Grid grid(n, n, n + n / 2, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.5});
  IgrSolver3D<Fp16x32> s(grid, cfg, jet.make_bc());
  s.init(jet.initial_condition(0.005));
  return s;
}

void expect_state_bitwise_equal(const IgrSolver3D<Fp16x32>& a,
                                const IgrSolver3D<Fp16x32>& b) {
  const auto& g = a.grid();
  for (int c = 0; c < kNumVars; ++c) {
    for (int k = 0; k < g.nz(); ++k) {
      for (int j = 0; j < g.ny(); ++j) {
        for (int i = 0; i < g.nx(); ++i) {
          ASSERT_EQ(a.state()[c](i, j, k).bits(), b.state()[c](i, j, k).bits())
              << "var " << c << " at (" << i << "," << j << "," << k << ")";
        }
      }
    }
  }
  for (int k = 0; k < g.nz(); ++k) {
    for (int j = 0; j < g.ny(); ++j) {
      for (int i = 0; i < g.nx(); ++i) {
        ASSERT_EQ(a.sigma()(i, j, k).bits(), b.sigma()(i, j, k).bits())
            << "sigma at (" << i << "," << j << "," << k << ")";
      }
    }
  }
}

TEST(MixedPrecisionStep, BatchTogglePreservesRk3StepBitwise) {
  auto batched = make_jet_solver(/*batch=*/true);
  auto scalar = make_jet_solver(/*batch=*/false);

  // Same fixed dt on both sides so the comparison is purely about the
  // conversion plumbing (CFL equivalence is asserted separately below).
  const double dt = 1e-4;
  for (int s = 0; s < 2; ++s) {
    batched.step_fixed(dt);
    scalar.step_fixed(dt);
  }

  // The jet inflow must actually have stirred the state — otherwise this
  // test would pass vacuously on an all-ambient field.
  bool perturbed = false;
  const auto& g = batched.grid();
  for (int k = 0; k < g.nz() && !perturbed; ++k)
    for (int j = 0; j < g.ny() && !perturbed; ++j)
      for (int i = 0; i < g.nx() && !perturbed; ++i)
        perturbed = std::abs(float(batched.state()[3](i, j, k))) > 1e-6f;
  ASSERT_TRUE(perturbed);

  expect_state_bitwise_equal(batched, scalar);
}

TEST(MixedPrecisionStep, BatchTogglePreservesCflDtBitwise) {
  auto batched = make_jet_solver(/*batch=*/true);
  auto scalar = make_jet_solver(/*batch=*/false);
  batched.step_fixed(2e-4);
  scalar.step_fixed(2e-4);
  const double dt_batched =
      igr::fv::compute_dt(batched.state(), batched.grid(), batched.eos(),
                          batched.config(), &batched.sigma());
  const double dt_scalar =
      igr::fv::compute_dt(scalar.state(), scalar.grid(), scalar.eos(),
                          scalar.config(), &scalar.sigma());
  ASSERT_EQ(dt_batched, dt_scalar);
}

TEST(MixedPrecisionStep, AdaptiveSteppingAgreesBitwise) {
  // The full production entry point (CFL-limited step()) composes the CFL
  // scan, Sigma solve, flux sweeps, and RK update; one adaptive step must
  // agree bitwise end to end, dt included.
  auto batched = make_jet_solver(/*batch=*/true);
  auto scalar = make_jet_solver(/*batch=*/false);
  const double dta = batched.step();
  const double dtb = scalar.step();
  ASSERT_EQ(dta, dtb);
  expect_state_bitwise_equal(batched, scalar);
}

}  // namespace
