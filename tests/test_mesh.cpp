/// Unit tests for the grid and domain decomposition.

#include <gtest/gtest.h>

#include <set>

#include "mesh/decomp.hpp"
#include "mesh/grid.hpp"

namespace {

using igr::mesh::Decomp;
using igr::mesh::Face;
using igr::mesh::Grid;

TEST(Grid, CellCentersAndSpacing) {
  Grid g(10, 20, 40, {0.0, 1.0}, {0.0, 2.0}, {-1.0, 1.0});
  EXPECT_DOUBLE_EQ(g.dx(), 0.1);
  EXPECT_DOUBLE_EQ(g.dy(), 0.1);
  EXPECT_DOUBLE_EQ(g.dz(), 0.05);
  EXPECT_DOUBLE_EQ(g.x(0), 0.05);
  EXPECT_DOUBLE_EQ(g.y(19), 1.95);
  EXPECT_DOUBLE_EQ(g.z(0), -0.975);
  EXPECT_EQ(g.cells(), 8000u);
}

TEST(Grid, CubeFactory) {
  const auto g = Grid::cube(16);
  EXPECT_EQ(g.nx(), 16);
  EXPECT_DOUBLE_EQ(g.dx(), 1.0 / 16);
  EXPECT_DOUBLE_EQ(g.min_dx(), 1.0 / 16);
}

TEST(Grid, RejectsBadExtents) {
  EXPECT_THROW(Grid(4, 4, 4, {1.0, 0.0}, {0.0, 1.0}, {0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(Grid(0, 4, 4, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}),
               std::invalid_argument);
}

TEST(Grid, MinDxPicksSmallest) {
  Grid g(10, 10, 100, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(g.min_dx(), 0.01);
}

TEST(Decomp, BlocksTileTheGrid) {
  const auto g = Grid::cube(17);  // deliberately indivisible
  Decomp d(g, 3, 2, 2);
  std::set<std::array<int, 3>> covered;
  std::size_t total = 0;
  for (int r = 0; r < d.ranks(); ++r) {
    const auto b = d.block(r);
    total += static_cast<std::size_t>(b.n[0]) * b.n[1] * b.n[2];
    EXPECT_GT(b.n[0], 0);
  }
  EXPECT_EQ(total, g.cells());
}

TEST(Decomp, RankCoordsRoundTrip) {
  const auto g = Grid::cube(16);
  Decomp d(g, 2, 3, 4);
  for (int r = 0; r < d.ranks(); ++r) {
    const auto c = d.coords_of(r);
    EXPECT_EQ(d.rank_of(c[0], c[1], c[2]), r);
  }
}

TEST(Decomp, PeriodicNeighborsWrap) {
  const auto g = Grid::cube(16);
  Decomp d(g, 2, 2, 2, /*periodic=*/true);
  // Rank 0 is at (0,0,0); its x-low neighbor wraps to (1,0,0) = rank 1.
  EXPECT_EQ(d.neighbor(0, Face::kXLo), 1);
  EXPECT_EQ(d.neighbor(0, Face::kXHi), 1);
  EXPECT_EQ(d.neighbor(0, Face::kYLo), 2);
  EXPECT_EQ(d.neighbor(0, Face::kZLo), 4);
}

TEST(Decomp, NonPeriodicBoundaryHasNoNeighbor) {
  const auto g = Grid::cube(16);
  Decomp d(g, 2, 2, 2, /*periodic=*/false);
  EXPECT_EQ(d.neighbor(0, Face::kXLo), -1);
  EXPECT_EQ(d.neighbor(0, Face::kXHi), 1);
}

TEST(Decomp, NeighborsAreMutual) {
  const auto g = Grid::cube(12);
  Decomp d(g, 3, 2, 2, true);
  for (int r = 0; r < d.ranks(); ++r) {
    for (int f = 0; f < igr::mesh::kNumFaces; ++f) {
      const auto face = static_cast<Face>(f);
      const int nb = d.neighbor(r, face);
      ASSERT_GE(nb, 0);
      EXPECT_EQ(d.neighbor(nb, igr::mesh::opposite(face)), r);
    }
  }
}

TEST(Decomp, HaloCellsMatchFaceArea) {
  const auto g = Grid::cube(12);
  Decomp d(g, 2, 2, 2, true);
  // 6x6x6 local blocks, 3 ghost layers: x-face halo = 6*6*3.
  EXPECT_EQ(d.halo_cells(0, Face::kXLo, 3), 108u);
}

TEST(Decomp, UnevenSplitFavorsLowRanks) {
  const auto g = Grid(7, 4, 4, {0, 1}, {0, 1}, {0, 1});
  Decomp d(g, 2, 1, 1);
  EXPECT_EQ(d.block(0).n[0], 4);
  EXPECT_EQ(d.block(1).n[0], 3);
  EXPECT_EQ(d.block(1).lo[0], 4);
}

TEST(Decomp, RejectsOverDecomposition) {
  const auto g = Grid::cube(4);
  EXPECT_THROW(Decomp(g, 8, 1, 1), std::invalid_argument);
}

TEST(Decomp, BalancedLayoutFactorizes) {
  EXPECT_EQ(Decomp::balanced_layout(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(Decomp::balanced_layout(12), (std::array<int, 3>{3, 2, 2}));
  EXPECT_EQ(Decomp::balanced_layout(1), (std::array<int, 3>{1, 1, 1}));
  const auto l64 = Decomp::balanced_layout(64);
  EXPECT_EQ(l64[0] * l64[1] * l64[2], 64);
  EXPECT_EQ(l64, (std::array<int, 3>{4, 4, 4}));
}

TEST(Grid, WindowSharesSpacingAndCellCentersBitwise) {
  // 12 cells on [0,1]: dx = 1/12 is not exactly representable, so any
  // recomputation of spacing or origin from extents rounds differently.
  // A window must reproduce the parent's spacing and cell centers bitwise
  // — decomposed-vs-single-domain equivalence rests on it.
  const auto g = Grid::cube(12);
  const auto w = Grid::window(g, {5, 0, 7}, {4, 12, 5});
  EXPECT_EQ(w.dx(), g.dx());
  EXPECT_EQ(w.min_dx(), g.min_dx());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(w.x(i), g.x(5 + i));
  for (int j = 0; j < 12; ++j) EXPECT_EQ(w.y(j), g.y(j));
  for (int k = 0; k < 5; ++k) EXPECT_EQ(w.z(k), g.z(7 + k));
  EXPECT_EQ(w.nx(), 4);
  // Windows of windows chain the index offsets.
  const auto w2 = Grid::window(w, {2, 1, 0}, {2, 3, 5});
  EXPECT_EQ(w2.x(0), g.x(7));
  EXPECT_THROW(Grid::window(g, {10, 0, 0}, {4, 1, 1}), std::invalid_argument);
}

TEST(Decomp, OwnerCoordInvertsTheSplit) {
  const auto g = Grid(13, 4, 4, {0, 1}, {0, 1}, {0, 1});
  Decomp d(g, 5, 1, 1);  // 3,3,3,2,2
  for (int c = 0; c < 5; ++c) {
    const auto b = d.block(d.rank_of(c, 0, 0));
    for (int i = 0; i < b.n[0]; ++i)
      EXPECT_EQ(d.owner_coord(0, b.lo[0] + i), c);
  }
  EXPECT_THROW(static_cast<void>(d.owner_coord(0, 13)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(d.owner_coord(0, -1)),
               std::invalid_argument);
}

TEST(Decomp, OppositeFaces) {
  using igr::mesh::opposite;
  EXPECT_EQ(opposite(Face::kXLo), Face::kXHi);
  EXPECT_EQ(opposite(Face::kYHi), Face::kYLo);
  EXPECT_EQ(opposite(Face::kZLo), Face::kZHi);
}

}  // namespace
