/// Transport-seam tests: the TCP loopback backend against the in-process
/// reference.  Every endpoint of a "multi-process" team here is a thread of
/// THIS process running its own CaseRun over a real socket fabric — full
/// rendezvous, framing, heartbeats and collectives are exercised, while the
/// sanitizers can still see both sides of every exchange (fork would hide
/// the children from ASan/TSan).  True process isolation — SIGKILL and all —
/// is tests/test_net.cpp's job.
///
/// The acceptance bar is bitwise: for every covered case, precision, and
/// wire width, the TCP team must reproduce the in-process team's state
/// fingerprint AND its per-step dt trajectory hash exactly.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cases/runner.hpp"
#include "sim/comm.hpp"
#include "sim/transport.hpp"

namespace {

namespace fs = std::filesystem;
using namespace igr;

/// Fresh rendezvous directory per team (port files land here).
fs::path scratch_dir(const std::string& name) {
  const fs::path d = fs::temp_directory_path() / ("igr_transport_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

/// What one TCP team run produced: rank 0's full result plus every rank's
/// dt hash (the dt allreduce makes them identical by contract — asserting
/// that catches a rank silently diverging from the collective schedule).
struct TeamResult {
  cases::RunResult root{};
  std::vector<std::uint64_t> dt_fnv;
  std::vector<std::string> errors;  ///< One slot per rank; empty = clean.
};

template <class Policy>
TeamResult run_tcp_team(const cases::CaseSpec& spec,
                        const cases::RunOptions& base, int world,
                        const fs::path& dir) {
  TeamResult tr;
  tr.dt_fnv.assign(static_cast<std::size_t>(world), 0);
  tr.errors.assign(static_cast<std::size_t>(world), "");
  std::mutex mu;
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    team.emplace_back([&, r] {
      try {
        cases::RunOptions opts = base;
        opts.transport.kind = sim::TransportSpec::Kind::kTcp;
        opts.transport.world = world;
        opts.transport.rank = r;
        opts.transport.dir = dir.string();
        cases::CaseRun<Policy> run(spec, opts);
        const auto res = run.run();
        std::lock_guard<std::mutex> lock(mu);
        tr.dt_fnv[static_cast<std::size_t>(r)] = res.dt_fnv;
        if (r == 0) tr.root = res;
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu);
        tr.errors[static_cast<std::size_t>(r)] = e.what();
      }
    });
  }
  for (auto& t : team) t.join();
  return tr;
}

/// Run `opts` once in-process and once as a TCP team, assert bitwise
/// equality of the state fingerprint and the dt trajectory.
template <class Policy>
void expect_tcp_bitwise(const char* case_name, cases::RunOptions opts,
                        int world, const std::string& tag) {
  const auto* spec = cases::find(case_name);
  ASSERT_NE(spec, nullptr);
  opts.threads = 1;  // world x ranks threads already; don't oversubscribe
  opts.comm_timeout_s = 60.0;

  const auto ref = cases::run_case<Policy>(*spec, opts);
  const auto dir = scratch_dir(tag);
  const auto tcp = run_tcp_team<Policy>(*spec, opts, world, dir);
  for (int r = 0; r < world; ++r)
    EXPECT_EQ(tcp.errors[static_cast<std::size_t>(r)], "") << "rank " << r;

  EXPECT_EQ(tcp.root.steps, ref.steps);
  EXPECT_EQ(tcp.root.state_fnv, ref.state_fnv)
      << "tcp state diverged from inproc";
  EXPECT_EQ(tcp.root.dt_fnv, ref.dt_fnv) << "tcp dt trajectory diverged";
  // Every process of the team hashed the same dt sequence (allreduce).
  for (int r = 1; r < world; ++r)
    EXPECT_EQ(tcp.dt_fnv[static_cast<std::size_t>(r)], tcp.dt_fnv[0])
        << "rank " << r;
  fs::remove_all(dir);
}

// --- TransportSpec ---------------------------------------------------------

TEST(TransportSpec, KindParsesAndRejects) {
  EXPECT_EQ(sim::TransportSpec::parse_kind("inproc"),
            sim::TransportSpec::Kind::kInProc);
  EXPECT_EQ(sim::TransportSpec::parse_kind("tcp"),
            sim::TransportSpec::Kind::kTcp);
  EXPECT_THROW(sim::TransportSpec::parse_kind("rdma"), std::invalid_argument);
  sim::TransportSpec s;
  EXPECT_STREQ(s.kind_name(), "inproc");
  s.kind = sim::TransportSpec::Kind::kTcp;
  EXPECT_STREQ(s.kind_name(), "tcp");
}

// --- Raw fabric: publish/acquire, collectives, blobs, liveness -------------

sim::TransportSpec pair_spec(int rank, const fs::path& dir) {
  sim::TransportSpec s;
  s.kind = sim::TransportSpec::Kind::kTcp;
  s.world = 2;
  s.rank = rank;
  s.dir = dir.string();
  s.connect_timeout_s = 30.0;
  return s;
}

constexpr std::size_t kPairSlots = 3 * 3 * 2;  // channels x axes x world

TEST(TcpFabric, PublishAcquireCollectivesAndBlobs) {
  const auto dir = scratch_dir("fabric");
  // Rank 1's axis-0 slabs are read by rank 0; nothing else moves.
  std::array<std::vector<int>, 3> readers_of_1{{{0}, {}, {}}};
  std::array<std::vector<int>, 3> readers_of_0{{{}, {}, {}}};
  std::vector<std::string> errors(2);

  auto rank0 = [&] {
    try {
      auto t = sim::make_tcp_transport(pair_spec(0, dir), kPairSlots,
                                       readers_of_0);
      t->set_wait_timeout(30.0);
      // slot(channel 0, axis 0, src 1) = (0*3+0)*2 + 1
      const unsigned char* p = t->acquire(1, 1, /*src_rank=*/1);
      ASSERT_NE(p, nullptr) << t->abort_reason();
      EXPECT_EQ(p[0], 0xABu);
      EXPECT_EQ(p[3], 0x04u);

      EXPECT_DOUBLE_EQ(t->allreduce_min(2.5), -1.0);
      EXPECT_DOUBLE_EQ(t->allreduce_sum(2.5), 1.5);
      t->barrier();
      const auto blob = t->recv_blob(1, /*tag=*/7);
      ASSERT_EQ(blob.size(), 3u);
      EXPECT_EQ(blob[2], 0x33u);
      t->barrier();
    } catch (const std::exception& e) {
      errors[0] = e.what();
    }
  };
  auto rank1 = [&] {
    try {
      auto t = sim::make_tcp_transport(pair_spec(1, dir), kPairSlots,
                                       readers_of_1);
      t->set_wait_timeout(30.0);
      auto& buf = t->send_buffer(1);
      buf = {0xAB, 0x00, 0x00, 0x04};
      t->publish(1);

      EXPECT_DOUBLE_EQ(t->allreduce_min(-1.0), -1.0);
      EXPECT_DOUBLE_EQ(t->allreduce_sum(-1.0), 1.5);
      t->barrier();
      const unsigned char payload[3] = {0x11, 0x22, 0x33};
      t->send_blob(0, /*tag=*/7, payload, sizeof payload);
      t->barrier();
    } catch (const std::exception& e) {
      errors[1] = e.what();
    }
  };
  std::thread t1(rank1), t0(rank0);
  t0.join();
  t1.join();
  EXPECT_EQ(errors[0], "");
  EXPECT_EQ(errors[1], "");
  fs::remove_all(dir);
}

TEST(TcpFabric, WaitTimeoutLatchesAPreciseReason) {
  const auto dir = scratch_dir("timeout");
  std::array<std::vector<int>, 3> no_readers{{{}, {}, {}}};
  std::string reason;
  bool got_null = false;

  auto rank0 = [&] {
    auto t = sim::make_tcp_transport(pair_spec(0, dir), kPairSlots,
                                     no_readers);
    t->set_wait_timeout(0.4);
    // Rank 1 is alive (heartbeating) but never publishes: the bounded wait
    // must expire with a reason naming the peer, not hang.
    const unsigned char* p = t->acquire(1, 1, /*src_rank=*/1);
    got_null = (p == nullptr);
    reason = t->abort_reason();
  };
  auto rank1 = [&] {
    auto t = sim::make_tcp_transport(pair_spec(1, dir), kPairSlots,
                                     no_readers);
    // Stay alive until rank 0 has timed out (its abort poisons us too, via
    // the broadcast kAbort frame; destruction is then orderly).
    for (int i = 0; i < 100 && !t->aborted(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  std::thread t1(rank1), t0(rank0);
  t0.join();
  t1.join();
  EXPECT_TRUE(got_null);
  EXPECT_NE(reason.find("from rank 1 exceeded"), std::string::npos) << reason;
  fs::remove_all(dir);
}

TEST(TcpFabric, PeerGoodbyeDuringAWaitIsASchedulingError) {
  const auto dir = scratch_dir("goodbye");
  std::array<std::vector<int>, 3> no_readers{{{}, {}, {}}};
  std::string reason;

  auto rank0 = [&] {
    auto t = sim::make_tcp_transport(pair_spec(0, dir), kPairSlots,
                                     no_readers);
    t->set_wait_timeout(30.0);
    t->barrier();
    // Rank 1 exits cleanly after the barrier; a wait on it must classify
    // the loss as an orderly-exit schedule mismatch, not a process death.
    (void)t->acquire(1, 1, /*src_rank=*/1);
    reason = t->abort_reason();
  };
  auto rank1 = [&] {
    auto t = sim::make_tcp_transport(pair_spec(1, dir), kPairSlots,
                                     no_readers);
    t->set_wait_timeout(30.0);
    t->barrier();
    // Destructor sends the goodbye.
  };
  std::thread t1(rank1), t0(rank0);
  t0.join();
  t1.join();
  EXPECT_NE(reason.find("rank 1 exited before"), std::string::npos) << reason;
  fs::remove_all(dir);
}

TEST(TcpFabric, MissedHeartbeatsDeclareAWedgedPeerDead) {
  const auto dir = scratch_dir("liveness");
  std::array<std::vector<int>, 3> no_readers{{{}, {}, {}}};
  std::string reason;

  auto rank0 = [&] {
    auto spec = pair_spec(0, dir);
    spec.liveness_timeout_s = 0.4;  // declare silence fatal quickly
    auto t = sim::make_tcp_transport(spec, kPairSlots, no_readers);
    t->set_wait_timeout(0.0);  // no wall bound: liveness must trigger alone
    (void)t->acquire(1, 1, /*src_rank=*/1);
    reason = t->abort_reason();
  };
  auto rank1 = [&] {
    auto spec = pair_spec(1, dir);
    spec.heartbeat_period_s = 3600.0;  // a wedged rank: alive but silent
    auto t = sim::make_tcp_transport(spec, kPairSlots, no_readers);
    for (int i = 0; i < 200 && !t->aborted(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  std::thread t1(rank1), t0(rank0);
  t0.join();
  t1.join();
  EXPECT_NE(reason.find("missed heartbeats"), std::string::npos) << reason;
  fs::remove_all(dir);
}

// --- Bitwise equivalence: TCP team vs in-process team ----------------------

TEST(TcpBitwise, SodXFp64FullWire) {
  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 10;
  opts.ranks = {2, 1, 1};
  expect_tcp_bitwise<common::Fp64>("sod-x", opts, 2, "sod_full");
}

TEST(TcpBitwise, SodXFp64HalfWire) {
  cases::RunOptions opts;
  opts.n = 16;
  opts.steps = 10;
  opts.ranks = {2, 1, 1};
  opts.halo_wire = sim::Comm::WirePrecision::kHalf;
  expect_tcp_bitwise<common::Fp64>("sod-x", opts, 2, "sod_half");
}

TEST(TcpBitwise, TaylorGreenFp16x32) {
  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 8;
  opts.ranks = {2, 1, 1};
  expect_tcp_bitwise<common::Fp16x32>("taylor-green", opts, 2, "tg_fp16");
}

TEST(TcpBitwise, TaylorGreenBf16x32HalfWire) {
  // kHalf is a bitwise no-op for 16-bit storage by contract — assert the
  // no-op holds across a real socket fabric too.
  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 8;
  opts.ranks = {2, 1, 1};
  opts.halo_wire = sim::Comm::WirePrecision::kHalf;
  expect_tcp_bitwise<common::Bf16x32>("taylor-green", opts, 2, "tg_bf16");
}

TEST(TcpBitwise, TaylorGreenFourProcessPlane) {
  // A 2x2 plane: interior corners give every rank two exchange partners,
  // exercising multi-peer reader sets and the four-way collectives.
  cases::RunOptions opts;
  opts.n = 12;
  opts.steps = 6;
  opts.ranks = {2, 2, 1};
  opts.jacobi_sweeps = true;
  expect_tcp_bitwise<common::Fp64>("taylor-green", opts, 4, "tg_2x2");
}

}  // namespace
