/// Tests for the 3-D IGR solver — the paper's primary contribution.

#include <gtest/gtest.h>

#include <cmath>

#include "common/precision.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/exact_riemann.hpp"

namespace {

using igr::common::Fp16x32;
using igr::common::Fp32;
using igr::common::Fp64;
using igr::common::kNumVars;
using igr::common::Prim;
using igr::common::SolverConfig;
using igr::core::IgrSolver3D;
using igr::fv::BcSpec;
using igr::mesh::Grid;

SolverConfig default_cfg() {
  SolverConfig cfg;
  cfg.alpha_factor = 5.0;
  cfg.sigma_sweeps = 5;
  return cfg;
}

TEST(Igr3D, ConstantStateIsExactlySteady) {
  IgrSolver3D<Fp64> s(Grid::cube(12), default_cfg(), BcSpec::all_periodic());
  s.init([](double, double, double) {
    return Prim<double>{1.3, 0.2, -0.4, 0.6, 0.9};
  });
  for (int i = 0; i < 5; ++i) s.step();
  const auto& q = s.state();
  for (int k = 0; k < 12; ++k)
    for (int j = 0; j < 12; ++j)
      for (int i = 0; i < 12; ++i) {
        EXPECT_NEAR(q[0](i, j, k), 1.3, 1e-13);
      }
}

TEST(Igr3D, PeriodicConservation) {
  IgrSolver3D<Fp64> s(Grid::cube(16), default_cfg(), BcSpec::all_periodic());
  s.init([](double x, double y, double z) {
    Prim<double> w;
    w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.u = 0.4 * std::sin(2 * M_PI * z);
    w.v = -0.2;
    w.w = 0.1 * std::cos(2 * M_PI * x);
    w.p = 1.0 + 0.2 * std::cos(2 * M_PI * z);
    return w;
  });
  const auto before = s.conserved_totals();
  for (int i = 0; i < 10; ++i) s.step();
  const auto after = s.conserved_totals();
  for (int c = 0; c < kNumVars; ++c) {
    EXPECT_NEAR(after[c], before[c],
                1e-11 * (std::abs(before[c]) + 1.0))
        << "component " << c;
  }
}

TEST(Igr3D, ViscousTermsConserveMassAndMomentum) {
  auto cfg = default_cfg();
  cfg.mu = 0.01;
  cfg.zeta = 0.005;
  IgrSolver3D<Fp64> s(Grid::cube(12), cfg, BcSpec::all_periodic());
  s.init([](double x, double y, double) {
    Prim<double> w;
    w.rho = 1.0;
    w.u = 0.3 * std::sin(2 * M_PI * y);
    w.v = 0.2 * std::sin(2 * M_PI * x);
    w.p = 1.0;
    return w;
  });
  const auto before = s.conserved_totals();
  for (int i = 0; i < 5; ++i) s.step();
  const auto after = s.conserved_totals();
  EXPECT_NEAR(after.rho, before.rho, 1e-12);
  EXPECT_NEAR(after.mx, before.mx, 1e-12);
  EXPECT_NEAR(after.e, before.e, 1e-11);  // total E conserved (work<->heat)
}

TEST(Igr3D, ViscosityDecaysShearKineticEnergy) {
  auto cfg = default_cfg();
  cfg.mu = 0.05;
  cfg.alpha_factor = 0.0;  // isolate the viscous physics
  cfg.sigma_sweeps = 0;
  IgrSolver3D<Fp64> s(Grid::cube(16), cfg, BcSpec::all_periodic());
  s.init([](double, double y, double) {
    Prim<double> w;
    w.rho = 1.0;
    w.u = 0.3 * std::sin(2 * M_PI * y);
    w.p = 10.0;  // nearly incompressible regime
    return w;
  });
  auto ke = [&]() {
    double sum = 0;
    const auto& q = s.state();
    for (int k = 0; k < 16; ++k)
      for (int j = 0; j < 16; ++j)
        for (int i = 0; i < 16; ++i) {
          const double r = q[0](i, j, k);
          const double mx = q[1](i, j, k);
          sum += 0.5 * mx * mx / r;
        }
    return sum;
  };
  const double before = ke();
  for (int i = 0; i < 20; ++i) s.step();
  EXPECT_LT(ke(), 0.9 * before);
}

TEST(Igr3D, MatchesExactRiemannOnSodAlongX) {
  // 1-D Sod tube embedded in 3-D (uniform in y,z).  Jacobi sweeps keep the
  // Sigma field exactly symmetric in the transverse directions (Gauss–
  // Seidel's lexicographic ordering breaks that symmetry at the iteration-
  // error level).
  auto cfg = default_cfg();
  cfg.cfl = 0.35;
  cfg.sigma_gauss_seidel = false;
  BcSpec bc;
  bc.kind = {igr::fv::BcKind::kOutflow,  igr::fv::BcKind::kOutflow,
             igr::fv::BcKind::kPeriodic, igr::fv::BcKind::kPeriodic,
             igr::fv::BcKind::kPeriodic, igr::fv::BcKind::kPeriodic};
  Grid g(128, 4, 4, {0.0, 1.0}, {0.0, 0.05}, {0.0, 0.05});
  IgrSolver3D<Fp64> s(g, cfg, bc);
  s.init([](double x, double, double) {
    Prim<double> w;
    if (x < 0.5) {
      w.rho = 1.0;
      w.p = 1.0;
    } else {
      w.rho = 0.125;
      w.p = 0.1;
    }
    return w;
  });
  while (s.time() < 0.2) s.step();
  igr::fv::ExactRiemann ex(igr::fv::sod_left(), igr::fv::sod_right(), 1.4);
  const auto ref = ex.sample_profile(128, 0.0, 1.0, 0.5, s.time());
  double l1 = 0;
  for (int i = 0; i < 128; ++i)
    l1 += std::abs(static_cast<double>(s.state()[0](i, 2, 2)) -
                   ref[static_cast<std::size_t>(i)].rho) *
          g.dx();
  EXPECT_LT(l1, 0.05);
  // And the solution stays uniform in the transverse directions.
  EXPECT_NEAR(s.state()[0](64, 1, 1), s.state()[0](64, 3, 3), 1e-12);
}

TEST(Igr3D, SigmaPositiveAtCompressionFront) {
  auto cfg = default_cfg();
  BcSpec bc = BcSpec::all_outflow();
  Grid g(64, 4, 4, {0.0, 1.0}, {0.0, 0.0625}, {0.0, 0.0625});
  IgrSolver3D<Fp64> s(g, cfg, bc);
  s.init([](double x, double, double) {
    Prim<double> w;
    w.rho = x < 0.5 ? 1.0 : 0.125;
    w.p = x < 0.5 ? 1.0 : 0.1;
    return w;
  });
  for (int i = 0; i < 20; ++i) s.step();
  double smax = 0;
  for (int i = 0; i < 64; ++i)
    smax = std::max(smax, static_cast<double>(s.sigma()(i, 2, 2)));
  EXPECT_GT(smax, 1e-8);
}

TEST(Igr3D, StorageAccountingMatchesPaper) {
  // §5.2 accounts 17N on GPU (reciprocals recomputed in registers); the CPU
  // implementation adds one reciprocal-density scratch field: 18N with
  // Gauss-Seidel, +1N more with Jacobi.  The paper-facing footprint model
  // (core::igr_footprint) remains 17N.
  auto cfg = default_cfg();
  IgrSolver3D<Fp64> gs(Grid::cube(8), cfg, BcSpec::all_periodic());
  EXPECT_DOUBLE_EQ(gs.storage_per_cell(), 18.0);
  cfg.sigma_gauss_seidel = false;
  IgrSolver3D<Fp64> jac(Grid::cube(8), cfg, BcSpec::all_periodic());
  EXPECT_DOUBLE_EQ(jac.storage_per_cell(), 19.0);
  EXPECT_GT(jac.memory_bytes(), gs.memory_bytes());
}

TEST(Igr3D, AlphaScalesWithMinDxSquared) {
  auto cfg = default_cfg();
  cfg.alpha_factor = 3.0;
  IgrSolver3D<Fp64> a(Grid::cube(16), cfg, BcSpec::all_periodic());
  IgrSolver3D<Fp64> b(Grid::cube(32), cfg, BcSpec::all_periodic());
  EXPECT_NEAR(a.alpha() / b.alpha(), 4.0, 1e-12);
}

TEST(Igr3D, JacobiAndGaussSeidelAgreeOnSmoothFlow) {
  auto run = [&](bool gs) {
    auto cfg = default_cfg();
    cfg.sigma_gauss_seidel = gs;
    cfg.sigma_sweeps = 20;  // converge both tightly
    IgrSolver3D<Fp64> s(Grid::cube(12), cfg, BcSpec::all_periodic());
    s.init([](double x, double, double) {
      Prim<double> w;
      w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x);
      w.u = 0.3 * std::cos(2 * M_PI * x);
      w.p = 1.0;
      return w;
    });
    for (int i = 0; i < 3; ++i) s.step_fixed(1e-3);
    return s;
  };
  auto a = run(true);
  auto b = run(false);
  // The two iterations agree to their (well-conditioned) iteration error.
  for (int k = 0; k < 12; ++k)
    for (int j = 0; j < 12; ++j)
      for (int i = 0; i < 12; ++i)
        EXPECT_NEAR(a.state()[0](i, j, k), b.state()[0](i, j, k), 1e-5);
}

template <class Policy>
class Igr3DPrecision : public ::testing::Test {};

using Policies = ::testing::Types<Fp64, Fp32, Fp16x32>;
TYPED_TEST_SUITE(Igr3DPrecision, Policies);

TYPED_TEST(Igr3DPrecision, RunsStablyOnSmoothFlow) {
  auto cfg = default_cfg();
  IgrSolver3D<TypeParam> s(Grid::cube(12), cfg, BcSpec::all_periodic());
  s.init([](double x, double y, double z) {
    igr::common::Prim<double> w;
    w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x);
    w.u = 0.3 * std::sin(2 * M_PI * y);
    w.v = 0.1 * std::cos(2 * M_PI * z);
    w.p = 1.0;
    return w;
  });
  for (int i = 0; i < 10; ++i) s.step();
  const auto& q = s.state();
  for (int k = 0; k < 12; ++k)
    for (int j = 0; j < 12; ++j)
      for (int i = 0; i < 12; ++i) {
        const double rho = static_cast<double>(q[0](i, j, k));
        ASSERT_TRUE(std::isfinite(rho));
        ASSERT_GT(rho, 0.3);
        ASSERT_LT(rho, 3.0);
      }
}

TYPED_TEST(Igr3DPrecision, HandlesShockTube) {
  auto cfg = default_cfg();
  cfg.cfl = 0.3;
  igr::fv::BcSpec bc = igr::fv::BcSpec::all_outflow();
  Grid g(64, 4, 4, {0.0, 1.0}, {0.0, 0.0625}, {0.0, 0.0625});
  IgrSolver3D<TypeParam> s(g, cfg, bc);
  s.init([](double x, double, double) {
    igr::common::Prim<double> w;
    w.rho = x < 0.5 ? 1.0 : 0.125;
    w.p = x < 0.5 ? 1.0 : 0.1;
    return w;
  });
  for (int i = 0; i < 40; ++i) s.step();
  for (int i = 0; i < 64; ++i) {
    const double rho = static_cast<double>(s.state()[0](i, 2, 2));
    ASSERT_TRUE(std::isfinite(rho)) << "cell " << i;
    ASSERT_GT(rho, 0.0);
  }
}

TEST(Igr3D, GrindTimerCountsSteps) {
  IgrSolver3D<Fp64> s(Grid::cube(8), default_cfg(), BcSpec::all_periodic());
  s.init([](double, double, double) { return Prim<double>{1, 0, 0, 0, 1}; });
  for (int i = 0; i < 3; ++i) s.step();
  EXPECT_EQ(s.grind_timer().steps(), 3u);
  EXPECT_GT(s.grind_timer().grind_ns(), 0.0);
}

}  // namespace
