/// \file igr_launch.cpp
/// Process launcher for multi-process (tcp-transport) runs: spawn one OS
/// process per rank, hand the team a shared rendezvous directory, and
/// supervise.
///
///   $ ./igr_launch --world 2 -- ./run_case --case sod-x --ranks 2,1,1 \
///         --steps 20 --json out.json
///
/// Each rank is the command after `--` plus the transport flags
/// (`--transport tcp --tp-rank R --tp-world N --tp-dir DIR`) appended by the
/// launcher.  Supervision implements the recovery contract of the
/// fault-tolerance layer:
///
///   - exit 0 from every rank        -> exit 0.
///   - exit 75 (EX_TEMPFAIL) or a    -> the loss is *retryable*: SIGKILL the
///     signal death from any rank       survivors, reap everyone, and respawn
///                                      the full team with `--resume` into a
///                                      FRESH rendezvous directory (stale
///                                      port files of a dead team must never
///                                      be dialed), at most --max-respawns
///                                      times.  `--inject ...` is stripped
///                                      from respawned commands so a planned
///                                      fault does not re-fire.
///   - any other nonzero exit        -> fatal: kill the team and propagate
///                                      that exact exit code (a bad flag or
///                                      unknown case must fail CI, not loop).
///
/// The respawned team re-forms on the surviving layout's checkpoint state:
/// `--resume` makes the guarded runner restore the newest CRC-valid manifest
/// entry, so the campaign continues bitwise from the last durable save.

#if defined(__unix__) || defined(__APPLE__)

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/telemetry.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: igr_launch --world N [--dir DIR] [--max-respawns K]\n"
               "                  [--report FILE] -- COMMAND [ARGS...]\n"
               "  Spawns N processes of COMMAND with tcp-transport flags\n"
               "  appended; respawns the team (with --resume, --inject\n"
               "  stripped) on a retryable loss (exit 75 or signal death).\n"
               "  --report writes a machine-readable JSON exit report\n"
               "  (attempts, per-attempt loss reason, respawns, final exit);\n"
               "  if COMMAND carries --trace FILE, supervisor lifecycle\n"
               "  events (spawn, loss, respawn) are appended to that trace.\n");
  std::exit(code);
}

struct Child {
  pid_t pid = -1;
  int rank = -1;
};

/// Outcome of one team attempt.
struct Attempt {
  bool ok = false;         ///< Every rank exited 0.
  bool retryable = false;  ///< Some rank exited 75 or died on a signal.
  int fatal_code = 0;      ///< First non-retryable nonzero exit (0: none).
  std::string why;         ///< Human-readable first failure.
};

void kill_team(std::vector<Child>& team) {
  for (auto& c : team)
    if (c.pid > 0) ::kill(c.pid, SIGKILL);
  for (auto& c : team) {
    if (c.pid <= 0) continue;
    int status = 0;
    while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
    }
    c.pid = -1;
  }
}

pid_t spawn(const std::vector<std::string>& argv_s) {
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (const auto& a : argv_s) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "igr_launch: exec %s failed: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

/// Run one full-team attempt; blocks until every rank is reaped.  The first
/// failed rank decides the verdict and the rest of the team is killed — a
/// survivor blocked in a halo wait on the dead peer would otherwise hold
/// the attempt open until its own timeout.
Attempt run_attempt(const std::vector<std::string>& base_cmd, int world,
                    const std::string& dir) {
  std::vector<Child> team;
  team.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    std::vector<std::string> cmd = base_cmd;
    cmd.insert(cmd.end(),
               {"--transport", "tcp", "--tp-rank", std::to_string(r),
                "--tp-world", std::to_string(world), "--tp-dir", dir});
    const pid_t pid = spawn(cmd);
    if (pid < 0) {
      Attempt a;
      a.fatal_code = 1;
      a.why = "fork failed: " + std::string(std::strerror(errno));
      kill_team(team);
      return a;
    }
    team.push_back({pid, r});
  }

  Attempt a;
  int live = world;
  while (live > 0) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      a.fatal_code = 1;
      a.why = "waitpid failed: " + std::string(std::strerror(errno));
      break;
    }
    int rank = -1;
    for (auto& c : team) {
      if (c.pid == pid) {
        c.pid = -1;
        rank = c.rank;
        break;
      }
    }
    if (rank < 0) continue;  // not ours (shouldn't happen)
    --live;

    if (WIFSIGNALED(status)) {
      a.retryable = true;
      a.why = "rank " + std::to_string(rank) + " killed by signal " +
              std::to_string(WTERMSIG(status));
      break;
    }
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    if (code == 0) continue;
    if (code == 75) {  // EX_TEMPFAIL: the rank asked for a respawn
      a.retryable = true;
      a.why = "rank " + std::to_string(rank) + " exited 75 (retryable)";
    } else {
      a.fatal_code = code;
      a.why = "rank " + std::to_string(rank) + " exited " +
              std::to_string(code);
    }
    break;
  }
  kill_team(team);
  a.ok = !a.retryable && a.fatal_code == 0 && live == 0;
  return a;
}

/// Drop `--inject <spec>` from a respawned command: the planned fault
/// already fired (that is why we are respawning) and must not re-fire.
std::vector<std::string> strip_inject(const std::vector<std::string>& cmd) {
  std::vector<std::string> out;
  out.reserve(cmd.size());
  for (std::size_t i = 0; i < cmd.size(); ++i) {
    if (cmd[i] == "--inject") {
      ++i;  // skip the spec too
      continue;
    }
    out.push_back(cmd[i]);
  }
  return out;
}

bool has_flag(const std::vector<std::string>& cmd, const char* flag) {
  for (const auto& a : cmd)
    if (a == flag) return true;
  return false;
}

/// Value of `--trace FILE` in the child command, if any — the launcher
/// appends its lifecycle events to the team's merged trace.
std::string trace_path_of(const std::vector<std::string>& cmd) {
  for (std::size_t i = 0; i + 1 < cmd.size(); ++i)
    if (cmd[i] == "--trace") return cmd[i + 1];
  return {};
}

/// One team attempt, with the supervisor-side wall clock around it.
struct AttemptLog {
  Attempt a;
  double t0_us = 0.0;  ///< system_clock µs at spawn (Chrome `ts` unit).
  double t1_us = 0.0;  ///< system_clock µs at verdict.
};

double wall_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// The machine-readable exit report (`--report FILE`), written on every
/// exit path including usage of the respawn budget.
void write_report(const std::string& path, int world, int max_respawns,
                  const std::vector<AttemptLog>& attempts, int final_exit) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "igr_launch: cannot open report %s\n", path.c_str());
    return;
  }
  namespace tel = igr::common::telemetry;
  std::fprintf(f,
               "{\n  \"world\": %d, \"max_respawns\": %d, \"respawns\": %d,\n"
               "  \"final_exit\": %d,\n  \"attempts\": [\n",
               world, max_respawns,
               static_cast<int>(attempts.empty() ? 0 : attempts.size() - 1),
               final_exit);
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i].a;
    std::fprintf(f,
                 "    {\"attempt\": %zu, \"ok\": %s, \"retryable\": %s, "
                 "\"fatal_code\": %d, \"why\": \"%s\"}%s\n",
                 i, a.ok ? "true" : "false", a.retryable ? "true" : "false",
                 a.fatal_code, tel::json_escape(a.why).c_str(),
                 i + 1 == attempts.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Append supervisor lifecycle events to the team's Chrome trace: one "X"
/// span per attempt plus "i" instants for each loss/respawn, on a pid row
/// one past the last rank.  The trace is a bare JSON array, so appending is
/// a rewrite of the trailing `]`; when the file is missing or empty (e.g.
/// every attempt died before the export), a fresh array is created so the
/// supervisor's view of the failed campaign still loads.
void append_trace_events(const std::string& path, int world,
                         const std::vector<AttemptLog>& attempts) {
  namespace tel = igr::common::telemetry;
  std::string events;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                "\"tid\": 0, \"args\": {\"name\": \"igr_launch\"}}",
                world);
  events += buf;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const AttemptLog& al = attempts[i];
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\": \"attempt %zu\", \"ph\": \"X\", \"pid\": %d, "
                  "\"tid\": 0, \"ts\": %.3f, \"dur\": %.3f}",
                  i, world, al.t0_us, al.t1_us - al.t0_us);
    events += buf;
    const char* verdict = al.a.ok ? "team ok"
                          : al.a.retryable
                              ? (i + 1 < attempts.size() ? "respawn" : "loss")
                              : "fatal";
    events += ",\n{\"name\": \"" + std::string(verdict) +
              "\", \"ph\": \"i\", \"s\": \"p\", \"pid\": " +
              std::to_string(world) + ", \"tid\": 0, \"ts\": " +
              std::to_string(al.t1_us) + ", \"args\": {\"why\": \"" +
              tel::json_escape(al.a.why) + "\"}}";
  }

  // Read whatever the team managed to export.
  std::string body;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
      body.append(chunk, n);
    std::fclose(f);
  }
  const auto last = body.find_last_of(']');
  if (last == std::string::npos) {
    body = "[\n" + events + "]\n";  // no export happened: fresh array
  } else {
    const bool empty_array = body.find_first_of('{') == std::string::npos;
    body = body.substr(0, last) + (empty_array ? "" : ",\n") + events + "]\n";
  }
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "igr_launch: cannot rewrite trace %s\n",
                 path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  namespace ccli = igr::common::cli;
  int world = 0;
  int max_respawns = 2;
  std::string base_dir;
  std::string report_path;
  std::vector<std::string> cmd;

  ccli::Args args("igr_launch", argc, argv);
  while (args.next()) {
    if (args.is("--world")) {
      world = args.int_value(1, 4096);
    } else if (args.is("--dir")) {
      base_dir = args.value();
    } else if (args.is("--max-respawns")) {
      max_respawns = args.int_value(0, 1000);
    } else if (args.is("--report")) {
      report_path = args.value();
    } else if (args.is("--")) {
      while (args.next()) cmd.emplace_back(args.flag());
      break;
    } else {
      usage(args.is("--help") ? 0 : 2);
    }
  }
  if (world < 1 || cmd.empty()) usage(2);

  if (base_dir.empty()) {
    char tmpl[] = "/tmp/igr_launch.XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    if (!d) {
      std::fprintf(stderr, "igr_launch: mkdtemp failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    base_dir = d;
  } else {
    ::mkdir(base_dir.c_str(), 0777);  // best-effort; may already exist
  }

  const std::string trace_path = trace_path_of(cmd);
  std::vector<AttemptLog> attempts;
  const auto finish = [&](int code) {
    if (!report_path.empty())
      write_report(report_path, world, max_respawns, attempts, code);
    if (!trace_path.empty())
      append_trace_events(trace_path, world, attempts);
    return code;
  };

  for (int attempt = 0; attempt <= max_respawns; ++attempt) {
    // A fresh rendezvous directory per attempt: a killed team's stale port
    // files must never be dialed by its replacement.
    const std::string dir = base_dir + "/a" + std::to_string(attempt);
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "igr_launch: mkdir %s failed: %s\n", dir.c_str(),
                   std::strerror(errno));
      return finish(1);
    }

    std::vector<std::string> attempt_cmd = cmd;
    if (attempt > 0) {
      attempt_cmd = strip_inject(attempt_cmd);
      if (!has_flag(attempt_cmd, "--resume"))
        attempt_cmd.emplace_back("--resume");
    }

    std::fprintf(stderr, "igr_launch: attempt %d/%d, %d rank(s), dir %s\n",
                 attempt + 1, max_respawns + 1, world, dir.c_str());
    AttemptLog al;
    al.t0_us = wall_us();
    al.a = run_attempt(attempt_cmd, world, dir);
    al.t1_us = wall_us();
    attempts.push_back(al);
    const Attempt& a = attempts.back().a;
    if (a.ok) return finish(0);
    if (a.fatal_code != 0) {
      std::fprintf(stderr, "igr_launch: fatal: %s\n", a.why.c_str());
      return finish(a.fatal_code);
    }
    std::fprintf(stderr, "igr_launch: %s\n", a.why.c_str());
    if (attempt == max_respawns) {
      std::fprintf(stderr,
                   "igr_launch: respawn budget (%d) exhausted, giving up\n",
                   max_respawns);
      return finish(1);
    }
    std::fprintf(stderr, "igr_launch: respawning with --resume\n");
  }
  return finish(1);
}

#else  // !unix

#include <cstdio>

int main() {
  std::fprintf(stderr,
               "igr_launch: multi-process transport requires a POSIX "
               "platform\n");
  return 1;
}

#endif
