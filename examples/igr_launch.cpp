/// \file igr_launch.cpp
/// Process launcher for multi-process (tcp-transport) runs: spawn one OS
/// process per rank, hand the team a shared rendezvous directory, and
/// supervise.
///
///   $ ./igr_launch --world 2 -- ./run_case --case sod-x --ranks 2,1,1 \
///         --steps 20 --json out.json
///
/// Each rank is the command after `--` plus the transport flags
/// (`--transport tcp --tp-rank R --tp-world N --tp-dir DIR`) appended by the
/// launcher.  Supervision implements the recovery contract of the
/// fault-tolerance layer:
///
///   - exit 0 from every rank        -> exit 0.
///   - exit 75 (EX_TEMPFAIL) or a    -> the loss is *retryable*: SIGKILL the
///     signal death from any rank       survivors, reap everyone, and respawn
///                                      the full team with `--resume` into a
///                                      FRESH rendezvous directory (stale
///                                      port files of a dead team must never
///                                      be dialed), at most --max-respawns
///                                      times.  `--inject ...` is stripped
///                                      from respawned commands so a planned
///                                      fault does not re-fire.
///   - any other nonzero exit        -> fatal: kill the team and propagate
///                                      that exact exit code (a bad flag or
///                                      unknown case must fail CI, not loop).
///
/// The respawned team re-forms on the surviving layout's checkpoint state:
/// `--resume` makes the guarded runner restore the newest CRC-valid manifest
/// entry, so the campaign continues bitwise from the last durable save.

#if defined(__unix__) || defined(__APPLE__)

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: igr_launch --world N [--dir DIR] [--max-respawns K]\n"
               "                  -- COMMAND [ARGS...]\n"
               "  Spawns N processes of COMMAND with tcp-transport flags\n"
               "  appended; respawns the team (with --resume, --inject\n"
               "  stripped) on a retryable loss (exit 75 or signal death).\n");
  std::exit(code);
}

struct Child {
  pid_t pid = -1;
  int rank = -1;
};

/// Outcome of one team attempt.
struct Attempt {
  bool ok = false;         ///< Every rank exited 0.
  bool retryable = false;  ///< Some rank exited 75 or died on a signal.
  int fatal_code = 0;      ///< First non-retryable nonzero exit (0: none).
  std::string why;         ///< Human-readable first failure.
};

void kill_team(std::vector<Child>& team) {
  for (auto& c : team)
    if (c.pid > 0) ::kill(c.pid, SIGKILL);
  for (auto& c : team) {
    if (c.pid <= 0) continue;
    int status = 0;
    while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
    }
    c.pid = -1;
  }
}

pid_t spawn(const std::vector<std::string>& argv_s) {
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (const auto& a : argv_s) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "igr_launch: exec %s failed: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

/// Run one full-team attempt; blocks until every rank is reaped.  The first
/// failed rank decides the verdict and the rest of the team is killed — a
/// survivor blocked in a halo wait on the dead peer would otherwise hold
/// the attempt open until its own timeout.
Attempt run_attempt(const std::vector<std::string>& base_cmd, int world,
                    const std::string& dir) {
  std::vector<Child> team;
  team.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    std::vector<std::string> cmd = base_cmd;
    cmd.insert(cmd.end(),
               {"--transport", "tcp", "--tp-rank", std::to_string(r),
                "--tp-world", std::to_string(world), "--tp-dir", dir});
    const pid_t pid = spawn(cmd);
    if (pid < 0) {
      Attempt a;
      a.fatal_code = 1;
      a.why = "fork failed: " + std::string(std::strerror(errno));
      kill_team(team);
      return a;
    }
    team.push_back({pid, r});
  }

  Attempt a;
  int live = world;
  while (live > 0) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      a.fatal_code = 1;
      a.why = "waitpid failed: " + std::string(std::strerror(errno));
      break;
    }
    int rank = -1;
    for (auto& c : team) {
      if (c.pid == pid) {
        c.pid = -1;
        rank = c.rank;
        break;
      }
    }
    if (rank < 0) continue;  // not ours (shouldn't happen)
    --live;

    if (WIFSIGNALED(status)) {
      a.retryable = true;
      a.why = "rank " + std::to_string(rank) + " killed by signal " +
              std::to_string(WTERMSIG(status));
      break;
    }
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    if (code == 0) continue;
    if (code == 75) {  // EX_TEMPFAIL: the rank asked for a respawn
      a.retryable = true;
      a.why = "rank " + std::to_string(rank) + " exited 75 (retryable)";
    } else {
      a.fatal_code = code;
      a.why = "rank " + std::to_string(rank) + " exited " +
              std::to_string(code);
    }
    break;
  }
  kill_team(team);
  a.ok = !a.retryable && a.fatal_code == 0 && live == 0;
  return a;
}

/// Drop `--inject <spec>` from a respawned command: the planned fault
/// already fired (that is why we are respawning) and must not re-fire.
std::vector<std::string> strip_inject(const std::vector<std::string>& cmd) {
  std::vector<std::string> out;
  out.reserve(cmd.size());
  for (std::size_t i = 0; i < cmd.size(); ++i) {
    if (cmd[i] == "--inject") {
      ++i;  // skip the spec too
      continue;
    }
    out.push_back(cmd[i]);
  }
  return out;
}

bool has_flag(const std::vector<std::string>& cmd, const char* flag) {
  for (const auto& a : cmd)
    if (a == flag) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  namespace ccli = igr::common::cli;
  int world = 0;
  int max_respawns = 2;
  std::string base_dir;
  std::vector<std::string> cmd;

  ccli::Args args("igr_launch", argc, argv);
  while (args.next()) {
    if (args.is("--world")) {
      world = args.int_value(1, 4096);
    } else if (args.is("--dir")) {
      base_dir = args.value();
    } else if (args.is("--max-respawns")) {
      max_respawns = args.int_value(0, 1000);
    } else if (args.is("--")) {
      while (args.next()) cmd.emplace_back(args.flag());
      break;
    } else {
      usage(args.is("--help") ? 0 : 2);
    }
  }
  if (world < 1 || cmd.empty()) usage(2);

  if (base_dir.empty()) {
    char tmpl[] = "/tmp/igr_launch.XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    if (!d) {
      std::fprintf(stderr, "igr_launch: mkdtemp failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    base_dir = d;
  } else {
    ::mkdir(base_dir.c_str(), 0777);  // best-effort; may already exist
  }

  for (int attempt = 0; attempt <= max_respawns; ++attempt) {
    // A fresh rendezvous directory per attempt: a killed team's stale port
    // files must never be dialed by its replacement.
    const std::string dir = base_dir + "/a" + std::to_string(attempt);
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "igr_launch: mkdir %s failed: %s\n", dir.c_str(),
                   std::strerror(errno));
      return 1;
    }

    std::vector<std::string> attempt_cmd = cmd;
    if (attempt > 0) {
      attempt_cmd = strip_inject(attempt_cmd);
      if (!has_flag(attempt_cmd, "--resume"))
        attempt_cmd.emplace_back("--resume");
    }

    std::fprintf(stderr, "igr_launch: attempt %d/%d, %d rank(s), dir %s\n",
                 attempt + 1, max_respawns + 1, world, dir.c_str());
    const Attempt a = run_attempt(attempt_cmd, world, dir);
    if (a.ok) return 0;
    if (a.fatal_code != 0) {
      std::fprintf(stderr, "igr_launch: fatal: %s\n", a.why.c_str());
      return a.fatal_code;
    }
    std::fprintf(stderr, "igr_launch: %s\n", a.why.c_str());
    if (attempt == max_respawns) {
      std::fprintf(stderr,
                   "igr_launch: respawn budget (%d) exhausted, giving up\n",
                   max_respawns);
      return 1;
    }
    std::fprintf(stderr, "igr_launch: respawning with --resume\n");
  }
  return 1;
}

#else  // !unix

#include <cstdio>

int main() {
  std::fprintf(stderr,
               "igr_launch: multi-process transport requires a POSIX "
               "platform\n");
  return 1;
}

#endif
