/// \file quickstart.cpp
/// Quickstart: solve the Sod shock tube with IGR and compare against the
/// exact Riemann solution — the smallest possible tour of the public API.
///
///   $ ./quickstart
///
/// Demonstrates: 1-D IGR solver construction, initialization, CFL-driven
/// time stepping, and error measurement against fv::ExactRiemann.

#include <cstdio>

#include "core/igr_solver1d.hpp"
#include "fv/exact_riemann.hpp"

int main() {
  using namespace igr;

  // 1. Configure a 1-D IGR solver on [0, 1] with 400 cells.
  core::IgrSolver1D::Options opt;
  opt.gamma = 1.4;
  opt.alpha_factor = 5.0;   // alpha = 5 dx^2: shocks span a few cells
  opt.sigma_sweeps = 5;     // warm-started Gauss-Seidel sweeps per flux
  opt.bc = core::Bc1D::kOutflow;

  const int n = 400;
  core::IgrSolver1D solver(n, 0.0, 1.0, opt);

  // 2. Sod initial data: (rho, u, p) = (1, 0, 1) | (0.125, 0, 0.1).
  solver.init([](double x) {
    core::Prim1 w;
    if (x < 0.5) {
      w.rho = 1.0;
      w.p = 1.0;
    } else {
      w.rho = 0.125;
      w.p = 0.1;
    }
    return w;
  });

  // 3. Advance to t = 0.2 under CFL control.
  const double t_end = 0.2;
  int steps = 0;
  while (solver.time() < t_end) {
    solver.step();
    ++steps;
  }

  // 4. Compare with the exact solution.
  fv::ExactRiemann exact(fv::sod_left(), fv::sod_right(), opt.gamma);
  const auto ref = exact.sample_profile(n, 0.0, 1.0, 0.5, solver.time());
  const auto rho = solver.rho();

  double l1 = 0.0;
  for (int i = 0; i < n; ++i)
    l1 += std::abs(rho[static_cast<std::size_t>(i)] -
                   ref[static_cast<std::size_t>(i)].rho) *
          solver.dx();

  std::printf("igrflow quickstart: Sod shock tube, IGR, %d cells\n", n);
  std::printf("  steps taken     : %d\n", steps);
  std::printf("  final time      : %.4f\n", solver.time());
  std::printf("  L1 density error: %.4e (vs exact Riemann solution)\n", l1);
  std::printf("  star pressure   : %.6f (exact %.6f)\n",
              solver.pressure()[static_cast<std::size_t>(n / 2)],
              exact.p_star());

  // A sampled profile through the shock, for eyeballing.
  std::printf("\n  x        rho(IGR)  rho(exact)\n");
  for (int i = n / 4; i < n; i += n / 8) {
    std::printf("  %.4f   %.5f   %.5f\n", solver.x(i),
                rho[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)].rho);
  }
  return l1 < 0.02 ? 0 : 1;
}
