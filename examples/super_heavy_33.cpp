/// \file super_heavy_33.cpp
/// The paper's flagship demonstration (Fig. 1): an array of 33 Mach-10
/// engines in the SpaceX Super-Heavy-inspired layout — 3 inner, 10
/// middle-ring, 20 outer-ring — with plume-plume interaction above the
/// base plate.  The production run used 3.3T cells on 9.2K GH200s; this
/// example runs the same configuration at laptop scale and reports the
/// base-heating proxy the study motivates: recirculating (upward) mass
/// flux near the base plate between nozzles.
///
///   $ ./super_heavy_33 [n=32] [steps=30]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "app/jet_config.hpp"
#include "app/simulation.hpp"

namespace {

/// Upward mass flux integrated over near-base cells *outside* the nozzles —
/// exhaust reflected back toward the rocket base ("base heating", §3).
template <class Policy>
double base_recirculation(const igr::app::Simulation<Policy>& sim,
                          const igr::app::JetConfig& jet) {
  const auto& q = sim.state();
  const auto& g = sim.grid();
  double up_flux = 0.0;
  const int k0 = 1;  // one layer above the base plate
  for (int j = 0; j < g.ny(); ++j) {
    for (int i = 0; i < g.nx(); ++i) {
      const double x = g.x(i), y = g.y(j);
      bool inside_nozzle = false;
      for (const auto& c : jet.centers) {
        const double dx = x - c[0], dy = y - c[1];
        if (dx * dx + dy * dy < jet.nozzle_radius * jet.nozzle_radius) {
          inside_nozzle = true;
          break;
        }
      }
      if (inside_nozzle) continue;
      const double mz = static_cast<double>(q[3](i, j, k0));
      if (mz < 0.0) up_flux += -mz * g.dx() * g.dy();  // toward the base
    }
  }
  return up_flux;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace igr;

  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 30;

  const auto jet = app::super_heavy_33();

  app::Simulation<common::Fp32>::Params params;
  params.grid = mesh::Grid(n, n, n, {0, 1}, {0, 1}, {0, 1});
  params.cfg = jet.solver_config();
  params.bc = jet.make_bc();
  params.scheme = app::SchemeKind::kIgr;

  app::Simulation<common::Fp32> sim(params);
  sim.init(jet.initial_condition(0.005));

  std::printf("super_heavy_33: %zu engines (3 + 10 + 20 rings), %d^3 cells\n",
              jet.centers.size(), n);
  std::printf("paper-scale equivalent: 3.3T cells, 600 cells across each "
              "nozzle, 16h on 9.2K GH200s\n\n");

  std::printf("%6s %10s %10s %14s\n", "step", "time", "max Mach",
              "base recirc.");
  for (int s = 0; s < steps; ++s) {
    sim.step();
    if (s % 5 == 4 || s == 0) {
      const auto d = sim.diagnostics();
      std::printf("%6d %10.5f %10.3f %14.5e\n", s + 1, sim.time(),
                  d.max_mach, base_recirculation(sim, jet));
    }
  }

  sim.write_vtk("super_heavy_33.vtk");
  std::printf("\nwrote super_heavy_33.vtk\n");

  const auto d = sim.diagnostics();
  std::printf("final: max Mach %.2f, min rho %.3e, %zu start-up transient "
              "cells\n",
              d.max_mach, d.min_density, d.nonpositive_pressure_cells);
  return (d.min_density > 0.0 && std::isfinite(d.kinetic_energy)) ? 0 : 1;
}
