/// \file three_engine_plume.cpp
/// The paper's Fig. 5 scenario: three Mach-10 engines in a row, plumes
/// interacting above a reflective base plate.  Runs the IGR solver with
/// FP16/32 mixed precision (the paper's headline configuration), tracks
/// plume diagnostics, and writes VTK snapshots for visualization.
///
///   $ ./three_engine_plume [n=24] [steps=40]

#include <cstdio>
#include <cstdlib>

#include "app/jet_config.hpp"
#include "app/simulation.hpp"

int main(int argc, char** argv) {
  using namespace igr;

  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;

  const auto jet = app::three_engine_row();

  app::Simulation<common::Fp16x32>::Params params;
  params.grid = mesh::Grid(n, n, 3 * n / 2, {0, 1}, {0, 1}, {0, 1.5});
  params.cfg = jet.solver_config();
  params.bc = jet.make_bc();
  params.scheme = app::SchemeKind::kIgr;

  app::Simulation<common::Fp16x32> sim(params);
  sim.init(jet.initial_condition(0.01));

  std::printf("three_engine_plume: %d x %d x %d cells, FP16/32 storage, "
              "3 Mach-%.0f engines\n",
              n, n, 3 * n / 2, jet.mach);
  std::printf("memory: %.1f MB (%.0f values/cell at 2 B storage)\n",
              sim.memory_bytes() / 1.0e6,
              static_cast<double>(sim.memory_bytes()) / 2.0 /
                  static_cast<double>(params.grid.cells()));

  std::printf("\n%6s %10s %10s %12s %12s\n", "step", "time", "max Mach",
              "min rho", "kinetic E");
  for (int s = 0; s < steps; ++s) {
    sim.step();
    if (s % 10 == 9 || s == 0) {
      const auto d = sim.diagnostics();
      std::printf("%6d %10.5f %10.3f %12.3e %12.5f\n", s + 1, sim.time(),
                  d.max_mach, d.min_density, d.kinetic_energy);
    }
  }

  sim.write_vtk("three_engine_plume.vtk");
  std::printf("\nwrote three_engine_plume.vtk (density, pressure, |u|, "
              "entropic pressure)\n");
  std::printf("grind time on this machine: %.0f ns/cell/step\n",
              sim.grind_ns());

  const auto d = sim.diagnostics();
  return (d.min_density > 0.0 && std::isfinite(d.kinetic_energy)) ? 0 : 1;
}
