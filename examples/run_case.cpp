/// \file run_case.cpp
/// Unified CLI over the case library: run any registered scenario at any
/// precision, scheme, reconstruction order, and rank layout.
///
///   $ ./run_case --list
///   $ ./run_case --case sod-x --n 64 --t-end 0.2 --vtk sod.vtk
///   $ ./run_case --case taylor-green --precision fp16x32 --steps 50
///   $ ./run_case --case jet-single --ranks 2,2,1 --steps 20
///   $ ./run_case --case all --smoke --json CASES_smoke.json
///
/// `--case all` sweeps every registered case (at golden/smoke sizing with
/// `--smoke`) and, with `--json`, writes the per-case diagnostics report CI
/// uploads as a workflow artifact.

#include <array>
#include <cmath>
#include <cstdio>
#include <exception>
#include <cstdlib>
#include <string>
#include <vector>

#include "cases/runner.hpp"
#include "common/cli.hpp"
#include "mesh/decomp.hpp"

namespace {

using namespace igr;

struct CliOptions {
  std::string case_name;
  cases::Precision precision = cases::Precision::kFp64;
  cases::RunOptions run;
  cases::GuardOptions guard;
  bool guarded = false;  ///< Any fault-tolerance flag was given.
  bool smoke = false;
  std::string vtk;
  std::string json;
  std::string save_ckpt;
  std::string restart_ckpt;

  /// One rank of `transport.world` OS processes (tcp transport)?
  [[nodiscard]] bool multi_process() const {
    return run.transport.kind == sim::TransportSpec::Kind::kTcp;
  }
  /// The process that owns printing, JSON, and VTK output.
  [[nodiscard]] bool is_io_root() const {
    return !multi_process() || run.transport.rank == 0;
  }
};

/// Exit code a multi-process rank returns on any run failure: EX_TEMPFAIL,
/// the launcher's cue that respawning the team (with --resume) may recover
/// the campaign.  Usage/configuration errors keep exiting 2 — those are
/// fatal and the launcher propagates them.
constexpr int kExitRetryable = 75;

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: run_case --case NAME|all [--list]\n"
      "                [--n N] [--steps S | --t-end T] [--smoke]\n"
      "                [--precision fp64|fp32|fp16x32|bf16x32] [--scheme igr|weno]\n"
      "                [--recon 1|3|5] [--ranks rx,ry,rz|N] [--jacobi]\n"
      "                [--exec serial|openmp] [--threads T]\n"
      "                [--phased] [--vtk out.vtk] [--json out.json]\n"
      "                [--save ckpt.bin] [--restart ckpt.bin]\n"
      "  observability (see README 'Observability'):\n"
      "                [--phase-timing] [--telemetry out.jsonl]\n"
      "                [--trace out.json]\n"
      "  fault tolerance (single --case; see README 'Fault tolerance'):\n"
      "                [--checkpoint-every N] [--ckpt-dir DIR] [--resume]\n"
      "                [--keep K] [--max-retries R] [--cfl-backoff X]\n"
      "                [--cfl-scale X] [--health-every N]\n"
      "                [--strict-pressure] [--inject SPEC]\n"
      "  SPEC: post=N,complete=N,phase=N@RANK,io=N,kill=N@RANK,seed=S\n"
      "  multi-process (one rank per OS process; see igr_launch):\n"
      "                [--transport inproc|tcp] [--tp-rank R] [--tp-world W]\n"
      "                [--tp-dir DIR] [--wire full|half]\n"
      "                [--comm-timeout SECONDS]\n");
  std::exit(code);
}

void list_cases() {
  std::printf("%zu registered cases:\n", cases::all_cases().size());
  for (const auto& c : cases::all_cases())
    std::printf("  %-18s %s\n", c.name.c_str(), c.title.c_str());
}

void print_result(const cases::CaseSpec& spec, const char* precision,
                  const cases::RunResult& r) {
  std::printf("%-18s %-8s %4d steps  t=%.5f  %8.1f ns/cell/step\n",
              spec.name.c_str(), precision, r.steps, r.time, r.grind_ns);
  std::printf(
      "  max Mach %.3f  rho [%.4g, %.4g]  min p %.4g  KE %.5g  "
      "enstrophy %.5g\n",
      r.diag.max_mach, r.diag.min_density, r.diag.max_density,
      r.diag.min_pressure, r.diag.kinetic_energy, r.diag.enstrophy);
  const double m0 = r.totals_initial.rho, m1 = r.totals_final.rho;
  const double e0 = r.totals_initial.e, e1 = r.totals_final.e;
  std::printf("  mass %.8g (drift %.2e)  energy %.8g (drift %.2e)\n", m1,
              (m1 - m0) / (std::abs(m0) + 1e-300), e1,
              (e1 - e0) / (std::abs(e0) + 1e-300));
  if (r.l1_error >= 0.0)
    std::printf("  error vs analytic: L1 %.3e  Linf %.3e\n", r.l1_error,
                r.linf_error);
  std::printf("  state fnv1a 0x%016llx  dt fnv1a 0x%016llx\n",
              static_cast<unsigned long long>(r.state_fnv),
              static_cast<unsigned long long>(r.dt_fnv));
  if (r.diag.nonpositive_pressure_cells > 0)
    std::printf("  (%zu start-up transient cells with non-positive p)\n",
                r.diag.nonpositive_pressure_cells);
}

void json_result(std::FILE* f, const cases::CaseSpec& spec,
                 const char* precision, const cases::RunResult& r,
                 const cases::RunOptions& ropts, bool last) {
  const sim::FaultPlan& faults = ropts.faults;
  std::fprintf(f,
               "    {\"case\": \"%s\", \"precision\": \"%s\", "
               "\"cells\": %zu, \"steps\": %d, \"time\": %.9g,\n"
               "     \"grind_ns_per_cell_step\": %.2f,\n"
               "     \"diagnostics\": {\"max_mach\": %.9g, "
               "\"min_density\": %.9g, \"max_density\": %.9g, "
               "\"min_pressure\": %.9g, \"kinetic_energy\": %.9g, "
               "\"total_mass\": %.12g, \"total_energy\": %.12g, "
               "\"enstrophy\": %.9g, \"nonpositive_pressure_cells\": %zu},\n"
               "     \"mass_drift\": %.3e, \"energy_drift\": %.3e",
               spec.name.c_str(), precision, r.cells, r.steps, r.time,
               r.grind_ns, r.diag.max_mach, r.diag.min_density,
               r.diag.max_density, r.diag.min_pressure, r.diag.kinetic_energy,
               r.diag.total_mass, r.diag.total_energy, r.diag.enstrophy,
               r.diag.nonpositive_pressure_cells,
               (r.totals_final.rho - r.totals_initial.rho) /
                   (std::abs(r.totals_initial.rho) + 1e-300),
               (r.totals_final.e - r.totals_initial.e) /
                   (std::abs(r.totals_initial.e) + 1e-300));
  if (r.l1_error >= 0.0)
    std::fprintf(f, ",\n     \"l1_error\": %.6e, \"linf_error\": %.6e",
                 r.l1_error, r.linf_error);
  std::fprintf(f, ",\n     \"state_fnv\": \"0x%016llx\", \"dt_fnv\": \"0x%016llx\"",
               static_cast<unsigned long long>(r.state_fnv),
               static_cast<unsigned long long>(r.dt_fnv));
  if (r.has_phases) {
    // bench_grind's breakdown format, so the two reports diff directly.
    std::fprintf(f, ",\n     \"phase_ns_per_cell_step\": {");
    for (int p = 0; p < common::PhaseProfile::kNumPhases; ++p) {
      const auto ph = static_cast<common::PhaseProfile::Phase>(p);
      std::fprintf(f, "%s\"%s\": %.2f", p == 0 ? "" : ", ",
                   common::PhaseProfile::name(ph),
                   r.phase_ns[static_cast<std::size_t>(p)]);
    }
    std::fputc('}', f);
  }
  if (!ropts.telemetry.empty())
    std::fprintf(f, ",\n     \"telemetry\": \"%s\"",
                 ropts.telemetry.c_str());
  if (!ropts.trace.empty())
    std::fprintf(f, ",\n     \"trace\": \"%s\"", ropts.trace.c_str());
  if (faults.armed())
    std::fprintf(f, ",\n     \"fault_plan\": \"%s\", \"fault_seed\": %llu",
                 faults.describe().c_str(),
                 static_cast<unsigned long long>(faults.seed));
  std::fprintf(f, "}%s\n", last ? "" : ",");
}

/// Run one case; VTK/checkpoint options only apply to single-case mode.
cases::RunResult run_one(const cases::CaseSpec& spec, const CliOptions& cli) {
  cases::RunOptions opts = cli.run;
  if (cli.smoke) {
    if (opts.n == 0) opts.n = spec.golden_n;
    if (opts.steps == 0 && opts.t_end < 0.0) opts.steps = spec.golden_steps;
  }
  // One stateful drive per precision; the VTK/checkpoint blocks are no-ops
  // when those options are empty, so every flow shares this path.
  auto drive = [&](auto policy_tag) {
    using Policy = decltype(policy_tag);
    if (cli.guarded) {
      // Fault-tolerance envelope: periodic crash-safe checkpoints with a
      // manifest, resume-from-latest-valid, health-guarded rollback/retry.
      auto rep = cases::run_case_guarded<Policy>(spec, opts, cli.guard);
      if (cli.is_io_root()) {
        std::printf(
            "guard: %s  retries %d  checkpoints %d written, %d rejected, "
            "%d failed writes%s  cfl-scale %.4g  inject %s\n",
            rep.completed ? "completed" : "FAILED", rep.retries,
            rep.checkpoints_written, rep.checkpoints_rejected,
            rep.checkpoint_failures,
            rep.resumed_step >= 0
                ? ("  (resumed at step " + std::to_string(rep.resumed_step) +
                   ")")
                      .c_str()
                : "",
            rep.final_cfl_scale, rep.fault_plan.c_str());
      }
      if (!rep.completed)
        throw std::runtime_error("guarded run failed: " + rep.failure);
      return rep.result;
    }
    cases::CaseRun<Policy> run(spec, opts);
    if (!cli.restart_ckpt.empty()) run.load_checkpoint(cli.restart_ckpt);
    auto r = run.run();
    if (!cli.save_ckpt.empty()) {
      run.save_checkpoint(cli.save_ckpt);
      if (cli.is_io_root())
        std::printf("checkpoint -> %s\n", cli.save_ckpt.c_str());
    }
    if (!cli.vtk.empty()) {
      run.sim().write_vtk(cli.vtk);
      if (cli.is_io_root()) std::printf("vtk -> %s\n", cli.vtk.c_str());
    }
    return r;
  };
  switch (cli.precision) {
    case cases::Precision::kFp32: return drive(common::Fp32{});
    case cases::Precision::kFp16x32: return drive(common::Fp16x32{});
    case cases::Precision::kBf16x32: return drive(common::Bf16x32{});
    case cases::Precision::kFp64: break;
  }
  return drive(common::Fp64{});
}

}  // namespace

int main(int argc, char** argv) {
  namespace ccli = common::cli;
  CliOptions cli;
  ccli::Args args("run_case", argc, argv);
  while (args.next()) {
    if (args.is("--list")) {
      list_cases();
      return 0;
    } else if (args.is("--case")) {
      cli.case_name = args.value();
    } else if (args.is("--n")) {
      cli.run.n = args.int_value(0);
    } else if (args.is("--steps")) {
      cli.run.steps = args.int_value(0);
    } else if (args.is("--t-end")) {
      cli.run.t_end = args.double_value();
    } else if (args.is("--smoke")) {
      cli.smoke = true;
    } else if (args.is("--precision")) {
      const char* p = args.value();
      if (!cases::parse_precision(p, &cli.precision))
        args.die(std::string("bad --precision '") + p +
                 "' (expected fp64|fp32|fp16x32|bf16x32)");
    } else if (args.is("--scheme")) {
      cli.run.scheme = args.choice_value({"igr", "weno"}) == 0
                           ? app::SchemeKind::kIgr
                           : app::SchemeKind::kBaselineWeno;
    } else if (args.is("--recon")) {
      constexpr fv::ReconScheme kOrders[] = {fv::ReconScheme::kFirst,
                                             fv::ReconScheme::kThird,
                                             fv::ReconScheme::kFifth};
      cli.run.recon = kOrders[args.choice_value({"1", "3", "5"})];
    } else if (args.is("--ranks")) {
      const auto rs = args.ranks_value();
      cli.run.ranks = rs.balanced ? mesh::Decomp::balanced_layout(rs.count)
                                  : rs.layout;
    } else if (args.is("--exec")) {
      cli.run.exec = args.choice_value({"serial", "openmp"}) == 0
                         ? common::ExecBackend::kSerial
                         : common::ExecBackend::kOpenMP;
    } else if (args.is("--threads")) {
      cli.run.threads = args.int_value(0, 4096);
    } else if (args.is("--jacobi")) {
      cli.run.jacobi_sweeps = true;
    } else if (args.is("--phased")) {
      cli.run.fused_rhs = false;
    } else if (args.is("--phase-timing")) {
      cli.run.phase_timing = true;
    } else if (args.is("--telemetry")) {
      cli.run.telemetry = args.value();
    } else if (args.is("--trace")) {
      cli.run.trace = args.value();
    } else if (args.is("--vtk")) {
      cli.vtk = args.value();
    } else if (args.is("--json")) {
      cli.json = args.value();
    } else if (args.is("--save")) {
      cli.save_ckpt = args.value();
    } else if (args.is("--restart")) {
      cli.restart_ckpt = args.value();
    } else if (args.is("--checkpoint-every")) {
      cli.guard.checkpoint_every = args.int_value(0);
      cli.guarded = true;
    } else if (args.is("--ckpt-dir")) {
      cli.guard.dir = args.value();
      cli.guarded = true;
    } else if (args.is("--resume")) {
      cli.guard.resume = true;
      cli.guarded = true;
    } else if (args.is("--keep")) {
      cli.guard.keep = args.int_value(1);
      cli.guarded = true;
    } else if (args.is("--max-retries")) {
      cli.guard.max_retries = args.int_value(0);
      cli.guarded = true;
    } else if (args.is("--cfl-backoff")) {
      cli.guard.cfl_backoff = args.double_value();
      cli.guarded = true;
    } else if (args.is("--cfl-scale")) {
      cli.run.cfl_scale = args.double_value();
    } else if (args.is("--health-every")) {
      cli.guard.health_every = args.int_value(0);
      cli.guarded = true;
    } else if (args.is("--strict-pressure")) {
      cli.guard.strict_pressure = true;
      cli.guarded = true;
    } else if (args.is("--inject")) {
      try {
        cli.run.faults = sim::FaultPlan::parse(args.value());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "run_case: %s\n", e.what());
        return 2;
      }
      cli.guarded = true;
    } else if (args.is("--transport")) {
      try {
        cli.run.transport.kind = sim::TransportSpec::parse_kind(args.value());
      } catch (const std::exception& e) {
        args.die(e.what());
      }
    } else if (args.is("--tp-rank")) {
      cli.run.transport.rank = args.int_value(0);
    } else if (args.is("--tp-world")) {
      cli.run.transport.world = args.int_value(1);
    } else if (args.is("--tp-dir")) {
      cli.run.transport.dir = args.value();
    } else if (args.is("--wire")) {
      cli.run.halo_wire = args.choice_value({"full", "half"}) == 0
                              ? sim::Comm::WirePrecision::kFull
                              : sim::Comm::WirePrecision::kHalf;
    } else if (args.is("--comm-timeout")) {
      cli.run.comm_timeout_s = args.double_value();
    } else {
      usage(args.is("--help") ? 0 : 2);
    }
  }
  if (cli.case_name.empty()) usage(2);
  if (cli.multi_process()) {
    if (cli.case_name == "all") {
      std::fprintf(stderr,
                   "run_case: --transport tcp needs a single --case\n");
      return 2;
    }
    if (cli.run.transport.dir.empty()) {
      std::fprintf(stderr,
                   "run_case: --transport tcp needs --tp-dir (the rendezvous "
                   "directory igr_launch provides)\n");
      return 2;
    }
  }
  if (cli.run.faults.armed() && cli.is_io_root())
    std::printf("fault plan: %s\n", cli.run.faults.describe().c_str());

  std::vector<const cases::CaseSpec*> selected;
  if (cli.case_name == "all") {
    // One output file / one checkpoint cannot serve 14 differently shaped
    // cases — these flows are single-case only.
    if (!cli.vtk.empty() || !cli.save_ckpt.empty() ||
        !cli.restart_ckpt.empty() || cli.guarded ||
        !cli.run.telemetry.empty() || !cli.run.trace.empty()) {
      std::fprintf(stderr,
                   "run_case: --vtk/--save/--restart/--telemetry/--trace and "
                   "the fault-tolerance flags need a single --case, not "
                   "'all'\n");
      return 2;
    }
    for (const auto& c : cases::all_cases()) selected.push_back(&c);
  } else {
    const auto* spec = cases::find(cli.case_name);
    if (!spec) {
      std::fprintf(stderr, "run_case: unknown case '%s' (try --list)\n",
                   cli.case_name.c_str());
      return 2;
    }
    selected.push_back(spec);
  }

  std::vector<cases::RunResult> results;
  results.reserve(selected.size());
  for (const auto* spec : selected) {
    try {
      results.push_back(run_one(*spec, cli));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "run_case: %s: %s\n", spec->name.c_str(),
                   e.what());
      // A multi-process rank's failure is the launcher's problem: exit
      // EX_TEMPFAIL so it reaps the team and respawns with --resume.
      return cli.multi_process() ? kExitRetryable : 1;
    }
    if (cli.is_io_root()) {
      print_result(*spec, cases::precision_name(cli.precision),
                   results.back());
      if (!cli.run.telemetry.empty())
        std::printf("telemetry -> %s\n", cli.run.telemetry.c_str());
      if (!cli.run.trace.empty())
        std::printf("trace -> %s\n", cli.run.trace.c_str());
    }
  }

  if (!cli.json.empty() && cli.is_io_root()) {
    std::FILE* f = std::fopen(cli.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "run_case: cannot open %s\n", cli.json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"cases\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i)
      json_result(f, *selected[i], cases::precision_name(cli.precision),
                  results[i], cli.run, i + 1 == results.size());
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", cli.json.c_str());
  }
  return 0;
}
