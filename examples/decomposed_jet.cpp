/// \file decomposed_jet.cpp
/// Decomposed runs as a first-class scenario: the Mach-10 single-jet
/// workload stepped by the rank-parallel distributed driver.
///
///   $ ./decomposed_jet --ranks 2,2,1 --n 32 --steps 20
///   $ ./decomposed_jet --ranks 8            # balanced 3-D layout for 8
///   $ ./decomposed_jet --ranks 4 --serial   # lockstep reference schedule
///
/// Demonstrates: app::Simulation's `ranks` parameter, the dt allreduce, the
/// halo-byte metering against the analytic message sizes, and VTK output of
/// a gathered decomposed state.  With Jacobi Sigma sweeps (the default
/// below) the run is bitwise identical to `--ranks 1,1,1` at any layout.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/jet_config.hpp"
#include "app/simulation.hpp"
#include "common/cli.hpp"
#include "mesh/decomp.hpp"

int main(int argc, char** argv) {
  using namespace igr;
  namespace ccli = common::cli;

  std::array<int, 3> ranks{2, 2, 1};
  int n = 24;
  int steps = 10;
  sim::DistOptions dist;
  std::string vtk;
  ccli::Args args("decomposed_jet", argc, argv);
  while (args.next()) {
    if (args.is("--ranks")) {
      const auto rs = args.ranks_value();
      ranks = rs.balanced ? mesh::Decomp::balanced_layout(rs.count)
                          : rs.layout;
    } else if (args.is("--n")) {
      n = args.int_value(1);
    } else if (args.is("--steps")) {
      steps = args.int_value(0);
    } else if (args.is("--threads-per-rank")) {
      dist.threads_per_rank = args.int_value(0);
    } else if (args.is("--serial")) {
      dist.parallel = false;
    } else if (args.is("--no-overlap")) {
      dist.overlap_halo = false;
    } else if (args.is("--vtk")) {
      vtk = args.value();
    } else {
      std::fprintf(stderr,
                   "usage: decomposed_jet [--ranks rx,ry,rz|N] [--n N] "
                   "[--steps S] [--threads-per-rank T] [--serial] "
                   "[--no-overlap] [--vtk out.vtk]\n");
      return 2;
    }
  }

  const auto jet = app::single_engine();
  app::Simulation<common::Fp64>::Params params;
  params.grid = mesh::Grid(n, n, n + n / 2, {0.0, 1.0}, {0.0, 1.0},
                           {0.0, 1.5});
  params.cfg = jet.solver_config();
  params.cfg.sigma_gauss_seidel = false;  // Jacobi: decomposition-exact
  params.bc = jet.make_bc();
  params.ranks = ranks;
  params.dist = dist;

  app::Simulation<common::Fp64> sim(params);
  sim.init(jet.initial_condition(0.005));

  std::printf("igrflow decomposed_jet: %dx%dx%d cells on %dx%dx%d ranks "
              "(%s%s)\n",
              params.grid.nx(), params.grid.ny(), params.grid.nz(), ranks[0],
              ranks[1], ranks[2], dist.parallel ? "parallel" : "serial",
              dist.parallel && dist.overlap_halo ? ", overlapped halos" : "");

  for (int s = 0; s < steps; ++s) {
    const double dt = sim.step();
    if (s % 5 == 0 || s == steps - 1)
      std::printf("  step %4d  t=%.5f  dt=%.3e\n", s, sim.time(), dt);
  }

  const auto d = sim.diagnostics();
  std::printf("max Mach %.2f  min rho %.3e  kinetic energy %.4f\n",
              d.max_mach, d.min_density, d.kinetic_energy);
  if (sim.distributed()) {
    std::printf("halo traffic: %.2f MB over %d steps (%.1f kB/step)\n",
                1e-6 * static_cast<double>(sim.dist().comm().bytes_exchanged()),
                steps,
                1e-3 * static_cast<double>(
                           sim.dist().comm().bytes_exchanged()) / steps);
  }
  if (!vtk.empty()) {
    sim.write_vtk(vtk);
    std::printf("wrote %s\n", vtk.c_str());
  }
  return 0;
}
