/// \file flowmap_tracers.cpp
/// Demonstrates the geometric heart of IGR (paper Fig. 3): in the
/// pressureless gas, particle trajectories that would collide in finite
/// time instead *converge asymptotically* under the regularized dynamics.
/// Seeds a fan of tracer particles across a colliding velocity field and
/// prints their trajectories; the CSV output can be plotted directly.
///
///   $ ./flowmap_tracers [alpha=1e-3]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/igr_solver1d.hpp"
#include "io/csv_writer.hpp"

int main(int argc, char** argv) {
  using namespace igr;
  using core::IgrSolver1D;

  const double alpha = argc > 1 ? std::atof(argv[1]) : 1e-3;

  IgrSolver1D::Options opt;
  opt.pressureless = true;
  opt.alpha = alpha;
  opt.bc = core::Bc1D::kOutflow;
  opt.cfl = 0.3;
  IgrSolver1D solver(1024, 0.0, 2.0, opt);

  solver.init([](double x) {
    core::Prim1 w;
    w.rho = 1.0;
    w.u = -std::tanh((x - 1.0) / 0.1);  // particles converge toward x = 1
    w.p = 0.0;
    return w;
  });

  // A fan of tracers straddling the collision point.
  std::vector<int> ids;
  std::vector<double> seeds;
  for (double x0 = 0.6; x0 <= 1.4 + 1e-9; x0 += 0.1) {
    ids.push_back(solver.add_tracer(x0));
    seeds.push_back(x0);
  }

  std::printf("flowmap_tracers: alpha = %g, %zu tracers on [0.6, 1.4]\n\n",
              alpha, ids.size());

  std::vector<std::string> cols{"t"};
  for (double s : seeds) cols.push_back("x0_" + std::to_string(s));
  io::CsvWriter csv("flowmap_tracers.csv", cols);

  std::printf("%6s", "t");
  for (double s : seeds) std::printf("  x0=%.1f", s);
  std::printf("\n");

  for (double t = 0.0; t <= 1.0 + 1e-9; t += 0.1) {
    solver.advance_to(t);
    std::vector<double> row{t};
    std::printf("%6.2f", t);
    for (int id : ids) {
      row.push_back(solver.tracer_position(id));
      std::printf("  %6.4f", solver.tracer_position(id));
    }
    csv.row(row);
    std::printf("\n");
  }

  // Order preservation: the flow map stays injective (no crossings).
  bool ordered = true;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (solver.tracer_position(ids[i]) <=
        solver.tracer_position(ids[i - 1])) {
      ordered = false;
    }
  }
  std::printf("\ntrajectories remain ordered (flow map injective): %s\n",
              ordered ? "yes" : "NO");
  std::printf("wrote flowmap_tracers.csv\n");
  return ordered ? 0 : 1;
}
