#pragma once
/// \file rk3.hpp
/// Strong-stability-preserving third-order Runge–Kutta (Gottlieb & Shu 1998),
/// the paper's time stepper (§5.2).  Written in the two-register form the
/// paper exploits for its unified-memory strategy (§5.5.3): only the current
/// sub-step is passed to the RHS; the previous-state register supplies the
/// convex combinations.
///
///   q1 = q^n + dt L(q^n)
///   q2 = 3/4 q^n + 1/4 (q1 + dt L(q1))
///   q^{n+1} = 1/3 q^n + 2/3 (q2 + dt L(q2))

#include <array>

namespace igr::fv {

/// Convex-combination coefficients per SSP-RK3 stage:
/// q_new = a * q_n + b * (q_stage + dt * L(q_stage)).
struct Rk3Stage {
  double a;  ///< Weight of the time-step-start state q^n.
  double b;  ///< Weight of the advanced stage state.
};

inline constexpr std::array<Rk3Stage, 3> kRk3Stages{{
    {0.0, 1.0},
    {3.0 / 4.0, 1.0 / 4.0},
    {1.0 / 3.0, 2.0 / 3.0},
}};

/// Generic SSP-RK3 driver over contiguous state vectors (used by the 1-D
/// solvers; the 3-D solvers implement the same recurrence over fields).
/// `State` must support elementwise access via size() and operator[].
/// `Rhs` is rhs(const State& q, State& dqdt).
template <class State, class Rhs>
void ssp_rk3_step(State& q, State& stage, State& dqdt, double dt, Rhs&& rhs) {
  const std::size_t n = q.size();
  stage = q;
  for (const auto& s : kRk3Stages) {
    rhs(stage, dqdt);
    for (std::size_t i = 0; i < n; ++i) {
      stage[i] = s.a * q[i] + s.b * (stage[i] + dt * dqdt[i]);
    }
  }
  q = stage;
}

}  // namespace igr::fv
