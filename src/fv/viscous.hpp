#pragma once
/// \file viscous.hpp
/// Viscous stress tensor (paper eq. 5) and its face-flux contribution.
/// The paper uses 2nd-order accurate velocity derivatives for the stress
/// (§5.2); the same gradients feed the IGR source term.

#include "common/math.hpp"
#include "common/state.hpp"

namespace igr::fv {

/// Velocity gradient tensor at a point: g[a][b] = d u_a / d x_b.
template <class T>
struct VelGrad {
  T g[3][3] = {};

  /// Divergence of velocity, tr(grad u).
  [[nodiscard]] T div() const { return g[0][0] + g[1][1] + g[2][2]; }

  /// tr((grad u)^2) = sum_ab g[a][b] * g[b][a] — the IGR source ingredient.
  [[nodiscard]] T tr_sq() const {
    T s = 0;
    for (int a = 0; a < 3; ++a)
      for (int b = 0; b < 3; ++b) s += g[a][b] * g[b][a];
    return s;
  }
};

/// Newtonian stress tau_ij = mu (du_i/dx_j + du_j/dx_i) + (zeta - 2mu/3)
/// delta_ij div(u)  (paper eq. 5).
template <class T>
void stress_tensor(const VelGrad<T>& g, T mu, T zeta, T tau[3][3]) {
  const T lam = (zeta - T(2) * mu / T(3)) * g.div();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      tau[a][b] = mu * (g.g[a][b] + g.g[b][a]);
    }
    tau[a][a] += lam;
  }
}

/// Viscous flux through a face with unit normal along `dir`:
/// momentum receives -tau(:,dir), energy receives -(u . tau(:,dir)).
/// `uf` is the face velocity (average of the two sides).
template <class T>
common::Cons<T> viscous_flux(const VelGrad<T>& g, const T uf[3], T mu, T zeta,
                             int dir) {
  T tau[3][3];
  stress_tensor(g, mu, zeta, tau);
  common::Cons<T> f;
  f.rho = T(0);
  f.mx = -tau[0][dir];
  f.my = -tau[1][dir];
  f.mz = -tau[2][dir];
  f.e = -(uf[0] * tau[0][dir] + uf[1] * tau[1][dir] + uf[2] * tau[2][dir]);
  return f;
}

}  // namespace igr::fv
