#include "fv/bc.hpp"

#include "common/half.hpp"
#include "common/precision.hpp"

namespace igr::fv {

namespace {

using common::kEnergy;
using common::kMomX;
using common::kMomY;
using common::kMomZ;
using common::kNumVars;
using common::kRho;

/// Momentum component normal to a face's axis.
int normal_mom(int axis) { return kMomX + axis; }

/// Does (t1, t2) fall inside any patch?  Returns the patch or nullptr.
const InflowPatch* find_patch(const std::vector<InflowPatch>& patches,
                              double t1, double t2) {
  for (const auto& p : patches) {
    const double d1 = t1 - p.cx;
    const double d2 = t2 - p.cy;
    if (d1 * d1 + d2 * d2 <= p.radius * p.radius) return &p;
  }
  return nullptr;
}

template <class T>
void fill_axis(common::StateField3<T>& q, const BcSpec& spec,
               const mesh::Grid& grid, const eos::IdealGas& eos, int axis,
               std::array<bool, 2> sides) {
  const int ng = q.ng();
  const int n[3] = {q.nx(), q.ny(), q.nz()};
  // Tangential loop bounds: include ghosts for axes already filled so that
  // edge/corner ghosts end up defined (x first, then y, then z).
  int lo[3], hi[3];
  for (int a = 0; a < 3; ++a) {
    const bool widen = a < axis;
    lo[a] = widen ? -ng : 0;
    hi[a] = widen ? n[a] + ng : n[a];
  }

  for (int side = 0; side < 2; ++side) {
    if (!sides[static_cast<std::size_t>(side)]) continue;
    const auto face = static_cast<mesh::Face>(2 * axis + side);
    const BcKind kind = spec.face_kind(face);
    const auto& patches = spec.patches[static_cast<std::size_t>(face)];

    for (int g = 1; g <= ng; ++g) {
      // Ghost index and its source (interior) index along `axis`.
      const int ghost = (side == 0) ? -g : n[axis] + g - 1;
      const int wrap = (side == 0) ? n[axis] - g : g - 1;
      const int clamp = (side == 0) ? 0 : n[axis] - 1;
      const int mirror = (side == 0) ? g - 1 : n[axis] - g;

      int i0 = lo[0], i1 = hi[0], j0 = lo[1], j1 = hi[1], k0 = lo[2],
          k1 = hi[2];
      // The loop over the normal axis collapses to the single ghost plane.
      if (axis == 0) { i0 = ghost; i1 = ghost + 1; }
      if (axis == 1) { j0 = ghost; j1 = ghost + 1; }
      if (axis == 2) { k0 = ghost; k1 = ghost + 1; }

      for (int k = k0; k < k1; ++k) {
        for (int j = j0; j < j1; ++j) {
          for (int i = i0; i < i1; ++i) {
            int src[3] = {i, j, k};
            switch (kind) {
              case BcKind::kPeriodic:
                src[axis] = wrap;
                for (int c = 0; c < kNumVars; ++c)
                  q[c](i, j, k) = q[c](src[0], src[1], src[2]);
                break;
              case BcKind::kOutflow:
                src[axis] = clamp;
                for (int c = 0; c < kNumVars; ++c)
                  q[c](i, j, k) = q[c](src[0], src[1], src[2]);
                break;
              case BcKind::kReflective: {
                src[axis] = mirror;
                for (int c = 0; c < kNumVars; ++c)
                  q[c](i, j, k) = q[c](src[0], src[1], src[2]);
                const int nm = normal_mom(axis);
                q[nm](i, j, k) = static_cast<T>(
                    -static_cast<double>(q[nm](src[0], src[1], src[2])));
                break;
              }
              case BcKind::kInflowPatches: {
                // Tangential physical coordinates for the patch test.
                double t1 = 0, t2 = 0;
                if (axis == 0) { t1 = grid.y(j); t2 = grid.z(k); }
                if (axis == 1) { t1 = grid.x(i); t2 = grid.z(k); }
                if (axis == 2) { t1 = grid.x(i); t2 = grid.y(j); }
                if (const auto* p = find_patch(patches, t1, t2)) {
                  const auto qc = eos.to_cons(p->state);
                  for (int c = 0; c < kNumVars; ++c)
                    q[c](i, j, k) = static_cast<T>(qc[c]);
                } else {
                  // Base plate between nozzles: reflective wall.
                  src[axis] = mirror;
                  for (int c = 0; c < kNumVars; ++c)
                    q[c](i, j, k) = q[c](src[0], src[1], src[2]);
                  const int nm = normal_mom(axis);
                  q[nm](i, j, k) = static_cast<T>(
                      -static_cast<double>(q[nm](src[0], src[1], src[2])));
                }
                break;
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <class T>
void apply_bc(common::StateField3<T>& q, const BcSpec& spec,
              const mesh::Grid& grid, const eos::IdealGas& eos) {
  for (int axis = 0; axis < 3; ++axis)
    fill_axis(q, spec, grid, eos, axis, {true, true});
}

template <class T>
void apply_bc_axis(common::StateField3<T>& q, const BcSpec& spec,
                   const mesh::Grid& grid, const eos::IdealGas& eos, int axis,
                   std::array<bool, 2> sides) {
  fill_axis(q, spec, grid, eos, axis, sides);
}

#define IGR_INSTANTIATE_BC(T)                                                  \
  template void apply_bc<T>(common::StateField3<T>&, const BcSpec&,           \
                            const mesh::Grid&, const eos::IdealGas&);          \
  template void apply_bc_axis<T>(common::StateField3<T>&, const BcSpec&,      \
                                 const mesh::Grid&, const eos::IdealGas&, int, \
                                 std::array<bool, 2>);

IGR_INSTANTIATE_BC(double)
IGR_INSTANTIATE_BC(float)
IGR_INSTANTIATE_BC(common::half)
#undef IGR_INSTANTIATE_BC

}  // namespace igr::fv
