#include "fv/bc.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/half.hpp"
#include "common/precision.hpp"

namespace igr::fv {

namespace {

using common::kEnergy;
using common::kMomX;
using common::kMomY;
using common::kMomZ;
using common::kNumVars;
using common::kRho;

/// Momentum component normal to a face's axis.
int normal_mom(int axis) { return kMomX + axis; }

/// Does (t1, t2) fall inside any patch?  Returns the patch index or -1.
int find_patch(const std::vector<InflowPatch>& patches, double t1,
               double t2) {
  for (std::size_t p = 0; p < patches.size(); ++p) {
    const double d1 = t1 - patches[p].cx;
    const double d2 = t2 - patches[p].cy;
    if (d1 * d1 + d2 * d2 <= patches[p].radius * patches[p].radius)
      return static_cast<int>(p);
  }
  return -1;
}

/// Ghost fills are hot (every RK stage refills ~0.6 ghost cells per interior
/// cell), so the per-kind loops below copy whole contiguous spans wherever
/// the memory layout allows — a ghost *row* for the y axis (the x ghosts of
/// the tangential axes are already filled), a whole ghost *plane* for the z
/// axis — instead of walking cells through the indexing arithmetic.  Every
/// specialization writes exactly the values of the straightforward per-cell
/// form it replaced.
///
/// The negated normal momentum of a reflective wall uses the same
/// double-negate-cast expression the per-cell form used (negation is exact
/// at every precision, but keeping the expression keeps the intent
/// obvious).
template <class T>
void fill_axis(common::StateField3<T>& q, const BcSpec& spec,
               const mesh::Grid& grid, const eos::IdealGas& eos, int axis,
               std::array<bool, 2> sides) {
  const int ng = q.ng();
  const int n[3] = {q.nx(), q.ny(), q.nz()};
  // Tangential loop bounds: include ghosts for axes already filled so that
  // edge/corner ghosts end up defined (x first, then y, then z).
  int lo[3], hi[3];
  for (int a = 0; a < 3; ++a) {
    const bool widen = a < axis;
    lo[a] = widen ? -ng : 0;
    hi[a] = widen ? n[a] + ng : n[a];
  }

  for (int side = 0; side < 2; ++side) {
    if (!sides[static_cast<std::size_t>(side)]) continue;
    const auto face = static_cast<mesh::Face>(2 * axis + side);
    const auto fidx = static_cast<std::size_t>(face);
    BcKind kind = spec.face_kind(face);
    // A Dirichlet face with no prescribed state extrapolates zero-gradient.
    if (kind == BcKind::kDirichlet && !spec.dirichlet_set[fidx])
      kind = BcKind::kOutflow;
    const auto& patches = spec.patches[static_cast<std::size_t>(face)];

    // Prescribed conservative state of a uniform Dirichlet face, converted
    // once per fill.
    common::Cons<double> dirichlet_cons{};
    if (kind == BcKind::kDirichlet)
      dirichlet_cons = eos.to_cons(spec.dirichlet[fidx]);

    // Injected conservative state per patch, converted once per fill (the
    // per-cell form recomputed it for every ghost cell of every stage).
    std::vector<common::Cons<double>> patch_cons;
    if (kind == BcKind::kInflowPatches) {
      patch_cons.reserve(patches.size());
      for (const auto& p : patches) patch_cons.push_back(eos.to_cons(p.state));
    }

    for (int g = 1; g <= ng; ++g) {
      // Ghost index and its source (interior) index along `axis`.
      const int ghost = (side == 0) ? -g : n[axis] + g - 1;
      const int wrap = (side == 0) ? n[axis] - g : g - 1;
      const int clamp = (side == 0) ? 0 : n[axis] - 1;
      const int mirror = (side == 0) ? g - 1 : n[axis] - g;
      const int src_plain = (kind == BcKind::kPeriodic) ? wrap
                            : (kind == BcKind::kOutflow) ? clamp
                                                         : mirror;
      const int nm = normal_mom(axis);

      if (kind == BcKind::kDirichlet) {
        // Uniform prescribed state: every ghost cell of the face takes one
        // constant per component, so the fills are the same contiguous
        // spans as the copy kinds — a column element per (j, k) row for the
        // x axis, an x-row per k for the y axis, a whole plane for z.
        for (int c = 0; c < kNumVars; ++c) {
          const T dv = static_cast<T>(dirichlet_cons[c]);
          if (axis == 0) {
            for (int k = 0; k < n[2]; ++k)
              for (int j = 0; j < n[1]; ++j) q[c].row(j, k)[ghost] = dv;
          } else if (axis == 1) {
            const std::size_t len = static_cast<std::size_t>(hi[0] - lo[0]);
            for (int k = 0; k < n[2]; ++k)
              std::fill_n(&q[c](lo[0], ghost, k), len, dv);
          } else {
            const std::size_t len =
                static_cast<std::size_t>(hi[0] - lo[0]) *
                static_cast<std::size_t>(hi[1] - lo[1]);
            std::fill_n(&q[c](lo[0], lo[1], ghost), len, dv);
          }
        }
        continue;
      }

      if (axis == 0 && kind != BcKind::kInflowPatches) {
        // Ghost columns: one element per (j, k) row.
        for (int c = 0; c < kNumVars; ++c) {
          const bool negate =
              (kind == BcKind::kReflective) && c == nm;
          for (int k = 0; k < n[2]; ++k) {
            for (int j = 0; j < n[1]; ++j) {
              T* row = q[c].row(j, k);
              row[ghost] = negate
                               ? static_cast<T>(-static_cast<double>(
                                     row[src_plain]))
                               : row[src_plain];
            }
          }
        }
        continue;
      }

      if (axis == 1 && kind != BcKind::kInflowPatches) {
        // Ghost rows: contiguous spans of the extended x extent per k.
        const std::size_t len = static_cast<std::size_t>(hi[0] - lo[0]);
        for (int c = 0; c < kNumVars; ++c) {
          for (int k = 0; k < n[2]; ++k) {
            T* dst = &q[c](lo[0], ghost, k);
            const T* src = &q[c](lo[0], src_plain, k);
            if (kind == BcKind::kReflective && c == nm) {
              for (std::size_t i = 0; i < len; ++i)
                dst[i] = static_cast<T>(-static_cast<double>(src[i]));
            } else {
              std::memcpy(dst, src, len * sizeof(T));
            }
          }
        }
        continue;
      }

      if (axis == 2 && kind != BcKind::kInflowPatches) {
        // Whole ghost planes: the extended (x, y) extent is contiguous.
        const std::size_t len =
            static_cast<std::size_t>(hi[0] - lo[0]) *
            static_cast<std::size_t>(hi[1] - lo[1]);
        for (int c = 0; c < kNumVars; ++c) {
          T* dst = &q[c](lo[0], lo[1], ghost);
          const T* src = &q[c](lo[0], lo[1], src_plain);
          if (kind == BcKind::kReflective && c == nm) {
            for (std::size_t i = 0; i < len; ++i)
              dst[i] = static_cast<T>(-static_cast<double>(src[i]));
          } else {
            std::memcpy(dst, src, len * sizeof(T));
          }
        }
        continue;
      }

      // Inflow patches (the per-cell decision path).
      for (int k = (axis == 2) ? ghost : lo[2];
           k < ((axis == 2) ? ghost + 1 : hi[2]); ++k) {
        for (int j = (axis == 1) ? ghost : lo[1];
             j < ((axis == 1) ? ghost + 1 : hi[1]); ++j) {
          for (int i = (axis == 0) ? ghost : lo[0];
               i < ((axis == 0) ? ghost + 1 : hi[0]); ++i) {
            double t1 = 0, t2 = 0;
            if (axis == 0) { t1 = grid.y(j); t2 = grid.z(k); }
            if (axis == 1) { t1 = grid.x(i); t2 = grid.z(k); }
            if (axis == 2) { t1 = grid.x(i); t2 = grid.y(j); }
            const int p = find_patch(patches, t1, t2);
            if (p >= 0) {
              const auto& qc = patch_cons[static_cast<std::size_t>(p)];
              for (int c = 0; c < kNumVars; ++c)
                q[c](i, j, k) = static_cast<T>(qc[c]);
            } else {
              // Base plate between nozzles: reflective wall.
              int src[3] = {i, j, k};
              src[axis] = mirror;
              for (int c = 0; c < kNumVars; ++c)
                q[c](i, j, k) = q[c](src[0], src[1], src[2]);
              q[nm](i, j, k) = static_cast<T>(
                  -static_cast<double>(q[nm](src[0], src[1], src[2])));
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <class T>
void apply_bc(common::StateField3<T>& q, const BcSpec& spec,
              const mesh::Grid& grid, const eos::IdealGas& eos) {
  for (int axis = 0; axis < 3; ++axis)
    fill_axis(q, spec, grid, eos, axis, {true, true});
}

template <class T>
void apply_bc_axis(common::StateField3<T>& q, const BcSpec& spec,
                   const mesh::Grid& grid, const eos::IdealGas& eos, int axis,
                   std::array<bool, 2> sides) {
  fill_axis(q, spec, grid, eos, axis, sides);
}

#define IGR_INSTANTIATE_BC(T)                                                  \
  template void apply_bc<T>(common::StateField3<T>&, const BcSpec&,           \
                            const mesh::Grid&, const eos::IdealGas&);          \
  template void apply_bc_axis<T>(common::StateField3<T>&, const BcSpec&,      \
                                 const mesh::Grid&, const eos::IdealGas&, int, \
                                 std::array<bool, 2>);

IGR_INSTANTIATE_BC(double)
IGR_INSTANTIATE_BC(float)
IGR_INSTANTIATE_BC(common::half)
IGR_INSTANTIATE_BC(common::bfloat16)
#undef IGR_INSTANTIATE_BC

}  // namespace igr::fv
