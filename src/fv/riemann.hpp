#pragma once
/// \file riemann.hpp
/// Approximate Riemann solvers at cell faces.
///
/// IGR uses the Lax–Friedrichs (Rusanov) flux (§5.2): with shocks smoothed at
/// the grid scale, no upwinding sophistication is required.  The baseline
/// pairs WENO5 with HLLC (§6.2).  Both operate on primitive face states plus
/// an entropic-pressure value Sigma (zero for the baseline), implementing the
/// modified conservation law eqs. (6)-(8): p -> p + Sigma in the momentum and
/// energy fluxes.

#include <algorithm>
#include <cmath>

#include "common/state.hpp"

namespace igr::fv {

/// Physical (Euler) flux along compile-time axis `Dir` with entropic
/// pressure — the hot-loop form: the axis selection and the pressure
/// placement resolve at compile time.
template <int Dir, class T>
common::Cons<T> euler_flux_d(const common::Prim<T>& w, T E, T sigma) {
  const T un = (Dir == 0) ? w.u : (Dir == 1) ? w.v : w.w;
  const T pt = w.p + sigma;
  common::Cons<T> f;
  f.rho = w.rho * un;
  f.mx = w.rho * w.u * un;
  f.my = w.rho * w.v * un;
  f.mz = w.rho * w.w * un;
  if constexpr (Dir == 0) f.mx += pt;
  if constexpr (Dir == 1) f.my += pt;
  if constexpr (Dir == 2) f.mz += pt;
  f.e = (E + pt) * un;
  return f;
}

/// Physical (Euler) flux along axis `dir` (0,1,2) with entropic pressure.
template <class T>
common::Cons<T> euler_flux(const common::Prim<T>& w, T E, T sigma, int dir) {
  switch (dir) {
    case 0: return euler_flux_d<0>(w, E, sigma);
    case 1: return euler_flux_d<1>(w, E, sigma);
    default: return euler_flux_d<2>(w, E, sigma);
  }
}

/// Rusanov flux, compile-time axis, division-free: callers supply the
/// reciprocal densities (they already hold them from the primitive
/// conversion), so the wave-speed bound multiplies instead of divides.
template <int Dir, class T>
common::Cons<T> rusanov_flux_d(const common::Prim<T>& wl, T El, T sl, T irl,
                               const common::Prim<T>& wr, T Er, T sr, T irr,
                               T gamma) {
  const T unl = (Dir == 0) ? wl.u : (Dir == 1) ? wl.v : wl.w;
  const T unr = (Dir == 0) ? wr.u : (Dir == 1) ? wr.v : wr.w;
  const T cl = std::sqrt(gamma * std::max(wl.p + sl, T(0)) * irl);
  const T cr = std::sqrt(gamma * std::max(wr.p + sr, T(0)) * irr);
  const T smax = std::max(std::abs(unl) + cl, std::abs(unr) + cr);

  const auto fl = euler_flux_d<Dir>(wl, El, sl);
  const auto fr = euler_flux_d<Dir>(wr, Er, sr);

  common::Cons<T> ql{wl.rho, wl.rho * wl.u, wl.rho * wl.v, wl.rho * wl.w, El};
  common::Cons<T> qr{wr.rho, wr.rho * wr.u, wr.rho * wr.v, wr.rho * wr.w, Er};

  common::Cons<T> f;
  for (int c = 0; c < common::kNumVars; ++c) {
    f[c] = T(0.5) * (fl[c] + fr[c]) - T(0.5) * smax * (qr[c] - ql[c]);
  }
  return f;
}

/// Rusanov (local Lax–Friedrichs) flux.  `gamma` enters through the sound
/// speed estimate; Sigma augments the pressure in both the flux and the wave
/// speed bound (a slight overestimate, which only adds robustness).
template <class T>
common::Cons<T> rusanov_flux(const common::Prim<T>& wl, T El, T sl,
                             const common::Prim<T>& wr, T Er, T sr,
                             T gamma, int dir) {
  const T irl = T(1) / wl.rho;
  const T irr = T(1) / wr.rho;
  switch (dir) {
    case 0: return rusanov_flux_d<0>(wl, El, sl, irl, wr, Er, sr, irr, gamma);
    case 1: return rusanov_flux_d<1>(wl, El, sl, irl, wr, Er, sr, irr, gamma);
    default: return rusanov_flux_d<2>(wl, El, sl, irl, wr, Er, sr, irr,
                                      gamma);
  }
}

/// HLLC flux (Toro), used by the WENO baseline.  Sigma is accepted for
/// interface symmetry but conventional baselines run with Sigma = 0.
template <class T>
common::Cons<T> hllc_flux(const common::Prim<T>& wl, T El,
                          const common::Prim<T>& wr, T Er,
                          T gamma, int dir) {
  const T unl = (dir == 0) ? wl.u : (dir == 1) ? wl.v : wl.w;
  const T unr = (dir == 0) ? wr.u : (dir == 1) ? wr.v : wr.w;
  const T cl = std::sqrt(gamma * std::max(wl.p, T(1e-30)) / wl.rho);
  const T cr = std::sqrt(gamma * std::max(wr.p, T(1e-30)) / wr.rho);

  // Davis wave-speed estimates.
  const T s_l = std::min(unl - cl, unr - cr);
  const T s_r = std::max(unl + cl, unr + cr);
  const T s_m = (wr.p - wl.p + wl.rho * unl * (s_l - unl) -
                 wr.rho * unr * (s_r - unr)) /
                (wl.rho * (s_l - unl) - wr.rho * (s_r - unr));

  common::Cons<T> ql{wl.rho, wl.rho * wl.u, wl.rho * wl.v, wl.rho * wl.w, El};
  common::Cons<T> qr{wr.rho, wr.rho * wr.u, wr.rho * wr.v, wr.rho * wr.w, Er};
  const auto fl = euler_flux(wl, El, T(0), dir);
  const auto fr = euler_flux(wr, Er, T(0), dir);

  if (s_l >= T(0)) return fl;
  if (s_r <= T(0)) return fr;

  auto star = [&](const common::Prim<T>& w, const common::Cons<T>& q, T E,
                  T un, T s) {
    const T fac = w.rho * (s - un) / (s - s_m);
    common::Cons<T> qs;
    qs.rho = fac;
    qs.mx = fac * ((dir == 0) ? s_m : w.u);
    qs.my = fac * ((dir == 1) ? s_m : w.v);
    qs.mz = fac * ((dir == 2) ? s_m : w.w);
    qs.e = fac * (E / w.rho + (s_m - un) * (s_m + w.p / (w.rho * (s - un))));
    (void)q;
    return qs;
  };

  if (s_m >= T(0)) {
    const auto qs = star(wl, ql, El, unl, s_l);
    common::Cons<T> f;
    for (int c = 0; c < common::kNumVars; ++c) f[c] = fl[c] + s_l * (qs[c] - ql[c]);
    return f;
  }
  const auto qs = star(wr, qr, Er, unr, s_r);
  common::Cons<T> f;
  for (int c = 0; c < common::kNumVars; ++c) f[c] = fr[c] + s_r * (qs[c] - qr[c]);
  return f;
}

}  // namespace igr::fv
