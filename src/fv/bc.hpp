#pragma once
/// \file bc.hpp
/// Boundary conditions on the ghost layers of a StateField3.
///
/// Supported kinds: periodic, outflow (zero-gradient extrapolation),
/// reflective slip wall, uniform Dirichlet (a whole face held at one
/// prescribed primitive state — shock-tube driver sections and planar
/// inflows), and Dirichlet inflow patches (how the paper models the rocket
/// engines: "We model them through inflow boundary conditions", Fig. 1
/// caption).  Inflow patches are circles on a face with a prescribed
/// primitive state; cells outside every patch fall back to the face's base
/// kind (typically reflective — the rocket base plate).

#include <array>
#include <vector>

#include "common/field3.hpp"
#include "common/state.hpp"
#include "eos/ideal_gas.hpp"
#include "mesh/decomp.hpp"
#include "mesh/grid.hpp"

namespace igr::fv {

enum class BcKind {
  kPeriodic,
  kOutflow,
  kReflective,
  kInflowPatches,
  /// Whole face held at one prescribed primitive state (BcSpec::dirichlet).
  /// A face marked kDirichlet without a prescribed state falls back to
  /// zero-gradient extrapolation (identical to kOutflow).
  kDirichlet,
};

/// Circular inflow patch on a z/y/x-face: engine nozzle exit.
struct InflowPatch {
  double cx = 0.0;    ///< Patch center, first tangential coordinate.
  double cy = 0.0;    ///< Patch center, second tangential coordinate.
  double radius = 0.1;
  common::Prim<double> state;  ///< Injected primitive state.
};

/// Per-face boundary specification.
struct BcSpec {
  std::array<BcKind, mesh::kNumFaces> kind{
      BcKind::kPeriodic, BcKind::kPeriodic, BcKind::kPeriodic,
      BcKind::kPeriodic, BcKind::kPeriodic, BcKind::kPeriodic};
  /// Patches per face (only consulted when kind == kInflowPatches).
  std::array<std::vector<InflowPatch>, mesh::kNumFaces> patches{};
  /// Per-face uniform Dirichlet state (only consulted when kind ==
  /// kDirichlet and the matching `dirichlet_set` flag is on; an unset
  /// Dirichlet face extrapolates zero-gradient instead).
  std::array<common::Prim<double>, mesh::kNumFaces> dirichlet{};
  std::array<bool, mesh::kNumFaces> dirichlet_set{};

  static BcSpec all_periodic() { return {}; }
  static BcSpec all_outflow() {
    BcSpec b;
    b.kind.fill(BcKind::kOutflow);
    return b;
  }

  /// Mark `f` as a uniform Dirichlet face holding primitive state `w`.
  void set_dirichlet(mesh::Face f, const common::Prim<double>& w) {
    const auto s = static_cast<std::size_t>(f);
    kind[s] = BcKind::kDirichlet;
    dirichlet[s] = w;
    dirichlet_set[s] = true;
  }

  [[nodiscard]] BcKind face_kind(mesh::Face f) const {
    return kind[static_cast<std::size_t>(f)];
  }
};

/// Fill all ghost layers of `q` according to `spec`.  The grid supplies
/// physical coordinates for inflow-patch tests.  Implemented as a template
/// over storage type; instantiated for double, float, and half.
template <class T>
void apply_bc(common::StateField3<T>& q, const BcSpec& spec,
              const mesh::Grid& grid, const eos::IdealGas& eos);

/// Fill the ghost layers of one axis only, optionally restricted to one
/// side (`sides[0]` = low face, `sides[1]` = high face).  Distributed
/// drivers use this to fill *physical* faces while halo exchange covers
/// interior faces, interleaved per axis so corner ghosts match the
/// single-domain fill ordering.
template <class T>
void apply_bc_axis(common::StateField3<T>& q, const BcSpec& spec,
                   const mesh::Grid& grid, const eos::IdealGas& eos, int axis,
                   std::array<bool, 2> sides);

// Explicit instantiations live in bc.cpp.
}  // namespace igr::fv
