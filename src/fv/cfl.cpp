#include "fv/cfl.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/bfloat16.hpp"
#include "common/exec.hpp"
#include "common/half.hpp"

namespace igr::fv {

template <class T>
void accumulate_cfl_rates(const common::StateField3<T>& q,
                          const mesh::Grid& grid, const eos::IdealGas& eos,
                          const common::SolverConfig& cfg,
                          const common::Field3<T>* sigma, int k0, int k1,
                          CflRates& r) {
  const int nx = q.nx(), ny = q.ny();

  // For binary16 storage, pull each row through the batched conversion
  // lanes once instead of 6 scalar conversions per cell.  The rate math
  // below is shared and stays in double either way: half -> float is exact
  // and float -> double is exact, so both row forms feed identical values.
  const bool batch_rows =
      std::is_same_v<T, common::half> && cfg.batch_half_conversion;
  const std::size_t nxs = static_cast<std::size_t>(nx);

  // Each team member folds its plane chunk into local extrema and merges
  // them under a mutex: max/min are exact and order-independent, so the
  // merged result is bitwise the serial fold (and bitwise what the old
  // `omp reduction(max/min)` produced) for every team width.
  const common::ExecSpace exec = cfg.exec();
  std::mutex merge_mutex;
  double merged_max_rate = r.max_rate;
  double merged_min_rho = r.min_rho;
  exec.run_team([&](const common::ExecSpace::Team& t) {
    std::vector<float> row_buf;
    if (batch_rows) row_buf.resize((common::kNumVars + 1) * nxs);
    double max_rate = r.max_rate;
    double min_rho = r.min_rho;
    long cb, ce;
    t.chunk(k1 - k0, cb, ce);
    for (long kk = cb; kk < ce; ++kk) {
    const int k = k0 + static_cast<int>(kk);
    for (int j = 0; j < ny; ++j) {
      if constexpr (std::is_same_v<T, common::half>) {
        if (batch_rows) {
          for (int c = 0; c < common::kNumVars; ++c)
            common::convert_to_float(q[c].row(j, k), row_buf.data() + c * nxs,
                                     nxs);
          if (sigma)
            common::convert_to_float(
                sigma->row(j, k),
                row_buf.data() + common::kNumVars * nxs, nxs);
          for (int i = 0; i < nx; ++i) {
            common::Cons<double> qc;
            for (int c = 0; c < common::kNumVars; ++c)
              qc[c] = static_cast<double>(
                  row_buf[static_cast<std::size_t>(c) * nxs + i]);
            const auto w = eos.to_prim(qc);
            const double sig =
                sigma ? std::max(static_cast<double>(
                                     row_buf[common::kNumVars * nxs + i]),
                                 0.0)
                      : 0.0;
            const double cs =
                eos.sound_speed(w.rho, std::max(w.p, 1e-300) + sig);
            const double rate = (std::abs(w.u) + cs) / grid.dx() +
                                (std::abs(w.v) + cs) / grid.dy() +
                                (std::abs(w.w) + cs) / grid.dz();
            max_rate = std::max(max_rate, rate);
            min_rho = std::min(min_rho, w.rho);
          }
          continue;
        }
      }
      for (int i = 0; i < nx; ++i) {
        common::Cons<double> qc;
        for (int c = 0; c < common::kNumVars; ++c)
          qc[c] = static_cast<double>(q[c](i, j, k));
        const auto w = eos.to_prim(qc);
        const double sig =
            sigma ? std::max(static_cast<double>((*sigma)(i, j, k)), 0.0)
                  : 0.0;
        const double cs =
            eos.sound_speed(w.rho, std::max(w.p, 1e-300) + sig);
        const double rate = (std::abs(w.u) + cs) / grid.dx() +
                            (std::abs(w.v) + cs) / grid.dy() +
                            (std::abs(w.w) + cs) / grid.dz();
        max_rate = std::max(max_rate, rate);
        min_rho = std::min(min_rho, w.rho);
      }
    }
    }
    std::lock_guard<std::mutex> g(merge_mutex);
    merged_max_rate = std::max(merged_max_rate, max_rate);
    merged_min_rho = std::min(merged_min_rho, min_rho);
  });

  r.max_rate = merged_max_rate;
  r.min_rho = merged_min_rho;
}

double cfl_dt_from_rates(const CflRates& r, const mesh::Grid& grid,
                         const common::SolverConfig& cfg) {
  double dt = cfg.cfl / r.max_rate;

  // Explicit-diffusion stability when viscous terms are active.
  const double nu = std::max(cfg.mu, cfg.zeta) / std::max(r.min_rho, 1e-300);
  if (nu > 0.0) {
    const double inv2 = 1.0 / (grid.dx() * grid.dx()) +
                        1.0 / (grid.dy() * grid.dy()) +
                        1.0 / (grid.dz() * grid.dz());
    dt = std::min(dt, cfg.cfl / (2.0 * nu * inv2));
  }
  return dt;
}

template <class T>
double compute_dt(const common::StateField3<T>& q, const mesh::Grid& grid,
                  const eos::IdealGas& eos, const common::SolverConfig& cfg,
                  const common::Field3<T>* sigma) {
  CflRates r;
  accumulate_cfl_rates(q, grid, eos, cfg, sigma, 0, q.nz(), r);
  return cfl_dt_from_rates(r, grid, cfg);
}

#define IGR_INSTANTIATE_CFL(T)                                                 \
  template void accumulate_cfl_rates<T>(                                       \
      const common::StateField3<T>&, const mesh::Grid&, const eos::IdealGas&,  \
      const common::SolverConfig&, const common::Field3<T>*, int, int,         \
      CflRates&);                                                              \
  template double compute_dt<T>(const common::StateField3<T>&,                 \
                                const mesh::Grid&, const eos::IdealGas&,       \
                                const common::SolverConfig&,                   \
                                const common::Field3<T>*);

IGR_INSTANTIATE_CFL(double)
IGR_INSTANTIATE_CFL(float)
IGR_INSTANTIATE_CFL(common::half)
IGR_INSTANTIATE_CFL(common::bfloat16)
#undef IGR_INSTANTIATE_CFL

double compute_dt_1d(const double* rho, const double* mom, const double* e,
                     int n, double dx, double gamma, double cfl) {
  double smax = 1e-300;
  for (int i = 0; i < n; ++i) {
    const double u = mom[i] / rho[i];
    const double p =
        std::max((gamma - 1.0) * (e[i] - 0.5 * mom[i] * u), 1e-300);
    const double c = std::sqrt(gamma * p / rho[i]);
    smax = std::max(smax, std::abs(u) + c);
  }
  return cfl * dx / smax;
}

}  // namespace igr::fv
