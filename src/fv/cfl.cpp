#include "fv/cfl.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/half.hpp"

namespace igr::fv {

template <class T>
double compute_dt(const common::StateField3<T>& q, const mesh::Grid& grid,
                  const eos::IdealGas& eos, const common::SolverConfig& cfg,
                  const common::Field3<T>* sigma) {
  const int nx = q.nx(), ny = q.ny(), nz = q.nz();
  double max_rate = 1e-300;
  double min_rho = 1e300;

  // For binary16 storage, pull each row through the batched conversion
  // lanes once instead of 6 scalar conversions per cell.  The rate math
  // below is shared and stays in double either way: half -> float is exact
  // and float -> double is exact, so both row forms feed identical values.
  const bool batch_rows =
      std::is_same_v<T, common::half> && cfg.batch_half_conversion;
  const std::size_t nxs = static_cast<std::size_t>(nx);
  std::vector<float> row_buf;
  if (batch_rows) row_buf.resize((common::kNumVars + 1) * nxs);

#pragma omp parallel for reduction(max : max_rate) reduction(min : min_rho) \
    firstprivate(row_buf)
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      if constexpr (std::is_same_v<T, common::half>) {
        if (batch_rows) {
          for (int c = 0; c < common::kNumVars; ++c)
            common::convert_to_float(q[c].row(j, k), row_buf.data() + c * nxs,
                                     nxs);
          if (sigma)
            common::convert_to_float(
                sigma->row(j, k),
                row_buf.data() + common::kNumVars * nxs, nxs);
          for (int i = 0; i < nx; ++i) {
            common::Cons<double> qc;
            for (int c = 0; c < common::kNumVars; ++c)
              qc[c] = static_cast<double>(
                  row_buf[static_cast<std::size_t>(c) * nxs + i]);
            const auto w = eos.to_prim(qc);
            const double sig =
                sigma ? std::max(static_cast<double>(
                                     row_buf[common::kNumVars * nxs + i]),
                                 0.0)
                      : 0.0;
            const double cs =
                eos.sound_speed(w.rho, std::max(w.p, 1e-300) + sig);
            const double rate = (std::abs(w.u) + cs) / grid.dx() +
                                (std::abs(w.v) + cs) / grid.dy() +
                                (std::abs(w.w) + cs) / grid.dz();
            max_rate = std::max(max_rate, rate);
            min_rho = std::min(min_rho, w.rho);
          }
          continue;
        }
      }
      for (int i = 0; i < nx; ++i) {
        common::Cons<double> qc;
        for (int c = 0; c < common::kNumVars; ++c)
          qc[c] = static_cast<double>(q[c](i, j, k));
        const auto w = eos.to_prim(qc);
        const double sig =
            sigma ? std::max(static_cast<double>((*sigma)(i, j, k)), 0.0)
                  : 0.0;
        const double cs =
            eos.sound_speed(w.rho, std::max(w.p, 1e-300) + sig);
        const double rate = (std::abs(w.u) + cs) / grid.dx() +
                            (std::abs(w.v) + cs) / grid.dy() +
                            (std::abs(w.w) + cs) / grid.dz();
        max_rate = std::max(max_rate, rate);
        min_rho = std::min(min_rho, w.rho);
      }
    }
  }

  double dt = cfg.cfl / max_rate;

  // Explicit-diffusion stability when viscous terms are active.
  const double nu = std::max(cfg.mu, cfg.zeta) / std::max(min_rho, 1e-300);
  if (nu > 0.0) {
    const double inv2 = 1.0 / (grid.dx() * grid.dx()) +
                        1.0 / (grid.dy() * grid.dy()) +
                        1.0 / (grid.dz() * grid.dz());
    dt = std::min(dt, cfg.cfl / (2.0 * nu * inv2));
  }
  return dt;
}

template double compute_dt<double>(const common::StateField3<double>&,
                                   const mesh::Grid&, const eos::IdealGas&,
                                   const common::SolverConfig&,
                                   const common::Field3<double>*);
template double compute_dt<float>(const common::StateField3<float>&,
                                  const mesh::Grid&, const eos::IdealGas&,
                                  const common::SolverConfig&,
                                  const common::Field3<float>*);
template double compute_dt<common::half>(
    const common::StateField3<common::half>&, const mesh::Grid&,
    const eos::IdealGas&, const common::SolverConfig&,
    const common::Field3<common::half>*);

double compute_dt_1d(const double* rho, const double* mom, const double* e,
                     int n, double dx, double gamma, double cfl) {
  double smax = 1e-300;
  for (int i = 0; i < n; ++i) {
    const double u = mom[i] / rho[i];
    const double p =
        std::max((gamma - 1.0) * (e[i] - 0.5 * mom[i] * u), 1e-300);
    const double c = std::sqrt(gamma * p / rho[i]);
    smax = std::max(smax, std::abs(u) + c);
  }
  return cfl * dx / smax;
}

}  // namespace igr::fv
