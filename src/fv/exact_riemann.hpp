#pragma once
/// \file exact_riemann.hpp
/// Exact solver for the 1-D Riemann problem of the ideal-gas Euler equations
/// (Toro, ch. 4).  Serves as ground truth for the Fig. 2 shock comparisons
/// and for validating both the IGR and baseline schemes.

#include <vector>

namespace igr::fv {

/// 1-D primitive state (rho, u, p).
struct Prim1D {
  double rho;
  double u;
  double p;
};

/// Exact self-similar Riemann solution for given left/right states.
class ExactRiemann {
 public:
  ExactRiemann(Prim1D left, Prim1D right, double gamma);

  /// Star-region pressure and velocity.
  [[nodiscard]] double p_star() const { return p_star_; }
  [[nodiscard]] double u_star() const { return u_star_; }

  /// Sample the solution at similarity coordinate xi = x/t.
  [[nodiscard]] Prim1D sample(double xi) const;

  /// Sample on a uniform grid of n cells over [x0, x1] at time t, with the
  /// initial discontinuity at xd.
  [[nodiscard]] std::vector<Prim1D> sample_profile(int n, double x0, double x1,
                                                   double xd, double t) const;

 private:
  [[nodiscard]] double f_side(double p, const Prim1D& s, double c) const;
  [[nodiscard]] double df_side(double p, const Prim1D& s, double c) const;
  void solve_star();

  Prim1D l_, r_;
  double gamma_;
  double cl_, cr_;
  double p_star_ = 0.0, u_star_ = 0.0;
};

/// Classic Sod shock-tube states (left: rho=1,p=1; right: rho=0.125,p=0.1).
Prim1D sod_left();
Prim1D sod_right();

}  // namespace igr::fv
