#pragma once
/// \file reconstruct.hpp
/// Interface reconstruction operators.
///
/// IGR permits *linear* (non-adaptive) high-order reconstruction — the paper
/// uses "a 5th-order accurate polynomial interpolation scheme" (§5.3) since
/// no shock capturing is needed.  The WENO5-JS nonlinear reconstruction is
/// provided for the state-of-the-art baseline (§6.2).
///
/// All operators act on a 6-point stencil s = { q(i-2) ... q(i+3) } around the
/// face i+1/2 (the paper's q(-2:3)) and return the left/right face states.

#include <array>

#include "common/math.hpp"

namespace igr::fv {

/// Left/right states at one face.
template <class T>
struct FacePair {
  T left{}, right{};
};

/// Reconstruction scheme selector used by solver configuration.
enum class ReconScheme { kFirst, kThird, kFifth, kWeno5 };

template <ReconScheme R, class T>
inline FacePair<T> reconstruct_fixed(const T* s);

/// First-order (Godunov) reconstruction: piecewise-constant.
template <class T>
FacePair<T> recon1(const std::array<T, 6>& s) {
  return reconstruct_fixed<ReconScheme::kFirst>(s.data());
}

/// Third-order upwind-biased linear reconstruction.
template <class T>
FacePair<T> recon3(const std::array<T, 6>& s) {
  return reconstruct_fixed<ReconScheme::kThird>(s.data());
}

/// Fifth-order upwind-biased linear reconstruction (the IGR scheme's default).
template <class T>
FacePair<T> recon5(const std::array<T, 6>& s) {
  return reconstruct_fixed<ReconScheme::kFifth>(s.data());
}

/// WENO5-JS smoothness indicators and weights for one upwind triple.
/// `a,b,c,d,e` are the five stencil values ordered upwind-to-downwind.
template <class T>
T weno5_side(T a, T b, T c, T d, T e) {
  using common::sq;
  const T thirteen_twelfths = T(13) / T(12);
  const T beta0 = thirteen_twelfths * sq(a - T(2) * b + c) +
                  T(0.25) * sq(a - T(4) * b + T(3) * c);
  const T beta1 = thirteen_twelfths * sq(b - T(2) * c + d) +
                  T(0.25) * sq(b - d);
  const T beta2 = thirteen_twelfths * sq(c - T(2) * d + e) +
                  T(0.25) * sq(T(3) * c - T(4) * d + e);
  const T eps = T(1e-6);
  T w0 = T(0.1) / sq(eps + beta0);
  T w1 = T(0.6) / sq(eps + beta1);
  T w2 = T(0.3) / sq(eps + beta2);
  const T wsum = w0 + w1 + w2;
  w0 /= wsum;
  w1 /= wsum;
  w2 /= wsum;
  const T p0 = (T(2) * a - T(7) * b + T(11) * c) / T(6);
  const T p1 = (-b + T(5) * c + T(2) * d) / T(6);
  const T p2 = (T(2) * c + T(5) * d - e) / T(6);
  return w0 * p0 + w1 * p1 + w2 * p2;
}

/// WENO5-JS reconstruction of both face states (baseline scheme).
template <class T>
FacePair<T> weno5(const std::array<T, 6>& s) {
  return reconstruct_fixed<ReconScheme::kWeno5>(s.data());
}

template <class T>
FacePair<T> reconstruct(ReconScheme scheme, const std::array<T, 6>& s) {
  switch (scheme) {
    case ReconScheme::kFirst: return recon1(s);
    case ReconScheme::kThird: return recon3(s);
    case ReconScheme::kFifth: return recon5(s);
    case ReconScheme::kWeno5: return weno5(s);
  }
  return recon1(s);
}

/// Compile-time-dispatched pointer variant for hot loops walking contiguous
/// line buffers: `s` points at q(i-2) for the face i+1/2.  Solvers resolve
/// the scheme once per flux computation and instantiate their sweeps on it,
/// so the per-face/per-variable dispatch below inlines away entirely and the
/// face loops vectorize.  This is the single home of the stencil
/// coefficients: the array-based named operators above and the runtime
/// `reconstruct(scheme, s)` all forward here, which also makes the two
/// dispatch styles bitwise-identical (tests/test_flux_dispatch.cpp).
/// Value form of the 6-point stencil operators: the single home of the
/// stencil arithmetic.  The pointer form below forwards here, and the
/// row-streaming flux kernel calls it with one value per stencil row — so a
/// gathered line and six strided rows feed the exact same expressions and
/// produce the exact same bits.
template <ReconScheme R, class T>
inline FacePair<T> reconstruct_vals(T s0, T s1, T s2, T s3, T s4, T s5) {
  if constexpr (R == ReconScheme::kFirst) {
    (void)s0; (void)s1; (void)s4; (void)s5;
    return {s2, s3};
  } else if constexpr (R == ReconScheme::kThird) {
    (void)s0; (void)s5;
    return {(-s1 + T(5) * s2 + T(2) * s3) / T(6),
            (T(2) * s2 + T(5) * s3 - s4) / T(6)};
  } else if constexpr (R == ReconScheme::kFifth) {
    return {(T(2) * s0 - T(13) * s1 + T(47) * s2 + T(27) * s3 -
             T(3) * s4) / T(60),
            (-T(3) * s1 + T(27) * s2 + T(47) * s3 - T(13) * s4 +
             T(2) * s5) / T(60)};
  } else {
    return {weno5_side(s0, s1, s2, s3, s4),
            weno5_side(s5, s4, s3, s2, s1)};
  }
}

template <ReconScheme R, class T>
inline FacePair<T> reconstruct_fixed(const T* s) {
  return reconstruct_vals<R>(s[0], s[1], s[2], s[3], s[4], s[5]);
}

/// Runtime-dispatched pointer variant; the reference path.  Hot loops should
/// not call this per face — resolve the scheme once and use the functors
/// below (ReconFixed) or `reconstruct_fixed` directly.
template <class T>
FacePair<T> reconstruct(ReconScheme scheme, const T* s) {
  switch (scheme) {
    case ReconScheme::kFirst: return reconstruct_fixed<ReconScheme::kFirst>(s);
    case ReconScheme::kThird: return reconstruct_fixed<ReconScheme::kThird>(s);
    case ReconScheme::kFifth: return reconstruct_fixed<ReconScheme::kFifth>(s);
    case ReconScheme::kWeno5: return reconstruct_fixed<ReconScheme::kWeno5>(s);
  }
  return {s[2], s[3]};
}

/// Zero-size functor binding the scheme at compile time; sweeps templated on
/// a recon operator inline it into their face loops.
template <ReconScheme R>
struct ReconFixed {
  template <class T>
  FacePair<T> operator()(const T* s) const {
    return reconstruct_fixed<R, T>(s);
  }
  /// Value form for row-streaming kernels (stencil rows, one value each).
  template <class T>
  FacePair<T> vals(T s0, T s1, T s2, T s3, T s4, T s5) const {
    return reconstruct_vals<R, T>(s0, s1, s2, s3, s4, s5);
  }
};

/// Runtime-bound recon operator: the pre-dispatch reference path, retained
/// for equivalence testing of the compile-time instantiations.
struct ReconRuntime {
  ReconScheme scheme = ReconScheme::kFifth;
  template <class T>
  FacePair<T> operator()(const T* s) const {
    return reconstruct(scheme, s);
  }
};

/// Invoke `fn` with the ReconFixed functor matching a runtime `scheme` — the
/// thin runtime dispatcher solvers use at the compute_fluxes level.
template <class Fn>
decltype(auto) dispatch_recon(ReconScheme scheme, Fn&& fn) {
  switch (scheme) {
    case ReconScheme::kFirst: return fn(ReconFixed<ReconScheme::kFirst>{});
    case ReconScheme::kThird: return fn(ReconFixed<ReconScheme::kThird>{});
    case ReconScheme::kFifth: return fn(ReconFixed<ReconScheme::kFifth>{});
    case ReconScheme::kWeno5: return fn(ReconFixed<ReconScheme::kWeno5>{});
  }
  return fn(ReconFixed<ReconScheme::kFirst>{});
}

}  // namespace igr::fv
