#pragma once
/// \file cfl.hpp
/// Time-step control.  The advective limit uses the acoustic spectral radius
/// per direction; an explicit-diffusion limit applies when viscosities are
/// active.  IGR itself imposes no extra CFL restriction — a key advantage the
/// paper notes over strong artificial viscosity (§4.1).

#include "common/config.hpp"
#include "common/field3.hpp"
#include "eos/ideal_gas.hpp"
#include "mesh/grid.hpp"

namespace igr::fv {

/// Maximum stable dt for conservative state `q` on `grid`.
/// Computed in double regardless of storage precision.  When `sigma` is
/// given, the entropic pressure augments the acoustic speed (eqs. 7-8 add
/// Sigma to p), tightening the bound for large regularization strengths.
template <class T>
double compute_dt(const common::StateField3<T>& q, const mesh::Grid& grid,
                  const eos::IdealGas& eos, const common::SolverConfig& cfg,
                  const common::Field3<T>* sigma = nullptr);

/// Advective dt for a 1-D state (density/momentum/energy arrays).
double compute_dt_1d(const double* rho, const double* mom, const double* e,
                     int n, double dx, double gamma, double cfl);

}  // namespace igr::fv
