#pragma once
/// \file cfl.hpp
/// Time-step control.  The advective limit uses the acoustic spectral radius
/// per direction; an explicit-diffusion limit applies when viscosities are
/// active.  IGR itself imposes no extra CFL restriction — a key advantage the
/// paper notes over strong artificial viscosity (§4.1).

#include "common/config.hpp"
#include "common/field3.hpp"
#include "eos/ideal_gas.hpp"
#include "mesh/grid.hpp"

namespace igr::fv {

/// Running extrema of the CFL scan: the acoustic spectral-radius maximum and
/// the density minimum (the latter feeds the explicit-diffusion limit).
/// Both reductions are exact max/min — accumulation order cannot change the
/// result — so a fused solver may fold the scan into any traversal that
/// visits every interior cell once and still produce the bitwise dt of a
/// dedicated pass.
struct CflRates {
  double max_rate = 1e-300;
  double min_rho = 1e300;
};

/// Accumulate the CFL extrema over interior planes k ∈ [k0, k1) into `r`.
/// Per-cell arithmetic is identical to compute_dt's (double regardless of
/// storage precision; `sigma`, when given, augments the acoustic speed).
template <class T>
void accumulate_cfl_rates(const common::StateField3<T>& q,
                          const mesh::Grid& grid, const eos::IdealGas& eos,
                          const common::SolverConfig& cfg,
                          const common::Field3<T>* sigma, int k0, int k1,
                          CflRates& r);

/// The dt the accumulated extrema imply (advective limit, plus the
/// explicit-diffusion limit when viscosities are active).
double cfl_dt_from_rates(const CflRates& r, const mesh::Grid& grid,
                         const common::SolverConfig& cfg);

/// Maximum stable dt for conservative state `q` on `grid`.
/// Computed in double regardless of storage precision.  When `sigma` is
/// given, the entropic pressure augments the acoustic speed (eqs. 7-8 add
/// Sigma to p), tightening the bound for large regularization strengths.
/// Composes accumulate_cfl_rates over the full interior with
/// cfl_dt_from_rates.
template <class T>
double compute_dt(const common::StateField3<T>& q, const mesh::Grid& grid,
                  const eos::IdealGas& eos, const common::SolverConfig& cfg,
                  const common::Field3<T>* sigma = nullptr);

/// Advective dt for a 1-D state (density/momentum/energy arrays).
double compute_dt_1d(const double* rho, const double* mom, const double* e,
                     int n, double dx, double gamma, double cfl);

}  // namespace igr::fv
