#include "fv/exact_riemann.hpp"

#include <cmath>
#include <stdexcept>

namespace igr::fv {

ExactRiemann::ExactRiemann(Prim1D left, Prim1D right, double gamma)
    : l_(left), r_(right), gamma_(gamma) {
  if (left.rho <= 0 || right.rho <= 0 || left.p <= 0 || right.p <= 0)
    throw std::invalid_argument("ExactRiemann: non-positive density/pressure");
  cl_ = std::sqrt(gamma_ * l_.p / l_.rho);
  cr_ = std::sqrt(gamma_ * r_.p / r_.rho);
  // Vacuum check (Toro eq. 4.40).
  if (2.0 / (gamma_ - 1.0) * (cl_ + cr_) <= r_.u - l_.u)
    throw std::invalid_argument("ExactRiemann: vacuum generated");
  solve_star();
}

double ExactRiemann::f_side(double p, const Prim1D& s, double c) const {
  const double g = gamma_;
  if (p > s.p) {  // shock
    const double a = 2.0 / ((g + 1.0) * s.rho);
    const double b = (g - 1.0) / (g + 1.0) * s.p;
    return (p - s.p) * std::sqrt(a / (p + b));
  }
  // rarefaction
  return 2.0 * c / (g - 1.0) * (std::pow(p / s.p, (g - 1.0) / (2.0 * g)) - 1.0);
}

double ExactRiemann::df_side(double p, const Prim1D& s, double c) const {
  const double g = gamma_;
  if (p > s.p) {
    const double a = 2.0 / ((g + 1.0) * s.rho);
    const double b = (g - 1.0) / (g + 1.0) * s.p;
    return std::sqrt(a / (b + p)) * (1.0 - (p - s.p) / (2.0 * (b + p)));
  }
  return 1.0 / (s.rho * c) * std::pow(p / s.p, -(g + 1.0) / (2.0 * g));
}

void ExactRiemann::solve_star() {
  // Initial guess: two-rarefaction approximation (Toro eq. 4.46).
  const double g = gamma_;
  const double z = (g - 1.0) / (2.0 * g);
  double p =
      std::pow((cl_ + cr_ - 0.5 * (g - 1.0) * (r_.u - l_.u)) /
                   (cl_ / std::pow(l_.p, z) + cr_ / std::pow(r_.p, z)),
               1.0 / z);
  p = std::max(p, 1e-12);

  for (int it = 0; it < 100; ++it) {
    const double f =
        f_side(p, l_, cl_) + f_side(p, r_, cr_) + (r_.u - l_.u);
    const double df = df_side(p, l_, cl_) + df_side(p, r_, cr_);
    const double pn = std::max(p - f / df, 1e-14);
    if (std::abs(pn - p) / (0.5 * (pn + p)) < 1e-14) {
      p = pn;
      break;
    }
    p = pn;
  }
  p_star_ = p;
  u_star_ = 0.5 * (l_.u + r_.u) +
            0.5 * (f_side(p, r_, cr_) - f_side(p, l_, cl_));
}

Prim1D ExactRiemann::sample(double xi) const {
  const double g = gamma_;
  const double gm1 = g - 1.0, gp1 = g + 1.0;

  if (xi <= u_star_) {  // left of contact
    if (p_star_ > l_.p) {  // left shock
      const double sl =
          l_.u - cl_ * std::sqrt(gp1 / (2.0 * g) * p_star_ / l_.p +
                                 gm1 / (2.0 * g));
      if (xi <= sl) return l_;
      const double rho = l_.rho * (p_star_ / l_.p + gm1 / gp1) /
                         (gm1 / gp1 * p_star_ / l_.p + 1.0);
      return {rho, u_star_, p_star_};
    }
    // left rarefaction
    const double c_star = cl_ * std::pow(p_star_ / l_.p, gm1 / (2.0 * g));
    const double head = l_.u - cl_;
    const double tail = u_star_ - c_star;
    if (xi <= head) return l_;
    if (xi >= tail) {
      const double rho = l_.rho * std::pow(p_star_ / l_.p, 1.0 / g);
      return {rho, u_star_, p_star_};
    }
    const double u = 2.0 / gp1 * (cl_ + gm1 / 2.0 * l_.u + xi);
    const double c = 2.0 / gp1 * (cl_ + gm1 / 2.0 * (l_.u - xi));
    const double rho = l_.rho * std::pow(c / cl_, 2.0 / gm1);
    return {rho, u, rho * c * c / g};
  }

  // right of contact
  if (p_star_ > r_.p) {  // right shock
    const double sr =
        r_.u + cr_ * std::sqrt(gp1 / (2.0 * g) * p_star_ / r_.p +
                               gm1 / (2.0 * g));
    if (xi >= sr) return r_;
    const double rho = r_.rho * (p_star_ / r_.p + gm1 / gp1) /
                       (gm1 / gp1 * p_star_ / r_.p + 1.0);
    return {rho, u_star_, p_star_};
  }
  // right rarefaction
  const double c_star = cr_ * std::pow(p_star_ / r_.p, gm1 / (2.0 * g));
  const double head = r_.u + cr_;
  const double tail = u_star_ + c_star;
  if (xi >= head) return r_;
  if (xi <= tail) {
    const double rho = r_.rho * std::pow(p_star_ / r_.p, 1.0 / g);
    return {rho, u_star_, p_star_};
  }
  const double u = 2.0 / gp1 * (-cr_ + gm1 / 2.0 * r_.u + xi);
  const double c = 2.0 / gp1 * (cr_ - gm1 / 2.0 * (r_.u - xi));
  const double rho = r_.rho * std::pow(c / cr_, 2.0 / gm1);
  return {rho, u, rho * c * c / g};
}

std::vector<Prim1D> ExactRiemann::sample_profile(int n, double x0, double x1,
                                                 double xd, double t) const {
  std::vector<Prim1D> out;
  out.reserve(static_cast<std::size_t>(n));
  const double dx = (x1 - x0) / n;
  for (int i = 0; i < n; ++i) {
    const double x = x0 + (i + 0.5) * dx;
    if (t <= 0.0) {
      out.push_back(x < xd ? l_ : r_);
    } else {
      out.push_back(sample((x - xd) / t));
    }
  }
  return out;
}

Prim1D sod_left() { return {1.0, 0.0, 1.0}; }
Prim1D sod_right() { return {0.125, 0.0, 0.1}; }

}  // namespace igr::fv
