#pragma once
/// \file bfloat16.hpp
/// Software bfloat16 ("brain float") storage type and batched conversion
/// lanes — the range-over-precision sibling of common::half.
///
/// bfloat16 is the top 16 bits of IEEE 754 binary32: 8 exponent bits (the
/// full binary32 range, so Sedov/jet-style dynamic-range workloads never
/// saturate) and 7 mantissa bits (unit roundoff 2^-8, ~16x coarser than
/// binary16's 2^-11).  That layout makes both conversions trivial:
///
///  - bfloat16 -> float is an exact 16-bit left shift for *every* pattern,
///    including subnormals, infinities, and NaNs (payload and signaling bit
///    pass through untouched — this is what ARM BFCVT and AVX-512 BF16
///    widening do).
///  - float -> bfloat16 rounds to nearest-even with a single integer add:
///    because bfloat16 shares binary32's exponent field there is no
///    subnormal quantization or overflow-rebias special case — float
///    subnormals land on bfloat16 subnormals and values above the largest
///    finite bfloat16 round to +/-inf through the same add.  Only NaN needs
///    care: the payload is truncated to 7 bits and the quiet bit is set
///    (mirroring the half contract, so a signaling NaN never silently
///    becomes +/-inf).
///
/// ## Batched conversion lanes
///
/// `convert_to_float` / `convert_from_float` overloads convert contiguous
/// spans, following the `IGR_HALF_BACKEND` pattern (CMakeLists.txt): the
/// SCALAR backend selects the per-element reference converters, everything
/// else (AUTO/F16C/BITWISE) the branch-free bitwise kernel the compiler
/// auto-vectorizes.  There is no hardware lane — F16C converts binary16
/// only — so unlike half the bitwise kernel *is* the fast path everywhere.
/// All backends are bitwise identical on all 2^16 patterns
/// (tests/test_bfloat16.cpp asserts exactly that).

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace igr::common {

/// bfloat16 value (sign[15] | exponent[14:7] | mantissa[6:0]).  Conversions
/// round to nearest-even; storage-only type like half — arithmetic promotes
/// to float.
class bfloat16 {
 public:
  bfloat16() = default;

  /// Round-to-nearest-even conversion from binary32.
  explicit bfloat16(float f) : bits_(from_float(f)) {}
  explicit bfloat16(double d) : bits_(from_float(static_cast<float>(d))) {}

  /// Exact widening conversion to binary32 (a 16-bit shift).
  operator float() const { return to_float(bits_); }

  /// Raw bit pattern (the top half of the binary32 encoding).
  [[nodiscard]] std::uint16_t bits() const { return bits_; }
  static bfloat16 from_bits(std::uint16_t b) {
    bfloat16 v;
    v.bits_ = b;
    return v;
  }

  bfloat16& operator+=(float rhs) {
    return *this = bfloat16(float(*this) + rhs);
  }
  bfloat16& operator-=(float rhs) {
    return *this = bfloat16(float(*this) - rhs);
  }
  bfloat16& operator*=(float rhs) {
    return *this = bfloat16(float(*this) * rhs);
  }
  bfloat16& operator/=(float rhs) {
    return *this = bfloat16(float(*this) / rhs);
  }

  friend bool operator==(bfloat16 a, bfloat16 b) {
    return float(a) == float(b);
  }
  friend bool operator!=(bfloat16 a, bfloat16 b) {
    return float(a) != float(b);
  }
  friend bool operator<(bfloat16 a, bfloat16 b) { return float(a) < float(b); }
  friend bool operator>(bfloat16 a, bfloat16 b) { return float(a) > float(b); }
  friend bool operator<=(bfloat16 a, bfloat16 b) {
    return float(a) <= float(b);
  }
  friend bool operator>=(bfloat16 a, bfloat16 b) {
    return float(a) >= float(b);
  }

  static std::uint16_t from_float(float f);
  static float to_float(std::uint16_t b);

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bfloat16) == 2, "bfloat16 must be 2 bytes");

/// Largest finite bfloat16 value (0x7f7f widened).
inline constexpr float kBf16Max = 3.3895313892515355e+38f;
/// Smallest positive normal bfloat16 value (2^-126, same as binary32).
inline constexpr float kBf16MinNormal = 1.1754943508222875e-38f;
/// Unit roundoff of bfloat16 storage (2^-8).
inline constexpr float kBf16Eps = 3.90625e-03f;

/// Convert `n` bfloat16 values to floats through the configured backend.
/// Exact for every pattern (NaN payloads included).
void convert_to_float(const bfloat16* src, float* dst, std::size_t n);
/// Convert `n` floats to bfloat16 (round-to-nearest-even) through the
/// configured backend.
void convert_from_float(const float* src, bfloat16* dst, std::size_t n);

/// Individual conversion backends, mirroring half_batch: `reference` is the
/// per-element converter the others are tested against, `bitwise` the
/// branch-free auto-vectorizing kernel that every non-SCALAR configure
/// selects.
namespace bf16_batch {

enum class Backend { kScalar, kBitwise };

/// The configure-time-selected backend behind the `convert_*` entry points.
Backend active_backend();
std::string_view backend_name();

void to_float_reference(const std::uint16_t* src, float* dst, std::size_t n);
void from_float_reference(const float* src, std::uint16_t* dst,
                          std::size_t n);
void to_float_bitwise(const std::uint16_t* src, float* dst, std::size_t n);
void from_float_bitwise(const float* src, std::uint16_t* dst, std::size_t n);

}  // namespace bf16_batch

}  // namespace igr::common
