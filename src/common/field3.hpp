#pragma once
/// \file field3.hpp
/// Ghost-cell-padded 3-D scalar field and the 5-component conservative state
/// field.  Storage is structure-of-arrays, contiguous per component, matching
/// the layout the paper's fused kernels assume.

#include <array>
#include <cassert>
#include <cstddef>
#include <vector>

namespace igr::common {

/// Number of conserved variables for single-species flow:
/// density, three momenta, total energy — the 5 "degrees of freedom per grid
/// point" of the paper's 1-quadrillion-DoF accounting.
inline constexpr int kNumVars = 5;

/// Conserved-variable indices.
enum Var : int { kRho = 0, kMomX = 1, kMomY = 2, kMomZ = 3, kEnergy = 4 };

/// A scalar field on an (nx × ny × nz) block with `ng` ghost layers on every
/// side.  Interior indices run [0, n); ghosts extend to [-ng, n+ng).
template <class T>
class Field3 {
 public:
  Field3() = default;
  Field3(int nx, int ny, int nz, int ng)
      : nx_(nx), ny_(ny), nz_(nz), ng_(ng),
        sx_(nx + 2 * ng), sy_(ny + 2 * ng), sz_(nz + 2 * ng),
        data_(static_cast<std::size_t>(sx_) * sy_ * sz_, T{}) {}

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] int ng() const { return ng_; }

  /// Flat index of (i,j,k); i is the fastest-varying (unit-stride) axis.
  [[nodiscard]] std::size_t idx(int i, int j, int k) const {
    assert(i >= -ng_ && i < nx_ + ng_);
    assert(j >= -ng_ && j < ny_ + ng_);
    assert(k >= -ng_ && k < nz_ + ng_);
    return static_cast<std::size_t>(k + ng_) * sy_ * sx_ +
           static_cast<std::size_t>(j + ng_) * sx_ +
           static_cast<std::size_t>(i + ng_);
  }

  T& operator()(int i, int j, int k) { return data_[idx(i, j, k)]; }
  const T& operator()(int i, int j, int k) const { return data_[idx(i, j, k)]; }

  /// Pointer to the start of the interior of row (j, k) — the unit-stride
  /// i-axis.  Rows are the unit the batched conversion lanes operate on; a
  /// row extends contiguously from -ng() to nx() + ng().
  T* row(int j, int k) { return &data_[idx(0, j, k)]; }
  const T* row(int j, int k) const { return &data_[idx(0, j, k)]; }

  /// Element stride along an axis (0 = x, unit stride; 1 = y; 2 = z).
  /// Kernels walk lines through pointer arithmetic with these strides.
  [[nodiscard]] std::ptrdiff_t stride(int axis) const {
    switch (axis) {
      case 0: return 1;
      case 1: return sx_;
      default: return static_cast<std::ptrdiff_t>(sx_) * sy_;
    }
  }

  [[nodiscard]] std::size_t size_with_ghosts() const { return data_.size(); }
  [[nodiscard]] std::size_t interior_size() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(T); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T v) { data_.assign(data_.size(), v); }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0, ng_ = 0;
  int sx_ = 0, sy_ = 0, sz_ = 0;
  std::vector<T> data_;
};

/// The conservative state: kNumVars scalar fields sharing one block shape.
template <class T>
class StateField3 {
 public:
  StateField3() = default;
  StateField3(int nx, int ny, int nz, int ng) {
    for (auto& f : comp_) f = Field3<T>(nx, ny, nz, ng);
  }

  Field3<T>& operator[](int c) { return comp_[static_cast<std::size_t>(c)]; }
  const Field3<T>& operator[](int c) const {
    return comp_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] int nx() const { return comp_[0].nx(); }
  [[nodiscard]] int ny() const { return comp_[0].ny(); }
  [[nodiscard]] int nz() const { return comp_[0].nz(); }
  [[nodiscard]] int ng() const { return comp_[0].ng(); }

  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = 0;
    for (const auto& f : comp_) b += f.bytes();
    return b;
  }

 private:
  std::array<Field3<T>, kNumVars> comp_;
};

}  // namespace igr::common
