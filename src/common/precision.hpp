#pragma once
/// \file precision.hpp
/// Precision policies: the paper's FP64, FP32, and mixed FP16-storage/FP32-
/// compute modes (§5.6).  Solvers are templated on a policy; `storage_t` is
/// what lives in the big state arrays, `compute_t` is what flux kernels use.
///
/// Besides the per-element `load`/`store`, policies expose *batch* line
/// hooks: `load_line`/`store_line` convert whole contiguous (or strided)
/// spans between storage and compute precision.  For FP64 and FP32 these are
/// identity pass-throughs (a memcpy / strided copy); for FP16/32 and
/// BF16/32 they hit the batched conversion lanes in common::half /
/// common::bfloat16, which is what makes mixed-precision storage
/// competitive on CPUs (see PERF.md).  The batch hooks are element-wise
/// bitwise-identical to the per-element `load`/`store` — solver hot paths
/// may pick either form freely (the mixed-precision regression test asserts
/// the whole-solver consequence of this).

#include <cstddef>
#include <cstring>
#include <string_view>
#include <type_traits>

#include "common/bfloat16.hpp"
#include "common/half.hpp"

namespace igr::common {

/// Full double precision (the CFD status quo the paper compares against).
struct Fp64 {
  using storage_t = double;
  using compute_t = double;
  static constexpr std::string_view name = "FP64";
};

/// Single-precision storage and compute.
struct Fp32 {
  using storage_t = float;
  using compute_t = float;
  static constexpr std::string_view name = "FP32";
};

/// Mixed mode: binary16 storage, binary32 compute (§5.6).  Viable for IGR
/// because its numerics are well-conditioned; WENO/HLLC baselines are not
/// stable below FP64 (§4.3), which the test suite demonstrates.
struct Fp16x32 {
  using storage_t = half;
  using compute_t = float;
  static constexpr std::string_view name = "FP16/32";
};

/// Mixed mode: bfloat16 storage, binary32 compute.  Trades binary16's 11
/// mantissa bits for binary32's full exponent range — the right end of the
/// range-vs-precision axis for blast/jet workloads whose pressures span
/// decades (Sedov, the Mach-10 jet family).
struct Bf16x32 {
  using storage_t = bfloat16;
  using compute_t = float;
  static constexpr std::string_view name = "BF16/32";
};

/// Storage types whose batch span converters live in a dedicated conversion
/// lane (common::half / common::bfloat16) rather than a cast loop.
template <class S>
inline constexpr bool has_conversion_lane =
    std::is_same_v<S, half> || std::is_same_v<S, bfloat16>;

/// Load a stored value at compute precision.
template <class Policy>
typename Policy::compute_t load(typename Policy::storage_t v) {
  return static_cast<typename Policy::compute_t>(v);
}

/// Round a computed value into storage precision.
template <class Policy>
typename Policy::storage_t store(typename Policy::compute_t v) {
  return static_cast<typename Policy::storage_t>(v);
}

/// True when the policy stores at a different precision than it computes
/// (i.e. loads/stores actually convert).
template <class Policy>
inline constexpr bool converts_storage =
    !std::is_same_v<typename Policy::storage_t, typename Policy::compute_t>;

/// Batch load: `dst[i] = compute(src[i])` for `n` contiguous elements.
template <class Policy>
inline void load_line(const typename Policy::storage_t* src,
                      typename Policy::compute_t* dst, std::size_t n) {
  using S = typename Policy::storage_t;
  using C = typename Policy::compute_t;
  if constexpr (std::is_same_v<S, C>) {
    std::memcpy(dst, src, n * sizeof(C));
  } else if constexpr (has_conversion_lane<S>) {
    convert_to_float(src, dst, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<C>(src[i]);
  }
}

/// Batch store: `dst[i] = storage(src[i])` for `n` contiguous elements.
template <class Policy>
inline void store_line(const typename Policy::compute_t* src,
                       typename Policy::storage_t* dst, std::size_t n) {
  using S = typename Policy::storage_t;
  using C = typename Policy::compute_t;
  if constexpr (std::is_same_v<S, C>) {
    std::memcpy(dst, src, n * sizeof(S));
  } else if constexpr (has_conversion_lane<S>) {
    convert_from_float(src, dst, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<S>(src[i]);
  }
}

/// Strided batch load: `dst[i] = compute(src[i * stride])`.  For converting
/// policies the elements are gathered (cheap 2-byte moves for binary16)
/// into a small stack chunk and converted through the batch lane, so even
/// non-unit-stride sweeps pay SIMD conversion cost, not scalar.
template <class Policy>
inline void load_line_strided(const typename Policy::storage_t* src,
                              std::ptrdiff_t stride,
                              typename Policy::compute_t* dst, std::size_t n) {
  using S = typename Policy::storage_t;
  using C = typename Policy::compute_t;
  if (stride == 1) return load_line<Policy>(src, dst, n);
  if constexpr (has_conversion_lane<S>) {
    constexpr std::size_t kChunk = 256;
    S tmp[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
      const std::size_t m = (n - base < kChunk) ? (n - base) : kChunk;
      const S* s = src + static_cast<std::ptrdiff_t>(base) * stride;
      for (std::size_t i = 0; i < m; ++i)
        tmp[i] = s[static_cast<std::ptrdiff_t>(i) * stride];
      convert_to_float(tmp, dst + base, m);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      dst[i] = static_cast<C>(src[static_cast<std::ptrdiff_t>(i) * stride]);
  }
}

/// Strided batch store: `dst[i * stride] = storage(src[i])`.
template <class Policy>
inline void store_line_strided(const typename Policy::compute_t* src,
                               typename Policy::storage_t* dst,
                               std::ptrdiff_t stride, std::size_t n) {
  using S = typename Policy::storage_t;
  if (stride == 1) return store_line<Policy>(src, dst, n);
  if constexpr (has_conversion_lane<S>) {
    constexpr std::size_t kChunk = 256;
    S tmp[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
      const std::size_t m = (n - base < kChunk) ? (n - base) : kChunk;
      convert_from_float(src + base, tmp, m);
      S* d = dst + static_cast<std::ptrdiff_t>(base) * stride;
      for (std::size_t i = 0; i < m; ++i)
        d[static_cast<std::ptrdiff_t>(i) * stride] = tmp[i];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      dst[static_cast<std::ptrdiff_t>(i) * stride] = static_cast<S>(src[i]);
  }
}

}  // namespace igr::common
