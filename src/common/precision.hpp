#pragma once
/// \file precision.hpp
/// Precision policies: the paper's FP64, FP32, and mixed FP16-storage/FP32-
/// compute modes (§5.6).  Solvers are templated on a policy; `storage_t` is
/// what lives in the big state arrays, `compute_t` is what flux kernels use.

#include <string_view>

#include "common/half.hpp"

namespace igr::common {

/// Full double precision (the CFD status quo the paper compares against).
struct Fp64 {
  using storage_t = double;
  using compute_t = double;
  static constexpr std::string_view name = "FP64";
};

/// Single-precision storage and compute.
struct Fp32 {
  using storage_t = float;
  using compute_t = float;
  static constexpr std::string_view name = "FP32";
};

/// Mixed mode: binary16 storage, binary32 compute (§5.6).  Viable for IGR
/// because its numerics are well-conditioned; WENO/HLLC baselines are not
/// stable below FP64 (§4.3), which the test suite demonstrates.
struct Fp16x32 {
  using storage_t = half;
  using compute_t = float;
  static constexpr std::string_view name = "FP16/32";
};

/// Load a stored value at compute precision.
template <class Policy>
typename Policy::compute_t load(typename Policy::storage_t v) {
  return static_cast<typename Policy::compute_t>(v);
}

/// Round a computed value into storage precision.
template <class Policy>
typename Policy::storage_t store(typename Policy::compute_t v) {
  return static_cast<typename Policy::storage_t>(v);
}

}  // namespace igr::common
