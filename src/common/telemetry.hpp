/// \file telemetry.hpp
/// Run-telemetry subsystem: a process-wide metrics registry (counters,
/// gauges, time histograms) plus a span/event recorder feeding the two
/// observability sinks — the per-step JSONL stream (`run_case --telemetry`)
/// and the Chrome trace_event export (`run_case --trace`, one pid row per
/// rank; open in Perfetto or chrome://tracing).
///
/// Design contract (mirrors common::PhaseProfile):
///   - **Zero overhead when disabled.**  Every recording call is gated on
///     one relaxed atomic-bool load; disabled sites cost a predicted branch
///     and touch no other state.  The gate defaults to off and is flipped
///     once at run setup (cases::CaseRun arms it when a sink is requested),
///     never on a hot path.
///   - **Lock-free fast path when enabled.**  Counter/gauge/histogram
///     updates are relaxed atomics; the registry mutex is taken only at
///     name lookup (call sites cache the returned reference).  Span/event
///     recording takes a mutex, but spans are recorded at step granularity
///     (a handful per step), never per cell or per plane.
///   - **Provably inert.**  Telemetry only *reads* simulation state and the
///     wall clock; it never touches floating-point fields or scheduling, so
///     state and dt fingerprints are bitwise-identical with it on or off
///     (test-enforced in tests/test_telemetry.cpp).
///
/// Cross-process merging: timestamps are steady_clock ns relative to a
/// process-local epoch, and the system_clock time of that epoch is recorded
/// alongside — Chrome `ts` fields are emitted on the wall clock, so traces
/// serialized by different rank processes (gathered to the IO root over
/// `Transport::send_blob`) land on one common timeline.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace igr::common::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The process-wide gate.  One relaxed load; safe from any thread.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// ----------------------------------------------------------------- metrics --

/// Monotonic event count.  add() is one relaxed fetch_add when enabled and
/// a predicted branch when not.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (enabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written sample (stored as the double's bit pattern).
class Gauge {
 public:
  void set(double v);
  [[nodiscard]] double value() const;
  void reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Duration accumulator: count / sum / min / max in nanoseconds.  Enough to
/// answer "how many, how long, how spiky" without bucket bookkeeping.
class Histogram {
 public:
  void record(std::uint64_t ns);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Find-or-create a named metric.  References stay valid for the process
/// lifetime (node-based storage) — look up once, cache, then update
/// lock-free.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

struct HistogramRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// A point-in-time copy of every registered metric (names sorted).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;
};
Snapshot snapshot();

/// Zero every registered metric (registrations are kept).
void reset_metrics();

// ---------------------------------------------------------------- recorder --

/// The rank identity stamped into exported trace rows (Chrome `pid`).
/// Defaults to 0; cases::CaseRun sets the transport rank for TCP teams.
void set_rank(int rank);
int rank();

/// Steady-clock nanoseconds since the process telemetry epoch (captured on
/// first use), and the system_clock ns-since-Unix-epoch of that instant —
/// the pair that puts every process on one trace timeline.
std::int64_t now_ns();
std::int64_t wall_epoch_ns();

/// Record a completed span / an instant event.  `args_json` is the literal
/// body of the Chrome `args` object (no braces), e.g. `"step": 4` — empty
/// for none.  No-ops when disabled.
void record_span(std::string_view name, std::int64_t t0_ns,
                 std::int64_t dur_ns, std::string args_json = {});
void record_instant(std::string_view name, std::string args_json = {});

/// Drop all recorded spans/instants (metrics untouched).
void clear_events();
std::size_t event_count();

/// RAII span: samples the clock only when telemetry is enabled at entry.
class SpanScope {
 public:
  explicit SpanScope(const char* name)
      : name_(name), t0_(enabled() ? now_ns() : -1) {}
  ~SpanScope() {
    if (t0_ >= 0) record_span(name_, t0_, now_ns() - t0_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  std::int64_t t0_;
};

// ------------------------------------------------------------------- sinks --

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s);

/// Serialize this process's recorded spans/instants as comma-separated
/// Chrome trace_event objects (no enclosing brackets), stamped with `pid`
/// and a `process_name` metadata row — the per-rank fragment gathered to
/// the IO root.  Timestamps are wall-clock microseconds.
std::string chrome_events(int pid);

/// Write a Chrome trace_event file: a bare JSON array joining the non-empty
/// fragments (the format chrome://tracing and Perfetto load directly, and
/// whose trailing `]` igr_launch rewrites to append supervisor lifecycle
/// events).  Returns false if the file cannot be written.
bool write_trace(const std::string& path,
                 const std::vector<std::string>& fragments);

}  // namespace igr::common::telemetry
