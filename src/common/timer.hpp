#pragma once
/// \file timer.hpp
/// Wall-clock timing and grind-time accounting.  The paper reports "grind
/// time" — nanoseconds per grid cell per time step (§7.1) — as its primary
/// single-device metric; GrindTimer accumulates exactly that.

#include <chrono>
#include <cstddef>
#include <string>

namespace igr::common {

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  void start() { t0_ = clock::now(); running_ = true; }
  /// Stop and add the elapsed interval to the accumulated total.
  void stop();
  /// Accumulated seconds across all start/stop intervals.
  [[nodiscard]] double seconds() const { return acc_; }
  void reset() { acc_ = 0.0; running_ = false; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_{};
  double acc_ = 0.0;
  bool running_ = false;
};

/// Accumulates time-step work and reports ns per cell per step.
class GrindTimer {
 public:
  explicit GrindTimer(std::size_t cells_per_step = 0) : cells_(cells_per_step) {}

  void set_cells_per_step(std::size_t c) { cells_ = c; }
  void begin_step() { timer_.start(); }
  void end_step() { timer_.stop(); ++steps_; }

  [[nodiscard]] std::size_t steps() const { return steps_; }
  [[nodiscard]] double total_seconds() const { return timer_.seconds(); }

  /// Nanoseconds per grid cell per time step (the paper's Table 3 metric).
  [[nodiscard]] double grind_ns() const;

 private:
  WallTimer timer_;
  std::size_t cells_ = 0;
  std::size_t steps_ = 0;
};

}  // namespace igr::common
