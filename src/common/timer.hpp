#pragma once
/// \file timer.hpp
/// Wall-clock timing and grind-time accounting.  The paper reports "grind
/// time" — nanoseconds per grid cell per time step (§7.1) — as its primary
/// single-device metric; GrindTimer accumulates exactly that.

#include <array>
#include <chrono>
#include <cstddef>
#include <string>

namespace igr::common {

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  void start() { t0_ = clock::now(); running_ = true; }
  /// Stop and add the elapsed interval to the accumulated total.
  void stop();
  /// Accumulated seconds across all start/stop intervals.
  [[nodiscard]] double seconds() const { return acc_; }
  void reset() { acc_ = 0.0; running_ = false; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_{};
  double acc_ = 0.0;
  bool running_ = false;
};

/// Wall-time breakdown of a solver step by RHS phase, so PERF.md tables can
/// attribute a grind-time change to the phase that moved.  Sampling is off
/// by default (SolverConfig::phase_timing turns it on; the bench harness
/// does) — when disabled a PhaseScope is a pair of branch-predicted loads,
/// so production steps pay nothing.  The fused pipeline attributes each
/// plane/block slot to the phase the work belongs to, which makes the
/// breakdown comparable between the fused and phased schedules.
class PhaseProfile {
 public:
  enum Phase : int {
    kBc = 0,       ///< Physical-boundary ghost fills of the state.
    kSigmaSource,  ///< Reciprocal density + Sigma-equation source build.
    kSigmaSweeps,  ///< Relaxation sweeps incl. their Sigma ghost fills.
    kFlux,         ///< The three dimensional flux sweeps.
    kRkDt,         ///< RK convex update + the CFL reduction for dt.
    kNumPhases
  };

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  void add(Phase p, double sec) { acc_[static_cast<std::size_t>(p)] += sec; }
  [[nodiscard]] double seconds(Phase p) const {
    return acc_[static_cast<std::size_t>(p)];
  }
  /// Short machine-readable phase name (stable; used as the bench JSON key).
  [[nodiscard]] static const char* name(Phase p);
  void reset() { acc_.fill(0.0); }

 private:
  bool enabled_ = false;
  std::array<double, kNumPhases> acc_{};
};

/// RAII sampler: adds the scope's wall time to one profile phase.
class PhaseScope {
 public:
  PhaseScope(PhaseProfile& profile, PhaseProfile::Phase phase)
      : profile_(profile), phase_(phase) {
    if (profile_.enabled()) t0_ = std::chrono::steady_clock::now();
  }
  ~PhaseScope() {
    if (profile_.enabled()) {
      profile_.add(phase_, std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0_)
                               .count());
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfile& profile_;
  PhaseProfile::Phase phase_;
  std::chrono::steady_clock::time_point t0_{};
};

/// Accumulates time-step work and reports ns per cell per step.
class GrindTimer {
 public:
  explicit GrindTimer(std::size_t cells_per_step = 0) : cells_(cells_per_step) {}

  void set_cells_per_step(std::size_t c) { cells_ = c; }
  void begin_step() { timer_.start(); }
  void end_step() { timer_.stop(); ++steps_; }

  [[nodiscard]] std::size_t steps() const { return steps_; }
  [[nodiscard]] double total_seconds() const { return timer_.seconds(); }

  /// Nanoseconds per grid cell per time step (the paper's Table 3 metric).
  [[nodiscard]] double grind_ns() const;

 private:
  WallTimer timer_;
  std::size_t cells_ = 0;
  std::size_t steps_ = 0;
};

}  // namespace igr::common
