/// \file telemetry.cpp
/// Registry + recorder state for common::telemetry (see telemetry.hpp for
/// the design contract).  Everything lives behind function-local statics so
/// the subsystem has no global-constructor ordering hazards.

#include "common/telemetry.hpp"

#include <bit>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

namespace igr::common::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- metrics --

void Gauge::set(double v) {
  if (enabled())
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void Histogram::record(std::uint64_t ns) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~std::uint64_t{0} ? 0 : m;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

/// Node-based maps keep metric addresses stable across registrations, so
/// cached references never dangle.
struct MetricsState {
  std::mutex mu;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

MetricsState& metrics() {
  static MetricsState s;
  return s;
}

}  // namespace

Counter& counter(std::string_view name) {
  auto& m = metrics();
  std::lock_guard<std::mutex> lk(m.mu);
  const auto it = m.counters.find(name);
  if (it != m.counters.end()) return it->second;
  return m.counters.try_emplace(std::string(name)).first->second;
}

Gauge& gauge(std::string_view name) {
  auto& m = metrics();
  std::lock_guard<std::mutex> lk(m.mu);
  const auto it = m.gauges.find(name);
  if (it != m.gauges.end()) return it->second;
  return m.gauges.try_emplace(std::string(name)).first->second;
}

Histogram& histogram(std::string_view name) {
  auto& m = metrics();
  std::lock_guard<std::mutex> lk(m.mu);
  const auto it = m.histograms.find(name);
  if (it != m.histograms.end()) return it->second;
  return m.histograms.try_emplace(std::string(name)).first->second;
}

Snapshot snapshot() {
  auto& m = metrics();
  std::lock_guard<std::mutex> lk(m.mu);
  Snapshot s;
  s.counters.reserve(m.counters.size());
  for (const auto& [name, c] : m.counters) s.counters.emplace_back(name, c.value());
  s.gauges.reserve(m.gauges.size());
  for (const auto& [name, g] : m.gauges) s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(m.histograms.size());
  for (const auto& [name, h] : m.histograms)
    s.histograms.push_back({name, h.count(), h.sum(), h.min(), h.max()});
  return s;
}

void reset_metrics() {
  auto& m = metrics();
  std::lock_guard<std::mutex> lk(m.mu);
  for (auto& [name, c] : m.counters) c.reset();
  for (auto& [name, g] : m.gauges) g.reset();
  for (auto& [name, h] : m.histograms) h.reset();
}

// ---------------------------------------------------------------- recorder --

namespace {

struct SpanRec {
  std::string name;
  std::int64_t t0_ns = 0;
  std::int64_t dur_ns = 0;
  std::string args;
};

struct InstantRec {
  std::string name;
  std::int64_t t_ns = 0;
  std::string args;
};

struct RecorderState {
  std::mutex mu;
  std::vector<SpanRec> spans;
  std::vector<InstantRec> instants;
  std::atomic<int> rank{0};
};

RecorderState& recorder() {
  static RecorderState s;
  return s;
}

/// Epoch pair captured once: steady origin for durations, wall time of that
/// same instant for cross-process alignment.
struct Epoch {
  std::chrono::steady_clock::time_point steady;
  std::int64_t wall_ns;
};

const Epoch& epoch() {
  static const Epoch e = [] {
    Epoch ep;
    ep.steady = std::chrono::steady_clock::now();
    ep.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
    return ep;
  }();
  return e;
}

}  // namespace

void set_rank(int rank) {
  recorder().rank.store(rank, std::memory_order_relaxed);
}

int rank() { return recorder().rank.load(std::memory_order_relaxed); }

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch().steady)
      .count();
}

std::int64_t wall_epoch_ns() { return epoch().wall_ns; }

void record_span(std::string_view name, std::int64_t t0_ns,
                 std::int64_t dur_ns, std::string args_json) {
  if (!enabled()) return;
  auto& r = recorder();
  std::lock_guard<std::mutex> lk(r.mu);
  r.spans.push_back({std::string(name), t0_ns, dur_ns, std::move(args_json)});
}

void record_instant(std::string_view name, std::string args_json) {
  if (!enabled()) return;
  auto& r = recorder();
  std::lock_guard<std::mutex> lk(r.mu);
  r.instants.push_back({std::string(name), now_ns(), std::move(args_json)});
}

void clear_events() {
  auto& r = recorder();
  std::lock_guard<std::mutex> lk(r.mu);
  r.spans.clear();
  r.instants.clear();
}

std::size_t event_count() {
  auto& r = recorder();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.spans.size() + r.instants.size();
}

// ------------------------------------------------------------------- sinks --

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Wall-clock microseconds (Chrome's `ts` unit) for a recorder timestamp.
double ts_us(std::int64_t t_ns) {
  return 1.0e-3 * static_cast<double>(epoch().wall_ns + t_ns);
}

void append_event_json(std::string& out, const char* ph, int pid,
                       const std::string& name, double ts, double dur_us,
                       const std::string& args) {
  char buf[160];
  out += "{\"name\": \"" + json_escape(name) + "\", \"ph\": \"" + ph + "\"";
  if (ph[0] == 'i') out += ", \"s\": \"p\"";  // process-scoped instant
  std::snprintf(buf, sizeof(buf), ", \"pid\": %d, \"tid\": 0, \"ts\": %.3f",
                pid, ts);
  out += buf;
  if (ph[0] == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f", dur_us);
    out += buf;
  }
  if (!args.empty()) out += ", \"args\": {" + args + "}";
  out += "}";
}

}  // namespace

std::string chrome_events(int pid) {
  auto& r = recorder();
  std::lock_guard<std::mutex> lk(r.mu);
  std::string out;
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(pid) +
         ", \"tid\": 0, \"args\": {\"name\": \"rank " + std::to_string(pid) +
         "\"}}";
  for (const auto& s : r.spans) {
    out += ",\n";
    append_event_json(out, "X", pid, s.name, ts_us(s.t0_ns),
                      1.0e-3 * static_cast<double>(s.dur_ns), s.args);
  }
  for (const auto& i : r.instants) {
    out += ",\n";
    append_event_json(out, "i", pid, i.name, ts_us(i.t_ns), 0.0, i.args);
  }
  return out;
}

bool write_trace(const std::string& path,
                 const std::vector<std::string>& fragments) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fputs("[\n", f);
  bool first = true;
  for (const auto& frag : fragments) {
    if (frag.empty()) continue;
    if (!first) std::fputs(",\n", f);
    std::fputs(frag.c_str(), f);
    first = false;
  }
  std::fputs("]\n", f);
  return std::fclose(f) == 0;
}

}  // namespace igr::common::telemetry
