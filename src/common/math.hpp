#pragma once
/// \file math.hpp
/// Small math helpers shared across kernels.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace igr::common {

template <class T>
constexpr T sq(T x) {
  return x * x;
}

template <class T>
constexpr T cube(T x) {
  return x * x * x;
}

/// Discrete L2 norm of a sampled function: sqrt(sum(v_i^2) * h).
template <class T>
T l2_norm(const std::vector<T>& v, T h) {
  T s = 0;
  for (T x : v) s += x * x;
  return std::sqrt(s * h);
}

/// Discrete L2 distance between two equally sampled vectors.
template <class T>
T l2_error(const std::vector<T>& a, const std::vector<T>& b, T h) {
  T s = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) s += sq(a[i] - b[i]);
  return std::sqrt(s * h);
}

/// Max-abs (L-infinity) distance.
template <class T>
T linf_error(const std::vector<T>& a, const std::vector<T>& b) {
  T m = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// Total variation of a sampled profile: sum |v_{i+1} - v_i|.
template <class T>
T total_variation(const std::vector<T>& v) {
  T tv = 0;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) tv += std::abs(v[i + 1] - v[i]);
  return tv;
}

}  // namespace igr::common
