#include "common/config.hpp"

namespace igr::common {

void SolverConfig::validate() const {
  if (gamma <= 1.0) throw std::invalid_argument("gamma must exceed 1");
  if (mu < 0.0 || zeta < 0.0)
    throw std::invalid_argument("viscosities must be non-negative");
  if (alpha_factor < 0.0)
    throw std::invalid_argument("alpha_factor must be non-negative");
  if (sigma_sweeps < 0 || sigma_sweeps > 64)
    throw std::invalid_argument("sigma_sweeps out of range [0,64]");
  if (cfl <= 0.0 || cfl > 1.0)
    throw std::invalid_argument("cfl must lie in (0,1]");
  if (density_floor < 0.0 || pressure_floor < 0.0)
    throw std::invalid_argument("floors must be non-negative");
  if (fused_flux_block < 1)
    throw std::invalid_argument("fused_flux_block must be positive");
  if (exec_threads < 0 || exec_threads > 4096)
    throw std::invalid_argument("exec_threads out of range [0,4096]");
}

}  // namespace igr::common
