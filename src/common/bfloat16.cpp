#include "common/bfloat16.hpp"

#include <bit>

namespace igr::common {

namespace {
std::uint32_t f32_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float bits_f32(std::uint32_t u) { return std::bit_cast<float>(u); }
}  // namespace

std::uint16_t bfloat16::from_float(float f) {
  const std::uint32_t x = f32_bits(f);
  if ((x & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncate the payload to 7 bits, keep the sign, set the quiet bit
    // (the rounding add below would carry a small-payload NaN into +/-inf).
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  }
  // Round to nearest-even in one add: 0x7fff is just below the rounding
  // midpoint of the discarded 16 bits, and the low bit of the kept mantissa
  // breaks exact ties upward to the even pattern.  Shared exponent fields
  // mean this single expression also covers subnormals (float subnormals
  // quantize onto bfloat16 subnormals) and overflow (the carry walks a
  // too-large finite value into the +/-inf encoding).
  return static_cast<std::uint16_t>((x + 0x7fffu + ((x >> 16) & 1u)) >> 16);
}

float bfloat16::to_float(std::uint16_t b) {
  // Exact widening: bfloat16 is the top half of the binary32 encoding.
  return bits_f32(static_cast<std::uint32_t>(b) << 16);
}

namespace bf16_batch {

void to_float_reference(const std::uint16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bfloat16::to_float(src[i]);
}

void from_float_reference(const float* src, std::uint16_t* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bfloat16::from_float(src[i]);
}

namespace {

/// Branch-free float -> bfloat16: both the RNE add and the NaN
/// truncate-and-quieten are computed unconditionally and selected by one
/// compare mask, so the loop auto-vectorizes.
inline std::uint16_t from_float_bits_bf16(std::uint32_t x) {
  const std::uint32_t rne = (x + 0x7fffu + ((x >> 16) & 1u)) >> 16;
  const std::uint32_t nan = (x >> 16) | 0x0040u;
  return static_cast<std::uint16_t>(
      ((x & 0x7fffffffu) > 0x7f800000u) ? nan : rne);
}

}  // namespace

void to_float_bitwise(const std::uint16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = bits_f32(static_cast<std::uint32_t>(src[i]) << 16);
}

void from_float_bitwise(const float* src, std::uint16_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = from_float_bits_bf16(f32_bits(src[i]));
}

Backend active_backend() {
#if defined(IGR_HALF_BACKEND_SCALAR)
  return Backend::kScalar;
#else
  return Backend::kBitwise;
#endif
}

std::string_view backend_name() {
  switch (active_backend()) {
    case Backend::kBitwise: return "bitwise";
    case Backend::kScalar: return "scalar";
  }
  return "?";
}

}  // namespace bf16_batch

void convert_to_float(const bfloat16* src, float* dst, std::size_t n) {
  const auto* bits = reinterpret_cast<const std::uint16_t*>(src);
#if defined(IGR_HALF_BACKEND_SCALAR)
  bf16_batch::to_float_reference(bits, dst, n);
#else
  bf16_batch::to_float_bitwise(bits, dst, n);
#endif
}

void convert_from_float(const float* src, bfloat16* dst, std::size_t n) {
  auto* bits = reinterpret_cast<std::uint16_t*>(dst);
#if defined(IGR_HALF_BACKEND_SCALAR)
  bf16_batch::from_float_reference(src, bits, n);
#else
  bf16_batch::from_float_bitwise(src, bits, n);
#endif
}

}  // namespace igr::common
