#include "common/half.hpp"

#include <bit>
#include <cstring>

namespace igr::common {

namespace {
std::uint32_t f32_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float bits_f32(std::uint32_t u) { return std::bit_cast<float>(u); }
}  // namespace

std::uint16_t half::from_float(float f) {
  const std::uint32_t x = f32_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {  // inf or NaN
    // Preserve NaN-ness (quiet); map inf -> inf.
    const std::uint32_t mant = (abs > 0x7f800000u) ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
  }
  if (abs >= 0x477ff000u) {  // rounds to >= 2^16: overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {  // subnormal half (|f| < 2^-14)
    if (abs < 0x33000000u) {  // below half of smallest subnormal -> 0
      return static_cast<std::uint16_t>(sign);
    }
    // Quantize to multiples of 2^-24 with round-to-nearest-even.  The
    // stored value is m * 2^(e-150); shift = 126 - e in [14, 24].
    const int shift = 126 - static_cast<int>(abs >> 23);
    const std::uint64_t m = (abs & 0x007fffffu) | 0x00800000u;
    const std::uint64_t base = m >> shift;
    const std::uint64_t rem = m & ((std::uint64_t{1} << shift) - 1u);
    const std::uint64_t half_pt = std::uint64_t{1} << (shift - 1);
    const std::uint64_t rounded =
        base + ((rem > half_pt || (rem == half_pt && (base & 1u))) ? 1u : 0u);
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal range: rebias exponent 127 -> 15, round mantissa 23 -> 10 bits.
  const std::uint32_t rebiased = abs - 0x38000000u;
  const std::uint32_t base = rebiased >> 13;
  const std::uint32_t round_bit = (rebiased >> 12) & 1u;
  const std::uint32_t sticky = ((rebiased & 0x0fffu) != 0u) ? 1u : 0u;
  const std::uint32_t rounded = base + (round_bit & (sticky | (base & 1u)));
  return static_cast<std::uint16_t>(sign | rounded);
}

float half::to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x03ffu;

  if (exp == 0u) {
    if (mant == 0u) return bits_f32(sign);  // +/- 0
    // Subnormal: normalize.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x0400u) == 0u);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e) << 23;
    return bits_f32(sign | exp32 | ((m & 0x03ffu) << 13));
  }
  if (exp == 0x1fu) {  // inf / NaN
    return bits_f32(sign | 0x7f800000u | (mant << 13));
  }
  return bits_f32(sign | ((exp + 112u) << 23) | (mant << 13));
}

}  // namespace igr::common
