#include "common/half.hpp"

#include <bit>
#include <cstring>

#if defined(IGR_HALF_HAS_F16C)
#include <immintrin.h>
#endif

namespace igr::common {

namespace {
std::uint32_t f32_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float bits_f32(std::uint32_t u) { return std::bit_cast<float>(u); }
}  // namespace

std::uint16_t half::from_float(float f) {
  const std::uint32_t x = f32_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {  // inf or NaN
    // NaN: truncate the payload to 10 bits and set the quiet bit — exactly
    // what x86 VCVTPS2PH does, so the hardware backend stays bitwise
    // identical.  Inf maps to inf.
    const std::uint32_t mant =
        (abs > 0x7f800000u) ? (0x0200u | ((abs >> 13) & 0x03ffu)) : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
  }
  if (abs >= 0x477ff000u) {  // rounds to >= 2^16: overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {  // subnormal half (|f| < 2^-14)
    if (abs < 0x33000000u) {  // below half of smallest subnormal -> 0
      return static_cast<std::uint16_t>(sign);
    }
    // Quantize to multiples of 2^-24 with round-to-nearest-even.  The
    // stored value is m * 2^(e-150); shift = 126 - e in [14, 24].
    const int shift = 126 - static_cast<int>(abs >> 23);
    const std::uint64_t m = (abs & 0x007fffffu) | 0x00800000u;
    const std::uint64_t base = m >> shift;
    const std::uint64_t rem = m & ((std::uint64_t{1} << shift) - 1u);
    const std::uint64_t half_pt = std::uint64_t{1} << (shift - 1);
    const std::uint64_t rounded =
        base + ((rem > half_pt || (rem == half_pt && (base & 1u))) ? 1u : 0u);
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal range: rebias exponent 127 -> 15, round mantissa 23 -> 10 bits.
  const std::uint32_t rebiased = abs - 0x38000000u;
  const std::uint32_t base = rebiased >> 13;
  const std::uint32_t round_bit = (rebiased >> 12) & 1u;
  const std::uint32_t sticky = ((rebiased & 0x0fffu) != 0u) ? 1u : 0u;
  const std::uint32_t rounded = base + (round_bit & (sticky | (base & 1u)));
  return static_cast<std::uint16_t>(sign | rounded);
}

float half::to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x03ffu;

  if (exp == 0u) {
    if (mant == 0u) return bits_f32(sign);  // +/- 0
    // Subnormal: normalize.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x0400u) == 0u);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e) << 23;
    return bits_f32(sign | exp32 | ((m & 0x03ffu) << 13));
  }
  if (exp == 0x1fu) {  // inf / NaN
    // NaN: widen the payload and quieten (VCVTPH2PS semantics; inf has
    // mant == 0 and must stay infinite, so the quiet bit is conditional).
    const std::uint32_t quiet = (mant != 0u) ? 0x00400000u : 0u;
    return bits_f32(sign | 0x7f800000u | quiet | (mant << 13));
  }
  return bits_f32(sign | ((exp + 112u) << 23) | (mant << 13));
}

namespace half_batch {

void to_float_reference(const std::uint16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half::to_float(src[i]);
}

void from_float_reference(const float* src, std::uint16_t* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half::from_float(src[i]);
}

namespace {

/// Branch-free half -> float.  The finite path places the 15-bit
/// exponent/mantissa field at the binary32 position and rescales by an exact
/// multiply with 2^112: for normals that rebias (15 -> 127); for subnormals
/// the product renormalizes in the FPU — m * 2^-136 becomes the normal
/// m * 2^-24 — with no per-element normalization loop.  Inf/NaN rebias by
/// integer add instead (the multiply would produce a finite value), with the
/// hardware quietening rule applied.
inline std::uint32_t to_float_bits_bitwise(std::uint16_t h) {
  const std::uint32_t em = static_cast<std::uint32_t>(h) & 0x7fffu;
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t finite =
      f32_bits(bits_f32(em << 13) * bits_f32(0x77800000u));  // * 2^112
  const std::uint32_t quiet = (em > 0x7c00u) ? 0x00400000u : 0u;
  const std::uint32_t special = ((em << 13) + (0xe0u << 23)) | quiet;
  return sign | ((em >= 0x7c00u) ? special : finite);
}

/// Branch-free float -> half with round-to-nearest-even.  All three class
/// results are computed unconditionally and selected by compare masks:
///  - normal: RNE folded into integer adds (+0xfff + odd-bit, then shift) on
///    the exponent-rebiased value;
///  - subnormal: adding 0.5f makes the FPU quantize to multiples of 2^-24
///    (the ulp at 0.5) under its own round-to-nearest-even — the magic-add
///    normalization trick, again loop-free — and an integer subtract of the
///    0.5f pattern leaves exactly the 10 mantissa bits;
///  - inf/NaN: saturate / truncate-and-quieten as the hardware does.
inline std::uint16_t from_float_bits_bitwise(float f) {
  const std::uint32_t x = f32_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  const std::uint32_t odd = (abs >> 13) & 1u;
  // 0xc8000000 is ((15 - 127) << 23) as unsigned: the exponent rebias.
  const std::uint32_t norm = (abs + 0xc8000fffu + odd) >> 13;
  const std::uint32_t sub = f32_bits(bits_f32(abs) + 0.5f) - 0x3f000000u;
  const std::uint32_t infnan =
      0x7c00u |
      ((abs > 0x7f800000u) ? (0x0200u | ((abs >> 13) & 0x03ffu)) : 0u);

  std::uint32_t r = (abs < 0x38800000u) ? sub : norm;
  r = (abs >= 0x47800000u) ? 0x7c00u : r;  // norm covers [65520, 2^16) itself
  r = (abs >= 0x7f800000u) ? infnan : r;
  return static_cast<std::uint16_t>(sign | r);
}

}  // namespace

void to_float_bitwise(const std::uint16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = bits_f32(to_float_bits_bitwise(src[i]));
}

void from_float_bitwise(const float* src, std::uint16_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = from_float_bits_bitwise(src[i]);
}

#if defined(IGR_HALF_HAS_F16C)

void to_float_f16c(const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  // Tail through the same instruction, one lane at a time, so the semantics
  // (and any MXCSR interaction) are identical to the vector body.
  for (; i < n; ++i) {
    const __m128i h = _mm_cvtsi32_si128(src[i]);
    dst[i] = _mm_cvtss_f32(_mm_cvtph_ps(h));
  }
}

void from_float_f16c(const float* src, std::uint16_t* dst, std::size_t n) {
  constexpr int kRound = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(src + i);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_cvtps_ph(f, kRound));
  }
  for (; i < n; ++i) {
    const __m128i h = _mm_cvtps_ph(_mm_set_ss(src[i]), kRound);
    dst[i] = static_cast<std::uint16_t>(_mm_cvtsi128_si32(h) & 0xffff);
  }
}

#endif  // IGR_HALF_HAS_F16C

Backend active_backend() {
#if defined(IGR_HALF_BACKEND_F16C)
  return Backend::kF16c;
#elif defined(IGR_HALF_BACKEND_SCALAR)
  return Backend::kScalar;
#else
  return Backend::kBitwise;
#endif
}

std::string_view backend_name() {
  switch (active_backend()) {
    case Backend::kF16c: return "f16c";
    case Backend::kBitwise: return "bitwise";
    case Backend::kScalar: return "scalar";
  }
  return "?";
}

}  // namespace half_batch

void convert_to_float(const half* src, float* dst, std::size_t n) {
  const auto* bits = reinterpret_cast<const std::uint16_t*>(src);
#if defined(IGR_HALF_BACKEND_F16C)
  half_batch::to_float_f16c(bits, dst, n);
#elif defined(IGR_HALF_BACKEND_SCALAR)
  half_batch::to_float_reference(bits, dst, n);
#else
  half_batch::to_float_bitwise(bits, dst, n);
#endif
}

void convert_from_float(const float* src, half* dst, std::size_t n) {
  auto* bits = reinterpret_cast<std::uint16_t*>(dst);
#if defined(IGR_HALF_BACKEND_F16C)
  half_batch::from_float_f16c(src, bits, n);
#elif defined(IGR_HALF_BACKEND_SCALAR)
  half_batch::from_float_reference(src, bits, n);
#else
  half_batch::from_float_bitwise(src, bits, n);
#endif
}

}  // namespace igr::common
