#include "common/timer.hpp"

namespace igr::common {

void WallTimer::stop() {
  if (!running_) return;
  const auto t1 = clock::now();
  acc_ += std::chrono::duration<double>(t1 - t0_).count();
  running_ = false;
}

const char* PhaseProfile::name(Phase p) {
  switch (p) {
    case kBc: return "bc";
    case kSigmaSource: return "sigma_source";
    case kSigmaSweeps: return "sigma_sweeps";
    case kFlux: return "flux";
    case kRkDt: return "rk_dt";
    case kNumPhases: break;
  }
  return "?";
}

double GrindTimer::grind_ns() const {
  if (cells_ == 0 || steps_ == 0) return 0.0;
  return timer_.seconds() * 1.0e9 /
         (static_cast<double>(cells_) * static_cast<double>(steps_));
}

}  // namespace igr::common
