#pragma once
/// \file state.hpp
/// Small per-point state value types used inside flux kernels.

#include <array>
#include <cmath>

#include "common/field3.hpp"

namespace igr::common {

/// Conservative state at one point: (rho, rho*u, rho*v, rho*w, E).
template <class T>
struct Cons {
  T rho{}, mx{}, my{}, mz{}, e{};

  T& operator[](int c) {
    switch (c) {
      case kRho: return rho;
      case kMomX: return mx;
      case kMomY: return my;
      case kMomZ: return mz;
      default: return e;
    }
  }
  const T& operator[](int c) const {
    return const_cast<Cons&>(*this)[c];
  }

  friend Cons operator+(Cons a, const Cons& b) {
    a.rho += b.rho; a.mx += b.mx; a.my += b.my; a.mz += b.mz; a.e += b.e;
    return a;
  }
  friend Cons operator-(Cons a, const Cons& b) {
    a.rho -= b.rho; a.mx -= b.mx; a.my -= b.my; a.mz -= b.mz; a.e -= b.e;
    return a;
  }
  friend Cons operator*(T s, Cons a) {
    a.rho *= s; a.mx *= s; a.my *= s; a.mz *= s; a.e *= s;
    return a;
  }
};

/// Primitive state at one point: (rho, u, v, w, p).
template <class T>
struct Prim {
  T rho{}, u{}, v{}, w{}, p{};

  [[nodiscard]] T speed2() const { return u * u + v * v + w * w; }
};

}  // namespace igr::common
