#pragma once
/// \file cli.hpp
/// Shared command-line parsing for the executables (run_case, bench_grind,
/// bench_scaling, decomposed_jet): one flag cursor plus the typed value
/// parsers every tool used to hand-roll, with uniform "<prog>: ..." errors
/// and exit code 2.  The parsers reject trailing garbage and out-of-range
/// values instead of silently truncating (std::atoi accepted "8x" as 8).
/// Header-only and dependency-free — usable from any executable without
/// linking anything new, and below mesh/ in the layering (the `--ranks`
/// parser returns a RankSpec; balanced layouts are the caller's call into
/// mesh::Decomp).

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <string>
#include <vector>

namespace igr::common::cli {

/// Print "<prog>: <msg>" and exit 2 — the uniform CLI error.
[[noreturn]] inline void die(const char* prog, const std::string& msg) {
  std::fprintf(stderr, "%s: %s\n", prog, msg.c_str());
  std::exit(2);
}

/// Whole-token integer in [lo, hi]; dies on garbage or range violations.
inline long parse_long(const char* prog, const char* flag, const char* s,
                       long lo = std::numeric_limits<long>::min(),
                       long hi = std::numeric_limits<long>::max()) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0')
    die(prog, std::string("bad ") + flag + " '" + s + "' (not an integer)");
  if (v < lo || v > hi)
    die(prog, std::string("bad ") + flag + " '" + s + "' (allowed range [" +
                  std::to_string(lo) + ", " + std::to_string(hi) + "])");
  return v;
}

/// Whole-token floating-point value; dies on garbage.
inline double parse_double(const char* prog, const char* flag,
                           const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0')
    die(prog, std::string("bad ") + flag + " '" + s + "' (not a number)");
  return v;
}

/// Comma-separated integers, each >= lo (e.g. `--ranks 1,2,4,8`,
/// `--threads 1,2,4`); dies on an empty list or a malformed element.
inline std::vector<int> parse_int_list(const char* prog, const char* flag,
                                       const char* s, long lo = 1) {
  std::vector<int> out;
  const char* p = s;
  while (*p) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || (*end != '\0' && *end != ',') || v < lo)
      die(prog, std::string("bad ") + flag + " list '" + s + "'");
    out.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty())
    die(prog, std::string("empty ") + flag + " list");
  return out;
}

/// A `--ranks` request: an explicit rx,ry,rz layout, or a bare rank count
/// the caller lays out (mesh::Decomp::balanced_layout — deliberately not
/// called here so this header stays below mesh/).
struct RankSpec {
  std::array<int, 3> layout{1, 1, 1};
  int count = 1;
  bool balanced = false;  ///< true: bare count, caller picks the layout.
};

/// "rx,ry,rz" or a bare rank count N.  A comma commits the caller to a full
/// explicit layout: a partial "2,2" or trailing garbage ("2,2,1,4") dies
/// rather than silently passing.
inline RankSpec parse_ranks(const char* prog, const char* flag,
                            const char* s) {
  RankSpec r;
  if (std::strchr(s, ',')) {
    int rx = 0, ry = 0, rz = 0;
    char junk = '\0';
    if (std::sscanf(s, "%d,%d,%d%c", &rx, &ry, &rz, &junk) == 3 && rx >= 1 &&
        ry >= 1 && rz >= 1) {
      r.layout = {rx, ry, rz};
      r.count = rx * ry * rz;
      return r;
    }
  } else {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && *end == '\0' && v >= 1) {
      r.count = static_cast<int>(v);
      r.balanced = true;
      return r;
    }
  }
  die(prog, std::string("bad ") + flag + " '" + s + "' (rx,ry,rz or N)");
}

/// Cursor over argv: `while (args.next())`, `args.is("--flag")`, then one
/// of the typed value consumers.  Each consumer reads the *next* argv token
/// as the current flag's value and dies uniformly when it is missing or
/// malformed.
class Args {
 public:
  Args(const char* prog, int argc, char** argv)
      : prog_(prog), argc_(argc), argv_(argv) {}

  [[nodiscard]] const char* prog() const { return prog_; }
  /// Advance to the next token; false when argv is exhausted.
  bool next() { return ++i_ < argc_; }
  /// The current flag token.
  [[nodiscard]] const char* flag() const { return argv_[i_]; }
  [[nodiscard]] bool is(const char* name) const {
    return std::strcmp(argv_[i_], name) == 0;
  }
  [[noreturn]] void die(const std::string& msg) const {
    cli::die(prog_, msg);
  }

  /// The current flag's raw value token; dies when argv ends first.
  const char* value() {
    if (i_ + 1 >= argc_) die(std::string(flag()) + " needs a value");
    return argv_[++i_];
  }
  int int_value(long lo = std::numeric_limits<long>::min(),
                long hi = std::numeric_limits<long>::max()) {
    const char* f = flag();
    return static_cast<int>(parse_long(prog_, f, value(), lo, hi));
  }
  double double_value() {
    const char* f = flag();
    return parse_double(prog_, f, value());
  }
  std::vector<int> int_list_value(long lo = 1) {
    const char* f = flag();
    return parse_int_list(prog_, f, value(), lo);
  }
  RankSpec ranks_value() {
    const char* f = flag();
    return parse_ranks(prog_, f, value());
  }
  /// Index of the value among `names`; dies listing the valid spellings.
  int choice_value(std::initializer_list<const char*> names) {
    const char* f = flag();
    const char* v = value();
    int idx = 0;
    for (const char* n : names) {
      if (std::strcmp(v, n) == 0) return idx;
      ++idx;
    }
    std::string msg = std::string("bad ") + f + " '" + v + "' (expected ";
    bool first = true;
    for (const char* n : names) {
      if (!first) msg += "|";
      msg += n;
      first = false;
    }
    msg += ")";
    die(msg);
  }

 private:
  const char* prog_;
  int argc_;
  char** argv_;
  int i_ = 0;
};

}  // namespace igr::common::cli
