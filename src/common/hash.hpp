#pragma once
/// \file hash.hpp
/// Checksum primitives for the fault-tolerance layer:
///
///   - CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-component
///     payload checksums of the v2 checkpoint format (src/io/checkpoint.hpp).
///     Detects torn writes and bit corruption before a restart consumes bad
///     data.
///   - FNV-1a 64-bit — the canonical conserved-state field checksum recorded
///     per case by the golden-regression suite (cases::RunResult::state_fnv).
///
/// Both are incremental (streaming) so large fields hash row-by-row without
/// staging a copy.  The canonical state hash walks the interior in
/// (component, k, j, i) order over double-cast values, making it a
/// precision-independent *encoding* (the hashed values themselves still carry
/// the storage precision, so FP64 and FP16/32 runs hash differently — as they
/// must: the hash is a bitwise fingerprint of the computed state).

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/field3.hpp"

namespace igr::common {

namespace detail {

constexpr std::uint32_t crc32_entry(std::uint32_t i) {
  std::uint32_t c = i;
  for (int k = 0; k < 8; ++k)
    c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
  return c;
}

struct Crc32Table {
  std::uint32_t t[256];
  constexpr Crc32Table() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) t[i] = crc32_entry(i);
  }
};

inline constexpr Crc32Table kCrc32Table{};

}  // namespace detail

/// Streaming CRC32 (IEEE).  value() may be read at any point; update may
/// continue afterwards.
class Crc32 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < n; ++i)
      c = detail::kCrc32Table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    state_ = c;
  }
  [[nodiscard]] std::uint32_t value() const { return ~state_; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n) {
  Crc32 c;
  c.update(data, n);
  return c.value();
}

/// Streaming FNV-1a (64-bit).
class Fnv1a64 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;
    }
    state_ = h;
  }
  [[nodiscard]] std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0xCBF29CE484222325ull;
};

/// Canonical conserved-state fingerprint: FNV-1a over the interior values,
/// double-cast, in (component, k, j, i) order.  Identical state bits =>
/// identical hash, independent of storage layout, ghost depth, or rank
/// decomposition of the run that produced the state.
template <class T>
[[nodiscard]] std::uint64_t state_fnv1a(const StateField3<T>& q) {
  Fnv1a64 h;
  for (int c = 0; c < kNumVars; ++c) {
    for (int k = 0; k < q.nz(); ++k) {
      for (int j = 0; j < q.ny(); ++j) {
        for (int i = 0; i < q.nx(); ++i) {
          const double v = static_cast<double>(q[c](i, j, k));
          unsigned char bytes[sizeof(double)];
          std::memcpy(bytes, &v, sizeof(double));
          h.update(bytes, sizeof(double));
        }
      }
    }
  }
  return h.value();
}

}  // namespace igr::common
