#pragma once
/// \file exec.hpp
/// Execution spaces: *where* a kernel body runs, decoupled from *what* it
/// computes.
///
/// Every parallel kernel in the solver is either a pure per-element map
/// with disjoint writes, or a parity-phased in-place update whose phases
/// are barrier-ordered (the red–black color passes, the j-parity plane
/// relaxation), and every reduction is an exact max/min — so neither the
/// team width nor the partition of work across it can change a single bit
/// of the result.  That invariance is what lets one kernel body target
/// every backend here and stay bitwise-identical across them
/// (test-enforced: Serial vs OpenMP vs 1/2/4-thread teams, state and dt).
///
/// Backends:
///   - kSerial: a one-member team on the calling thread.  The reference
///     schedule; bitwise equal to every other backend by the argument
///     above.
///   - kOpenMP: a parallel team.  Under an OpenMP toolchain this is an
///     `omp parallel` region of the requested width (width 0 = the
///     ambient OpenMP team — exactly the historical bare
///     `#pragma omp parallel` behavior, so default-constructed ExecSpace
///     reproduces the pre-ExecSpace schedule).  Without an OpenMP
///     runtime, an explicit width > 1 runs on a std::thread team (the
///     TSan tree builds with OpenMP off, and this keeps its race check of
///     the kernels genuinely multithreaded), and width 0 degrades to
///     serial (matching what the old no-op pragmas did there).
///
/// A device backend (std::par / SYCL / CUDA) slots in as another
/// enumerator: kernel bodies only ever see a Team (tid / size / barrier)
/// and their own per-member scratch, never a #pragma.

#include <algorithm>
#include <barrier>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace igr::common {

enum class ExecBackend : int {
  kSerial = 0,  ///< one-member team (the bitwise reference schedule)
  kOpenMP = 1,  ///< OpenMP team; std::thread team without an OpenMP runtime
};

class ExecSpace {
 public:
  /// A member of a running team: identity plus the in-team barrier.
  class Team {
   public:
    [[nodiscard]] int tid() const { return tid_; }
    [[nodiscard]] int size() const { return size_; }

    /// Block until every member of this launch arrives — the phase
    /// ordering primitive (e.g. between the two j-parity half-passes of a
    /// plane relaxation).  Must be reached by all members or by none.
    void barrier() const {
      if (bar_ != nullptr) {
        bar_->arrive_and_wait();
        return;
      }
#ifdef _OPENMP
      // Binds to the innermost enclosing parallel region (a no-op for a
      // one-member team outside any region).
#pragma omp barrier
#endif
    }

    /// Contiguous chunk [b, e) of [0, n) owned by this member: the static
    /// partition every kernel here uses, remainder items to the low tids.
    /// (Any partition would produce the same bits; this one keeps each
    /// member's planes/rows contiguous for the rolling caches.)
    void chunk(long n, long& b, long& e) const {
      ExecSpace::chunk(n, tid_, size_, b, e);
    }

   private:
    friend class ExecSpace;
    Team(int tid, int size, std::barrier<>* bar)
        : tid_(tid), size_(size), bar_(bar) {}
    int tid_;
    int size_;
    std::barrier<>* bar_;
  };

  /// Default: the ambient OpenMP team — the historical schedule.
  constexpr ExecSpace() = default;
  constexpr ExecSpace(ExecBackend backend, int threads)
      : backend_(backend), threads_(threads < 0 ? 0 : threads) {}
  [[nodiscard]] static constexpr ExecSpace serial() {
    return {ExecBackend::kSerial, 1};
  }

  [[nodiscard]] constexpr ExecBackend backend() const { return backend_; }
  /// Requested team width; 0 = ambient (the configured OpenMP team size
  /// under an OpenMP runtime, one member otherwise).
  [[nodiscard]] constexpr int threads() const { return threads_; }

  /// Launch one team over `body(const Team&)`.  Each member runs the whole
  /// body; the body partitions work via Team::chunk (or runs per-member
  /// setup, e.g. scratch rows, before its chunk loop).  Joins all members
  /// before returning.
  template <class F>
  void run_team(F&& body) const {
    if (backend_ == ExecBackend::kSerial) {
      run_serial(body);
      return;
    }
#ifdef _OPENMP
    if (threads_ > 0) {
#pragma omp parallel num_threads(threads_)
      {
        Team t(omp_get_thread_num(), omp_get_num_threads(), nullptr);
        body(static_cast<const Team&>(t));
      }
    } else {
#pragma omp parallel
      {
        Team t(omp_get_thread_num(), omp_get_num_threads(), nullptr);
        body(static_cast<const Team&>(t));
      }
    }
#else
    if (threads_ > 1) {
      run_thread_team(body);
    } else {
      run_serial(body);
    }
#endif
  }

  /// Flat parallel map: body(i) for i in [0, n), statically partitioned
  /// across the team.  The `#pragma omp parallel for` replacement for
  /// bodies with no per-member scratch.
  template <class F>
  void for_each(long n, F&& body) const {
    if (n <= 0) return;
    run_team([&](const Team& t) {
      long b, e;
      t.chunk(n, b, e);
      for (long i = b; i < e; ++i) body(i);
    });
  }

  /// The static contiguous partition used everywhere: chunk `tid` of n
  /// items over nth members is [base*tid + min(tid, rem), +base(+1)) with
  /// base = n/nth, rem = n%nth.
  static void chunk(long n, int tid, int nth, long& b, long& e) {
    const long base = n / nth;
    const long rem = n % nth;
    b = base * tid + std::min<long>(tid, rem);
    e = b + base + (tid < rem ? 1 : 0);
  }

 private:
  template <class F>
  void run_serial(F&& body) const {
    Team t(0, 1, nullptr);
    body(static_cast<const Team&>(t));
  }

#ifndef _OPENMP
  /// Portable team for OpenMP-less builds (sanitizer trees): threads_-1
  /// spawned members plus the caller.  A member that throws drops out of
  /// the barrier (arrive_and_drop) so the others cannot deadlock on it;
  /// the first exception is rethrown after the join.
  template <class F>
  void run_thread_team(F&& body) const {
    const int nth = threads_;
    std::barrier<> bar(nth);
    std::mutex err_mutex;
    std::exception_ptr err;
    auto member = [&](int tid) {
      try {
        Team t(tid, nth, &bar);
        body(static_cast<const Team&>(t));
      } catch (...) {
        {
          std::lock_guard<std::mutex> g(err_mutex);
          if (!err) err = std::current_exception();
        }
        bar.arrive_and_drop();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nth - 1));
    for (int t = 1; t < nth; ++t) pool.emplace_back(member, t);
    member(0);
    for (auto& th : pool) th.join();
    if (err) std::rethrow_exception(err);
  }
#endif

  ExecBackend backend_ = ExecBackend::kOpenMP;
  int threads_ = 0;
};

}  // namespace igr::common
