#pragma once
/// \file half.hpp
/// Software IEEE 754 binary16 ("half") storage type.
///
/// The paper stores state in FP16 while computing in FP32 (§5.6).  The target
/// machines have native half support; on commodity CPUs we reproduce the
/// *storage semantics* exactly (round-to-nearest-even conversion, subnormal
/// handling, +/-inf saturation) in software.  `half` is a storage-only type:
/// arithmetic promotes to float, as hardware mixed-precision kernels do.

#include <cstdint>

namespace igr::common {

/// IEEE 754 binary16 value.  Conversions round to nearest-even and handle
/// subnormals, infinities, and NaN.  Layout-compatible with hardware __fp16.
class half {
 public:
  half() = default;

  /// Round-to-nearest-even conversion from binary32.
  explicit half(float f) : bits_(from_float(f)) {}
  explicit half(double d) : bits_(from_float(static_cast<float>(d))) {}

  /// Exact widening conversion to binary32 (every half is representable).
  operator float() const { return to_float(bits_); }

  /// Raw bit pattern (sign[15] | exponent[14:10] | mantissa[9:0]).
  [[nodiscard]] std::uint16_t bits() const { return bits_; }
  static half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }

  half& operator+=(float rhs) { return *this = half(float(*this) + rhs); }
  half& operator-=(float rhs) { return *this = half(float(*this) - rhs); }
  half& operator*=(float rhs) { return *this = half(float(*this) * rhs); }
  half& operator/=(float rhs) { return *this = half(float(*this) / rhs); }

  friend bool operator==(half a, half b) { return float(a) == float(b); }
  friend bool operator!=(half a, half b) { return float(a) != float(b); }
  friend bool operator<(half a, half b) { return float(a) < float(b); }
  friend bool operator>(half a, half b) { return float(a) > float(b); }

  static std::uint16_t from_float(float f);
  static float to_float(std::uint16_t h);

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

/// Largest finite binary16 value (65504).
inline constexpr float kHalfMax = 65504.0f;
/// Smallest positive normal binary16 value (2^-14).
inline constexpr float kHalfMinNormal = 6.103515625e-05f;
/// Unit roundoff of binary16 storage (2^-11).
inline constexpr float kHalfEps = 4.8828125e-04f;

}  // namespace igr::common
