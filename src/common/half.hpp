#pragma once
/// \file half.hpp
/// Software IEEE 754 binary16 ("half") storage type and batched conversion
/// lanes.
///
/// The paper stores state in FP16 while computing in FP32 (§5.6).  The target
/// machines have native half support; on commodity CPUs we reproduce the
/// *storage semantics* exactly (round-to-nearest-even conversion, subnormal
/// handling, +/-inf saturation) in software.  `half` is a storage-only type:
/// arithmetic promotes to float, as hardware mixed-precision kernels do.
///
/// ## Conversion semantics (all backends, bit-for-bit)
///
///  - float -> half rounds to nearest-even; values that would round to a
///    magnitude >= 2^16 saturate to +/-inf (65519.x is the largest float that
///    still rounds down to 65504); subnormal halves are produced down to
///    2^-24, with inputs below half that magnitude rounding to signed zero.
///  - half -> float is the exact widening conversion for every non-NaN value.
///  - NaNs convert the way x86 F16C hardware does: the payload is shifted
///    (truncated on narrowing), the sign is preserved, and signaling NaNs are
///    quietened.  This keeps every backend — including the hardware one —
///    bitwise identical on *all* 2^16 half patterns and on arbitrary float
///    NaNs (tests/test_half_batch.cpp asserts exactly that).
///
/// ## Batched conversion lanes
///
/// `convert_to_float` / `convert_from_float` convert contiguous spans.  The
/// backend is resolved at configure time (see CMakeLists.txt):
///
///  - **F16C** (`IGR_HALF_BACKEND_F16C`): VCVTPH2PS/VCVTPS2PH, 8 lanes per
///    instruction; compiled only where the configure-time probe runs it
///    successfully (`IGR_HALF_HAS_F16C`).
///  - **bitwise** (`IGR_HALF_BACKEND_BITWISE`): branch-free scalar kernel
///    (per-element selects, no subnormal loop — renormalization is a single
///    exact multiply by 2^112, quantization a magic 0.5f add) that the
///    compiler auto-vectorizes; the portable fallback.
///  - **scalar** (`IGR_HALF_BACKEND_SCALAR`): the original per-element
///    converters, kept as the test reference.
///
/// Every compiled backend is exported under `half_batch::` so the test suite
/// can assert bitwise equivalence against the reference; the `convert_*`
/// entry points dispatch to the configured one.  All backends accept any
/// length (odd tails included) and any alignment.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace igr::common {

/// IEEE 754 binary16 value.  Conversions round to nearest-even and handle
/// subnormals, infinities, and NaN.  Layout-compatible with hardware __fp16.
class half {
 public:
  half() = default;

  /// Round-to-nearest-even conversion from binary32.
  explicit half(float f) : bits_(from_float(f)) {}
  explicit half(double d) : bits_(from_float(static_cast<float>(d))) {}

  /// Exact widening conversion to binary32 (every half is representable).
  operator float() const { return to_float(bits_); }

  /// Raw bit pattern (sign[15] | exponent[14:10] | mantissa[9:0]).
  [[nodiscard]] std::uint16_t bits() const { return bits_; }
  static half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }

  half& operator+=(float rhs) { return *this = half(float(*this) + rhs); }
  half& operator-=(float rhs) { return *this = half(float(*this) - rhs); }
  half& operator*=(float rhs) { return *this = half(float(*this) * rhs); }
  half& operator/=(float rhs) { return *this = half(float(*this) / rhs); }

  friend bool operator==(half a, half b) { return float(a) == float(b); }
  friend bool operator!=(half a, half b) { return float(a) != float(b); }
  friend bool operator<(half a, half b) { return float(a) < float(b); }
  friend bool operator>(half a, half b) { return float(a) > float(b); }
  friend bool operator<=(half a, half b) { return float(a) <= float(b); }
  friend bool operator>=(half a, half b) { return float(a) >= float(b); }

  static std::uint16_t from_float(float f);
  static float to_float(std::uint16_t h);

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

/// Largest finite binary16 value (65504).
inline constexpr float kHalfMax = 65504.0f;
/// Smallest positive normal binary16 value (2^-14).
inline constexpr float kHalfMinNormal = 6.103515625e-05f;
/// Unit roundoff of binary16 storage (2^-11).
inline constexpr float kHalfEps = 4.8828125e-04f;

/// Convert `n` halves to floats through the configured backend.  Exact for
/// every non-NaN value; see the file header for the NaN contract.
void convert_to_float(const half* src, float* dst, std::size_t n);
/// Convert `n` floats to halves (round-to-nearest-even) through the
/// configured backend.
void convert_from_float(const float* src, half* dst, std::size_t n);

/// Individual conversion backends.  `reference` is always compiled (it is
/// the per-element scalar converter the others are tested against);
/// `bitwise` is always compiled; the F16C pair exists only when the build
/// probed hardware support (`IGR_HALF_HAS_F16C`).
namespace half_batch {

enum class Backend { kScalar, kBitwise, kF16c };

/// The configure-time-selected backend behind `convert_to_float` /
/// `convert_from_float`.
Backend active_backend();
std::string_view backend_name();

/// True when the F16C backend is compiled into this build.
constexpr bool f16c_compiled() {
#if defined(IGR_HALF_HAS_F16C)
  return true;
#else
  return false;
#endif
}

void to_float_reference(const std::uint16_t* src, float* dst, std::size_t n);
void from_float_reference(const float* src, std::uint16_t* dst,
                          std::size_t n);
void to_float_bitwise(const std::uint16_t* src, float* dst, std::size_t n);
void from_float_bitwise(const float* src, std::uint16_t* dst, std::size_t n);
#if defined(IGR_HALF_HAS_F16C)
void to_float_f16c(const std::uint16_t* src, float* dst, std::size_t n);
void from_float_f16c(const float* src, std::uint16_t* dst, std::size_t n);
#endif

}  // namespace half_batch

}  // namespace igr::common
