#pragma once
/// \file config.hpp
/// Physical and numerical parameters shared by all solvers.

#include <stdexcept>
#include <string>

#include "common/exec.hpp"

namespace igr::common {

/// Fluid and scheme parameters.  Defaults model the paper's air-like working
/// gas; viscosities default to zero (inviscid core problem), the jet studies
/// enable them.
struct SolverConfig {
  // --- Fluid (ideal gas law, eq. 4) ---
  double gamma = 1.4;    ///< Ratio of specific heats.
  double mu = 0.0;       ///< Shear viscosity (eq. 5).
  double zeta = 0.0;     ///< Bulk viscosity (eq. 5).

  // --- IGR (eq. 9) ---
  /// alpha = alpha_factor * dx^2 (the paper: alpha ∝ Δx²; width of the
  /// smoothly expanded shock in cells ~ sqrt(alpha_factor)).
  double alpha_factor = 5.0;
  int sigma_sweeps = 5;      ///< ≤5 Jacobi/Gauss–Seidel sweeps per flux (§5.2).
  bool sigma_gauss_seidel = true;  ///< Gauss–Seidel (true) or Jacobi (false).

  // --- Time integration ---
  double cfl = 0.4;          ///< Advective CFL number for SSP-RK3.

  // --- Mixed-precision storage (FP16/32 policy only) ---
  /// Use the batched binary16 conversion lanes (common::half) on the solver
  /// hot paths.  The per-element reference path is kept behind `false` for
  /// the bitwise batch-on/off regression test; identity-storage policies
  /// (FP64, FP32) ignore this flag entirely.
  bool batch_half_conversion = true;

  // --- Fused RHS pipeline (Algorithm 1 on CPU) ---
  /// Stream each RK stage through memory once: the Sigma source, the
  /// relaxation sweeps (pipelined across k-planes as a wavefront where the
  /// Sigma boundary handling permits), the three flux sweeps, the RK convex
  /// update, and the CFL reduction for the next step's dt all advance a
  /// rolling window of k-planes instead of running as full-grid passes.
  /// Bitwise-identical (state *and* dt) to the phased schedule, which is
  /// kept behind `false` as the reference path — the same pattern as
  /// `batch_half_conversion`.
  bool fused_rhs = true;
  /// k-plane block thickness of the streamed flux/RK stage.  Clamped up to
  /// the reconstruction stencil radius (3) internally: the trailing RK
  /// update may only touch planes the z-flux front no longer reads.  Larger
  /// blocks amortize the re-evaluated z-faces at block seams; smaller
  /// blocks keep the rolling window cache-resident.
  int fused_flux_block = 8;  // measured best on the bench host; see PERF.md
  /// Record the per-phase wall-time breakdown (common::PhaseProfile).  Off
  /// by default; the bench harness enables it for its JSON report.
  bool phase_timing = false;

  // --- Execution space (where the kernel bodies run) ---
  /// Backend for every parallel kernel body (flux row sweeps, relax rows,
  /// Sigma source, RK update, CFL fold).  All kernels are partition-
  /// invariant by construction — disjoint writes or parity-phased updates,
  /// exact max/min reductions — so this is purely a scheduling choice:
  /// results (state *and* dt) are bitwise-identical across backends and
  /// team widths (test-enforced).  The default reproduces the historical
  /// ambient-OpenMP schedule exactly.
  ExecBackend exec_backend = ExecBackend::kOpenMP;
  /// Team width for the kOpenMP backend; 0 = ambient (the configured
  /// OpenMP team size, or one member without an OpenMP runtime).  The
  /// distributed driver sets this per rank from DistOptions::
  /// threads_per_rank.  Ignored by kSerial.
  int exec_threads = 0;
  /// The execution space the two fields above select.
  [[nodiscard]] ExecSpace exec() const {
    return ExecSpace(exec_backend, exec_threads);
  }

  // --- Robustness floors (0 disables) ---
  /// Optional positivity floors applied when converting reconstructed face
  /// states to primitives.  The production Mach-10 runs use small floors to
  /// guard the inflow start-up transient.
  double density_floor = 0.0;
  double pressure_floor = 0.0;

  /// Validate parameter ranges; throws std::invalid_argument on error.
  void validate() const;
};

}  // namespace igr::common
