#pragma once
/// \file runner.hpp
/// Unified execution of registered cases: one options struct drives any
/// case through app::Simulation at any precision, scheme, reconstruction
/// order, and rank layout, and reports diagnostics, conserved-quantity
/// totals, and (for cases with an analytic solution) L1/L∞ error norms.
/// The golden-regression tests, the `run_case` CLI, and `bench_grind
/// --case` all run scenarios through this one seam.

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "app/simulation.hpp"
#include "cases/case.hpp"
#include "common/exec.hpp"
#include "common/hash.hpp"
#include "common/timer.hpp"
#include "sim/fault.hpp"

namespace igr::cases {

/// Runtime precision selector (the CLI's `--precision`).
enum class Precision { kFp64, kFp32, kFp16x32, kBf16x32 };

[[nodiscard]] const char* precision_name(Precision p);
/// Parse "fp64" / "fp32" / "fp16x32"; false on anything else.
bool parse_precision(std::string_view s, Precision* out);

/// How to run a case.  Zero-initialized fields defer to the CaseSpec's
/// defaults.
///
/// This is THE user-facing request layer.  The layering is strictly
/// one-way:
///
///   cases::RunOptions            what the user asked for (this struct)
///     └─ to_params()             documented lowering, never round-tripped
///        └─ app::Simulation::Params   the assembled run description
///             ├─ common::SolverConfig   derived kernel/precision knobs
///             └─ sim::DistOptions       derived decomposed-driver tuning
///
/// Mutate RunOptions and re-lower rather than editing the derived layers;
/// run_case, the golden regressions, and the bench harnesses all build
/// their simulations through this seam.
struct RunOptions {
  int n = 0;           ///< Resolution parameter (0: spec.default_n).
  int steps = 0;       ///< > 0: run exactly this many steps.
  double t_end = -1.0; ///< >= 0 (and steps == 0): run to this time;
                       ///< -1: spec.default_t_end, else golden_steps.
  std::array<int, 3> ranks{1, 1, 1};  ///< Decomposed layout (IGR only).
  app::SchemeKind scheme = app::SchemeKind::kIgr;
  fv::ReconScheme recon = fv::ReconScheme::kFifth;
  bool fused_rhs = true;
  /// Jacobi Sigma sweeps (decomposition-exact: rank layout cannot change
  /// the bits) instead of the default red–black Gauss–Seidel.
  bool jacobi_sweeps = false;
  bool phase_timing = false;
  /// Multiplier on the case's CFL number (1 = as registered).  The guarded
  /// runner shrinks this on rollback (cfl_backoff); tests crank it up to
  /// provoke an instability the health guard must catch.
  double cfl_scale = 1.0;
  /// Fault plan injected into the distributed driver's comm and phase
  /// callbacks (disarmed by default; single-domain runs ignore comm/phase
  /// triggers — only io applies, via the guarded runner's write hook).
  sim::FaultPlan faults{};
  /// Halo-wait bound handed to the distributed driver (seconds; <= 0
  /// disables).
  double comm_timeout_s = 60.0;
  /// Wire encoding of the halo channels (kHalf narrows FP64 halos to
  /// binary16 on the wire; bitwise no-op for 16-bit storage).
  sim::Comm::WirePrecision halo_wire = sim::Comm::WirePrecision::kFull;
  /// Transport behind the decomposed driver's Comm.  Default: in-process
  /// (every rank a worker thread here).  kTcp: this process owns exactly
  /// `transport.rank` of `transport.world` and exchanges halos with peer
  /// processes over loopback sockets — global reads become root-only and
  /// rollback is the launcher's job (respawn), not the runner's.
  sim::TransportSpec transport{};
  /// Execution-space backend of the in-rank kernels (see common/exec.hpp):
  /// kOpenMP teams the per-plane/per-row kernel layer over OpenMP (or a
  /// std::thread pool when built without it); kSerial is the bitwise
  /// reference every backend is validated against.
  common::ExecBackend exec = common::ExecBackend::kOpenMP;
  /// Exec-space width per rank (0 = ambient).  Lowered into both
  /// SolverConfig::exec_threads and DistOptions::threads_per_rank, so one
  /// knob sets the kernel team width wherever the kernels run.
  int threads = 0;
  /// Observability sinks (empty: off).  Requesting either one arms
  /// common::telemetry for the process; telemetry is provably inert — state
  /// and dt fingerprints are bitwise-identical on or off (test-enforced).
  std::string telemetry;  ///< Per-step JSONL event stream (IO root writes).
  std::string trace;      ///< Chrome trace_event file, one pid row per rank
                          ///< (TCP ranks gather fragments to the IO root).

  /// One-way lowering of this request (plus the case's registered
  /// defaults) into the app::Simulation parameter block — the only place
  /// RunOptions fields are translated into SolverConfig/DistOptions.
  /// `fault` is wired into the decomposed driver (may be null).
  template <class Policy>
  [[nodiscard]] typename app::Simulation<Policy>::Params to_params(
      const CaseSpec& spec, sim::FaultInjector* fault = nullptr) const;
};

/// What a run produced.
struct RunResult {
  app::FlowDiagnostics diag;
  common::Cons<double> totals_initial{};  ///< Conserved totals at t = 0.
  common::Cons<double> totals_final{};    ///< Conserved totals now.
  double l1_error = -1.0;    ///< Density L1 vs analytic (-1: no `exact`).
  double linf_error = -1.0;  ///< Density L∞ vs analytic (-1: no `exact`).
  double time = 0.0;
  int steps = 0;
  double grind_ns = 0.0;
  std::size_t cells = 0;
  std::size_t memory_bytes = 0;
  /// Canonical FNV-1a fingerprint of the conserved state (see
  /// common::state_fnv1a) — the golden *field* checksum: any bit of any
  /// interior value changing changes this.
  std::uint64_t state_fnv = 0;
  /// FNV-1a over the bit patterns of every per-step dt this CaseRun took,
  /// in step order.  Identical on every process of a multi-process run (dt
  /// is an allreduce), so comparing it across transports proves the *whole
  /// dt trajectory* matched — a sharper bitwise check than the final state
  /// alone.
  std::uint64_t dt_fnv = 0;
  /// Per-phase wall time in ns per local cell per step (bench_grind's
  /// breakdown metric), indexed by common::PhaseProfile::Phase.  Populated
  /// when opts.phase_timing was on and the scheme keeps a profile.
  bool has_phases = false;
  std::array<double, common::PhaseProfile::kNumPhases> phase_ns{};
};

/// A stateful case execution: step/run/inspect, checkpoint and restart.
template <class Policy>
class CaseRun {
 public:
  explicit CaseRun(const CaseSpec& spec, const RunOptions& opts = {});
  ~CaseRun();
  CaseRun(CaseRun&&) noexcept = default;
  CaseRun& operator=(CaseRun&&) noexcept = default;

  /// One CFL step; returns dt.
  double step();
  /// Run to completion per the options; returns result().
  RunResult run();
  /// Diagnostics + totals + error norms at the current state.
  [[nodiscard]] RunResult result() const;

  [[nodiscard]] app::Simulation<Policy>& sim() { return *sim_; }
  [[nodiscard]] const CaseSpec& spec() const { return *spec_; }
  /// Steps taken by *this object* (a restarted run counts from its load).
  [[nodiscard]] int steps_taken() const { return steps_; }
  /// Step budget resolved from the options (0: time-driven to t_end()).
  [[nodiscard]] int target_steps() const { return target_steps_; }
  [[nodiscard]] double t_end() const { return t_end_; }
  /// The fault injector backing opts.faults (null when disarmed).  Owned
  /// here and kept across rebuild() so one-shot faults do not re-fire
  /// during a retry.
  [[nodiscard]] sim::FaultInjector* injector() { return injector_.get(); }
  /// Running FNV-1a over the per-step dt bits (see RunResult::dt_fnv).
  [[nodiscard]] std::uint64_t dt_fnv() const { return dt_hash_.value(); }

  /// Append one event line (`{"event": "<name>", ...extra}`) to the JSONL
  /// stream; no-op when the stream is not open on this process.  `extra` is
  /// the literal body of additional JSON fields (no braces), pre-escaped.
  void emit_event(const std::string& name, const std::string& extra = {});
  /// Collective Chrome-trace export to opts.trace (no-op when unset): every
  /// process serializes its recorded spans; the IO root merges the per-rank
  /// fragments (gathered over Transport::send_blob for TCP teams) and
  /// writes the file.  run() and the guarded runner call this once at
  /// completion.
  void export_trace();

  /// Tear down and reconstruct the simulation from the initial conditions
  /// (same options except `cfl_scale`, which the caller may have backed
  /// off).  Required for rollback after a comm fault: an aborted
  /// communicator is poisoned by design and cannot be reused.
  void rebuild(double cfl_scale);

  /// Checkpoint/restart through the runner (any rank layout; the IGR
  /// scheme round-trips Sigma too, making the continuation bitwise).
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);

 private:
  void build_sim();
  void record_step_telemetry(std::int64_t t0_ns, double dt);

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };

  const CaseSpec* spec_;
  RunOptions opts_;
  int target_steps_ = 0;   ///< 0: time-driven.
  double t_end_ = 0.0;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<app::Simulation<Policy>> sim_;
  common::Cons<double> totals_initial_{};
  common::Fnv1a64 dt_hash_{};
  int steps_ = 0;

  /// JSONL stream (IO root only; survives rebuild() so a rolled-back run
  /// keeps appending to one file) + previous-step meter snapshots the
  /// per-step deltas are computed against.
  std::unique_ptr<std::FILE, FileCloser> jsonl_;
  std::array<double, common::PhaseProfile::kNumPhases> prev_phase_s_{};
  std::uint64_t prev_sweeps_ = 0;
  std::array<std::uint64_t, 3> prev_wait_ns_{};
  std::array<std::uint64_t, 3> prev_wait_epochs_{};
  std::uint64_t prev_bytes_ = 0;
};

/// Options for the case's golden run (golden_n cells, golden_steps steps) —
/// what the regression tests and the `--smoke` CLI sweep execute.
[[nodiscard]] RunOptions golden_options(const CaseSpec& spec);

/// One-shot convenience: construct, run, report.  (Runtime precision
/// selection is the caller's dispatch — see the `drive` lambda in
/// examples/run_case.cpp for the idiom.)
template <class Policy>
RunResult run_case(const CaseSpec& spec, const RunOptions& opts = {});

// --- Guarded execution: checkpoints + health + rollback/retry ------------

/// Fault-tolerance envelope around a case run.
struct GuardOptions {
  /// Checkpoint cadence in steps (0: never).  Files land at
  /// `<dir>/<tag>.ckpt<step>` (+ ".sigma") with a `<dir>/<tag>.manifest`
  /// listing restart points oldest-first.
  int checkpoint_every = 0;
  std::string dir = ".";
  std::string tag;  ///< Defaults to the case name.
  /// Resume from the newest *valid* manifest entry (corrupt checkpoints
  /// are CRC-detected and skipped in favor of the previous valid one).
  bool resume = false;
  int keep = 3;  ///< Checkpoints retained on disk (older ones deleted).
  /// Health-scan cadence in steps (0: never scan).
  int health_every = 4;
  bool strict_pressure = false;  ///< Fail nonpositive pressure too.
  /// Rollback budget: on an unhealthy state or a comm/phase fault, reload
  /// the last valid checkpoint (or restart from t=0) with the CFL scaled
  /// by `cfl_backoff`, at most `max_retries` times — then fail cleanly.
  int max_retries = 2;
  double cfl_backoff = 0.5;
};

/// What the guarded run lived through.
struct GuardReport {
  RunResult result{};        ///< Valid when completed.
  bool completed = false;
  std::string failure;       ///< Why it gave up (completed == false).
  int retries = 0;           ///< Rollbacks performed.
  long resumed_step = -1;    ///< Step restored by --resume (-1: fresh).
  int checkpoints_written = 0;
  int checkpoints_rejected = 0;  ///< Invalid manifest entries skipped.
  int checkpoint_failures = 0;   ///< Saves that died mid-write (torn temp;
                                 ///< the previous checkpoint survives).
  double final_cfl_scale = 1.0;  ///< After any backoff.
  /// The armed FaultPlan this run executed under ("disarmed" when none) —
  /// recorded so a failure report names the fault that provoked it.
  std::string fault_plan;
  std::uint64_t fault_seed = 0;  ///< Plan provenance (0: explicit keys).
};

/// Run `spec` under the fault-tolerance envelope: periodic crash-safe
/// checkpoints + manifest, optional resume from the latest valid one,
/// periodic health scans, and bounded rollback/retry with CFL backoff on
/// faults or unhealthy states.  Injected comm/phase faults (opts.faults)
/// surface here as a rollback, proving the abort path unwinds rather than
/// deadlocks; injected IO faults tear a temp file and are survived.
template <class Policy>
GuardReport run_case_guarded(const CaseSpec& spec, const RunOptions& opts,
                             const GuardOptions& guard);

extern template class CaseRun<common::Fp64>;
extern template class CaseRun<common::Fp32>;
extern template class CaseRun<common::Fp16x32>;
extern template class CaseRun<common::Bf16x32>;

extern template GuardReport run_case_guarded<common::Fp64>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);
extern template GuardReport run_case_guarded<common::Fp32>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);
extern template GuardReport run_case_guarded<common::Fp16x32>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);
extern template GuardReport run_case_guarded<common::Bf16x32>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);

}  // namespace igr::cases
