#pragma once
/// \file runner.hpp
/// Unified execution of registered cases: one options struct drives any
/// case through app::Simulation at any precision, scheme, reconstruction
/// order, and rank layout, and reports diagnostics, conserved-quantity
/// totals, and (for cases with an analytic solution) L1/L∞ error norms.
/// The golden-regression tests, the `run_case` CLI, and `bench_grind
/// --case` all run scenarios through this one seam.

#include <array>
#include <memory>
#include <string>
#include <string_view>

#include "app/simulation.hpp"
#include "cases/case.hpp"

namespace igr::cases {

/// Runtime precision selector (the CLI's `--precision`).
enum class Precision { kFp64, kFp32, kFp16x32 };

[[nodiscard]] const char* precision_name(Precision p);
/// Parse "fp64" / "fp32" / "fp16x32"; false on anything else.
bool parse_precision(std::string_view s, Precision* out);

/// How to run a case.  Zero-initialized fields defer to the CaseSpec's
/// defaults.
struct RunOptions {
  int n = 0;           ///< Resolution parameter (0: spec.default_n).
  int steps = 0;       ///< > 0: run exactly this many steps.
  double t_end = -1.0; ///< >= 0 (and steps == 0): run to this time;
                       ///< -1: spec.default_t_end, else golden_steps.
  std::array<int, 3> ranks{1, 1, 1};  ///< Decomposed layout (IGR only).
  app::SchemeKind scheme = app::SchemeKind::kIgr;
  fv::ReconScheme recon = fv::ReconScheme::kFifth;
  bool fused_rhs = true;
  /// Jacobi Sigma sweeps (decomposition-exact: rank layout cannot change
  /// the bits) instead of the default red–black Gauss–Seidel.
  bool jacobi_sweeps = false;
  bool phase_timing = false;
};

/// What a run produced.
struct RunResult {
  app::FlowDiagnostics diag;
  common::Cons<double> totals_initial{};  ///< Conserved totals at t = 0.
  common::Cons<double> totals_final{};    ///< Conserved totals now.
  double l1_error = -1.0;    ///< Density L1 vs analytic (-1: no `exact`).
  double linf_error = -1.0;  ///< Density L∞ vs analytic (-1: no `exact`).
  double time = 0.0;
  int steps = 0;
  double grind_ns = 0.0;
  std::size_t cells = 0;
  std::size_t memory_bytes = 0;
};

/// A stateful case execution: step/run/inspect, checkpoint and restart.
template <class Policy>
class CaseRun {
 public:
  explicit CaseRun(const CaseSpec& spec, const RunOptions& opts = {});
  ~CaseRun();
  CaseRun(CaseRun&&) noexcept = default;
  CaseRun& operator=(CaseRun&&) noexcept = default;

  /// One CFL step; returns dt.
  double step();
  /// Run to completion per the options; returns result().
  RunResult run();
  /// Diagnostics + totals + error norms at the current state.
  [[nodiscard]] RunResult result() const;

  [[nodiscard]] app::Simulation<Policy>& sim() { return *sim_; }
  [[nodiscard]] const CaseSpec& spec() const { return *spec_; }
  /// Steps taken by *this object* (a restarted run counts from its load).
  [[nodiscard]] int steps_taken() const { return steps_; }

  /// Checkpoint/restart through the runner (single-domain runs; the IGR
  /// scheme round-trips Sigma too, making the continuation bitwise).
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);

 private:
  const CaseSpec* spec_;
  RunOptions opts_;
  int target_steps_ = 0;   ///< 0: time-driven.
  double t_end_ = 0.0;
  std::unique_ptr<app::Simulation<Policy>> sim_;
  common::Cons<double> totals_initial_{};
  int steps_ = 0;
};

/// Options for the case's golden run (golden_n cells, golden_steps steps) —
/// what the regression tests and the `--smoke` CLI sweep execute.
[[nodiscard]] RunOptions golden_options(const CaseSpec& spec);

/// One-shot convenience: construct, run, report.  (Runtime precision
/// selection is the caller's dispatch — see the `drive` lambda in
/// examples/run_case.cpp for the idiom.)
template <class Policy>
RunResult run_case(const CaseSpec& spec, const RunOptions& opts = {});

extern template class CaseRun<common::Fp64>;
extern template class CaseRun<common::Fp32>;
extern template class CaseRun<common::Fp16x32>;

}  // namespace igr::cases
