/// \file jet_cases.cpp
/// The paper's Mach-10 jet workloads (app::JetConfig) re-registered through
/// the declarative case interface, so the performance workload (§6.2), the
/// Fig. 5 three-engine row, and the Fig. 1 33-engine array are runnable,
/// benchable, and regression-checked through the same registry as every
/// other scenario.  `jet-single` reproduces the bench harness workload
/// exactly: same grid aspect (n, n, 3n/2), same config, same seeded initial
/// condition.

#include "app/jet_config.hpp"
#include "cases/case_builders.hpp"

namespace igr::cases::detail {

namespace {

CaseSpec make_jet(const std::string& name, const std::string& title,
                  app::JetConfig jet) {
  CaseSpec c;
  c.name = name;
  c.title = title;
  c.grid = [](int n) {
    return mesh::Grid(n, n, n + n / 2, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.5});
  };
  c.bc = [jet] { return jet.make_bc(); };
  c.config = [jet] { return jet.solver_config(); };
  c.initial = [jet]() -> core::PrimFn {
    // The bench/Fig. 5 seeding: smooth deterministic noise at 0.5%.
    return jet.initial_condition(0.005);
  };
  c.default_n = 32;
  c.default_t_end = 0.0;  // step-driven by default (start-up transient)
  c.golden_n = 16;
  c.golden_steps = 8;
  // Impulsively started Mach-10 inflow: the floor-guarded start-up
  // transient dominates the golden window — positivity of density is the
  // contract; pressure may transiently floor (tracked separately in
  // FlowDiagnostics::nonpositive_pressure_cells).
  c.golden.max_mach = {0.5, 40.0};
  c.golden.min_density = {1e-7, 1.1};
  c.golden.max_density = {1.0, 50.0};
  return c;
}

}  // namespace

std::vector<CaseSpec> make_jet_cases() {
  std::vector<CaseSpec> v;
  v.push_back(make_jet("jet-single",
                       "Mach-10 single-engine jet (the bench workload, 6.2)",
                       app::single_engine()));
  v.push_back(make_jet("jet-three",
                       "Mach-10 three-engine row (the Fig. 5 precision study)",
                       app::three_engine_row()));
  {
    auto c = make_jet("jet-33",
                      "33-engine Super-Heavy-inspired array (Fig. 1)",
                      app::super_heavy_33());
    // 0.03-radius nozzles need cell centers inside them: golden at n = 32.
    c.golden_n = 32;
    c.golden_steps = 6;
    v.push_back(std::move(c));
  }
  return v;
}

}  // namespace igr::cases::detail
