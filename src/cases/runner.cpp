#include "cases/runner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "common/half.hpp"
#include "common/hash.hpp"
#include "common/telemetry.hpp"
#include "io/checkpoint.hpp"

namespace igr::cases {

namespace telemetry = common::telemetry;

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp64: return "fp64";
    case Precision::kFp32: return "fp32";
    case Precision::kFp16x32: return "fp16x32";
    case Precision::kBf16x32: return "bf16x32";
  }
  return "?";
}

bool parse_precision(std::string_view s, Precision* out) {
  if (s == "fp64") *out = Precision::kFp64;
  else if (s == "fp32") *out = Precision::kFp32;
  else if (s == "fp16x32") *out = Precision::kFp16x32;
  else if (s == "bf16x32") *out = Precision::kBf16x32;
  else return false;
  return true;
}

namespace {

/// Conserved totals of the (gathered) interior in double — the golden
/// checksum quantity, scheme- and layout-independent.
template <class S>
common::Cons<double> totals_of(const common::StateField3<S>& q,
                               const mesh::Grid& g) {
  const double dv = g.dx() * g.dy() * g.dz();
  common::Cons<double> tot{};
  for (int k = 0; k < g.nz(); ++k)
    for (int j = 0; j < g.ny(); ++j)
      for (int i = 0; i < g.nx(); ++i)
        for (int c = 0; c < common::kNumVars; ++c)
          tot[c] += static_cast<double>(q[c](i, j, k)) * dv;
  return tot;
}

}  // namespace

template <class Policy>
CaseRun<Policy>::CaseRun(const CaseSpec& spec, const RunOptions& opts)
    : spec_(&spec), opts_(opts) {
  if (opts_.scheme == app::SchemeKind::kBaselineWeno && !spec.supports_weno)
    throw std::invalid_argument("case '" + spec.name +
                                "' is registered IGR-only (supports_weno is "
                                "off)");
  if (opts_.steps > 0) {
    target_steps_ = opts_.steps;
  } else if (opts_.t_end >= 0.0) {
    t_end_ = opts_.t_end;
  } else if (spec.default_t_end > 0.0) {
    t_end_ = spec.default_t_end;
  } else {
    target_steps_ = spec.golden_steps;
  }
  if (opts_.faults.armed())
    injector_ = std::make_unique<sim::FaultInjector>(opts_.faults);
  // Arm telemetry *before* the first build so construction-time IO (e.g. a
  // resume's checkpoint read) is already observed.  The gate is flipped
  // here, at setup — never on a hot path.
  if (!opts_.telemetry.empty() || !opts_.trace.empty())
    telemetry::set_enabled(true);
  build_sim();
  if (telemetry::enabled()) {
    telemetry::set_rank(std::max(0, sim_->local_rank()));
    if (!opts_.telemetry.empty() && sim_->is_io_root()) {
      jsonl_.reset(std::fopen(opts_.telemetry.c_str(), "w"));
      if (!jsonl_)
        throw std::runtime_error("CaseRun: cannot open telemetry stream " +
                                 opts_.telemetry);
    }
  }
}

template <class Policy>
typename app::Simulation<Policy>::Params RunOptions::to_params(
    const CaseSpec& spec, sim::FaultInjector* fault) const {
  typename app::Simulation<Policy>::Params params;
  params.grid = spec.grid(n > 0 ? n : spec.default_n);
  params.cfg = spec.config();
  params.cfg.fused_rhs = fused_rhs;
  params.cfg.phase_timing = phase_timing;
  params.cfg.cfl *= cfl_scale;
  if (jacobi_sweeps) params.cfg.sigma_gauss_seidel = false;
  params.cfg.exec_backend = exec;
  params.cfg.exec_threads = threads;
  params.bc = spec.bc();
  params.scheme = scheme;
  params.recon = recon;
  params.ranks = ranks;
  params.dist.threads_per_rank = threads;
  params.dist.fault = fault;
  params.dist.comm_timeout_s = comm_timeout_s;
  params.dist.halo_wire = halo_wire;
  params.dist.transport = transport;
  return params;
}

template <class Policy>
void CaseRun<Policy>::build_sim() {
  sim_.reset();  // a poisoned comm must die before its successor spawns
  sim_ = std::make_unique<app::Simulation<Policy>>(
      opts_.to_params<Policy>(*spec_, injector_.get()));
  sim_->init(spec_->initial());
  steps_ = 0;
  // Fresh solvers and a fresh comm start their meters at zero; re-base the
  // per-step delta snapshots so a rebuilt (rolled-back) run's first step
  // does not see a negative delta.
  prev_phase_s_.fill(0.0);
  prev_sweeps_ = 0;
  prev_wait_ns_.fill(0);
  prev_wait_epochs_.fill(0);
  prev_bytes_ = 0;
  if (sim_->is_io_root()) {
    totals_initial_ = totals_of(sim_->state(), sim_->grid());
  } else {
    (void)sim_->dist().gather();  // participate in the root's gather
  }
}

template <class Policy>
void CaseRun<Policy>::rebuild(double cfl_scale) {
  opts_.cfl_scale = cfl_scale;
  build_sim();  // injector_ deliberately survives: counters keep growing
}

template <class Policy>
CaseRun<Policy>::~CaseRun() = default;

template <class Policy>
double CaseRun<Policy>::step() {
  // The rank-kill injector fires *before* the step so the victim dies with
  // its halos unposted — the worst case its peers must detect.  Honored
  // only under a multi-process transport: in-process, SIGKILL would take
  // every rank (and the test harness) down with it.
  if (injector_ && sim_->multi_process())
    injector_->on_step(sim_->local_rank());
  const std::int64_t t0 = telemetry::enabled() ? telemetry::now_ns() : -1;
  const double dt = sim_->step();
  ++steps_;
  dt_hash_.update(&dt, sizeof(dt));
  // Telemetry runs strictly *after* the FP work and the dt-hash update, and
  // only reads state — the step's bits are already sealed either way.
  if (t0 >= 0) record_step_telemetry(t0, dt);
  return dt;
}

template <class Policy>
void CaseRun<Policy>::record_step_telemetry(std::int64_t t0, double dt) {
  const std::int64_t t1 = telemetry::now_ns();
  char buf[192];
  std::snprintf(buf, sizeof(buf), "\"step\": %d, \"dt\": %.17g", steps_, dt);
  telemetry::record_span("step", t0, t1 - t0, buf);
  telemetry::gauge("run.dt").set(dt);
  telemetry::histogram("run.step_ns")
      .record(static_cast<std::uint64_t>(t1 - t0));

  // Per-phase deltas from the solver's PhaseScope accumulators.  The
  // profile records durations, not start times, so the trace lays the phase
  // child spans sequentially inside the step span — phase order within the
  // step is schedule order, not measured offsets.
  constexpr int kNp = common::PhaseProfile::kNumPhases;
  std::array<double, kNp> dphase{};
  const common::PhaseProfile* prof = sim_->local_phase_profile();
  const bool phases = prof != nullptr && prof->enabled();
  if (phases) {
    std::int64_t cursor = t0;
    for (int p = 0; p < kNp; ++p) {
      const auto ph = static_cast<common::PhaseProfile::Phase>(p);
      const double s = prof->seconds(ph);
      dphase[static_cast<std::size_t>(p)] =
          s - prev_phase_s_[static_cast<std::size_t>(p)];
      prev_phase_s_[static_cast<std::size_t>(p)] = s;
      const auto ns = static_cast<std::int64_t>(
          dphase[static_cast<std::size_t>(p)] * 1e9);
      if (ns > 0) {
        telemetry::record_span(common::PhaseProfile::name(ph), cursor, ns);
        cursor += ns;
      }
    }
  }

  const std::uint64_t sweeps = sim_->sigma_sweeps_done();
  const std::uint64_t dsweeps = sweeps - prev_sweeps_;
  prev_sweeps_ = sweeps;
  telemetry::counter("sigma.sweeps").add(dsweeps);

  std::array<std::uint64_t, 3> dwait{};
  std::array<std::uint64_t, 3> depochs{};
  std::uint64_t dbytes = 0;
  if (sim_->distributed()) {
    const sim::Comm& comm = sim_->dist().comm();
    for (int a = 0; a < 3; ++a) {
      const auto sa = static_cast<std::size_t>(a);
      const std::uint64_t w = comm.halo_wait_ns(a);
      const std::uint64_t e = comm.halo_wait_epochs(a);
      dwait[sa] = w - prev_wait_ns_[sa];
      depochs[sa] = e - prev_wait_epochs_[sa];
      prev_wait_ns_[sa] = w;
      prev_wait_epochs_[sa] = e;
    }
    const auto bytes = static_cast<std::uint64_t>(comm.bytes_exchanged());
    dbytes = bytes - prev_bytes_;
    prev_bytes_ = bytes;
    telemetry::counter("halo.wait_ns").add(dwait[0] + dwait[1] + dwait[2]);
    telemetry::counter("halo.bytes").add(dbytes);
  }

  if (!jsonl_) return;
  std::FILE* f = jsonl_.get();
  std::fprintf(f,
               "{\"step\": %d, \"t\": %.17g, \"dt\": %.17g, "
               "\"wall_ns\": %" PRId64,
               steps_, sim_->time(), dt, t1 - t0);
  if (phases) {
    std::fputs(", \"phase_ns\": {", f);
    for (int p = 0; p < kNp; ++p) {
      const auto ph = static_cast<common::PhaseProfile::Phase>(p);
      std::fprintf(f, "%s\"%s\": %.0f", p == 0 ? "" : ", ",
                   common::PhaseProfile::name(ph),
                   dphase[static_cast<std::size_t>(p)] * 1e9);
    }
    std::fputc('}', f);
  }
  std::fprintf(f, ", \"sigma_sweeps\": %" PRIu64, dsweeps);
  if (sim_->distributed()) {
    std::fprintf(f,
                 ", \"halo_wait_ns\": [%" PRIu64 ", %" PRIu64 ", %" PRIu64
                 "], \"halo_wait_epochs\": [%" PRIu64 ", %" PRIu64
                 ", %" PRIu64 "], \"wire_bytes\": %" PRIu64,
                 dwait[0], dwait[1], dwait[2], depochs[0], depochs[1],
                 depochs[2], dbytes);
  }
  std::fputs("}\n", f);
  // Line-buffered on purpose: a killed or rolled-back run leaves a
  // parseable stream up to its last completed step.
  std::fflush(f);
}

template <class Policy>
void CaseRun<Policy>::emit_event(const std::string& name,
                                 const std::string& extra) {
  if (!jsonl_) return;
  std::FILE* f = jsonl_.get();
  std::fprintf(f, "{\"event\": \"%s\"", telemetry::json_escape(name).c_str());
  if (!extra.empty()) std::fprintf(f, ", %s", extra.c_str());
  std::fputs("}\n", f);
  std::fflush(f);
}

namespace {
/// Blob tag of the per-rank trace-fragment gather (DistributedIgr owns tags
/// 1 and 2 for state/Sigma).
constexpr int kBlobTagTrace = 3;
}  // namespace

template <class Policy>
void CaseRun<Policy>::export_trace() {
  if (opts_.trace.empty()) return;
  const std::string mine =
      telemetry::chrome_events(std::max(0, sim_->local_rank()));
  if (sim_->multi_process()) {
    auto& transport = sim_->dist().comm().transport();
    if (!sim_->is_io_root()) {
      transport.send_blob(0, kBlobTagTrace,
                          reinterpret_cast<const unsigned char*>(mine.data()),
                          mine.size());
      return;
    }
    std::vector<std::string> frags;
    frags.push_back(mine);
    const int R = sim_->dist().comm().ranks();
    for (int r = 1; r < R; ++r) {
      const auto blob = transport.recv_blob(r, kBlobTagTrace);
      frags.emplace_back(reinterpret_cast<const char*>(blob.data()),
                         blob.size());
    }
    if (!telemetry::write_trace(opts_.trace, frags))
      throw std::runtime_error("CaseRun: cannot write trace " + opts_.trace);
    return;
  }
  if (!telemetry::write_trace(opts_.trace, {mine}))
    throw std::runtime_error("CaseRun: cannot write trace " + opts_.trace);
}

template <class Policy>
RunResult CaseRun<Policy>::run() {
  if (target_steps_ > 0) {
    while (steps_ < target_steps_) step();
  } else {
    while (sim_->time() < t_end_ - 1e-14) step();
  }
  const RunResult r = result();
  export_trace();  // collective; after result()'s gather on every process
  return r;
}

template <class Policy>
RunResult CaseRun<Policy>::result() const {
  RunResult r;
  // Per-phase breakdown of a solver this process stepped, normalized the
  // way bench_grind reports it (ns per local cell per step).
  const common::PhaseProfile* prof = sim_->local_phase_profile();
  const std::size_t pcells = sim_->local_phase_cells();
  if (prof != nullptr && prof->enabled() && steps_ > 0 && pcells > 0) {
    r.has_phases = true;
    const double denom =
        static_cast<double>(pcells) * static_cast<double>(steps_);
    for (int p = 0; p < common::PhaseProfile::kNumPhases; ++p) {
      const auto ph = static_cast<common::PhaseProfile::Phase>(p);
      r.phase_ns[static_cast<std::size_t>(p)] =
          prof->seconds(ph) * 1e9 / denom;
    }
  }
  if (sim_->multi_process() && !sim_->is_io_root()) {
    // The root's diagnostics start with a gather; every process must feed
    // it.  Everything global in the result is root-only — this side
    // carries the collectively-known scalars and the dt fingerprint.
    (void)sim_->dist().gather();
    r.time = sim_->time();
    r.steps = steps_;
    r.grind_ns = sim_->grind_ns();
    r.cells = sim_->grid().cells();
    r.memory_bytes = sim_->memory_bytes();
    r.dt_fnv = dt_hash_.value();
    return r;
  }
  if (sim_->multi_process()) {
    // Exactly one gather per result() call on every process, regardless of
    // the root's cache state — dist() invalidates it so the diagnostics
    // below re-gather in lockstep with the peers' calls above.
    (void)sim_->dist();
  }
  r.diag = sim_->diagnostics();
  r.totals_initial = totals_initial_;
  r.totals_final = totals_of(sim_->state(), sim_->grid());
  r.time = sim_->time();
  r.steps = steps_;
  r.grind_ns = sim_->grind_ns();
  r.cells = sim_->grid().cells();
  r.memory_bytes = sim_->memory_bytes();
  r.state_fnv = common::state_fnv1a(sim_->state());
  r.dt_fnv = dt_hash_.value();
  if (spec_->exact) {
    const auto& q = sim_->state();
    const auto& g = sim_->grid();
    const double t = sim_->time();
    double l1 = 0.0, linf = 0.0;
    for (int k = 0; k < g.nz(); ++k) {
      for (int j = 0; j < g.ny(); ++j) {
        for (int i = 0; i < g.nx(); ++i) {
          const double exact = spec_->exact(g.x(i), g.y(j), g.z(k), t).rho;
          const double err = std::abs(
              static_cast<double>(q[common::kRho](i, j, k)) - exact);
          l1 += err;
          linf = std::max(linf, err);
        }
      }
    }
    r.l1_error = l1 / static_cast<double>(g.cells());
    r.linf_error = linf;
  }
  return r;
}

template <class Policy>
void CaseRun<Policy>::save_checkpoint(const std::string& path) const {
  sim_->save_checkpoint(path);
}

template <class Policy>
void CaseRun<Policy>::load_checkpoint(const std::string& path) {
  sim_->load_checkpoint(path);
  steps_ = 0;  // step budget counts from the restart point
}

RunOptions golden_options(const CaseSpec& spec) {
  RunOptions o;
  o.n = spec.golden_n;
  o.steps = spec.golden_steps;
  return o;
}

template <class Policy>
RunResult run_case(const CaseSpec& spec, const RunOptions& opts) {
  CaseRun<Policy> run(spec, opts);
  return run.run();
}

namespace {

/// Uninstalls the global torn-write hook on every exit path of the guarded
/// runner (the hook references the run's injector, which dies with it).
struct IoHookGuard {
  ~IoHookGuard() { io::set_checkpoint_write_fault({}); }
};

}  // namespace

template <class Policy>
GuardReport run_case_guarded(const CaseSpec& spec, const RunOptions& opts,
                             const GuardOptions& guard) {
  GuardReport rep;
  double cfl_scale = opts.cfl_scale;
  rep.final_cfl_scale = cfl_scale;
  rep.fault_plan = opts.faults.describe();
  rep.fault_seed = opts.faults.seed;

  CaseRun<Policy> run(spec, opts);
  const bool mp = run.sim().multi_process();
  const bool io_root = run.sim().is_io_root();
  sim::FaultInjector* inj = run.injector();
  IoHookGuard hook_guard;
  if (inj && inj->plan().io_write_at > 0) {
    io::set_checkpoint_write_fault(
        [inj](const std::string&, std::size_t) { inj->on_io_write(); });
  }

  const std::string tag = guard.tag.empty() ? spec.name : guard.tag;
  const std::string base = guard.dir + "/" + tag;
  const std::string manifest_path = base + ".manifest";
  const bool has_sigma = opts.scheme == app::SchemeKind::kIgr;

  long step = 0;  ///< Absolute campaign step (survives rollback/resume).
  std::vector<io::ManifestEntry> manifest;

  // Restore the newest manifest entry whose files pass a full CRC scan;
  // invalid or mismatched ones are skipped in favor of older entries.
  const auto try_restore = [&]() -> bool {
    for (auto it = manifest.rbegin(); it != manifest.rend(); ++it) {
      const auto v = io::validate_checkpoint(it->path);
      const auto vs = has_sigma
                          ? io::validate_checkpoint(it->path + ".sigma")
                          : io::CheckpointValidation{true, {}, {}};
      if (!v.ok || !vs.ok) {
        ++rep.checkpoints_rejected;
        continue;
      }
      try {
        run.load_checkpoint(it->path);
      } catch (const std::exception&) {
        ++rep.checkpoints_rejected;  // e.g. state/.sigma from different saves
        continue;
      }
      step = it->step;
      return true;
    }
    return false;
  };

  if (guard.resume) {
    manifest = io::read_manifest(manifest_path);
    if (try_restore()) {
      rep.resumed_step = step;
      telemetry::record_instant("resume",
                                "\"step\": " + std::to_string(step));
      run.emit_event("resume", "\"step\": " + std::to_string(step));
    }
  }

  // Rollback: rebuild the simulation (a faulted comm is poisoned by design
  // and cannot be reused), back off the CFL, and restore the last valid
  // checkpoint — or restart from the initial conditions if there is none.
  const auto rollback = [&](const std::string& why) -> bool {
    telemetry::record_instant(
        "rollback", "\"why\": \"" + telemetry::json_escape(why) + "\"");
    run.emit_event("rollback", "\"step\": " + std::to_string(step) +
                                   ", \"why\": \"" +
                                   telemetry::json_escape(why) + "\"");
    if (mp) {
      // A multi-process fabric cannot be re-formed in place: the peers'
      // transports are poisoned too (abort broadcast) and this process
      // cannot restart theirs.  Fail fast with the root cause latched;
      // igr_launch reaps the team, respawns it with --resume, and the
      // fresh team restores the newest valid checkpoint.
      rep.failure = why + " — multi-process run: exiting for the launcher "
                    "to respawn the team (resumes from the newest valid "
                    "checkpoint)";
      return false;
    }
    if (rep.retries >= guard.max_retries) {
      rep.failure = why + " — retry budget (" +
                    std::to_string(guard.max_retries) + ") exhausted";
      return false;
    }
    ++rep.retries;
    cfl_scale *= guard.cfl_backoff;
    rep.final_cfl_scale = cfl_scale;
    run.rebuild(cfl_scale);
    step = 0;
    try_restore();  // stays at the initial conditions when nothing is valid
    return true;
  };

  const int target_steps = run.target_steps();
  const double t_end = run.t_end();
  const auto done = [&]() {
    return target_steps > 0 ? step >= target_steps
                            : run.sim().time() >= t_end - 1e-14;
  };

  while (!done()) {
    try {
      run.step();
      ++step;
    } catch (const std::exception& e) {
      if (!rollback(std::string("step ") + std::to_string(step + 1) +
                    " failed: " + e.what()))
        return rep;
      continue;
    }

    const bool ckpt_due =
        guard.checkpoint_every > 0 && step % guard.checkpoint_every == 0;
    const bool health_due =
        guard.health_every > 0 &&
        (step % guard.health_every == 0 || ckpt_due);
    if (health_due) {
      const auto h = run.sim().health();
      if (!h.healthy(guard.strict_pressure)) {
        run.emit_event("health",
                       "\"step\": " + std::to_string(step) + ", \"ok\": false"
                       ", \"detail\": \"" +
                           telemetry::json_escape(h.describe()) + "\"");
        if (!rollback("unhealthy state at step " + std::to_string(step) +
                      ": " + h.describe()))
          return rep;
        continue;  // never checkpoint a state the scan just condemned
      }
      run.emit_event("health",
                     "\"step\": " + std::to_string(step) + ", \"ok\": true");
    }
    if (ckpt_due) {
      const std::string path = base + ".ckpt" + std::to_string(step);
      try {
        run.save_checkpoint(path);  // collective under mp; throws everywhere
        manifest.push_back({step, run.sim().time(), path});
        while (static_cast<int>(manifest.size()) > std::max(1, guard.keep)) {
          if (io_root) {
            std::remove(manifest.front().path.c_str());
            if (has_sigma)
              std::remove((manifest.front().path + ".sigma").c_str());
          }
          manifest.erase(manifest.begin());
        }
        if (io_root) io::write_manifest(manifest_path, manifest);
        ++rep.checkpoints_written;
        telemetry::record_instant("checkpoint",
                                  "\"step\": " + std::to_string(step));
        run.emit_event("checkpoint", "\"step\": " + std::to_string(step) +
                                         ", \"path\": \"" +
                                         telemetry::json_escape(path) + "\"");
      } catch (const std::exception& e) {
        // A save that dies mid-write leaves a torn `.tmp` and never touches
        // the final path or the manifest — the run itself is unharmed, so
        // count it and keep stepping (the next cadence retries).
        ++rep.checkpoint_failures;
        run.emit_event("checkpoint_failed",
                       "\"step\": " + std::to_string(step) + ", \"why\": \"" +
                           telemetry::json_escape(e.what()) + "\"");
      }
    }
  }

  rep.completed = true;
  rep.result = run.result();
  run.export_trace();  // collective; after result()'s gather
  // The absolute campaign step is what the report should carry, not the
  // rebuilt CaseRun's local count.
  rep.result.steps = static_cast<int>(step);
  return rep;
}

template typename app::Simulation<common::Fp64>::Params
RunOptions::to_params<common::Fp64>(const CaseSpec&,
                                    sim::FaultInjector*) const;
template typename app::Simulation<common::Fp32>::Params
RunOptions::to_params<common::Fp32>(const CaseSpec&,
                                    sim::FaultInjector*) const;
template typename app::Simulation<common::Fp16x32>::Params
RunOptions::to_params<common::Fp16x32>(const CaseSpec&,
                                       sim::FaultInjector*) const;
template typename app::Simulation<common::Bf16x32>::Params
RunOptions::to_params<common::Bf16x32>(const CaseSpec&,
                                       sim::FaultInjector*) const;

template class CaseRun<common::Fp64>;
template class CaseRun<common::Fp32>;
template class CaseRun<common::Fp16x32>;
template class CaseRun<common::Bf16x32>;

template RunResult run_case<common::Fp64>(const CaseSpec&, const RunOptions&);
template RunResult run_case<common::Fp32>(const CaseSpec&, const RunOptions&);
template RunResult run_case<common::Fp16x32>(const CaseSpec&,
                                             const RunOptions&);
template RunResult run_case<common::Bf16x32>(const CaseSpec&,
                                             const RunOptions&);

template GuardReport run_case_guarded<common::Fp64>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);
template GuardReport run_case_guarded<common::Fp32>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);
template GuardReport run_case_guarded<common::Fp16x32>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);
template GuardReport run_case_guarded<common::Bf16x32>(
    const CaseSpec&, const RunOptions&, const GuardOptions&);

}  // namespace igr::cases
