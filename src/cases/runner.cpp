#include "cases/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/half.hpp"

namespace igr::cases {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp64: return "fp64";
    case Precision::kFp32: return "fp32";
    case Precision::kFp16x32: return "fp16x32";
  }
  return "?";
}

bool parse_precision(std::string_view s, Precision* out) {
  if (s == "fp64") *out = Precision::kFp64;
  else if (s == "fp32") *out = Precision::kFp32;
  else if (s == "fp16x32") *out = Precision::kFp16x32;
  else return false;
  return true;
}

namespace {

/// Conserved totals of the (gathered) interior in double — the golden
/// checksum quantity, scheme- and layout-independent.
template <class S>
common::Cons<double> totals_of(const common::StateField3<S>& q,
                               const mesh::Grid& g) {
  const double dv = g.dx() * g.dy() * g.dz();
  common::Cons<double> tot{};
  for (int k = 0; k < g.nz(); ++k)
    for (int j = 0; j < g.ny(); ++j)
      for (int i = 0; i < g.nx(); ++i)
        for (int c = 0; c < common::kNumVars; ++c)
          tot[c] += static_cast<double>(q[c](i, j, k)) * dv;
  return tot;
}

}  // namespace

template <class Policy>
CaseRun<Policy>::CaseRun(const CaseSpec& spec, const RunOptions& opts)
    : spec_(&spec), opts_(opts) {
  if (opts_.scheme == app::SchemeKind::kBaselineWeno && !spec.supports_weno)
    throw std::invalid_argument("case '" + spec.name +
                                "' is registered IGR-only (supports_weno is "
                                "off)");
  const int n = opts_.n > 0 ? opts_.n : spec.default_n;
  if (opts_.steps > 0) {
    target_steps_ = opts_.steps;
  } else if (opts_.t_end >= 0.0) {
    t_end_ = opts_.t_end;
  } else if (spec.default_t_end > 0.0) {
    t_end_ = spec.default_t_end;
  } else {
    target_steps_ = spec.golden_steps;
  }

  typename app::Simulation<Policy>::Params params;
  params.grid = spec.grid(n);
  params.cfg = spec.config();
  params.cfg.fused_rhs = opts_.fused_rhs;
  params.cfg.phase_timing = opts_.phase_timing;
  if (opts_.jacobi_sweeps) params.cfg.sigma_gauss_seidel = false;
  params.bc = spec.bc();
  params.scheme = opts_.scheme;
  params.recon = opts_.recon;
  params.ranks = opts_.ranks;
  sim_ = std::make_unique<app::Simulation<Policy>>(std::move(params));
  sim_->init(spec.initial());
  totals_initial_ = totals_of(sim_->state(), sim_->grid());
}

template <class Policy>
CaseRun<Policy>::~CaseRun() = default;

template <class Policy>
double CaseRun<Policy>::step() {
  const double dt = sim_->step();
  ++steps_;
  return dt;
}

template <class Policy>
RunResult CaseRun<Policy>::run() {
  if (target_steps_ > 0) {
    while (steps_ < target_steps_) step();
  } else {
    while (sim_->time() < t_end_ - 1e-14) step();
  }
  return result();
}

template <class Policy>
RunResult CaseRun<Policy>::result() const {
  RunResult r;
  r.diag = sim_->diagnostics();
  r.totals_initial = totals_initial_;
  r.totals_final = totals_of(sim_->state(), sim_->grid());
  r.time = sim_->time();
  r.steps = steps_;
  r.grind_ns = sim_->grind_ns();
  r.cells = sim_->grid().cells();
  r.memory_bytes = sim_->memory_bytes();
  if (spec_->exact) {
    const auto& q = sim_->state();
    const auto& g = sim_->grid();
    const double t = sim_->time();
    double l1 = 0.0, linf = 0.0;
    for (int k = 0; k < g.nz(); ++k) {
      for (int j = 0; j < g.ny(); ++j) {
        for (int i = 0; i < g.nx(); ++i) {
          const double exact = spec_->exact(g.x(i), g.y(j), g.z(k), t).rho;
          const double err = std::abs(
              static_cast<double>(q[common::kRho](i, j, k)) - exact);
          l1 += err;
          linf = std::max(linf, err);
        }
      }
    }
    r.l1_error = l1 / static_cast<double>(g.cells());
    r.linf_error = linf;
  }
  return r;
}

template <class Policy>
void CaseRun<Policy>::save_checkpoint(const std::string& path) const {
  sim_->save_checkpoint(path);
}

template <class Policy>
void CaseRun<Policy>::load_checkpoint(const std::string& path) {
  sim_->load_checkpoint(path);
  steps_ = 0;  // step budget counts from the restart point
}

RunOptions golden_options(const CaseSpec& spec) {
  RunOptions o;
  o.n = spec.golden_n;
  o.steps = spec.golden_steps;
  return o;
}

template <class Policy>
RunResult run_case(const CaseSpec& spec, const RunOptions& opts) {
  CaseRun<Policy> run(spec, opts);
  return run.run();
}

template class CaseRun<common::Fp64>;
template class CaseRun<common::Fp32>;
template class CaseRun<common::Fp16x32>;

template RunResult run_case<common::Fp64>(const CaseSpec&, const RunOptions&);
template RunResult run_case<common::Fp32>(const CaseSpec&, const RunOptions&);
template RunResult run_case<common::Fp16x32>(const CaseSpec&,
                                             const RunOptions&);

}  // namespace igr::cases
