/// \file smooth_cases.cpp
/// Smooth and vortical scenarios: the Taylor–Green vortex, isentropic
/// vortex advection (with its analytic solution — the convergence-order
/// anchor of the golden suite), and a Kelvin–Helmholtz shear layer.  These
/// pin down the other half of the paper's claim (§4.1): the entropic
/// pressure must leave smooth, resolved flow untouched.

#include <cmath>

#include "cases/case_builders.hpp"

namespace igr::cases::detail {

namespace {

using common::Prim;

constexpr double kPi = 3.14159265358979323846;

common::SolverConfig smooth_config(double cfl = 0.4) {
  common::SolverConfig cfg;
  cfg.gamma = 1.4;
  cfg.alpha_factor = 5.0;
  cfg.sigma_sweeps = 5;
  cfg.cfl = cfl;
  return cfg;
}

/// Isentropic vortex (gamma = 1.4, strength beta = 1) centered at
/// (cx, 5) in the z-uniform [0, 10]^2 plane, advecting with u0 = 1 along x.
/// Same classic solution the standalone vortex validation uses.
Prim<double> vortex_state(double x, double y, double cx) {
  constexpr double kGamma = 1.4, kBeta = 1.0, kU0 = 1.0;
  auto wrap = [](double d) {
    while (d > 5.0) d -= 10.0;
    while (d < -5.0) d += 10.0;
    return d;
  };
  const double dx = wrap(x - cx), dy = wrap(y - 5.0);
  const double r2 = dx * dx + dy * dy;
  const double e = std::exp(0.5 * (1.0 - r2));
  const double dT = -(kGamma - 1.0) * kBeta * kBeta /
                    (8.0 * kGamma * kPi * kPi) * std::exp(1.0 - r2);
  const double T = 1.0 + dT;
  Prim<double> w;
  w.rho = std::pow(T, 1.0 / (kGamma - 1.0));
  w.u = kU0 - kBeta / (2.0 * kPi) * e * dy;
  w.v = kBeta / (2.0 * kPi) * e * dx;
  w.w = 0.0;
  w.p = std::pow(T, kGamma / (kGamma - 1.0));
  return w;
}

}  // namespace

std::vector<CaseSpec> make_smooth_cases() {
  std::vector<CaseSpec> v;

  // --- Taylor–Green vortex -------------------------------------------------
  {
    CaseSpec c;
    c.name = "taylor-green";
    c.title = "Taylor-Green vortex ([0,2pi]^3 periodic, Ma ~ 0.08)";
    c.grid = [](int n) {
      return mesh::Grid(n, n, n, {0.0, 2.0 * kPi}, {0.0, 2.0 * kPi},
                        {0.0, 2.0 * kPi});
    };
    c.bc = [] { return fv::BcSpec::all_periodic(); };
    c.config = [] { return smooth_config(); };
    c.initial = []() -> core::PrimFn {
      return [](double x, double y, double z) {
        Prim<double> w;
        w.rho = 1.0;
        w.u = std::sin(x) * std::cos(y) * std::cos(z);
        w.v = -std::cos(x) * std::sin(y) * std::cos(z);
        w.w = 0.0;
        // Near-incompressible background (p0 = 100 -> Ma ~ 0.085) with the
        // classic consistent pressure field.
        w.p = 100.0 +
              ((std::cos(2.0 * z) + 2.0) *
                   (std::cos(2.0 * x) + std::cos(2.0 * y)) -
               2.0) /
                  16.0;
        return w;
      };
    };
    c.default_n = 64;
    c.default_t_end = 2.0;
    c.golden_n = 24;
    c.golden_steps = 8;
    c.golden.max_mach = {0.03, 0.2};
    c.golden.min_density = {0.95, 1.0};
    c.golden.max_density = {0.999, 1.05};
    c.golden.min_pressure = {99.0, 100.0};
    // Initial enstrophy is 6*pi^3 ~ 186 analytically; the second-order curl
    // stencil underestimates by a few percent at golden_n.
    c.golden.enstrophy = {120.0, 260.0};
    c.golden.conservation_rtol = 1e-11;
    v.push_back(std::move(c));
  }

  // --- Isentropic vortex advection (analytic solution) ---------------------
  {
    CaseSpec c;
    c.name = "isentropic-vortex";
    c.title = "Isentropic vortex advection (analytic solution, error norms)";
    c.grid = [](int n) {
      return mesh::Grid(n, n, 4, {0.0, 10.0}, {0.0, 10.0}, {0.0, 40.0 / n});
    };
    c.bc = [] { return fv::BcSpec::all_periodic(); };
    c.config = [] { return smooth_config(); };
    c.initial = []() -> core::PrimFn {
      return [](double x, double y, double) { return vortex_state(x, y, 5.0); };
    };
    c.exact = [](double x, double y, double, double t) {
      return vortex_state(x, y, 5.0 + t);  // advected by u0 = 1
    };
    c.default_n = 48;
    c.default_t_end = 1.0;
    c.golden_n = 24;
    c.golden_steps = 10;
    c.golden.max_mach = {0.8, 1.4};
    c.golden.min_density = {0.9, 1.0};
    c.golden.max_density = {0.95, 1.01};
    c.golden.min_pressure = {0.9, 1.0};
    c.golden.conservation_rtol = 1e-10;
    c.golden.l1_error_max = 1e-3;
    v.push_back(std::move(c));
  }

  // --- Kelvin–Helmholtz shear layer ----------------------------------------
  {
    CaseSpec c;
    c.name = "kelvin-helmholtz";
    c.title = "Kelvin-Helmholtz double shear layer (2:1 density, periodic)";
    c.grid = [](int n) {
      return mesh::Grid(n, n, 4, {0.0, 1.0}, {0.0, 1.0}, {0.0, 4.0 / n});
    };
    c.bc = [] { return fv::BcSpec::all_periodic(); };
    c.config = [] { return smooth_config(); };
    c.initial = []() -> core::PrimFn {
      return [](double x, double y, double) {
        constexpr double a = 0.05;    // shear-layer thickness
        constexpr double sig = 0.2;   // perturbation envelope width
        const double s =
            std::tanh((y - 0.25) / a) - std::tanh((y - 0.75) / a);
        Prim<double> w;
        w.rho = 1.0 + 0.5 * s;
        w.u = 0.5 * (s - 1.0);
        w.v = 0.01 * std::sin(4.0 * kPi * x) *
              (std::exp(-(y - 0.25) * (y - 0.25) / (sig * sig)) +
               std::exp(-(y - 0.75) * (y - 0.75) / (sig * sig)));
        w.w = 0.0;
        w.p = 10.0;
        return w;
      };
    };
    c.default_n = 64;
    c.default_t_end = 1.0;
    c.golden_n = 24;
    c.golden_steps = 10;
    c.golden.max_mach = {0.1, 0.4};
    c.golden.min_density = {0.9, 1.05};
    c.golden.max_density = {1.9, 2.1};
    c.golden.min_pressure = {9.0, 10.1};
    c.golden.enstrophy = {0.5, 50.0};
    c.golden.conservation_rtol = 1e-11;
    v.push_back(std::move(c));
  }

  return v;
}

}  // namespace igr::cases::detail
