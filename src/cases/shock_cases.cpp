/// \file shock_cases.cpp
/// Shock-dominated scenarios: Sod and Lax shock tubes along each axis
/// (uniform Dirichlet ends — BcKind::kDirichlet), a Sedov-type blast, and a
/// planar-shock/bubble interaction.  These exercise exactly the regime the
/// paper's regularization targets (§4): discontinuous data, strong
/// compressions, positivity near vacuum-adjacent states.

#include <algorithm>
#include <array>
#include <cmath>

#include "cases/case_builders.hpp"

namespace igr::cases::detail {

namespace {

using common::Prim;

Prim<double> prim(double rho, double u, double v, double w, double p) {
  Prim<double> s;
  s.rho = rho;
  s.u = u;
  s.v = v;
  s.w = w;
  s.p = p;
  return s;
}

common::SolverConfig shock_config(double floors = 0.0) {
  common::SolverConfig cfg;
  cfg.gamma = 1.4;
  cfg.alpha_factor = 5.0;
  cfg.sigma_sweeps = 5;
  cfg.cfl = 0.3;
  cfg.density_floor = floors;
  cfg.pressure_floor = floors;
  return cfg;
}

/// A 1-D Riemann problem extruded to 3-D along `axis`: the tube axis spans
/// [0, 1] with `n` cells and the jump at 0.5; the transverse axes carry
/// max(4, n/2) cells at the same spacing (uniform grid), periodic.  The two
/// tube ends hold the constant left/right states as uniform Dirichlet faces
/// — the states the waves never reach over a standard run.  `ul`/`ur` are
/// the velocities *along the tube axis*.
///
/// Sigma ghosts follow the state BC per face (sigma_bc_from): the periodic
/// transverse faces wrap Sigma, the tube ends clamp it.  For these extruded
/// tubes wrap and clamp coincide (no transverse gradients by symmetry).
CaseSpec make_tube(const std::string& name, const std::string& title,
                   int axis, const Prim<double>& left,
                   const Prim<double>& right, double t_end) {
  CaseSpec c;
  c.name = name;
  c.title = title;
  c.grid = [axis](int n) {
    const int m = std::max(4, n / 2);
    int dims[3] = {m, m, m};
    dims[axis] = n;
    const double h = 1.0 / n;
    std::array<std::array<double, 2>, 3> ext{};
    for (int a = 0; a < 3; ++a) ext[a] = {0.0, dims[a] * h};
    return mesh::Grid(dims[0], dims[1], dims[2], ext[0], ext[1], ext[2]);
  };
  c.bc = [axis, left, right]() {
    fv::BcSpec bc;  // periodic transverse faces
    bc.set_dirichlet(static_cast<mesh::Face>(2 * axis), left);
    bc.set_dirichlet(static_cast<mesh::Face>(2 * axis + 1), right);
    return bc;
  };
  c.config = [] { return shock_config(); };
  c.initial = [axis, left, right]() -> core::PrimFn {
    return [axis, left, right](double x, double y, double z) {
      const double s = (axis == 0) ? x : (axis == 1) ? y : z;
      return s < 0.5 ? left : right;
    };
  };
  c.default_n = 64;
  c.default_t_end = t_end;
  c.golden_n = 16;
  c.golden_steps = 12;
  return c;
}

/// Velocity magnitude `u` directed along `axis`.
Prim<double> along(int axis, double rho, double u, double p) {
  return prim(rho, axis == 0 ? u : 0.0, axis == 1 ? u : 0.0,
              axis == 2 ? u : 0.0, p);
}

}  // namespace

std::vector<CaseSpec> make_shock_cases() {
  std::vector<CaseSpec> v;

  // --- Sod tube along each axis -------------------------------------------
  // Quiescent end states: both Dirichlet faces flux zero mass/energy until
  // the waves arrive, so the golden run conserves to round-off.
  for (int axis = 0; axis < 3; ++axis) {
    const char axname = static_cast<char>('x' + axis);
    auto c = make_tube(std::string("sod-") + axname,
                       std::string("Sod shock tube along ") + axname +
                           " (Dirichlet ends, periodic transverse)",
                       axis, along(axis, 1.0, 0.0, 1.0),
                       along(axis, 0.125, 0.0, 0.1), 0.2);
    c.golden.max_mach = {0.3, 1.5};
    c.golden.min_density = {0.05, 0.2};
    c.golden.max_density = {0.9, 1.3};
    c.golden.min_pressure = {0.05, 0.12};
    // The ends are quiescent, but the 5th-order stencil spreads smooth
    // acoustic tails ~3 cells/step — they brush the Dirichlet faces within
    // the golden window, so conservation holds to the tail amplitude
    // (measured ~1e-5), not to round-off.
    c.golden.conservation_rtol = 1e-4;
    v.push_back(std::move(c));
  }

  // --- Lax tube along each axis -------------------------------------------
  // The left state flows into the tube (subsonic inflow Dirichlet), so mass
  // grows with time — no conservation checksum.
  for (int axis = 0; axis < 3; ++axis) {
    const char axname = static_cast<char>('x' + axis);
    auto c = make_tube(std::string("lax-") + axname,
                       std::string("Lax shock tube along ") + axname +
                           " (inflow Dirichlet left end)",
                       axis, along(axis, 0.445, 0.698, 3.528),
                       along(axis, 0.5, 0.0, 0.571), 0.13);
    c.golden.max_mach = {0.1, 1.2};
    c.golden.min_density = {0.2, 0.5};
    c.golden.max_density = {0.5, 1.5};
    c.golden.min_pressure = {0.3, 0.7};
    v.push_back(std::move(c));
  }

  // --- Sedov-type blast ----------------------------------------------------
  {
    CaseSpec c;
    c.name = "sedov";
    c.title = "Sedov-type point blast (100:1 pressure ball, outflow box)";
    c.grid = [](int n) { return mesh::Grid::cube(n); };
    c.bc = [] { return fv::BcSpec::all_outflow(); };
    c.config = [] { return shock_config(1e-10); };
    c.initial = []() -> core::PrimFn {
      return [](double x, double y, double z) {
        const double dx = x - 0.5, dy = y - 0.5, dz = z - 0.5;
        const double r2 = dx * dx + dy * dy + dz * dz;
        return prim(1.0, 0.0, 0.0, 0.0, r2 < 0.1 * 0.1 ? 100.0 : 1.0);
      };
    };
    c.default_n = 48;
    c.default_t_end = 0.05;
    c.golden_n = 16;
    c.golden_steps = 10;
    c.golden.max_mach = {0.5, 6.0};
    c.golden.min_density = {0.01, 1.01};
    c.golden.max_density = {1.0, 7.0};
    c.golden.min_pressure = {0.2, 1.1};
    // Quiescent ambient at the faces, but the stencil's smooth tails reach
    // the outflow boundary within the golden window (measured drift ~3e-6).
    c.golden.conservation_rtol = 1e-4;
    v.push_back(std::move(c));
  }

  // --- Shock–bubble interaction -------------------------------------------
  {
    // Mach-2 planar shock (gamma = 1.4 Rankine–Hugoniot post-shock state:
    // rho = 8/3, u = 2*sqrt(1.4)*(1 - 3/8), p = 4.5) marching into a
    // quiescent ambient that holds a light spherical bubble (rho = 0.1).
    const auto post = prim(8.0 / 3.0, 2.0 * std::sqrt(1.4) * (1.0 - 3.0 / 8.0),
                           0.0, 0.0, 4.5);
    CaseSpec c;
    c.name = "shock-bubble";
    c.title = "Mach-2 planar shock hitting a light bubble (10:1 density)";
    c.grid = [](int n) {
      const double h = 1.0 / n;
      return mesh::Grid(2 * n, n, n, {0.0, 2.0 * n * h}, {0.0, n * h},
                        {0.0, n * h});
    };
    c.bc = [post] {
      // Periodic transverse faces; Sigma wraps across them per face
      // (sigma_bc_from), consistent with the state.
      fv::BcSpec bc;
      bc.set_dirichlet(mesh::Face::kXLo, post);
      bc.kind[static_cast<std::size_t>(mesh::Face::kXHi)] =
          fv::BcKind::kOutflow;
      return bc;
    };
    c.config = [] { return shock_config(1e-6); };
    c.initial = [post]() -> core::PrimFn {
      return [post](double x, double y, double z) {
        // Both interfaces are smoothed: the unlimited 5th-order linear
        // reconstruction undershoots sharp 10:1 contacts below zero density
        // (the scheme relies on IGR smearing *evolved* shocks, which cannot
        // help a discontinuous t = 0 profile).  The shock front blends over
        // 0.04 and re-steepens under the flow; the bubble is a smooth
        // 10:1 Gaussian well.
        const double s = 0.5 * (1.0 + std::tanh((0.3 - x) / 0.04));
        const double dx = x - 0.7, dy = y - 0.5, dz = z - 0.5;
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double rho_amb = 1.0 - 0.9 * std::exp(-r2 / (0.15 * 0.15));
        return prim(s * post.rho + (1.0 - s) * rho_amb, s * post.u, 0.0, 0.0,
                    s * post.p + (1.0 - s) * 1.0);
      };
    };
    c.default_n = 32;
    c.default_t_end = 0.3;
    c.golden_n = 12;
    c.golden_steps = 10;
    c.golden.max_mach = {0.3, 3.0};
    c.golden.min_density = {0.05, 0.4};
    c.golden.max_density = {2.0, 5.0};
    c.golden.min_pressure = {0.3, 1.05};
    v.push_back(std::move(c));
  }

  return v;
}

}  // namespace igr::cases::detail
