#pragma once
/// \file case.hpp
/// Declarative scenario registry — the case library.
///
/// The paper positions IGR as a *general* shock-capturing regularization;
/// this subsystem turns that claim into an executable surface.  A CaseSpec
/// bundles everything needed to run one canonical compressible-flow
/// scenario — grid/BC/EOS/solver-configuration builders, the initial
/// condition, an analytic solution where one exists, and the golden
/// diagnostic bands the regression harness asserts — behind one name.
/// `cases::find`/`cases::list` expose the static registry to the unified
/// runner (src/cases/runner.hpp, examples/run_case.cpp), the golden tests
/// (tests/test_cases.cpp), and the per-case bench (`bench_grind --case`).
///
/// Registered families: Sod and Lax shock tubes along each axis (uniform
/// Dirichlet ends), a Sedov-type blast, the Taylor–Green vortex, isentropic
/// vortex advection (analytic solution → error norms), a Kelvin–Helmholtz
/// shear layer, a shock–bubble interaction, and the Mach-10 jet family
/// re-registered through the same interface.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/state.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/bc.hpp"
#include "mesh/grid.hpp"

namespace igr::cases {

/// Closed interval a golden diagnostic must land in.  The default band is
/// unbounded (no check).
struct Band {
  double lo = -1e300;
  double hi = 1e300;
  [[nodiscard]] bool contains(double v) const { return v >= lo && v <= hi; }
};

/// Expected diagnostics over the case's golden run (golden_n cells,
/// golden_steps steps, FP64) — the regression contract every PR re-checks.
struct GoldenBounds {
  Band max_mach{};
  Band min_density{};
  Band max_density{};
  Band min_pressure{};
  Band enstrophy{};
  /// Relative tolerance for mass *and* total-energy conservation over the
  /// golden run (0 disables — open boundaries with through-flow).  Closed
  /// domains (periodic, walls, quiescent Dirichlet/outflow far fields the
  /// waves have not reached) conserve to round-off.
  double conservation_rtol = 0.0;
  /// Ceiling on the L1 density error against the analytic solution at
  /// (golden_n, default_t_end); 0 disables (cases without `exact`).
  double l1_error_max = 0.0;
};

/// One declaratively registered scenario.
struct CaseSpec {
  std::string name;   ///< Registry key (CLI `--case NAME`).
  std::string title;  ///< One-line description.

  /// Grid at resolution parameter `n` (cases map `n` to their own extents
  /// and aspect ratio; spacing is uniform).
  std::function<mesh::Grid(int n)> grid;
  std::function<fv::BcSpec()> bc;
  std::function<common::SolverConfig()> config;
  /// Initial condition: primitive state at a cell center.
  std::function<core::PrimFn()> initial;
  /// Analytic solution at time `t`, or empty if none (enables L1/L∞ error
  /// norms in the runner and the convergence-order regressions).
  std::function<common::Prim<double>(double x, double y, double z, double t)>
      exact;

  int default_n = 32;          ///< CLI default resolution.
  double default_t_end = 0.0;  ///< CLI default end time (0: steps-driven).
  int golden_n = 16;           ///< Golden-run resolution (tests, smoke).
  int golden_steps = 10;       ///< Golden-run step count.
  GoldenBounds golden;
  /// The WENO/HLLC baseline can run this case (FP64/FP32 only — FP16/32
  /// storage is IGR-only globally).  The runner rejects `--scheme weno`
  /// for cases that turn this off; every current case leaves it on.
  bool supports_weno = true;
};

/// The static registry, built on first use.
const std::vector<CaseSpec>& all_cases();

/// Look up a case by name; nullptr when unknown.
const CaseSpec* find(std::string_view name);

/// Registered case names, in registration order.
std::vector<std::string_view> list();

}  // namespace igr::cases
