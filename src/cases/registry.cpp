#include "cases/case.hpp"

#include "cases/case_builders.hpp"

namespace igr::cases {

const std::vector<CaseSpec>& all_cases() {
  // Built on first use (no static-initialization-order dependence between
  // the family translation units).
  static const std::vector<CaseSpec> registry = [] {
    std::vector<CaseSpec> v;
    for (auto maker : {detail::make_shock_cases, detail::make_smooth_cases,
                       detail::make_jet_cases}) {
      auto family = maker();
      v.insert(v.end(), std::make_move_iterator(family.begin()),
               std::make_move_iterator(family.end()));
    }
    return v;
  }();
  return registry;
}

const CaseSpec* find(std::string_view name) {
  for (const auto& c : all_cases())
    if (c.name == name) return &c;
  return nullptr;
}

std::vector<std::string_view> list() {
  std::vector<std::string_view> names;
  names.reserve(all_cases().size());
  for (const auto& c : all_cases()) names.emplace_back(c.name);
  return names;
}

}  // namespace igr::cases
