#pragma once
/// \file case_builders.hpp
/// Internal seams between the registry and the per-family case definition
/// translation units (shock_cases / smooth_cases / jet_cases).  Not part of
/// the public cases API — include cases/case.hpp instead.

#include <vector>

#include "cases/case.hpp"

namespace igr::cases::detail {

/// Shock-dominated family: Sod/Lax tubes (x/y/z), Sedov-type blast,
/// shock–bubble interaction.
std::vector<CaseSpec> make_shock_cases();

/// Smooth/vortical family: Taylor–Green, isentropic vortex (analytic),
/// Kelvin–Helmholtz shear layer.
std::vector<CaseSpec> make_smooth_cases();

/// The paper's Mach-10 jet workloads re-registered through the case
/// interface (single engine, three-engine row, 33-engine array).
std::vector<CaseSpec> make_jet_cases();

}  // namespace igr::cases::detail
