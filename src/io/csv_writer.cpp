#include "io/csv_writer.hpp"

#include <stdexcept>

namespace igr::io {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), width_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << columns[i] << (i + 1 < columns.size() ? "," : "\n");
  }
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << values[i] << (i + 1 < values.size() ? "," : "\n");
  }
  ++rows_;
}

void CsvWriter::row_strings(const std::vector<std::string>& values) {
  if (values.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << values[i] << (i + 1 < values.size() ? "," : "\n");
  }
  ++rows_;
}

}  // namespace igr::io
