#include "io/vtk_writer.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/state.hpp"

namespace igr::io {

void VtkWriter::open(const std::string& path) {
  path_ = path;
  body_.clear();
  n_fields_ = 0;
}

template <class T>
void VtkWriter::add_scalar(const std::string& name,
                           const common::Field3<T>& f) {
  if (path_.empty()) throw std::logic_error("VtkWriter: open() first");
  std::ostringstream os;
  os << "SCALARS " << name << " float 1\nLOOKUP_TABLE default\n";
  for (int k = 0; k < f.nz(); ++k)
    for (int j = 0; j < f.ny(); ++j)
      for (int i = 0; i < f.nx(); ++i)
        os << static_cast<float>(static_cast<double>(f(i, j, k))) << "\n";
  body_ += os.str();
  ++n_fields_;
}

template <class T>
void VtkWriter::add_state(const common::StateField3<T>& q,
                          const eos::IdealGas& eos) {
  if (path_.empty()) throw std::logic_error("VtkWriter: open() first");
  std::ostringstream rho, pre, vel;
  rho << "SCALARS density float 1\nLOOKUP_TABLE default\n";
  pre << "SCALARS pressure float 1\nLOOKUP_TABLE default\n";
  vel << "SCALARS velocity_magnitude float 1\nLOOKUP_TABLE default\n";
  for (int k = 0; k < q.nz(); ++k) {
    for (int j = 0; j < q.ny(); ++j) {
      for (int i = 0; i < q.nx(); ++i) {
        common::Cons<double> qc;
        for (int c = 0; c < common::kNumVars; ++c)
          qc[c] = static_cast<double>(q[c](i, j, k));
        const auto w = eos.to_prim(qc);
        rho << static_cast<float>(w.rho) << "\n";
        pre << static_cast<float>(w.p) << "\n";
        vel << static_cast<float>(std::sqrt(w.speed2())) << "\n";
      }
    }
  }
  body_ += rho.str() + pre.str() + vel.str();
  n_fields_ += 3;
}

void VtkWriter::close() {
  if (path_.empty()) return;
  std::ofstream out(path_);
  if (!out) throw std::runtime_error("VtkWriter: cannot open " + path_);
  out << "# vtk DataFile Version 3.0\nigrflow output\nASCII\n"
      << "DATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << grid_->nx() << " " << grid_->ny() << " "
      << grid_->nz() << "\n"
      << "ORIGIN " << grid_->x(0) << " " << grid_->y(0) << " " << grid_->z(0)
      << "\n"
      << "SPACING " << grid_->dx() << " " << grid_->dy() << " " << grid_->dz()
      << "\n"
      << "POINT_DATA " << grid_->cells() << "\n"
      << body_;
  path_.clear();
  body_.clear();
}

template void VtkWriter::add_scalar<double>(const std::string&,
                                            const common::Field3<double>&);
template void VtkWriter::add_scalar<float>(const std::string&,
                                           const common::Field3<float>&);
template void VtkWriter::add_scalar<common::half>(
    const std::string&, const common::Field3<common::half>&);
template void VtkWriter::add_state<double>(const common::StateField3<double>&,
                                           const eos::IdealGas&);
template void VtkWriter::add_state<float>(const common::StateField3<float>&,
                                          const eos::IdealGas&);
template void VtkWriter::add_state<common::half>(
    const common::StateField3<common::half>&, const eos::IdealGas&);
template void VtkWriter::add_scalar<common::bfloat16>(
    const std::string&, const common::Field3<common::bfloat16>&);
template void VtkWriter::add_state<common::bfloat16>(
    const common::StateField3<common::bfloat16>&, const eos::IdealGas&);

}  // namespace igr::io
