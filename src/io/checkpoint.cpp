#include "io/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define IGR_HAVE_FSYNC 1
#endif

#include <atomic>

#include "common/bfloat16.hpp"
#include "common/hash.hpp"
#include "common/telemetry.hpp"

namespace igr::io {

namespace {

void check(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error("checkpoint: " + what);
}

/// Telemetry timer for a checkpoint IO call: records a duration histogram
/// and a trace span when telemetry is armed, costs one predicted branch when
/// not.  Durations are recorded even on the error path (the failed attempt
/// is the interesting one).
class IoTimer {
 public:
  IoTimer(const char* span, const char* histogram)
      : span_(span),
        histogram_(histogram),
        t0_(common::telemetry::enabled() ? common::telemetry::now_ns() : -1) {}
  ~IoTimer() {
    if (t0_ < 0) return;
    const std::int64_t dur = common::telemetry::now_ns() - t0_;
    common::telemetry::histogram(histogram_).record(
        static_cast<std::uint64_t>(dur < 0 ? 0 : dur));
    common::telemetry::record_span(span_, t0_, dur);
  }
  IoTimer(const IoTimer&) = delete;
  IoTimer& operator=(const IoTimer&) = delete;

 private:
  const char* span_;
  const char* histogram_;
  std::int64_t t0_;
};

/// Storage tag written into CheckpointHeader::storage_bytes.  The low byte
/// is always the element size (so size math on old readers keeps working);
/// the high byte disambiguates 2-byte encodings — binary16 and bfloat16
/// files must never cross-load, their bit patterns mean different values.
template <class T>
constexpr std::uint32_t storage_code() {
  if constexpr (std::is_same_v<T, common::bfloat16>) return 0x0102u;
  return sizeof(T);
}

const char* precision_of(std::uint32_t tag) {
  switch (tag) {
    case 2: return "fp16";
    case 4: return "fp32";
    case 8: return "fp64";
    case 0x0102: return "bf16";
  }
  return "unknown";
}

/// Component count above which a header is treated as corrupt rather than a
/// format we merely don't know (kNumVars is 5; scalar fields use 1).
constexpr std::int32_t kMaxComponents = 16;

WriteFaultHook g_write_fault;

std::atomic<long> g_dir_fsyncs{0};

/// Persist the *rename* itself: fsync the directory holding `path`.  The
/// file's own fsync (before the rename) makes the bytes durable, but the
/// directory entry lives in the directory's data — without this a power cut
/// after commit() can resurface the old file, or none at all.
void fsync_parent_dir(const std::string& path) {
#ifdef IGR_HAVE_FSYNC
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  check(fd >= 0, "cannot open directory " + dir + " to fsync it: " +
                     std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  check(rc == 0, "fsync of directory " + dir + " failed: " +
                     std::strerror(errno));
  g_dir_fsyncs.fetch_add(1, std::memory_order_relaxed);
#else
  (void)path;
#endif
}

/// Write-to-temp + fsync + atomic-rename.  A destructor without commit()
/// (error unwind / injected crash) closes the temp handle but deliberately
/// leaves the torn temp file on disk — exactly the debris a real mid-write
/// crash leaves — and never touches the final path.
class AtomicWriter {
 public:
  explicit AtomicWriter(std::string final_path)
      : final_(std::move(final_path)), tmp_(final_ + ".tmp") {
    f_ = std::fopen(tmp_.c_str(), "wb");
    check(f_ != nullptr, "cannot open " + tmp_ + " for writing");
  }

  AtomicWriter(const AtomicWriter&) = delete;
  AtomicWriter& operator=(const AtomicWriter&) = delete;

  ~AtomicWriter() {
    if (f_) std::fclose(f_);
  }

  void write(const void* p, std::size_t n) {
    check(std::fwrite(p, 1, n, f_) == n, "write failed for " + tmp_);
  }

  void seek(long offset) {
    check(std::fseek(f_, offset, SEEK_SET) == 0, "seek failed for " + tmp_);
  }

  /// Flush userspace and kernel buffers, close, then rename over the final
  /// path.  Only after this returns is the new checkpoint visible; any
  /// failure before the rename leaves the previous checkpoint intact.
  void commit() {
    check(std::fflush(f_) == 0, "flush failed for " + tmp_);
#ifdef IGR_HAVE_FSYNC
    check(::fsync(fileno(f_)) == 0, "fsync failed for " + tmp_);
#endif
    const int rc = std::fclose(f_);
    f_ = nullptr;
    check(rc == 0, "close failed for " + tmp_);
    check(std::rename(tmp_.c_str(), final_.c_str()) == 0,
          "atomic rename " + tmp_ + " -> " + final_ + " failed: " +
              std::strerror(errno));
    fsync_parent_dir(final_);
  }

 private:
  std::string final_;
  std::string tmp_;
  std::FILE* f_ = nullptr;
};

/// Header + per-component CRC table of a v2 file (v1: empty table).
struct HeaderInfo {
  CheckpointHeader h{};
  std::vector<std::uint32_t> crc;
  long payload_offset = 0;
};

std::uint32_t table_crc(const CheckpointHeader& h,
                        const std::uint32_t* crc, std::size_t n) {
  common::Crc32 c;
  c.update(&h, sizeof(h));
  c.update(crc, n * sizeof(std::uint32_t));
  return c.value();
}

HeaderInfo read_header_info(std::ifstream& in, const std::string& path) {
  HeaderInfo info;
  in.read(reinterpret_cast<char*>(&info.h), sizeof(info.h));
  check(static_cast<bool>(in), "truncated header in " + path);
  check(info.h.magic == CheckpointHeader{}.magic, "bad magic in " + path +
        " (not an IGR checkpoint)");
  check(info.h.version == 1 || info.h.version == 2,
        "unsupported version " + std::to_string(info.h.version) + " in " +
            path + " (this build reads v1 and v2)");
  check(info.h.num_vars >= 1 && info.h.num_vars <= kMaxComponents,
        "implausible component count " + std::to_string(info.h.num_vars) +
            " in " + path + " (corrupt header?)");
  check(info.h.nx > 0 && info.h.ny > 0 && info.h.nz > 0,
        "non-positive dims in " + path + " (corrupt header?)");
  info.payload_offset = static_cast<long>(sizeof(CheckpointHeader));
  if (info.h.version == 2) {
    info.crc.resize(static_cast<std::size_t>(info.h.num_vars));
    in.read(reinterpret_cast<char*>(info.crc.data()),
            static_cast<std::streamsize>(info.crc.size() *
                                         sizeof(std::uint32_t)));
    std::uint32_t stored_meta = 0;
    in.read(reinterpret_cast<char*>(&stored_meta), sizeof(stored_meta));
    check(static_cast<bool>(in), "truncated CRC table in " + path);
    const std::uint32_t meta =
        table_crc(info.h, info.crc.data(), info.crc.size());
    if (stored_meta != meta) {
      std::ostringstream os;
      os << "header CRC mismatch in " << path << ": stored " << std::hex
         << stored_meta << ", computed " << meta
         << " (torn or corrupt header)";
      throw std::runtime_error("checkpoint: " + os.str());
    }
    info.payload_offset +=
        static_cast<long>((info.crc.size() + 1) * sizeof(std::uint32_t));
  }
  return info;
}

/// Generic v2 writer: `fill_row(c, k, j, row)` supplies one interior x-row of
/// component `c`.  Single pass over the data; the CRC table slots are
/// back-patched before commit.
template <class T, class FillRow>
void write_impl(const std::string& path, int nx, int ny, int nz, int ng,
                int num_vars, double time, FillRow&& fill_row) {
  IoTimer timer("checkpoint_write", "io.checkpoint_write_ns");
  AtomicWriter out(path);

  CheckpointHeader h;
  h.storage_bytes = storage_code<T>();
  h.nx = nx;
  h.ny = ny;
  h.nz = nz;
  h.ng = ng;
  h.num_vars = num_vars;
  h.time = time;
  out.write(&h, sizeof(h));

  std::vector<std::uint32_t> crcs(static_cast<std::size_t>(num_vars), 0);
  std::uint32_t meta = 0;
  out.write(crcs.data(), crcs.size() * sizeof(std::uint32_t));  // placeholder
  out.write(&meta, sizeof(meta));                               // placeholder

  std::vector<T> row(static_cast<std::size_t>(nx));
  const std::size_t row_bytes = row.size() * sizeof(T);
  std::size_t payload = 0;
  for (int c = 0; c < num_vars; ++c) {
    common::Crc32 crc;
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        fill_row(c, k, j, row.data());
        crc.update(row.data(), row_bytes);
        out.write(row.data(), row_bytes);
        payload += row_bytes;
        if (g_write_fault) g_write_fault(path, payload);
      }
    }
    crcs[static_cast<std::size_t>(c)] = crc.value();
  }

  out.seek(static_cast<long>(sizeof(CheckpointHeader)));
  meta = table_crc(h, crcs.data(), crcs.size());
  out.write(crcs.data(), crcs.size() * sizeof(std::uint32_t));
  out.write(&meta, sizeof(meta));
  out.commit();
}

/// Generic reader: structural checks with expected-vs-found errors, then the
/// payload streamed through `take_row(c, k, j, row)` with per-component CRC
/// verification on v2 files.
template <class T, class TakeRow>
double read_impl(const std::string& path, int nx, int ny, int nz,
                 int num_vars, TakeRow&& take_row) {
  IoTimer timer("checkpoint_read", "io.checkpoint_read_ns");
  std::ifstream in(path, std::ios::binary);
  check(static_cast<bool>(in), "cannot open " + path);
  const HeaderInfo info = read_header_info(in, path);
  const CheckpointHeader& h = info.h;

  if (h.storage_bytes != storage_code<T>()) {
    std::ostringstream os;
    os << "storage precision mismatch in " << path << ": file stores "
       << (h.storage_bytes & 0xffu) << "-byte values ("
       << precision_of(h.storage_bytes) << "), target expects " << sizeof(T)
       << "-byte (" << precision_of(storage_code<T>()) << ")";
    throw std::runtime_error("checkpoint: " + os.str());
  }
  if (h.nx != nx || h.ny != ny || h.nz != nz) {
    std::ostringstream os;
    os << "grid shape mismatch in " << path << ": file interior is " << h.nx
       << "x" << h.ny << "x" << h.nz << " (ghost depth " << h.ng
       << "), target expects " << nx << "x" << ny << "x" << nz;
    throw std::runtime_error("checkpoint: " + os.str());
  }
  if (h.num_vars != num_vars) {
    std::ostringstream os;
    os << "component count mismatch in " << path << ": file has "
       << h.num_vars << " component(s), target expects " << num_vars;
    throw std::runtime_error("checkpoint: " + os.str());
  }

  std::vector<T> row(static_cast<std::size_t>(nx));
  const std::size_t row_bytes = row.size() * sizeof(T);
  for (int c = 0; c < num_vars; ++c) {
    common::Crc32 crc;
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        in.read(reinterpret_cast<char*>(row.data()),
                static_cast<std::streamsize>(row_bytes));
        check(static_cast<bool>(in), "truncated data in " + path +
              " (component " + std::to_string(c) + ", plane " +
              std::to_string(k) + ")");
        crc.update(row.data(), row_bytes);
        take_row(c, k, j, row.data());
      }
    }
    if (h.version == 2 &&
        crc.value() != info.crc[static_cast<std::size_t>(c)]) {
      std::ostringstream os;
      os << "CRC mismatch in " << path << " component " << c << ": stored "
         << std::hex << info.crc[static_cast<std::size_t>(c)] << ", computed "
         << crc.value() << " — data is corrupt";
      throw std::runtime_error("checkpoint: " + os.str());
    }
  }
  return h.time;
}

}  // namespace

void set_checkpoint_write_fault(WriteFaultHook hook) {
  g_write_fault = std::move(hook);
}

long dir_fsyncs() { return g_dir_fsyncs.load(std::memory_order_relaxed); }

template <class T>
void write_checkpoint(const std::string& path,
                      const common::StateField3<T>& q, double time) {
  write_impl<T>(path, q.nx(), q.ny(), q.nz(), q.ng(), common::kNumVars, time,
                [&q](int c, int k, int j, T* row) {
                  for (int i = 0; i < q.nx(); ++i)
                    row[static_cast<std::size_t>(i)] = q[c](i, j, k);
                });
}

template <class T>
double read_checkpoint(const std::string& path, common::StateField3<T>& q) {
  return read_impl<T>(path, q.nx(), q.ny(), q.nz(), common::kNumVars,
                      [&q](int c, int k, int j, const T* row) {
                        for (int i = 0; i < q.nx(); ++i)
                          q[c](i, j, k) = row[static_cast<std::size_t>(i)];
                      });
}

template <class T>
void write_checkpoint_field(const std::string& path,
                            const common::Field3<T>& f, double time) {
  write_impl<T>(path, f.nx(), f.ny(), f.nz(), f.ng(), 1, time,
                [&f](int, int k, int j, T* row) {
                  for (int i = 0; i < f.nx(); ++i)
                    row[static_cast<std::size_t>(i)] = f(i, j, k);
                });
}

template <class T>
double read_checkpoint_field(const std::string& path, common::Field3<T>& f) {
  return read_impl<T>(path, f.nx(), f.ny(), f.nz(), 1,
                      [&f](int, int k, int j, const T* row) {
                        for (int i = 0; i < f.nx(); ++i)
                          f(i, j, k) = row[static_cast<std::size_t>(i)];
                      });
}

CheckpointHeader read_checkpoint_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(static_cast<bool>(in), "cannot open " + path);
  return read_header_info(in, path).h;
}

CheckpointValidation validate_checkpoint(const std::string& path) {
  CheckpointValidation v;
  try {
    std::ifstream in(path, std::ios::binary);
    check(static_cast<bool>(in), "cannot open " + path);
    const HeaderInfo info = read_header_info(in, path);
    v.header = info.h;

    // Low byte of the storage tag is the element size (high byte only
    // disambiguates same-size encodings, e.g. bf16 vs fp16).
    const std::size_t row_bytes =
        static_cast<std::size_t>(info.h.nx) * (info.h.storage_bytes & 0xffu);
    const std::size_t rows_per_comp =
        static_cast<std::size_t>(info.h.ny) *
        static_cast<std::size_t>(info.h.nz);
    std::vector<char> row(row_bytes);
    for (std::int32_t c = 0; c < info.h.num_vars; ++c) {
      common::Crc32 crc;
      for (std::size_t r = 0; r < rows_per_comp; ++r) {
        in.read(row.data(), static_cast<std::streamsize>(row_bytes));
        check(static_cast<bool>(in),
              "truncated payload in " + path + " (component " +
                  std::to_string(c) + ")");
        crc.update(row.data(), row_bytes);
      }
      if (info.h.version == 2 &&
          crc.value() != info.crc[static_cast<std::size_t>(c)]) {
        std::ostringstream os;
        os << "CRC mismatch in " << path << " component " << c << ": stored "
           << std::hex << info.crc[static_cast<std::size_t>(c)]
           << ", computed " << crc.value();
        throw std::runtime_error("checkpoint: " + os.str());
      }
    }
    // Exactly at EOF?  Trailing bytes mean the file is not what the header
    // claims (e.g. two checkpoints concatenated by a broken copy).
    in.peek();
    check(in.eof(), "trailing bytes after payload in " + path);
    v.ok = true;
  } catch (const std::exception& e) {
    v.ok = false;
    v.error = e.what();
  }
  return v;
}

void write_manifest(const std::string& path,
                    const std::vector<ManifestEntry>& entries) {
  std::ostringstream os;
  os << "igr-checkpoint-manifest v1\n";
  for (const auto& e : entries) {
    char tbuf[64];
    std::snprintf(tbuf, sizeof(tbuf), "%.17g", e.time);
    os << e.step << ' ' << tbuf << ' ' << e.path << '\n';
  }
  const std::string body = os.str();
  AtomicWriter out(path);
  out.write(body.data(), body.size());
  out.commit();
}

std::vector<ManifestEntry> read_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};  // nothing recorded yet: nothing to resume from
  std::string line;
  check(static_cast<bool>(std::getline(in, line)) &&
            line == "igr-checkpoint-manifest v1",
        "bad manifest header in " + path);
  std::vector<ManifestEntry> entries;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    ManifestEntry e;
    check(static_cast<bool>(ls >> e.step >> e.time >> e.path),
          "malformed manifest line in " + path + ": '" + line + "'");
    entries.push_back(std::move(e));
  }
  return entries;
}

#define IGR_INSTANTIATE_CHECKPOINT(T)                                         \
  template void write_checkpoint<T>(const std::string&,                       \
                                    const common::StateField3<T>&, double);   \
  template double read_checkpoint<T>(const std::string&,                      \
                                     common::StateField3<T>&);                \
  template void write_checkpoint_field<T>(const std::string&,                 \
                                          const common::Field3<T>&, double);  \
  template double read_checkpoint_field<T>(const std::string&,               \
                                           common::Field3<T>&);

IGR_INSTANTIATE_CHECKPOINT(double)
IGR_INSTANTIATE_CHECKPOINT(float)
IGR_INSTANTIATE_CHECKPOINT(common::half)
IGR_INSTANTIATE_CHECKPOINT(common::bfloat16)
#undef IGR_INSTANTIATE_CHECKPOINT

}  // namespace igr::io
