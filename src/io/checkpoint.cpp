#include "io/checkpoint.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

namespace igr::io {

namespace {

void check(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error("checkpoint: " + what);
}

}  // namespace

template <class T>
void write_checkpoint(const std::string& path,
                      const common::StateField3<T>& q, double time) {
  std::ofstream out(path, std::ios::binary);
  check(static_cast<bool>(out), "cannot open " + path + " for writing");

  CheckpointHeader h;
  h.storage_bytes = sizeof(T);
  h.nx = q.nx();
  h.ny = q.ny();
  h.nz = q.nz();
  h.ng = q.ng();
  h.num_vars = common::kNumVars;
  h.time = time;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));

  std::vector<T> row(static_cast<std::size_t>(q.nx()));
  for (int c = 0; c < common::kNumVars; ++c) {
    for (int k = 0; k < q.nz(); ++k) {
      for (int j = 0; j < q.ny(); ++j) {
        for (int i = 0; i < q.nx(); ++i)
          row[static_cast<std::size_t>(i)] = q[c](i, j, k);
        out.write(reinterpret_cast<const char*>(row.data()),
                  static_cast<std::streamsize>(row.size() * sizeof(T)));
      }
    }
  }
  check(static_cast<bool>(out), "write failed for " + path);
}

CheckpointHeader read_checkpoint_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(static_cast<bool>(in), "cannot open " + path);
  CheckpointHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  check(static_cast<bool>(in), "truncated header in " + path);
  check(h.magic == CheckpointHeader{}.magic, "bad magic in " + path);
  check(h.version == 1, "unsupported version in " + path);
  return h;
}

template <class T>
double read_checkpoint(const std::string& path, common::StateField3<T>& q) {
  const auto h = read_checkpoint_header(path);
  check(h.storage_bytes == sizeof(T), "storage width mismatch in " + path);
  check(h.nx == q.nx() && h.ny == q.ny() && h.nz == q.nz(),
        "grid shape mismatch in " + path);
  check(h.num_vars == common::kNumVars, "variable count mismatch in " + path);

  std::ifstream in(path, std::ios::binary);
  check(static_cast<bool>(in), "cannot open " + path);
  in.seekg(sizeof(CheckpointHeader));

  std::vector<T> row(static_cast<std::size_t>(q.nx()));
  for (int c = 0; c < common::kNumVars; ++c) {
    for (int k = 0; k < q.nz(); ++k) {
      for (int j = 0; j < q.ny(); ++j) {
        in.read(reinterpret_cast<char*>(row.data()),
                static_cast<std::streamsize>(row.size() * sizeof(T)));
        check(static_cast<bool>(in), "truncated data in " + path);
        for (int i = 0; i < q.nx(); ++i)
          q[c](i, j, k) = row[static_cast<std::size_t>(i)];
      }
    }
  }
  return h.time;
}

template <class T>
void write_checkpoint_field(const std::string& path,
                            const common::Field3<T>& f, double time) {
  std::ofstream out(path, std::ios::binary);
  check(static_cast<bool>(out), "cannot open " + path + " for writing");

  CheckpointHeader h;
  h.storage_bytes = sizeof(T);
  h.nx = f.nx();
  h.ny = f.ny();
  h.nz = f.nz();
  h.ng = f.ng();
  h.num_vars = 1;
  h.time = time;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));

  std::vector<T> row(static_cast<std::size_t>(f.nx()));
  for (int k = 0; k < f.nz(); ++k) {
    for (int j = 0; j < f.ny(); ++j) {
      for (int i = 0; i < f.nx(); ++i)
        row[static_cast<std::size_t>(i)] = f(i, j, k);
      out.write(reinterpret_cast<const char*>(row.data()),
                static_cast<std::streamsize>(row.size() * sizeof(T)));
    }
  }
  check(static_cast<bool>(out), "write failed for " + path);
}

template <class T>
double read_checkpoint_field(const std::string& path, common::Field3<T>& f) {
  const auto h = read_checkpoint_header(path);
  check(h.storage_bytes == sizeof(T), "storage width mismatch in " + path);
  check(h.nx == f.nx() && h.ny == f.ny() && h.nz == f.nz(),
        "grid shape mismatch in " + path);
  check(h.num_vars == 1, "not a scalar-field checkpoint: " + path);

  std::ifstream in(path, std::ios::binary);
  check(static_cast<bool>(in), "cannot open " + path);
  in.seekg(sizeof(CheckpointHeader));

  std::vector<T> row(static_cast<std::size_t>(f.nx()));
  for (int k = 0; k < f.nz(); ++k) {
    for (int j = 0; j < f.ny(); ++j) {
      in.read(reinterpret_cast<char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(T)));
      check(static_cast<bool>(in), "truncated data in " + path);
      for (int i = 0; i < f.nx(); ++i)
        f(i, j, k) = row[static_cast<std::size_t>(i)];
    }
  }
  return h.time;
}

#define IGR_INSTANTIATE_CHECKPOINT(T)                                         \
  template void write_checkpoint<T>(const std::string&,                       \
                                    const common::StateField3<T>&, double);   \
  template double read_checkpoint<T>(const std::string&,                      \
                                     common::StateField3<T>&);                \
  template void write_checkpoint_field<T>(const std::string&,                 \
                                          const common::Field3<T>&, double);  \
  template double read_checkpoint_field<T>(const std::string&,                \
                                           common::Field3<T>&);

IGR_INSTANTIATE_CHECKPOINT(double)
IGR_INSTANTIATE_CHECKPOINT(float)
IGR_INSTANTIATE_CHECKPOINT(common::half)
#undef IGR_INSTANTIATE_CHECKPOINT

}  // namespace igr::io
