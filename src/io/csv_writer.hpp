#pragma once
/// \file csv_writer.hpp
/// Minimal column-oriented CSV writer for benchmark series and profiles.

#include <fstream>
#include <string>
#include <vector>

namespace igr::io {

class CsvWriter {
 public:
  /// Opens `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Write one data row; must match the header width.
  void row(const std::vector<double>& values);
  /// Mixed string/number row.
  void row_strings(const std::vector<std::string>& values);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace igr::io
