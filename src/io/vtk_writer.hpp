#pragma once
/// \file vtk_writer.hpp
/// Legacy-VTK (structured points) output for visualization of 3-D fields —
/// the paper reports whole-application timings "including I/O" (Table 1).

#include <string>
#include <vector>

#include "common/field3.hpp"
#include "eos/ideal_gas.hpp"
#include "mesh/grid.hpp"

namespace igr::io {

/// Writes cell-centered scalar fields to an ASCII legacy VTK file.
class VtkWriter {
 public:
  explicit VtkWriter(const mesh::Grid& grid) : grid_(&grid) {}

  /// Begin a dataset; subsequent add_* calls append fields.
  void open(const std::string& path);

  /// Append a scalar field (interior only) under `name`.
  template <class T>
  void add_scalar(const std::string& name, const common::Field3<T>& f);

  /// Append derived fields from a conservative state: density, pressure,
  /// and velocity magnitude.
  template <class T>
  void add_state(const common::StateField3<T>& q, const eos::IdealGas& eos);

  void close();

  [[nodiscard]] bool is_open() const { return !path_.empty(); }

 private:
  void write_header();

  const mesh::Grid* grid_;
  std::string path_;
  std::string body_;
  int n_fields_ = 0;
};

}  // namespace igr::io
