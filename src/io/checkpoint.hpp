#pragma once
/// \file checkpoint.hpp
/// Binary checkpoint/restart for conservative states.  The paper's timings
/// cover "the whole application including I/O" (Table 1); production runs
/// of 16 hours (Fig. 1) are only feasible with restart capability.
///
/// Format: a fixed header (magic, version, dims, ghost depth, storage width,
/// simulated time) followed by the interior of each component in native
/// byte order.  Storage-precision-faithful: an FP16 state checkpoints at
/// 2 bytes per value.

#include <cstdint>
#include <string>

#include "common/field3.hpp"
#include "common/half.hpp"

namespace igr::io {

struct CheckpointHeader {
  std::uint64_t magic = 0x49475246'4C4F5731ull;  // "IGRF" "LOW1"
  std::uint32_t version = 1;
  std::uint32_t storage_bytes = 0;  ///< 2, 4, or 8.
  std::int32_t nx = 0, ny = 0, nz = 0, ng = 0;
  std::int32_t num_vars = 0;
  double time = 0.0;
};

/// Write the interior of `q` (plus simulated time) to `path`.
/// Throws std::runtime_error on I/O failure.
template <class T>
void write_checkpoint(const std::string& path,
                      const common::StateField3<T>& q, double time);

/// Read a checkpoint into `q` (shape must match) and return the stored
/// simulated time.  Throws std::runtime_error on mismatch or corruption.
template <class T>
double read_checkpoint(const std::string& path, common::StateField3<T>& q);

/// Peek at a checkpoint's header without loading the data.
CheckpointHeader read_checkpoint_header(const std::string& path);

/// Scalar-field flavor (num_vars = 1 in the header): the IGR solvers
/// checkpoint the entropic pressure Sigma alongside the state so a restart
/// resumes with the same warm start (and hence continues bitwise).
template <class T>
void write_checkpoint_field(const std::string& path,
                            const common::Field3<T>& f, double time);

/// Read a scalar-field checkpoint into `f` (shape must match); returns the
/// stored simulated time.
template <class T>
double read_checkpoint_field(const std::string& path, common::Field3<T>& f);

}  // namespace igr::io
