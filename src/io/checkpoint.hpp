#pragma once
/// \file checkpoint.hpp
/// Crash-safe binary checkpoint/restart for conservative states.  The paper's
/// timings cover "the whole application including I/O" (Table 1); production
/// runs of 16 hours (Fig. 1) are only feasible with restart capability — and
/// at that scale a checkpoint layer must also survive the writer dying
/// mid-write and detect on-disk corruption before a restart consumes it.
///
/// Format v2 (current writes):
///   fixed header (magic, version, dims, ghost depth, storage width,
///   simulated time — byte-identical layout to v1's header)
///   + per-component CRC32 table (num_vars entries)
///   + a CRC32 over header+table (torn/corrupt headers are rejected)
///   + the interior of each component, row-major, native byte order.
/// v1 files (no CRC section) remain readable; writes always produce v2.
///
/// Crash safety: every write goes to `path + ".tmp"`, is flushed and fsynced,
/// and only then atomically renamed over `path` — a crash mid-write leaves
/// the previous checkpoint intact, never a torn current one.  Corruption that
/// bypasses the rename (bit rot, partial copies) is caught by the CRCs at
/// read/validate time with a precise error.
///
/// Storage-precision-faithful: an FP16 state checkpoints at 2 bytes/value.
///
/// The manifest helpers give long runs a latest-valid restart point: the
/// runner appends an entry per checkpoint and a resume scans entries
/// newest-first, validating CRCs, so a corrupt newest checkpoint falls back
/// to the previous valid one (see cases::run_case_guarded).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/field3.hpp"
#include "common/half.hpp"

namespace igr::io {

struct CheckpointHeader {
  std::uint64_t magic = 0x49475246'4C4F5731ull;  // "IGRF" "LOW1"
  std::uint32_t version = 2;
  /// Storage tag: low byte is the element size (2, 4, or 8); high byte
  /// disambiguates same-size encodings (0x0102 = bfloat16, plain 2 =
  /// binary16).  Old files carry the bare size and read unchanged.
  std::uint32_t storage_bytes = 0;
  std::int32_t nx = 0, ny = 0, nz = 0, ng = 0;
  std::int32_t num_vars = 0;
  double time = 0.0;
};

/// Write the interior of `q` (plus simulated time) to `path` via the
/// write-to-temp + fsync + atomic-rename protocol.
/// Throws std::runtime_error on I/O failure (the previous `path` contents,
/// if any, are left untouched on failure).
template <class T>
void write_checkpoint(const std::string& path,
                      const common::StateField3<T>& q, double time);

/// Read a checkpoint into `q` (shape must match) and return the stored
/// simulated time.  Throws std::runtime_error on mismatch or corruption;
/// mismatch errors report expected-vs-found dims/precision/component count,
/// and v2 corruption is pinned to the failing component's CRC.
template <class T>
double read_checkpoint(const std::string& path, common::StateField3<T>& q);

/// Peek at a checkpoint's header without loading the data (v2 headers are
/// CRC-verified; a torn header throws).
CheckpointHeader read_checkpoint_header(const std::string& path);

/// Scalar-field flavor (num_vars = 1 in the header): the IGR solvers
/// checkpoint the entropic pressure Sigma alongside the state so a restart
/// resumes with the same warm start (and hence continues bitwise).
template <class T>
void write_checkpoint_field(const std::string& path,
                            const common::Field3<T>& f, double time);

/// Read a scalar-field checkpoint into `f` (shape must match); returns the
/// stored simulated time.
template <class T>
double read_checkpoint_field(const std::string& path, common::Field3<T>& f);

// --- Validation (no target field required) -------------------------------

/// Outcome of a full structural + checksum scan of a checkpoint file.
struct CheckpointValidation {
  bool ok = false;
  std::string error;  ///< Empty when ok.
  CheckpointHeader header{};
};

/// Stream `path` end to end: header (and its CRC for v2), exact payload
/// size, and every component CRC (v2).  Never throws — a missing or corrupt
/// file reports `ok = false` with the reason.  v1 files validate structure
/// and size only (they carry no checksums).
CheckpointValidation validate_checkpoint(const std::string& path);

// --- Checkpoint manifest -------------------------------------------------

/// One restart point recorded by a checkpointing run.  `path` names the
/// state checkpoint; IGR runs have a `path + ".sigma"` sibling.
struct ManifestEntry {
  long step = 0;    ///< Steps completed at the save.
  double time = 0;  ///< Simulated time at the save.
  std::string path;
};

/// Atomically (re)write a manifest listing `entries` oldest-first.
void write_manifest(const std::string& path,
                    const std::vector<ManifestEntry>& entries);

/// Read a manifest; a missing file yields an empty list (nothing to resume
/// from), a malformed one throws.
std::vector<ManifestEntry> read_manifest(const std::string& path);

// --- Fault injection -----------------------------------------------------

/// Test hook for torn-write injection: invoked after every payload chunk a
/// checkpoint write emits, with the destination path and cumulative payload
/// bytes written so far.  Throwing from the hook simulates the writer dying
/// mid-checkpoint: the temp file is left torn and `path` keeps its previous
/// contents (that is the crash-safety property under test).  Empty function
/// disables (the default).  Not thread-safe against concurrent writers —
/// install only around single-threaded checkpoint activity.
using WriteFaultHook =
    std::function<void(const std::string& path, std::size_t bytes_written)>;
void set_checkpoint_write_fault(WriteFaultHook hook);

// --- Durability diagnostics ----------------------------------------------

/// Process-wide count of parent-directory fsyncs performed by committed
/// atomic writes (checkpoints, field files, manifests).  fsync of the file
/// alone does not persist the *rename* — after a power cut the directory
/// entry may still point at the old file or at nothing — so every commit
/// also fsyncs the parent directory, and tests assert this counter moved.
[[nodiscard]] long dir_fsyncs();

}  // namespace igr::io
