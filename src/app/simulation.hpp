#pragma once
/// \file simulation.hpp
/// High-level driver tying grid + boundary conditions + scheme choice +
/// diagnostics + output together — the entry point example applications use.

#include <memory>
#include <stdexcept>
#include <string>

#include "app/health.hpp"
#include "baseline/weno_hllc_solver3d.hpp"
#include "core/igr_solver3d.hpp"
#include "io/vtk_writer.hpp"
#include "sim/distributed_igr.hpp"

namespace igr::app {

enum class SchemeKind { kIgr, kBaselineWeno };

/// Point diagnostics over the flow field.
struct FlowDiagnostics {
  double max_mach = 0.0;  ///< Over cells with positive pressure.
  double min_density = 0.0;
  double max_density = 0.0;
  double min_pressure = 0.0;
  double kinetic_energy = 0.0;  ///< Integrated 1/2 rho |u|^2.
  double total_mass = 0.0;      ///< Integrated rho (conserved on closed domains).
  double total_energy = 0.0;    ///< Integrated E (conserved on closed domains).
  /// Integrated |curl u|^2 — the vortical-decay metric of the Taylor–Green
  /// and Kelvin–Helmholtz cases.  Central differences on interior cells,
  /// one-sided at the domain faces.
  double enstrophy = 0.0;
  /// Cells whose pressure is non-positive (start-up transients at an
  /// impulsively started high-Mach inflow); excluded from max_mach.
  std::size_t nonpositive_pressure_cells = 0;
};

template <class Policy>
class Simulation {
 public:
  using S = typename Policy::storage_t;

  struct Params {
    mesh::Grid grid = mesh::Grid::cube(32);
    common::SolverConfig cfg{};
    fv::BcSpec bc{};
    SchemeKind scheme = SchemeKind::kIgr;
    fv::ReconScheme recon = fv::ReconScheme::kFifth;
    /// Rank layout of the decomposed run ({1,1,1} = single-domain).  More
    /// than one rank steps the domain through the rank-parallel
    /// sim::DistributedIgr driver (IGR scheme only); `dist` tunes its
    /// execution.
    std::array<int, 3> ranks{1, 1, 1};
    sim::DistOptions dist{};
  };

  explicit Simulation(Params params);

  void init(const core::PrimFn& prim);

  /// One CFL step; returns dt.
  double step();
  /// Run `n` steps; returns simulated time advanced.
  double run_steps(int n);
  /// Run until simulated time `t_end`.
  void run_until(double t_end);

  [[nodiscard]] double time() const;
  [[nodiscard]] double grind_ns() const;
  /// Per-phase wall-time breakdown of the single-domain IGR solver, or null
  /// for the baseline scheme and decomposed runs.  Populated only when
  /// cfg.phase_timing is on (the bench harness enables it).
  [[nodiscard]] common::PhaseProfile* phase_profile();
  /// Phase profile of a solver this process steps: the single-domain
  /// solver, or the first local rank's solver of a decomposed run (one rank
  /// per process under tcp, so there it is *the* local solver).  Null for
  /// the baseline scheme; populated only when cfg.phase_timing is on.
  [[nodiscard]] const common::PhaseProfile* local_phase_profile() const;
  /// Interior cells of the solver local_phase_profile() describes (the
  /// normalizer for its ns-per-cell-per-step breakdown).
  [[nodiscard]] std::size_t local_phase_cells() const;
  /// Total Sigma relaxation sweeps executed by this process's solvers
  /// (always maintained; see core::IgrSolver3D::sigma_sweeps_done).
  [[nodiscard]] std::uint64_t sigma_sweeps_done() const;
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] FlowDiagnostics diagnostics() const;
  /// Cheap NaN/Inf/negative-density/pressure scan of the (gathered) state —
  /// the guard signal for rollback/retry (see app/health.hpp for the
  /// health policy).
  [[nodiscard]] SolverHealth health() const;
  /// Global conservative state.  For a decomposed run this gathers the rank
  /// blocks into a cached global field (refreshed after a step).
  [[nodiscard]] const common::StateField3<S>& state() const;
  [[nodiscard]] const mesh::Grid& grid() const { return params_.grid; }
  [[nodiscard]] SchemeKind scheme() const { return params_.scheme; }
  [[nodiscard]] bool distributed() const { return dist_ != nullptr; }
  /// True when the decomposed driver runs one rank per OS process (tcp
  /// transport).  Global reads (state/diagnostics/vtk) are then root-only;
  /// health/save/load become collectives every process must call in the
  /// same schedule.
  [[nodiscard]] bool multi_process() const;
  /// The process that owns global output.  Always true in-process; rank 0
  /// under a multi-process transport.
  [[nodiscard]] bool is_io_root() const;
  /// This process's global rank under a multi-process transport, -1 otherwise.
  [[nodiscard]] int local_rank() const;
  /// The decomposed driver (throws unless distributed()).
  [[nodiscard]] sim::DistributedIgr<Policy>& dist();

  /// Write density/pressure/velocity-magnitude to a legacy VTK file.
  void write_vtk(const std::string& path) const;

  /// Checkpoint the run to `path`.  For the IGR scheme the entropic
  /// pressure Sigma is written alongside the state (`path` + ".sigma") so a
  /// restarted run resumes with the same warm start — and therefore
  /// continues *bitwise* identical to the uninterrupted run (test-enforced
  /// through the case runner).  Decomposed runs gather to the global
  /// interior first, so the file is *layout-agnostic*: save on 2x2x2,
  /// restart on 1x2x1 or serial, and (under Jacobi sweeps) the continuation
  /// is still bitwise including dt.
  void save_checkpoint(const std::string& path) const;
  /// Restore a checkpoint written by save_checkpoint (global shape and
  /// precision must match this simulation's parameters; the rank layout
  /// need not — the state is scattered over whatever layout this run uses).
  void load_checkpoint(const std::string& path);

 private:
  Params params_;
  eos::IdealGas eos_;
  std::unique_ptr<core::IgrSolver3D<Policy>> igr_;
  std::unique_ptr<baseline::WenoHllcSolver3D<Policy>> weno_;
  std::unique_ptr<sim::DistributedIgr<Policy>> dist_;
  mutable common::StateField3<S> gathered_;
  mutable bool gathered_dirty_ = true;
};

/// 16-bit storage (FP16/32, BF16/32) is only supported by the IGR scheme
/// (the baseline is numerically unstable below FP64, §4.3); requesting it
/// throws.
extern template class Simulation<common::Fp64>;
extern template class Simulation<common::Fp32>;
extern template class Simulation<common::Fp16x32>;
extern template class Simulation<common::Bf16x32>;

}  // namespace igr::app
