#include "app/jet_config.hpp"

#include <cmath>

namespace igr::app {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

common::Prim<double> JetConfig::jet_state() const {
  common::Prim<double> w;
  w.rho = jet_rho;
  w.p = jet_p;
  w.u = 0.0;
  w.v = 0.0;
  w.w = mach * std::sqrt(gamma * jet_p / jet_rho);  // along +z
  return w;
}

common::Prim<double> JetConfig::ambient_state() const {
  common::Prim<double> w;
  w.rho = ambient_rho;
  w.p = ambient_p;
  return w;
}

fv::BcSpec JetConfig::make_bc() const {
  fv::BcSpec bc;
  bc.kind = {fv::BcKind::kOutflow, fv::BcKind::kOutflow,
             fv::BcKind::kOutflow, fv::BcKind::kOutflow,
             fv::BcKind::kInflowPatches, fv::BcKind::kOutflow};
  auto& patches =
      bc.patches[static_cast<std::size_t>(mesh::Face::kZLo)];
  for (const auto& c : centers) {
    fv::InflowPatch p;
    p.cx = c[0];
    p.cy = c[1];
    p.radius = nozzle_radius;
    p.state = jet_state();
    patches.push_back(p);
  }
  return bc;
}

core::PrimFn JetConfig::initial_condition(double noise) const {
  const auto amb = ambient_state();
  const double cs = std::sqrt(gamma * ambient_p / ambient_rho);
  return [amb, noise, cs](double x, double y, double z) {
    auto w = amb;
    if (noise > 0.0) {
      // Smooth deterministic multi-mode perturbation (seeds the shear-layer
      // instabilities, standing in for the paper's random seeding).
      const double s = std::sin(7.0 * kPi * x) * std::sin(5.0 * kPi * y) *
                           std::sin(3.0 * kPi * z) +
                       0.5 * std::sin(11.0 * kPi * (x + y)) *
                           std::sin(9.0 * kPi * (y + z));
      w.rho *= 1.0 + noise * s;
      w.u += noise * cs * s;
    }
    return w;
  };
}

common::SolverConfig JetConfig::solver_config() const {
  common::SolverConfig cfg;
  cfg.gamma = gamma;
  cfg.alpha_factor = 5.0;
  cfg.sigma_sweeps = 5;
  cfg.cfl = 0.3;
  // High-Mach inflow start-up transients benefit from small floors.
  cfg.density_floor = 1e-6 * ambient_rho;
  cfg.pressure_floor = 1e-6 * ambient_p;
  return cfg;
}

JetConfig single_engine() {
  JetConfig j;
  j.centers = {{0.5, 0.5}};
  j.nozzle_radius = 0.08;
  return j;
}

JetConfig three_engine_row() {
  JetConfig j;
  j.centers = {{0.25, 0.5}, {0.5, 0.5}, {0.75, 0.5}};
  j.nozzle_radius = 0.07;
  return j;
}

JetConfig super_heavy_33() {
  JetConfig j;
  j.nozzle_radius = 0.03;
  // Inner cluster of 3 around the center.
  const double r1 = 0.07, r2 = 0.22, r3 = 0.38;
  for (int i = 0; i < 3; ++i) {
    const double a = 2.0 * kPi * i / 3.0;
    j.centers.push_back({0.5 + r1 * std::cos(a), 0.5 + r1 * std::sin(a)});
  }
  // Middle ring of 10.
  for (int i = 0; i < 10; ++i) {
    const double a = 2.0 * kPi * i / 10.0 + kPi / 10.0;
    j.centers.push_back({0.5 + r2 * std::cos(a), 0.5 + r2 * std::sin(a)});
  }
  // Outer ring of 20.
  for (int i = 0; i < 20; ++i) {
    const double a = 2.0 * kPi * i / 20.0;
    j.centers.push_back({0.5 + r3 * std::cos(a), 0.5 + r3 * std::sin(a)});
  }
  return j;
}

}  // namespace igr::app
