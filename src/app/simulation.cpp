#include "app/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <vector>

#include "common/half.hpp"
#include "io/checkpoint.hpp"

namespace igr::app {

template <class Policy>
Simulation<Policy>::Simulation(Params params)
    : params_(std::move(params)), eos_(params_.cfg.gamma) {
  const auto& rk = params_.ranks;
  if (rk[0] < 1 || rk[1] < 1 || rk[2] < 1)
    throw std::invalid_argument("Simulation: rank counts must be positive");
  if (rk[0] * rk[1] * rk[2] > 1) {
    if (params_.scheme != SchemeKind::kIgr)
      throw std::invalid_argument(
          "Simulation: decomposed runs are IGR-only (the baseline has no "
          "distributed driver)");
    dist_ = std::make_unique<sim::DistributedIgr<Policy>>(
        params_.grid, rk[0], rk[1], rk[2], params_.cfg, params_.bc,
        params_.recon, params_.dist);
  } else if (params_.scheme == SchemeKind::kIgr) {
    igr_ = std::make_unique<core::IgrSolver3D<Policy>>(
        params_.grid, params_.cfg, params_.bc, params_.recon);
  } else {
    if constexpr (std::is_same_v<Policy, common::Fp16x32> ||
                  std::is_same_v<Policy, common::Bf16x32>) {
      throw std::invalid_argument(
          "Simulation: the WENO/HLLC baseline is numerically unstable below "
          "FP64 (paper §4.3); 16-bit storage is IGR-only");
    } else {
      weno_ = std::make_unique<baseline::WenoHllcSolver3D<Policy>>(
          params_.grid, params_.cfg, params_.bc);
    }
  }
}

template <class Policy>
void Simulation<Policy>::init(const core::PrimFn& prim) {
  if (igr_) igr_->init(prim);
  if (weno_) weno_->init(prim);
  if (dist_) dist_->init(prim);
  gathered_dirty_ = true;
}

template <class Policy>
double Simulation<Policy>::step() {
  gathered_dirty_ = true;
  if (dist_) return dist_->step();
  return igr_ ? igr_->step() : weno_->step();
}

template <class Policy>
double Simulation<Policy>::run_steps(int n) {
  const double t0 = time();
  for (int i = 0; i < n; ++i) step();
  return time() - t0;
}

template <class Policy>
void Simulation<Policy>::run_until(double t_end) {
  while (time() < t_end - 1e-14) {
    step();  // CFL-limited; overshoot is acceptable for jet demos
  }
}

template <class Policy>
double Simulation<Policy>::time() const {
  if (dist_) return dist_->time();
  return igr_ ? igr_->time() : weno_->time();
}

template <class Policy>
double Simulation<Policy>::grind_ns() const {
  if (dist_) return dist_->grind_timer().grind_ns();
  return igr_ ? igr_->grind_timer().grind_ns()
              : weno_->grind_timer().grind_ns();
}

template <class Policy>
common::PhaseProfile* Simulation<Policy>::phase_profile() {
  return igr_ ? &igr_->phase_profile() : nullptr;
}

template <class Policy>
const common::PhaseProfile* Simulation<Policy>::local_phase_profile() const {
  if (igr_) return &igr_->phase_profile();
  if (dist_ && !dist_->local_ranks().empty())
    return &dist_->rank(dist_->local_ranks().front()).phase_profile();
  return nullptr;
}

template <class Policy>
std::size_t Simulation<Policy>::local_phase_cells() const {
  if (igr_) return params_.grid.cells();
  if (dist_ && !dist_->local_ranks().empty())
    return dist_->rank(dist_->local_ranks().front()).grid().cells();
  return 0;
}

template <class Policy>
std::uint64_t Simulation<Policy>::sigma_sweeps_done() const {
  if (igr_) return igr_->sigma_sweeps_done();
  std::uint64_t total = 0;
  if (dist_)
    for (const int r : dist_->local_ranks())
      total += dist_->rank(r).sigma_sweeps_done();
  return total;
}

template <class Policy>
std::size_t Simulation<Policy>::memory_bytes() const {
  if (dist_) return dist_->memory_bytes();
  return igr_ ? igr_->memory_bytes() : weno_->memory_bytes();
}

template <class Policy>
bool Simulation<Policy>::multi_process() const {
  return dist_ && dist_->multi_process();
}

template <class Policy>
bool Simulation<Policy>::is_io_root() const {
  return !multi_process() || dist_->is_root();
}

template <class Policy>
int Simulation<Policy>::local_rank() const {
  return multi_process() ? dist_->comm().transport().local_rank() : -1;
}

template <class Policy>
const common::StateField3<typename Policy::storage_t>&
Simulation<Policy>::state() const {
  if (dist_) {
    if (multi_process() && !dist_->is_root())
      throw std::logic_error(
          "Simulation::state(): global state lives on the IO root only "
          "under a multi-process transport (gate on is_io_root())");
    if (gathered_dirty_) {
      gathered_ = dist_->gather();
      gathered_dirty_ = false;
    }
    return gathered_;
  }
  return igr_ ? igr_->state() : weno_->state();
}

template <class Policy>
sim::DistributedIgr<Policy>& Simulation<Policy>::dist() {
  if (!dist_)
    throw std::logic_error("Simulation::dist(): not a decomposed run");
  // The caller can step the driver directly (e.g. step_fixed), which this
  // facade cannot observe — treat any mutable access as invalidating the
  // gathered-state cache.
  gathered_dirty_ = true;
  return *dist_;
}

template <class Policy>
FlowDiagnostics Simulation<Policy>::diagnostics() const {
  const auto& q = state();
  const auto& g = params_.grid;
  FlowDiagnostics d;
  d.min_density = 1e300;
  d.min_pressure = 1e300;
  const int nx = g.nx(), ny = g.ny(), nz = g.nz();
  const double dv = g.dx() * g.dy() * g.dz();
  // Cell velocities, kept for the curl stencil of the enstrophy integral.
  const std::size_t ncell = g.cells();
  std::vector<double> vel[3];
  for (auto& v : vel) v.resize(ncell);
  const auto at = [nx, ny](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * ny + static_cast<std::size_t>(j)) *
               nx +
           static_cast<std::size_t>(i);
  };
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        common::Cons<double> qc;
        for (int c = 0; c < common::kNumVars; ++c)
          qc[c] = static_cast<double>(q[c](i, j, k));
        const auto w = eos_.to_prim(qc);
        const double speed = std::sqrt(w.speed2());
        // Absolute threshold in the library's nondimensional convention
        // (ambient p ~ O(1)): below it a cell is a start-up transient.
        if (w.p > 1e-10) {
          const double cs = eos_.sound_speed(w.rho, w.p);
          d.max_mach = std::max(d.max_mach, speed / cs);
        } else {
          ++d.nonpositive_pressure_cells;
        }
        d.min_density = std::min(d.min_density, w.rho);
        d.max_density = std::max(d.max_density, w.rho);
        d.min_pressure = std::min(d.min_pressure, w.p);
        d.kinetic_energy += 0.5 * w.rho * w.speed2() * dv;
        d.total_mass += w.rho * dv;
        d.total_energy += qc.e * dv;
        vel[0][at(i, j, k)] = w.u;
        vel[1][at(i, j, k)] = w.v;
        vel[2][at(i, j, k)] = w.w;
      }
    }
  }
  // Enstrophy: |curl u|^2 integrated with central differences, degraded to
  // one-sided at the domain faces (no ghost data is consulted, so the
  // integral is identical for gathered decomposed states).
  const auto deriv = [&](int comp, int axis, int i, int j, int k) {
    int c[3] = {i, j, k};
    const int n[3] = {nx, ny, nz};
    const double h[3] = {g.dx(), g.dy(), g.dz()};
    int lo[3] = {i, j, k}, hi[3] = {i, j, k};
    lo[axis] = std::max(c[axis] - 1, 0);
    hi[axis] = std::min(c[axis] + 1, n[axis] - 1);
    const double span = (hi[axis] - lo[axis]) * h[axis];
    if (span <= 0.0) return 0.0;  // single-cell extent along `axis`
    return (vel[comp][at(hi[0], hi[1], hi[2])] -
            vel[comp][at(lo[0], lo[1], lo[2])]) /
           span;
  };
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double wx = deriv(2, 1, i, j, k) - deriv(1, 2, i, j, k);
        const double wy = deriv(0, 2, i, j, k) - deriv(2, 0, i, j, k);
        const double wz = deriv(1, 0, i, j, k) - deriv(0, 1, i, j, k);
        d.enstrophy += (wx * wx + wy * wy + wz * wz) * dv;
      }
    }
  }
  return d;
}

template <class Policy>
SolverHealth Simulation<Policy>::health() const {
  if (multi_process()) {
    // Scan the local block and merge globally: the rank interiors partition
    // the global interior, so summed counters and reduced minima equal the
    // single-gather scan bit for bit.  This is a collective (every process
    // must reach it in the same schedule) but moves no field data.
    SolverHealth h;
    h.min_density = std::numeric_limits<double>::infinity();
    h.min_pressure = std::numeric_limits<double>::infinity();
    for (const int r : dist_->local_ranks()) {
      const SolverHealth lh = scan_health(dist_->rank(r).state(), eos_);
      h.cells += lh.cells;
      h.nonfinite_cells += lh.nonfinite_cells;
      h.negative_density_cells += lh.negative_density_cells;
      h.nonpositive_pressure_cells += lh.nonpositive_pressure_cells;
      h.min_density = std::min(h.min_density, lh.min_density);
      h.min_pressure = std::min(h.min_pressure, lh.min_pressure);
    }
    const auto& comm = dist_->comm();
    const auto sum_sz = [&comm](std::size_t v) {
      return static_cast<std::size_t>(
          comm.allreduce_sum_global(static_cast<double>(v)));
    };
    h.cells = sum_sz(h.cells);
    h.nonfinite_cells = sum_sz(h.nonfinite_cells);
    h.negative_density_cells = sum_sz(h.negative_density_cells);
    h.nonpositive_pressure_cells = sum_sz(h.nonpositive_pressure_cells);
    h.min_density = comm.allreduce_min_global(h.min_density);
    h.min_pressure = comm.allreduce_min_global(h.min_pressure);
    return h;
  }
  return scan_health(state(), eos_);
}

namespace {

/// Both files are stamped by the same save; a mismatched sibling .sigma
/// would silently break the bitwise-continuation contract.  Compare the
/// headers *before* mutating any solver field so a caught throw leaves the
/// simulation untouched.
void check_sigma_sibling(const std::string& path) {
  const double t_state = io::read_checkpoint_header(path).time;
  const double t_sigma = io::read_checkpoint_header(path + ".sigma").time;
  if (t_sigma != t_state)
    throw std::runtime_error(
        "Simulation::load_checkpoint: " + path + " (t=" +
        std::to_string(t_state) + ") and its .sigma (t=" +
        std::to_string(t_sigma) + ") are from different saves");
}

}  // namespace

template <class Policy>
void Simulation<Policy>::save_checkpoint(const std::string& path) const {
  if (multi_process()) {
    // Collective: gathers run on every process; only the root touches the
    // filesystem.  The final sum doubles as (a) a barrier — no process
    // resumes stepping until the files are durably renamed — and (b) a
    // failure broadcast, so a root-side IO error throws *everywhere* and
    // the collectives of the next schedule entry stay matched.
    const auto q = dist_->gather();
    const auto sig = dist_->gather_sigma();
    double failed = 0.0;
    std::string err;
    if (dist_->is_root()) {
      try {
        io::write_checkpoint(path, q, dist_->time());
        io::write_checkpoint_field(path + ".sigma", sig, dist_->time());
      } catch (const std::exception& e) {
        failed = 1.0;
        err = e.what();
      }
    }
    if (dist_->comm().allreduce_sum_global(failed) != 0.0)
      throw std::runtime_error(
          err.empty() ? "Simulation::save_checkpoint: write failed on the "
                        "IO root"
                      : err);
    return;
  }
  if (dist_) {
    // Gather to the global interior so the file carries no trace of the
    // rank layout — the restart side scatters over whatever layout it has.
    io::write_checkpoint(path, dist_->gather(), dist_->time());
    io::write_checkpoint_field(path + ".sigma", dist_->gather_sigma(),
                               dist_->time());
  } else if (igr_) {
    io::write_checkpoint(path, igr_->state(), igr_->time());
    io::write_checkpoint_field(path + ".sigma", igr_->sigma(), igr_->time());
  } else {
    io::write_checkpoint(path, weno_->state(), weno_->time());
  }
}

template <class Policy>
void Simulation<Policy>::load_checkpoint(const std::string& path) {
  gathered_dirty_ = true;
  if (dist_) {
    check_sigma_sibling(path);
    const auto& g = params_.grid;
    common::StateField3<S> q(g.nx(), g.ny(), g.nz(),
                             sim::DistributedIgr<Policy>::kNg);
    common::Field3<S> sig(g.nx(), g.ny(), g.nz(),
                          sim::DistributedIgr<Policy>::kNg);
    const double t = io::read_checkpoint(path, q);
    io::read_checkpoint_field(path + ".sigma", sig);
    dist_->scatter(q);
    dist_->scatter_sigma(sig);
    dist_->set_time(t);
  } else if (igr_) {
    check_sigma_sibling(path);
    const double t = io::read_checkpoint(path, igr_->state());
    io::read_checkpoint_field(path + ".sigma", igr_->sigma_field());
    igr_->set_time(t);
    // The fused pipeline's cached next-step dt belongs to the pre-restore
    // state; force the next step() to rescan (which reproduces the same
    // bits the cache would have held for a matching state + Sigma).
    igr_->invalidate_dt_cache();
  } else {
    weno_->set_time(io::read_checkpoint(path, weno_->state()));
  }
}

template <class Policy>
void Simulation<Policy>::write_vtk(const std::string& path) const {
  if (multi_process() && !dist_->is_root()) {
    // Participate in the root's gathers, write nothing.
    (void)dist_->gather();
    (void)dist_->gather_sigma();
    return;
  }
  io::VtkWriter writer(params_.grid);
  writer.open(path);
  writer.add_state(state(), eos_);
  if (igr_) writer.add_scalar("entropic_pressure", igr_->sigma());
  if (dist_) writer.add_scalar("entropic_pressure", dist_->gather_sigma());
  writer.close();
}

template class Simulation<common::Fp64>;
template class Simulation<common::Fp32>;
template class Simulation<common::Fp16x32>;
template class Simulation<common::Bf16x32>;

}  // namespace igr::app
