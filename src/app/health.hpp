#pragma once
/// \file health.hpp
/// Cheap run-health scan over the conserved state.  Long campaigns fail
/// through the field first — a NaN from an over-aggressive dt or a negative
/// density from an under-resolved front — long before any I/O or comm layer
/// notices.  The guarded runner (cases::run_case_guarded) scans every few
/// steps and rolls back to the last checkpoint with a reduced CFL when the
/// state goes bad.
///
/// Health policy: *nonfinite values and negative density are always fatal*.
/// Nonpositive pressure is counted and reported but only fails a strict
/// scan — the jet cases legitimately carry nonpositive-pressure cells
/// through their impulsive start-up transient (see
/// FlowDiagnostics::nonpositive_pressure_cells), and rolling those back
/// would loop forever.

#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>

#include "common/field3.hpp"
#include "eos/ideal_gas.hpp"

namespace igr::app {

struct SolverHealth {
  std::size_t cells = 0;
  std::size_t nonfinite_cells = 0;         ///< Any conserved var NaN/Inf.
  std::size_t negative_density_cells = 0;  ///< rho <= 0 (finite).
  std::size_t nonpositive_pressure_cells = 0;  ///< p <= 0 (finite state).
  double min_density = std::numeric_limits<double>::infinity();
  double min_pressure = std::numeric_limits<double>::infinity();

  /// Fit to continue?  Strict mode additionally fails nonpositive pressure
  /// (opt-in; see the file comment for why it is not the default).
  [[nodiscard]] bool healthy(bool strict_pressure = false) const {
    if (nonfinite_cells > 0 || negative_density_cells > 0) return false;
    if (strict_pressure && nonpositive_pressure_cells > 0) return false;
    return true;
  }

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << nonfinite_cells << " nonfinite, " << negative_density_cells
       << " negative-density, " << nonpositive_pressure_cells
       << " nonpositive-pressure of " << cells
       << " cells (min rho " << min_density << ", min p " << min_pressure
       << ")";
    return os.str();
  }
};

/// Scan the interior of `q`.  One pass, no allocation — cheap enough to run
/// every few steps on smoke-sized grids and every checkpoint on large ones.
template <class T>
[[nodiscard]] SolverHealth scan_health(const common::StateField3<T>& q,
                                       const eos::IdealGas& eos) {
  SolverHealth h;
  h.cells = static_cast<std::size_t>(q.nx()) *
            static_cast<std::size_t>(q.ny()) *
            static_cast<std::size_t>(q.nz());
  for (int k = 0; k < q.nz(); ++k) {
    for (int j = 0; j < q.ny(); ++j) {
      for (int i = 0; i < q.nx(); ++i) {
        common::Cons<double> qc;
        bool finite = true;
        for (int c = 0; c < common::kNumVars; ++c) {
          qc[c] = static_cast<double>(q[c](i, j, k));
          finite = finite && std::isfinite(qc[c]);
        }
        if (!finite) {
          ++h.nonfinite_cells;
          continue;
        }
        if (qc.rho < h.min_density) h.min_density = qc.rho;
        if (qc.rho <= 0.0) {
          ++h.negative_density_cells;
          continue;
        }
        const double p = eos.pressure(qc);
        if (p < h.min_pressure) h.min_pressure = p;
        if (p <= 0.0) ++h.nonpositive_pressure_cells;
      }
    }
  }
  return h;
}

}  // namespace igr::app
