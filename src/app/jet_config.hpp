#pragma once
/// \file jet_config.hpp
/// Rocket-engine array configurations.  The paper's demonstration problems
/// inject Mach-10 jets through circular inflow patches on the domain floor
/// ("We model them through inflow boundary conditions", Fig. 1): a single
/// engine (the performance workload, §6.2), a three-engine row (the Fig. 5
/// precision study), and a 33-engine array inspired by the SpaceX Super
/// Heavy (Fig. 1): 3 inner, 10 middle-ring, and 20 outer-ring engines.

#include <array>
#include <vector>

#include "common/config.hpp"
#include "common/state.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/bc.hpp"

namespace igr::app {

struct JetConfig {
  double gamma = 1.4;
  double mach = 10.0;          ///< Jet exit Mach number.
  double ambient_rho = 1.0;
  double ambient_p = 1.0;
  double jet_rho = 1.0;        ///< Exit density (pressure-matched exit).
  double jet_p = 1.0;
  double nozzle_radius = 0.05; ///< In domain units.
  /// Engine centers in the (x, y) cross-section of the z-low face.
  std::vector<std::array<double, 2>> centers;

  /// Primitive state at the nozzle exit (jet directed along +z).
  [[nodiscard]] common::Prim<double> jet_state() const;

  /// Quiescent-ambient primitive state.
  [[nodiscard]] common::Prim<double> ambient_state() const;

  /// Boundary spec: inflow patches + reflective base plate on z-low,
  /// outflow everywhere else.
  [[nodiscard]] fv::BcSpec make_bc() const;

  /// Initial condition: ambient everywhere, optionally seeded with smooth
  /// deterministic "noise" of relative amplitude `noise` (the Fig. 5 runs
  /// seed instabilities with smooth random noise).
  [[nodiscard]] core::PrimFn initial_condition(double noise = 0.0) const;

  /// Solver configuration tuned for high-Mach jet start-up.
  [[nodiscard]] common::SolverConfig solver_config() const;
};

/// One engine centered in a unit cross-section.
JetConfig single_engine();

/// Three engines in a row across the cross-section (Fig. 5 configuration).
JetConfig three_engine_row();

/// 33-engine Super-Heavy-inspired array: 3 inner + 10 middle ring + 20
/// outer ring (Fig. 1 configuration).
JetConfig super_heavy_33();

}  // namespace igr::app
