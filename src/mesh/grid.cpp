#include "mesh/grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace igr::mesh {

Grid::Grid(int nx, int ny, int nz, std::array<double, 2> xr,
           std::array<double, 2> yr, std::array<double, 2> zr)
    : nx_(nx), ny_(ny), nz_(nz), x0_(xr[0]), y0_(yr[0]), z0_(zr[0]) {
  if (nx < 1 || ny < 1 || nz < 1)
    throw std::invalid_argument("Grid: cell counts must be positive");
  if (xr[1] <= xr[0] || yr[1] <= yr[0] || zr[1] <= zr[0])
    throw std::invalid_argument("Grid: extents must be increasing");
  dx_ = (xr[1] - xr[0]) / nx;
  dy_ = (yr[1] - yr[0]) / ny;
  dz_ = (zr[1] - zr[0]) / nz;
}

Grid Grid::cube(int n) {
  return Grid(n, n, n, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0});
}

Grid Grid::window(const Grid& parent, const std::array<int, 3>& lo,
                  const std::array<int, 3>& n) {
  if (n[0] < 1 || n[1] < 1 || n[2] < 1)
    throw std::invalid_argument("Grid::window: cell counts must be positive");
  if (lo[0] < 0 || lo[1] < 0 || lo[2] < 0 ||
      lo[0] + n[0] > parent.nx_ || lo[1] + n[1] > parent.ny_ ||
      lo[2] + n[2] > parent.nz_)
    throw std::invalid_argument("Grid::window: block outside the parent");
  Grid w = parent;
  w.nx_ = n[0];
  w.ny_ = n[1];
  w.nz_ = n[2];
  w.ox_ = parent.ox_ + lo[0];
  w.oy_ = parent.oy_ + lo[1];
  w.oz_ = parent.oz_ + lo[2];
  return w;
}

double Grid::min_dx() const { return std::min({dx_, dy_, dz_}); }

}  // namespace igr::mesh
