#pragma once
/// \file grid.hpp
/// Uniform rectilinear grid, as used by the paper's production runs
/// ("rectilinear grid of 3.3T cells", §3).

#include <array>
#include <cstddef>

namespace igr::mesh {

/// Uniform Cartesian grid on [x0,x1] x [y0,y1] x [z0,z1] with cell-centered
/// unknowns.  Cell (i,j,k) center: x0 + (i + 1/2) dx, etc.
class Grid {
 public:
  Grid() = default;
  Grid(int nx, int ny, int nz,
       std::array<double, 2> xr, std::array<double, 2> yr,
       std::array<double, 2> zr);

  /// Convenience: unit cube with n^3 cells.
  static Grid cube(int n);

  /// Window of `parent`: the block of `n` cells starting at global cell
  /// `lo`.  The window shares the parent's spacing *bitwise* and evaluates
  /// cell centers through the parent's origin and global indices, so
  /// window.x(i) == parent.x(lo[0] + i) exactly — the property decomposed
  /// bitwise-equivalence rests on.  (Recomputing a local origin and spacing
  /// from extents rounds differently whenever the spacing is not exactly
  /// representable.)
  static Grid window(const Grid& parent, const std::array<int, 3>& lo,
                     const std::array<int, 3>& n);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }

  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double dy() const { return dy_; }
  [[nodiscard]] double dz() const { return dz_; }
  /// Smallest spacing; sets the IGR alpha = alpha_factor * min_dx^2.
  [[nodiscard]] double min_dx() const;

  [[nodiscard]] double x(int i) const { return x0_ + (ox_ + i + 0.5) * dx_; }
  [[nodiscard]] double y(int j) const { return y0_ + (oy_ + j + 0.5) * dy_; }
  [[nodiscard]] double z(int k) const { return z0_ + (oz_ + k + 0.5) * dz_; }

  /// Origin of this grid (for a window: the low corner of the block,
  /// derived from the parent origin — display/output use; cell centers go
  /// through x()/y()/z(), which are exact).
  [[nodiscard]] double x0() const { return x0_ + ox_ * dx_; }
  [[nodiscard]] double y0() const { return y0_ + oy_ * dy_; }
  [[nodiscard]] double z0() const { return z0_ + oz_ * dz_; }
  [[nodiscard]] double lx() const { return nx_ * dx_; }
  [[nodiscard]] double ly() const { return ny_ * dy_; }
  [[nodiscard]] double lz() const { return nz_ * dz_; }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  double x0_ = 0, y0_ = 0, z0_ = 0;
  double dx_ = 0, dy_ = 0, dz_ = 0;
  /// Global-index offset of cell (0,0,0) within the parent grid (windows
  /// only; 0 for a grid that is its own parent).
  int ox_ = 0, oy_ = 0, oz_ = 0;
};

}  // namespace igr::mesh
