#pragma once
/// \file grid.hpp
/// Uniform rectilinear grid, as used by the paper's production runs
/// ("rectilinear grid of 3.3T cells", §3).

#include <array>
#include <cstddef>

namespace igr::mesh {

/// Uniform Cartesian grid on [x0,x1] x [y0,y1] x [z0,z1] with cell-centered
/// unknowns.  Cell (i,j,k) center: x0 + (i + 1/2) dx, etc.
class Grid {
 public:
  Grid() = default;
  Grid(int nx, int ny, int nz,
       std::array<double, 2> xr, std::array<double, 2> yr,
       std::array<double, 2> zr);

  /// Convenience: unit cube with n^3 cells.
  static Grid cube(int n);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }

  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double dy() const { return dy_; }
  [[nodiscard]] double dz() const { return dz_; }
  /// Smallest spacing; sets the IGR alpha = alpha_factor * min_dx^2.
  [[nodiscard]] double min_dx() const;

  [[nodiscard]] double x(int i) const { return x0_ + (i + 0.5) * dx_; }
  [[nodiscard]] double y(int j) const { return y0_ + (j + 0.5) * dy_; }
  [[nodiscard]] double z(int k) const { return z0_ + (k + 0.5) * dz_; }

  [[nodiscard]] double x0() const { return x0_; }
  [[nodiscard]] double y0() const { return y0_; }
  [[nodiscard]] double z0() const { return z0_; }
  [[nodiscard]] double lx() const { return nx_ * dx_; }
  [[nodiscard]] double ly() const { return ny_ * dy_; }
  [[nodiscard]] double lz() const { return nz_ * dz_; }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  double x0_ = 0, y0_ = 0, z0_ = 0;
  double dx_ = 0, dy_ = 0, dz_ = 0;
};

}  // namespace igr::mesh
