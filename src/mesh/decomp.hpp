#pragma once
/// \file decomp.hpp
/// 3-D Cartesian domain decomposition.  Maps ranks to subdomain coordinates
/// and local extents; used both by the in-process simulated communicator
/// (src/sim) and by the scaling performance model (src/perf).

#include <array>
#include <cstddef>
#include <vector>

#include "mesh/grid.hpp"

namespace igr::mesh {

/// Face identifiers for neighbor lookup and halo exchange.
enum class Face : int { kXLo = 0, kXHi, kYLo, kYHi, kZLo, kZHi };
inline constexpr int kNumFaces = 6;

/// Opposite face (kXLo <-> kXHi, ...).
Face opposite(Face f);

/// Local block of a decomposed global grid.
struct LocalBlock {
  std::array<int, 3> lo{};   ///< Global index of first interior cell.
  std::array<int, 3> n{};    ///< Local interior cell counts.
};

/// Rank layout on a 3-D process grid.
class Decomp {
 public:
  /// Decompose `grid` over rx*ry*rz ranks.  An axis need not divide evenly:
  /// with n cells split over p ranks, every rank gets floor(n/p) cells and
  /// the remainder n mod p is handed out one extra cell each to the (n mod p)
  /// lowest-coordinate ranks — so low-coordinate blocks are at most one cell
  /// larger than high-coordinate ones.  Rank counts above the cell count of
  /// an axis are rejected (a rank must own at least one cell).
  Decomp(const Grid& grid, int rx, int ry, int rz, bool periodic = true);

  /// Choose a near-cubic process grid for `ranks` ranks (factorization that
  /// minimizes surface-to-volume of local blocks).
  static std::array<int, 3> balanced_layout(int ranks);

  [[nodiscard]] int ranks() const { return rx_ * ry_ * rz_; }
  [[nodiscard]] std::array<int, 3> layout() const { return {rx_, ry_, rz_}; }
  [[nodiscard]] bool periodic() const { return periodic_; }

  /// Rank id from process-grid coordinates.
  [[nodiscard]] int rank_of(int cx, int cy, int cz) const;
  /// Process-grid coordinates of a rank.
  [[nodiscard]] std::array<int, 3> coords_of(int rank) const;

  /// Local interior block of `rank` within the global grid.
  [[nodiscard]] LocalBlock block(int rank) const;

  /// Neighbor rank across `face`, or -1 at a non-periodic physical boundary.
  [[nodiscard]] int neighbor(int rank, Face face) const;

  /// Halo message size in cells for one face exchange with `ng` ghost layers.
  [[nodiscard]] std::size_t halo_cells(int rank, Face face, int ng) const;

  /// Process-grid coordinate along `axis` of the rank owning global cell
  /// `gcell` (0 <= gcell < grid extent along that axis).  Inverts the
  /// remainder-to-low-ranks split; halo exchange uses it to resolve the
  /// owner of a ghost plane even when blocks are thinner than the ghost
  /// depth (multi-hop halos).
  [[nodiscard]] int owner_coord(int axis, int gcell) const;

 private:
  [[nodiscard]] static int split_lo(int n, int parts, int idx);
  [[nodiscard]] static int split_n(int n, int parts, int idx);

  const Grid* grid_ = nullptr;
  int rx_ = 1, ry_ = 1, rz_ = 1;
  bool periodic_ = true;
};

}  // namespace igr::mesh
