#include "mesh/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace igr::mesh {

Face opposite(Face f) {
  const int v = static_cast<int>(f);
  return static_cast<Face>(v ^ 1);
}

Decomp::Decomp(const Grid& grid, int rx, int ry, int rz, bool periodic)
    : grid_(&grid), rx_(rx), ry_(ry), rz_(rz), periodic_(periodic) {
  if (rx < 1 || ry < 1 || rz < 1)
    throw std::invalid_argument("Decomp: rank counts must be positive");
  if (rx > grid.nx() || ry > grid.ny() || rz > grid.nz())
    throw std::invalid_argument("Decomp: more ranks than cells along an axis");
}

std::array<int, 3> Decomp::balanced_layout(int ranks) {
  if (ranks < 1) throw std::invalid_argument("balanced_layout: ranks < 1");
  std::array<int, 3> best{ranks, 1, 1};
  double best_score = 1.0e300;
  for (int a = 1; a <= ranks; ++a) {
    if (ranks % a != 0) continue;
    const int bc = ranks / a;
    for (int b = 1; b <= bc; ++b) {
      if (bc % b != 0) continue;
      const int c = bc / b;
      // Surface-to-volume proxy for a unit cube split a x b x c.
      const double score = 1.0 / a + 1.0 / b + 1.0 / c;
      if (score < best_score) {
        best_score = score;
        best = {a, b, c};
      }
    }
  }
  // Sort descending so the fastest-varying axis gets the most ranks.
  std::sort(best.begin(), best.end(), std::greater<>());
  return best;
}

int Decomp::rank_of(int cx, int cy, int cz) const {
  return (cz * ry_ + cy) * rx_ + cx;
}

std::array<int, 3> Decomp::coords_of(int rank) const {
  const int cx = rank % rx_;
  const int cy = (rank / rx_) % ry_;
  const int cz = rank / (rx_ * ry_);
  return {cx, cy, cz};
}

int Decomp::split_lo(int n, int parts, int idx) {
  const int base = n / parts;
  const int rem = n % parts;
  return idx * base + std::min(idx, rem);
}

int Decomp::split_n(int n, int parts, int idx) {
  const int base = n / parts;
  const int rem = n % parts;
  return base + (idx < rem ? 1 : 0);
}

LocalBlock Decomp::block(int rank) const {
  const auto c = coords_of(rank);
  LocalBlock b;
  b.lo = {split_lo(grid_->nx(), rx_, c[0]), split_lo(grid_->ny(), ry_, c[1]),
          split_lo(grid_->nz(), rz_, c[2])};
  b.n = {split_n(grid_->nx(), rx_, c[0]), split_n(grid_->ny(), ry_, c[1]),
         split_n(grid_->nz(), rz_, c[2])};
  return b;
}

int Decomp::neighbor(int rank, Face face) const {
  auto c = coords_of(rank);
  const int axis = static_cast<int>(face) / 2;
  const int dir = (static_cast<int>(face) % 2 == 0) ? -1 : +1;
  const std::array<int, 3> dims{rx_, ry_, rz_};
  int v = c[static_cast<std::size_t>(axis)] + dir;
  if (v < 0 || v >= dims[static_cast<std::size_t>(axis)]) {
    if (!periodic_) return -1;
    v = (v + dims[static_cast<std::size_t>(axis)]) %
        dims[static_cast<std::size_t>(axis)];
  }
  c[static_cast<std::size_t>(axis)] = v;
  return rank_of(c[0], c[1], c[2]);
}

int Decomp::owner_coord(int axis, int gcell) const {
  const std::array<int, 3> dims{rx_, ry_, rz_};
  const std::array<int, 3> cells{grid_->nx(), grid_->ny(), grid_->nz()};
  const int n = cells[static_cast<std::size_t>(axis)];
  const int p = dims[static_cast<std::size_t>(axis)];
  if (gcell < 0 || gcell >= n)
    throw std::invalid_argument("owner_coord: cell outside the global grid");
  // Blocks of size base+1 for coords < rem, size base after.
  const int base = n / p;
  const int rem = n % p;
  const int big_span = rem * (base + 1);
  if (gcell < big_span) return gcell / (base + 1);
  return rem + (gcell - big_span) / base;
}

std::size_t Decomp::halo_cells(int rank, Face face, int ng) const {
  const auto b = block(rank);
  const int axis = static_cast<int>(face) / 2;
  std::size_t area = 1;
  for (int a = 0; a < 3; ++a) {
    if (a != axis) area *= static_cast<std::size_t>(b.n[static_cast<std::size_t>(a)]);
  }
  return area * static_cast<std::size_t>(ng);
}

}  // namespace igr::mesh
