#include "sim/transport.hpp"

#include <chrono>
#include <thread>

namespace igr::sim {

InProcTransport::InProcTransport(std::size_t nslots) : Transport(nslots) {
  epochs_ = std::make_unique<std::atomic<std::uint64_t>[]>(nslots);
  for (std::size_t s = 0; s < nslots; ++s) epochs_[s].store(0);
  buffers_.resize(nslots);
}

const unsigned char* InProcTransport::acquire(std::size_t slot,
                                              std::uint64_t target,
                                              int /*src_rank*/) {
  // Yield-spin rather than std::atomic::wait: an abort must wake waiters but
  // does not change the epoch value, and a notify that lands between a
  // waiter's abort check and its blocking wait would be lost.  Exchange
  // waits are short (rank imbalance within one phase), so yielding is cheap
  // and keeps oversubscribed single-core runs from burning the timeslice.
  //
  // A configured wait timeout bounds the spin: a peer that died without its
  // unwind reaching abort_exchanges (or an external kill) would otherwise
  // hang every waiter forever.  The clock is consulted only every 1024
  // yields so the healthy path stays a pair of atomic loads.
  auto& e = epochs_[slot];
  const double bound = wait_timeout_s_.load(std::memory_order_relaxed);
  std::chrono::steady_clock::time_point deadline{};
  bool deadline_set = false;
  int spins = 0;
  while (e.load(std::memory_order_acquire) < target) {
    if (abort_.load(std::memory_order_relaxed)) return nullptr;
    if (bound > 0.0 && ++spins >= 1024) {
      spins = 0;
      const auto now = std::chrono::steady_clock::now();
      if (!deadline_set) {
        deadline = now + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(bound));
        deadline_set = true;
      } else if (now >= deadline) {
        abort_exchanges("halo wait exceeded " + std::to_string(bound) +
                        "s (peer rank never posted — dead or wedged)");
        return nullptr;
      }
    }
    std::this_thread::yield();
  }
  return buffers_[slot].data();
}

}  // namespace igr::sim
