#pragma once
/// \file comm.hpp
/// In-process simulated communicator.
///
/// The paper runs MPI across up to 11k nodes (§6).  Locally we reproduce the
/// *semantics* of that layer: R ranks own disjoint blocks of the global grid
/// and exchange real halo buffers, so a decomposed run is verifiable against
/// a single-domain run (bitwise, when the elliptic sweeps use Jacobi — see
/// sim::DistributedIgr).  Performance at scale is the province of
/// perf::ScalingModel; this class also meters exchanged bytes so the model's
/// traffic terms can be cross-checked against an executed exchange.

#include <cstddef>
#include <vector>

#include "common/field3.hpp"
#include "mesh/decomp.hpp"
#include "mesh/grid.hpp"

namespace igr::sim {

class Comm {
 public:
  /// Decompose `global` over an rx*ry*rz rank layout.
  Comm(const mesh::Grid& global, int rx, int ry, int rz, bool periodic);

  [[nodiscard]] int ranks() const { return decomp_.ranks(); }
  [[nodiscard]] const mesh::Decomp& decomp() const { return decomp_; }
  [[nodiscard]] const mesh::Grid& global_grid() const { return global_; }

  /// Local physical grid of `rank` (extents match its block).
  [[nodiscard]] mesh::Grid local_grid(int rank) const;

  /// Exchange ghost layers of one scalar field per rank.  Axes are swept in
  /// x,y,z order with widening tangential extents, matching the single-
  /// domain ghost-fill ordering so corner ghosts coincide.
  template <class T>
  void exchange(std::vector<common::Field3<T>*> fields) const;

  /// Exchange all components of one state field per rank.
  template <class T>
  void exchange_state(std::vector<common::StateField3<T>*> states) const;

  /// Single-axis exchange (x=0, y=1, z=2) — the building block distributed
  /// drivers interleave with per-axis physical-boundary fills.
  template <class T>
  void exchange_axis(std::vector<common::Field3<T>*>& fields, int axis) const;

  /// Minimum across per-rank values (the dt allreduce).
  [[nodiscard]] static double allreduce_min(const std::vector<double>& v);

  /// Total bytes moved by exchanges since construction.
  [[nodiscard]] std::size_t bytes_exchanged() const { return bytes_; }
  void reset_traffic() { bytes_ = 0; }

 private:
  mesh::Grid global_;
  mesh::Decomp decomp_;
  mutable std::size_t bytes_ = 0;
};

// ---- template implementations ----

template <class T>
void Comm::exchange_axis(std::vector<common::Field3<T>*>& fields,
                         int axis) const {
  const int R = ranks();
  for (int r = 0; r < R; ++r) {
    common::Field3<T>& dst = *fields[static_cast<std::size_t>(r)];
    const int ng = dst.ng();
    const int nd[3] = {dst.nx(), dst.ny(), dst.nz()};

    for (int side = 0; side < 2; ++side) {
      const auto face = static_cast<mesh::Face>(2 * axis + side);
      const int nb = decomp_.neighbor(r, face);
      if (nb < 0) continue;  // physical boundary: left for BC fill
      const common::Field3<T>& src = *fields[static_cast<std::size_t>(nb)];
      const int ns[3] = {src.nx(), src.ny(), src.nz()};

      // Tangential bounds: widened for axes already exchanged.
      int lo[3], hi[3];
      for (int a = 0; a < 3; ++a) {
        lo[a] = (a < axis) ? -ng : 0;
        hi[a] = (a < axis) ? nd[a] + ng : nd[a];
      }

      for (int g = 0; g < ng; ++g) {
        // Ghost plane in dst and the matching interior plane in src.
        const int gp = (side == 0) ? -ng + g : nd[axis] + g;
        const int sp = (side == 0) ? ns[axis] - ng + g : g;

        int i0 = lo[0], i1 = hi[0], j0 = lo[1], j1 = hi[1], k0 = lo[2],
            k1 = hi[2];
        if (axis == 0) { i0 = gp; i1 = gp + 1; }
        if (axis == 1) { j0 = gp; j1 = gp + 1; }
        if (axis == 2) { k0 = gp; k1 = gp + 1; }

        for (int k = k0; k < k1; ++k) {
          for (int j = j0; j < j1; ++j) {
            for (int i = i0; i < i1; ++i) {
              int s[3] = {i, j, k};
              s[axis] = sp;
              dst(i, j, k) = src(s[0], s[1], s[2]);
              bytes_ += sizeof(T);
            }
          }
        }
      }
    }
  }
}

template <class T>
void Comm::exchange(std::vector<common::Field3<T>*> fields) const {
  for (int axis = 0; axis < 3; ++axis) exchange_axis(fields, axis);
}

template <class T>
void Comm::exchange_state(
    std::vector<common::StateField3<T>*> states) const {
  for (int c = 0; c < common::kNumVars; ++c) {
    std::vector<common::Field3<T>*> comp;
    comp.reserve(states.size());
    for (auto* s : states) comp.push_back(&(*s)[c]);
    // One full axis sweep per component keeps the per-component ordering
    // identical to the single-domain fill.
    for (int axis = 0; axis < 3; ++axis) exchange_axis(comp, axis);
  }
}

}  // namespace igr::sim
