#pragma once
/// \file comm.hpp
/// In-process simulated communicator.
///
/// The paper runs MPI across up to 11k nodes (§6).  Locally we reproduce the
/// *semantics* of that layer: R ranks own disjoint blocks of the global grid
/// and exchange real halo buffers, so a decomposed run is verifiable against
/// a single-domain run (bitwise, when the elliptic sweeps use Jacobi — see
/// sim::DistributedIgr).  Performance at scale is the province of
/// perf::ScalingModel; this class also meters exchanged bytes so the model's
/// traffic terms can be cross-checked against an executed exchange.
///
/// Exchange structure mirrors a nonblocking MPI halo pipeline:
///
///   post_axis(rank, ...)      pack the rank's boundary slabs into per-rank
///                             face buffers and publish them (release-store
///                             an epoch counter) — the MPI_Isend analogue;
///   complete_axis(rank, ...)  wait until every source rank of this rank's
///                             ghost planes has published the current epoch,
///                             then unpack into the ghost layers — the
///                             MPI_Waitall + unpack analogue.
///
/// Between a rank's post and complete it can do interior work — that is how
/// sim::DistributedIgr overlaps halo exchange with interior flux sweeps.
/// Both calls touch only the calling rank's fields and buffers plus other
/// ranks' *published* buffers, so different ranks may call them concurrently
/// from different threads.  The collective `exchange*` entry points compose
/// post+complete sequentially over all ranks (the lockstep schedule tests
/// use).
///
/// Ghost planes are resolved by *global plane ownership*, not neighbor
/// adjacency: a block thinner than the ghost depth publishes its whole
/// interior and its neighbors' neighbors pull the planes they need
/// (multi-hop halos), so 1-cell-thick rank blocks exchange correctly.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/field3.hpp"
#include "common/half.hpp"
#include "mesh/decomp.hpp"
#include "mesh/grid.hpp"
#include "sim/transport.hpp"

namespace igr::sim {

class FaultInjector;

class Comm {
 public:
  /// Independent buffer channels so concurrently scheduled exchanges of
  /// different field families never alias (reposting a channel's buffers is
  /// only safe after a schedule barrier — see DistributedIgr's phase plan).
  enum Channel : int { kChanState = 0, kChanSigma = 1, kChanGeneral = 2 };
  static constexpr int kNumChannels = 3;
  /// Largest supported ghost depth (sizes the fixed per-face plane tables).
  static constexpr int kMaxGhostDepth = 8;

  /// Wire encoding of a channel's halo payload.  kFull moves storage-width
  /// values (bitwise-identical to the field contents — the default and the
  /// reference).  kHalf narrows >2-byte elements to binary16 at pack time
  /// through the batched conversion lanes and widens at unpack, halving
  /// (FP32) or quartering (FP64, via a float intermediate) the bytes per
  /// ghost cell; 2-byte storage (FP16/32, BF16/32) is already at wire
  /// width and passes through untouched, so kHalf is bitwise-identical to
  /// kFull there.  The byte meter counts *wire* bytes.
  enum class WirePrecision { kFull, kHalf };

  /// Decompose `global` over an rx*ry*rz rank layout.  `spec` selects the
  /// transport that moves the halo bytes: the default in-process backend
  /// (every rank in this process, shared-memory epochs) or TCP (this
  /// process owns exactly `spec.rank`, peers are separate processes).
  Comm(const mesh::Grid& global, int rx, int ry, int rz, bool periodic,
       TransportSpec spec = {});

  [[nodiscard]] int ranks() const { return decomp_.ranks(); }
  [[nodiscard]] const mesh::Decomp& decomp() const { return decomp_; }
  [[nodiscard]] const mesh::Grid& global_grid() const { return global_; }

  /// The byte-moving backend behind the posted-epoch seam.
  [[nodiscard]] Transport& transport() const { return *transport_; }
  /// True when peers live in other OS processes (then only
  /// `transport().local_rank()` may post/complete here).
  [[nodiscard]] bool multi_process() const {
    return transport_->multi_process();
  }
  /// Is this process the team's IO root (rank 0, or the sole in-process
  /// team)?
  [[nodiscard]] bool is_root() const { return transport_->is_root(); }

  /// Scalar collectives over the transport.  In-process they are
  /// identities (the caller's own reduction over its ranks is global);
  /// over TCP they run as an exact star reduction through rank 0.
  [[nodiscard]] double allreduce_min_global(double local) const {
    return transport_->allreduce_min(local);
  }
  [[nodiscard]] double allreduce_sum_global(double local) const {
    return transport_->allreduce_sum(local);
  }
  void barrier() const { transport_->barrier(); }

  /// Local physical grid of `rank` (extents match its block).
  [[nodiscard]] mesh::Grid local_grid(int rank) const;

  /// Throws unless every block is compatible with the per-axis boundary
  /// masking distributed drivers use: on a non-periodic axis a block must
  /// either touch the physical boundary or sit at least `ng` cells away from
  /// it (otherwise some ghost planes would be neither exchanged nor
  /// BC-filled).  Periodic axes support any block thickness, down to one
  /// cell, via multi-hop halos.
  void validate_driver_decomp(int ng) const;

  // --- Nonblocking-style per-rank halo pipeline -------------------------

  /// Pack `rank`'s published boundary slabs of `nfields` fields along
  /// `axis` into this (channel, axis, rank) buffer and publish the epoch.
  /// Tangential extents widen by the ghost depth on axes already exchanged
  /// (x before y before z), matching the single-domain ghost-fill ordering.
  template <class T>
  void post_axis(int channel, int rank,
                 const common::Field3<T>* const* fields, int nfields,
                 int axis) const;

  /// Wait for the source ranks of `rank`'s ghost planes along `axis` to
  /// reach this rank's published epoch, then unpack their buffers into the
  /// ghost layers.  Ghost planes outside a non-periodic domain are left
  /// untouched (the BC fill owns them).  Returns false when the exchange
  /// was aborted (a peer failed) — the caller should unwind.
  template <class T>
  bool complete_axis(int channel, int rank, common::Field3<T>* const* fields,
                     int nfields, int axis) const;

  /// Mark the exchange aborted (error unwind path: a rank that threw
  /// cannot post, so its peers' epoch waits check this flag and give up
  /// instead of spinning forever).  The first non-empty `reason` is latched
  /// and surfaces in later poisoned-communicator errors.
  void abort_exchanges(const std::string& reason = {}) const {
    transport_->abort_exchanges(reason);
  }
  [[nodiscard]] bool aborted() const { return transport_->aborted(); }
  /// Why the communicator was poisoned (empty if not aborted or no reason
  /// was recorded).
  [[nodiscard]] std::string abort_reason() const {
    return transport_->abort_reason();
  }

  // --- Fault tolerance hooks --------------------------------------------

  /// Install a fault injector (nullptr disarms): post_axis / complete_axis
  /// then consult it and propagate its InjectedFault.  The injector must
  /// outlive the communicator.
  void set_fault_injector(FaultInjector* f) const { fault_ = f; }

  /// Bound every epoch wait: a peer that never posts (dead rank without a
  /// reaching abort) trips the timeout, which aborts the exchange with a
  /// reason instead of deadlocking.  <= 0 disables (the default driver
  /// installs its own bound — see DistOptions::comm_timeout_s).
  void set_wait_timeout(double seconds) const {
    transport_->set_wait_timeout(seconds);
  }
  [[nodiscard]] double wait_timeout() const {
    return transport_->wait_timeout();
  }

  /// Select the wire encoding of `channel` (all channels default to kFull).
  /// Poster and completer read the same setting, so flip it only at setup —
  /// never between a post and its complete.
  void set_wire(int channel, WirePrecision w) const {
    if (channel < 0 || channel >= kNumChannels)
      throw std::invalid_argument("Comm::set_wire: channel out of range");
    wire_[static_cast<std::size_t>(channel)] = w;
  }
  [[nodiscard]] WirePrecision wire(int channel) const {
    if (channel < 0 || channel >= kNumChannels)
      throw std::invalid_argument("Comm::wire: channel out of range");
    return wire_[static_cast<std::size_t>(channel)];
  }

  // --- Collective (lockstep) exchanges — TEST-ONLY shims ----------------
  //
  // Legacy entry points kept for tests/test_comm.cpp, which uses them to
  // pin the slab layout and multi-hop sourcing semantics without the
  // post/compute/complete choreography.  Every production caller (the
  // distributed driver, the overlap paths) folds onto the posted-epoch
  // API (post_axis/complete_axis); new code must do the same — these shims
  // cannot overlap compute with the exchange and serialize every rank
  // through the calling thread.

  /// TEST-ONLY.  Exchange ghost layers of one scalar field per rank.  Axes
  /// are swept in x,y,z order with widening tangential extents, matching
  /// the single-domain ghost-fill ordering so corner ghosts coincide.
  template <class T>
  void exchange(std::vector<common::Field3<T>*> fields) const;

  /// TEST-ONLY.  Exchange all components of one state field per rank.
  template <class T>
  void exchange_state(std::vector<common::StateField3<T>*> states) const;

  /// TEST-ONLY.  Single-axis exchange (x=0, y=1, z=2): posts every rank,
  /// then completes every rank, through the general channel — the lockstep
  /// composition of the posted-epoch building blocks.
  template <class T>
  void exchange_axis(std::vector<common::Field3<T>*>& fields, int axis) const;

  /// Minimum across per-rank values (the dt allreduce).
  [[nodiscard]] static double allreduce_min(const std::vector<double>& v);

  /// Total *wire* bytes moved by exchanges since construction (bytes of
  /// packed payload unpacked into ghost layers, at each channel's wire
  /// width; thread-safe).
  [[nodiscard]] std::size_t bytes_exchanged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Halo **wait** meters: ns spent in complete_axis blocked on peers'
  /// posted epochs (the `transport_->acquire` loop only — pack and unpack
  /// are excluded), per axis, plus the number of completed epochs.  This is
  /// the overlap-tuning signal: wait >> 0 with interior work available
  /// means the post/complete split is not hiding the exchange.  Always on
  /// (two steady_clock samples per complete_axis — noise next to one
  /// plane unpack); surfaced in bench_scaling rows and the telemetry
  /// JSONL stream.
  [[nodiscard]] std::uint64_t halo_wait_ns(int axis) const {
    return wait_ns_[check_axis(axis)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t halo_wait_epochs(int axis) const {
    return wait_epochs_[check_axis(axis)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t halo_wait_ns_total() const {
    return halo_wait_ns(0) + halo_wait_ns(1) + halo_wait_ns(2);
  }
  [[nodiscard]] std::uint64_t halo_wait_epochs_total() const {
    return halo_wait_epochs(0) + halo_wait_epochs(1) + halo_wait_epochs(2);
  }

  void reset_traffic() const {
    bytes_.store(0, std::memory_order_relaxed);
    for (int a = 0; a < 3; ++a) {
      wait_ns_[static_cast<std::size_t>(a)].store(0,
                                                  std::memory_order_relaxed);
      wait_epochs_[static_cast<std::size_t>(a)].store(
          0, std::memory_order_relaxed);
    }
  }

 private:
  [[nodiscard]] static std::size_t check_axis(int axis) {
    if (axis < 0 || axis > 2)
      throw std::invalid_argument("Comm: axis out of range");
    return static_cast<std::size_t>(axis);
  }

  /// Planes a block of thickness `n` publishes per axis: `ng` per side, or
  /// the whole interior when it is that thin (multi-hop sourcing).
  [[nodiscard]] static int published_planes(int n, int ng) {
    return (n <= 2 * ng) ? n : 2 * ng;
  }
  /// Local plane index published at buffer slot `pos` — THE definition of
  /// the slab layout (pack iterates it; published_pos inverts it).
  [[nodiscard]] static int published_plane(int pos, int n, int ng) {
    return (n <= 2 * ng) ? pos : (pos < ng ? pos : n - 2 * ng + pos);
  }
  /// Buffer slot of local plane `li` within a published slab, or -1 for an
  /// unpublished interior plane.  Derived from published_plane so the
  /// layout has a single encoding (nplanes <= 2*kMaxGhostDepth, so the
  /// scan is trivial).
  [[nodiscard]] static int published_pos(int li, int n, int ng) {
    const int np = published_planes(n, ng);
    for (int pos = 0; pos < np; ++pos) {
      if (published_plane(pos, n, ng) == li) return pos;
    }
    return -1;
  }

  [[nodiscard]] std::size_t slot(int channel, int axis, int rank) const {
    if (channel < 0 || channel >= kNumChannels || axis < 0 || axis > 2)
      throw std::invalid_argument("Comm: channel/axis out of range");
    return (static_cast<std::size_t>(channel) * 3 +
            static_cast<std::size_t>(axis)) *
               static_cast<std::size_t>(ranks()) +
           static_cast<std::size_t>(rank);
  }

  /// Non-template fault taps (keep the FaultInjector type out of the
  /// template bodies; defined in comm.cpp).
  void fault_on_post() const;
  void fault_on_complete() const;

  /// Multi-process guard for the posted-epoch entry points: this process
  /// may only drive its own rank, and only at the ghost depth the
  /// transport's reader sets were derived for (any other depth would
  /// desynchronize the per-slot sequence numbers).
  void check_mp_call(int rank, int ng, const char* what) const;

  /// Unique source ranks of `rank`'s ghost planes along `axis` at depth
  /// `ng` — the resolution loop of complete_axis without the per-plane
  /// bookkeeping (complete_axis mirrors it; keep the two in sync).  The
  /// inverse of this relation is the transport's per-axis reader set.
  int source_ranks(int rank, int axis, int ng,
                   int out[2 * kMaxGhostDepth]) const;

  mesh::Grid global_;
  mesh::Decomp decomp_;
  TransportSpec spec_;
  int mp_ng_ = 0;  ///< Enforced ghost depth in multi-process mode.
  mutable std::unique_ptr<Transport> transport_;
  mutable std::atomic<std::size_t> bytes_{0};
  /// Per-axis wait metering (see halo_wait_ns); atomics because different
  /// ranks complete concurrently from different threads, like bytes_.
  mutable std::array<std::atomic<std::uint64_t>, 3> wait_ns_{};
  mutable std::array<std::atomic<std::uint64_t>, 3> wait_epochs_{};
  mutable FaultInjector* fault_ = nullptr;
  /// Per-slot float staging for narrowing packs (only the posting rank's
  /// thread touches its slot, like the transport's send buffers).
  mutable std::vector<std::vector<float>> scratch_;
  mutable std::array<WirePrecision, kNumChannels> wire_{};
};

// ---- template implementations ----

namespace detail {

/// The two tangential axes of `axis`, lower-numbered first (the unit-stride
/// x axis stays innermost whenever it is tangential).
inline void tangential_axes(int axis, int& ta, int& tb) {
  ta = (axis == 0) ? 1 : 0;
  tb = (axis == 2) ? 1 : 2;
}

/// Tangential extent of a halo plane: widened into the ghost region for
/// axes exchanged before `axis` (x,y,z order — the corner-consistency rule).
inline void tangential_range(int t, int axis, int ng, const int nd[3],
                             int& lo, int& hi) {
  lo = (t < axis) ? -ng : 0;
  hi = nd[t] + ((t < axis) ? ng : 0);
}

}  // namespace detail

template <class T>
void Comm::post_axis(int channel, int rank,
                     const common::Field3<T>* const* fields, int nfields,
                     int axis) const {
  fault_on_post();
  const common::Field3<T>& f0 = *fields[0];
  const int ng = f0.ng();
  check_mp_call(rank, ng, "post_axis");
  const int nd[3] = {f0.nx(), f0.ny(), f0.nz()};
  const int n = nd[axis];
  int ta, tb;
  detail::tangential_axes(axis, ta, tb);
  int lo_a, hi_a, lo_b, hi_b;
  detail::tangential_range(ta, axis, ng, nd, lo_a, hi_a);
  detail::tangential_range(tb, axis, ng, nd, lo_b, hi_b);
  const std::size_t plane_area = static_cast<std::size_t>(hi_a - lo_a) *
                                 static_cast<std::size_t>(hi_b - lo_b);
  const int nplanes = published_planes(n, ng);

  const bool narrow =
      sizeof(T) > sizeof(common::half) &&
      wire_[static_cast<std::size_t>(channel)] == WirePrecision::kHalf;
  const std::size_t elems =
      static_cast<std::size_t>(nfields) * nplanes * plane_area;
  auto& buf = transport_->send_buffer(slot(channel, axis, rank));
  buf.resize(elems * (narrow ? sizeof(common::half) : sizeof(T)));

  // Published plane list: the ng-deep slab on each side, or the whole
  // interior for thin blocks (then each plane appears once).  `out` is
  // either the wire buffer itself (full width) or the float staging the
  // batched narrowing lane consumes afterwards.
  auto pack_planes = [&](auto* out) {
    using U = std::remove_reference_t<decltype(*out)>;
    for (int pos = 0; pos < nplanes; ++pos) {
      const int li = published_plane(pos, n, ng);
      for (int c = 0; c < nfields; ++c) {
        const common::Field3<T>& f = *fields[c];
        U* dst = out + (static_cast<std::size_t>(c) * nplanes + pos) *
                           plane_area;
        for (int b = lo_b; b < hi_b; ++b) {
          for (int a = lo_a; a < hi_a; ++a) {
            int cidx[3];
            cidx[axis] = li;
            cidx[ta] = a;
            cidx[tb] = b;
            *dst++ = static_cast<U>(f(cidx[0], cidx[1], cidx[2]));
          }
        }
      }
    }
  };
  if (narrow) {
    // Narrowing wire: stage at float (FP64 payloads narrow through a float
    // intermediate), then one batched float->binary16 conversion into the
    // published buffer.
    auto& stage = scratch_[slot(channel, axis, rank)];
    stage.resize(elems);
    pack_planes(stage.data());
    common::convert_from_float(
        stage.data(), reinterpret_cast<common::half*>(buf.data()), elems);
  } else {
    pack_planes(reinterpret_cast<T*>(buf.data()));
  }

  // Publish: everything packed above happens-before any acquire that
  // observes the advanced epoch (the transport's ordering contract).
  transport_->publish(slot(channel, axis, rank));
}

template <class T>
bool Comm::complete_axis(int channel, int rank,
                         common::Field3<T>* const* fields, int nfields,
                         int axis) const {
  fault_on_complete();
  common::Field3<T>& f0 = *fields[0];
  const int ng = f0.ng();
  check_mp_call(rank, ng, "complete_axis");
  const int nd[3] = {f0.nx(), f0.ny(), f0.nz()};
  const int N = (axis == 0)   ? global_.nx()
                : (axis == 1) ? global_.ny()
                              : global_.nz();
  const auto blk = decomp_.block(rank);
  const auto coords = decomp_.coords_of(rank);
  int ta, tb;
  detail::tangential_axes(axis, ta, tb);
  int lo_a, hi_a, lo_b, hi_b;
  detail::tangential_range(ta, axis, ng, nd, lo_a, hi_a);
  detail::tangential_range(tb, axis, ng, nd, lo_b, hi_b);
  const std::size_t plane_area = static_cast<std::size_t>(hi_a - lo_a) *
                                 static_cast<std::size_t>(hi_b - lo_b);

  // Resolve every ghost plane to (source rank, source local plane).
  // (source_ranks() mirrors this resolution to derive the transport's
  // reader sets — keep the two loops in sync.)
  struct PlaneSrc {
    int dst_plane;  // ghost-plane coordinate in this block
    int src_rank;
    int src_plane;  // interior plane in the source block
  };
  PlaneSrc planes[2 * kMaxGhostDepth];  // 2 sides x ng planes
  if (ng > kMaxGhostDepth)
    throw std::invalid_argument("Comm: ghost depth above kMaxGhostDepth "
                                "unsupported");
  int nplanes_needed = 0;
  int src_ranks[2 * kMaxGhostDepth];
  int nsrc = 0;
  for (int side = 0; side < 2; ++side) {
    for (int g = 0; g < ng; ++g) {
      const int dp = (side == 0) ? -ng + g : nd[axis] + g;
      int G = blk.lo[axis] + dp;
      if (G < 0 || G >= N) {
        if (!decomp_.periodic()) continue;  // physical ghost: BC fill owns it
        G = ((G % N) + N) % N;
      }
      const int oc = decomp_.owner_coord(axis, G);
      int scoord[3] = {coords[0], coords[1], coords[2]};
      scoord[axis] = oc;
      const int sr = decomp_.rank_of(scoord[0], scoord[1], scoord[2]);
      PlaneSrc& p = planes[nplanes_needed++];
      p.dst_plane = dp;
      p.src_rank = sr;
      const auto sblk = decomp_.block(sr);
      p.src_plane = G - sblk.lo[axis];
      bool seen = false;
      for (int s = 0; s < nsrc; ++s) seen = seen || (src_ranks[s] == sr);
      if (!seen) src_ranks[nsrc++] = sr;
    }
  }

  // Wait for every source to publish this rank's current epoch (each rank
  // posts exactly once per scheduled exchange, so its own counter is the
  // schedule position).  The acquired pointers stay valid through the
  // unpack loop below — until the next acquire of the same slot at a
  // higher target (the transport's lifetime contract).
  const std::uint64_t target =
      transport_->posted_epoch(slot(channel, axis, rank));
  const unsigned char* src_data[2 * kMaxGhostDepth] = {};
  // The wait meter brackets exactly the epoch-acquire loop: the time this
  // rank is blocked on peers, separate from the pack above and the unpack
  // below (which are local compute).
  const auto wait_t0 = std::chrono::steady_clock::now();
  bool acquired = true;
  for (int s = 0; s < nsrc; ++s) {
    src_data[s] = transport_->acquire(slot(channel, axis, src_ranks[s]),
                                      target, src_ranks[s]);
    if (src_data[s] == nullptr) {
      acquired = false;
      break;
    }
  }
  const auto waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - wait_t0)
                          .count();
  const auto ax = static_cast<std::size_t>(axis);
  wait_ns_[ax].fetch_add(static_cast<std::uint64_t>(waited),
                         std::memory_order_relaxed);
  wait_epochs_[ax].fetch_add(1, std::memory_order_relaxed);
  if (!acquired) return false;

  const bool narrow =
      sizeof(T) > sizeof(common::half) &&
      wire_[static_cast<std::size_t>(channel)] == WirePrecision::kHalf;
  const std::size_t wire_bytes =
      narrow ? sizeof(common::half) : sizeof(T);
  std::vector<float> widened;
  if (narrow) widened.resize(plane_area);

  // Scatter one unpacked plane span into the ghost layer.
  auto scatter_plane = [&](common::Field3<T>& f, const auto* src,
                           int dst_plane) {
    for (int b = lo_b; b < hi_b; ++b) {
      for (int a = lo_a; a < hi_a; ++a) {
        int cidx[3];
        cidx[axis] = dst_plane;
        cidx[ta] = a;
        cidx[tb] = b;
        f(cidx[0], cidx[1], cidx[2]) = static_cast<T>(*src++);
      }
    }
  };

  std::size_t unpacked = 0;
  for (int p = 0; p < nplanes_needed; ++p) {
    const PlaneSrc& ps = planes[p];
    const auto sblk = decomp_.block(ps.src_rank);
    const int sn = sblk.n[axis];
    const int pos = published_pos(ps.src_plane, sn, ng);
    if (pos < 0)
      throw std::logic_error("Comm: ghost plane maps to an unpublished "
                             "interior plane (decomposition bug)");
    const int snplanes = published_planes(sn, ng);
    int si = 0;
    while (src_ranks[si] != ps.src_rank) ++si;
    const unsigned char* in = src_data[si];
    for (int c = 0; c < nfields; ++c) {
      common::Field3<T>& f = *fields[c];
      const std::size_t span =
          (static_cast<std::size_t>(c) * snplanes + pos) * plane_area;
      if (narrow) {
        // Batched binary16 -> float widening, then a float -> T scatter
        // (identity for FP32; a widening cast for FP64).
        common::convert_to_float(
            reinterpret_cast<const common::half*>(in) + span,
            widened.data(), plane_area);
        scatter_plane(f, widened.data(), ps.dst_plane);
      } else {
        scatter_plane(f, reinterpret_cast<const T*>(in) + span,
                      ps.dst_plane);
      }
    }
    unpacked += static_cast<std::size_t>(nfields) * plane_area * wire_bytes;
  }
  bytes_.fetch_add(unpacked, std::memory_order_relaxed);
  return true;
}

template <class T>
void Comm::exchange_axis(std::vector<common::Field3<T>*>& fields,
                         int axis) const {
  // The per-rank pipeline reports aborts through complete_axis's return
  // value; the collective wrappers have no caller to hand that to, so a
  // poisoned communicator must fail loudly rather than return with stale
  // ghosts.
  if (transport_->multi_process())
    throw std::logic_error(
        "Comm: the collective exchange shims drive every rank from one "
        "thread and are in-process only");
  if (aborted()) {
    std::string msg =
        "Comm: exchange on an aborted communicator (a previous failure "
        "poisoned it)";
    const std::string why = abort_reason();
    if (!why.empty()) msg += ": " + why;
    throw std::runtime_error(msg);
  }
  const int R = ranks();
  for (int r = 0; r < R; ++r) {
    const common::Field3<T>* f = fields[static_cast<std::size_t>(r)];
    post_axis(kChanGeneral, r, &f, 1, axis);
  }
  for (int r = 0; r < R; ++r) {
    common::Field3<T>* f = fields[static_cast<std::size_t>(r)];
    if (!complete_axis(kChanGeneral, r, &f, 1, axis))
      throw std::runtime_error(
          "Comm: exchange aborted mid-collective; ghost layers are "
          "incomplete");
  }
}

template <class T>
void Comm::exchange(std::vector<common::Field3<T>*> fields) const {
  for (int axis = 0; axis < 3; ++axis) exchange_axis(fields, axis);
}

template <class T>
void Comm::exchange_state(
    std::vector<common::StateField3<T>*> states) const {
  for (int c = 0; c < common::kNumVars; ++c) {
    std::vector<common::Field3<T>*> comp;
    comp.reserve(states.size());
    for (auto* s : states) comp.push_back(&(*s)[c]);
    // One full axis sweep per component keeps the per-component ordering
    // identical to the single-domain fill.
    for (int axis = 0; axis < 3; ++axis) exchange_axis(comp, axis);
  }
}

}  // namespace igr::sim
