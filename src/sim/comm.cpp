#include "sim/comm.hpp"

#include <algorithm>
#include <stdexcept>

namespace igr::sim {

Comm::Comm(const mesh::Grid& global, int rx, int ry, int rz, bool periodic)
    : global_(global), decomp_(global_, rx, ry, rz, periodic) {}

mesh::Grid Comm::local_grid(int rank) const {
  const auto b = decomp_.block(rank);
  const double x0 = global_.x0() + b.lo[0] * global_.dx();
  const double y0 = global_.y0() + b.lo[1] * global_.dy();
  const double z0 = global_.z0() + b.lo[2] * global_.dz();
  return mesh::Grid(b.n[0], b.n[1], b.n[2],
                    {x0, x0 + b.n[0] * global_.dx()},
                    {y0, y0 + b.n[1] * global_.dy()},
                    {z0, z0 + b.n[2] * global_.dz()});
}

double Comm::allreduce_min(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("allreduce_min: empty");
  return *std::min_element(v.begin(), v.end());
}

}  // namespace igr::sim
