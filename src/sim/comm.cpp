#include "sim/comm.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/fault.hpp"

namespace igr::sim {

Comm::Comm(const mesh::Grid& global, int rx, int ry, int rz, bool periodic)
    : global_(global), decomp_(global_, rx, ry, rz, periodic) {
  const std::size_t slots =
      static_cast<std::size_t>(kNumChannels) * 3 *
      static_cast<std::size_t>(decomp_.ranks());
  epochs_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
  for (std::size_t s = 0; s < slots; ++s) epochs_[s].store(0);
  buffers_.resize(slots);
  scratch_.resize(slots);
}

mesh::Grid Comm::local_grid(int rank) const {
  // A window shares the global spacing bitwise and evaluates cell centers
  // at the global positions — recomputing local extents would round the
  // spacing whenever dx is not exactly representable, silently breaking
  // decomposed-vs-single-domain bitwise equivalence on non-power-of-two
  // grids.
  const auto b = decomp_.block(rank);
  return mesh::Grid::window(global_, b.lo, b.n);
}

void Comm::validate_driver_decomp(int ng) const {
  if (ng > kMaxGhostDepth)
    throw std::invalid_argument("Comm: ghost depth above kMaxGhostDepth "
                                "unsupported");
  if (decomp_.periodic()) return;  // multi-hop covers every interior plane
  const int cells[3] = {global_.nx(), global_.ny(), global_.nz()};
  const auto layout = decomp_.layout();
  for (int axis = 0; axis < 3; ++axis) {
    for (int r = 0; r < decomp_.ranks(); ++r) {
      const auto b = decomp_.block(r);
      const int lo = b.lo[axis];
      const int hi = lo + b.n[axis];
      const int gap_hi = cells[axis] - hi;
      if ((lo != 0 && lo < ng) || (gap_hi != 0 && gap_hi < ng)) {
        throw std::invalid_argument(
            "Comm: non-periodic decomposition places a block within " +
            std::to_string(ng) + " cells of a physical boundary without " +
            "touching it (axis " + std::to_string(axis) + ", layout " +
            std::to_string(layout[0]) + "x" + std::to_string(layout[1]) +
            "x" + std::to_string(layout[2]) +
            "); its ghost planes would be neither exchanged nor BC-filled");
      }
    }
  }
}

bool Comm::wait_epoch(std::size_t s, std::uint64_t target) const {
  // Yield-spin rather than std::atomic::wait: an abort must wake waiters but
  // does not change the epoch value, and a notify that lands between a
  // waiter's abort check and its blocking wait would be lost.  Exchange
  // waits are short (rank imbalance within one phase), so yielding is cheap
  // and keeps oversubscribed single-core runs from burning the timeslice.
  //
  // A configured wait timeout bounds the spin: a peer that died without its
  // unwind reaching abort_exchanges (or an external kill) would otherwise
  // hang every waiter forever.  The clock is consulted only every 1024
  // yields so the healthy path stays a pair of atomic loads.
  auto& e = epochs_[s];
  const double bound = wait_timeout_s_;
  std::chrono::steady_clock::time_point deadline{};
  bool deadline_set = false;
  int spins = 0;
  while (e.load(std::memory_order_acquire) < target) {
    if (abort_.load(std::memory_order_relaxed)) return false;
    if (bound > 0.0 && ++spins >= 1024) {
      spins = 0;
      const auto now = std::chrono::steady_clock::now();
      if (!deadline_set) {
        deadline = now + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(bound));
        deadline_set = true;
      } else if (now >= deadline) {
        abort_exchanges("halo wait exceeded " + std::to_string(bound) +
                        "s (peer rank never posted — dead or wedged)");
        return false;
      }
    }
    std::this_thread::yield();
  }
  return true;
}

void Comm::abort_exchanges(const std::string& reason) const {
  if (!reason.empty()) {
    std::lock_guard<std::mutex> lock(reason_mu_);
    if (abort_reason_.empty()) abort_reason_ = reason;  // first reason wins
  }
  abort_.store(true, std::memory_order_relaxed);
}

std::string Comm::abort_reason() const {
  std::lock_guard<std::mutex> lock(reason_mu_);
  return abort_reason_;
}

void Comm::fault_on_post() const {
  if (fault_) fault_->on_comm_post();
}

void Comm::fault_on_complete() const {
  if (fault_) fault_->on_comm_complete();
}

double Comm::allreduce_min(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("allreduce_min: empty");
  return *std::min_element(v.begin(), v.end());
}

}  // namespace igr::sim
