#include "sim/comm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/fault.hpp"

namespace igr::sim {

Comm::Comm(const mesh::Grid& global, int rx, int ry, int rz, bool periodic,
           TransportSpec spec)
    : global_(global),
      decomp_(global_, rx, ry, rz, periodic),
      spec_(spec) {
  const std::size_t slots =
      static_cast<std::size_t>(kNumChannels) * 3 *
      static_cast<std::size_t>(decomp_.ranks());
  if (spec_.kind == TransportSpec::Kind::kTcp) {
    if (spec_.world != decomp_.ranks())
      throw TransportError(
          "Comm: tcp transport world of " + std::to_string(spec_.world) +
          " does not match the " + std::to_string(decomp_.ranks()) +
          "-rank decomposition");
    mp_ng_ = spec_.ghost_depth;
    if (mp_ng_ < 1 || mp_ng_ > kMaxGhostDepth)
      throw TransportError("Comm: tcp ghost_depth out of range");
    // Invert the ghost-plane source resolution into per-axis reader sets:
    // the fixed set of peers every publish along an axis is pushed to.
    // Both sides of the relation come from source_ranks(), so a published
    // slot reaches exactly the ranks whose complete_axis will await it —
    // which keeps the per-slot sequence numbers in lockstep with the
    // senders' post counts.
    std::array<std::vector<int>, 3> readers;
    for (int axis = 0; axis < 3; ++axis) {
      for (int r = 0; r < decomp_.ranks(); ++r) {
        if (r == spec_.rank) continue;  // self-reads use the local buffer
        int srcs[2 * kMaxGhostDepth];
        const int n = source_ranks(r, axis, mp_ng_, srcs);
        for (int s = 0; s < n; ++s) {
          if (srcs[s] == spec_.rank) {
            readers[static_cast<std::size_t>(axis)].push_back(r);
            break;
          }
        }
      }
    }
    transport_ = make_tcp_transport(spec_, slots, readers);
  } else {
    transport_ = std::make_unique<InProcTransport>(slots);
  }
  scratch_.resize(slots);
}

mesh::Grid Comm::local_grid(int rank) const {
  // A window shares the global spacing bitwise and evaluates cell centers
  // at the global positions — recomputing local extents would round the
  // spacing whenever dx is not exactly representable, silently breaking
  // decomposed-vs-single-domain bitwise equivalence on non-power-of-two
  // grids.
  const auto b = decomp_.block(rank);
  return mesh::Grid::window(global_, b.lo, b.n);
}

void Comm::validate_driver_decomp(int ng) const {
  if (ng > kMaxGhostDepth)
    throw std::invalid_argument("Comm: ghost depth above kMaxGhostDepth "
                                "unsupported");
  if (decomp_.periodic()) return;  // multi-hop covers every interior plane
  const int cells[3] = {global_.nx(), global_.ny(), global_.nz()};
  const auto layout = decomp_.layout();
  for (int axis = 0; axis < 3; ++axis) {
    for (int r = 0; r < decomp_.ranks(); ++r) {
      const auto b = decomp_.block(r);
      const int lo = b.lo[axis];
      const int hi = lo + b.n[axis];
      const int gap_hi = cells[axis] - hi;
      if ((lo != 0 && lo < ng) || (gap_hi != 0 && gap_hi < ng)) {
        throw std::invalid_argument(
            "Comm: non-periodic decomposition places a block within " +
            std::to_string(ng) + " cells of a physical boundary without " +
            "touching it (axis " + std::to_string(axis) + ", layout " +
            std::to_string(layout[0]) + "x" + std::to_string(layout[1]) +
            "x" + std::to_string(layout[2]) +
            "); its ghost planes would be neither exchanged nor BC-filled");
      }
    }
  }
}

void Comm::check_mp_call(int rank, int ng, const char* what) const {
  if (!transport_->multi_process()) return;
  if (rank != transport_->local_rank())
    throw std::logic_error(
        std::string("Comm::") + what + ": rank " + std::to_string(rank) +
        " is not local to this process (multi-process transports drive "
        "exactly one rank per process)");
  if (ng != mp_ng_)
    throw std::invalid_argument(
        std::string("Comm::") + what + ": ghost depth " +
        std::to_string(ng) + " does not match the transport's reader sets "
        "(derived for depth " + std::to_string(mp_ng_) + ")");
}

int Comm::source_ranks(int rank, int axis, int ng,
                       int out[2 * kMaxGhostDepth]) const {
  const int N = (axis == 0)   ? global_.nx()
                : (axis == 1) ? global_.ny()
                              : global_.nz();
  const auto blk = decomp_.block(rank);
  const auto coords = decomp_.coords_of(rank);
  int nsrc = 0;
  for (int side = 0; side < 2; ++side) {
    for (int g = 0; g < ng; ++g) {
      const int dp = (side == 0) ? -ng + g : blk.n[axis] + g;
      int G = blk.lo[axis] + dp;
      if (G < 0 || G >= N) {
        if (!decomp_.periodic()) continue;  // physical ghost: BC fill owns it
        G = ((G % N) + N) % N;
      }
      const int oc = decomp_.owner_coord(axis, G);
      int scoord[3] = {coords[0], coords[1], coords[2]};
      scoord[axis] = oc;
      const int sr = decomp_.rank_of(scoord[0], scoord[1], scoord[2]);
      bool seen = false;
      for (int s = 0; s < nsrc; ++s) seen = seen || (out[s] == sr);
      if (!seen) out[nsrc++] = sr;
    }
  }
  return nsrc;
}

void Comm::fault_on_post() const {
  if (fault_) fault_->on_comm_post();
}

void Comm::fault_on_complete() const {
  if (fault_) fault_->on_comm_complete();
}

double Comm::allreduce_min(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("allreduce_min: empty");
  return *std::min_element(v.begin(), v.end());
}

}  // namespace igr::sim
