#pragma once
/// \file distributed_igr.hpp
/// Rank-parallel decomposed IGR stepping over the simulated communicator.
///
/// Each rank owns an IgrSolver3D on its block and runs on its own worker
/// thread (sim::RankTeam); the driver executes every phase of the RHS as a
/// barrier-delimited SPMD phase across ranks, exchanging halos exactly where
/// a production MPI code would:
///   - state ghosts once per RK stage,
///   - Sigma ghosts before every relaxation sweep (the elliptic solve is the
///     only globally coupled kernel in the scheme),
///   - a dt allreduce per step.
/// Within a phase, ranks synchronize pairwise through Comm's posted-epoch
/// halo pipeline (post / compute / complete), and both ends of each RHS
/// hide a halo behind compute: the state z-exchange overlaps the interior
/// Sigma-source build (DistOptions::overlap_state), and the final Sigma
/// exchange overlaps the interior flux sweeps (DistOptions::overlap_halo) —
/// a rank posts its faces, computes every line that touches no in-flight
/// ghost, completes the exchange, then finishes the boundary shell.  The
/// state and Sigma channels can additionally narrow their wire payload to
/// binary16 (DistOptions::halo_wire), halving FP32 halo bytes.
///
/// With Jacobi sweeps the decomposed run is *bitwise identical* to the
/// single-domain run — independent of rank layout, of parallel vs. inline
/// execution, and of the overlap split (test-enforced, including dt).  With
/// Gauss–Seidel the block-local sweeps use previous-sweep halo values (block
/// Gauss–Seidel), which converges to the same Sigma but is not bitwise equal
/// — the same trade production codes make.

#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"
#include "core/igr_solver3d.hpp"
#include "fv/cfl.hpp"
#include "sim/comm.hpp"
#include "sim/fault.hpp"
#include "sim/rank_team.hpp"

namespace igr::sim {

/// Execution options for the rank-parallel driver.
struct DistOptions {
  /// One worker thread per rank with phase barriers (the production mode).
  /// false: run every phase inline on the calling thread, rank by rank —
  /// the lockstep reference schedule the concurrent one is validated
  /// against bitwise.
  bool parallel = true;
  /// Execution-space width of each rank's kernels (0 = divide the hardware
  /// evenly across ranks).  Scaling benches pin this to 1 so speedup
  /// measures rank parallelism alone.  A positive value is lowered into
  /// each rank solver's SolverConfig::exec_threads; 0 leaves the solvers
  /// on ambient width, which each worker thread pins to hw/ranks (OpenMP
  /// builds only).  It has no effect in inline (parallel = false) mode —
  /// there the kernels run under the calling thread's ambient settings,
  /// which this driver deliberately never mutates.
  int threads_per_rank = 0;
  /// Overlap interior flux sweeps with the in-flight final Sigma exchange
  /// (parallel mode only; results are bitwise identical either way).
  bool overlap_halo = true;
  /// Overlap each RK stage's final (z) state exchange with the interior
  /// Sigma-source build — the source at planes 1..nz-2 reads no z ghost, so
  /// it computes while the halo moves (parallel mode only; bitwise
  /// identical either way, test-enforced).
  bool overlap_state = true;
  /// Wire encoding of the state and Sigma halo channels (see
  /// Comm::WirePrecision).  kHalf halves FP32 halo traffic and quarters
  /// FP64's; 16-bit storage is already at wire width, so there it is a
  /// bitwise no-op.
  Comm::WirePrecision halo_wire = Comm::WirePrecision::kFull;
  /// Fault injector wired into the communicator and every phase callback
  /// (nullptr: no injection).  Must outlive the driver — the case runner
  /// keeps one injector across rollback rebuilds so counters persist.
  FaultInjector* fault = nullptr;
  /// Bound on any single halo wait before the exchange self-aborts (a peer
  /// that dies without unwinding would otherwise deadlock its neighbors).
  /// <= 0 disables the bound.
  double comm_timeout_s = 60.0;
  /// Transport behind the Comm seam.  The default in-process backend runs
  /// every rank in this process (one worker thread each); kTcp makes this
  /// process own exactly `transport.rank`, exchanging with peer processes
  /// over loopback sockets — then gather/scatter become collectives and
  /// only the IO root assembles global fields.
  TransportSpec transport{};
};

/// Blob tags of the gather-to-root collectives (Transport::send_blob
/// matching is (sender, tag, call order); every process runs the same
/// gather schedule, so the order is deterministic).
inline constexpr int kBlobTagState = 1;
inline constexpr int kBlobTagSigma = 2;

template <class Policy>
class DistributedIgr {
 public:
  using S = typename Policy::storage_t;
  static constexpr int kNg = 3;  ///< Ghost depth of every solver field.

  DistributedIgr(const mesh::Grid& global, int rx, int ry, int rz,
                 const common::SolverConfig& cfg, const fv::BcSpec& bc,
                 fv::ReconScheme recon = fv::ReconScheme::kFifth,
                 DistOptions opts = {})
      : comm_(global, rx, ry, rz, is_periodic(bc), opts.transport),
        cfg_(cfg),
        bc_(bc),
        sigma_bc_(core::sigma_bc_from(bc)),
        opts_(opts) {
    comm_.validate_driver_decomp(kNg);
    comm_.set_fault_injector(opts_.fault);
    comm_.set_wait_timeout(opts_.comm_timeout_s);
    comm_.set_wire(Comm::kChanState, opts_.halo_wire);
    comm_.set_wire(Comm::kChanSigma, opts_.halo_wire);
    // The ranks this process drives: all of them in-process, exactly one
    // per process over a multi-process transport.
    if (comm_.multi_process()) {
      local_ranks_ = {comm_.transport().local_rank()};
    } else {
      for (int r = 0; r < comm_.ranks(); ++r) local_ranks_.push_back(r);
    }
    // threads_per_rank becomes each rank solver's exec-space width.  0
    // (divide evenly) stays ambient: the worker threads pin the OpenMP
    // width to hw/ranks, and non-OpenMP builds fall back to serial, which
    // keeps rank parallelism as the only concurrency in that case.
    common::SolverConfig rank_cfg = cfg;
    if (opts_.parallel && opts_.threads_per_rank > 0)
      rank_cfg.exec_threads = opts_.threads_per_rank;
    for (const int r : local_ranks_) {
      ranks_.emplace_back(std::make_unique<core::IgrSolver3D<Policy>>(
          comm_.local_grid(r), rank_cfg, bc, recon));
    }
    team_ = std::make_unique<RankTeam>(
        static_cast<int>(local_ranks_.size()), opts_.parallel,
        opts_.threads_per_rank, comm_.ranks());
    dts_.resize(local_ranks_.size());
    grind_.set_cells_per_step(comm_.global_grid().cells());
  }

  void init(const core::PrimFn& prim) {
    for (auto& s : ranks_) s->init(prim);
  }

  /// One step at the globally reduced CFL dt; returns dt.
  double step() {
    run_phase([this](int r) {
      auto& s = solver(r);
      // Warm-start Sigma feeds the wave-speed bound, exactly as the
      // single-domain step() does; the cell-wise max/min reductions inside
      // compute_dt decompose exactly, so the allreduced dt is bitwise the
      // single-domain dt under Jacobi sweeps.
      dts_[local_index(r)] =
          fv::compute_dt(s.state(), s.grid(), s.eos(), s.config(), &s.sigma());
    });
    // Local min over this process's ranks, then the cross-process min.
    // min is associative and exact, so the composition is bitwise the
    // single-domain reduction (in-process the global step is an identity).
    const double dt = comm_.allreduce_min_global(Comm::allreduce_min(dts_));
    step_fixed(dt);
    return dt;
  }

  void step_fixed(double dt) {
    grind_.begin_step();
    run_phase([this](int r) { solver(r).begin_step(); });
    const bool sigma_active = cfg_.sigma_sweeps > 0 && cfg_.alpha_factor > 0.0;
    for (const auto& st : fv::kRk3Stages) {
      if (sigma_active) {
        refresh_state_and_build_source();
        for (int sw = 0; sw < cfg_.sigma_sweeps; ++sw) {
          refresh_sigma_ghosts();
          run_phase([this](int r) {
            auto& s = solver(r);
            s.sigma_sweep(s.stage_field());
          });
        }
        final_sigma_and_fluxes();
      } else {
        refresh_state_ghosts();
        run_phase([this](int r) {
          auto& s = solver(r);
          s.compute_fluxes(s.stage_field(), s.rhs_field());
        });
      }
      run_phase([this, &st, dt](int r) { solver(r).rk_update(st, dt); });
    }
    run_phase([this, dt](int r) { solver(r).finish_step(dt); });
    time_ += dt;
    grind_.end_step();
  }

  /// Assemble the global conservative state (for comparison against a
  /// single-domain run and for output).  In-process this walks every rank
  /// directly; over a multi-process transport it is a *collective*
  /// gather-to-root — every process must call it in the same schedule
  /// position, non-root processes ship their block to rank 0 and return a
  /// 1-cell placeholder (callers gate global reads on is_root()).
  [[nodiscard]] common::StateField3<S> gather() const {
    if (comm_.multi_process() && !comm_.is_root()) {
      send_block_to_root(ranks_[0]->state(), common::kNumVars,
                         kBlobTagState);
      return common::StateField3<S>(1, 1, 1, 0);
    }
    const auto& g = comm_.global_grid();
    common::StateField3<S> out(g.nx(), g.ny(), g.nz(), kNg);
    for (const int r : local_ranks_) {
      const auto b = comm_.decomp().block(r);
      const auto& q = solver_const(r).state();
      for (int c = 0; c < common::kNumVars; ++c) {
        for (int k = 0; k < b.n[2]; ++k)
          for (int j = 0; j < b.n[1]; ++j)
            for (int i = 0; i < b.n[0]; ++i)
              out[c](b.lo[0] + i, b.lo[1] + j, b.lo[2] + k) = q[c](i, j, k);
      }
    }
    if (comm_.multi_process()) {
      for (int r = 0; r < comm_.ranks(); ++r) {
        if (r == local_ranks_[0]) continue;
        receive_block(out, r, common::kNumVars, kBlobTagState);
      }
    }
    return out;
  }

  /// Assemble the global Sigma field (output/diagnostics).  Collective
  /// over multi-process transports, like gather().
  [[nodiscard]] common::Field3<S> gather_sigma() const {
    if (comm_.multi_process() && !comm_.is_root()) {
      send_field_to_root(ranks_[0]->sigma(), kBlobTagSigma);
      return common::Field3<S>(1, 1, 1, 0);
    }
    const auto& g = comm_.global_grid();
    common::Field3<S> out(g.nx(), g.ny(), g.nz(), kNg);
    for (const int r : local_ranks_) {
      const auto b = comm_.decomp().block(r);
      const auto& sig = solver_const(r).sigma();
      for (int k = 0; k < b.n[2]; ++k)
        for (int j = 0; j < b.n[1]; ++j)
          for (int i = 0; i < b.n[0]; ++i)
            out(b.lo[0] + i, b.lo[1] + j, b.lo[2] + k) = sig(i, j, k);
    }
    if (comm_.multi_process()) {
      for (int r = 0; r < comm_.ranks(); ++r) {
        if (r == local_ranks_[0]) continue;
        receive_field(out, r, kBlobTagSigma);
      }
    }
    return out;
  }

  /// Distribute a global conservative state over the rank blocks — the
  /// restart inverse of gather().  Only interiors are written; ghosts are
  /// refilled by the next step's exchange + BC fill, exactly as after
  /// init().  Each rank's cached dt is invalidated (the cache belonged to
  /// the pre-scatter state).
  void scatter(const common::StateField3<S>& global) {
    check_global_shape(global.nx(), global.ny(), global.nz(), "scatter");
    for (const int r : local_ranks_) {
      const auto b = comm_.decomp().block(r);
      auto& s = solver(r);
      auto& q = s.state();
      for (int c = 0; c < common::kNumVars; ++c) {
        for (int k = 0; k < b.n[2]; ++k)
          for (int j = 0; j < b.n[1]; ++j)
            for (int i = 0; i < b.n[0]; ++i)
              q[c](i, j, k) = global[c](b.lo[0] + i, b.lo[1] + j, b.lo[2] + k);
      }
      s.invalidate_dt_cache();
    }
  }

  /// Distribute a global Sigma field (restart warm start) — inverse of
  /// gather_sigma().
  void scatter_sigma(const common::Field3<S>& global) {
    check_global_shape(global.nx(), global.ny(), global.nz(),
                       "scatter_sigma");
    for (const int r : local_ranks_) {
      const auto b = comm_.decomp().block(r);
      auto& s = solver(r);
      auto& sig = s.sigma_field();
      for (int k = 0; k < b.n[2]; ++k)
        for (int j = 0; j < b.n[1]; ++j)
          for (int i = 0; i < b.n[0]; ++i)
            sig(i, j, k) = global(b.lo[0] + i, b.lo[1] + j, b.lo[2] + k);
      s.invalidate_dt_cache();
    }
  }

  /// Reset simulated time on the driver and every rank (restart).
  void set_time(double t) {
    time_ = t;
    for (auto& s : ranks_) s->set_time(t);
  }

  [[nodiscard]] const Comm& comm() const { return comm_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] const DistOptions& options() const { return opts_; }
  [[nodiscard]] common::GrindTimer& grind_timer() { return grind_; }
  /// Solver of global rank `r` — must be local to this process.
  [[nodiscard]] core::IgrSolver3D<Policy>& rank(int r) { return solver(r); }
  /// Global rank ids this process drives (all of them in-process).
  [[nodiscard]] const std::vector<int>& local_ranks() const {
    return local_ranks_;
  }
  [[nodiscard]] bool multi_process() const { return comm_.multi_process(); }
  [[nodiscard]] bool is_root() const { return comm_.is_root(); }
  /// Persistent field storage summed over this process's ranks (the §5.4
  /// footprint metric; in multi-process mode each process reports only its
  /// own share).
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t b = 0;
    for (const auto& s : ranks_) b += s->memory_bytes();
    return b;
  }

 private:
  [[nodiscard]] std::size_t local_index(int global_rank) const {
    for (std::size_t i = 0; i < local_ranks_.size(); ++i) {
      if (local_ranks_[i] == global_rank) return i;
    }
    throw std::logic_error("DistributedIgr: rank " +
                           std::to_string(global_rank) +
                           " is not local to this process");
  }
  [[nodiscard]] core::IgrSolver3D<Policy>& solver(int global_rank) {
    return *ranks_[local_index(global_rank)];
  }
  [[nodiscard]] const core::IgrSolver3D<Policy>& solver_const(
      int global_rank) const {
    return *ranks_[local_index(global_rank)];
  }

  // --- gather/scatter block packing (multi-process collectives) ---------

  static S* pack_block(const common::Field3<S>& f, const int* n, S* p) {
    for (int k = 0; k < n[2]; ++k)
      for (int j = 0; j < n[1]; ++j)
        for (int i = 0; i < n[0]; ++i) *p++ = f(i, j, k);
    return p;
  }

  void send_field_to_root(const common::Field3<S>& f, int tag) const {
    const auto b = comm_.decomp().block(local_ranks_[0]);
    const std::size_t cells = static_cast<std::size_t>(b.n[0]) *
                              static_cast<std::size_t>(b.n[1]) *
                              static_cast<std::size_t>(b.n[2]);
    std::vector<unsigned char> blob(cells * sizeof(S));
    pack_block(f, b.n.data(), reinterpret_cast<S*>(blob.data()));
    comm_.transport().send_blob(0, tag, blob.data(), blob.size());
  }

  void send_block_to_root(const common::StateField3<S>& q, int ncomp,
                          int tag) const {
    const auto b = comm_.decomp().block(local_ranks_[0]);
    const std::size_t cells = static_cast<std::size_t>(b.n[0]) *
                              static_cast<std::size_t>(b.n[1]) *
                              static_cast<std::size_t>(b.n[2]);
    std::vector<unsigned char> blob(static_cast<std::size_t>(ncomp) * cells *
                                    sizeof(S));
    S* p = reinterpret_cast<S*>(blob.data());
    for (int c = 0; c < ncomp; ++c) p = pack_block(q[c], b.n.data(), p);
    comm_.transport().send_blob(0, tag, blob.data(), blob.size());
  }

  void receive_field(common::Field3<S>& out, int r, int tag) const {
    const auto b = comm_.decomp().block(r);
    const std::size_t cells = static_cast<std::size_t>(b.n[0]) *
                              static_cast<std::size_t>(b.n[1]) *
                              static_cast<std::size_t>(b.n[2]);
    const auto blob = comm_.transport().recv_blob(r, tag);
    if (blob.size() != cells * sizeof(S))
      throw TransportError("DistributedIgr: gather blob from rank " +
                           std::to_string(r) + " has the wrong size");
    const S* p = reinterpret_cast<const S*>(blob.data());
    for (int k = 0; k < b.n[2]; ++k)
      for (int j = 0; j < b.n[1]; ++j)
        for (int i = 0; i < b.n[0]; ++i)
          out(b.lo[0] + i, b.lo[1] + j, b.lo[2] + k) = *p++;
  }

  void receive_block(common::StateField3<S>& out, int r, int ncomp,
                     int tag) const {
    const auto b = comm_.decomp().block(r);
    const std::size_t cells = static_cast<std::size_t>(b.n[0]) *
                              static_cast<std::size_t>(b.n[1]) *
                              static_cast<std::size_t>(b.n[2]);
    const auto blob = comm_.transport().recv_blob(r, tag);
    if (blob.size() != static_cast<std::size_t>(ncomp) * cells * sizeof(S))
      throw TransportError("DistributedIgr: gather blob from rank " +
                           std::to_string(r) + " has the wrong size");
    const S* p = reinterpret_cast<const S*>(blob.data());
    for (int c = 0; c < ncomp; ++c) {
      for (int k = 0; k < b.n[2]; ++k)
        for (int j = 0; j < b.n[1]; ++j)
          for (int i = 0; i < b.n[0]; ++i)
            out[c](b.lo[0] + i, b.lo[1] + j, b.lo[2] + k) = *p++;
    }
  }

  void check_global_shape(int nx, int ny, int nz, const char* what) const {
    const auto& g = comm_.global_grid();
    if (nx != g.nx() || ny != g.ny() || nz != g.nz())
      throw std::invalid_argument(
          std::string("DistributedIgr::") + what +
          ": global field shape does not match the decomposed grid");
  }

  static bool is_periodic(const fv::BcSpec& bc) {
    for (auto k : bc.kind)
      if (k != fv::BcKind::kPeriodic) return false;
    return true;
  }

  /// Run one SPMD phase over this process's ranks (the phase callback
  /// receives *global* rank ids).  A rank that throws aborts the
  /// communicator first so no peer waits forever on its unposted halos.
  /// The abort latches: once any phase failed, exchanges (and hence ghost
  /// contents) are undefined, so every later phase refuses loudly instead
  /// of silently stepping on corrupt halos.
  template <class Fn>
  void run_phase(Fn&& fn) {
    if (comm_.aborted()) {
      std::string msg =
          "DistributedIgr: a previous phase failed and poisoned the "
          "communicator; the decomposed state is no longer consistent";
      const std::string why = comm_.abort_reason();
      if (!why.empty()) msg += " (" + why + ")";
      throw std::runtime_error(msg);
    }
    team_->run([this, &fn](int li) {
      const int r = local_ranks_[static_cast<std::size_t>(li)];
      try {
        if (opts_.fault) opts_.fault->on_phase(r);
        fn(r);
      } catch (const std::exception& e) {
        comm_.abort_exchanges(e.what());
        throw;
      } catch (...) {
        comm_.abort_exchanges();
        throw;
      }
    });
  }

  [[nodiscard]] std::array<common::Field3<S>*, common::kNumVars> state_comps(
      int r) {
    auto& q = solver(r).stage_field();
    std::array<common::Field3<S>*, common::kNumVars> c{};
    for (int v = 0; v < common::kNumVars; ++v) c[static_cast<std::size_t>(v)] = &q[v];
    return c;
  }

  void fill_state_bc_axis(int r, int axis) {
    auto& s = solver(r);
    fv::apply_bc_axis(s.stage_field(), bc_, s.grid(), s.eos(), axis,
                      physical_sides(r, axis));
  }

  void fill_sigma_bc_axis(int r, int axis) {
    const auto sides = physical_sides(r, axis);
    if (sides[0] || sides[1]) {
      // Per-face kinds derived from the state BC: Sigma wraps across the
      // periodic faces and clamps elsewhere, matching the single-domain
      // solver's sigma_bc_from(bc_) exactly (decomposition cannot change
      // the ghost kind a face sees).
      core::fill_sigma_ghosts_axis(solver(r).sigma_field(), sigma_bc_, axis,
                                   sides);
    }
  }

  /// Physical-face fill + interior-face exchange, interleaved per axis in
  /// the same x,y,z order as the single-domain ghost fill.
  void refresh_state_ghosts() {
    if (team_->parallel()) {
      run_phase([this](int r) {
        auto comps = state_comps(r);
        for (int axis = 0; axis < 3; ++axis) {
          fill_state_bc_axis(r, axis);
          comm_.post_axis(Comm::kChanState, r, comps.data(),
                          common::kNumVars, axis);
          if (!comm_.complete_axis(Comm::kChanState, r, comps.data(),
                                   common::kNumVars, axis))
            return;
        }
      });
    } else {
      for (int axis = 0; axis < 3; ++axis) {
        for (const int r : local_ranks_) fill_state_bc_axis(r, axis);
        for (const int r : local_ranks_) {
          auto comps = state_comps(r);
          comm_.post_axis(Comm::kChanState, r, comps.data(),
                          common::kNumVars, axis);
        }
        for (const int r : local_ranks_) {
          auto comps = state_comps(r);
          comm_.complete_axis(Comm::kChanState, r, comps.data(),
                              common::kNumVars, axis);
        }
      }
    }
  }

  /// State ghost refresh + Sigma source build, with the z exchange of the
  /// state overlapped by the source build's interior planes (which read no
  /// z ghost).  The non-overlapped composition — full refresh, then full
  /// build — is the bitwise reference: interior and boundary builds are
  /// pure per-point maps over disjoint plane sets, so the split cannot
  /// change a bit (test-enforced).
  void refresh_state_and_build_source() {
    if (team_->parallel() && opts_.overlap_state) {
      run_phase([this](int r) {
        auto& s = solver(r);
        auto comps = state_comps(r);
        for (int axis = 0; axis < 2; ++axis) {
          fill_state_bc_axis(r, axis);
          comm_.post_axis(Comm::kChanState, r, comps.data(),
                          common::kNumVars, axis);
          if (!comm_.complete_axis(Comm::kChanState, r, comps.data(),
                                   common::kNumVars, axis))
            return;
        }
        fill_state_bc_axis(r, 2);
        comm_.post_axis(Comm::kChanState, r, comps.data(), common::kNumVars,
                        2);
        s.build_sigma_source_interior(s.stage_field());
        if (!comm_.complete_axis(Comm::kChanState, r, comps.data(),
                                 common::kNumVars, 2))
          return;
        s.build_sigma_source_boundary(s.stage_field());
      });
    } else {
      refresh_state_ghosts();
      run_phase([this](int r) {
        auto& s = solver(r);
        s.build_sigma_source(s.stage_field());
      });
    }
  }

  void refresh_sigma_ghosts() {
    if (team_->parallel()) {
      run_phase([this](int r) { sigma_ghost_phase(r, /*axes=*/3); });
    } else {
      refresh_sigma_ghosts_lockstep();
    }
  }

  void refresh_sigma_ghosts_lockstep() {
    for (int axis = 0; axis < 3; ++axis) {
      for (const int r : local_ranks_) fill_sigma_bc_axis(r, axis);
      for (const int r : local_ranks_) {
        common::Field3<S>* sig = &solver(r).sigma_field();
        comm_.post_axis(Comm::kChanSigma, r, &sig, 1, axis);
      }
      for (const int r : local_ranks_) {
        common::Field3<S>* sig = &solver(r).sigma_field();
        comm_.complete_axis(Comm::kChanSigma, r, &sig, 1, axis);
      }
    }
  }

  /// Sigma bc-fill + post + complete for axes [0, axes); returns false on
  /// an aborted exchange.
  bool sigma_ghost_phase(int r, int axes) {
    common::Field3<S>* sig = &solver(r).sigma_field();
    for (int axis = 0; axis < axes; ++axis) {
      fill_sigma_bc_axis(r, axis);
      comm_.post_axis(Comm::kChanSigma, r, &sig, 1, axis);
      if (!comm_.complete_axis(Comm::kChanSigma, r, &sig, 1, axis))
        return false;
    }
    return true;
  }

  /// Final Sigma ghost refresh of an RHS evaluation, with the flux sweeps
  /// overlapping the last axis' in-flight exchange: post the z faces, run
  /// every interior flux line (no ghost reads), then complete and finish
  /// the boundary shell.
  void final_sigma_and_fluxes() {
    if (team_->parallel()) {
      run_phase([this](int r) {
        auto& s = solver(r);
        if (!sigma_ghost_phase(r, /*axes=*/2)) return;
        common::Field3<S>* sig = &s.sigma_field();
        fill_sigma_bc_axis(r, 2);
        comm_.post_axis(Comm::kChanSigma, r, &sig, 1, 2);
        if (opts_.overlap_halo) {
          // Only the z exchange is in flight, so only z is shaved from the
          // interior: every cell >= 3 planes off the z faces computes while
          // the halo moves, and just the two z slabs wait for completion.
          s.compute_fluxes_interior(s.stage_field(), s.rhs_field(), 2);
          if (!comm_.complete_axis(Comm::kChanSigma, r, &sig, 1, 2)) return;
          s.compute_fluxes_boundary(s.stage_field(), s.rhs_field(), 2);
        } else {
          if (!comm_.complete_axis(Comm::kChanSigma, r, &sig, 1, 2)) return;
          s.compute_fluxes(s.stage_field(), s.rhs_field());
        }
      });
    } else {
      refresh_sigma_ghosts_lockstep();
      for (const int r : local_ranks_) {
        auto& s = solver(r);
        s.compute_fluxes(s.stage_field(), s.rhs_field());
      }
    }
  }

  /// Which sides of `axis` are physical boundaries for `rank` (no comm
  /// neighbor)?
  [[nodiscard]] std::array<bool, 2> physical_sides(int rank, int axis) const {
    const auto lo = static_cast<mesh::Face>(2 * axis);
    const auto hi = static_cast<mesh::Face>(2 * axis + 1);
    return {comm_.decomp().neighbor(rank, lo) < 0,
            comm_.decomp().neighbor(rank, hi) < 0};
  }

  Comm comm_;
  common::SolverConfig cfg_;
  fv::BcSpec bc_;
  core::SigmaBcSpec sigma_bc_;
  DistOptions opts_;
  double time_ = 0.0;
  /// Global rank ids owned by this process; ranks_[i] solves
  /// local_ranks_[i]'s block.
  std::vector<int> local_ranks_;
  std::vector<std::unique_ptr<core::IgrSolver3D<Policy>>> ranks_;
  std::unique_ptr<RankTeam> team_;
  std::vector<double> dts_;
  common::GrindTimer grind_;
};

}  // namespace igr::sim
