#pragma once
/// \file distributed_igr.hpp
/// Rank-decomposed IGR stepping over the simulated communicator.
///
/// Each rank owns an IgrSolver3D on its block; the driver executes every
/// phase of the RHS in lockstep across ranks, exchanging halos exactly where
/// a production MPI code would:
///   - state ghosts once per RK stage,
///   - Sigma ghosts before every relaxation sweep (the elliptic solve is the
///     only globally coupled kernel in the scheme),
///   - a dt allreduce per step.
///
/// With Jacobi sweeps the decomposed run is *bitwise identical* to the
/// single-domain run (each sweep consumes only previous-sweep values).  With
/// Gauss–Seidel the block-local sweeps use previous-sweep halo values (block
/// Gauss–Seidel), which converges to the same Sigma but is not bitwise equal
/// — the same trade production codes make.

#include <memory>
#include <vector>

#include "core/igr_solver3d.hpp"
#include "fv/cfl.hpp"
#include "sim/comm.hpp"

namespace igr::sim {

template <class Policy>
class DistributedIgr {
 public:
  using S = typename Policy::storage_t;

  DistributedIgr(const mesh::Grid& global, int rx, int ry, int rz,
                 const common::SolverConfig& cfg, const fv::BcSpec& bc,
                 fv::ReconScheme recon = fv::ReconScheme::kFifth)
      : comm_(global, rx, ry, rz, is_periodic(bc)), cfg_(cfg), bc_(bc) {
    for (int r = 0; r < comm_.ranks(); ++r) {
      ranks_.emplace_back(std::make_unique<core::IgrSolver3D<Policy>>(
          comm_.local_grid(r), cfg, bc, recon));
    }
  }

  void init(const core::PrimFn& prim) {
    for (auto& s : ranks_) s->init(prim);
  }

  /// One step at the globally reduced CFL dt; returns dt.
  double step() {
    std::vector<double> dts;
    dts.reserve(ranks_.size());
    for (auto& s : ranks_) {
      dts.push_back(
          fv::compute_dt(s->state(), s->grid(), s->eos(), s->config()));
    }
    const double dt = Comm::allreduce_min(dts);
    step_fixed(dt);
    return dt;
  }

  void step_fixed(double dt) {
    for (auto& s : ranks_) s->begin_step();
    for (const auto& st : fv::kRk3Stages) {
      refresh_state_ghosts();
      if (cfg_.sigma_sweeps > 0 && cfg_.alpha_factor > 0.0) {
        for (auto& s : ranks_) s->build_sigma_source(s->stage_field());
        for (int sw = 0; sw < cfg_.sigma_sweeps; ++sw) {
          refresh_sigma_ghosts();
          for (auto& s : ranks_) s->sigma_sweep(s->stage_field());
        }
        refresh_sigma_ghosts();
      }
      for (auto& s : ranks_) s->compute_fluxes(s->stage_field(), s->rhs_field());
      for (auto& s : ranks_) s->rk_update(st, dt);
    }
    for (auto& s : ranks_) s->finish_step(dt);
    time_ += dt;
  }

  /// Assemble the global conservative state (for comparison against a
  /// single-domain run and for output).
  [[nodiscard]] common::StateField3<S> gather() const {
    const auto& g = comm_.global_grid();
    common::StateField3<S> out(g.nx(), g.ny(), g.nz(), 3);
    for (int r = 0; r < comm_.ranks(); ++r) {
      const auto b = comm_.decomp().block(r);
      const auto& q = ranks_[static_cast<std::size_t>(r)]->state();
      for (int c = 0; c < common::kNumVars; ++c) {
        for (int k = 0; k < b.n[2]; ++k)
          for (int j = 0; j < b.n[1]; ++j)
            for (int i = 0; i < b.n[0]; ++i)
              out[c](b.lo[0] + i, b.lo[1] + j, b.lo[2] + k) = q[c](i, j, k);
      }
    }
    return out;
  }

  [[nodiscard]] const Comm& comm() const { return comm_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] core::IgrSolver3D<Policy>& rank(int r) {
    return *ranks_[static_cast<std::size_t>(r)];
  }

 private:
  static bool is_periodic(const fv::BcSpec& bc) {
    for (auto k : bc.kind)
      if (k != fv::BcKind::kPeriodic) return false;
    return true;
  }

  /// Physical-face fill + interior-face exchange, interleaved per axis in
  /// the same x,y,z order as the single-domain ghost fill.
  void refresh_state_ghosts() {
    std::vector<common::StateField3<S>*> states;
    for (auto& s : ranks_) states.push_back(&s->stage_field());
    for (int axis = 0; axis < 3; ++axis) {
      for (int r = 0; r < comm_.ranks(); ++r) {
        auto& s = *ranks_[static_cast<std::size_t>(r)];
        fv::apply_bc_axis(s.stage_field(), bc_, s.grid(), s.eos(), axis,
                          physical_sides(r, axis));
      }
      for (int c = 0; c < common::kNumVars; ++c) {
        std::vector<common::Field3<S>*> comp;
        for (auto* st : states) comp.push_back(&(*st)[c]);
        comm_.exchange_axis(comp, axis);
      }
    }
  }

  void refresh_sigma_ghosts() {
    std::vector<common::Field3<S>*> sig;
    for (auto& s : ranks_) sig.push_back(&s->sigma_field());
    for (int axis = 0; axis < 3; ++axis) {
      for (int r = 0; r < comm_.ranks(); ++r) {
        auto& s = *ranks_[static_cast<std::size_t>(r)];
        const auto sides = physical_sides(r, axis);
        if (sides[0] || sides[1]) {
          core::fill_sigma_ghosts_axis(s.sigma_field(),
                                       core::SigmaBc::kNeumann, axis, sides);
        }
      }
      comm_.exchange_axis(sig, axis);
    }
  }

  /// Which sides of `axis` are physical boundaries for `rank` (no comm
  /// neighbor)?
  [[nodiscard]] std::array<bool, 2> physical_sides(int rank, int axis) const {
    const auto lo = static_cast<mesh::Face>(2 * axis);
    const auto hi = static_cast<mesh::Face>(2 * axis + 1);
    return {comm_.decomp().neighbor(rank, lo) < 0,
            comm_.decomp().neighbor(rank, hi) < 0};
  }

  Comm comm_;
  common::SolverConfig cfg_;
  fv::BcSpec bc_;
  double time_ = 0.0;
  std::vector<std::unique_ptr<core::IgrSolver3D<Policy>>> ranks_;
};

}  // namespace igr::sim
