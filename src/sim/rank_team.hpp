#pragma once
/// \file rank_team.hpp
/// One persistent worker thread per simulated rank.
///
/// The distributed driver executes a step as a sequence of *phases*; each
/// phase runs the same closure once per rank, concurrently, and completes
/// only when every rank has finished (a barrier) — the in-process analogue
/// of an MPI program's SPMD structure.  Inside a phase ranks synchronize
/// pairwise through sim::Comm's posted-epoch halo pipeline, so a phase can
/// contain a post / interior-compute / complete sequence and genuinely
/// overlap communication with computation.
///
/// Workers pin their OpenMP team size on startup so R ranks x T threads
/// never oversubscribe the machine (scaling benches run T = 1 to measure
/// rank parallelism alone).  A team constructed with parallel = false runs
/// every phase inline on the calling thread, rank by rank — the lockstep
/// reference schedule the concurrent one is validated against bitwise.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace igr::sim {

class RankTeam {
 public:
  /// Spawn `ranks` workers (parallel) or configure inline execution.
  /// `threads_per_rank` caps each worker's OpenMP team; 0 divides the
  /// hardware evenly (at least 1).  `hardware_share_ranks` is the number
  /// of ranks sharing this machine for that division — a multi-process
  /// team runs one local rank but must still split the cores across the
  /// whole team (0: same as `ranks`, the in-process case).
  explicit RankTeam(int ranks, bool parallel = true, int threads_per_rank = 0,
                    int hardware_share_ranks = 0);
  ~RankTeam();

  RankTeam(const RankTeam&) = delete;
  RankTeam& operator=(const RankTeam&) = delete;

  /// Execute `fn(rank)` for every rank and wait for all of them (phase
  /// barrier).  Parallel mode runs each rank on its worker; inline mode
  /// calls them sequentially in rank order.  The first exception thrown by
  /// any rank is rethrown here after the phase completes.
  void run(const std::function<void(int)>& fn);

  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] bool parallel() const { return !workers_.empty(); }
  [[nodiscard]] int threads_per_rank() const { return threads_per_rank_; }

 private:
  void worker_main(int rank);

  int ranks_ = 1;
  int threads_per_rank_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* fn_ = nullptr;  // valid while a phase runs
  std::uint64_t generation_ = 0;
  int done_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace igr::sim
