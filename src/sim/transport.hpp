#pragma once
/// \file transport.hpp
/// Pluggable rank-to-rank transport behind sim::Comm's posted-epoch seam.
///
/// Comm owns the *protocol* of a halo exchange — slab layout, plane
/// ownership, wire narrowing, byte metering — and delegates the *movement*
/// to a Transport: publish a packed slot, acquire a peer's published slot at
/// a target epoch, reduce a scalar, move a blob.  Two backends implement the
/// seam:
///
///   InProcTransport  every rank lives in this process; publishing is a
///                    release-increment of a shared epoch counter and
///                    acquiring is a yield-spin on it (the PR 3 pipeline,
///                    bit-for-bit).
///   TcpTransport     every rank is its own OS process; publishing frames
///                    the slot over loopback sockets to the ranks that read
///                    it, acquiring waits on a per-slot inbox fed by
///                    per-peer receive threads.  Built by make_tcp_transport
///                    (transport_tcp.cpp) so socket headers stay out of this
///                    header.
///
/// The abort/timeout machinery lives in the base class: a failed or dead
/// peer latches a first-reason `abort_reason` and every wait observes the
/// flag, so a poisoned fabric unwinds instead of deadlocking — the same
/// contract Comm exposed before the seam existed.

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace igr::sim {

/// Transport-layer failures (rendezvous timeout, peer death mid-collective).
/// Distinct from logic errors so callers can classify the loss as transient:
/// the launcher treats it as retryable and respawns the team.
struct TransportError : std::runtime_error {
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// How a Comm moves bytes between ranks.
struct TransportSpec {
  enum class Kind {
    kInProc,  ///< All ranks share this process (the default).
    kTcp,     ///< One rank per process over loopback sockets.
  };
  Kind kind = Kind::kInProc;
  /// kTcp: total ranks in the team (must equal the decomposition's rank
  /// count) and this process's rank within it.
  int world = 0;
  int rank = -1;
  /// kTcp: rendezvous directory shared by the team.  Each rank binds an
  /// ephemeral loopback port and publishes it as `<dir>/port.<rank>`
  /// (atomic temp+rename); peers poll for the files and dial.  The
  /// launcher hands every respawn attempt a fresh directory so stale port
  /// files from a killed team are never dialed.
  std::string dir;
  /// kTcp: ghost depth the halo reader sets are derived for.  A publish is
  /// pushed to the fixed set of ranks whose ghost planes source from it at
  /// this depth; exchanges at any other depth would desynchronize the
  /// per-slot sequence numbers, so Comm enforces the match.
  int ghost_depth = 3;
  /// kTcp: bound on the whole rendezvous (port-file wait + dial + accept).
  double connect_timeout_s = 30.0;
  /// kTcp: liveness beacon period.  A dedicated thread heartbeats every
  /// peer so a wedged-but-alive rank is distinguishable from a dead one.
  double heartbeat_period_s = 0.25;
  /// kTcp: a peer silent for this long while we wait on it is declared
  /// dead even if its socket has not closed (missed-heartbeat detection).
  double liveness_timeout_s = 10.0;

  [[nodiscard]] static Kind parse_kind(const std::string& s) {
    if (s == "inproc") return Kind::kInProc;
    if (s == "tcp") return Kind::kTcp;
    throw std::invalid_argument("unknown transport '" + s +
                                "' (expected inproc|tcp)");
  }
  [[nodiscard]] const char* kind_name() const {
    return kind == Kind::kTcp ? "tcp" : "inproc";
  }
};

/// Always-on wire statistics a backend exposes for telemetry (zeros where a
/// concept does not apply — the in-process backend moves no frames).
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;  ///< Headers + payloads, every frame kind.
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t heartbeats_sent = 0;
};

class Transport {
 public:
  explicit Transport(std::size_t nslots) : nslots_(nslots) {}
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;
  /// Rank this process owns, or -1 when every rank is in-process.
  [[nodiscard]] virtual int local_rank() const { return -1; }
  [[nodiscard]] bool multi_process() const { return local_rank() >= 0; }
  /// Exactly one process per team is the IO root (rank 0, or the sole
  /// process of an in-process team).
  [[nodiscard]] bool is_root() const { return local_rank() <= 0; }

  // --- Posted-epoch halo seam -------------------------------------------

  /// Pack target for `slot` — the caller resizes and fills it, then
  /// publishes.  Only the slot-owning rank's thread may touch it.
  [[nodiscard]] virtual std::vector<unsigned char>& send_buffer(
      std::size_t slot) = 0;
  /// Make `slot`'s packed bytes visible to its readers and advance its
  /// epoch; everything written to the buffer happens-before any acquire
  /// that observes the new epoch.
  virtual void publish(std::size_t slot) = 0;
  /// Epochs published to `slot` so far (the caller's own schedule position).
  [[nodiscard]] virtual std::uint64_t posted_epoch(std::size_t slot)
      const = 0;
  /// Bytes of `src_rank`'s `slot` at epoch `target`, valid until the next
  /// acquire of the same slot with a higher target.  nullptr when the
  /// exchange aborted or timed out (reason latched) — the caller unwinds.
  [[nodiscard]] virtual const unsigned char* acquire(std::size_t slot,
                                                     std::uint64_t target,
                                                     int src_rank) = 0;

  // --- Control plane (collectives and bulk point-to-point) --------------

  /// Exact global minimum of one double per rank (the dt allreduce; min is
  /// associative, so the result is bitwise the single-domain value).
  [[nodiscard]] virtual double allreduce_min(double local) = 0;
  /// Global sum of one double per rank (health tallies; not bitwise-
  /// reproducible across rank counts — use for verdicts, not state).
  [[nodiscard]] virtual double allreduce_sum(double local) = 0;
  /// All ranks reach this call before any returns.
  virtual void barrier() = 0;
  /// Ordered point-to-point byte blobs (gather-to-root checkpointing).
  /// Matching is (sender, tag, call order); throws TransportError when the
  /// peer dies first.
  virtual void send_blob(int peer, int tag, const unsigned char* data,
                         std::size_t n) = 0;
  [[nodiscard]] virtual std::vector<unsigned char> recv_blob(int peer,
                                                             int tag) = 0;

  // --- Abort / timeout (shared by every backend) ------------------------

  /// Poison the fabric: every in-flight and future wait observes the flag
  /// and gives up.  The first non-empty reason is latched.
  void abort_exchanges(const std::string& reason) {
    if (!reason.empty()) {
      std::lock_guard<std::mutex> lock(reason_mu_);
      if (reason_.empty()) reason_ = reason;  // first reason wins
    }
    abort_.store(true, std::memory_order_relaxed);
    on_abort();
  }
  [[nodiscard]] bool aborted() const {
    return abort_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string abort_reason() const {
    std::lock_guard<std::mutex> lock(reason_mu_);
    return reason_;
  }

  /// Bound every wait; <= 0 disables (the driver installs its own bound).
  void set_wait_timeout(double seconds) { wait_timeout_s_ = seconds; }
  [[nodiscard]] double wait_timeout() const { return wait_timeout_s_; }

  /// Snapshot of the backend's wire counters (relaxed reads; always
  /// maintained — the TCP backend's counters ride sends/receives it makes
  /// anyway, and the in-process backend has nothing to count).
  [[nodiscard]] virtual TransportStats stats() const { return {}; }

 protected:
  /// Backend hook invoked after an abort latches (wake blocked waiters,
  /// tell peers).  May run on any thread; must not lock around
  /// abort_exchanges re-entrantly.
  virtual void on_abort() {}

  std::size_t nslots_;
  std::atomic<bool> abort_{false};
  mutable std::mutex reason_mu_;
  std::string reason_;
  std::atomic<double> wait_timeout_s_{0.0};
};

/// The PR 3 shared-memory pipeline: one instance shared by every rank's
/// thread; epochs are plain atomics and acquires yield-spin.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(std::size_t nslots);

  [[nodiscard]] const char* name() const override { return "inproc"; }
  [[nodiscard]] std::vector<unsigned char>& send_buffer(
      std::size_t slot) override {
    return buffers_[slot];
  }
  void publish(std::size_t slot) override {
    epochs_[slot].fetch_add(1, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t posted_epoch(std::size_t slot) const override {
    return epochs_[slot].load(std::memory_order_relaxed);
  }
  [[nodiscard]] const unsigned char* acquire(std::size_t slot,
                                             std::uint64_t target,
                                             int src_rank) override;

  // In-process collectives are identities: the caller's own reduction over
  // its ranks *is* the global one.
  [[nodiscard]] double allreduce_min(double local) override { return local; }
  [[nodiscard]] double allreduce_sum(double local) override { return local; }
  void barrier() override {}
  void send_blob(int, int, const unsigned char*, std::size_t) override {
    throw std::logic_error("InProcTransport: blobs need a remote peer");
  }
  [[nodiscard]] std::vector<unsigned char> recv_blob(int, int) override {
    throw std::logic_error("InProcTransport: blobs need a remote peer");
  }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> epochs_;
  std::vector<std::vector<unsigned char>> buffers_;
};

/// Build the loopback-socket backend for `spec` (defined in
/// transport_tcp.cpp).  `readers[axis]` is the fixed set of peer ranks that
/// read this rank's published slabs along that axis — the inverse of the
/// ghost-plane source resolution, supplied by Comm so both sides of the
/// relation come from one encoding.  Throws TransportError when the team
/// fails to rendezvous within the spec's connect timeout.
[[nodiscard]] std::unique_ptr<Transport> make_tcp_transport(
    const TransportSpec& spec, std::size_t nslots,
    const std::array<std::vector<int>, 3>& readers);

}  // namespace igr::sim
