#pragma once
/// \file fault.hpp
/// Deterministic fault injection for the simulated-MPI layer and checkpoint
/// IO.  At the paper's scale (up to 11k nodes, 16-hour campaigns) node loss
/// and torn writes are routine, so the recovery paths — Comm's latched abort,
/// the runner's rollback/retry loop, the crash-safe checkpoint protocol —
/// need to be *provably* exercised, not just present.  A FaultPlan names one
/// fault and the exact call at which it fires; a FaultInjector counts the
/// instrumented call sites and throws InjectedFault at the trigger.
///
/// Determinism: triggers are call-ordinal, not time- or randomness-based.
/// The injector's counters are atomic and *monotonic across simulation
/// rebuilds* — the runner keeps one injector alive through rollback, so a
/// one-shot fault that fired before the rollback does not re-fire during the
/// retry (the counter is already past the trigger).
///
/// Seeded plans (`from_seed`) derive the fault kind and trigger ordinal from
/// a splitmix64 stream, giving fuzz-style coverage that is still perfectly
/// reproducible from the seed alone.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace igr::sim {

/// The exception every injected fault throws — distinct from genuine errors
/// so tests can assert the failure they caused is the failure they saw.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// One planned fault.  At most one trigger is typically armed; arming
/// several fires each at its own ordinal.  All ordinals are 1-based counts
/// of the instrumented calls ("post=3" = the 3rd halo post anywhere);
/// 0 disables that trigger.
struct FaultPlan {
  long comm_post_at = 0;      ///< Fail the Nth Comm::post_axis.
  long comm_complete_at = 0;  ///< Fail the Nth Comm::complete_axis.
  long phase_at = 0;          ///< Fail `phase_rank`'s Nth phase callback.
  int phase_rank = 0;         ///< Rank whose worker dies (phase_at > 0).
  long io_write_at = 0;       ///< Kill the checkpoint writer at its Nth
                              ///< payload chunk (torn temp file).
  long kill_step = 0;         ///< SIGKILL this process before step N —
                              ///< real process death, only honored when the
                              ///< transport is multi-process.
  int kill_rank = 0;          ///< Rank whose process dies (kill_step > 0).
  std::uint64_t seed = 0;     ///< Provenance when derived from a seed.

  [[nodiscard]] bool armed() const {
    return comm_post_at > 0 || comm_complete_at > 0 || phase_at > 0 ||
           io_write_at > 0 || kill_step > 0;
  }

  /// Human-readable summary ("comm-post@3", "phase@2 rank 1", "disarmed").
  [[nodiscard]] std::string describe() const;

  /// Derive a plan from a seed (splitmix64): the kind cycles through
  /// comm-post / comm-complete / phase / io-write and the trigger ordinal
  /// lands in [1, 24] — early enough to fire in smoke-sized runs.
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed);

  /// Parse a comma-separated spec: `post=N`, `complete=N`, `phase=N@R`
  /// (rank R's Nth phase callback), `io=N`, `kill=N@R` (SIGKILL rank R's
  /// process before its Nth step), `seed=S` (expands via from_seed; later
  /// explicit keys override it).  Throws std::invalid_argument on
  /// malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
};

/// Thread-safe trigger engine for one FaultPlan.  Instrumented call sites
/// invoke the `on_*` hooks; the hook whose counter hits its plan ordinal
/// throws InjectedFault (exactly once — counters only grow).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  void on_comm_post();
  void on_comm_complete();
  void on_phase(int rank);
  void on_io_write();
  /// Step-boundary hook for `kill=N@R`: when `rank` matches the plan's
  /// kill_rank and this is its Nth stepped call, raise(SIGKILL) — the
  /// process dies for real, mid-socket, exactly like a node loss.  Callers
  /// must invoke this only under a multi-process transport; an in-process
  /// team would take every rank (and the test harness) down with it.
  void on_step(int rank);

  /// Did any trigger fire yet?  (Tests assert the planned fault actually
  /// happened rather than the run passing vacuously.)
  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Total instrumented calls seen, per hook (diagnostics).
  [[nodiscard]] long comm_posts() const { return posts_.load(); }
  [[nodiscard]] long comm_completes() const { return completes_.load(); }
  [[nodiscard]] long phases() const { return phases_.load(); }
  [[nodiscard]] long io_writes() const { return io_writes_.load(); }
  [[nodiscard]] long steps() const { return steps_.load(); }

 private:
  void fire(const std::string& what);

  FaultPlan plan_{};
  std::atomic<long> posts_{0};
  std::atomic<long> completes_{0};
  std::atomic<long> phases_{0};  ///< Counts only plan_.phase_rank's calls.
  std::atomic<long> io_writes_{0};
  std::atomic<long> steps_{0};  ///< Counts only plan_.kill_rank's calls.
  std::atomic<bool> fired_{false};
};

}  // namespace igr::sim
