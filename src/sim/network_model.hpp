#pragma once
/// \file network_model.hpp
/// Analytic interconnect model (HPE Slingshot-class, §6.1): per-message
/// latency plus bandwidth-limited transfer, with an effective-bandwidth
/// efficiency factor.  Used by perf::ScalingModel for the Figs. 6-8
/// reproductions; cross-checked against sim::Comm traffic metering in tests.

#include <cstddef>

namespace igr::sim {

struct NetworkModel {
  /// Injection bandwidth available to one device (bytes/s).
  double bandwidth_Bps = 25.0e9;
  /// Per-message latency (s); Slingshot-class RDMA is ~2 us end-to-end.
  double latency_s = 2.0e-6;
  /// Achievable fraction of peak bandwidth for halo-sized messages.
  double efficiency = 0.9;

  /// Time to move one message of `bytes`.
  [[nodiscard]] double message_time(std::size_t bytes) const {
    return latency_s +
           static_cast<double>(bytes) / (bandwidth_Bps * efficiency);
  }

  /// One halo phase: per axis, send+receive (full duplex assumed, so one
  /// message time per axis), three axes per exchange.
  [[nodiscard]] double halo_time(std::size_t bytes_per_face) const {
    return 3.0 * message_time(bytes_per_face);
  }

  /// Tree allreduce of a scalar over `ranks` (the dt reduction).
  [[nodiscard]] double allreduce_time(int ranks) const;
};

}  // namespace igr::sim
