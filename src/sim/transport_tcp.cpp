/// \file transport_tcp.cpp
/// Loopback-socket transport: one OS process per rank.
///
/// Wire protocol: every message is a fixed 32-byte header followed by
/// `len` payload bytes (length-prefixed framing).  Loopback-only and both
/// ends are the same binary, so fields travel in native endianness.
///
/// Topology: a full mesh of TCP connections.  Rank r listens on an
/// ephemeral 127.0.0.1 port published as `<dir>/port.r` (atomic
/// temp+rename), dials every lower rank, and accepts every higher one; a
/// hello frame carries the dialer's identity.  One receive thread per peer
/// feeds per-slot halo inboxes and per-(peer,kind,tag) control queues; a
/// heartbeat thread beacons liveness so waits can tell a wedged peer from
/// a dead one.  Collectives run as a star through rank 0 over control
/// frames — exact for the dt min-reduction, since min is associative.
///
/// Failure semantics: a peer's socket closing without a goodbye frame, or
/// falling heartbeat-silent while awaited, latches a precise abort reason
/// and poisons the fabric (Transport::abort_exchanges), which also
/// broadcasts the reason to surviving peers so every process reports the
/// same root cause.  All waits are abort-aware and deadline-bounded:
/// process loss never deadlocks the survivors.

#include "sim/transport.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define IGR_HAVE_TCP_TRANSPORT 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <thread>

namespace igr::sim {

#ifdef IGR_HAVE_TCP_TRANSPORT

namespace {

using Clock = std::chrono::steady_clock;

double secs_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string fmt_secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", s);
  return buf;
}

constexpr std::uint32_t kMagic = 0x49475254u;  // "IGRT"

enum FrameKind : std::uint16_t {
  kHello = 1,      ///< a = dialer rank redundantly; seq = world (validated)
  kHalo = 2,       ///< a = channel, b = axis, seq = slot epoch
  kBlob = 3,       ///< a = user tag (gather payloads)
  kCtl = 4,        ///< a = control tag (collectives)
  kHeartbeat = 5,  ///< liveness beacon, no payload
  kGoodbye = 6,    ///< orderly shutdown — EOF after this is benign
  kAbort = 7,      ///< payload = latched abort reason of the sender
};

enum CtlTag : std::uint16_t {
  kTagBarrier = 1,
  kTagBarrierAck = 2,
  kTagMin = 3,
  kTagMinAck = 4,
  kTagSum = 5,
  kTagSumAck = 6,
};

struct FrameHeader {
  std::uint32_t magic;
  std::uint16_t kind;
  std::uint16_t a;  // halo: channel; blob/ctl: tag
  std::uint16_t b;  // halo: axis
  std::uint16_t src;
  std::uint32_t reserved;
  std::uint64_t seq;
  std::uint64_t len;
};
static_assert(sizeof(FrameHeader) == 32, "frame header must pack to 32 B");

bool send_all(int fd, const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t w = ::send(fd, c, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    c += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool recv_all(int fd, void* p, std::size_t n) {
  char* c = static_cast<char*>(p);
  while (n > 0) {
    const ssize_t r = ::recv(fd, c, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    c += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(const TransportSpec& spec, std::size_t nslots,
               const std::array<std::vector<int>, 3>& readers)
      : Transport(nslots),
        world_(spec.world),
        rank_(spec.rank),
        readers_(readers),
        hb_period_s_(spec.heartbeat_period_s),
        liveness_s_(spec.liveness_timeout_s) {
    if (world_ < 1 || rank_ < 0 || rank_ >= world_)
      throw TransportError("tcp transport: rank " + std::to_string(rank_) +
                           " outside world of " + std::to_string(world_));
    buffers_.resize(nslots);
    inbox_.resize(nslots);
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(nslots);
    for (std::size_t s = 0; s < nslots; ++s) counts_[s].store(0);
    fds_.assign(static_cast<std::size_t>(world_), -1);
    state_.assign(static_cast<std::size_t>(world_), kAlive);
    last_heard_.assign(static_cast<std::size_t>(world_), Clock::now());
    send_mu_ = std::make_unique<std::mutex[]>(
        static_cast<std::size_t>(world_));
    try {
      rendezvous(spec);
    } catch (...) {
      close_sockets();
      throw;
    }
    const auto now = Clock::now();
    for (auto& t : last_heard_) t = now;
    for (int p = 0; p < world_; ++p) {
      if (p == rank_) continue;
      recv_threads_.emplace_back([this, p] { recv_main(p); });
    }
    if (world_ > 1 && hb_period_s_ > 0.0)
      hb_thread_ = std::thread([this] { hb_main(); });
  }

  ~TcpTransport() override {
    shutting_down_.store(true, std::memory_order_relaxed);
    if (hb_thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(hb_mu_);
        hb_stop_ = true;
      }
      hb_cv_.notify_all();
      hb_thread_.join();
    }
    for (int p = 0; p < world_; ++p) {
      if (p == rank_ || fds_[static_cast<std::size_t>(p)] < 0) continue;
      // Goodbye, then a full shutdown: TCP delivers the queued goodbye (and
      // any still-buffered halo frames) before the FIN, so a slower peer
      // sees an orderly exit, while our receive thread's blocking recv
      // wakes immediately.
      send_frame(p, kGoodbye, 0, 0, 0, nullptr, 0);
      ::shutdown(fds_[static_cast<std::size_t>(p)], SHUT_RDWR);
    }
    for (auto& t : recv_threads_) t.join();
    close_sockets();
  }

  [[nodiscard]] const char* name() const override { return "tcp"; }
  [[nodiscard]] int local_rank() const override { return rank_; }

  [[nodiscard]] std::vector<unsigned char>& send_buffer(
      std::size_t slot) override {
    return buffers_[slot];
  }

  void publish(std::size_t slot) override {
    // slot = (channel*3 + axis)*world + rank — Comm's encoding.
    const int src = static_cast<int>(slot % static_cast<std::size_t>(world_));
    const auto ca = slot / static_cast<std::size_t>(world_);
    const int axis = static_cast<int>(ca % 3);
    const int channel = static_cast<int>(ca / 3);
    if (src != rank_)
      throw std::logic_error(
          "TcpTransport: a process may only publish its own rank's slots");
    const std::uint64_t seq =
        counts_[slot].fetch_add(1, std::memory_order_relaxed) + 1;
    const auto& buf = buffers_[slot];
    for (const int peer : readers_[static_cast<std::size_t>(axis)]) {
      if (peer == rank_) continue;  // self-reads use the local buffer
      if (!send_frame(peer, kHalo, static_cast<std::uint16_t>(channel),
                      static_cast<std::uint16_t>(axis), seq, buf.data(),
                      buf.size()) &&
          !shutting_down_.load(std::memory_order_relaxed)) {
        abort_exchanges("halo send to rank " + std::to_string(peer) +
                        " failed (connection lost)");
      }
    }
  }

  [[nodiscard]] std::uint64_t posted_epoch(std::size_t slot) const override {
    return counts_[slot].load(std::memory_order_relaxed);
  }

  [[nodiscard]] const unsigned char* acquire(std::size_t slot,
                                             std::uint64_t target,
                                             int src_rank) override {
    if (src_rank == rank_) return buffers_[slot].data();
    std::unique_lock<std::mutex> lk(mu_);
    auto& box = inbox_[slot];
    const std::string why = wait_locked(
        lk, src_rank, "halo data", [&] {
          // Targets are monotone per slot, so entries below the target are
          // dead epochs from already-unpacked exchanges; dropping them here
          // keeps the matched entry alive (and its pointer stable) until a
          // later acquire advances past it.
          while (!box.empty() && box.front().seq < target) box.pop_front();
          return !box.empty();
        });
    if (!why.empty()) {
      lk.unlock();
      abort_exchanges(why);
      return nullptr;
    }
    if (box.front().seq != target) {
      lk.unlock();
      abort_exchanges("halo stream from rank " + std::to_string(src_rank) +
                      " desynchronized (got epoch " +
                      std::to_string(box.front().seq) + ", wanted " +
                      std::to_string(target) + ")");
      return nullptr;
    }
    return box.front().data.data();
  }

  [[nodiscard]] double allreduce_min(double local) override {
    return reduce(local, kTagMin, kTagMinAck,
                  [](double a, double b) { return a < b ? a : b; });
  }
  [[nodiscard]] double allreduce_sum(double local) override {
    return reduce(local, kTagSum, kTagSumAck,
                  [](double a, double b) { return a + b; });
  }

  void barrier() override {
    if (world_ == 1) return;
    if (rank_ != 0) {
      ctl_send(0, kTagBarrier, nullptr, 0);
      (void)ctl_wait(0, kCtl, kTagBarrierAck, "barrier release");
      return;
    }
    for (int p = 1; p < world_; ++p)
      (void)ctl_wait(p, kCtl, kTagBarrier, "barrier arrival");
    for (int p = 1; p < world_; ++p) ctl_send(p, kTagBarrierAck, nullptr, 0);
  }

  void send_blob(int peer, int tag, const unsigned char* data,
                 std::size_t n) override {
    if (!send_frame(peer, kBlob, static_cast<std::uint16_t>(tag), 0, 0, data,
                    n)) {
      const std::string why = "blob send to rank " + std::to_string(peer) +
                              " failed (connection lost)";
      abort_exchanges(why);
      throw TransportError(why);
    }
  }

  [[nodiscard]] std::vector<unsigned char> recv_blob(int peer,
                                                     int tag) override {
    return ctl_wait(peer, kBlob, static_cast<std::uint16_t>(tag), "blob");
  }

  [[nodiscard]] TransportStats stats() const override {
    TransportStats s;
    s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.frames_received = frames_recv_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_recv_.load(std::memory_order_relaxed);
    s.heartbeats_sent = heartbeats_sent_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  void on_abort() override {
    cv_.notify_all();
    // Tell the survivors *why* (best effort): without this, a rank that
    // aborted on an injected fault just disappears and its peers can only
    // report the socket close.  First abort wins; re-entry from a failing
    // notification send is cut off by the flag.
    if (abort_notified_.exchange(true)) return;
    const std::string reason = abort_reason();
    for (int p = 0; p < world_; ++p) {
      if (p == rank_ || fds_[static_cast<std::size_t>(p)] < 0) continue;
      send_frame(p, kAbort, 0, 0, 0,
                 reinterpret_cast<const unsigned char*>(reason.data()),
                 reason.size());
    }
  }

 private:
  enum PeerState : unsigned char { kAlive, kDone, kDead };

  struct Entry {
    std::uint64_t seq;
    std::vector<unsigned char> data;
  };

  static std::uint64_t ctl_key(int src, std::uint16_t kind,
                               std::uint16_t tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           (static_cast<std::uint64_t>(kind) << 16) | tag;
  }

  // --- rendezvous -------------------------------------------------------

  void rendezvous(const TransportSpec& spec) {
    if (spec.dir.empty())
      throw TransportError("tcp transport: rendezvous directory not set");
    ::mkdir(spec.dir.c_str(), 0777);  // fine if it already exists
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               spec.connect_timeout_s > 0.0
                                   ? spec.connect_timeout_s
                                   : 30.0));

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw TransportError("tcp transport: socket() failed: " +
                           std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, world_) != 0)
      throw TransportError("tcp transport: bind/listen failed: " +
                           std::string(std::strerror(errno)));
    socklen_t alen = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &alen) != 0)
      throw TransportError("tcp transport: getsockname failed");
    write_port_file(spec.dir, ntohs(addr.sin_port));

    // Dial every lower rank; accept every higher one (one connection per
    // unordered pair).
    for (int p = 0; p < rank_; ++p) dial(spec.dir, p, deadline);
    for (int n = rank_ + 1; n < world_; ++n) accept_one(deadline);
    for (int p = 0; p < world_; ++p) {
      if (p != rank_ && fds_[static_cast<std::size_t>(p)] < 0)
        throw TransportError("tcp transport: rendezvous incomplete (rank " +
                             std::to_string(p) + " never connected)");
    }
  }

  void write_port_file(const std::string& dir, int port) const {
    const std::string path = dir + "/port." + std::to_string(rank_);
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
      throw TransportError("tcp transport: cannot write " + tmp + ": " +
                           std::strerror(errno));
    std::fprintf(f, "%d\n", port);
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
      throw TransportError("tcp transport: cannot publish " + path);
  }

  void dial(const std::string& dir, int peer, Clock::time_point deadline) {
    const std::string path = dir + "/port." + std::to_string(peer);
    int port = -1;
    while (port < 0) {
      if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
        if (std::fscanf(f, "%d", &port) != 1) port = -1;
        std::fclose(f);
      }
      if (port < 0) {
        if (Clock::now() >= deadline)
          throw TransportError("tcp transport: rank " + std::to_string(peer) +
                               " never published its port (rendezvous "
                               "timeout — did its process start?)");
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    for (;;) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0)
        throw TransportError("tcp transport: socket() failed");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
          0) {
        setup_socket(fd);
        FrameHeader hello{kMagic,
                          kHello,
                          static_cast<std::uint16_t>(rank_),
                          0,
                          static_cast<std::uint16_t>(rank_),
                          0,
                          static_cast<std::uint64_t>(world_),
                          0};
        if (!send_all(fd, &hello, sizeof hello)) {
          ::close(fd);
          throw TransportError("tcp transport: hello to rank " +
                               std::to_string(peer) + " failed");
        }
        fds_[static_cast<std::size_t>(peer)] = fd;
        return;
      }
      ::close(fd);
      if (Clock::now() >= deadline)
        throw TransportError("tcp transport: cannot connect to rank " +
                             std::to_string(peer) + " on port " +
                             std::to_string(port) + " (rendezvous timeout)");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  void accept_one(Clock::time_point deadline) {
    for (;;) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);
      if (rc > 0) break;
      if (Clock::now() >= deadline)
        throw TransportError(
            "tcp transport: rendezvous timeout waiting for a higher rank "
            "to dial in");
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0)
      throw TransportError("tcp transport: accept failed: " +
                           std::string(std::strerror(errno)));
    setup_socket(fd);
    FrameHeader hello{};
    if (!recv_all(fd, &hello, sizeof hello) || hello.magic != kMagic ||
        hello.kind != kHello ||
        hello.seq != static_cast<std::uint64_t>(world_)) {
      ::close(fd);
      throw TransportError(
          "tcp transport: malformed hello (world-size mismatch or foreign "
          "dialer)");
    }
    const int peer = hello.src;
    if (peer <= rank_ || peer >= world_ ||
        fds_[static_cast<std::size_t>(peer)] >= 0) {
      ::close(fd);
      throw TransportError("tcp transport: unexpected hello from rank " +
                           std::to_string(peer));
    }
    fds_[static_cast<std::size_t>(peer)] = fd;
  }

  static void setup_socket(int fd) {
    // Halo frames are small and latency-bound; never wait on Nagle.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  void close_sockets() {
    for (auto& fd : fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  // --- data plane -------------------------------------------------------

  bool send_frame(int peer, std::uint16_t kind, std::uint16_t a,
                  std::uint16_t b, std::uint64_t seq,
                  const unsigned char* data, std::size_t len) {
    const int fd = fds_[static_cast<std::size_t>(peer)];
    if (fd < 0) return false;
    FrameHeader h{kMagic,
                  kind,
                  a,
                  b,
                  static_cast<std::uint16_t>(rank_),
                  0,
                  seq,
                  static_cast<std::uint64_t>(len)};
    // One mutex per peer: frames from different threads (worker, heartbeat,
    // collectives) must not interleave on the stream.
    std::lock_guard<std::mutex> lock(send_mu_[static_cast<std::size_t>(peer)]);
    const bool ok =
        send_all(fd, &h, sizeof h) && (len == 0 || send_all(fd, data, len));
    if (ok) {
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(sizeof h + len, std::memory_order_relaxed);
    }
    return ok;
  }

  void ctl_send(int peer, std::uint16_t tag, const unsigned char* data,
                std::size_t len) {
    if (!send_frame(peer, kCtl, tag, 0, 0, data, len)) {
      const std::string why = "control send to rank " + std::to_string(peer) +
                              " failed (connection lost)";
      abort_exchanges(why);
      throw TransportError(why);
    }
  }

  /// Star reduction through rank 0 — every rank contributes one double and
  /// receives the combined value.
  template <class Op>
  double reduce(double local, std::uint16_t tag, std::uint16_t ack, Op op) {
    if (world_ == 1) return local;
    unsigned char bits[sizeof(double)];
    if (rank_ != 0) {
      std::memcpy(bits, &local, sizeof local);
      ctl_send(0, tag, bits, sizeof bits);
      const auto v = ctl_wait(0, kCtl, ack, "reduction result");
      double out;
      std::memcpy(&out, v.data(), sizeof out);
      return out;
    }
    double acc = local;
    for (int p = 1; p < world_; ++p) {
      const auto v = ctl_wait(p, kCtl, tag, "reduction contribution");
      double x;
      std::memcpy(&x, v.data(), sizeof x);
      acc = op(acc, x);
    }
    std::memcpy(bits, &acc, sizeof acc);
    for (int p = 1; p < world_; ++p) ctl_send(p, ack, bits, sizeof bits);
    return acc;
  }

  /// Pop the next queued (src, kind, tag) payload, waiting abort-aware;
  /// throws TransportError (reason latched) on abort, peer loss, or
  /// timeout.
  std::vector<unsigned char> ctl_wait(int src, std::uint16_t kind,
                                      std::uint16_t tag, const char* what) {
    std::unique_lock<std::mutex> lk(mu_);
    const auto key = ctl_key(src, kind, tag);
    const std::string why = wait_locked(lk, src, what, [&] {
      const auto it = ctl_.find(key);
      return it != ctl_.end() && !it->second.empty();
    });
    if (!why.empty()) {
      lk.unlock();
      abort_exchanges(why);
      throw TransportError(why);
    }
    auto& q = ctl_.find(key)->second;
    std::vector<unsigned char> out = std::move(q.front());
    q.pop_front();
    return out;
  }

  /// Wait under mu_ until `ready()`; empty string on success, else the
  /// failure reason (abort / dead peer / heartbeat silence / timeout).
  template <class Ready>
  std::string wait_locked(std::unique_lock<std::mutex>& lk, int src,
                          const char* what, Ready ready) {
    const double bound = wait_timeout_s_.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    for (;;) {
      if (ready()) return {};
      if (abort_.load(std::memory_order_relaxed)) {
        std::string r = abort_reason();
        return r.empty() ? std::string("fabric aborted while ") + what +
                               " from rank " + std::to_string(src) +
                               " was awaited"
                         : r;
      }
      const auto now = Clock::now();
      const double heard =
          secs_between(last_heard_[static_cast<std::size_t>(src)], now);
      const PeerState st = state_[static_cast<std::size_t>(src)];
      if (st == kDead)
        return "rank " + std::to_string(src) + " connection lost while " +
               what + " was awaited (process died)";
      if (st == kDone)
        return "rank " + std::to_string(src) + " exited before " + what +
               " was satisfied (schedule mismatch or early shutdown)";
      if (liveness_s_ > 0.0 && heard > liveness_s_)
        return "rank " + std::to_string(src) + " missed heartbeats for " +
               fmt_secs(heard) + "s while " + what +
               " was awaited — declared dead (wedged or stopped)";
      if (bound > 0.0 && secs_between(start, now) > bound)
        return std::string("wait for ") + what + " from rank " +
               std::to_string(src) + " exceeded " + fmt_secs(bound) +
               "s (peer last heard " + fmt_secs(heard) + "s ago)";
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
  }

  void recv_main(int peer) {
    const int fd = fds_[static_cast<std::size_t>(peer)];
    for (;;) {
      FrameHeader h;
      if (!recv_all(fd, &h, sizeof h)) {
        on_disconnect(peer);
        return;
      }
      if (h.magic != kMagic || h.src != static_cast<std::uint16_t>(peer)) {
        abort_exchanges("tcp transport: corrupt frame from rank " +
                        std::to_string(peer));
        return;
      }
      std::vector<unsigned char> payload(static_cast<std::size_t>(h.len));
      if (h.len != 0 && !recv_all(fd, payload.data(), payload.size())) {
        on_disconnect(peer);
        return;
      }
      frames_recv_.fetch_add(1, std::memory_order_relaxed);
      bytes_recv_.fetch_add(sizeof h + static_cast<std::size_t>(h.len),
                            std::memory_order_relaxed);
      if (h.kind == kAbort) {
        abort_exchanges("rank " + std::to_string(peer) + " aborted: " +
                        std::string(payload.begin(), payload.end()));
        continue;  // keep draining so the peer's unwind is not blocked
      }
      std::unique_lock<std::mutex> lk(mu_);
      last_heard_[static_cast<std::size_t>(peer)] = Clock::now();
      switch (h.kind) {
        case kHalo: {
          const std::size_t slot =
              (static_cast<std::size_t>(h.a) * 3 + h.b) *
                  static_cast<std::size_t>(world_) +
              static_cast<std::size_t>(peer);
          if (slot >= nslots_) {
            lk.unlock();
            abort_exchanges("tcp transport: halo frame for slot out of "
                            "range from rank " +
                            std::to_string(peer));
            return;
          }
          inbox_[slot].push_back(Entry{h.seq, std::move(payload)});
          break;
        }
        case kBlob:
        case kCtl:
          ctl_[ctl_key(peer, h.kind, h.a)].push_back(std::move(payload));
          break;
        case kHeartbeat:
          break;  // last_heard_ refresh is the whole message
        case kGoodbye:
          state_[static_cast<std::size_t>(peer)] = kDone;
          break;
        default:
          lk.unlock();
          abort_exchanges("tcp transport: unknown frame kind " +
                          std::to_string(h.kind) + " from rank " +
                          std::to_string(peer));
          return;
      }
      lk.unlock();
      cv_.notify_all();
    }
  }

  void on_disconnect(int peer) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutting_down_.load(std::memory_order_relaxed) ||
          state_[static_cast<std::size_t>(peer)] != kAlive) {
        // Orderly: goodbye already seen, or we are tearing down ourselves.
        cv_.notify_all();
        return;
      }
      state_[static_cast<std::size_t>(peer)] = kDead;
    }
    abort_exchanges("rank " + std::to_string(peer) +
                    " connection lost without a goodbye (process killed or "
                    "crashed)");
    cv_.notify_all();
  }

  void hb_main() {
    std::unique_lock<std::mutex> lk(hb_mu_);
    while (!hb_stop_) {
      hb_cv_.wait_for(lk, std::chrono::duration<double>(hb_period_s_));
      if (hb_stop_) break;
      lk.unlock();
      for (int p = 0; p < world_; ++p) {
        if (p != rank_ && send_frame(p, kHeartbeat, 0, 0, 0, nullptr, 0))
          heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      lk.lock();
    }
  }

  const int world_;
  const int rank_;
  const std::array<std::vector<int>, 3> readers_;
  const double hb_period_s_;
  const double liveness_s_;

  int listen_fd_ = -1;
  std::vector<int> fds_;  // per-rank connection (self = -1)
  std::unique_ptr<std::mutex[]> send_mu_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> abort_notified_{false};

  // Local send buffers + per-slot post counts (the posted-epoch view).
  std::vector<std::vector<unsigned char>> buffers_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;

  // Wire statistics (see Transport::stats); counters ride the frame paths
  // every message already funnels through.
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> frames_recv_{0};
  std::atomic<std::uint64_t> bytes_recv_{0};
  std::atomic<std::uint64_t> heartbeats_sent_{0};

  // Receive side (all under mu_).
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Entry>> inbox_;  // per-slot halo entries, seq-sorted
  std::map<std::uint64_t, std::deque<std::vector<unsigned char>>> ctl_;
  std::vector<PeerState> state_;
  std::vector<Clock::time_point> last_heard_;

  std::vector<std::thread> recv_threads_;
  std::thread hb_thread_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(
    const TransportSpec& spec, std::size_t nslots,
    const std::array<std::vector<int>, 3>& readers) {
  return std::make_unique<TcpTransport>(spec, nslots, readers);
}

#else  // !IGR_HAVE_TCP_TRANSPORT

std::unique_ptr<Transport> make_tcp_transport(
    const TransportSpec&, std::size_t,
    const std::array<std::vector<int>, 3>&) {
  throw TransportError(
      "tcp transport is unavailable on this platform (no BSD sockets)");
}

#endif

}  // namespace igr::sim
