#include "sim/fault.hpp"

#include <csignal>
#include <sstream>
#include <vector>

namespace igr::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

long parse_long(const std::string& s, const std::string& key) {
  std::size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size() || v < 0)
    throw std::invalid_argument("FaultPlan: bad value '" + s + "' for " + key);
  return v;
}

}  // namespace

std::string FaultPlan::describe() const {
  std::ostringstream os;
  bool any = false;
  const auto sep = [&] { if (any) os << ", "; any = true; };
  if (comm_post_at > 0) { sep(); os << "comm-post@" << comm_post_at; }
  if (comm_complete_at > 0) { sep(); os << "comm-complete@" << comm_complete_at; }
  if (phase_at > 0) { sep(); os << "phase@" << phase_at << " rank " << phase_rank; }
  if (io_write_at > 0) { sep(); os << "io-write@" << io_write_at; }
  if (kill_step > 0) { sep(); os << "kill@" << kill_step << " rank " << kill_rank; }
  if (!any) return "disarmed";
  if (seed != 0) os << " (seed " << seed << ")";
  return os.str();
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  std::uint64_t s = seed;
  const std::uint64_t kind = splitmix64(s) % 4;
  const long at = 1 + static_cast<long>(splitmix64(s) % 24);
  switch (kind) {
    case 0: p.comm_post_at = at; break;
    case 1: p.comm_complete_at = at; break;
    case 2:
      p.phase_at = at;
      p.phase_rank = static_cast<int>(splitmix64(s) % 8);
      break;
    default: p.io_write_at = at; break;
  }
  return p;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  std::vector<std::pair<std::string, std::string>> kvs;
  std::istringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  token + "'");
    kvs.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  // A seed expands first so explicit keys can override parts of it.
  for (const auto& [k, v] : kvs) {
    if (k == "seed") {
      p = from_seed(static_cast<std::uint64_t>(parse_long(v, k)));
    }
  }
  for (const auto& [k, v] : kvs) {
    if (k == "seed") continue;
    if (k == "post") {
      p.comm_post_at = parse_long(v, k);
    } else if (k == "complete") {
      p.comm_complete_at = parse_long(v, k);
    } else if (k == "io") {
      p.io_write_at = parse_long(v, k);
    } else if (k == "phase") {
      const auto at_pos = v.find('@');
      if (at_pos == std::string::npos) {
        p.phase_at = parse_long(v, k);
        p.phase_rank = 0;
      } else {
        p.phase_at = parse_long(v.substr(0, at_pos), k);
        p.phase_rank =
            static_cast<int>(parse_long(v.substr(at_pos + 1), "phase rank"));
      }
    } else if (k == "kill") {
      const auto at_pos = v.find('@');
      if (at_pos == std::string::npos) {
        p.kill_step = parse_long(v, k);
        p.kill_rank = 0;
      } else {
        p.kill_step = parse_long(v.substr(0, at_pos), k);
        p.kill_rank =
            static_cast<int>(parse_long(v.substr(at_pos + 1), "kill rank"));
      }
    } else {
      throw std::invalid_argument(
          "FaultPlan: unknown key '" + k +
          "' (expected post/complete/phase/io/kill/seed)");
    }
  }
  return p;
}

void FaultInjector::fire(const std::string& what) {
  fired_.store(true, std::memory_order_relaxed);
  throw InjectedFault("injected fault: " + what + " [plan " +
                      plan_.describe() + "]");
}

void FaultInjector::on_comm_post() {
  const long n = posts_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_.comm_post_at > 0 && n == plan_.comm_post_at)
    fire("comm post #" + std::to_string(n) + " failed");
}

void FaultInjector::on_comm_complete() {
  const long n = completes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_.comm_complete_at > 0 && n == plan_.comm_complete_at)
    fire("comm complete #" + std::to_string(n) + " failed");
}

void FaultInjector::on_phase(int rank) {
  if (plan_.phase_at <= 0 || rank != plan_.phase_rank) return;
  const long n = phases_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n == plan_.phase_at)
    fire("rank " + std::to_string(rank) + " died in phase callback #" +
         std::to_string(n));
}

void FaultInjector::on_step(int rank) {
  if (plan_.kill_step <= 0 || rank != plan_.kill_rank) return;
  const long n = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n == plan_.kill_step) {
    // Real process death, not an exception: nothing unwinds, sockets close
    // mid-conversation, and the peers' liveness tracking has to notice.
    fired_.store(true, std::memory_order_relaxed);
    std::raise(SIGKILL);
  }
}

void FaultInjector::on_io_write() {
  const long n = io_writes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_.io_write_at > 0 && n == plan_.io_write_at)
    fire("checkpoint writer killed at payload chunk #" + std::to_string(n));
}

}  // namespace igr::sim
