#include "sim/rank_team.hpp"

#include <algorithm>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace igr::sim {

RankTeam::RankTeam(int ranks, bool parallel, int threads_per_rank,
                   int hardware_share_ranks)
    : ranks_(ranks) {
  if (ranks < 1) throw std::invalid_argument("RankTeam: ranks must be >= 1");
  if (threads_per_rank < 0)
    throw std::invalid_argument("RankTeam: threads_per_rank must be >= 0");
  if (hardware_share_ranks < ranks) hardware_share_ranks = ranks;
  if (threads_per_rank == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    threads_per_rank_ =
        std::max(1, static_cast<int>(hw) / hardware_share_ranks);
  } else {
    threads_per_rank_ = threads_per_rank;
  }
  if (!parallel) return;
  workers_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    workers_.emplace_back([this, r] { worker_main(r); });
  }
}

RankTeam::~RankTeam() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void RankTeam::run(const std::function<void(int)>& fn) {
  if (!parallel()) {
    for (int r = 0; r < ranks_; ++r) fn(r);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  fn_ = &fn;
  done_ = 0;
  error_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lk, [this] { return done_ == ranks_; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void RankTeam::worker_main(int rank) {
#ifdef _OPENMP
  // Each worker is its own OpenMP initial thread; cap its team so the rank
  // count times the per-rank team never oversubscribes the machine.
  omp_set_num_threads(threads_per_rank_);
#endif
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::function<void(int)>* fn = fn_;
    lk.unlock();

    std::exception_ptr err;
    try {
      (*fn)(rank);
    } catch (...) {
      err = std::current_exception();
    }

    lk.lock();
    if (err && !error_) error_ = err;
    if (++done_ == ranks_) cv_done_.notify_one();
  }
}

}  // namespace igr::sim
