#include "sim/network_model.hpp"

#include <cmath>

namespace igr::sim {

double NetworkModel::allreduce_time(int ranks) const {
  if (ranks <= 1) return 0.0;
  // Reduce + broadcast along a binary tree: 2 * ceil(log2(R)) hops.
  const double hops = 2.0 * std::ceil(std::log2(static_cast<double>(ranks)));
  return hops * latency_s;
}

}  // namespace igr::sim
