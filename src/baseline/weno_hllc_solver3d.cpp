#include "baseline/weno_hllc_solver3d.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "common/half.hpp"
#include "fv/cfl.hpp"
#include "fv/reconstruct.hpp"
#include "fv/riemann.hpp"
#include "fv/rk3.hpp"
#include "fv/viscous.hpp"

namespace igr::baseline {

namespace {
using common::kMomX;
using common::kNumVars;
using common::kRho;
}  // namespace

template <class Policy>
WenoHllcSolver3D<Policy>::WenoHllcSolver3D(const mesh::Grid& grid,
                                           const common::SolverConfig& cfg,
                                           fv::BcSpec bc)
    : grid_(grid),
      cfg_(cfg),
      bc_(std::move(bc)),
      eos_(cfg.gamma),
      q_(grid.nx(), grid.ny(), grid.nz(), 3),
      qstage_(grid.nx(), grid.ny(), grid.nz(), 3),
      rhs_(grid.nx(), grid.ny(), grid.nz(), 3),
      face_l_(grid.nx() + 1, grid.ny() + 1, grid.nz() + 1, 0),
      face_r_(grid.nx() + 1, grid.ny() + 1, grid.nz() + 1, 0),
      face_flux_(grid.nx() + 1, grid.ny() + 1, grid.nz() + 1, 0) {
  cfg_.validate();
  grind_.set_cells_per_step(grid.cells());
}

template <class Policy>
void WenoHllcSolver3D<Policy>::init(const PrimFn& prim) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const auto w = prim(grid_.x(i), grid_.y(j), grid_.z(k));
        const auto qc = eos_.to_cons(w);
        for (int c = 0; c < kNumVars; ++c)
          q_[c](i, j, k) = static_cast<S>(qc[c]);
      }
    }
  }
  time_ = 0.0;
}

template <class Policy>
void WenoHllcSolver3D<Policy>::flux_sweep(common::StateField3<S>& q,
                                          common::StateField3<S>& rhs,
                                          int dir, bool overwrite) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const int n_dir = (dir == 0) ? nx : (dir == 1) ? ny : nz;
  const C d_dir = static_cast<C>((dir == 0)   ? grid_.dx()
                                 : (dir == 1) ? grid_.dy()
                                              : grid_.dz());
  const C inv_d = C(1) / d_dir;
  const C gam = static_cast<C>(cfg_.gamma);
  const C mu = static_cast<C>(cfg_.mu);
  const C zeta = static_cast<C>(cfg_.zeta);
  const bool viscous = (cfg_.mu > 0.0 || cfg_.zeta > 0.0);
  const std::array<C, 3> dd{static_cast<C>(grid_.dx()),
                            static_cast<C>(grid_.dy()),
                            static_cast<C>(grid_.dz())};

  auto cell = [&](int la, int lb, int s) -> std::array<int, 3> {
    switch (dir) {
      case 0: return {s, la, lb};
      case 1: return {la, s, lb};
      default: return {la, lb, s};
    }
  };
  const int na = (dir == 0) ? ny : nx;
  const int nb = (dir == 2) ? ny : nz;

  auto vel = [&](int a, const std::array<int, 3>& c) -> C {
    return static_cast<C>(q[kMomX + a](c[0], c[1], c[2])) /
           static_cast<C>(q[kRho](c[0], c[1], c[2]));
  };
  auto dvel = [&](int a, int ax, std::array<int, 3> c) -> C {
    auto cp = c, cm = c;
    cp[static_cast<std::size_t>(ax)] += 1;
    cm[static_cast<std::size_t>(ax)] -= 1;
    return (vel(a, cp) - vel(a, cm)) /
           (C(2) * dd[static_cast<std::size_t>(ax)]);
  };

  // Pass 1 (stored, array-based): WENO5 reconstruction of both face states,
  // written to full face fields — the conventional structure whose stored
  // intermediates the IGR fused kernel eliminates (§5.4).  Lines are
  // gathered into contiguous buffers before reconstruction.
#pragma omp parallel
  {
    const std::size_t line_len = static_cast<std::size_t>(n_dir) + 6;
    std::vector<C> lines(static_cast<std::size_t>(kNumVars) * line_len);

#pragma omp for collapse(2)
    for (int lb = 0; lb < nb; ++lb) {
      for (int la = 0; la < na; ++la) {
        const auto c0 = cell(la, lb, 0);
        for (int c = 0; c < kNumVars; ++c) {
          const S* p = &q[c](c0[0], c0[1], c0[2]);
          const std::ptrdiff_t st = q[c].stride(dir);
          C* line = lines.data() + static_cast<std::size_t>(c) * line_len;
          for (int s = -3; s < n_dir + 3; ++s)
            line[s + 3] = static_cast<C>(p[s * st]);
        }
        for (int c = 0; c < kNumVars; ++c) {
          S* pl = &face_l_[c](c0[0], c0[1], c0[2]);
          S* pr = &face_r_[c](c0[0], c0[1], c0[2]);
          const std::ptrdiff_t fst = face_l_[c].stride(dir);
          const C* line =
              lines.data() + static_cast<std::size_t>(c) * line_len;
          // The baseline always runs WENO5; bind it at compile time so the
          // nonlinear-weight arithmetic inlines into this loop instead of
          // re-dispatching through the scheme switch per face.
          for (int fi = 0; fi <= n_dir; ++fi) {
            const auto f =
                fv::reconstruct_fixed<fv::ReconScheme::kWeno5>(line + fi);
            pl[fi * fst] = static_cast<S>(f.left);
            pr[fi * fst] = static_cast<S>(f.right);
          }
        }
      }
    }
  }

  // Pass 2 (stored): HLLC flux (+ viscous contribution) at each face.
#pragma omp parallel for collapse(2)
  for (int lb = 0; lb < nb; ++lb) {
    for (int la = 0; la < na; ++la) {
      const auto c0l = cell(la, lb, 0);
      const std::ptrdiff_t fst = face_l_[0].stride(dir);
      for (int fi = 0; fi <= n_dir; ++fi) {
        common::Cons<C> ql, qr;
        for (int c = 0; c < kNumVars; ++c) {
          const S* pl = &face_l_[c](c0l[0], c0l[1], c0l[2]);
          const S* pr = &face_r_[c](c0l[0], c0l[1], c0l[2]);
          ql[c] = static_cast<C>(pl[fi * fst]);
          qr[c] = static_cast<C>(pr[fi * fst]);
        }
        ql.rho = std::max(ql.rho, C(1e-12));
        qr.rho = std::max(qr.rho, C(1e-12));
        auto wl = eos_.to_prim(ql);
        auto wr = eos_.to_prim(qr);
        wl.p = std::max(wl.p, C(0));
        wr.p = std::max(wr.p, C(0));
        auto f = fv::hllc_flux(wl, ql.e, wr, qr.e, gam, dir);

        if (viscous) {
          const int i = fi - 1;
          const auto c0 = cell(la, lb, i);
          const auto c1 = cell(la, lb, i + 1);
          fv::VelGrad<C> g;
          C uf[3];
          for (int a = 0; a < 3; ++a) {
            uf[a] = C(0.5) * (vel(a, c0) + vel(a, c1));
            for (int ax = 0; ax < 3; ++ax) {
              if (ax == dir) {
                g.g[a][ax] = (vel(a, c1) - vel(a, c0)) * inv_d;
              } else {
                g.g[a][ax] = C(0.5) * (dvel(a, ax, c0) + dvel(a, ax, c1));
              }
            }
          }
          const auto fvisc = fv::viscous_flux(g, uf, mu, zeta, dir);
          for (int c = 0; c < kNumVars; ++c) f[c] += fvisc[c];
        }

        for (int c = 0; c < kNumVars; ++c) {
          S* pf = &face_flux_[c](c0l[0], c0l[1], c0l[2]);
          pf[fi * fst] = static_cast<S>(f[c]);
        }
      }
    }
  }

  // Pass 3: flux divergence into the RHS (the first sweep overwrites,
  // folding the per-stage zero-fill into its write-back).
#pragma omp parallel for collapse(2)
  for (int lb = 0; lb < nb; ++lb) {
    for (int la = 0; la < na; ++la) {
      const auto c0 = cell(la, lb, 0);
      for (int c = 0; c < kNumVars; ++c) {
        S* pr = &rhs[c](c0[0], c0[1], c0[2]);
        const S* pf = &face_flux_[c](c0[0], c0[1], c0[2]);
        const std::ptrdiff_t rst = rhs[c].stride(dir);
        const std::ptrdiff_t fst = face_flux_[c].stride(dir);
        if (overwrite) {
          for (int s = 0; s < n_dir; ++s) {
            const C fa = static_cast<C>(pf[s * fst]);
            const C fb = static_cast<C>(pf[(s + 1) * fst]);
            pr[s * rst] = static_cast<S>((fa - fb) * inv_d);
          }
        } else {
          for (int s = 0; s < n_dir; ++s) {
            const C cur = static_cast<C>(pr[s * rst]);
            const C fa = static_cast<C>(pf[s * fst]);
            const C fb = static_cast<C>(pf[(s + 1) * fst]);
            pr[s * rst] = static_cast<S>(cur + (fa - fb) * inv_d);
          }
        }
      }
    }
  }
}

template <class Policy>
void WenoHllcSolver3D<Policy>::compute_rhs(common::StateField3<S>& q,
                                           common::StateField3<S>& rhs) {
  fv::apply_bc(q, bc_, grid_, eos_);
  for (int dir = 0; dir < 3; ++dir)
    flux_sweep(q, rhs, dir, /*overwrite=*/dir == 0);
}

template <class Policy>
void WenoHllcSolver3D<Policy>::step_fixed(double dt) {
  grind_.begin_step();
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  qstage_ = q_;
  for (const auto& st : fv::kRk3Stages) {
    compute_rhs(qstage_, rhs_);
    const C a = static_cast<C>(st.a);
    const C b = static_cast<C>(st.b);
    const C dtc = static_cast<C>(dt);
#pragma omp parallel for
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
          for (int c = 0; c < kNumVars; ++c) {
            const C qn = static_cast<C>(q_[c](i, j, k));
            const C qs = static_cast<C>(qstage_[c](i, j, k));
            const C r = static_cast<C>(rhs_[c](i, j, k));
            qstage_[c](i, j, k) = static_cast<S>(a * qn + b * (qs + dtc * r));
          }
        }
      }
    }
  }
  std::swap(q_, qstage_);
  time_ += dt;
  grind_.end_step();
}

template <class Policy>
double WenoHllcSolver3D<Policy>::step() {
  const double dt = fv::compute_dt(q_, grid_, eos_, cfg_);
  step_fixed(dt);
  return dt;
}

template <class Policy>
std::size_t WenoHllcSolver3D<Policy>::memory_bytes() const {
  return q_.bytes() + qstage_.bytes() + rhs_.bytes() + face_l_.bytes() +
         face_r_.bytes() + face_flux_.bytes();
}

template <class Policy>
double WenoHllcSolver3D<Policy>::storage_per_cell() const {
  // 5 each: state, RK register, RHS, face-left, face-right, face-flux.
  return 30.0;
}

template <class Policy>
common::Cons<double> WenoHllcSolver3D<Policy>::conserved_totals() const {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const double dv = grid_.dx() * grid_.dy() * grid_.dz();
  common::Cons<double> tot{};
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (int c = 0; c < kNumVars; ++c)
          tot[c] += static_cast<double>(q_[c](i, j, k)) * dv;
      }
    }
  }
  return tot;
}

template class WenoHllcSolver3D<common::Fp64>;
template class WenoHllcSolver3D<common::Fp32>;
// Instantiated so the generic Simulation driver links; the driver refuses to
// construct it (WENO/HLLC is numerically unstable below FP64, §4.3).
template class WenoHllcSolver3D<common::Fp16x32>;
template class WenoHllcSolver3D<common::Bf16x32>;

}  // namespace igr::baseline
