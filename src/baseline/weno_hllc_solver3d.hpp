#pragma once
/// \file weno_hllc_solver3d.hpp
/// The paper's performance baseline (§6.2): an optimized 5th-order WENO
/// reconstruction + HLLC approximate Riemann solver, the state of the art
/// for shock-laden compressible flow.
///
/// Faithful to array-based production implementations (MFC), the baseline
/// stores full-field reconstructed face states and face fluxes for the
/// active sweep direction — the storage the IGR implementation eliminates by
/// kernel fusion (§5.4).  Its per-cell storage is therefore substantially
/// higher than IGR's 17 values; `memory_bytes()` reports the real footprint
/// and core/memory_footprint.hpp provides the paper-accounting comparison.
///
/// Per §4.3, WENO/HLLC involve poorly conditioned operations and are only
/// robust in FP64; FP32 is provided to demonstrate exactly that in tests.

#include <functional>

#include "common/config.hpp"
#include "common/field3.hpp"
#include "common/precision.hpp"
#include "common/timer.hpp"
#include "eos/ideal_gas.hpp"
#include "fv/bc.hpp"
#include "mesh/grid.hpp"

namespace igr::baseline {

/// Initial condition alias shared with the IGR solver.
using PrimFn = std::function<common::Prim<double>(double, double, double)>;

template <class Policy>
class WenoHllcSolver3D {
 public:
  using S = typename Policy::storage_t;
  using C = typename Policy::compute_t;

  WenoHllcSolver3D(const mesh::Grid& grid, const common::SolverConfig& cfg,
                   fv::BcSpec bc);

  void init(const PrimFn& prim);

  double step();
  void step_fixed(double dt);
  void compute_rhs(common::StateField3<S>& q, common::StateField3<S>& rhs);

  [[nodiscard]] common::StateField3<S>& state() { return q_; }
  [[nodiscard]] const common::StateField3<S>& state() const { return q_; }
  [[nodiscard]] const mesh::Grid& grid() const { return grid_; }
  [[nodiscard]] double time() const { return time_; }
  /// Restore the simulated-time clock (checkpoint restart).
  void set_time(double t) { time_ = t; }

  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] double storage_per_cell() const;
  [[nodiscard]] common::GrindTimer& grind_timer() { return grind_; }
  [[nodiscard]] common::Cons<double> conserved_totals() const;

 private:
  /// One dimensional sweep; `overwrite` folds the RHS zeroing into the
  /// first sweep's write-back.  Reconstruction is bound to WENO5 at compile
  /// time inside (the baseline has no scheme choice).
  void flux_sweep(common::StateField3<S>& q, common::StateField3<S>& rhs,
                  int dir, bool overwrite);

  mesh::Grid grid_;
  common::SolverConfig cfg_;
  fv::BcSpec bc_;
  eos::IdealGas eos_;
  double time_ = 0.0;

  common::StateField3<S> q_;
  common::StateField3<S> qstage_;
  common::StateField3<S> rhs_;
  // Array-based intermediates (face-indexed; +1 along the sweep direction).
  common::StateField3<S> face_l_, face_r_, face_flux_;

  common::GrindTimer grind_;
};

}  // namespace igr::baseline
