#pragma once
/// \file lad_solver1d.hpp
/// Localized artificial diffusivity (LAD) 1-D solver — the "current SoA"
/// comparator of paper Fig. 2 (Cook & Cabot 2004-style viscous shock
/// regularization).  An artificial shear/bulk viscosity proportional to the
/// local compression is added where the flow compresses; the user-defined
/// coefficient sets the captured shock width.  Large coefficients (needed
/// for strong shocks / coarse grids) visibly dissipate oscillatory features
/// — the failure mode IGR eliminates.

#include <functional>
#include <vector>

#include "core/igr_solver1d.hpp"
#include "fv/reconstruct.hpp"

namespace igr::baseline {

class LadSolver1D {
 public:
  struct Options {
    double gamma = 1.4;
    /// Artificial-viscosity coefficient: mu_art = c_lad * rho * dx^2 * |u_x|
    /// on compression (u_x < 0).  Larger -> wider, smoother shocks and more
    /// dissipation of genuine oscillations.
    double c_lad = 2.0;
    double cfl = 0.4;
    core::Bc1D bc = core::Bc1D::kOutflow;
    fv::ReconScheme recon = fv::ReconScheme::kFifth;
  };

  LadSolver1D(int n, double x0, double x1, Options opt);

  void init(const core::PrimFn1D& prim);
  double step();
  void step_fixed(double dt);
  void advance_to(double t_end);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double x(int i) const { return x0_ + (i + 0.5) * dx_; }
  [[nodiscard]] double time() const { return time_; }

  [[nodiscard]] std::vector<double> rho() const;
  [[nodiscard]] std::vector<double> velocity() const;
  [[nodiscard]] std::vector<double> pressure() const;

 private:
  void apply_bc(std::vector<double>& a) const;
  void fill_ghosts();
  void update_art_visc();
  void compute_rhs();
  [[nodiscard]] double max_wave_speed() const;
  [[nodiscard]] double max_art_visc() const;

  int n_;
  double x0_, dx_;
  Options opt_;
  double time_ = 0.0;

  static constexpr int ng_ = 3;
  std::vector<double> rho_, mom_, e_;
  std::vector<double> rho0_, mom0_, e0_;
  std::vector<double> rrho_, rmom_, re_;
  std::vector<double> mu_art_;
};

}  // namespace igr::baseline
