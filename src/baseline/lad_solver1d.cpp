#include "baseline/lad_solver1d.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "fv/rk3.hpp"

namespace igr::baseline {

namespace {
constexpr double kTiny = 1e-300;
}

LadSolver1D::LadSolver1D(int n, double x0, double x1, Options opt)
    : n_(n), x0_(x0), dx_((x1 - x0) / n), opt_(opt) {
  if (n < 8) throw std::invalid_argument("LadSolver1D: need at least 8 cells");
  const std::size_t sz = static_cast<std::size_t>(n) + 2 * ng_;
  for (auto* v : {&rho_, &mom_, &e_, &rho0_, &mom0_, &e0_, &rrho_, &rmom_,
                  &re_, &mu_art_}) {
    v->assign(sz, 0.0);
  }
}

void LadSolver1D::init(const core::PrimFn1D& prim) {
  const double gm1 = opt_.gamma - 1.0;
  for (int i = 0; i < n_; ++i) {
    const auto w = prim(x(i));
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    rho_[c] = w.rho;
    mom_[c] = w.rho * w.u;
    e_[c] = w.p / gm1 + 0.5 * w.rho * w.u * w.u;
  }
  time_ = 0.0;
}

void LadSolver1D::apply_bc(std::vector<double>& a) const {
  for (int g = 1; g <= ng_; ++g) {
    if (opt_.bc == core::Bc1D::kPeriodic) {
      a[static_cast<std::size_t>(ng_ - g)] =
          a[static_cast<std::size_t>(n_ + ng_ - g)];
      a[static_cast<std::size_t>(n_ + ng_ + g - 1)] =
          a[static_cast<std::size_t>(ng_ + g - 1)];
    } else {
      a[static_cast<std::size_t>(ng_ - g)] = a[ng_];
      a[static_cast<std::size_t>(n_ + ng_ + g - 1)] =
          a[static_cast<std::size_t>(n_ + ng_ - 1)];
    }
  }
}

void LadSolver1D::fill_ghosts() {
  apply_bc(rho_);
  apply_bc(mom_);
  apply_bc(e_);
}

void LadSolver1D::update_art_visc() {
  fill_ghosts();
  // Artificial viscosity coefficient at cell centers (compression sensor).
  // Density is clamped positive so a transient undershoot can never flip
  // the sign of the diffusivity (anti-diffusion would blow up).
  for (int i = -1; i <= n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const double rc = std::max(rho_[c], 1e-12);
    const double up = mom_[c + 1] / std::max(rho_[c + 1], 1e-12);
    const double um = mom_[c - 1] / std::max(rho_[c - 1], 1e-12);
    const double ux = (up - um) / (2.0 * dx_);
    mu_art_[c] =
        (ux < 0.0) ? opt_.c_lad * rc * dx_ * dx_ * std::abs(ux) : 0.0;
  }
  apply_bc(mu_art_);
}

void LadSolver1D::compute_rhs() {
  const double gm1 = opt_.gamma - 1.0;
  const double inv_dx = 1.0 / dx_;
  update_art_visc();

  std::vector<std::array<double, 3>> flux(static_cast<std::size_t>(n_) + 1);
  for (int f = 0; f <= n_; ++f) {
    const int i = f - 1;
    std::array<double, 6> sr{}, sm{}, se{};
    for (int m = 0; m < 6; ++m) {
      const std::size_t c = static_cast<std::size_t>(i - 2 + m + ng_);
      sr[static_cast<std::size_t>(m)] = rho_[c];
      sm[static_cast<std::size_t>(m)] = mom_[c];
      se[static_cast<std::size_t>(m)] = e_[c];
    }
    auto fr = fv::reconstruct(opt_.recon, sr);
    auto fm = fv::reconstruct(opt_.recon, sm);
    auto fe = fv::reconstruct(opt_.recon, se);

    // First-order fallback at non-physical reconstructed states (same
    // safeguard as the IGR solvers).
    auto nonphysical = [](double r, double m, double E) {
      return !(r > 0.0) || !(E - 0.5 * m * m / r > 0.0);
    };
    if (nonphysical(fr.left, fm.left, fe.left) ||
        nonphysical(fr.right, fm.right, fe.right)) {
      fr = {sr[2], sr[3]};
      fm = {sm[2], sm[3]};
      fe = {se[2], se[3]};
    }

    auto side = [&](double r, double m, double E, std::array<double, 3>& out,
                    double& smax) {
      r = std::max(r, 1e-12);
      const double u = m / r;
      const double p = std::max(gm1 * (E - 0.5 * m * u), kTiny);
      out = {m, m * u + p, (E + p) * u};
      smax = std::abs(u) + std::sqrt(opt_.gamma * p / r);
    };
    std::array<double, 3> fl{}, frr{};
    double sl = 0, srr = 0;
    side(fr.left, fm.left, fe.left, fl, sl);
    side(fr.right, fm.right, fe.right, frr, srr);
    const double smax = std::max(sl, srr);

    const std::array<double, 3> ul{fr.left, fm.left, fe.left};
    const std::array<double, 3> ur{fr.right, fm.right, fe.right};
    std::array<double, 3> fc{};
    for (int c = 0; c < 3; ++c) {
      fc[static_cast<std::size_t>(c)] =
          0.5 * (fl[static_cast<std::size_t>(c)] +
                 frr[static_cast<std::size_t>(c)]) -
          0.5 * smax * (ur[static_cast<std::size_t>(c)] -
                        ul[static_cast<std::size_t>(c)]);
    }

    // Artificial viscous flux at the face: -mu_art du/dx (momentum) and
    // -mu_art u du/dx (energy), 2nd-order face gradient.
    const std::size_t c0 = static_cast<std::size_t>(i + ng_);
    const std::size_t c1 = c0 + 1;
    const double mu_f = 0.5 * (mu_art_[c0] + mu_art_[c1]);
    if (mu_f > 0.0) {
      const double u0 = mom_[c0] / rho_[c0];
      const double u1 = mom_[c1] / rho_[c1];
      const double dudx = (u1 - u0) * inv_dx;
      const double uf = 0.5 * (u0 + u1);
      fc[1] -= mu_f * dudx;
      fc[2] -= mu_f * uf * dudx;
    }
    flux[static_cast<std::size_t>(f)] = fc;
  }

  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const std::size_t f = static_cast<std::size_t>(i);
    rrho_[c] = (flux[f][0] - flux[f + 1][0]) * inv_dx;
    rmom_[c] = (flux[f][1] - flux[f + 1][1]) * inv_dx;
    re_[c] = (flux[f][2] - flux[f + 1][2]) * inv_dx;
  }
}

double LadSolver1D::max_wave_speed() const {
  const double gm1 = opt_.gamma - 1.0;
  double smax = kTiny;
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const double u = mom_[c] / rho_[c];
    const double p = std::max(gm1 * (e_[c] - 0.5 * mom_[c] * u), kTiny);
    smax = std::max(smax, std::abs(u) + std::sqrt(opt_.gamma * p / rho_[c]));
  }
  return smax;
}

double LadSolver1D::max_art_visc() const {
  double m = 0.0;
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    m = std::max(m, mu_art_[c] / rho_[c]);
  }
  return m;
}

double LadSolver1D::step() {
  // Advective limit plus the explicit-diffusion limit the artificial
  // viscosity imposes — the CFL penalty §4.1 attributes to viscous methods.
  // The sensor is re-evaluated on the *current* state (it can grow sharply
  // within a step as the shock steepens) with a safety margin for the
  // intra-step growth.
  update_art_visc();
  double dt = opt_.cfl * dx_ / max_wave_speed();
  const double nu = max_art_visc();
  if (nu > 0.0) dt = std::min(dt, 0.2 * dx_ * dx_ / (2.0 * nu));
  step_fixed(dt);
  return dt;
}

void LadSolver1D::step_fixed(double dt) {
  rho0_ = rho_;
  mom0_ = mom_;
  e0_ = e_;
  for (const auto& st : fv::kRk3Stages) {
    compute_rhs();
    for (int i = 0; i < n_; ++i) {
      const std::size_t c = static_cast<std::size_t>(i + ng_);
      rho_[c] = st.a * rho0_[c] + st.b * (rho_[c] + dt * rrho_[c]);
      mom_[c] = st.a * mom0_[c] + st.b * (mom_[c] + dt * rmom_[c]);
      e_[c] = st.a * e0_[c] + st.b * (e_[c] + dt * re_[c]);
    }
  }
  time_ += dt;
}

void LadSolver1D::advance_to(double t_end) {
  while (time_ < t_end - 1e-14) {
    update_art_visc();
    double dt = opt_.cfl * dx_ / max_wave_speed();
    const double nu = max_art_visc();
    if (nu > 0.0) dt = std::min(dt, 0.2 * dx_ * dx_ / (2.0 * nu));
    dt = std::min(dt, t_end - time_);
    step_fixed(dt);
  }
}

std::vector<double> LadSolver1D::rho() const {
  return {rho_.begin() + ng_, rho_.begin() + ng_ + n_};
}

std::vector<double> LadSolver1D::velocity() const {
  std::vector<double> v(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    v[static_cast<std::size_t>(i)] = mom_[c] / rho_[c];
  }
  return v;
}

std::vector<double> LadSolver1D::pressure() const {
  const double gm1 = opt_.gamma - 1.0;
  std::vector<double> v(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const double u = mom_[c] / rho_[c];
    v[static_cast<std::size_t>(i)] = gm1 * (e_[c] - 0.5 * mom_[c] * u);
  }
  return v;
}

}  // namespace igr::baseline
