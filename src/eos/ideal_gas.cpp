#include "eos/ideal_gas.hpp"

#include <stdexcept>

namespace igr::eos {

IdealGas::IdealGas(double gamma) : gamma_(gamma) {
  if (gamma <= 1.0) throw std::invalid_argument("IdealGas: gamma must exceed 1");
}

}  // namespace igr::eos
