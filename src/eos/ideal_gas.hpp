#pragma once
/// \file ideal_gas.hpp
/// Ideal-gas (gamma-law) equation of state, paper eq. (4):
///   p = (gamma - 1) * rho * e,   e = E/rho - |u|^2/2.

#include <cmath>

#include "common/state.hpp"

namespace igr::eos {

/// Gamma-law EOS.  All member functions are templated on the compute type so
/// the same code path serves FP32 and FP64 kernels.
class IdealGas {
 public:
  explicit IdealGas(double gamma = 1.4);

  [[nodiscard]] double gamma() const { return gamma_; }

  /// Pressure from conservative state.
  template <class T>
  T pressure(const common::Cons<T>& q) const {
    const T g = static_cast<T>(gamma_);
    const T ke = (q.mx * q.mx + q.my * q.my + q.mz * q.mz) / (T(2) * q.rho);
    return (g - T(1)) * (q.e - ke);
  }

  /// Total energy from primitive state.
  template <class T>
  T total_energy(const common::Prim<T>& w) const {
    const T g = static_cast<T>(gamma_);
    return w.p / (g - T(1)) + T(0.5) * w.rho * w.speed2();
  }

  /// Speed of sound c = sqrt(gamma p / rho).
  template <class T>
  T sound_speed(T rho, T p) const {
    return std::sqrt(static_cast<T>(gamma_) * p / rho);
  }

  /// Specific internal energy e = p / ((gamma-1) rho).
  template <class T>
  T internal_energy(T rho, T p) const {
    return p / ((static_cast<T>(gamma_) - T(1)) * rho);
  }

  /// Primitive from conservative.
  template <class T>
  common::Prim<T> to_prim(const common::Cons<T>& q) const {
    common::Prim<T> w;
    w.rho = q.rho;
    w.u = q.mx / q.rho;
    w.v = q.my / q.rho;
    w.w = q.mz / q.rho;
    w.p = pressure(q);
    return w;
  }

  /// Conservative from primitive.
  template <class T>
  common::Cons<T> to_cons(const common::Prim<T>& w) const {
    common::Cons<T> q;
    q.rho = w.rho;
    q.mx = w.rho * w.u;
    q.my = w.rho * w.v;
    q.mz = w.rho * w.w;
    q.e = total_energy(w);
    return q;
  }

 private:
  double gamma_;
};

}  // namespace igr::eos
