#include "mem/memory_model.hpp"

#include <algorithm>

namespace igr::mem {

double MemoryModel::unified_traffic_bytes_per_cell(std::size_t bytes_per_real,
                                                   const Placement& placement) {
  double vars = 0.0;
  if (placement.host_rk_register) {
    // 3 RK stages read q^n (5 vars) + the end-of-step register write.
    vars += (3.0 + 1.0) * 5.0;
  }
  if (placement.host_igr_temporaries) {
    // Sigma warm-start read + solution write per stage, source write+read.
    vars += 3.0 * 4.0;
  }
  return vars * static_cast<double>(bytes_per_real);
}

double MemoryModel::unified_overhead_ns(const perf::Platform& p,
                                        std::size_t bytes_per_real,
                                        const Placement& placement) {
  if (p.unified_pool || p.c2c_bandwidth_Bps <= 0.0) return 0.0;
  const double bytes = unified_traffic_bytes_per_cell(bytes_per_real, placement);
  return bytes / (p.c2c_bandwidth_Bps * p.c2c_efficiency) * 1.0e9;
}

double MemoryModel::capacity_cells(const perf::Platform& p,
                                   const core::FootprintModel& model,
                                   perf::MemMode mode,
                                   const Placement& placement) {
  const double bytes_per_cell = model.bytes_per_cell();
  if (p.unified_pool) {
    // Single pool: everything shares the APU's HBM regardless of mode.
    return p.device_mem_bytes / bytes_per_cell;
  }
  if (mode == perf::MemMode::kInCore) {
    return p.device_mem_bytes / bytes_per_cell;
  }
  // Unified: host-resident fraction leaves the device (§5.5.3, 12/17 or
  // 10/17 of the state on-device for IGR).
  const double device_frac = core::device_resident_fraction(
      placement.host_rk_register, placement.host_igr_temporaries);
  const double host_frac = 1.0 - device_frac;
  const double dev_cap =
      p.device_mem_bytes / (bytes_per_cell * device_frac);
  const double host_cap =
      host_frac > 0.0
          ? p.host_mem_bytes / (bytes_per_cell * host_frac)
          : dev_cap;
  return std::min(dev_cap, host_cap);
}

}  // namespace igr::mem
