#pragma once
/// \file memory_model.hpp
/// Unified-memory placement and traffic model (§5.5).
///
/// The paper's out-of-core strategy parks the Runge–Kutta sub-step register
/// (and optionally the IGR temporaries) in host memory and accesses them
/// zero-copy over the chip-to-chip link during the RK update (Fig. 4).  The
/// grind-time overhead of unified mode is then the per-cell cross-link
/// traffic divided by the achievable link bandwidth — which is how Table 3's
/// in-core vs unified deltas arise (<5% on GH200's 900 GB/s NVLink-C2C,
/// 42–51% on Frontier's 72 GB/s xGMI, 0% on MI300A's single HBM pool).

#include <cstddef>

#include "core/memory_footprint.hpp"
#include "perf/platform.hpp"

namespace igr::mem {

/// Where the RK register and IGR temporaries live.
struct Placement {
  bool host_rk_register = true;   ///< §5.5.3: sub-step on the host.
  bool host_igr_temporaries = false;  ///< Sigma + source on the host too.
};

class MemoryModel {
 public:
  /// Cross-link bytes per cell per time step in unified mode: the RK update
  /// reads the host-resident register once per stage and writes it once per
  /// step (Fig. 4's q2 traffic).
  static double unified_traffic_bytes_per_cell(std::size_t bytes_per_real,
                                               const Placement& placement);

  /// Grind-time overhead (ns per cell per step) of unified mode on a
  /// platform; zero for single-pool devices (MI300A).
  static double unified_overhead_ns(const perf::Platform& p,
                                    std::size_t bytes_per_real,
                                    const Placement& placement);

  /// Largest per-device cell count for a scheme on a platform.  In unified
  /// mode the host-resident share of the footprint moves off-device and the
  /// host pool bounds it instead.
  static double capacity_cells(const perf::Platform& p,
                               const core::FootprintModel& model,
                               perf::MemMode mode, const Placement& placement);
};

}  // namespace igr::mem
