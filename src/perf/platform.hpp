#pragma once
/// \file platform.hpp
/// Specifications of the three machines the paper evaluates (Table 2), plus
/// the paper's measured single-device grind times (Table 3) used to
/// calibrate the performance models.

#include <array>
#include <cstddef>
#include <string>

#include "sim/network_model.hpp"

namespace igr::perf {

enum class Scheme : int { kBaselineWeno = 0, kIgr = 1 };
enum class Precision : int { kFp64 = 0, kFp32 = 1, kFp16x32 = 2 };
enum class MemMode : int { kInCore = 0, kUnified = 1 };

/// Marker for entries the paper reports as numerically unstable or not
/// applicable (e.g., WENO below FP64).
inline constexpr double kNotApplicable = -1.0;

struct Platform {
  std::string name;          ///< e.g. "El Capitan"
  std::string device;        ///< e.g. "MI300A"
  int devices_per_node = 4;
  int full_system_nodes = 0;

  double device_mem_bytes = 0;  ///< HBM per device (GCD for MI250X).
  double host_mem_bytes = 0;    ///< CPU memory share per device.
  bool unified_pool = false;    ///< MI300A: single physical HBM pool.

  /// CPU<->GPU link bandwidth per device (bytes/s) and its achievable
  /// efficiency for streaming RK-register traffic (calibrated from Table 3).
  double c2c_bandwidth_Bps = 0;
  double c2c_efficiency = 1.0;

  sim::NetworkModel network;

  /// Per-step fixed software/runtime overhead (kernel launches, MPI stack)
  /// that bounds strong scaling; calibrated against the paper's full-system
  /// strong-scaling efficiencies (Fig. 7).
  double step_overhead_s = 0.0;

  /// Per-device cell count of the paper's weak-scaling/full-system runs
  /// (1386^3 per GCD on Frontier, 1611^3 per GH200 on Alps, 1380^3 per
  /// MI300A on El Capitan), §7.2.
  double weak_cells_per_device = 0.0;

  /// Paper Table 3 grind times [scheme][precision][memmode] in ns/cell/step;
  /// kNotApplicable where the paper marks instability or always-unified.
  std::array<std::array<std::array<double, 2>, 3>, 2> grind_ns{};

  /// Paper Table 4 energy (uJ/cell/step) [scheme] (FP64 column).
  std::array<double, 2> energy_uJ{};

  [[nodiscard]] double grind(Scheme s, Precision p, MemMode m) const {
    return grind_ns[static_cast<std::size_t>(s)][static_cast<std::size_t>(p)]
                   [static_cast<std::size_t>(m)];
  }
  [[nodiscard]] int full_system_devices() const {
    return devices_per_node * full_system_nodes;
  }
};

/// LLNL El Capitan: 4x MI300A APU per node (unified HBM pool).
Platform el_capitan();
/// OLCF Frontier: 4x MI250X per node; modeled per GCD (8 GCDs/node).
Platform frontier();
/// CSCS Alps: 4x GH200 per node.
Platform alps();

/// All three, in the paper's presentation order.
std::array<Platform, 3> all_platforms();

const char* scheme_name(Scheme s);
const char* precision_name(Precision p);
const char* memmode_name(MemMode m);

}  // namespace igr::perf
