#pragma once
/// \file scaling_model.hpp
/// Weak/strong scaling simulator for the Figs. 6–8 reproductions.
///
/// Per-step time on D devices with N cells each:
///   t = N * grind + overhead + t_halo(state) + t_halo(Sigma) + t_allreduce
/// where grind is the platform's measured per-cell time (Table 3), overhead
/// is the per-step fixed software cost calibrated against the paper's
/// full-system strong-scaling efficiencies, and the halo terms follow the
/// scheme's actual message sizes (3 ghost layers x 5 variables per RK stage;
/// 1 variable per Sigma sweep) through the NetworkModel.

#include <cstddef>
#include <vector>

#include "perf/platform.hpp"

namespace igr::perf {

struct ScalingPoint {
  int devices = 0;
  double cells_per_device = 0;
  double time_per_step_s = 0;
  double speedup = 1.0;      ///< Relative to the first (base) point.
  double efficiency = 1.0;   ///< Weak: t_base/t; strong: speedup/ideal.
};

class ScalingModel {
 public:
  ScalingModel(Platform platform, Scheme scheme, Precision prec, MemMode mem);

  /// Override the grind time (e.g., with a locally measured value).
  void set_grind_ns(double ns) { grind_ns_ = ns; }
  [[nodiscard]] double grind_ns() const { return grind_ns_; }

  /// Per-step wall time for one device count / local size.
  [[nodiscard]] double time_per_step(double cells_per_device,
                                     int devices) const;

  /// Fixed work per device (Fig. 6).  Efficiency = t(base)/t(D).
  [[nodiscard]] std::vector<ScalingPoint> weak_scaling(
      double cells_per_device, const std::vector<int>& device_counts) const;

  /// Fixed total work (Figs. 7, 8).  Speedup relative to the first count.
  [[nodiscard]] std::vector<ScalingPoint> strong_scaling(
      double total_cells, const std::vector<int>& device_counts) const;

  /// Largest total problem (cells) on D devices given the per-device
  /// capacity; used for the 200T-cell / 1-quadrillion-DoF headline.
  [[nodiscard]] double max_total_cells(int devices,
                                       double cells_per_device) const;

  [[nodiscard]] static std::size_t bytes_per_real(Precision p);
  [[nodiscard]] const Platform& platform() const { return platform_; }

 private:
  [[nodiscard]] double comm_time(double cells_per_device, int devices) const;

  Platform platform_;
  Scheme scheme_;
  Precision prec_;
  MemMode mem_;
  double grind_ns_ = 0.0;
  static constexpr int kGhostLayers = 3;
  static constexpr int kRkStages = 3;
  static constexpr int kSigmaSweeps = 5;
};

}  // namespace igr::perf
