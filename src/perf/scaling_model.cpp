#include "perf/scaling_model.hpp"

#include <cmath>
#include <stdexcept>

namespace igr::perf {

ScalingModel::ScalingModel(Platform platform, Scheme scheme, Precision prec,
                           MemMode mem)
    : platform_(std::move(platform)), scheme_(scheme), prec_(prec), mem_(mem) {
  grind_ns_ = platform_.grind(scheme, prec, mem);
  if (grind_ns_ == kNotApplicable) {
    // Fall back to the other memory mode; callers may also override via
    // set_grind_ns (required when the paper marks the entry unstable).
    const auto other =
        (mem == MemMode::kInCore) ? MemMode::kUnified : MemMode::kInCore;
    grind_ns_ = platform_.grind(scheme, prec, other);
  }
}

std::size_t ScalingModel::bytes_per_real(Precision p) {
  switch (p) {
    case Precision::kFp64: return 8;
    case Precision::kFp32: return 4;
    default: return 2;  // FP16 storage
  }
}

double ScalingModel::comm_time(double cells_per_device, int devices) const {
  if (devices <= 1) return 0.0;
  const double face_cells = std::pow(cells_per_device, 2.0 / 3.0);
  const double bytes = static_cast<double>(bytes_per_real(prec_));

  // Conservative-state halos: 5 vars x 3 ghost layers, once per RK stage.
  const double state_msg = face_cells * kGhostLayers * 5.0 * bytes;
  double t = kRkStages * platform_.network.halo_time(
                             static_cast<std::size_t>(state_msg));

  // Sigma halos: 1 var per relaxation sweep (+1 final), IGR only.
  if (scheme_ == Scheme::kIgr) {
    const double sigma_msg = face_cells * kGhostLayers * bytes;
    t += kRkStages * (kSigmaSweeps + 1) *
         platform_.network.halo_time(static_cast<std::size_t>(sigma_msg));
  }

  // dt allreduce once per step.
  t += platform_.network.allreduce_time(devices);
  return t;
}

double ScalingModel::time_per_step(double cells_per_device,
                                   int devices) const {
  if (grind_ns_ <= 0.0) {
    throw std::invalid_argument(
        "ScalingModel: no grind time for this configuration (the paper marks "
        "it numerically unstable); call set_grind_ns to supply one");
  }
  return cells_per_device * grind_ns_ * 1.0e-9 + platform_.step_overhead_s +
         comm_time(cells_per_device, devices);
}

std::vector<ScalingPoint> ScalingModel::weak_scaling(
    double cells_per_device, const std::vector<int>& device_counts) const {
  std::vector<ScalingPoint> out;
  if (device_counts.empty()) return out;
  const double t0 = time_per_step(cells_per_device, device_counts.front());
  for (int d : device_counts) {
    ScalingPoint p;
    p.devices = d;
    p.cells_per_device = cells_per_device;
    p.time_per_step_s = time_per_step(cells_per_device, d);
    p.speedup = 1.0;
    p.efficiency = t0 / p.time_per_step_s;
    out.push_back(p);
  }
  return out;
}

std::vector<ScalingPoint> ScalingModel::strong_scaling(
    double total_cells, const std::vector<int>& device_counts) const {
  std::vector<ScalingPoint> out;
  if (device_counts.empty()) return out;
  const int d0 = device_counts.front();
  const double t0 = time_per_step(total_cells / d0, d0);
  for (int d : device_counts) {
    ScalingPoint p;
    p.devices = d;
    p.cells_per_device = total_cells / d;
    p.time_per_step_s = time_per_step(p.cells_per_device, d);
    p.speedup = t0 / p.time_per_step_s;
    const double ideal = static_cast<double>(d) / d0;
    p.efficiency = p.speedup / ideal;
    out.push_back(p);
  }
  return out;
}

double ScalingModel::max_total_cells(int devices,
                                     double cells_per_device) const {
  return static_cast<double>(devices) * cells_per_device;
}

}  // namespace igr::perf
