#include "perf/platform.hpp"

namespace igr::perf {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double NA = kNotApplicable;

double cube(double n) { return n * n * n; }
}  // namespace

Platform el_capitan() {
  Platform p;
  p.name = "El Capitan";
  p.device = "MI300A";
  p.devices_per_node = 4;
  p.full_system_nodes = 11136;
  p.device_mem_bytes = 128.0 * kGiB;  // single physical HBM3 pool per APU
  p.host_mem_bytes = 0.0;
  p.unified_pool = true;
  p.c2c_bandwidth_Bps = 0.0;  // no separate link: CPU and GPU share HBM
  p.c2c_efficiency = 1.0;
  p.network = {25.0e9, 2.0e-6, 0.9};  // 4x Slingshot NICs / 4 APUs
  p.step_overhead_s = 0.043;
  p.weak_cells_per_device = cube(1380.0);
  // Table 3 rows [scheme][precision][in-core, unified]; the MI300A is
  // "always unified" so in-core IGR entries are not applicable.
  p.grind_ns = {{
      {{{29.50, 29.50}, {NA, NA}, {NA, NA}}},        // baseline WENO
      {{{NA, 7.21}, {NA, 4.19}, {NA, 17.39}}},       // IGR
  }};
  p.energy_uJ = {15.24, 3.493};  // Table 4
  return p;
}

Platform frontier() {
  Platform p;
  p.name = "Frontier";
  p.device = "MI250X GCD";
  p.devices_per_node = 8;  // 4 MI250X = 8 GCDs per node
  p.full_system_nodes = 9408;  // nodes used for the 200T-cell run
  p.device_mem_bytes = 64.0 * kGiB;  // HBM2E per GCD
  p.host_mem_bytes = 64.0 * kGiB;    // 512 GB DDR4 / 8 GCDs
  p.unified_pool = false;
  p.c2c_bandwidth_Bps = 72.0e9;  // Trento<->GCD InfinityFabric (xGMI)
  p.c2c_efficiency = 0.33;       // calibrated: Table 3 in-core->unified delta
  p.network = {12.5e9, 2.0e-6, 0.9};  // 4 NICs / 8 GCDs
  p.step_overhead_s = 0.035;
  p.weak_cells_per_device = cube(1386.0);
  p.grind_ns = {{
      {{{69.72, NA}, {NA, NA}, {NA, NA}}},
      {{{13.01, 19.81}, {9.12, 13.03}, {22.63, 24.71}}},
  }};
  p.energy_uJ = {10.67, 1.982};
  return p;
}

Platform alps() {
  Platform p;
  p.name = "Alps";
  p.device = "GH200";
  p.devices_per_node = 4;
  p.full_system_nodes = 2688;
  p.device_mem_bytes = 96.0 * kGiB;   // HBM3 per Hopper
  p.host_mem_bytes = 120.0 * kGiB;    // LPDDR5 per Grace
  p.unified_pool = false;
  p.c2c_bandwidth_Bps = 900.0e9;  // NVLink-C2C
  p.c2c_efficiency = 0.5;         // calibrated: Table 3 in-core->unified delta
  p.network = {25.0e9, 2.0e-6, 0.9};
  p.step_overhead_s = 0.0096;
  p.weak_cells_per_device = cube(1611.0);
  p.grind_ns = {{
      {{{16.89, NA}, {NA, NA}, {NA, NA}}},
      {{{3.83, 4.18}, {2.70, 2.81}, {3.06, 3.07}}},
  }};
  p.energy_uJ = {9.349, 2.466};
  return p;
}

std::array<Platform, 3> all_platforms() {
  return {el_capitan(), frontier(), alps()};
}

const char* scheme_name(Scheme s) {
  return s == Scheme::kBaselineWeno ? "Baseline (WENO5+HLLC)" : "IGR";
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp64: return "FP64";
    case Precision::kFp32: return "FP32";
    default: return "FP16/32";
  }
}

const char* memmode_name(MemMode m) {
  return m == MemMode::kInCore ? "in-core" : "unified";
}

}  // namespace igr::perf
