#include "power/power_model.hpp"

#include <stdexcept>

namespace igr::power {

namespace {

/// FP64 grind time for the scheme in the memory mode the paper's energy
/// table used (in-core where available, unified otherwise).
double fp64_grind_ns(const perf::Platform& p, perf::Scheme s) {
  const double in_core =
      p.grind(s, perf::Precision::kFp64, perf::MemMode::kInCore);
  if (in_core != perf::kNotApplicable) return in_core;
  const double unified =
      p.grind(s, perf::Precision::kFp64, perf::MemMode::kUnified);
  if (unified != perf::kNotApplicable) return unified;
  throw std::invalid_argument("no FP64 grind time for scheme on platform");
}

}  // namespace

double PowerModel::device_power_W(const perf::Platform& p, perf::Scheme s) {
  const double e_J =
      p.energy_uJ[static_cast<std::size_t>(s)] * 1.0e-6;  // per cell per step
  const double t_s = fp64_grind_ns(p, s) * 1.0e-9;
  return e_J / t_s;
}

double PowerModel::energy_uJ_per_cell(const perf::Platform& p, perf::Scheme s,
                                      double grind_ns) {
  return device_power_W(p, s) * grind_ns * 1.0e-9 * 1.0e6;
}

double PowerModel::paper_energy_uJ(const perf::Platform& p, perf::Scheme s) {
  return p.energy_uJ[static_cast<std::size_t>(s)];
}

double PowerModel::improvement_factor(const perf::Platform& p) {
  return p.energy_uJ[0] / p.energy_uJ[1];
}

}  // namespace igr::power
