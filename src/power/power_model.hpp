#pragma once
/// \file power_model.hpp
/// Energy-to-solution model (§6.3, Table 4).
///
/// The paper measures device power via rocm-smi/nvidia-smi counters during
/// time stepping and reports energy per cell per step: E = P_avg * t_grind.
/// We reproduce the mechanism: each platform gets a scheme-dependent average
/// power draw (implied by the paper's own Table 3/Table 4 pairs), and energy
/// follows from any grind time — including grind times measured locally.

#include "perf/platform.hpp"

namespace igr::power {

class PowerModel {
 public:
  /// Average device power draw (W) for a scheme on a platform, implied by
  /// the paper's FP64 energy and grind measurements: P = E / t.
  static double device_power_W(const perf::Platform& p, perf::Scheme s);

  /// Energy in microjoules per cell per step for a given grind time.
  static double energy_uJ_per_cell(const perf::Platform& p, perf::Scheme s,
                                   double grind_ns);

  /// Paper Table 4 value (FP64, for validation of the model round-trip).
  static double paper_energy_uJ(const perf::Platform& p, perf::Scheme s);

  /// Energy improvement factor baseline/IGR on a platform (5.38x on
  /// Frontier is the paper's headline).
  static double improvement_factor(const perf::Platform& p);
};

}  // namespace igr::power
