#pragma once
/// \file exec_space.hpp
/// core-namespace names for the execution-space layer.  The
/// implementation lives in common/exec.hpp — below core in the layering —
/// because the fv/ kernels (the CFL fold) need it too; this header gives
/// solver-facing code the `core::ExecSpace` spelling.

#include "common/exec.hpp"

namespace igr::core {

using ExecBackend = common::ExecBackend;
using ExecSpace = common::ExecSpace;

}  // namespace igr::core
