#pragma once
/// \file memory_footprint.hpp
/// Analytic storage accounting behind the paper's §5.4 claim: the fused IGR
/// implementation stores 17 values per grid point, versus an array-based
/// production WENO5+HLLC implementation (MFC-style) whose full-field
/// intermediates total ~106 values per point.  Combined with FP16 storage
/// (2 bytes vs 8), the footprint shrinks ~25x.
///
/// Also encodes the unified-memory split of §5.5.3: parking the RK register
/// on the host leaves 12/17 of the state on-device; additionally hosting the
/// IGR temporaries leaves 10/17.

#include <cstddef>
#include <string>
#include <vector>

namespace igr::core {

/// One named allocation in a solver's persistent storage.
struct StorageItem {
  std::string name;
  double reals_per_cell;
};

/// Itemized per-cell storage of a scheme at a given storage width.
struct FootprintModel {
  std::string scheme;
  std::vector<StorageItem> items;
  std::size_t bytes_per_real;

  [[nodiscard]] double reals_per_cell() const;
  [[nodiscard]] double bytes_per_cell() const;
};

/// IGR storage model (§5.2): 2x5 state copies + 5 RHS + Sigma + Sigma source
/// (+1 Jacobi double-buffer when enabled).
FootprintModel igr_footprint(std::size_t bytes_per_real, bool jacobi = false);

/// Array-based WENO5+HLLC storage model, itemizing the buffers a
/// conventional optimized implementation keeps as full fields (conservative
/// + RK registers, primitives, per-direction reconstructed states, fluxes,
/// and WENO workspace).
FootprintModel weno_footprint(std::size_t bytes_per_real);

/// Footprint ratio baseline/IGR (the §5.4 "25-fold" figure when comparing
/// FP64 baseline against FP16-storage IGR).
double footprint_ratio(const FootprintModel& baseline,
                       const FootprintModel& igr);

/// Fraction of IGR state resident on the GPU under the §5.5.3 splits.
/// `host_rk` parks the RK register on the host (12/17); `host_igr_tmp`
/// additionally parks Sigma + source (10/17).
double device_resident_fraction(bool host_rk, bool host_igr_tmp);

/// Maximum cells per device for a given memory budget (bytes), scheme
/// footprint, and device-resident fraction.
std::size_t max_cells_per_device(std::size_t device_bytes,
                                 const FootprintModel& model,
                                 double device_fraction);

}  // namespace igr::core
