#pragma once
/// \file igr_solver1d.hpp
/// One-dimensional IGR solver used for the paper's methodological figures:
///   - Fig. 2: shock and oscillatory profiles, IGR vs LAD vs exact;
///   - Fig. 3: pressureless flow-map trajectories under an alpha sweep.
///
/// Supports the full Euler system and the pressureless system in which IGR
/// was first derived (Cao & Schäfer), plus Lagrangian tracer particles that
/// trace the flow map phi_t(x).

#include <functional>
#include <vector>

#include "fv/reconstruct.hpp"

namespace igr::core {

/// 1-D primitive initial condition (rho, u, p) as a function of x.
struct Prim1 {
  double rho = 1.0, u = 0.0, p = 1.0;
};
using PrimFn1D = std::function<Prim1(double)>;

enum class Bc1D { kPeriodic, kOutflow };

class IgrSolver1D {
 public:
  struct Options {
    double gamma = 1.4;
    /// Absolute regularization strength (paper Fig. 3 sweeps alpha itself).
    /// Negative means "use alpha_factor * dx^2".
    double alpha = -1.0;
    double alpha_factor = 5.0;
    int sigma_sweeps = 5;
    bool gauss_seidel = true;
    double cfl = 0.4;
    /// Pressureless Euler (p identically 0, the setting of paper Fig. 3).
    bool pressureless = false;
    Bc1D bc = Bc1D::kOutflow;
    fv::ReconScheme recon = fv::ReconScheme::kFifth;
  };

  IgrSolver1D(int n, double x0, double x1, Options opt);

  void init(const PrimFn1D& prim);

  /// One CFL-limited step; returns dt.
  double step();
  void step_fixed(double dt);
  /// Advance to time `t_end` (never overshoots).
  void advance_to(double t_end);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double x(int i) const { return x0_ + (i + 0.5) * dx_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Interior profiles (copies, length n).
  [[nodiscard]] std::vector<double> rho() const;
  [[nodiscard]] std::vector<double> velocity() const;
  [[nodiscard]] std::vector<double> pressure() const;
  [[nodiscard]] std::vector<double> sigma_profile() const;

  /// Conserved totals (mass, momentum, energy) * dx.
  [[nodiscard]] std::array<double, 3> conserved_totals() const;

  /// Lagrangian tracer seeded at x; returns its index.
  int add_tracer(double x);
  [[nodiscard]] double tracer_position(int id) const { return tracers_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const std::vector<double>& tracers() const { return tracers_; }

  /// Velocity linearly interpolated at position x (used for tracers).
  [[nodiscard]] double velocity_at(double x) const;

 private:
  void apply_bc(std::vector<double>& a, bool negate_odd) const;
  void fill_ghosts();
  void solve_sigma();
  void compute_rhs();
  [[nodiscard]] double max_wave_speed() const;

  int n_;
  double x0_, dx_;
  Options opt_;
  double alpha_;
  double time_ = 0.0;

  // State arrays with 3 ghost cells each side; index [i+ng_].
  static constexpr int ng_ = 3;
  std::vector<double> rho_, mom_, e_;
  std::vector<double> rho0_, mom0_, e0_;       // RK register
  std::vector<double> rrho_, rmom_, re_;       // RHS
  std::vector<double> sigma_, sigma_src_, sigma_tmp_;

  std::vector<double> tracers_;
};

}  // namespace igr::core
