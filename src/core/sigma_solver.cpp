#include "core/sigma_solver.hpp"

#include <algorithm>
#include <array>
#include <climits>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/half.hpp"

namespace igr::core {

namespace {

/// The 7-point relaxation update at flat row offset `i`.  Face coefficients
/// are arithmetic means of the *reciprocal* densities — i.e. 1/rho_face
/// with rho_face the harmonic mean of the two cell densities (that is the
/// intended discretization: it is division-free given the precomputed
/// 1/rho field and keeps the operator symmetric; see sigma_solver.hpp).
/// One division per cell (the diagonal solve).
template <class C, class S>
inline C relax_cell(const S* pir, const S* psr, const S* ps, std::ptrdiff_t i,
                    std::ptrdiff_t sy, std::ptrdiff_t sz, C alpha, C inv_dx2,
                    C inv_dy2, C inv_dz2) {
  const C ir0 = static_cast<C>(pir[i]);
  const C cxm = C(0.5) * (ir0 + static_cast<C>(pir[i - 1]));
  const C cxp = C(0.5) * (ir0 + static_cast<C>(pir[i + 1]));
  const C cym = C(0.5) * (ir0 + static_cast<C>(pir[i - sy]));
  const C cyp = C(0.5) * (ir0 + static_cast<C>(pir[i + sy]));
  const C czm = C(0.5) * (ir0 + static_cast<C>(pir[i - sz]));
  const C czp = C(0.5) * (ir0 + static_cast<C>(pir[i + sz]));

  const C off = inv_dx2 * (static_cast<C>(ps[i + 1]) * cxp +
                           static_cast<C>(ps[i - 1]) * cxm) +
                inv_dy2 * (static_cast<C>(ps[i + sy]) * cyp +
                           static_cast<C>(ps[i - sy]) * cym) +
                inv_dz2 * (static_cast<C>(ps[i + sz]) * czp +
                           static_cast<C>(ps[i - sz]) * czm);
  const C diag = ir0 + alpha * (inv_dx2 * (cxp + cxm) +
                                inv_dy2 * (cyp + cym) +
                                inv_dz2 * (czp + czm));
  return (static_cast<C>(psr[i]) + alpha * off) / diag;
}

/// The eleven compute-precision rows one relax row consumes: sigma and
/// reciprocal density at (j, k), (j∓1, k), (j, k∓1), plus the source row.
/// Every row spans i in [-1, nx] (`row_len` = nx + 2), so the i∓1 taps of
/// the center rows are in-slab; neighbor rows only ever tap their center
/// element.
template <class C>
struct StencilRows {
  const C* sg_c;
  const C* sg_jm;
  const C* sg_jp;
  const C* sg_km;
  const C* sg_kp;
  const C* ir_c;
  const C* ir_jm;
  const C* ir_jp;
  const C* ir_km;
  const C* ir_kp;
  const C* src_c;
};

/// Per-plane conversion cache for the batched sweeps of a converting
/// (FP16/32) policy — the PR 4 velocity-row-ring pattern applied to the
/// sigma-sweep stencil gathers.  One get-or-convert slot per row of the
/// *current plane* (j ∈ [-1, ny]) holds the plane's sigma and
/// reciprocal-density rows at compute precision, so adjacent (j, k) visits
/// reuse the rows they share: a serial j walk converts each plane row once
/// instead of three times, and the fused pipeline's two j-parity phases
/// share one cache — phase 1 reads every center-plane row phase 0 already
/// converted.  The single-use rows — sigma/inv_rho at the k∓1 planes and
/// the source — stay direct per-visit loads.  (Storage is small and
/// streaming: 2 fields × (ny + 2) rows of scratch per thread, of which
/// only the stencil's three rows are hot at a time.)
///
/// Red–black staleness note: the in-place color pass stores into rows this
/// cache has already converted, so a cached row can be stale in the
/// *updated* color's lanes relative to a fresh gather — including across
/// the j-parity phase boundary, where phase 0 has written its rows' color
/// lanes before phase 1 gathers them.  Those lanes are never consumed:
/// every tap feeding a stored value reads the opposite parity ((i+j+k) of
/// each stencil neighbor flips), which the color pass does not write — so
/// the stored bits are identical to the per-visit-gather form
/// (tests/test_mixed_precision_step.cpp asserts the end-to-end
/// consequence).  A cache must never survive into the *next* color or
/// sweep, whose taps do consume the previous pass's writes — every user
/// constructs/resets per color pass.
template <class Policy>
class PlaneRowCache {
  using C = typename Policy::compute_t;
  using S = typename Policy::storage_t;

 public:
  /// `ny` interior rows per plane; each cached row spans i ∈ [-1, nx].
  PlaneRowCache(int ny, std::size_t row_len)
      : num_rows_(static_cast<std::size_t>(ny) + 2),
        row_len_(row_len),
        held_(2 * num_rows_, kEmpty),
        store_(2 * num_rows_ * row_len) {}

  /// Switch to plane `k`, forgetting every cached row.
  void reset(int k) {
    k_ = k;
    std::fill(held_.begin(), held_.end(), kEmpty);
  }

  const C* sigma_row(const common::Field3<S>& sigma, int j) {
    return row(sigma, 0, j);
  }
  const C* inv_rho_row(const common::Field3<S>& inv_rho, int j) {
    return row(inv_rho, 1, j);
  }

 private:
  static constexpr int kEmpty = INT_MIN;

  const C* row(const common::Field3<S>& f, int which, int j) {
    const std::size_t slot = static_cast<std::size_t>(which) * num_rows_ +
                             static_cast<std::size_t>(j + 1);
    C* dst = store_.data() + slot * row_len_;
    if (held_[slot] != j) {
      common::load_line<Policy>(&f(-1, j, k_), dst, row_len_);
      held_[slot] = j;
    }
    return dst;
  }

  std::size_t num_rows_;
  std::size_t row_len_;
  int k_ = 0;
  std::vector<int> held_;
  std::vector<C> store_;
};

/// Load the per-visit (single-use) rows into `aux` (5 consecutive rows) and
/// point the StencilRows slots at them.
template <class Policy>
inline void load_transverse_rows(
    const common::Field3<typename Policy::storage_t>& sig_in,
    const common::Field3<typename Policy::storage_t>& src,
    const common::Field3<typename Policy::storage_t>& inv_rho, int j, int k,
    std::size_t row_len, typename Policy::compute_t* aux,
    StencilRows<typename Policy::compute_t>& rows) {
  common::load_line<Policy>(&sig_in(-1, j, k - 1), aux, row_len);
  common::load_line<Policy>(&sig_in(-1, j, k + 1), aux + row_len, row_len);
  common::load_line<Policy>(&inv_rho(-1, j, k - 1), aux + 2 * row_len,
                            row_len);
  common::load_line<Policy>(&inv_rho(-1, j, k + 1), aux + 3 * row_len,
                            row_len);
  common::load_line<Policy>(&src(-1, j, k), aux + 4 * row_len, row_len);
  rows.sg_km = aux;
  rows.sg_kp = aux + row_len;
  rows.ir_km = aux + 2 * row_len;
  rows.ir_kp = aux + 3 * row_len;
  rows.src_c = aux + 4 * row_len;
}

/// Gather the full stencil for cell row (j, k): center-plane rows through
/// the rolling cache, transverse rows direct.
template <class Policy>
inline StencilRows<typename Policy::compute_t> gather_rows(
    PlaneRowCache<Policy>& cache,
    const common::Field3<typename Policy::storage_t>& sig_in,
    const common::Field3<typename Policy::storage_t>& src,
    const common::Field3<typename Policy::storage_t>& inv_rho, int j, int k,
    std::size_t row_len, typename Policy::compute_t* aux) {
  StencilRows<typename Policy::compute_t> rows{};
  rows.sg_c = cache.sigma_row(sig_in, j);
  rows.sg_jm = cache.sigma_row(sig_in, j - 1);
  rows.sg_jp = cache.sigma_row(sig_in, j + 1);
  rows.ir_c = cache.inv_rho_row(inv_rho, j);
  rows.ir_jm = cache.inv_rho_row(inv_rho, j - 1);
  rows.ir_jp = cache.inv_rho_row(inv_rho, j + 1);
  load_transverse_rows<Policy>(sig_in, src, inv_rho, j, k, row_len, aux,
                               rows);
  return rows;
}

/// Tentative relax values for a whole row of gathered compute-precision
/// rows.  Contiguous in i, so the loop (and its diagonal divide)
/// vectorizes; the expression mirrors relax_cell exactly, so with bitwise-
/// identical conversion lanes the paths produce bitwise-identical updates —
/// tests/test_mixed_precision_step.cpp asserts this end to end.  Red–black
/// callers keep only the updated color's lanes — bit-for-bit what the
/// strided per-cell evaluation would have stored.
template <class C>
inline void relax_row_gathered(const StencilRows<C>& b, int nx, C alpha,
                               C inv_dx2, C inv_dy2, C inv_dz2,
                               C* __restrict out) {
  // Eleven independent row pointers exceed the vectorizer's runtime
  // alias-versioning budget; the rows are distinct scratch buffers by
  // construction (cache slots + the per-visit aux block), so __restrict
  // locals let the loop — and its diagonal divide — vectorize, exactly the
  // treatment the PR 4 flux slices needed.  Offset by +1: rows start at
  // i = -1.
  const C* __restrict sgc = b.sg_c + 1;
  const C* __restrict sgjm = b.sg_jm + 1;
  const C* __restrict sgjp = b.sg_jp + 1;
  const C* __restrict sgkm = b.sg_km + 1;
  const C* __restrict sgkp = b.sg_kp + 1;
  const C* __restrict irc = b.ir_c + 1;
  const C* __restrict irjm = b.ir_jm + 1;
  const C* __restrict irjp = b.ir_jp + 1;
  const C* __restrict irkm = b.ir_km + 1;
  const C* __restrict irkp = b.ir_kp + 1;
  const C* __restrict srcc = b.src_c + 1;
  for (int i = 0; i < nx; ++i) {
    const C ir0 = irc[i];
    const C cxm = C(0.5) * (ir0 + irc[i - 1]);
    const C cxp = C(0.5) * (ir0 + irc[i + 1]);
    const C cym = C(0.5) * (ir0 + irjm[i]);
    const C cyp = C(0.5) * (ir0 + irjp[i]);
    const C czm = C(0.5) * (ir0 + irkm[i]);
    const C czp = C(0.5) * (ir0 + irkp[i]);

    const C off = inv_dx2 * (sgc[i + 1] * cxp + sgc[i - 1] * cxm) +
                  inv_dy2 * (sgjp[i] * cyp + sgjm[i] * cym) +
                  inv_dz2 * (sgkp[i] * czp + sgkm[i] * czm);
    const C diag = ir0 + alpha * (inv_dx2 * (cxp + cxm) +
                                  inv_dy2 * (cyp + cym) +
                                  inv_dz2 * (czp + czm));
    out[i] = (srcc[i] + alpha * off) / diag;
  }
}

/// One full-field relaxation pass.  With `jacobi` true, reads `in` and
/// writes `out` (distinct buffers, embarrassingly parallel across the
/// execution space); otherwise updates in place in the natural
/// lexicographic Gauss–Seidel order, which is inherently serial (kept as
/// the reference ordering — it ignores `exec`).
template <class Policy>
void sweep(common::Field3<typename Policy::storage_t>& out,
           const common::Field3<typename Policy::storage_t>& in,
           const common::Field3<typename Policy::storage_t>& src,
           const common::Field3<typename Policy::storage_t>& inv_rho,
           typename Policy::compute_t alpha,
           typename Policy::compute_t inv_dx2,
           typename Policy::compute_t inv_dy2,
           typename Policy::compute_t inv_dz2, bool jacobi,
           const common::ExecSpace& exec) {
  using C = typename Policy::compute_t;
  using S = typename Policy::storage_t;
  const int nx = out.nx(), ny = out.ny(), nz = out.nz();

  const std::ptrdiff_t sy = inv_rho.stride(1);
  const std::ptrdiff_t sz = inv_rho.stride(2);
  const common::Field3<S>& sin_f = jacobi ? in : out;

  auto relax_plane = [&](int k) {
    for (int j = 0; j < ny; ++j) {
      const S* pir = &inv_rho(0, j, k);
      const S* psr = &src(0, j, k);
      const S* ps = &sin_f(0, j, k);
      S* po = &out(0, j, k);
      for (int i = 0; i < nx; ++i) {
        po[i] = static_cast<S>(relax_cell<C>(pir, psr, ps, i, sy, sz, alpha,
                                             inv_dx2, inv_dy2, inv_dz2));
      }
    }
  };
  if (jacobi) {
    exec.for_each(nz, [&](long k) { relax_plane(static_cast<int>(k)); });
  } else {
    for (int k = 0; k < nz; ++k) relax_plane(k);
  }
}

/// Tentative relax values for a whole row.  Contiguous in i, no
/// loop-carried dependence: the loop vectorizes, and in particular the
/// per-cell diagonal division becomes a pipelined vector divide.  Each lane
/// is the exact relax_cell expression, so a caller that keeps only some
/// lanes stores the same bits the strided per-cell update would have.
template <class C, class S>
inline void relax_row(const S* pir, const S* psr, const S* ps, int nx,
                      std::ptrdiff_t sy, std::ptrdiff_t sz, C alpha, C inv_dx2,
                      C inv_dy2, C inv_dz2, C* __restrict out) {
  // relax_cell with the stencil taps hoisted into per-row pointers and the
  // expression inlined: the nine streams are then plain affine accesses the
  // vectorizer handles (the relax_cell call form defeats it), and `out` is
  // thread-private scratch, never an alias of the field rows.  Term order
  // matches relax_cell exactly — each lane's bits are the per-cell result.
  const S* irj_m = pir - sy;
  const S* irj_p = pir + sy;
  const S* irk_m = pir - sz;
  const S* irk_p = pir + sz;
  const S* sgj_m = ps - sy;
  const S* sgj_p = ps + sy;
  const S* sgk_m = ps - sz;
  const S* sgk_p = ps + sz;
  for (int i = 0; i < nx; ++i) {
    const C ir0 = static_cast<C>(pir[i]);
    const C cxm = C(0.5) * (ir0 + static_cast<C>(pir[i - 1]));
    const C cxp = C(0.5) * (ir0 + static_cast<C>(pir[i + 1]));
    const C cym = C(0.5) * (ir0 + static_cast<C>(irj_m[i]));
    const C cyp = C(0.5) * (ir0 + static_cast<C>(irj_p[i]));
    const C czm = C(0.5) * (ir0 + static_cast<C>(irk_m[i]));
    const C czp = C(0.5) * (ir0 + static_cast<C>(irk_p[i]));

    const C off = inv_dx2 * (static_cast<C>(ps[i + 1]) * cxp +
                             static_cast<C>(ps[i - 1]) * cxm) +
                  inv_dy2 * (static_cast<C>(sgj_p[i]) * cyp +
                             static_cast<C>(sgj_m[i]) * cym) +
                  inv_dz2 * (static_cast<C>(sgk_p[i]) * czp +
                             static_cast<C>(sgk_m[i]) * czm);
    const C diag = ir0 + alpha * (inv_dx2 * (cxp + cxm) +
                                  inv_dy2 * (cyp + cym) +
                                  inv_dz2 * (czp + czm));
    out[i] = (static_cast<C>(psr[i]) + alpha * off) / diag;
  }
}

/// One two-color (red–black) Gauss–Seidel pass, in place.  Cells of one
/// color only couple to the other color through the 7-point stencil, so
/// each half-pass is dependency-free: it parallelizes across k-planes and
/// vectorizes by relaxing whole rows and storing only the updated color —
/// the discarded lanes read stale same-color values, which cannot leak into
/// a stored bit.  Each color pass runs as two k-parity phases: the whole-row
/// evaluation also *reads* (without keeping) the current color's elements of
/// the k∓1 planes, so letting adjacent planes update concurrently would be a
/// formal data race on those bytes; within one phase all written planes
/// share a k parity while reads only cross to the other parity.  Converges
/// to the same fixed point as the serial sweep — tests/test_sigma_solver.cpp
/// asserts this.
template <class Policy>
void sweep_red_black(common::Field3<typename Policy::storage_t>& sigma,
                     const common::Field3<typename Policy::storage_t>& src,
                     const common::Field3<typename Policy::storage_t>& inv_rho,
                     typename Policy::compute_t alpha,
                     typename Policy::compute_t inv_dx2,
                     typename Policy::compute_t inv_dy2,
                     typename Policy::compute_t inv_dz2,
                     const common::ExecSpace& exec) {
  using C = typename Policy::compute_t;
  using S = typename Policy::storage_t;
  const int nx = sigma.nx(), ny = sigma.ny(), nz = sigma.nz();
  const std::ptrdiff_t sy = inv_rho.stride(1);
  const std::ptrdiff_t sz = inv_rho.stride(2);

  for (int color = 0; color < 2; ++color) {
    for (int kphase = 0; kphase < 2; ++kphase) {
      // Each member owns a contiguous chunk of this phase's k-parity planes
      // (k = kphase + 2*kk); writes of one phase never share a plane.
      const long nk = (static_cast<long>(nz) - kphase + 1) / 2;
      exec.run_team([&](const common::ExecSpace::Team& t) {
        std::vector<C> tmp(static_cast<std::size_t>(nx));
        long cb, ce;
        t.chunk(nk, cb, ce);
        for (long kk = cb; kk < ce; ++kk) {
          const int k = kphase + 2 * static_cast<int>(kk);
          for (int j = 0; j < ny; ++j) {
            const S* pir = &inv_rho(0, j, k);
            const S* psr = &src(0, j, k);
            S* ps = &sigma(0, j, k);
            relax_row<C>(pir, psr, ps, nx, sy, sz, alpha, inv_dx2, inv_dy2,
                         inv_dz2, tmp.data());
            for (int i = (color + j + k) & 1; i < nx; i += 2) {
              ps[i] = static_cast<S>(tmp[i]);
            }
          }
        }
      });
    }
  }
}

/// Row-batched red–black pass for converting policies: the storage fields
/// are read through per-row compute-precision scratch (one batch conversion
/// per row instead of one scalar conversion per stencil tap), and the
/// updated color's values are compacted, batch-converted, and scattered
/// back with stride 2.  Only the updated color's cells are ever read by the
/// relax expression's taps (opposite parity) and only they are written, so
/// the result is bitwise-equal to the per-element ordering.  The serial j
/// walk within each plane streams through the rolling PlaneRowCache, so
/// every center-plane sigma/inv_rho row converts once per plane visit
/// instead of three times (eleven gathered rows per visit become seven).
///
/// Each color pass runs as two k-parity phases: the whole-row gathers also
/// *touch* (without using) the current color's elements of the k∓1 planes,
/// so letting adjacent planes update concurrently would be a formal data
/// race on those bytes.  Within one phase all written planes share a k
/// parity while gathers only cross to the other parity — race-free with the
/// gathers kept contiguous (the fast form).  Update order across planes is
/// immaterial for red–black (all read taps are the un-written color), so
/// phasing does not change results; single-core it is the same work.
template <class Policy>
void sweep_red_black_batched(
    common::Field3<typename Policy::storage_t>& sigma,
    const common::Field3<typename Policy::storage_t>& src,
    const common::Field3<typename Policy::storage_t>& inv_rho,
    typename Policy::compute_t alpha, typename Policy::compute_t inv_dx2,
    typename Policy::compute_t inv_dy2, typename Policy::compute_t inv_dz2,
    const common::ExecSpace& exec) {
  using C = typename Policy::compute_t;
  const int nx = sigma.nx(), ny = sigma.ny(), nz = sigma.nz();
  const std::size_t row_len = static_cast<std::size_t>(nx) + 2;

  for (int color = 0; color < 2; ++color) {
    for (int kphase = 0; kphase < 2; ++kphase) {
      const long nk = (static_cast<long>(nz) - kphase + 1) / 2;
      exec.run_team([&](const common::ExecSpace::Team& t) {
        PlaneRowCache<Policy> cache(ny, row_len);
        std::vector<C> aux(5 * row_len);
        std::vector<C> tmp(static_cast<std::size_t>(nx));
        std::vector<C> vals((static_cast<std::size_t>(nx) + 1) / 2);
        long cb, ce;
        t.chunk(nk, cb, ce);
        for (long kk = cb; kk < ce; ++kk) {
          const int k = kphase + 2 * static_cast<int>(kk);
          cache.reset(k);
          for (int j = 0; j < ny; ++j) {
            const auto rows = gather_rows<Policy>(cache, sigma, src, inv_rho,
                                                  j, k, row_len, aux.data());
            // Whole-row tentative relax (vectorizes), keep the color lanes.
            relax_row_gathered<C>(rows, nx, alpha, inv_dx2, inv_dy2, inv_dz2,
                                  tmp.data());
            const int i0 = (color + j + k) & 1;
            std::size_t m = 0;
            for (int i = i0; i < nx; i += 2) vals[m++] = tmp[i];
            if (m > 0) {
              common::store_line_strided<Policy>(vals.data(),
                                                 &sigma(i0, j, k), 2, m);
            }
          }
        }
      });
    }
  }
}

/// Row-batched Jacobi pass for converting policies (reads `in`, writes
/// `out`): whole rows are converted in through the rolling row cache (the
/// read field is never written, so cached rows are trivially fresh),
/// relaxed at compute precision, and converted back out in one batch store
/// per row.
template <class Policy>
void sweep_jacobi_batched(
    common::Field3<typename Policy::storage_t>& out,
    const common::Field3<typename Policy::storage_t>& in,
    const common::Field3<typename Policy::storage_t>& src,
    const common::Field3<typename Policy::storage_t>& inv_rho,
    typename Policy::compute_t alpha, typename Policy::compute_t inv_dx2,
    typename Policy::compute_t inv_dy2, typename Policy::compute_t inv_dz2,
    const common::ExecSpace& exec) {
  using C = typename Policy::compute_t;
  const int nx = out.nx(), ny = out.ny(), nz = out.nz();
  const std::size_t row_len = static_cast<std::size_t>(nx) + 2;

  exec.run_team([&](const common::ExecSpace::Team& t) {
    PlaneRowCache<Policy> cache(ny, row_len);
    std::vector<C> aux(5 * row_len);
    std::vector<C> vals(static_cast<std::size_t>(nx));
    long cb, ce;
    t.chunk(nz, cb, ce);
    for (long kk = cb; kk < ce; ++kk) {
      const int k = static_cast<int>(kk);
      cache.reset(k);
      for (int j = 0; j < ny; ++j) {
        const auto rows = gather_rows<Policy>(cache, in, src, inv_rho, j, k,
                                              row_len, aux.data());
        relax_row_gathered<C>(rows, nx, alpha, inv_dx2, inv_dy2, inv_dz2,
                              vals.data());
        common::store_line<Policy>(vals.data(), out.row(j, k),
                                   static_cast<std::size_t>(nx));
      }
    }
  });
}

}  // namespace

namespace {

/// Shared body of the per-axis ghost fills.  For axes 0/1 the tangential k
/// loop can be restricted to interior planes [kr0, kr1) — the per-plane rim
/// fill of the fused pipeline; the full-extent fills pass [0, nz).  Axis 2
/// ignores the range (its writes are whole ghost planes).
template <class S>
void fill_sigma_axis_krange(common::Field3<S>& sigma, SigmaBcSpec bc,
                            int axis, std::array<bool, 2> sides, int layers,
                            int kr0, int kr1) {
  const int ng = (layers < 0 || layers > sigma.ng()) ? sigma.ng() : layers;
  const int n[3] = {sigma.nx(), sigma.ny(), sigma.nz()};
  {
    int lo[3], hi[3];
    for (int a = 0; a < 3; ++a) {
      lo[a] = (a < axis) ? -ng : 0;
      hi[a] = (a < axis) ? n[a] + ng : n[a];
    }
    if (axis < 2) {
      lo[2] = kr0;
      hi[2] = kr1;
    }
    for (int side = 0; side < 2; ++side) {
      if (!sides[static_cast<std::size_t>(side)]) continue;
      const SigmaBc face_bc = bc.side(axis, side);
      for (int g = 1; g <= ng; ++g) {
        const int ghost = (side == 0) ? -g : n[axis] + g - 1;
        const int src = (face_bc == SigmaBc::kPeriodic)
                            ? ((side == 0) ? n[axis] - g : g - 1)
                            : ((side == 0) ? 0 : n[axis] - 1);
        int i0 = lo[0], i1 = hi[0], j0 = lo[1], j1 = hi[1], k0 = lo[2],
            k1 = hi[2];
        if (axis == 0) { i0 = ghost; i1 = ghost + 1; }
        if (axis == 1) { j0 = ghost; j1 = ghost + 1; }
        if (axis == 2) { k0 = ghost; k1 = ghost + 1; }
        for (int k = k0; k < k1; ++k) {
          for (int j = j0; j < j1; ++j) {
            for (int i = i0; i < i1; ++i) {
              int sidx[3] = {i, j, k};
              sidx[axis] = src;
              sigma(i, j, k) = sigma(sidx[0], sidx[1], sidx[2]);
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <class Policy>
void sigma_relax_planes(common::Field3<typename Policy::storage_t>& sigma,
                        const common::Field3<typename Policy::storage_t>& src,
                        const common::Field3<typename Policy::storage_t>& inv_rho,
                        typename Policy::compute_t alpha,
                        typename Policy::compute_t dx,
                        typename Policy::compute_t dy,
                        typename Policy::compute_t dz, int color, int k0,
                        int k1, bool batch, const common::ExecSpace& exec) {
  using C = typename Policy::compute_t;
  using S = typename Policy::storage_t;
  const int nx = sigma.nx(), ny = sigma.ny();
  const C inv_dx2 = C(1) / (dx * dx);
  const C inv_dy2 = C(1) / (dy * dy);
  const C inv_dz2 = C(1) / (dz * dz);

  // Planes are walked serially (the pipelined caller orders them; the k∓1
  // stencil taps therefore never see a concurrently written plane) and rows
  // parallelize within a plane in two j-parity phases: the whole-row
  // evaluation reads rows j∓1 at every column, so rows of the same parity
  // may update concurrently while their reads only cross to the other
  // parity.
  if constexpr (common::converts_storage<Policy>) {
    if (batch) {
      // One per-plane row cache shared by both j-parity phases: phase 0
      // converts the rows it touches, phase 1's gathers then hit every
      // center-plane row (its j∓1 neighbors were phase-0 centers, its
      // centers were phase-0 neighbors).  Valid across the phase boundary
      // by the parity argument at PlaneRowCache: the lanes phase 0 wrote
      // are never consumed by any tap feeding a stored value.  The team
      // barrier between the phases keeps the race-freedom structure the
      // implicit omp-for barrier used to provide.
      const std::size_t row_len = static_cast<std::size_t>(nx) + 2;
      for (int k = k0; k < k1; ++k) {
        exec.run_team([&](const common::ExecSpace::Team& t) {
          PlaneRowCache<Policy> cache(ny, row_len);
          cache.reset(k);
          std::vector<C> aux(5 * row_len);
          std::vector<C> tmp(static_cast<std::size_t>(nx));
          std::vector<C> vals((static_cast<std::size_t>(nx) + 1) / 2);
          for (int jphase = 0; jphase < 2; ++jphase) {
            if (jphase == 1) t.barrier();
            const long nj = (static_cast<long>(ny) - jphase + 1) / 2;
            long cb, ce;
            t.chunk(nj, cb, ce);
            for (long jj = cb; jj < ce; ++jj) {
              const int j = jphase + 2 * static_cast<int>(jj);
              const auto rows = gather_rows<Policy>(cache, sigma, src,
                                                    inv_rho, j, k, row_len,
                                                    aux.data());
              relax_row_gathered<C>(rows, nx, alpha, inv_dx2, inv_dy2,
                                    inv_dz2, tmp.data());
              const int i0 = (color + j + k) & 1;
              std::size_t m = 0;
              for (int i = i0; i < nx; i += 2) vals[m++] = tmp[i];
              if (m > 0) {
                common::store_line_strided<Policy>(vals.data(),
                                                   &sigma(i0, j, k), 2, m);
              }
            }
          }
        });
      }
      return;
    }
  }

  const std::ptrdiff_t sy = inv_rho.stride(1);
  const std::ptrdiff_t sz = inv_rho.stride(2);
  for (int k = k0; k < k1; ++k) {
    for (int jphase = 0; jphase < 2; ++jphase) {
      const long nj = (static_cast<long>(ny) - jphase + 1) / 2;
      exec.run_team([&](const common::ExecSpace::Team& t) {
        std::vector<C> tmp(static_cast<std::size_t>(nx));
        long cb, ce;
        t.chunk(nj, cb, ce);
        for (long jj = cb; jj < ce; ++jj) {
          const int j = jphase + 2 * static_cast<int>(jj);
          const S* pir = &inv_rho(0, j, k);
          const S* psr = &src(0, j, k);
          S* ps = &sigma(0, j, k);
          relax_row<C>(pir, psr, ps, nx, sy, sz, alpha, inv_dx2, inv_dy2,
                       inv_dz2, tmp.data());
          for (int i = (color + j + k) & 1; i < nx; i += 2) {
            ps[i] = static_cast<S>(tmp[i]);
          }
        }
      });
    }
  }
}

template <class Policy>
void sigma_jacobi_planes(common::Field3<typename Policy::storage_t>& out,
                         const common::Field3<typename Policy::storage_t>& in,
                         const common::Field3<typename Policy::storage_t>& src,
                         const common::Field3<typename Policy::storage_t>& inv_rho,
                         typename Policy::compute_t alpha,
                         typename Policy::compute_t dx,
                         typename Policy::compute_t dy,
                         typename Policy::compute_t dz, int k0, int k1,
                         bool batch, const common::ExecSpace& exec) {
  using C = typename Policy::compute_t;
  using S = typename Policy::storage_t;
  const int nx = out.nx(), ny = out.ny();
  const C inv_dx2 = C(1) / (dx * dx);
  const C inv_dy2 = C(1) / (dy * dy);
  const C inv_dz2 = C(1) / (dz * dz);

  // Both paths partition the flattened (k, j) row index space — the
  // collapse(2) replacement; writes are disjoint rows of `out`.
  const long total = static_cast<long>(k1 - k0) * ny;

  if constexpr (common::converts_storage<Policy>) {
    if (batch) {
      const std::size_t row_len = static_cast<std::size_t>(nx) + 2;
      exec.run_team([&](const common::ExecSpace::Team& t) {
        PlaneRowCache<Policy> cache(ny, row_len);
        int cached_k = INT_MIN;
        std::vector<C> aux(5 * row_len);
        std::vector<C> vals(static_cast<std::size_t>(nx));
        long cb, ce;
        t.chunk(total, cb, ce);
        for (long idx = cb; idx < ce; ++idx) {
          const int k = k0 + static_cast<int>(idx / ny);
          const int j = static_cast<int>(idx % ny);
          if (k != cached_k) {
            cache.reset(k);
            cached_k = k;
          }
          const auto rows = gather_rows<Policy>(cache, in, src, inv_rho, j,
                                                k, row_len, aux.data());
          relax_row_gathered<C>(rows, nx, alpha, inv_dx2, inv_dy2, inv_dz2,
                                vals.data());
          common::store_line<Policy>(vals.data(), out.row(j, k),
                                     static_cast<std::size_t>(nx));
        }
      });
      return;
    }
  }

  const std::ptrdiff_t sy = inv_rho.stride(1);
  const std::ptrdiff_t sz = inv_rho.stride(2);
  exec.for_each(total, [&](long idx) {
    const int k = k0 + static_cast<int>(idx / ny);
    const int j = static_cast<int>(idx % ny);
    const S* pir = &inv_rho(0, j, k);
    const S* psr = &src(0, j, k);
    const S* ps = &in(0, j, k);
    S* po = &out(0, j, k);
    for (int i = 0; i < nx; ++i) {
      po[i] = static_cast<S>(relax_cell<C>(pir, psr, ps, i, sy, sz, alpha,
                                           inv_dx2, inv_dy2, inv_dz2));
    }
  });
}

template <class S>
void fill_sigma_ghosts_axis(common::Field3<S>& sigma, SigmaBcSpec bc,
                            int axis, std::array<bool, 2> sides, int layers) {
  fill_sigma_axis_krange(sigma, bc, axis, sides, layers, 0, sigma.nz());
}

template <class S>
void fill_sigma_rim(common::Field3<S>& sigma, SigmaBcSpec bc, int k0, int k1,
                    int layers) {
  fill_sigma_axis_krange(sigma, bc, 0, {true, true}, layers, k0, k1);
  fill_sigma_axis_krange(sigma, bc, 1, {true, true}, layers, k0, k1);
}

template <class S>
void fill_sigma_zghosts(common::Field3<S>& sigma, SigmaBcSpec bc, int side,
                        int layers) {
  fill_sigma_axis_krange(sigma, bc, 2,
                         {side == 0, side == 1}, layers, 0, sigma.nz());
}

template <class S>
void fill_sigma_ghosts(common::Field3<S>& sigma, SigmaBcSpec bc, int layers) {
  for (int axis = 0; axis < 3; ++axis)
    fill_sigma_ghosts_axis(sigma, bc, axis, {true, true}, layers);
}

#define IGR_INSTANTIATE_SIGMA_GHOSTS(T)                                        \
  template void fill_sigma_ghosts<T>(common::Field3<T>&, SigmaBcSpec, int);    \
  template void fill_sigma_ghosts_axis<T>(common::Field3<T>&, SigmaBcSpec,     \
                                          int, std::array<bool, 2>, int);      \
  template void fill_sigma_rim<T>(common::Field3<T>&, SigmaBcSpec, int, int,   \
                                  int);                                        \
  template void fill_sigma_zghosts<T>(common::Field3<T>&, SigmaBcSpec, int,    \
                                      int);

IGR_INSTANTIATE_SIGMA_GHOSTS(double)
IGR_INSTANTIATE_SIGMA_GHOSTS(float)
IGR_INSTANTIATE_SIGMA_GHOSTS(common::half)
IGR_INSTANTIATE_SIGMA_GHOSTS(common::bfloat16)
#undef IGR_INSTANTIATE_SIGMA_GHOSTS

template <class Policy>
void sigma_sweep_once(common::Field3<typename Policy::storage_t>& sigma,
                      common::Field3<typename Policy::storage_t>& scratch,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz, SweepKind kind,
                      bool batch, const common::ExecSpace& exec) {
  using C = typename Policy::compute_t;
  const C inv_dx2 = C(1) / (dx * dx);
  const C inv_dy2 = C(1) / (dy * dy);
  const C inv_dz2 = C(1) / (dz * dz);
  // The row-batched passes only exist for converting policies; identity
  // storage reads at compute precision already, so batching would only add
  // copies.  The lexicographic ordering keeps its serial per-element form.
  constexpr bool kConverts = common::converts_storage<Policy>;
  switch (kind) {
    case SweepKind::kRedBlack:
      if constexpr (kConverts) {
        if (batch) {
          sweep_red_black_batched<Policy>(sigma, src, inv_rho, alpha, inv_dx2,
                                          inv_dy2, inv_dz2, exec);
          break;
        }
      }
      sweep_red_black<Policy>(sigma, src, inv_rho, alpha, inv_dx2, inv_dy2,
                              inv_dz2, exec);
      break;
    case SweepKind::kGaussSeidelLex:
      sweep<Policy>(sigma, sigma, src, inv_rho, alpha, inv_dx2, inv_dy2,
                    inv_dz2, /*jacobi=*/false, exec);
      break;
    case SweepKind::kJacobi:
      if constexpr (kConverts) {
        if (batch) {
          sweep_jacobi_batched<Policy>(scratch, sigma, src, inv_rho, alpha,
                                       inv_dx2, inv_dy2, inv_dz2, exec);
          std::swap(sigma, scratch);
          break;
        }
      }
      sweep<Policy>(scratch, sigma, src, inv_rho, alpha, inv_dx2, inv_dy2,
                    inv_dz2, /*jacobi=*/true, exec);
      std::swap(sigma, scratch);
      break;
  }
}

template <class Policy>
void sigma_sweep_once(common::Field3<typename Policy::storage_t>& sigma,
                      common::Field3<typename Policy::storage_t>& scratch,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz, bool gauss_seidel) {
  sigma_sweep_once<Policy>(sigma, scratch, src, inv_rho, alpha, dx, dy, dz,
                           gauss_seidel ? SweepKind::kRedBlack
                                        : SweepKind::kJacobi);
}

template <class Policy>
void sigma_solve(common::Field3<typename Policy::storage_t>& sigma,
                 common::Field3<typename Policy::storage_t>& scratch,
                 const common::Field3<typename Policy::storage_t>& src,
                 const common::Field3<typename Policy::storage_t>& inv_rho,
                 typename Policy::compute_t alpha,
                 typename Policy::compute_t dx,
                 typename Policy::compute_t dy,
                 typename Policy::compute_t dz,
                 int sweeps, SweepKind kind, SigmaBcSpec bc, bool batch,
                 const common::ExecSpace& exec) {
  for (int s = 0; s < sweeps; ++s) {
    // Sweeps consume a single ghost layer.
    fill_sigma_ghosts(sigma, bc, 1);
    sigma_sweep_once<Policy>(sigma, scratch, src, inv_rho, alpha, dx, dy, dz,
                             kind, batch, exec);
  }
  // Reconstruction downstream needs the full ghost depth.
  fill_sigma_ghosts(sigma, bc);
}

template <class Policy>
void sigma_solve(common::Field3<typename Policy::storage_t>& sigma,
                 common::Field3<typename Policy::storage_t>& scratch,
                 const common::Field3<typename Policy::storage_t>& src,
                 const common::Field3<typename Policy::storage_t>& inv_rho,
                 typename Policy::compute_t alpha,
                 typename Policy::compute_t dx,
                 typename Policy::compute_t dy,
                 typename Policy::compute_t dz,
                 int sweeps, bool gauss_seidel, SigmaBcSpec bc) {
  sigma_solve<Policy>(sigma, scratch, src, inv_rho, alpha, dx, dy, dz, sweeps,
                      gauss_seidel ? SweepKind::kRedBlack : SweepKind::kJacobi,
                      bc);
}

template <class Policy>
double sigma_residual(const common::Field3<typename Policy::storage_t>& sigma,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz) {
  using C = typename Policy::compute_t;
  using S = typename Policy::storage_t;
  const int nx = sigma.nx(), ny = sigma.ny(), nz = sigma.nz();
  const C inv_dx2 = C(1) / (dx * dx);
  const C inv_dy2 = C(1) / (dy * dy);
  const C inv_dz2 = C(1) / (dz * dz);
  auto at = [](const common::Field3<S>& f, int i, int j, int k) -> C {
    return static_cast<C>(f(i, j, k));
  };

  double res = 0.0;
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const C ir0 = at(inv_rho, i, j, k);
        const C cxm = C(0.5) * (ir0 + at(inv_rho, i - 1, j, k));
        const C cxp = C(0.5) * (ir0 + at(inv_rho, i + 1, j, k));
        const C cym = C(0.5) * (ir0 + at(inv_rho, i, j - 1, k));
        const C cyp = C(0.5) * (ir0 + at(inv_rho, i, j + 1, k));
        const C czm = C(0.5) * (ir0 + at(inv_rho, i, j, k - 1));
        const C czp = C(0.5) * (ir0 + at(inv_rho, i, j, k + 1));
        const C s0 = at(sigma, i, j, k);
        const C lap =
            inv_dx2 * ((at(sigma, i + 1, j, k) - s0) * cxp -
                       (s0 - at(sigma, i - 1, j, k)) * cxm) +
            inv_dy2 * ((at(sigma, i, j + 1, k) - s0) * cyp -
                       (s0 - at(sigma, i, j - 1, k)) * cym) +
            inv_dz2 * ((at(sigma, i, j, k + 1) - s0) * czp -
                       (s0 - at(sigma, i, j, k - 1)) * czm);
        const C r = s0 * ir0 - alpha * lap - at(src, i, j, k);
        res = std::max(res, static_cast<double>(std::abs(r)));
      }
    }
  }
  return res;
}

// Explicit instantiations for the four precision policies.
using common::Bf16x32;
using common::Fp16x32;
using common::Fp32;
using common::Fp64;

#define IGR_INSTANTIATE_SIGMA(P)                                               \
  template void sigma_sweep_once<P>(                                           \
      common::Field3<P::storage_t>&, common::Field3<P::storage_t>&,            \
      const common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,\
      P::compute_t, P::compute_t, P::compute_t, P::compute_t, bool);           \
  template void sigma_sweep_once<P>(                                           \
      common::Field3<P::storage_t>&, common::Field3<P::storage_t>&,            \
      const common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,\
      P::compute_t, P::compute_t, P::compute_t, P::compute_t, SweepKind,       \
      bool, const common::ExecSpace&);                                         \
  template void sigma_solve<P>(                                                \
      common::Field3<P::storage_t>&, common::Field3<P::storage_t>&,            \
      const common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,\
      P::compute_t, P::compute_t, P::compute_t, P::compute_t, int, bool,       \
      SigmaBcSpec);                                                            \
  template void sigma_solve<P>(                                                \
      common::Field3<P::storage_t>&, common::Field3<P::storage_t>&,            \
      const common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,\
      P::compute_t, P::compute_t, P::compute_t, P::compute_t, int, SweepKind,  \
      SigmaBcSpec, bool, const common::ExecSpace&);                            \
  template double sigma_residual<P>(                                           \
      const common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,\
      const common::Field3<P::storage_t>&, P::compute_t, P::compute_t,         \
      P::compute_t, P::compute_t);                                             \
  template void sigma_relax_planes<P>(                                         \
      common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,      \
      const common::Field3<P::storage_t>&, P::compute_t, P::compute_t,         \
      P::compute_t, P::compute_t, int, int, int, bool,                         \
      const common::ExecSpace&);                                               \
  template void sigma_jacobi_planes<P>(                                        \
      common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,      \
      const common::Field3<P::storage_t>&, const common::Field3<P::storage_t>&,\
      P::compute_t, P::compute_t, P::compute_t, P::compute_t, int, int, bool,  \
      const common::ExecSpace&);

IGR_INSTANTIATE_SIGMA(Fp64)
IGR_INSTANTIATE_SIGMA(Fp32)
IGR_INSTANTIATE_SIGMA(Fp16x32)
IGR_INSTANTIATE_SIGMA(Bf16x32)
#undef IGR_INSTANTIATE_SIGMA

}  // namespace igr::core
