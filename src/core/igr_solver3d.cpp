#include "core/igr_solver3d.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "common/half.hpp"
#include "common/math.hpp"
#include "common/state.hpp"
#include "fv/cfl.hpp"
#include "fv/riemann.hpp"
#include "fv/rk3.hpp"
#include "fv/viscous.hpp"

namespace igr::core {

namespace {

using common::kEnergy;
using common::kMomX;
using common::kMomY;
using common::kMomZ;
using common::kNumVars;
using common::kRho;

bool all_periodic(const fv::BcSpec& bc) {
  for (auto k : bc.kind) {
    if (k != fv::BcKind::kPeriodic) return false;
  }
  return true;
}

}  // namespace

template <class Policy>
IgrSolver3D<Policy>::IgrSolver3D(const mesh::Grid& grid,
                                 const common::SolverConfig& cfg,
                                 fv::BcSpec bc, fv::ReconScheme recon)
    : grid_(grid),
      cfg_(cfg),
      bc_(std::move(bc)),
      recon_(recon),
      eos_(cfg.gamma),
      alpha_(cfg.alpha_factor * grid.min_dx() * grid.min_dx()),
      q_(grid.nx(), grid.ny(), grid.nz(), 3),
      qstage_(grid.nx(), grid.ny(), grid.nz(), 3),
      rhs_(grid.nx(), grid.ny(), grid.nz(), 3),
      sigma_(grid.nx(), grid.ny(), grid.nz(), 3),
      sigma_src_(grid.nx(), grid.ny(), grid.nz(), 3),
      inv_rho_(grid.nx(), grid.ny(), grid.nz(), 3) {
  cfg_.validate();
  sigma_bc_ = all_periodic(bc_) ? SigmaBc::kPeriodic : SigmaBc::kNeumann;
  if (!cfg_.sigma_gauss_seidel) {
    sigma_scratch_ =
        common::Field3<S>(grid.nx(), grid.ny(), grid.nz(), 3);
  }
  grind_.set_cells_per_step(grid.cells());
}

template <class Policy>
void IgrSolver3D<Policy>::init(const PrimFn& prim) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const auto w = prim(grid_.x(i), grid_.y(j), grid_.z(k));
        const auto qc = eos_.to_cons(w);
        for (int c = 0; c < kNumVars; ++c)
          q_[c](i, j, k) = static_cast<S>(qc[c]);
      }
    }
  }
  sigma_.fill(S{});
  time_ = 0.0;
}

template <class Policy>
void IgrSolver3D<Policy>::refresh_inv_rho(common::StateField3<S>& q) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const int ng = q.ng();
  const std::size_t row_len = static_cast<std::size_t>(nx) + 2 * ng;
  if constexpr (common::converts_storage<Policy>) {
    if (cfg_.batch_half_conversion) {
      // Whole ghosted rows through the batched conversion lanes: one batch
      // load, a vector reciprocal, one batch store — same per-element values
      // as the scalar path below.
#pragma omp parallel
      {
        std::vector<C> row(row_len);
#pragma omp for
        for (int k = -ng; k < nz + ng; ++k) {
          for (int j = -ng; j < ny + ng; ++j) {
            common::load_line<Policy>(&q[kRho](-ng, j, k), row.data(),
                                      row_len);
            for (std::size_t i = 0; i < row_len; ++i) row[i] = C(1) / row[i];
            common::store_line<Policy>(row.data(), &inv_rho_(-ng, j, k),
                                       row_len);
          }
        }
      }
      return;
    }
  }
#pragma omp parallel for
  for (int k = -ng; k < nz + ng; ++k) {
    for (int j = -ng; j < ny + ng; ++j) {
      const S* pr = &q[kRho](-ng, j, k);
      S* pir = &inv_rho_(-ng, j, k);
      for (int i = 0; i < nx + 2 * ng; ++i) {
        pir[i] = static_cast<S>(C(1) / static_cast<C>(pr[i]));
      }
    }
  }
}

template <class Policy>
void IgrSolver3D<Policy>::compute_sigma_source(common::StateField3<S>& q) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const C inv2dx = C(0.5) / static_cast<C>(grid_.dx());
  const C inv2dy = C(0.5) / static_cast<C>(grid_.dy());
  const C inv2dz = C(0.5) / static_cast<C>(grid_.dz());
  const C al = static_cast<C>(alpha_);

  refresh_inv_rho(q);

  const std::ptrdiff_t sy = inv_rho_.stride(1);
  const std::ptrdiff_t sz = inv_rho_.stride(2);

  if constexpr (common::converts_storage<Policy>) {
    if (cfg_.batch_half_conversion) {
      // Batched form: for each of the five stencil row positions (center,
      // j∓1, k∓1) convert the reciprocal-density and momentum rows once and
      // form velocity rows u_a = m_a * (1/rho) at compute precision — the
      // same products the scalar path forms per tap, at SIMD conversion
      // cost.  Rows span i in [-1, nx] so the center row's i∓1 taps are
      // in-slab.
      const std::size_t row_len = static_cast<std::size_t>(nx) + 2;
#pragma omp parallel
      {
        std::vector<C> ir_row(row_len), mom_row(row_len);
        std::vector<C> vel(15 * row_len);  // [pos * 3 + a] rows
        std::vector<C> src_row(static_cast<std::size_t>(nx));
#pragma omp for
        for (int k = 0; k < nz; ++k) {
          for (int j = 0; j < ny; ++j) {
            const int js[5] = {j, j - 1, j + 1, j, j};
            const int ks[5] = {k, k, k, k - 1, k + 1};
            for (int pos = 0; pos < 5; ++pos) {
              common::load_line<Policy>(&inv_rho_(-1, js[pos], ks[pos]),
                                        ir_row.data(), row_len);
              for (int a = 0; a < 3; ++a) {
                common::load_line<Policy>(
                    &q[kMomX + a](-1, js[pos], ks[pos]), mom_row.data(),
                    row_len);
                C* v = vel.data() +
                       static_cast<std::size_t>(pos * 3 + a) * row_len;
                for (std::size_t i = 0; i < row_len; ++i)
                  v[i] = mom_row[i] * ir_row[i];
              }
            }
            const C* vc = vel.data();
            const C* vjm = vel.data() + 3 * row_len;
            const C* vjp = vel.data() + 6 * row_len;
            const C* vkm = vel.data() + 9 * row_len;
            const C* vkp = vel.data() + 12 * row_len;
            for (int i = 0; i < nx; ++i) {
              const std::size_t o = static_cast<std::size_t>(i) + 1;
              fv::VelGrad<C> g;
              for (int a = 0; a < 3; ++a) {
                const std::size_t ar = static_cast<std::size_t>(a) * row_len;
                g.g[a][0] = (vc[ar + o + 1] - vc[ar + o - 1]) * inv2dx;
                g.g[a][1] = (vjp[ar + o] - vjm[ar + o]) * inv2dy;
                g.g[a][2] = (vkp[ar + o] - vkm[ar + o]) * inv2dz;
              }
              const C d = g.div();
              src_row[static_cast<std::size_t>(i)] =
                  al * (g.tr_sq() + d * d);
            }
            common::store_line<Policy>(src_row.data(), sigma_src_.row(j, k),
                                       static_cast<std::size_t>(nx));
          }
        }
      }
      return;
    }
  }

#pragma omp parallel for
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      const S* pir = &inv_rho_(0, j, k);
      const S* pm[3] = {&q[kMomX](0, j, k), &q[kMomY](0, j, k),
                        &q[kMomZ](0, j, k)};
      S* psrc = &sigma_src_(0, j, k);
      auto vel = [&](int a, std::ptrdiff_t o) -> C {
        return static_cast<C>(pm[a][o]) * static_cast<C>(pir[o]);
      };
      for (int i = 0; i < nx; ++i) {
        fv::VelGrad<C> g;
        for (int a = 0; a < 3; ++a) {
          g.g[a][0] = (vel(a, i + 1) - vel(a, i - 1)) * inv2dx;
          g.g[a][1] = (vel(a, i + sy) - vel(a, i - sy)) * inv2dy;
          g.g[a][2] = (vel(a, i + sz) - vel(a, i - sz)) * inv2dz;
        }
        const C d = g.div();
        psrc[i] = static_cast<S>(al * (g.tr_sq() + d * d));
      }
    }
  }
}

template <class Policy>
template <int Dir, class ReconOp>
void IgrSolver3D<Policy>::flux_sweep(common::StateField3<S>& q,
                                     common::StateField3<S>& rhs,
                                     ReconOp recon, bool overwrite,
                                     const CellRegion& reg) {
  constexpr int dir = Dir;
  if (reg.empty()) return;
  // The line segment runs along `dir` over the region's cells; everything
  // below indexes relative to the segment start, so a restricted region
  // performs the exact per-cell arithmetic of the full sweep.
  const int s_lo = reg.lo[static_cast<std::size_t>(dir)];
  const int n_dir = reg.hi[static_cast<std::size_t>(dir)] - s_lo;
  const C d_dir = static_cast<C>((dir == 0)   ? grid_.dx()
                                 : (dir == 1) ? grid_.dy()
                                              : grid_.dz());
  const C inv_d = C(1) / d_dir;
  const C gam = static_cast<C>(cfg_.gamma);
  const C gm1 = gam - C(1);
  const C mu = static_cast<C>(cfg_.mu);
  const C zeta = static_cast<C>(cfg_.zeta);
  const bool viscous = (cfg_.mu > 0.0 || cfg_.zeta > 0.0);
  const C rho_floor = static_cast<C>(cfg_.density_floor);
  const C p_floor = static_cast<C>(cfg_.pressure_floor);
  // Batched half<->float lanes for the line gather/scatter (FP16/32 only;
  // dead for identity-storage policies).
  const bool batch = cfg_.batch_half_conversion;

  // The two tangential axes of this sweep (the line runs along `dir`).
  const int axA = (dir == 0) ? 1 : 0;
  const int axB = (dir == 2) ? 1 : 2;
  const int a_lo = reg.lo[static_cast<std::size_t>(axA)];
  const int a_hi = reg.hi[static_cast<std::size_t>(axA)];
  const int b_lo = reg.lo[static_cast<std::size_t>(axB)];
  const int b_hi = reg.hi[static_cast<std::size_t>(axB)];
  const std::array<C, 3> dd{static_cast<C>(grid_.dx()),
                            static_cast<C>(grid_.dy()),
                            static_cast<C>(grid_.dz())};
  const C inv2dA = C(0.5) / dd[static_cast<std::size_t>(axA)];
  const C inv2dB = C(0.5) / dd[static_cast<std::size_t>(axB)];

  // Map (tangential a, tangential b, line coordinate s) -> (i,j,k).
  auto cell = [&](int line_a, int line_b, int s) -> std::array<int, 3> {
    switch (dir) {
      case 0: return {s, line_a, line_b};
      case 1: return {line_a, s, line_b};
      default: return {line_a, line_b, s};
    }
  };

  // All fields share one block shape, hence one set of strides.
  const std::ptrdiff_t st = q[0].stride(dir);
  const std::ptrdiff_t stA = q[0].stride(axA);
  const std::ptrdiff_t stB = q[0].stride(axB);

#pragma omp parallel
  {
    // Per-thread line buffers — the CPU analogue of the paper's
    // thread-local temporaries (§5.4).  Each line of cells (with ghosts) is
    // gathered once into contiguous storage: the 5 conservative variables
    // and Sigma, then the primitive line (1/rho, u, v, w, p) computed once
    // per cell with a single division.  Reconstruction and the Riemann,
    // viscous, and fallback paths then walk these with unit stride,
    // multiplication-only.
    const std::size_t line_len = static_cast<std::size_t>(n_dir) + 6;
    const std::size_t fn = static_cast<std::size_t>(n_dir) + 1;
    std::vector<C> lines((kNumVars + 1) * line_len);
    std::vector<C> prims(5 * line_len);   // ir, u, v, w, p
    std::vector<C> faces(2 * (kNumVars + 1) * fn);  // recon left/right states
    std::vector<C> fprims(2 * 6 * fn);  // face prims: rho,ir,u,v,w,p (L/R)
    std::vector<C> smax_buf(fn);
    std::vector<unsigned char> fallback(fn);
    std::vector<C> flux(kNumVars * fn);   // [c*fn + fi]
    std::vector<C> out_row(static_cast<std::size_t>(n_dir));  // rhs scatter

    C* const ir_l = prims.data();
    C* const u_l = prims.data() + line_len;
    C* const v_l = prims.data() + 2 * line_len;
    C* const w_l = prims.data() + 3 * line_len;
    C* const p_l = prims.data() + 4 * line_len;
    C* const lf = faces.data();                       // [c*fn + fi] left
    C* const rf = faces.data() + (kNumVars + 1) * fn; // [c*fn + fi] right
    C* const lp = fprims.data();                      // [c*fn + fi] left
    C* const rp = fprims.data() + 6 * fn;             // [c*fn + fi] right

#pragma omp for collapse(2)
    for (int lb = b_lo; lb < b_hi; ++lb) {
      for (int la = a_lo; la < a_hi; ++la) {
        const auto c0 = cell(la, lb, s_lo);
        const std::size_t base = q[0].idx(c0[0], c0[1], c0[2]);
        for (int c = 0; c <= kNumVars; ++c) {
          const S* p = ((c < kNumVars) ? q[c].data() : sigma_.data()) + base;
          C* line = lines.data() + static_cast<std::size_t>(c) * line_len;
          if constexpr (common::converts_storage<Policy>) {
            if (batch) {
              // Whole-line conversion through the batched lanes (unit-stride
              // for the x sweep; gathered for y/z) — bitwise-identical to
              // the per-element loop below.
              common::load_line_strided<Policy>(p - 3 * st, st, line,
                                                line_len);
              continue;
            }
          }
          for (int s = -3; s < n_dir + 3; ++s)
            line[s + 3] = static_cast<C>(p[s * st]);
        }

        // Primitive line: one division per cell; everything downstream of
        // it multiplies (the register-resident discipline of §5.2).
        {
          const C* rho = lines.data();
          const C* mx = lines.data() + 1 * line_len;
          const C* my = lines.data() + 2 * line_len;
          const C* mz = lines.data() + 3 * line_len;
          const C* en = lines.data() + 4 * line_len;
          for (std::size_t s = 0; s < line_len; ++s) {
            const C ir = C(1) / rho[s];
            ir_l[s] = ir;
            u_l[s] = mx[s] * ir;
            v_l[s] = my[s] * ir;
            w_l[s] = mz[s] * ir;
            p_l[s] = gm1 * (en[s] - C(0.5) * (mx[s] * u_l[s] +
                                              my[s] * v_l[s] +
                                              mz[s] * w_l[s]));
          }
        }

        // Reconstruction, one tight vectorizable loop per variable: the
        // scheme is a compile-time constant of this instantiation, so there
        // is no per-face dispatch left to block SIMD.
        for (int c = 0; c <= kNumVars; ++c) {
          const C* line = lines.data() + static_cast<std::size_t>(c) * line_len;
          C* ql = lf + static_cast<std::size_t>(c) * fn;
          C* qr = rf + static_cast<std::size_t>(c) * fn;
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const auto f = recon(line + fi);
            ql[fi] = f.left;
            qr[fi] = f.right;
          }
        }

        // --- Face primitives: one vector division per side per face; the
        // rest of the conversion is multiplication-only and vectorizes.
        auto prim_pass = [&](const C* qs, C* ps) {
          const C* mx = qs + 1 * fn;
          const C* my = qs + 2 * fn;
          const C* mz = qs + 3 * fn;
          const C* en = qs + 4 * fn;
          C* rho = ps;
          C* ir = ps + fn;
          C* u = ps + 2 * fn;
          C* v = ps + 3 * fn;
          C* w = ps + 4 * fn;
          C* p = ps + 5 * fn;
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const C r0 = C(1) / qs[fi];
            rho[fi] = qs[fi];
            ir[fi] = r0;
            u[fi] = mx[fi] * r0;
            v[fi] = my[fi] * r0;
            w[fi] = mz[fi] * r0;
            p[fi] = gm1 * (en[fi] - C(0.5) * (mx[fi] * u[fi] +
                                              my[fi] * v[fi] +
                                              mz[fi] * w[fi]));
          }
        };
        prim_pass(lf, lp);
        prim_pass(rf, rp);

        // --- Nonphysical-fallback mask.  High-order linear reconstruction
        // can overshoot into a non-physical state at an under-resolved
        // start-up discontinuity, before Sigma has developed to smooth it.
        // The internal-energy positivity predicate is written
        // multiplication-only so the mask pass vectorizes; the (rare)
        // masked faces are then patched scalar with piecewise-constant
        // (cell-average) face states — a conservative, local safeguard that
        // leaves smooth regions (and the developed IGR solution) untouched.
        unsigned any_fallback = 0;
        for (std::size_t fi = 0; fi < fn; ++fi) {
          const C rl = lf[fi], rr = rf[fi];
          const C kel = lf[fn + fi] * lf[fn + fi] +
                        lf[2 * fn + fi] * lf[2 * fn + fi] +
                        lf[3 * fn + fi] * lf[3 * fn + fi];
          const C ker = rf[fn + fi] * rf[fn + fi] +
                        rf[2 * fn + fi] * rf[2 * fn + fi] +
                        rf[3 * fn + fi] * rf[3 * fn + fi];
          const bool bad =
              !(rl > C(0)) || !(C(2) * rl * lf[4 * fn + fi] - kel > C(0)) ||
              !(rr > C(0)) || !(C(2) * rr * rf[4 * fn + fi] - ker > C(0));
          fallback[fi] = static_cast<unsigned char>(bad);
          any_fallback |= static_cast<unsigned>(bad);
        }
        if (any_fallback) {
          for (std::size_t fi = 0; fi < fn; ++fi) {
            if (!fallback[fi]) continue;
            const std::size_t il = fi + 2, ir = fi + 3;
            for (int c = 0; c <= kNumVars; ++c) {
              const C* sc =
                  lines.data() + static_cast<std::size_t>(c) * line_len;
              lf[static_cast<std::size_t>(c) * fn + fi] = sc[il];
              rf[static_cast<std::size_t>(c) * fn + fi] = sc[ir];
            }
            // Cell-center primitives come off the cached line — no
            // division.
            lp[fi] = lf[fi];
            lp[fn + fi] = ir_l[il];
            lp[2 * fn + fi] = u_l[il];
            lp[3 * fn + fi] = v_l[il];
            lp[4 * fn + fi] = w_l[il];
            lp[5 * fn + fi] = p_l[il];
            rp[fi] = rf[fi];
            rp[fn + fi] = ir_l[ir];
            rp[2 * fn + fi] = u_l[ir];
            rp[3 * fn + fi] = v_l[ir];
            rp[4 * fn + fi] = w_l[ir];
            rp[5 * fn + fi] = p_l[ir];
          }
        }

        // --- Optional configured floors (high-Mach jet start-up
        // robustness).  A triggered density floor leaves the cached
        // reciprocal as an overestimate (1/rho >= 1/rho_floor), which only
        // raises the wave-speed bound — the robust direction.
        if (rho_floor > C(0)) {
          for (std::size_t fi = 0; fi < fn; ++fi) {
            lp[fi] = std::max(lp[fi], rho_floor);
            rp[fi] = std::max(rp[fi], rho_floor);
          }
        }
        if (p_floor > C(0)) {
          for (std::size_t fi = 0; fi < fn; ++fi) {
            lp[5 * fn + fi] = std::max(lp[5 * fn + fi], p_floor);
            rp[5 * fn + fi] = std::max(rp[5 * fn + fi], p_floor);
          }
        }

        // --- Rusanov (local Lax–Friedrichs) flux, assembled per component
        // over all faces of the line: the wave-speed bound (one vector
        // sqrt per side) and both physical fluxes vectorize; Sigma
        // augments the pressure in both (eqs. 6-8; the slight wave-speed
        // overestimate only adds robustness).
        {
          constexpr std::size_t kUn = 2 + static_cast<std::size_t>(Dir);
          const C* sfl = lf + static_cast<std::size_t>(kNumVars) * fn;
          const C* sfr = rf + static_cast<std::size_t>(kNumVars) * fn;
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const C unl = lp[kUn * fn + fi];
            const C unr = rp[kUn * fn + fi];
            const C cl = std::sqrt(gam * std::max(lp[5 * fn + fi] + sfl[fi],
                                                  C(0)) *
                                   lp[fn + fi]);
            const C cr = std::sqrt(gam * std::max(rp[5 * fn + fi] + sfr[fi],
                                                  C(0)) *
                                   rp[fn + fi]);
            smax_buf[fi] = std::max(std::abs(unl) + cl, std::abs(unr) + cr);
          }
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const C rl = lp[fi], rr = rp[fi];
            const C ul = lp[2 * fn + fi], ur = rp[2 * fn + fi];
            const C vl = lp[3 * fn + fi], vr = rp[3 * fn + fi];
            const C wwl = lp[4 * fn + fi], wwr = rp[4 * fn + fi];
            const C unl = lp[kUn * fn + fi], unr = rp[kUn * fn + fi];
            const C el = lf[4 * fn + fi], er = rf[4 * fn + fi];
            const C ptl = lp[5 * fn + fi] + sfl[fi];
            const C ptr = rp[5 * fn + fi] + sfr[fi];
            const C sm = smax_buf[fi];

            // Conservative states rebuilt from the (floored) primitives,
            // exactly as the scalar rusanov_flux does.
            const C qml[3] = {rl * ul, rl * vl, rl * wwl};
            const C qmr[3] = {rr * ur, rr * vr, rr * wwr};

            auto blend = [&](C fl_c, C fr_c, C ql_c, C qr_c) {
              return C(0.5) * (fl_c + fr_c) - C(0.5) * sm * (qr_c - ql_c);
            };
            flux[fi] = blend(rl * unl, rr * unr, rl, rr);
            C fml[3] = {qml[0] * unl, qml[1] * unl, qml[2] * unl};
            C fmr[3] = {qmr[0] * unr, qmr[1] * unr, qmr[2] * unr};
            fml[Dir] += ptl;
            fmr[Dir] += ptr;
            flux[fn + fi] = blend(fml[0], fmr[0], qml[0], qmr[0]);
            flux[2 * fn + fi] = blend(fml[1], fmr[1], qml[1], qmr[1]);
            flux[3 * fn + fi] = blend(fml[2], fmr[2], qml[2], qmr[2]);
            flux[4 * fn + fi] =
                blend((el + ptl) * unl, (er + ptr) * unr, el, er);
          }
        }

        if (viscous) {
          // Velocities along the line come from the cached primitive line;
          // transverse derivatives pair the momentum fields with the
          // persistent reciprocal-density field — every term is
          // multiplication-only.
          const S* pmom[3] = {q[kMomX].data() + base, q[kMomY].data() + base,
                              q[kMomZ].data() + base};
          const S* pir = inv_rho_.data() + inv_rho_.idx(c0[0], c0[1], c0[2]);
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const std::size_t il = fi + 2, ir = fi + 3;
            const std::ptrdiff_t ol =
                (static_cast<std::ptrdiff_t>(fi) - 1) * st;
            const std::ptrdiff_t orr = ol + st;
            fv::VelGrad<C> g;
            C uf[3];
            const C* uvw[3] = {u_l, v_l, w_l};
            for (int a = 0; a < 3; ++a) {
              uf[a] = C(0.5) * (uvw[a][il] + uvw[a][ir]);
              g.g[a][dir] = (uvw[a][ir] - uvw[a][il]) * inv_d;
              const S* pm = pmom[a];
              auto dv = [&](std::ptrdiff_t o, std::ptrdiff_t stT) -> C {
                return static_cast<C>(pm[o + stT]) *
                           static_cast<C>(pir[o + stT]) -
                       static_cast<C>(pm[o - stT]) *
                           static_cast<C>(pir[o - stT]);
              };
              g.g[a][axA] = C(0.5) * (dv(ol, stA) + dv(orr, stA)) * inv2dA;
              g.g[a][axB] = C(0.5) * (dv(ol, stB) + dv(orr, stB)) * inv2dB;
            }
            const auto fv_ = fv::viscous_flux(g, uf, mu, zeta, dir);
            for (int c = 0; c < kNumVars; ++c)
              flux[static_cast<std::size_t>(c) * fn + fi] += fv_[c];
          }
        }

        for (int c = 0; c < kNumVars; ++c) {
          S* pr = rhs[c].data() + base;
          const C* fc = flux.data() + static_cast<std::size_t>(c) * fn;
          if constexpr (common::converts_storage<Policy>) {
            if (batch) {
              // Accumulate in a compute-precision scratch line and convert
              // the whole line once, instead of a conversion round-trip per
              // element — same element values as the scalar loops below.
              C* row = out_row.data();
              const std::size_t nd = static_cast<std::size_t>(n_dir);
              if (overwrite) {
                for (std::size_t s = 0; s < nd; ++s)
                  row[s] = (fc[s] - fc[s + 1]) * inv_d;
              } else {
                common::load_line_strided<Policy>(pr, st, row, nd);
                for (std::size_t s = 0; s < nd; ++s)
                  row[s] += (fc[s] - fc[s + 1]) * inv_d;
              }
              common::store_line_strided<Policy>(row, pr, st, nd);
              continue;
            }
          }
          if (overwrite) {
            // dir==0: the zero-fill is folded into this overwrite, and the
            // store is unit-stride (st == 1), so it vectorizes.
            for (int s = 0; s < n_dir; ++s) {
              pr[s * st] = static_cast<S>((fc[s] - fc[s + 1]) * inv_d);
            }
          } else {
            for (int s = 0; s < n_dir; ++s) {
              const C cur = static_cast<C>(pr[s * st]);
              pr[s * st] = static_cast<S>(cur + (fc[s] - fc[s + 1]) * inv_d);
            }
          }
        }
      }
    }
  }
}

template <class Policy>
void IgrSolver3D<Policy>::apply_domain_bc(common::StateField3<S>& q) {
  fv::apply_bc(q, bc_, grid_, eos_);
}

template <class Policy>
void IgrSolver3D<Policy>::sigma_sweep(common::StateField3<S>& /*q*/) {
  sigma_sweep_once<Policy>(sigma_, sigma_scratch_, sigma_src_, inv_rho_,
                           static_cast<C>(alpha_), static_cast<C>(grid_.dx()),
                           static_cast<C>(grid_.dy()),
                           static_cast<C>(grid_.dz()),
                           cfg_.sigma_gauss_seidel ? SweepKind::kRedBlack
                                                   : SweepKind::kJacobi,
                           cfg_.batch_half_conversion);
}

template <class Policy>
void IgrSolver3D<Policy>::fill_sigma_boundary() {
  fill_sigma_ghosts(sigma_, sigma_bc_);
}

template <class Policy>
template <class ReconOp>
void IgrSolver3D<Policy>::flux_sweep_all(common::StateField3<S>& q,
                                         common::StateField3<S>& rhs,
                                         ReconOp recon,
                                         const CellRegion& reg) {
  // The dir==0 sweep overwrites rhs, folding the zero-fill into its
  // write-back and saving one full 5N traversal per RK stage.  Regions
  // partition the block, so every cell sees exactly one overwrite.
  flux_sweep<0>(q, rhs, recon, /*overwrite=*/true, reg);
  flux_sweep<1>(q, rhs, recon, /*overwrite=*/false, reg);
  flux_sweep<2>(q, rhs, recon, /*overwrite=*/false, reg);
}

template <class Policy>
void IgrSolver3D<Policy>::prepare_flux_pass(common::StateField3<S>& q) {
  // The viscous path reads the persistent reciprocal-density field; when
  // the Sigma solve is disabled nobody has refreshed it this RHS, so do it
  // here (once per RHS — the boundary pass of a split never repeats it).
  // With Sigma active, build_sigma_source already recomputed it from the
  // same ghost-filled state.
  const bool viscous = (cfg_.mu > 0.0 || cfg_.zeta > 0.0);
  const bool sigma_active = (alpha_ > 0.0 && cfg_.sigma_sweeps > 0);
  if (viscous && !sigma_active) refresh_inv_rho(q);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_region(common::StateField3<S>& q,
                                                common::StateField3<S>& rhs,
                                                const CellRegion& reg,
                                                bool prepare) {
  // The sweeps reuse q[0]'s base offset and strides for rhs, Sigma, and
  // inv_rho; every field must share the solver's block shape (this held
  // implicitly before the pointer-based rewrite, now it is load-bearing).
  assert(q.nx() == grid_.nx() && q.ny() == grid_.ny() && q.nz() == grid_.nz());
  assert(rhs.nx() == grid_.nx() && rhs.ny() == grid_.ny() &&
         rhs.nz() == grid_.nz());
  assert(q.ng() == sigma_.ng() && rhs.ng() == sigma_.ng());
  if (prepare) prepare_flux_pass(q);
  fv::dispatch_recon(recon_,
                     [&](auto recon) { flux_sweep_all(q, rhs, recon, reg); });
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes(common::StateField3<S>& q,
                                         common::StateField3<S>& rhs) {
  compute_fluxes_region(q, rhs, full_region(), /*prepare=*/true);
}

template <class Policy>
CellRegion IgrSolver3D<Policy>::interior_flux_region(int axis) const {
  // Only the split axis is shaved: a flux line reads ghost planes of an
  // axis only through that axis' reconstruction stencil (tangential
  // coordinates of every line stay interior), so cells at least one ghost
  // depth away from the two `axis` faces touch no in-flight ghost.  The
  // margin is the field ghost depth — the stencil radius it was sized for
  // — so a deeper-ghosted future scheme keeps the no-ghost-read invariant
  // automatically.
  CellRegion r = full_region();
  const auto as = static_cast<std::size_t>(axis);
  const int margin = sigma_.ng();
  const int n = r.hi[as];
  r.lo[as] = std::min(margin, n);
  r.hi[as] = std::max(n - margin, r.lo[as]);
  return r;
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_interior(common::StateField3<S>& q,
                                                  common::StateField3<S>& rhs,
                                                  int axis) {
  compute_fluxes_region(q, rhs, interior_flux_region(axis),
                        /*prepare=*/true);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_boundary(common::StateField3<S>& q,
                                                  common::StateField3<S>& rhs,
                                                  int axis) {
  // The complement of the interior region: the two slabs hugging the
  // `axis` faces, full extent on the other axes — disjoint from the
  // interior and from each other (degenerate for thin blocks, where the
  // low slab absorbs everything).
  const CellRegion in = interior_flux_region(axis);
  const auto as = static_cast<std::size_t>(axis);
  CellRegion low = full_region();
  low.hi[as] = in.lo[as];
  CellRegion high = full_region();
  high.lo[as] = in.hi[as];
  if (!low.empty()) compute_fluxes_region(q, rhs, low, /*prepare=*/false);
  if (!high.empty()) compute_fluxes_region(q, rhs, high, /*prepare=*/false);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_runtime_dispatch(
    common::StateField3<S>& q, common::StateField3<S>& rhs) {
  prepare_flux_pass(q);
  flux_sweep_all(q, rhs, fv::ReconRuntime{recon_}, full_region());
}

template <class Policy>
void IgrSolver3D<Policy>::compute_rhs(common::StateField3<S>& q,
                                      common::StateField3<S>& rhs) {
  apply_domain_bc(q);

  if (alpha_ > 0.0 && cfg_.sigma_sweeps > 0) {
    build_sigma_source(q);
    for (int s = 0; s < cfg_.sigma_sweeps; ++s) {
      fill_sigma_ghosts(sigma_, sigma_bc_, 1);  // sweeps need one layer
      sigma_sweep(q);
    }
    fill_sigma_boundary();  // reconstruction needs the full depth
  } else {
    sigma_.fill(S{});
  }

  compute_fluxes(q, rhs);
}

template <class Policy>
void IgrSolver3D<Policy>::begin_step() {
  qstage_ = q_;
}

template <class Policy>
void IgrSolver3D<Policy>::rk_update(const fv::Rk3Stage& st, double dt) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const C a = static_cast<C>(st.a);
  const C b = static_cast<C>(st.b);
  const C dtc = static_cast<C>(dt);
  if constexpr (common::converts_storage<Policy>) {
    if (cfg_.batch_half_conversion) {
      // Row-batched update: 3 batch loads + 1 batch store per component row
      // replace 3 scalar conversions + 1 round-trip per element.
      const std::size_t nxs = static_cast<std::size_t>(nx);
#pragma omp parallel
      {
        std::vector<C> qn_row(nxs), qs_row(nxs), r_row(nxs);
#pragma omp for
        for (int k = 0; k < nz; ++k) {
          for (int j = 0; j < ny; ++j) {
            for (int c = 0; c < kNumVars; ++c) {
              common::load_line<Policy>(q_[c].row(j, k), qn_row.data(), nxs);
              common::load_line<Policy>(qstage_[c].row(j, k), qs_row.data(),
                                        nxs);
              common::load_line<Policy>(rhs_[c].row(j, k), r_row.data(), nxs);
              for (std::size_t i = 0; i < nxs; ++i)
                qs_row[i] = a * qn_row[i] + b * (qs_row[i] + dtc * r_row[i]);
              common::store_line<Policy>(qs_row.data(), qstage_[c].row(j, k),
                                         nxs);
            }
          }
        }
      }
      return;
    }
  }
#pragma omp parallel for
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (int c = 0; c < kNumVars; ++c) {
          const C qn = static_cast<C>(q_[c](i, j, k));
          const C qs = static_cast<C>(qstage_[c](i, j, k));
          const C r = static_cast<C>(rhs_[c](i, j, k));
          qstage_[c](i, j, k) = static_cast<S>(a * qn + b * (qs + dtc * r));
        }
      }
    }
  }
}

template <class Policy>
void IgrSolver3D<Policy>::finish_step(double dt) {
  std::swap(q_, qstage_);
  time_ += dt;
}

template <class Policy>
void IgrSolver3D<Policy>::step_fixed(double dt) {
  grind_.begin_step();
  begin_step();
  for (const auto& st : fv::kRk3Stages) {
    compute_rhs(qstage_, rhs_);
    rk_update(st, dt);
  }
  finish_step(dt);
  grind_.end_step();
}

template <class Policy>
double IgrSolver3D<Policy>::step() {
  // The warm-start Sigma from the previous step feeds the wave-speed bound.
  const double dt = fv::compute_dt(q_, grid_, eos_, cfg_, &sigma_);
  step_fixed(dt);
  return dt;
}

template <class Policy>
std::size_t IgrSolver3D<Policy>::memory_bytes() const {
  return q_.bytes() + qstage_.bytes() + rhs_.bytes() + sigma_.bytes() +
         sigma_src_.bytes() + sigma_scratch_.bytes() + inv_rho_.bytes();
}

template <class Policy>
double IgrSolver3D<Policy>::storage_per_cell() const {
  // 5 state + 5 RK register + 5 RHS + Sigma + Sigma source (+ Jacobi copy),
  // plus the CPU-only reciprocal-density scratch (the paper's fused GPU
  // kernel stays at 17N by recomputing reciprocals in registers, §5.2).
  return 18.0 + (cfg_.sigma_gauss_seidel ? 0.0 : 1.0);
}

template <class Policy>
common::Cons<double> IgrSolver3D<Policy>::conserved_totals() const {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const double dv = grid_.dx() * grid_.dy() * grid_.dz();
  common::Cons<double> tot{};
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (int c = 0; c < kNumVars; ++c)
          tot[c] += static_cast<double>(q_[c](i, j, k)) * dv;
      }
    }
  }
  return tot;
}

template class IgrSolver3D<common::Fp64>;
template class IgrSolver3D<common::Fp32>;
template class IgrSolver3D<common::Fp16x32>;

}  // namespace igr::core
