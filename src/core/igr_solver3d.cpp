#include "core/igr_solver3d.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "common/half.hpp"
#include "common/math.hpp"
#include "common/state.hpp"
#include "core/exec_space.hpp"
#include "fv/cfl.hpp"
#include "fv/riemann.hpp"
#include "fv/rk3.hpp"
#include "fv/viscous.hpp"

namespace igr::core {

SigmaBcSpec sigma_bc_from(const fv::BcSpec& bc) {
  SigmaBcSpec spec;
  for (std::size_t f = 0; f < bc.kind.size(); ++f) {
    spec.face[f] = (bc.kind[f] == fv::BcKind::kPeriodic)
                       ? SigmaBc::kPeriodic
                       : SigmaBc::kNeumann;
  }
  return spec;
}

namespace {

using common::kEnergy;
using common::kMomX;
using common::kMomY;
using common::kMomZ;
using common::kNumVars;
using common::kRho;

/// Primitive slices from one row of conservative values, each slice its
/// own restrict parameter so the vectorizer needs no runtime alias
/// versioning.  The single home of the prim arithmetic: the face pass of
/// both flux kernels and the cell-prim rows of the streaming kernel all
/// come through here (StoreRho distinguishes the face layout, which also
/// keeps the reconstructed density, from cell rows, which read density off
/// the stencil rows directly).
template <bool StoreRho, class C>
inline void prim_rows_impl(const C* __restrict qs, const C* __restrict mx,
                           const C* __restrict my, const C* __restrict mz,
                           const C* __restrict en, std::size_t fn, C gm1,
                           C* __restrict rho, C* __restrict ir,
                           C* __restrict u, C* __restrict v, C* __restrict w,
                           C* __restrict p) {
  for (std::size_t i = 0; i < fn; ++i) {
    const C r0 = C(1) / qs[i];
    if constexpr (StoreRho) rho[i] = qs[i];
    ir[i] = r0;
    u[i] = mx[i] * r0;
    v[i] = my[i] * r0;
    w[i] = mz[i] * r0;
    p[i] = gm1 * (en[i] - C(0.5) * (mx[i] * u[i] + my[i] * v[i] +
                                    mz[i] * w[i]));
  }
}

/// prim pass over the [c*fn + i] face-buffer layout.
template <class C>
inline void prim_face_row(const C* qs, std::size_t fn, C gm1, C* ps) {
  prim_rows_impl<true>(qs, qs + 1 * fn, qs + 2 * fn, qs + 3 * fn,
                       qs + 4 * fn, fn, gm1, ps, ps + fn, ps + 2 * fn,
                       ps + 3 * fn, ps + 4 * fn, ps + 5 * fn);
}

/// Scalar parameters of one face-row evaluation (row-streaming sweeps).
template <class C>
struct FaceRowParams {
  C gam, gm1, mu, zeta, rho_floor, p_floor;
  C inv_d, inv2dA, inv2dB;
  bool viscous;
  std::ptrdiff_t st, stA, stB;  // flat strides: along-sweep, transverse A/B
};

/// One row of faces through the full interface pipeline — reconstruction,
/// face primitives, non-physical fallback, floors, wave-speed bound,
/// Rusanov assembly, optional viscous augmentation — with every loop
/// unit-stride over the row.  This is the gathered-line sweep's per-face
/// arithmetic verbatim (see flux_sweep), re-indexed from line offsets to
/// row columns: `sc[c][t][i]` is variable c at the t-th stencil cell of
/// face i, `lcp`/`rcp` are the (ir, u, v, w, p) rows of the face's left and
/// right cells, and `pl_mom`/`pl_ir` point at the left cell so `+ P.st`
/// reaches the right cell for the raw viscous taps.  Identical inputs flow
/// through identical expressions, so the two kernels agree bitwise — the
/// dispatch-equivalence and fused-pipeline tests pin this.
template <int Dir, class C, class S, class ReconOp>
inline void compute_face_row(const ReconOp& recon, std::size_t fn,
                             const C* (*sc)[6], const C* const* lcp,
                             const C* const* rcp, const S* const* pl_mom,
                             const S* pl_ir, const FaceRowParams<C>& P,
                             C* __restrict lf, C* __restrict rf,
                             C* __restrict lp, C* __restrict rp,
                             C* __restrict smax_buf,
                             unsigned char* __restrict fallback,
                             C* __restrict flux) {
  constexpr int axA = (Dir == 0) ? 1 : 0;
  constexpr int axB = (Dir == 2) ? 1 : 2;
  const C gam = P.gam, gm1 = P.gm1;

  // Reconstruction, one tight loop per variable.
  for (int c = 0; c <= kNumVars; ++c) {
    const C* s0 = sc[c][0];
    const C* s1 = sc[c][1];
    const C* s2 = sc[c][2];
    const C* s3 = sc[c][3];
    const C* s4 = sc[c][4];
    const C* s5 = sc[c][5];
    C* ql = lf + static_cast<std::size_t>(c) * fn;
    C* qr = rf + static_cast<std::size_t>(c) * fn;
    for (std::size_t i = 0; i < fn; ++i) {
      const auto f = recon.vals(s0[i], s1[i], s2[i], s3[i], s4[i], s5[i]);
      ql[i] = f.left;
      qr[i] = f.right;
    }
  }

  // Face primitives: one division per side per face.  The slices are
  // passed as individual restrict parameters — slices derived from one
  // restrict base still trip the vectorizer's alias-versioning limit.
  prim_face_row(lf, fn, gm1, lp);
  prim_face_row(rf, fn, gm1, rp);

  // Non-physical fallback mask + piecewise-constant patch.
  unsigned any_fallback = 0;
  for (std::size_t i = 0; i < fn; ++i) {
    const C rl = lf[i], rr = rf[i];
    const C kel = lf[fn + i] * lf[fn + i] + lf[2 * fn + i] * lf[2 * fn + i] +
                  lf[3 * fn + i] * lf[3 * fn + i];
    const C ker = rf[fn + i] * rf[fn + i] + rf[2 * fn + i] * rf[2 * fn + i] +
                  rf[3 * fn + i] * rf[3 * fn + i];
    // Bitwise-| of the four predicates: no short-circuit control flow, so
    // the mask pass if-converts and vectorizes (operands are pure; the
    // mask values are identical to the short-circuit form).
    const bool bad =
        static_cast<unsigned>(!(rl > C(0))) |
        static_cast<unsigned>(!(C(2) * rl * lf[4 * fn + i] - kel > C(0))) |
        static_cast<unsigned>(!(rr > C(0))) |
        static_cast<unsigned>(!(C(2) * rr * rf[4 * fn + i] - ker > C(0)));
    fallback[i] = static_cast<unsigned char>(bad);
    any_fallback |= static_cast<unsigned>(bad);
  }
  if (any_fallback) {
    for (std::size_t i = 0; i < fn; ++i) {
      if (!fallback[i]) continue;
      for (int c = 0; c <= kNumVars; ++c) {
        lf[static_cast<std::size_t>(c) * fn + i] = sc[c][2][i];
        rf[static_cast<std::size_t>(c) * fn + i] = sc[c][3][i];
      }
      lp[i] = lf[i];
      lp[fn + i] = lcp[0][i];
      lp[2 * fn + i] = lcp[1][i];
      lp[3 * fn + i] = lcp[2][i];
      lp[4 * fn + i] = lcp[3][i];
      lp[5 * fn + i] = lcp[4][i];
      rp[i] = rf[i];
      rp[fn + i] = rcp[0][i];
      rp[2 * fn + i] = rcp[1][i];
      rp[3 * fn + i] = rcp[2][i];
      rp[4 * fn + i] = rcp[3][i];
      rp[5 * fn + i] = rcp[4][i];
    }
  }

  // Optional configured floors.
  if (P.rho_floor > C(0)) {
    for (std::size_t i = 0; i < fn; ++i) {
      lp[i] = std::max(lp[i], P.rho_floor);
      rp[i] = std::max(rp[i], P.rho_floor);
    }
  }
  if (P.p_floor > C(0)) {
    for (std::size_t i = 0; i < fn; ++i) {
      lp[5 * fn + i] = std::max(lp[5 * fn + i], P.p_floor);
      rp[5 * fn + i] = std::max(rp[5 * fn + i], P.p_floor);
    }
  }

  // Rusanov flux with the Sigma-augmented pressure.
  {
    constexpr std::size_t kUn = 2 + static_cast<std::size_t>(Dir);
    const C* sfl = lf + static_cast<std::size_t>(kNumVars) * fn;
    const C* sfr = rf + static_cast<std::size_t>(kNumVars) * fn;
    for (std::size_t i = 0; i < fn; ++i) {
      const C unl = lp[kUn * fn + i];
      const C unr = rp[kUn * fn + i];
      const C cl =
          std::sqrt(gam * std::max(lp[5 * fn + i] + sfl[i], C(0)) *
                    lp[fn + i]);
      const C cr =
          std::sqrt(gam * std::max(rp[5 * fn + i] + sfr[i], C(0)) *
                    rp[fn + i]);
      smax_buf[i] = std::max(std::abs(unl) + cl, std::abs(unr) + cr);
    }
    for (std::size_t i = 0; i < fn; ++i) {
      const C rl = lp[i], rr = rp[i];
      const C ul = lp[2 * fn + i], ur = rp[2 * fn + i];
      const C vl = lp[3 * fn + i], vr = rp[3 * fn + i];
      const C wwl = lp[4 * fn + i], wwr = rp[4 * fn + i];
      const C unl = lp[kUn * fn + i], unr = rp[kUn * fn + i];
      const C el = lf[4 * fn + i], er = rf[4 * fn + i];
      const C ptl = lp[5 * fn + i] + sfl[i];
      const C ptr = rp[5 * fn + i] + sfr[i];
      const C sm = smax_buf[i];

      const C qml[3] = {rl * ul, rl * vl, rl * wwl};
      const C qmr[3] = {rr * ur, rr * vr, rr * wwr};

      auto blend = [&](C fl_c, C fr_c, C ql_c, C qr_c) {
        return C(0.5) * (fl_c + fr_c) - C(0.5) * sm * (qr_c - ql_c);
      };
      flux[i] = blend(rl * unl, rr * unr, rl, rr);
      C fml[3] = {qml[0] * unl, qml[1] * unl, qml[2] * unl};
      C fmr[3] = {qmr[0] * unr, qmr[1] * unr, qmr[2] * unr};
      fml[Dir] += ptl;
      fmr[Dir] += ptr;
      flux[fn + i] = blend(fml[0], fmr[0], qml[0], qmr[0]);
      flux[2 * fn + i] = blend(fml[1], fmr[1], qml[1], qmr[1]);
      flux[3 * fn + i] = blend(fml[2], fmr[2], qml[2], qmr[2]);
      flux[4 * fn + i] = blend((el + ptl) * unl, (er + ptr) * unr, el, er);
    }
  }

  if (P.viscous) {
    for (std::size_t i = 0; i < fn; ++i) {
      fv::VelGrad<C> g;
      C uf[3];
      for (int a = 0; a < 3; ++a) {
        uf[a] = C(0.5) * (lcp[1 + a][i] + rcp[1 + a][i]);
        g.g[a][Dir] = (rcp[1 + a][i] - lcp[1 + a][i]) * P.inv_d;
        const S* pm = pl_mom[a];
        auto dv = [&](std::ptrdiff_t o, std::ptrdiff_t stT) -> C {
          return static_cast<C>(pm[o + stT]) *
                     static_cast<C>(pl_ir[o + stT]) -
                 static_cast<C>(pm[o - stT]) *
                     static_cast<C>(pl_ir[o - stT]);
        };
        const auto oi = static_cast<std::ptrdiff_t>(i);
        g.g[a][axA] =
            C(0.5) * (dv(oi, P.stA) + dv(oi + P.st, P.stA)) * P.inv2dA;
        g.g[a][axB] =
            C(0.5) * (dv(oi, P.stB) + dv(oi + P.st, P.stB)) * P.inv2dB;
      }
      const auto fv_ = fv::viscous_flux(g, uf, P.mu, P.zeta, Dir);
      for (int c = 0; c < kNumVars; ++c)
        flux[static_cast<std::size_t>(c) * fn + i] += fv_[c];
    }
  }
}

}  // namespace

template <class Policy>
IgrSolver3D<Policy>::IgrSolver3D(const mesh::Grid& grid,
                                 const common::SolverConfig& cfg,
                                 fv::BcSpec bc, fv::ReconScheme recon)
    : grid_(grid),
      cfg_(cfg),
      bc_(std::move(bc)),
      recon_(recon),
      eos_(cfg.gamma),
      alpha_(cfg.alpha_factor * grid.min_dx() * grid.min_dx()),
      q_(grid.nx(), grid.ny(), grid.nz(), 3),
      qstage_(grid.nx(), grid.ny(), grid.nz(), 3),
      rhs_(grid.nx(), grid.ny(), grid.nz(), 3),
      sigma_(grid.nx(), grid.ny(), grid.nz(), 3),
      sigma_src_(grid.nx(), grid.ny(), grid.nz(), 3),
      inv_rho_(grid.nx(), grid.ny(), grid.nz(), 3) {
  cfg_.validate();
  profile_.enable(cfg_.phase_timing);
  sigma_bc_ = sigma_bc_from(bc_);
  if (!cfg_.sigma_gauss_seidel) {
    sigma_scratch_ =
        common::Field3<S>(grid.nx(), grid.ny(), grid.nz(), 3);
  }
  grind_.set_cells_per_step(grid.cells());
}

template <class Policy>
void IgrSolver3D<Policy>::init(const PrimFn& prim) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const auto w = prim(grid_.x(i), grid_.y(j), grid_.z(k));
        const auto qc = eos_.to_cons(w);
        for (int c = 0; c < kNumVars; ++c)
          q_[c](i, j, k) = static_cast<S>(qc[c]);
      }
    }
  }
  sigma_.fill(S{});
  time_ = 0.0;
  next_dt_valid_ = false;
}

template <class Policy>
void IgrSolver3D<Policy>::refresh_inv_rho_planes(common::StateField3<S>& q,
                                                 int k0, int k1) {
  const int nx = grid_.nx(), ny = grid_.ny();
  const int ng = q.ng();
  const std::size_t row_len = static_cast<std::size_t>(nx) + 2 * ng;
  const common::ExecSpace exec = cfg_.exec();
  if constexpr (common::converts_storage<Policy>) {
    if (cfg_.batch_half_conversion) {
      // Whole ghosted rows through the batched conversion lanes: one batch
      // load, a vector reciprocal, one batch store — same per-element values
      // as the scalar path below.
      exec.run_team([&](const common::ExecSpace::Team& t) {
        std::vector<C> row(row_len);
        long cb, ce;
        t.chunk(k1 - k0, cb, ce);
        for (long kk = cb; kk < ce; ++kk) {
          const int k = k0 + static_cast<int>(kk);
          for (int j = -ng; j < ny + ng; ++j) {
            common::load_line<Policy>(&q[kRho](-ng, j, k), row.data(),
                                      row_len);
            for (std::size_t i = 0; i < row_len; ++i) row[i] = C(1) / row[i];
            common::store_line<Policy>(row.data(), &inv_rho_(-ng, j, k),
                                       row_len);
          }
        }
      });
      return;
    }
  }
  exec.for_each(k1 - k0, [&](long kk) {
    const int k = k0 + static_cast<int>(kk);
    for (int j = -ng; j < ny + ng; ++j) {
      const S* pr = &q[kRho](-ng, j, k);
      S* pir = &inv_rho_(-ng, j, k);
      for (int i = 0; i < nx + 2 * ng; ++i) {
        pir[i] = static_cast<S>(C(1) / static_cast<C>(pr[i]));
      }
    }
  });
}

template <class Policy>
void IgrSolver3D<Policy>::compute_sigma_source_planes(
    common::StateField3<S>& q, int k0, int k1) {
  const int nx = grid_.nx(), ny = grid_.ny();
  const C inv2dx = C(0.5) / static_cast<C>(grid_.dx());
  const C inv2dy = C(0.5) / static_cast<C>(grid_.dy());
  const C inv2dz = C(0.5) / static_cast<C>(grid_.dz());
  const C al = static_cast<C>(alpha_);

  const std::ptrdiff_t sy = inv_rho_.stride(1);
  const std::ptrdiff_t sz = inv_rho_.stride(2);

  if constexpr (common::converts_storage<Policy>) {
    if (cfg_.batch_half_conversion) {
      // Batched form with a rolling per-plane row cache: each thread
      // streams a contiguous plane range and keeps the velocity rows
      // u_a = m_a * (1/rho) of planes k-1, k, k+1 in a 3-plane ring, so
      // every momentum/inv_rho row is converted once per plane visit
      // instead of once per stencil position (the old slab form converted
      // each row up to five times across adjacent (j,k) iterations).  Rows
      // span i in [-1, nx] and j in [-1, ny] so both the in-row i∓1 taps
      // and the j∓1 neighbor rows are in-ring; the products are the exact
      // expressions of the per-position slab, so values are bitwise
      // unchanged.
      const std::size_t row_len = static_cast<std::size_t>(nx) + 2;
      const std::size_t rows_per_plane = static_cast<std::size_t>(ny) + 2;
      const std::size_t plane_elems = 3 * rows_per_plane * row_len;
      const common::ExecSpace exec = cfg_.exec();
      exec.run_team([&](const common::ExecSpace::Team& t) {
        std::vector<C> ring(3 * plane_elems);
        std::vector<C> ir_row(row_len), mom_row(row_len);
        std::vector<C> src_row(static_cast<std::size_t>(nx));
        // Velocity row of component `a` at (j, plane k); ring slot cycles
        // with k (k >= -1 here, so k+1 is a valid modulus argument).
        auto vrow = [&](int k, int j, int a) -> C* {
          return ring.data() +
                 static_cast<std::size_t>((k + 1) % 3) * plane_elems +
                 (static_cast<std::size_t>(j + 1) * 3 +
                  static_cast<std::size_t>(a)) *
                     row_len;
        };
        auto fill_plane = [&](int k) {
          for (int j = -1; j <= ny; ++j) {
            common::load_line<Policy>(&inv_rho_(-1, j, k), ir_row.data(),
                                      row_len);
            for (int a = 0; a < 3; ++a) {
              common::load_line<Policy>(&q[kMomX + a](-1, j, k),
                                        mom_row.data(), row_len);
              C* v = vrow(k, j, a);
              for (std::size_t i = 0; i < row_len; ++i)
                v[i] = mom_row[i] * ir_row[i];
            }
          }
        };
        // Contiguous per-member plane chunks (the ring needs an ascending
        // serial walk); remainder planes go to the low tids.
        long cb, ce;
        t.chunk(k1 - k0, cb, ce);
        const int c0 = k0 + static_cast<int>(cb);
        const int c1 = k0 + static_cast<int>(ce);
        if (c0 < c1) {
          fill_plane(c0 - 1);
          fill_plane(c0);
          for (int k = c0; k < c1; ++k) {
            fill_plane(k + 1);
            for (int j = 0; j < ny; ++j) {
              for (int i = 0; i < nx; ++i) {
                const std::size_t o = static_cast<std::size_t>(i) + 1;
                fv::VelGrad<C> g;
                for (int a = 0; a < 3; ++a) {
                  const C* vc = vrow(k, j, a);
                  const C* vjm = vrow(k, j - 1, a);
                  const C* vjp = vrow(k, j + 1, a);
                  const C* vkm = vrow(k - 1, j, a);
                  const C* vkp = vrow(k + 1, j, a);
                  g.g[a][0] = (vc[o + 1] - vc[o - 1]) * inv2dx;
                  g.g[a][1] = (vjp[o] - vjm[o]) * inv2dy;
                  g.g[a][2] = (vkp[o] - vkm[o]) * inv2dz;
                }
                const C d = g.div();
                src_row[static_cast<std::size_t>(i)] =
                    al * (g.tr_sq() + d * d);
              }
              common::store_line<Policy>(src_row.data(),
                                         sigma_src_.row(j, k),
                                         static_cast<std::size_t>(nx));
            }
          }
        }
      });
      return;
    }
  }

  // Stencil taps hoisted into per-row stream pointers (the indexed-offset
  // form defeats the vectorizer); same products, same bits.
  cfg_.exec().for_each(k1 - k0, [&](long kk) {
    const int k = k0 + static_cast<int>(kk);
    for (int j = 0; j < ny; ++j) {
      const S* pir = &inv_rho_(0, j, k);
      const S* mx_ = &q[kMomX](0, j, k);
      const S* my_ = &q[kMomY](0, j, k);
      const S* mz_ = &q[kMomZ](0, j, k);
      S* __restrict psrc = &sigma_src_(0, j, k);
      const S* ir_jm = pir - sy;
      const S* ir_jp = pir + sy;
      const S* ir_km = pir - sz;
      const S* ir_kp = pir + sz;
      // The component loop is unrolled with named stream pointers — a base
      // pointer re-loaded from an array per iteration defeats the
      // vectorizer's data-reference analysis.  Straight unroll of the
      // a = 0..2 loop; expressions (and bits) unchanged.
      auto grad = [&](const S* m, int i, C* g3) {
        g3[0] = (static_cast<C>(m[i + 1]) * static_cast<C>(pir[i + 1]) -
                 static_cast<C>(m[i - 1]) * static_cast<C>(pir[i - 1])) *
                inv2dx;
        g3[1] = (static_cast<C>(m[i + sy]) * static_cast<C>(ir_jp[i]) -
                 static_cast<C>(m[i - sy]) * static_cast<C>(ir_jm[i])) *
                inv2dy;
        g3[2] = (static_cast<C>(m[i + sz]) * static_cast<C>(ir_kp[i]) -
                 static_cast<C>(m[i - sz]) * static_cast<C>(ir_km[i])) *
                inv2dz;
      };
      for (int i = 0; i < nx; ++i) {
        fv::VelGrad<C> g;
        grad(mx_, i, g.g[0]);
        grad(my_, i, g.g[1]);
        grad(mz_, i, g.g[2]);
        const C d = g.div();
        psrc[i] = static_cast<S>(al * (g.tr_sq() + d * d));
      }
    }
  });
}

template <class Policy>
void IgrSolver3D<Policy>::compute_sigma_source(common::StateField3<S>& q) {
  // Interleave the reciprocal-density refresh with the source build in
  // k-chunks: the source consumes planes the refresh just wrote while they
  // are still cache-resident.  Both kernels are pure per-plane maps of the
  // same inputs, so chunking cannot change a bit.  The trailing refresh
  // covers the ghost planes the relaxation sweeps and the viscous flux
  // taps read.
  const int nz = grid_.nz();
  const int ng = q.ng();
  const int chunk = std::max(flux_block(), 4);
  int ir_hi = -ng;  // first ghosted plane not yet refreshed
  auto ensure_ir = [&](int upto) {  // exclusive
    upto = std::min(upto, nz + ng);
    if (upto > ir_hi) {
      refresh_inv_rho_planes(q, ir_hi, upto);
      ir_hi = upto;
    }
  };
  for (int c0 = 0; c0 < nz; c0 += chunk) {
    const int c1 = std::min(c0 + chunk, nz);
    ensure_ir(c1 + 1);
    compute_sigma_source_planes(q, c0, c1);
  }
  ensure_ir(nz + ng);
}

template <class Policy>
void IgrSolver3D<Policy>::build_sigma_source_interior(
    common::StateField3<S>& q) {
  const int nz = grid_.nz();
  refresh_inv_rho_planes(q, 0, nz);
  if (nz > 2) compute_sigma_source_planes(q, 1, nz - 1);
}

template <class Policy>
void IgrSolver3D<Policy>::build_sigma_source_boundary(
    common::StateField3<S>& q) {
  const int nz = grid_.nz();
  const int ng = q.ng();
  refresh_inv_rho_planes(q, -ng, 0);
  refresh_inv_rho_planes(q, nz, nz + ng);
  compute_sigma_source_planes(q, 0, std::min(1, nz));
  if (nz > 1) compute_sigma_source_planes(q, nz - 1, nz);
}

template <class Policy>
template <int Dir, class ReconOp>
void IgrSolver3D<Policy>::flux_sweep(common::StateField3<S>& q,
                                     common::StateField3<S>& rhs,
                                     ReconOp recon, bool overwrite,
                                     const CellRegion& reg) {
  constexpr int dir = Dir;
  if (reg.empty()) return;
  // The line segment runs along `dir` over the region's cells; everything
  // below indexes relative to the segment start, so a restricted region
  // performs the exact per-cell arithmetic of the full sweep.
  const int s_lo = reg.lo[static_cast<std::size_t>(dir)];
  const int n_dir = reg.hi[static_cast<std::size_t>(dir)] - s_lo;
  const C d_dir = static_cast<C>((dir == 0)   ? grid_.dx()
                                 : (dir == 1) ? grid_.dy()
                                              : grid_.dz());
  const C inv_d = C(1) / d_dir;
  const C gam = static_cast<C>(cfg_.gamma);
  const C gm1 = gam - C(1);
  const C mu = static_cast<C>(cfg_.mu);
  const C zeta = static_cast<C>(cfg_.zeta);
  const bool viscous = (cfg_.mu > 0.0 || cfg_.zeta > 0.0);
  const C rho_floor = static_cast<C>(cfg_.density_floor);
  const C p_floor = static_cast<C>(cfg_.pressure_floor);
  // Batched half<->float lanes for the line gather/scatter (FP16/32 only;
  // dead for identity-storage policies).
  const bool batch = cfg_.batch_half_conversion;

  // The two tangential axes of this sweep (the line runs along `dir`).
  const int axA = (dir == 0) ? 1 : 0;
  const int axB = (dir == 2) ? 1 : 2;
  const int a_lo = reg.lo[static_cast<std::size_t>(axA)];
  const int a_hi = reg.hi[static_cast<std::size_t>(axA)];
  const int b_lo = reg.lo[static_cast<std::size_t>(axB)];
  const int b_hi = reg.hi[static_cast<std::size_t>(axB)];
  const std::array<C, 3> dd{static_cast<C>(grid_.dx()),
                            static_cast<C>(grid_.dy()),
                            static_cast<C>(grid_.dz())};
  const C inv2dA = C(0.5) / dd[static_cast<std::size_t>(axA)];
  const C inv2dB = C(0.5) / dd[static_cast<std::size_t>(axB)];

  // Map (tangential a, tangential b, line coordinate s) -> (i,j,k).
  auto cell = [&](int line_a, int line_b, int s) -> std::array<int, 3> {
    switch (dir) {
      case 0: return {s, line_a, line_b};
      case 1: return {line_a, s, line_b};
      default: return {line_a, line_b, s};
    }
  };

  // All fields share one block shape, hence one set of strides.
  const std::ptrdiff_t st = q[0].stride(dir);
  const std::ptrdiff_t stA = q[0].stride(axA);
  const std::ptrdiff_t stB = q[0].stride(axB);

  const common::ExecSpace exec = cfg_.exec();
  // Flattened (lb, la) line index space, statically chunked per member —
  // the collapse(2) replacement; every line writes a disjoint RHS segment.
  const long n_lines =
      static_cast<long>(b_hi - b_lo) * static_cast<long>(a_hi - a_lo);
  const long na = a_hi - a_lo;
  exec.run_team([&](const common::ExecSpace::Team& team) {
    // Per-member line buffers — the CPU analogue of the paper's
    // thread-local temporaries (§5.4).  Each line of cells (with ghosts) is
    // gathered once into contiguous storage: the 5 conservative variables
    // and Sigma, then the primitive line (1/rho, u, v, w, p) computed once
    // per cell with a single division.  Reconstruction and the Riemann,
    // viscous, and fallback paths then walk these with unit stride,
    // multiplication-only.
    const std::size_t line_len = static_cast<std::size_t>(n_dir) + 6;
    const std::size_t fn = static_cast<std::size_t>(n_dir) + 1;
    std::vector<C> lines((kNumVars + 1) * line_len);
    std::vector<C> prims(5 * line_len);   // ir, u, v, w, p
    std::vector<C> faces(2 * (kNumVars + 1) * fn);  // recon left/right states
    std::vector<C> fprims(2 * 6 * fn);  // face prims: rho,ir,u,v,w,p (L/R)
    std::vector<C> smax_buf(fn);
    std::vector<unsigned char> fallback(fn);
    std::vector<C> flux(kNumVars * fn);   // [c*fn + fi]
    std::vector<C> out_row(static_cast<std::size_t>(n_dir));  // rhs scatter

    C* const ir_l = prims.data();
    C* const u_l = prims.data() + line_len;
    C* const v_l = prims.data() + 2 * line_len;
    C* const w_l = prims.data() + 3 * line_len;
    C* const p_l = prims.data() + 4 * line_len;
    C* const lf = faces.data();                       // [c*fn + fi] left
    C* const rf = faces.data() + (kNumVars + 1) * fn; // [c*fn + fi] right
    C* const lp = fprims.data();                      // [c*fn + fi] left
    C* const rp = fprims.data() + 6 * fn;             // [c*fn + fi] right

    long lb0, lb1;
    team.chunk(n_lines, lb0, lb1);
    for (long lidx = lb0; lidx < lb1; ++lidx) {
      {
        const int lb = b_lo + static_cast<int>(lidx / na);
        const int la = a_lo + static_cast<int>(lidx % na);
        const auto c0 = cell(la, lb, s_lo);
        const std::size_t base = q[0].idx(c0[0], c0[1], c0[2]);
        for (int c = 0; c <= kNumVars; ++c) {
          const S* p = ((c < kNumVars) ? q[c].data() : sigma_.data()) + base;
          C* line = lines.data() + static_cast<std::size_t>(c) * line_len;
          if constexpr (common::converts_storage<Policy>) {
            if (batch) {
              // Whole-line conversion through the batched lanes (unit-stride
              // for the x sweep; gathered for y/z) — bitwise-identical to
              // the per-element loop below.
              common::load_line_strided<Policy>(p - 3 * st, st, line,
                                                line_len);
              continue;
            }
          }
          for (int s = -3; s < n_dir + 3; ++s)
            line[s + 3] = static_cast<C>(p[s * st]);
        }

        // Primitive line: one division per cell; everything downstream of
        // it multiplies (the register-resident discipline of §5.2).
        {
          const C* rho = lines.data();
          const C* mx = lines.data() + 1 * line_len;
          const C* my = lines.data() + 2 * line_len;
          const C* mz = lines.data() + 3 * line_len;
          const C* en = lines.data() + 4 * line_len;
          for (std::size_t s = 0; s < line_len; ++s) {
            const C ir = C(1) / rho[s];
            ir_l[s] = ir;
            u_l[s] = mx[s] * ir;
            v_l[s] = my[s] * ir;
            w_l[s] = mz[s] * ir;
            p_l[s] = gm1 * (en[s] - C(0.5) * (mx[s] * u_l[s] +
                                              my[s] * v_l[s] +
                                              mz[s] * w_l[s]));
          }
        }

        // Reconstruction, one tight vectorizable loop per variable: the
        // scheme is a compile-time constant of this instantiation, so there
        // is no per-face dispatch left to block SIMD.
        for (int c = 0; c <= kNumVars; ++c) {
          const C* line = lines.data() + static_cast<std::size_t>(c) * line_len;
          C* ql = lf + static_cast<std::size_t>(c) * fn;
          C* qr = rf + static_cast<std::size_t>(c) * fn;
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const auto f = recon(line + fi);
            ql[fi] = f.left;
            qr[fi] = f.right;
          }
        }

        // --- Face primitives: one vector division per side per face; the
        // rest of the conversion is multiplication-only and vectorizes.
        // Shared with the row-streaming kernel: one home for the face-prim
        // arithmetic keeps the two kernels' bitwise contract a property of
        // the code, not of parallel edits.
        prim_face_row(lf, fn, gm1, lp);
        prim_face_row(rf, fn, gm1, rp);

        // --- Nonphysical-fallback mask.  High-order linear reconstruction
        // can overshoot into a non-physical state at an under-resolved
        // start-up discontinuity, before Sigma has developed to smooth it.
        // The internal-energy positivity predicate is written
        // multiplication-only so the mask pass vectorizes; the (rare)
        // masked faces are then patched scalar with piecewise-constant
        // (cell-average) face states — a conservative, local safeguard that
        // leaves smooth regions (and the developed IGR solution) untouched.
        unsigned any_fallback = 0;
        for (std::size_t fi = 0; fi < fn; ++fi) {
          const C rl = lf[fi], rr = rf[fi];
          const C kel = lf[fn + fi] * lf[fn + fi] +
                        lf[2 * fn + fi] * lf[2 * fn + fi] +
                        lf[3 * fn + fi] * lf[3 * fn + fi];
          const C ker = rf[fn + fi] * rf[fn + fi] +
                        rf[2 * fn + fi] * rf[2 * fn + fi] +
                        rf[3 * fn + fi] * rf[3 * fn + fi];
          const bool bad =
              !(rl > C(0)) || !(C(2) * rl * lf[4 * fn + fi] - kel > C(0)) ||
              !(rr > C(0)) || !(C(2) * rr * rf[4 * fn + fi] - ker > C(0));
          fallback[fi] = static_cast<unsigned char>(bad);
          any_fallback |= static_cast<unsigned>(bad);
        }
        if (any_fallback) {
          for (std::size_t fi = 0; fi < fn; ++fi) {
            if (!fallback[fi]) continue;
            const std::size_t il = fi + 2, ir = fi + 3;
            for (int c = 0; c <= kNumVars; ++c) {
              const C* sc =
                  lines.data() + static_cast<std::size_t>(c) * line_len;
              lf[static_cast<std::size_t>(c) * fn + fi] = sc[il];
              rf[static_cast<std::size_t>(c) * fn + fi] = sc[ir];
            }
            // Cell-center primitives come off the cached line — no
            // division.
            lp[fi] = lf[fi];
            lp[fn + fi] = ir_l[il];
            lp[2 * fn + fi] = u_l[il];
            lp[3 * fn + fi] = v_l[il];
            lp[4 * fn + fi] = w_l[il];
            lp[5 * fn + fi] = p_l[il];
            rp[fi] = rf[fi];
            rp[fn + fi] = ir_l[ir];
            rp[2 * fn + fi] = u_l[ir];
            rp[3 * fn + fi] = v_l[ir];
            rp[4 * fn + fi] = w_l[ir];
            rp[5 * fn + fi] = p_l[ir];
          }
        }

        // --- Optional configured floors (high-Mach jet start-up
        // robustness).  A triggered density floor leaves the cached
        // reciprocal as an overestimate (1/rho >= 1/rho_floor), which only
        // raises the wave-speed bound — the robust direction.
        if (rho_floor > C(0)) {
          for (std::size_t fi = 0; fi < fn; ++fi) {
            lp[fi] = std::max(lp[fi], rho_floor);
            rp[fi] = std::max(rp[fi], rho_floor);
          }
        }
        if (p_floor > C(0)) {
          for (std::size_t fi = 0; fi < fn; ++fi) {
            lp[5 * fn + fi] = std::max(lp[5 * fn + fi], p_floor);
            rp[5 * fn + fi] = std::max(rp[5 * fn + fi], p_floor);
          }
        }

        // --- Rusanov (local Lax–Friedrichs) flux, assembled per component
        // over all faces of the line: the wave-speed bound (one vector
        // sqrt per side) and both physical fluxes vectorize; Sigma
        // augments the pressure in both (eqs. 6-8; the slight wave-speed
        // overestimate only adds robustness).
        {
          constexpr std::size_t kUn = 2 + static_cast<std::size_t>(Dir);
          const C* sfl = lf + static_cast<std::size_t>(kNumVars) * fn;
          const C* sfr = rf + static_cast<std::size_t>(kNumVars) * fn;
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const C unl = lp[kUn * fn + fi];
            const C unr = rp[kUn * fn + fi];
            const C cl = std::sqrt(gam * std::max(lp[5 * fn + fi] + sfl[fi],
                                                  C(0)) *
                                   lp[fn + fi]);
            const C cr = std::sqrt(gam * std::max(rp[5 * fn + fi] + sfr[fi],
                                                  C(0)) *
                                   rp[fn + fi]);
            smax_buf[fi] = std::max(std::abs(unl) + cl, std::abs(unr) + cr);
          }
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const C rl = lp[fi], rr = rp[fi];
            const C ul = lp[2 * fn + fi], ur = rp[2 * fn + fi];
            const C vl = lp[3 * fn + fi], vr = rp[3 * fn + fi];
            const C wwl = lp[4 * fn + fi], wwr = rp[4 * fn + fi];
            const C unl = lp[kUn * fn + fi], unr = rp[kUn * fn + fi];
            const C el = lf[4 * fn + fi], er = rf[4 * fn + fi];
            const C ptl = lp[5 * fn + fi] + sfl[fi];
            const C ptr = rp[5 * fn + fi] + sfr[fi];
            const C sm = smax_buf[fi];

            // Conservative states rebuilt from the (floored) primitives,
            // exactly as the scalar rusanov_flux does.
            const C qml[3] = {rl * ul, rl * vl, rl * wwl};
            const C qmr[3] = {rr * ur, rr * vr, rr * wwr};

            auto blend = [&](C fl_c, C fr_c, C ql_c, C qr_c) {
              return C(0.5) * (fl_c + fr_c) - C(0.5) * sm * (qr_c - ql_c);
            };
            flux[fi] = blend(rl * unl, rr * unr, rl, rr);
            C fml[3] = {qml[0] * unl, qml[1] * unl, qml[2] * unl};
            C fmr[3] = {qmr[0] * unr, qmr[1] * unr, qmr[2] * unr};
            fml[Dir] += ptl;
            fmr[Dir] += ptr;
            flux[fn + fi] = blend(fml[0], fmr[0], qml[0], qmr[0]);
            flux[2 * fn + fi] = blend(fml[1], fmr[1], qml[1], qmr[1]);
            flux[3 * fn + fi] = blend(fml[2], fmr[2], qml[2], qmr[2]);
            flux[4 * fn + fi] =
                blend((el + ptl) * unl, (er + ptr) * unr, el, er);
          }
        }

        if (viscous) {
          // Velocities along the line come from the cached primitive line;
          // transverse derivatives pair the momentum fields with the
          // persistent reciprocal-density field — every term is
          // multiplication-only.
          const S* pmom[3] = {q[kMomX].data() + base, q[kMomY].data() + base,
                              q[kMomZ].data() + base};
          const S* pir = inv_rho_.data() + inv_rho_.idx(c0[0], c0[1], c0[2]);
          for (std::size_t fi = 0; fi < fn; ++fi) {
            const std::size_t il = fi + 2, ir = fi + 3;
            const std::ptrdiff_t ol =
                (static_cast<std::ptrdiff_t>(fi) - 1) * st;
            const std::ptrdiff_t orr = ol + st;
            fv::VelGrad<C> g;
            C uf[3];
            const C* uvw[3] = {u_l, v_l, w_l};
            for (int a = 0; a < 3; ++a) {
              uf[a] = C(0.5) * (uvw[a][il] + uvw[a][ir]);
              g.g[a][dir] = (uvw[a][ir] - uvw[a][il]) * inv_d;
              const S* pm = pmom[a];
              auto dv = [&](std::ptrdiff_t o, std::ptrdiff_t stT) -> C {
                return static_cast<C>(pm[o + stT]) *
                           static_cast<C>(pir[o + stT]) -
                       static_cast<C>(pm[o - stT]) *
                           static_cast<C>(pir[o - stT]);
              };
              g.g[a][axA] = C(0.5) * (dv(ol, stA) + dv(orr, stA)) * inv2dA;
              g.g[a][axB] = C(0.5) * (dv(ol, stB) + dv(orr, stB)) * inv2dB;
            }
            const auto fv_ = fv::viscous_flux(g, uf, mu, zeta, dir);
            for (int c = 0; c < kNumVars; ++c)
              flux[static_cast<std::size_t>(c) * fn + fi] += fv_[c];
          }
        }

        for (int c = 0; c < kNumVars; ++c) {
          S* pr = rhs[c].data() + base;
          const C* fc = flux.data() + static_cast<std::size_t>(c) * fn;
          if constexpr (common::converts_storage<Policy>) {
            if (batch) {
              // Accumulate in a compute-precision scratch line and convert
              // the whole line once, instead of a conversion round-trip per
              // element — same element values as the scalar loops below.
              C* row = out_row.data();
              const std::size_t nd = static_cast<std::size_t>(n_dir);
              if (overwrite) {
                for (std::size_t s = 0; s < nd; ++s)
                  row[s] = (fc[s] - fc[s + 1]) * inv_d;
              } else {
                common::load_line_strided<Policy>(pr, st, row, nd);
                for (std::size_t s = 0; s < nd; ++s)
                  row[s] += (fc[s] - fc[s + 1]) * inv_d;
              }
              common::store_line_strided<Policy>(row, pr, st, nd);
              continue;
            }
          }
          if (overwrite) {
            // dir==0: the zero-fill is folded into this overwrite, and the
            // store is unit-stride (st == 1), so it vectorizes.
            for (int s = 0; s < n_dir; ++s) {
              pr[s * st] = static_cast<S>((fc[s] - fc[s + 1]) * inv_d);
            }
          } else {
            for (int s = 0; s < n_dir; ++s) {
              const C cur = static_cast<C>(pr[s * st]);
              pr[s * st] = static_cast<S>(cur + (fc[s] - fc[s + 1]) * inv_d);
            }
          }
        }
      }
    }
  });
}

/// Row-streaming form of one dimensional sweep: instead of gathering each
/// sweep-aligned line of cells into contiguous scratch, faces are evaluated
/// a *row* (unit-stride x span) at a time, reading the six stencil rows of
/// each face row directly from the fields (identity-storage policies) or
/// from a rolling ring of batch-converted rows (FP16/32).  All inner loops
/// are unit-stride, the strided y/z gathers and scatters of the line form
/// disappear, and for the transverse sweeps each face row is computed once
/// and reused by the two cell rows it bounds (a rolling flux-row pair).
/// Bitwise-identical to flux_sweep — same stencil values through the same
/// per-face expressions (compute_face_row) and the same per-cell
/// accumulation order — which the dispatch-equivalence tests assert, since
/// the runtime-dispatch reference path keeps the gathered-line kernel.
template <class Policy>
template <int Dir, class ReconOp>
void IgrSolver3D<Policy>::flux_sweep_stream(common::StateField3<S>& q,
                                            common::StateField3<S>& rhs,
                                            ReconOp recon, bool overwrite,
                                            const CellRegion& reg) {
  if (reg.empty()) return;
  constexpr int dir = Dir;
  const int x0 = reg.lo[0];
  const int nxr = reg.hi[0] - reg.lo[0];
  const C gam = static_cast<C>(cfg_.gamma);
  const bool viscous = (cfg_.mu > 0.0 || cfg_.zeta > 0.0);
  const bool batch = cfg_.batch_half_conversion;
  const std::array<C, 3> dd{static_cast<C>(grid_.dx()),
                            static_cast<C>(grid_.dy()),
                            static_cast<C>(grid_.dz())};
  constexpr int axA = (Dir == 0) ? 1 : 0;
  constexpr int axB = (Dir == 2) ? 1 : 2;

  FaceRowParams<C> P;
  P.gam = gam;
  P.gm1 = gam - C(1);
  P.mu = static_cast<C>(cfg_.mu);
  P.zeta = static_cast<C>(cfg_.zeta);
  P.rho_floor = static_cast<C>(cfg_.density_floor);
  P.p_floor = static_cast<C>(cfg_.pressure_floor);
  P.inv_d = C(1) / dd[static_cast<std::size_t>(dir)];
  P.inv2dA = C(0.5) / dd[static_cast<std::size_t>(axA)];
  P.inv2dB = C(0.5) / dd[static_cast<std::size_t>(axB)];
  P.viscous = viscous;
  P.st = q[0].stride(dir);
  P.stA = q[0].stride(axA);
  P.stB = q[0].stride(axB);

  const C gm1 = P.gm1;
  // Cell-primitive rows: ir, u, v, w, p from a row of conservative values —
  // the gathered-line prim pass, re-spanned (one division per cell).
  auto cell_prims = [gm1](const C* rho, const C* mx, const C* my,
                          const C* mz, const C* en, std::size_t n, C* ir,
                          C* u, C* v, C* w, C* p) {
    prim_rows_impl<false>(rho, mx, my, mz, en, n, gm1,
                          static_cast<C*>(nullptr), ir, u, v, w, p);
  };
  // Storage row of variable c (the state components, then Sigma).
  auto field_row = [&](int c, int j, int k) -> const S* {
    return (c < kNumVars) ? &q[c](0, j, k) : &sigma_(0, j, k);
  };

  if constexpr (Dir == 0) {
    const std::size_t fn = static_cast<std::size_t>(nxr) + 1;  // faces/row
    const std::size_t span = fn + 5;        // stencil cells x0-3 .. x0+nxr+2
    const std::size_t pspan = fn + 1;       // prim cells  x0-1 .. x0+nxr
    const int b_lo = reg.lo[2], b_hi = reg.hi[2];
    const int a_lo = reg.lo[1], a_hi = reg.hi[1];
    const common::ExecSpace exec = cfg_.exec();
    const long n_rows =
        static_cast<long>(b_hi - b_lo) * static_cast<long>(a_hi - a_lo);
    const long na = a_hi - a_lo;
    exec.run_team([&](const common::ExecSpace::Team& team) {
      std::vector<C> conv;  // converted stencil rows (FP16/32 only)
      if constexpr (common::converts_storage<Policy>) {
        conv.resize(static_cast<std::size_t>(kNumVars + 1) * span);
      }
      std::vector<C> prows(5 * pspan);
      std::vector<C> faces(2 * (kNumVars + 1) * fn);
      std::vector<C> fprims(2 * 6 * fn);
      std::vector<C> smax_buf(fn);
      std::vector<unsigned char> fallback(fn);
      std::vector<C> flux(kNumVars * fn);
      std::vector<C> out_row(static_cast<std::size_t>(nxr));
      long rb0, rb1;
      team.chunk(n_rows, rb0, rb1);
      for (long ridx = rb0; ridx < rb1; ++ridx) {
        {
          const int k = b_lo + static_cast<int>(ridx / na);
          const int j = a_lo + static_cast<int>(ridx % na);
          const C* sc[kNumVars + 1][6];
          for (int c = 0; c <= kNumVars; ++c) {
            const S* row = field_row(c, j, k) + (x0 - 3);
            const C* crow;
            if constexpr (common::converts_storage<Policy>) {
              C* dst = conv.data() + static_cast<std::size_t>(c) * span;
              if (batch) {
                common::load_line<Policy>(row, dst, span);
              } else {
                for (std::size_t i = 0; i < span; ++i)
                  dst[i] = static_cast<C>(row[i]);
              }
              crow = dst;
            } else {
              crow = row;
            }
            for (int t = 0; t < 6; ++t) sc[c][t] = crow + t;
          }
          // Cell prims over x0-1 .. x0+nxr: index i of sc[c][2] is cell
          // x0-1+i, exactly the prim span.
          C* prow[5];
          for (int p5 = 0; p5 < 5; ++p5)
            prow[p5] = prows.data() + static_cast<std::size_t>(p5) * pspan;
          cell_prims(sc[kRho][2], sc[kMomX][2], sc[kMomY][2], sc[kMomZ][2],
                     sc[kEnergy][2], pspan, prow[0], prow[1], prow[2],
                     prow[3], prow[4]);
          const C* lcp[5] = {prow[0], prow[1], prow[2], prow[3], prow[4]};
          const C* rcp[5] = {prow[0] + 1, prow[1] + 1, prow[2] + 1,
                             prow[3] + 1, prow[4] + 1};
          const S* pl_mom[3] = {&q[kMomX](x0 - 1, j, k),
                                &q[kMomY](x0 - 1, j, k),
                                &q[kMomZ](x0 - 1, j, k)};
          const S* pl_ir = &inv_rho_(x0 - 1, j, k);
          C* lf = faces.data();
          C* rf = faces.data() + (kNumVars + 1) * fn;
          compute_face_row<Dir, C, S>(recon, fn, sc, lcp, rcp, pl_mom, pl_ir,
                                      P, lf, rf, fprims.data(),
                                      fprims.data() + 6 * fn,
                                      smax_buf.data(), fallback.data(),
                                      flux.data());
          for (int c = 0; c < kNumVars; ++c) {
            S* __restrict pr = &rhs[c](x0, j, k);
            const C* __restrict fc =
                flux.data() + static_cast<std::size_t>(c) * fn;
            if constexpr (common::converts_storage<Policy>) {
              if (batch) {
                C* row = out_row.data();
                const std::size_t nd = static_cast<std::size_t>(nxr);
                if (overwrite) {
                  for (std::size_t s = 0; s < nd; ++s)
                    row[s] = (fc[s] - fc[s + 1]) * P.inv_d;
                } else {
                  common::load_line<Policy>(pr, row, nd);
                  for (std::size_t s = 0; s < nd; ++s)
                    row[s] += (fc[s] - fc[s + 1]) * P.inv_d;
                }
                common::store_line<Policy>(row, pr, nd);
                continue;
              }
            }
            if (overwrite) {
              for (int s = 0; s < nxr; ++s)
                pr[s] = static_cast<S>((fc[s] - fc[s + 1]) * P.inv_d);
            } else {
              for (int s = 0; s < nxr; ++s) {
                const C cur = static_cast<C>(pr[s]);
                pr[s] = static_cast<S>(cur + (fc[s] - fc[s + 1]) * P.inv_d);
              }
            }
          }
        }
      }
    });
    return;
  } else {
    // Transverse sweep (Dir = 1 or 2): stream face rows along the sweep
    // axis at fixed outer coordinate, rolling (a) a 6-deep ring of
    // compute-precision stencil rows per variable, (b) the two cell-prim
    // rows bounding the current face row, and (c) the flux-row pair that
    // turns two consecutive face rows into one RHS row.
    const std::size_t fn = static_cast<std::size_t>(nxr);
    const int s_lo = reg.lo[static_cast<std::size_t>(dir)];
    const int s_hi = reg.hi[static_cast<std::size_t>(dir)];
    const int o_lo = (Dir == 1) ? reg.lo[2] : reg.lo[1];
    const int o_hi = (Dir == 1) ? reg.hi[2] : reg.hi[1];
    const common::ExecSpace exec = cfg_.exec();
    exec.run_team([&](const common::ExecSpace::Team& team) {
      std::vector<C> ring;  // [c][slot] rows (FP16/32 only)
      if constexpr (common::converts_storage<Policy>) {
        ring.resize(static_cast<std::size_t>(kNumVars + 1) * 6 * fn);
      }
      std::vector<C> prows(2 * 5 * fn);      // rolling cell-prim rows
      std::vector<C> faces(2 * (kNumVars + 1) * fn);
      std::vector<C> fprims(2 * 6 * fn);
      std::vector<C> smax_buf(fn);
      std::vector<unsigned char> fallback(fn);
      std::vector<C> flux2(2 * kNumVars * fn);  // rolling flux-row pair
      std::vector<C> out_row(fn);
      long ob, oe;
      team.chunk(o_hi - o_lo, ob, oe);
      for (long oo = ob; oo < oe; ++oo) {
        const int oc = o_lo + static_cast<int>(oo);
        const int j_of = (Dir == 1) ? -1 : oc;   // -1 marks "varies"
        const int k_of = (Dir == 1) ? oc : -1;
        // Compute-precision row of variable c at sweep coordinate sc_i.
        auto cons_row = [&](int c, int si) -> const C* {
          const int jj = (Dir == 1) ? si : j_of;
          const int kk = (Dir == 1) ? k_of : si;
          const S* row = field_row(c, jj, kk) + x0;
          if constexpr (common::converts_storage<Policy>) {
            C* dst = ring.data() +
                     (static_cast<std::size_t>(c) * 6 +
                      static_cast<std::size_t>(((si % 6) + 6) % 6)) *
                         fn;
            if (batch) {
              common::load_line<Policy>(row, dst, fn);
            } else {
              for (std::size_t i = 0; i < fn; ++i)
                dst[i] = static_cast<C>(row[i]);
            }
            return dst;
          } else {
            return row;
          }
        };
        // Ring slot lookup without reconversion (row already loaded).
        auto ring_row = [&](int c, int si) -> const C* {
          if constexpr (common::converts_storage<Policy>) {
            return ring.data() +
                   (static_cast<std::size_t>(c) * 6 +
                    static_cast<std::size_t>(((si % 6) + 6) % 6)) *
                       fn;
          } else {
            const int jj = (Dir == 1) ? si : j_of;
            const int kk = (Dir == 1) ? k_of : si;
            return field_row(c, jj, kk) + x0;
          }
        };
        auto prim_rows = [&](int si, C** out5) {
          C* base = prows.data() +
                    static_cast<std::size_t>(si & 1) * 5 * fn;
          for (int p5 = 0; p5 < 5; ++p5)
            out5[p5] = base + static_cast<std::size_t>(p5) * fn;
        };
        auto build_prims = [&](int si) {
          C* pr5[5];
          prim_rows(si, pr5);
          cell_prims(ring_row(kRho, si), ring_row(kMomX, si),
                     ring_row(kMomY, si), ring_row(kMomZ, si),
                     ring_row(kEnergy, si), fn, pr5[0], pr5[1], pr5[2],
                     pr5[3], pr5[4]);
        };

        // Prologue: stencil rows of the first face row, and the prims of
        // the two cells it separates (s_lo-1 is a ghost row).
        for (int c = 0; c <= kNumVars; ++c)
          for (int t = -3; t <= 2; ++t) cons_row(c, s_lo + t);
        build_prims(s_lo - 1);
        build_prims(s_lo);

        for (int sf = s_lo; sf <= s_hi; ++sf) {
          if (sf > s_lo) {
            for (int c = 0; c <= kNumVars; ++c) cons_row(c, sf + 2);
            build_prims(sf);
          }
          const C* sc[kNumVars + 1][6];
          for (int c = 0; c <= kNumVars; ++c)
            for (int t = 0; t < 6; ++t) sc[c][t] = ring_row(c, sf - 3 + t);
          C* lcp5[5];
          C* rcp5[5];
          prim_rows(sf - 1, lcp5);
          prim_rows(sf, rcp5);
          const C* lcp[5] = {lcp5[0], lcp5[1], lcp5[2], lcp5[3], lcp5[4]};
          const C* rcp[5] = {rcp5[0], rcp5[1], rcp5[2], rcp5[3], rcp5[4]};
          const int jl = (Dir == 1) ? sf - 1 : j_of;
          const int kl = (Dir == 1) ? k_of : sf - 1;
          const S* pl_mom[3] = {&q[kMomX](x0, jl, kl), &q[kMomY](x0, jl, kl),
                                &q[kMomZ](x0, jl, kl)};
          const S* pl_ir = &inv_rho_(x0, jl, kl);
          C* lf = faces.data();
          C* rf = faces.data() + (kNumVars + 1) * fn;
          C* fx = flux2.data() +
                  static_cast<std::size_t>(sf & 1) * kNumVars * fn;
          compute_face_row<Dir, C, S>(recon, fn, sc, lcp, rcp, pl_mom, pl_ir,
                                      P, lf, rf, fprims.data(),
                                      fprims.data() + 6 * fn,
                                      smax_buf.data(), fallback.data(), fx);
          if (sf == s_lo) continue;
          // RHS row for cell row sf-1: faces below (sf-1) and above (sf).
          const C* flo = flux2.data() +
                         static_cast<std::size_t>((sf - 1) & 1) * kNumVars *
                             fn;
          const C* fhi = fx;
          const int jr = (Dir == 1) ? sf - 1 : j_of;
          const int kr = (Dir == 1) ? k_of : sf - 1;
          for (int c = 0; c < kNumVars; ++c) {
            S* __restrict pr = &rhs[c](x0, jr, kr);
            const C* __restrict lo_c =
                flo + static_cast<std::size_t>(c) * fn;
            const C* __restrict hi_c =
                fhi + static_cast<std::size_t>(c) * fn;
            if constexpr (common::converts_storage<Policy>) {
              if (batch) {
                C* row = out_row.data();
                if (overwrite) {
                  for (std::size_t s = 0; s < fn; ++s)
                    row[s] = (lo_c[s] - hi_c[s]) * P.inv_d;
                } else {
                  common::load_line<Policy>(pr, row, fn);
                  for (std::size_t s = 0; s < fn; ++s)
                    row[s] += (lo_c[s] - hi_c[s]) * P.inv_d;
                }
                common::store_line<Policy>(row, pr, fn);
                continue;
              }
            }
            if (overwrite) {
              for (std::size_t s = 0; s < fn; ++s)
                pr[s] = static_cast<S>((lo_c[s] - hi_c[s]) * P.inv_d);
            } else {
              for (std::size_t s = 0; s < fn; ++s) {
                const C cur = static_cast<C>(pr[s]);
                pr[s] = static_cast<S>(cur + (lo_c[s] - hi_c[s]) * P.inv_d);
              }
            }
          }
        }
      }
    });
  }
}

template <class Policy>
template <class ReconOp>
void IgrSolver3D<Policy>::flux_stream_all(common::StateField3<S>& q,
                                          common::StateField3<S>& rhs,
                                          ReconOp recon,
                                          const CellRegion& reg) {
  // Same partition semantics as flux_sweep_all: the x sweep overwrites
  // (folding the RHS zero-fill), y and z accumulate.
  flux_sweep_stream<0>(q, rhs, recon, /*overwrite=*/true, reg);
  flux_sweep_stream<1>(q, rhs, recon, /*overwrite=*/false, reg);
  flux_sweep_stream<2>(q, rhs, recon, /*overwrite=*/false, reg);
}

template <class Policy>
void IgrSolver3D<Policy>::apply_domain_bc(common::StateField3<S>& q) {
  fv::apply_bc(q, bc_, grid_, eos_);
}

template <class Policy>
void IgrSolver3D<Policy>::sigma_sweep(common::StateField3<S>& /*q*/) {
  ++sigma_sweeps_done_;
  sigma_sweep_once<Policy>(sigma_, sigma_scratch_, sigma_src_, inv_rho_,
                           static_cast<C>(alpha_), static_cast<C>(grid_.dx()),
                           static_cast<C>(grid_.dy()),
                           static_cast<C>(grid_.dz()),
                           cfg_.sigma_gauss_seidel ? SweepKind::kRedBlack
                                                   : SweepKind::kJacobi,
                           cfg_.batch_half_conversion, cfg_.exec());
}

template <class Policy>
void IgrSolver3D<Policy>::fill_sigma_boundary() {
  fill_sigma_ghosts(sigma_, sigma_bc_);
}

template <class Policy>
template <class ReconOp>
void IgrSolver3D<Policy>::flux_sweep_all(common::StateField3<S>& q,
                                         common::StateField3<S>& rhs,
                                         ReconOp recon,
                                         const CellRegion& reg) {
  // The dir==0 sweep overwrites rhs, folding the zero-fill into its
  // write-back and saving one full 5N traversal per RK stage.  Regions
  // partition the block, so every cell sees exactly one overwrite.
  flux_sweep<0>(q, rhs, recon, /*overwrite=*/true, reg);
  flux_sweep<1>(q, rhs, recon, /*overwrite=*/false, reg);
  flux_sweep<2>(q, rhs, recon, /*overwrite=*/false, reg);
}

template <class Policy>
void IgrSolver3D<Policy>::prepare_flux_pass(common::StateField3<S>& q) {
  // The viscous path reads the persistent reciprocal-density field; when
  // the Sigma solve is disabled nobody has refreshed it this RHS, so do it
  // here (once per RHS — the boundary pass of a split never repeats it).
  // With Sigma active, build_sigma_source already recomputed it from the
  // same ghost-filled state.
  const bool viscous = (cfg_.mu > 0.0 || cfg_.zeta > 0.0);
  const bool sigma_active = (alpha_ > 0.0 && cfg_.sigma_sweeps > 0);
  if (viscous && !sigma_active) refresh_inv_rho(q);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_region(common::StateField3<S>& q,
                                                common::StateField3<S>& rhs,
                                                const CellRegion& reg,
                                                bool prepare) {
  // The sweeps reuse q[0]'s base offset and strides for rhs, Sigma, and
  // inv_rho; every field must share the solver's block shape (this held
  // implicitly before the pointer-based rewrite, now it is load-bearing).
  assert(q.nx() == grid_.nx() && q.ny() == grid_.ny() && q.nz() == grid_.nz());
  assert(rhs.nx() == grid_.nx() && rhs.ny() == grid_.ny() &&
         rhs.nz() == grid_.nz());
  assert(q.ng() == sigma_.ng() && rhs.ng() == sigma_.ng());
  if (prepare) prepare_flux_pass(q);
  if (cfg_.fused_rhs) {
    // Stream the region in k-blocks: all three sweeps of a block run while
    // its planes are cache-resident.  Blocks partition the region, each
    // cell still sees exactly the x-overwrite → y → z accumulation of one
    // whole-region call, and every face flux is a pure function of its
    // stencil — so the split is bitwise-free, the same property the
    // interior/boundary overlap split relies on.  (The z seams re-evaluate
    // one face per block; flux_block() amortizes that.)
    const auto kz = static_cast<std::size_t>(2);
    const int B = flux_block();
    fv::dispatch_recon(recon_, [&](auto recon) {
      for (int b0 = reg.lo[kz]; b0 < reg.hi[kz]; b0 += B) {
        CellRegion sub = reg;
        sub.lo[kz] = b0;
        sub.hi[kz] = std::min(b0 + B, reg.hi[kz]);
        flux_stream_all(q, rhs, recon, sub);
      }
    });
    return;
  }
  fv::dispatch_recon(recon_,
                     [&](auto recon) { flux_stream_all(q, rhs, recon, reg); });
}

template <class Policy>
int IgrSolver3D<Policy>::flux_block() const {
  // The trailing RK update of block b-1 may only touch planes the z-flux
  // stencil of block b no longer reads, which needs B >= the stencil
  // radius (the field ghost depth).
  return std::max(cfg_.fused_flux_block, sigma_.ng());
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes(common::StateField3<S>& q,
                                         common::StateField3<S>& rhs) {
  compute_fluxes_region(q, rhs, full_region(), /*prepare=*/true);
}

template <class Policy>
CellRegion IgrSolver3D<Policy>::interior_flux_region(int axis) const {
  // Only the split axis is shaved: a flux line reads ghost planes of an
  // axis only through that axis' reconstruction stencil (tangential
  // coordinates of every line stay interior), so cells at least one ghost
  // depth away from the two `axis` faces touch no in-flight ghost.  The
  // margin is the field ghost depth — the stencil radius it was sized for
  // — so a deeper-ghosted future scheme keeps the no-ghost-read invariant
  // automatically.
  CellRegion r = full_region();
  const auto as = static_cast<std::size_t>(axis);
  const int margin = sigma_.ng();
  const int n = r.hi[as];
  r.lo[as] = std::min(margin, n);
  r.hi[as] = std::max(n - margin, r.lo[as]);
  return r;
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_interior(common::StateField3<S>& q,
                                                  common::StateField3<S>& rhs,
                                                  int axis) {
  compute_fluxes_region(q, rhs, interior_flux_region(axis),
                        /*prepare=*/true);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_boundary(common::StateField3<S>& q,
                                                  common::StateField3<S>& rhs,
                                                  int axis) {
  // The complement of the interior region: the two slabs hugging the
  // `axis` faces, full extent on the other axes — disjoint from the
  // interior and from each other (degenerate for thin blocks, where the
  // low slab absorbs everything).
  const CellRegion in = interior_flux_region(axis);
  const auto as = static_cast<std::size_t>(axis);
  CellRegion low = full_region();
  low.hi[as] = in.lo[as];
  CellRegion high = full_region();
  high.lo[as] = in.hi[as];
  if (!low.empty()) compute_fluxes_region(q, rhs, low, /*prepare=*/false);
  if (!high.empty()) compute_fluxes_region(q, rhs, high, /*prepare=*/false);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes_runtime_dispatch(
    common::StateField3<S>& q, common::StateField3<S>& rhs) {
  prepare_flux_pass(q);
  flux_sweep_all(q, rhs, fv::ReconRuntime{recon_}, full_region());
}

template <class Policy>
void IgrSolver3D<Policy>::compute_rhs(common::StateField3<S>& q,
                                      common::StateField3<S>& rhs) {
  {
    common::PhaseScope t(profile_, common::PhaseProfile::kBc);
    apply_domain_bc(q);
  }

  if (alpha_ > 0.0 && cfg_.sigma_sweeps > 0) {
    {
      common::PhaseScope t(profile_, common::PhaseProfile::kSigmaSource);
      build_sigma_source(q);
    }
    common::PhaseScope t(profile_, common::PhaseProfile::kSigmaSweeps);
    for (int s = 0; s < cfg_.sigma_sweeps; ++s) {
      fill_sigma_ghosts(sigma_, sigma_bc_, 1);  // sweeps need one layer
      sigma_sweep(q);
    }
    fill_sigma_boundary();  // reconstruction needs the full depth
  } else {
    sigma_.fill(S{});
  }

  common::PhaseScope t(profile_, common::PhaseProfile::kFlux);
  compute_fluxes(q, rhs);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_rhs_fused(common::StateField3<S>& q,
                                            common::StateField3<S>& rhs) {
  {
    common::PhaseScope t(profile_, common::PhaseProfile::kBc);
    apply_domain_bc(q);
  }
  fused_sigma_phase(q);
  common::PhaseScope t(profile_, common::PhaseProfile::kFlux);
  compute_fluxes(q, rhs);  // streams k-blocks under cfg.fused_rhs
}

template <class Policy>
void IgrSolver3D<Policy>::fused_sigma_phase(common::StateField3<S>& q) {
  if (!(alpha_ > 0.0 && cfg_.sigma_sweeps > 0)) {
    sigma_.fill(S{});
    return;
  }
  if (sigma_bc_.side(2, 0) == SigmaBc::kPeriodic ||
      sigma_bc_.side(2, 1) == SigmaBc::kPeriodic) {
    // A periodic Sigma wrap *along z* makes plane 0's sweep s read plane
    // nz-1's post-sweep-(s-1) values — which an ascending plane stream has
    // not produced yet when its front is near 0.  Sweeps stay phased here;
    // the interleaved source build and the streamed flux/RK stages still
    // apply.  Periodic x/y faces are no obstacle: their wraps are per-plane
    // rim fills reading the same plane's post-previous-sweep interior,
    // exactly the snapshot the phased fill takes.
    {
      common::PhaseScope t(profile_, common::PhaseProfile::kSigmaSource);
      build_sigma_source(q);
    }
    common::PhaseScope t(profile_, common::PhaseProfile::kSigmaSweeps);
    for (int s = 0; s < cfg_.sigma_sweeps; ++s) {
      fill_sigma_ghosts(sigma_, sigma_bc_, 1);
      sigma_sweep(q);
    }
    fill_sigma_boundary();
    return;
  }
  fused_sigma_pipeline(q);
}

/// The skewed plane wavefront: with S sweeps, the front f executes
///
///   source(f)                                  (in chunks, inv_rho ahead)
///   for s = 1..S:   color0(s, f - 2(s-1))  then  color1(s, f - 2s + 1)
///   final boundary fill of plane f - (2S - 1)
///
/// (Jacobi replaces the color pair with one pass at f - (s-1) and a final
/// fill at f - S + 1.)  Dependency check, writing c0/c1 for the red–black
/// half-passes (c0 updates parity (i+j+k) even+color offset, reading only
/// the opposite parity and vice versa):
///   - c0(s,k) reads the opposite parity of planes k-1..k+1 at
///     post-sweep-(s-1) values: c1(s,k-1) runs at front k+2s-2 — the same
///     front, in a later slot (s ascending, c0 before c1 ... of the same s,
///     and c1(s,k-1) belongs to slot s at front (k-1)+2s-1 = k+2s-2) — and
///     c1(s,k+1) at front k+2s, strictly later.  ✓
///   - c1(s,k) reads post-c0-of-sweep-s values of planes k-1..k+1:
///     c0(s,k+1) runs at the same front in the preceding slot.  ✓
///   - c0(s+1,k) needs c1(s,·) complete on k-1..k+1: latest is c1(s,k+1)
///     at front k+2s, while c0(s+1,k) runs at front k+2s — same front,
///     earlier sweep slot first.  ✓
/// Ghost handling: each sweep's one-layer rim fill of plane p runs in the
/// c0 slot (p is still entirely post-sweep-(s-1) there — the values the
/// phased per-sweep fill_sigma_ghosts snapshot holds), and the Neumann z
/// ghost planes are copied when the boundary planes 0 / nz-1 hit their c0
/// slot, again from post-(s-1) values.  Both colors then read that same
/// snapshot, exactly like the phased schedule.
template <class Policy>
void IgrSolver3D<Policy>::fused_sigma_pipeline(common::StateField3<S>& q) {
  const int nz = grid_.nz();
  const int ng = q.ng();
  const int sweeps = cfg_.sigma_sweeps;
  // The pipeline performs `sweeps` logical relaxation passes without going
  // through sigma_sweep(); credit them up front so the meter agrees with
  // the phased schedule.
  sigma_sweeps_done_ += static_cast<std::uint64_t>(sweeps);
  const bool rb = cfg_.sigma_gauss_seidel;
  const int depth = rb ? 2 * sweeps - 1 : sweeps - 1;
  const int chunk = std::max(flux_block(), 4);
  const C al = static_cast<C>(alpha_);
  const C dx = static_cast<C>(grid_.dx());
  const C dy = static_cast<C>(grid_.dy());
  const C dz = static_cast<C>(grid_.dz());
  const bool batch = cfg_.batch_half_conversion;

  int ir_hi = -ng;
  auto ensure_ir = [&](int upto) {  // exclusive
    upto = std::min(upto, nz + ng);
    if (upto > ir_hi) {
      // Attributed to the source phase like the phased schedule's
      // refresh-inside-build, so the breakdowns stay comparable.
      common::PhaseScope t(profile_, common::PhaseProfile::kSigmaSource);
      refresh_inv_rho_planes(q, ir_hi, upto);
      ir_hi = upto;
    }
  };
  // Per-sweep ghost fills of one plane: the one-layer rim (wrapping or
  // clamping per x/y face) plus, on the boundary planes, the Neumann z
  // ghost snapshot (the pipeline gate guarantees both z faces clamp).
  auto sweep_ghosts = [&](common::Field3<S>& sig, int p, int layers) {
    fill_sigma_rim(sig, sigma_bc_, p, p + 1, layers);
    if (p == 0) fill_sigma_zghosts(sig, sigma_bc_, 0, layers);
    if (p == nz - 1) fill_sigma_zghosts(sig, sigma_bc_, 1, layers);
  };

  common::Field3<S>& fin =
      (!rb && (sweeps % 2 == 1)) ? sigma_scratch_ : sigma_;

  for (int f = 0; f <= nz - 1 + depth; ++f) {
    if (f < nz && f % chunk == 0) {
      const int c1 = std::min(f + chunk, nz);
      ensure_ir(c1 + 1);
      common::PhaseScope t(profile_, common::PhaseProfile::kSigmaSource);
      compute_sigma_source_planes(q, f, c1);
    }
    common::PhaseScope t(profile_, common::PhaseProfile::kSigmaSweeps);
    for (int s = 1; s <= sweeps; ++s) {
      if (rb) {
        const int p0 = f - 2 * (s - 1);
        if (p0 >= 0 && p0 < nz) {
          sweep_ghosts(sigma_, p0, 1);
          sigma_relax_planes<Policy>(sigma_, sigma_src_, inv_rho_, al, dx, dy,
                                     dz, /*color=*/0, p0, p0 + 1, batch,
                                     cfg_.exec());
        }
        const int p1 = f - (2 * s - 1);
        if (p1 >= 0 && p1 < nz) {
          sigma_relax_planes<Policy>(sigma_, sigma_src_, inv_rho_, al, dx, dy,
                                     dz, /*color=*/1, p1, p1 + 1, batch,
                                     cfg_.exec());
        }
      } else {
        const int p = f - (s - 1);
        if (p >= 0 && p < nz) {
          // Sweep s reads the buffer sweep s-1 wrote (sigma_ first) and
          // writes the other; one swap at the end mirrors the phased
          // per-sweep field swaps.
          auto& in = (s % 2 == 1) ? sigma_ : sigma_scratch_;
          auto& out = (s % 2 == 1) ? sigma_scratch_ : sigma_;
          sweep_ghosts(in, p, 1);
          sigma_jacobi_planes<Policy>(out, in, sigma_src_, inv_rho_, al, dx,
                                      dy, dz, p, p + 1, batch, cfg_.exec());
        }
      }
    }
    const int pf = f - depth;
    if (pf >= 0 && pf < nz) {
      sweep_ghosts(fin, pf, -1);  // reconstruction needs the full depth
    }
  }
  ensure_ir(nz + ng);  // trailing ghost planes (viscous transverse taps)
  if (!rb && (sweeps % 2 == 1)) std::swap(sigma_, sigma_scratch_);
}

template <class Policy>
void IgrSolver3D<Policy>::begin_step() {
  qstage_ = q_;
}

template <class Policy>
void IgrSolver3D<Policy>::rk_update_planes(const fv::Rk3Stage& st, double dt,
                                           int k0, int k1) {
  const int nx = grid_.nx(), ny = grid_.ny();
  const C a = static_cast<C>(st.a);
  const C b = static_cast<C>(st.b);
  const C dtc = static_cast<C>(dt);
  if constexpr (common::converts_storage<Policy>) {
    if (cfg_.batch_half_conversion) {
      // Row-batched update: 3 batch loads + 1 batch store per component row
      // replace 3 scalar conversions + 1 round-trip per element.
      const std::size_t nxs = static_cast<std::size_t>(nx);
      cfg_.exec().run_team([&](const common::ExecSpace::Team& t) {
        std::vector<C> qn_row(nxs), qs_row(nxs), r_row(nxs);
        long cb, ce;
        t.chunk(k1 - k0, cb, ce);
        for (long kk = cb; kk < ce; ++kk) {
          const int k = k0 + static_cast<int>(kk);
          for (int j = 0; j < ny; ++j) {
            for (int c = 0; c < kNumVars; ++c) {
              common::load_line<Policy>(q_[c].row(j, k), qn_row.data(), nxs);
              common::load_line<Policy>(qstage_[c].row(j, k), qs_row.data(),
                                        nxs);
              common::load_line<Policy>(rhs_[c].row(j, k), r_row.data(), nxs);
              for (std::size_t i = 0; i < nxs; ++i)
                qs_row[i] = a * qn_row[i] + b * (qs_row[i] + dtc * r_row[i]);
              common::store_line<Policy>(qs_row.data(), qstage_[c].row(j, k),
                                         nxs);
            }
          }
        }
      });
      return;
    }
  }
  // Row-pointer form (restrict: the three fields never alias) so the
  // update vectorizes; the per-element expression is unchanged and cells
  // are independent, so the c-outer order writes the same bits.
  cfg_.exec().for_each(k1 - k0, [&](long kk) {
    const int k = k0 + static_cast<int>(kk);
    for (int j = 0; j < ny; ++j) {
      for (int c = 0; c < kNumVars; ++c) {
        const S* __restrict qn_row = q_[c].row(j, k);
        S* __restrict qs_row = qstage_[c].row(j, k);
        const S* __restrict r_row = rhs_[c].row(j, k);
        for (int i = 0; i < nx; ++i) {
          const C qn = static_cast<C>(qn_row[i]);
          const C qs = static_cast<C>(qs_row[i]);
          const C r = static_cast<C>(r_row[i]);
          qs_row[i] = static_cast<S>(a * qn + b * (qs + dtc * r));
        }
      }
    }
  });
}

template <class Policy>
void IgrSolver3D<Policy>::rk_update(const fv::Rk3Stage& st, double dt) {
  rk_update_planes(st, dt, 0, grid_.nz());
}

template <class Policy>
void IgrSolver3D<Policy>::rk_stage1_planes(double dt, int k0, int k1) {
  const int nx = grid_.nx(), ny = grid_.ny();
  const C dtc = static_cast<C>(dt);
  if constexpr (common::converts_storage<Policy>) {
    if (cfg_.batch_half_conversion) {
      const std::size_t nxs = static_cast<std::size_t>(nx);
      cfg_.exec().run_team([&](const common::ExecSpace::Team& t) {
        std::vector<C> qn_row(nxs), r_row(nxs);
        long cb, ce;
        t.chunk(k1 - k0, cb, ce);
        for (long kk = cb; kk < ce; ++kk) {
          const int k = k0 + static_cast<int>(kk);
          for (int j = 0; j < ny; ++j) {
            for (int c = 0; c < kNumVars; ++c) {
              common::load_line<Policy>(q_[c].row(j, k), qn_row.data(), nxs);
              common::load_line<Policy>(rhs_[c].row(j, k), r_row.data(), nxs);
              for (std::size_t i = 0; i < nxs; ++i)
                qn_row[i] = qn_row[i] + dtc * r_row[i];
              common::store_line<Policy>(qn_row.data(), qstage_[c].row(j, k),
                                         nxs);
            }
          }
        }
      });
      return;
    }
  }
  cfg_.exec().for_each(k1 - k0, [&](long kk) {
    const int k = k0 + static_cast<int>(kk);
    for (int j = 0; j < ny; ++j) {
      for (int c = 0; c < kNumVars; ++c) {
        const S* __restrict qn_row = q_[c].row(j, k);
        const S* __restrict r_row = rhs_[c].row(j, k);
        S* __restrict qs_row = qstage_[c].row(j, k);
        for (int i = 0; i < nx; ++i) {
          const C qn = static_cast<C>(qn_row[i]);
          const C r = static_cast<C>(r_row[i]);
          qs_row[i] = static_cast<S>(qn + dtc * r);
        }
      }
    }
  });
}

template <class Policy>
void IgrSolver3D<Policy>::fused_flux_rk(common::StateField3<S>& q,
                                        common::StateField3<S>& rhs,
                                        const fv::Rk3Stage& st, double dt,
                                        bool first_stage, bool accumulate_dt) {
  assert(q.nx() == grid_.nx() && q.ny() == grid_.ny() && q.nz() == grid_.nz());
  assert(q.ng() == sigma_.ng() && rhs.ng() == sigma_.ng());
  const int nz = grid_.nz();
  const int B = flux_block();

  // The RK write-back trails the flux front by one block: the z-flux lines
  // of block b read state planes down to b*B - 3, so once block b is swept,
  // every plane of block b-1 is out of every remaining stencil (B >= 3) and
  // can be committed.  On the first stage the flux input is q_ while the
  // update writes qstage_, so there is no overlap at all — the same lag is
  // kept for uniformity.  The final stage folds the CFL reduction for the
  // next step's dt into the same trailing slot, where the block's new state
  // and its (final, warm-start) Sigma are both hot.
  auto commit_block = [&](int k0, int k1) {
    common::PhaseScope t(profile_, common::PhaseProfile::kRkDt);
    if (first_stage) {
      rk_stage1_planes(dt, k0, k1);
    } else {
      rk_update_planes(st, dt, k0, k1);
    }
    if (accumulate_dt) {
      fv::accumulate_cfl_rates(qstage_, grid_, eos_, cfg_, &sigma_, k0, k1,
                               dt_rates_);
    }
  };

  prepare_flux_pass(q);
  fv::dispatch_recon(recon_, [&](auto recon) {
    int prev = -1;
    for (int b0 = 0; b0 < nz; b0 += B) {
      const int b1 = std::min(b0 + B, nz);
      {
        common::PhaseScope t(profile_, common::PhaseProfile::kFlux);
        CellRegion reg = full_region();
        reg.lo[2] = b0;
        reg.hi[2] = b1;
        flux_stream_all(q, rhs, recon, reg);
      }
      if (prev >= 0) commit_block(prev, b0);
      prev = b0;
    }
    commit_block(prev, nz);
  });
}

template <class Policy>
void IgrSolver3D<Policy>::finish_step(double dt) {
  std::swap(q_, qstage_);
  time_ += dt;
}

template <class Policy>
void IgrSolver3D<Policy>::step_fixed_fused(double dt) {
  grind_.begin_step();
  dt_rates_ = fv::CflRates{};
  for (int si = 0; si < 3; ++si) {
    // Stage 1 evaluates the RHS on q_ directly and writes the stage
    // register from it (rk_stage1_planes), eliding begin_step's 5N copy;
    // stages 2-3 advance the register in place as usual.
    auto& qs = (si == 0) ? q_ : qstage_;
    {
      common::PhaseScope t(profile_, common::PhaseProfile::kBc);
      apply_domain_bc(qs);
    }
    fused_sigma_phase(qs);
    fused_flux_rk(qs, rhs_, fv::kRk3Stages[static_cast<std::size_t>(si)], dt,
                  /*first_stage=*/si == 0, /*accumulate_dt=*/si == 2);
  }
  finish_step(dt);
  next_dt_ = fv::cfl_dt_from_rates(dt_rates_, grid_, cfg_);
  next_dt_valid_ = true;
  grind_.end_step();
}

template <class Policy>
void IgrSolver3D<Policy>::step_fixed(double dt) {
  if (cfg_.fused_rhs) {
    step_fixed_fused(dt);
    return;
  }
  grind_.begin_step();
  begin_step();
  for (const auto& st : fv::kRk3Stages) {
    compute_rhs(qstage_, rhs_);
    common::PhaseScope t(profile_, common::PhaseProfile::kRkDt);
    rk_update(st, dt);
  }
  finish_step(dt);
  grind_.end_step();
}

template <class Policy>
double IgrSolver3D<Policy>::step() {
  // The warm-start Sigma from the previous step feeds the wave-speed bound.
  // A fused previous step already folded this exact reduction — same state,
  // same Sigma, exact max/min — into its final RK traversal.
  if (cfg_.fused_rhs && next_dt_valid_) {
    const double dt = next_dt_;
    step_fixed(dt);
    return dt;
  }
  double dt;
  {
    common::PhaseScope t(profile_, common::PhaseProfile::kRkDt);
    dt = fv::compute_dt(q_, grid_, eos_, cfg_, &sigma_);
  }
  step_fixed(dt);
  return dt;
}

template <class Policy>
std::size_t IgrSolver3D<Policy>::memory_bytes() const {
  return q_.bytes() + qstage_.bytes() + rhs_.bytes() + sigma_.bytes() +
         sigma_src_.bytes() + sigma_scratch_.bytes() + inv_rho_.bytes();
}

template <class Policy>
double IgrSolver3D<Policy>::storage_per_cell() const {
  // 5 state + 5 RK register + 5 RHS + Sigma + Sigma source (+ Jacobi copy),
  // plus the CPU-only reciprocal-density scratch (the paper's fused GPU
  // kernel stays at 17N by recomputing reciprocals in registers, §5.2).
  return 18.0 + (cfg_.sigma_gauss_seidel ? 0.0 : 1.0);
}

template <class Policy>
common::Cons<double> IgrSolver3D<Policy>::conserved_totals() const {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const double dv = grid_.dx() * grid_.dy() * grid_.dz();
  common::Cons<double> tot{};
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (int c = 0; c < kNumVars; ++c)
          tot[c] += static_cast<double>(q_[c](i, j, k)) * dv;
      }
    }
  }
  return tot;
}

template class IgrSolver3D<common::Fp64>;
template class IgrSolver3D<common::Fp32>;
template class IgrSolver3D<common::Fp16x32>;
template class IgrSolver3D<common::Bf16x32>;

}  // namespace igr::core
