#include "core/igr_solver3d.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "common/half.hpp"
#include "common/math.hpp"
#include "common/state.hpp"
#include "fv/cfl.hpp"
#include "fv/riemann.hpp"
#include "fv/rk3.hpp"
#include "fv/viscous.hpp"

namespace igr::core {

namespace {

using common::kEnergy;
using common::kMomX;
using common::kMomY;
using common::kMomZ;
using common::kNumVars;
using common::kRho;

bool all_periodic(const fv::BcSpec& bc) {
  for (auto k : bc.kind) {
    if (k != fv::BcKind::kPeriodic) return false;
  }
  return true;
}

}  // namespace

template <class Policy>
IgrSolver3D<Policy>::IgrSolver3D(const mesh::Grid& grid,
                                 const common::SolverConfig& cfg,
                                 fv::BcSpec bc, fv::ReconScheme recon)
    : grid_(grid),
      cfg_(cfg),
      bc_(std::move(bc)),
      recon_(recon),
      eos_(cfg.gamma),
      alpha_(cfg.alpha_factor * grid.min_dx() * grid.min_dx()),
      q_(grid.nx(), grid.ny(), grid.nz(), 3),
      qstage_(grid.nx(), grid.ny(), grid.nz(), 3),
      rhs_(grid.nx(), grid.ny(), grid.nz(), 3),
      sigma_(grid.nx(), grid.ny(), grid.nz(), 3),
      sigma_src_(grid.nx(), grid.ny(), grid.nz(), 3),
      inv_rho_(grid.nx(), grid.ny(), grid.nz(), 3) {
  cfg_.validate();
  sigma_bc_ = all_periodic(bc_) ? SigmaBc::kPeriodic : SigmaBc::kNeumann;
  if (!cfg_.sigma_gauss_seidel) {
    sigma_scratch_ =
        common::Field3<S>(grid.nx(), grid.ny(), grid.nz(), 3);
  }
  grind_.set_cells_per_step(grid.cells());
}

template <class Policy>
void IgrSolver3D<Policy>::init(const PrimFn& prim) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const auto w = prim(grid_.x(i), grid_.y(j), grid_.z(k));
        const auto qc = eos_.to_cons(w);
        for (int c = 0; c < kNumVars; ++c)
          q_[c](i, j, k) = static_cast<S>(qc[c]);
      }
    }
  }
  sigma_.fill(S{});
  time_ = 0.0;
}

template <class Policy>
void IgrSolver3D<Policy>::compute_sigma_source(common::StateField3<S>& q) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const int ng = q.ng();
  const C inv2dx = C(0.5) / static_cast<C>(grid_.dx());
  const C inv2dy = C(0.5) / static_cast<C>(grid_.dy());
  const C inv2dz = C(0.5) / static_cast<C>(grid_.dz());
  const C al = static_cast<C>(alpha_);

  // Reciprocal density over the full ghosted extent: one division per
  // point, consumed multiplication-only by the source and the sweeps.
#pragma omp parallel for
  for (int k = -ng; k < nz + ng; ++k) {
    for (int j = -ng; j < ny + ng; ++j) {
      const S* pr = &q[kRho](-ng, j, k);
      S* pir = &inv_rho_(-ng, j, k);
      for (int i = 0; i < nx + 2 * ng; ++i) {
        pir[i] = static_cast<S>(C(1) / static_cast<C>(pr[i]));
      }
    }
  }

  const std::ptrdiff_t sy = inv_rho_.stride(1);
  const std::ptrdiff_t sz = inv_rho_.stride(2);

#pragma omp parallel for
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      const S* pir = &inv_rho_(0, j, k);
      const S* pm[3] = {&q[kMomX](0, j, k), &q[kMomY](0, j, k),
                        &q[kMomZ](0, j, k)};
      S* psrc = &sigma_src_(0, j, k);
      auto vel = [&](int a, std::ptrdiff_t o) -> C {
        return static_cast<C>(pm[a][o]) * static_cast<C>(pir[o]);
      };
      for (int i = 0; i < nx; ++i) {
        fv::VelGrad<C> g;
        for (int a = 0; a < 3; ++a) {
          g.g[a][0] = (vel(a, i + 1) - vel(a, i - 1)) * inv2dx;
          g.g[a][1] = (vel(a, i + sy) - vel(a, i - sy)) * inv2dy;
          g.g[a][2] = (vel(a, i + sz) - vel(a, i - sz)) * inv2dz;
        }
        const C d = g.div();
        psrc[i] = static_cast<S>(al * (g.tr_sq() + d * d));
      }
    }
  }
}

template <class Policy>
void IgrSolver3D<Policy>::flux_sweep(common::StateField3<S>& q,
                                     common::StateField3<S>& rhs, int dir) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const int n_dir = (dir == 0) ? nx : (dir == 1) ? ny : nz;
  const C d_dir = static_cast<C>((dir == 0)   ? grid_.dx()
                                 : (dir == 1) ? grid_.dy()
                                              : grid_.dz());
  const C inv_d = C(1) / d_dir;
  const C gam = static_cast<C>(cfg_.gamma);
  const C mu = static_cast<C>(cfg_.mu);
  const C zeta = static_cast<C>(cfg_.zeta);
  const bool viscous = (cfg_.mu > 0.0 || cfg_.zeta > 0.0);
  const C rho_floor = static_cast<C>(cfg_.density_floor);
  const C p_floor = static_cast<C>(cfg_.pressure_floor);
  const std::array<C, 3> dd{static_cast<C>(grid_.dx()),
                            static_cast<C>(grid_.dy()),
                            static_cast<C>(grid_.dz())};

  // Offsets of the line direction and the two tangential directions.
  auto cell = [&](int line_a, int line_b, int s) -> std::array<int, 3> {
    // Map (tangential a, tangential b, line coordinate s) -> (i,j,k).
    switch (dir) {
      case 0: return {s, line_a, line_b};
      case 1: return {line_a, s, line_b};
      default: return {line_a, line_b, s};
    }
  };

  const int na = (dir == 0) ? ny : nx;
  const int nb = (dir == 2) ? ny : nz;

  auto vel = [&](int a, const std::array<int, 3>& c) -> C {
    return static_cast<C>(q[kMomX + a](c[0], c[1], c[2])) /
           static_cast<C>(q[kRho](c[0], c[1], c[2]));
  };

  // Central derivative of velocity component `a` along axis `ax` at cell c.
  auto dvel = [&](int a, int ax, std::array<int, 3> c) -> C {
    auto cp = c, cm = c;
    cp[static_cast<std::size_t>(ax)] += 1;
    cm[static_cast<std::size_t>(ax)] -= 1;
    return (vel(a, cp) - vel(a, cm)) / (C(2) * dd[static_cast<std::size_t>(ax)]);
  };

#pragma omp parallel
  {
    // Per-thread line buffers — the CPU analogue of the paper's
    // thread-local temporaries (§5.4).  Each line of cells (with ghosts) is
    // gathered once into contiguous storage; reconstruction then walks it
    // with unit stride.
    const std::size_t line_len = static_cast<std::size_t>(n_dir) + 6;
    std::vector<C> lines((kNumVars + 1) * line_len);
    std::vector<common::Cons<C>> flux(static_cast<std::size_t>(n_dir) + 1);

#pragma omp for collapse(2)
    for (int lb = 0; lb < nb; ++lb) {
      for (int la = 0; la < na; ++la) {
        const auto c0 = cell(la, lb, 0);
        for (int c = 0; c <= kNumVars; ++c) {
          const common::Field3<S>& f = (c < kNumVars) ? q[c] : sigma_;
          const S* p = &f(c0[0], c0[1], c0[2]);
          const std::ptrdiff_t st = f.stride(dir);
          C* line = lines.data() + static_cast<std::size_t>(c) * line_len;
          for (int s = -3; s < n_dir + 3; ++s)
            line[s + 3] = static_cast<C>(p[s * st]);
        }

        for (int fi = 0; fi <= n_dir; ++fi) {
          const int i = fi - 1;  // face between cells i and i+1 along dir
          // Stencil q(i-2..i+3) starts at line offset (i-2)+3 = fi.
          const std::size_t off = static_cast<std::size_t>(fi);
          common::Cons<C> ql, qr;
          for (int c = 0; c < kNumVars; ++c) {
            const C* sc =
                lines.data() + static_cast<std::size_t>(c) * line_len + off;
            const auto f = fv::reconstruct(recon_, sc);
            ql[c] = f.left;
            qr[c] = f.right;
          }
          const C* ss =
              lines.data() + static_cast<std::size_t>(kNumVars) * line_len +
              off;
          auto sf = fv::reconstruct(recon_, ss);

          // High-order linear reconstruction can overshoot into a
          // non-physical state at an under-resolved start-up discontinuity,
          // before Sigma has developed to smooth it.  Fall back to the
          // piecewise-constant (cell-average) face states there — a
          // conservative, local safeguard that leaves smooth regions (and
          // the developed IGR solution) untouched.
          auto nonphysical = [&](const common::Cons<C>& qc) {
            if (!(qc.rho > C(0))) return true;
            const C ke = (qc.mx * qc.mx + qc.my * qc.my + qc.mz * qc.mz) /
                         (C(2) * qc.rho);
            return !(qc.e - ke > C(0));
          };
          if (nonphysical(ql) || nonphysical(qr)) {
            for (int c = 0; c < kNumVars; ++c) {
              const C* sc =
                  lines.data() + static_cast<std::size_t>(c) * line_len + off;
              ql[c] = sc[2];
              qr[c] = sc[3];
            }
            sf.left = ss[2];
            sf.right = ss[3];
          }

          // Optional configured floors (high-Mach jet start-up robustness).
          auto to_prim = [&](const common::Cons<C>& qc) {
            common::Prim<C> w = eos_.to_prim(qc);
            if (rho_floor > C(0)) w.rho = std::max(w.rho, rho_floor);
            if (p_floor > C(0)) w.p = std::max(w.p, p_floor);
            return w;
          };
          const auto wl = to_prim(ql);
          const auto wr = to_prim(qr);

          auto f = fv::rusanov_flux(wl, ql.e, sf.left, wr, qr.e, sf.right,
                                    gam, dir);

          if (viscous) {
            const auto cl = cell(la, lb, i);
            const auto cr = cell(la, lb, i + 1);
            fv::VelGrad<C> g;
            C uf[3];
            for (int a = 0; a < 3; ++a) {
              uf[a] = C(0.5) * (vel(a, cl) + vel(a, cr));
              for (int ax = 0; ax < 3; ++ax) {
                if (ax == dir) {
                  g.g[a][ax] = (vel(a, cr) - vel(a, cl)) * inv_d;
                } else {
                  g.g[a][ax] = C(0.5) * (dvel(a, ax, cl) + dvel(a, ax, cr));
                }
              }
            }
            const auto fv_ = fv::viscous_flux(g, uf, mu, zeta, dir);
            for (int c = 0; c < kNumVars; ++c) f[c] += fv_[c];
          }

          flux[static_cast<std::size_t>(fi)] = f;
        }

        for (int c = 0; c < kNumVars; ++c) {
          S* pr = &rhs[c](c0[0], c0[1], c0[2]);
          const std::ptrdiff_t st = rhs[c].stride(dir);
          for (int s = 0; s < n_dir; ++s) {
            const C cur = static_cast<C>(pr[s * st]);
            pr[s * st] = static_cast<S>(
                cur + (flux[static_cast<std::size_t>(s)][c] -
                       flux[static_cast<std::size_t>(s) + 1][c]) *
                          inv_d);
          }
        }
      }
    }
  }
}

template <class Policy>
void IgrSolver3D<Policy>::apply_domain_bc(common::StateField3<S>& q) {
  fv::apply_bc(q, bc_, grid_, eos_);
}

template <class Policy>
void IgrSolver3D<Policy>::sigma_sweep(common::StateField3<S>& q) {
  sigma_sweep_once<Policy>(sigma_, sigma_scratch_, sigma_src_, inv_rho_,
                           static_cast<C>(alpha_), static_cast<C>(grid_.dx()),
                           static_cast<C>(grid_.dy()),
                           static_cast<C>(grid_.dz()),
                           cfg_.sigma_gauss_seidel);
}

template <class Policy>
void IgrSolver3D<Policy>::fill_sigma_boundary() {
  fill_sigma_ghosts(sigma_, sigma_bc_);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_fluxes(common::StateField3<S>& q,
                                         common::StateField3<S>& rhs) {
  for (int c = 0; c < kNumVars; ++c) rhs[c].fill(S{});
  for (int dir = 0; dir < 3; ++dir) flux_sweep(q, rhs, dir);
}

template <class Policy>
void IgrSolver3D<Policy>::compute_rhs(common::StateField3<S>& q,
                                      common::StateField3<S>& rhs) {
  apply_domain_bc(q);

  if (alpha_ > 0.0 && cfg_.sigma_sweeps > 0) {
    build_sigma_source(q);
    for (int s = 0; s < cfg_.sigma_sweeps; ++s) {
      fill_sigma_ghosts(sigma_, sigma_bc_, 1);  // sweeps need one layer
      sigma_sweep(q);
    }
    fill_sigma_boundary();  // reconstruction needs the full depth
  } else {
    sigma_.fill(S{});
  }

  compute_fluxes(q, rhs);
}

template <class Policy>
void IgrSolver3D<Policy>::begin_step() {
  qstage_ = q_;
}

template <class Policy>
void IgrSolver3D<Policy>::rk_update(const fv::Rk3Stage& st, double dt) {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const C a = static_cast<C>(st.a);
  const C b = static_cast<C>(st.b);
  const C dtc = static_cast<C>(dt);
#pragma omp parallel for
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (int c = 0; c < kNumVars; ++c) {
          const C qn = static_cast<C>(q_[c](i, j, k));
          const C qs = static_cast<C>(qstage_[c](i, j, k));
          const C r = static_cast<C>(rhs_[c](i, j, k));
          qstage_[c](i, j, k) = static_cast<S>(a * qn + b * (qs + dtc * r));
        }
      }
    }
  }
}

template <class Policy>
void IgrSolver3D<Policy>::finish_step(double dt) {
  std::swap(q_, qstage_);
  time_ += dt;
}

template <class Policy>
void IgrSolver3D<Policy>::step_fixed(double dt) {
  grind_.begin_step();
  begin_step();
  for (const auto& st : fv::kRk3Stages) {
    compute_rhs(qstage_, rhs_);
    rk_update(st, dt);
  }
  finish_step(dt);
  grind_.end_step();
}

template <class Policy>
double IgrSolver3D<Policy>::step() {
  // The warm-start Sigma from the previous step feeds the wave-speed bound.
  const double dt = fv::compute_dt(q_, grid_, eos_, cfg_, &sigma_);
  step_fixed(dt);
  return dt;
}

template <class Policy>
std::size_t IgrSolver3D<Policy>::memory_bytes() const {
  return q_.bytes() + qstage_.bytes() + rhs_.bytes() + sigma_.bytes() +
         sigma_src_.bytes() + sigma_scratch_.bytes() + inv_rho_.bytes();
}

template <class Policy>
double IgrSolver3D<Policy>::storage_per_cell() const {
  // 5 state + 5 RK register + 5 RHS + Sigma + Sigma source (+ Jacobi copy),
  // plus the CPU-only reciprocal-density scratch (the paper's fused GPU
  // kernel stays at 17N by recomputing reciprocals in registers, §5.2).
  return 18.0 + (cfg_.sigma_gauss_seidel ? 0.0 : 1.0);
}

template <class Policy>
common::Cons<double> IgrSolver3D<Policy>::conserved_totals() const {
  const int nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const double dv = grid_.dx() * grid_.dy() * grid_.dz();
  common::Cons<double> tot{};
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (int c = 0; c < kNumVars; ++c)
          tot[c] += static_cast<double>(q_[c](i, j, k)) * dv;
      }
    }
  }
  return tot;
}

template class IgrSolver3D<common::Fp64>;
template class IgrSolver3D<common::Fp32>;
template class IgrSolver3D<common::Fp16x32>;

}  // namespace igr::core
